# Sanitizer wiring for all hmd targets.
#
# Set HMD_SANITIZE to a semicolon- or comma-separated subset of
# {address, undefined, thread, leak}, e.g.
#
#   cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
#         -DHMD_SANITIZE="address;undefined"
#
# The flags are applied globally (compile and link) so every library,
# test, bench, and example target — and therefore the whole ctest suite —
# runs instrumented. Recovery is disabled: any UBSan report aborts the
# process, which turns a sanitizer finding into a ctest failure instead of
# a log line nobody reads.

set(HMD_SANITIZE "" CACHE STRING
    "Semicolon/comma-separated sanitizers: address;undefined;thread;leak")

if(HMD_SANITIZE)
  string(REPLACE "," ";" _hmd_sanitizers "${HMD_SANITIZE}")
  set(_hmd_allowed address undefined thread leak)
  foreach(_san IN LISTS _hmd_sanitizers)
    if(NOT _san IN_LIST _hmd_allowed)
      message(FATAL_ERROR
        "HMD_SANITIZE: unknown sanitizer '${_san}' "
        "(allowed: ${_hmd_allowed})")
    endif()
  endforeach()
  if("thread" IN_LIST _hmd_sanitizers AND "address" IN_LIST _hmd_sanitizers)
    message(FATAL_ERROR
      "HMD_SANITIZE: 'thread' cannot be combined with 'address'")
  endif()

  string(REPLACE ";" "," _hmd_sanitize_arg "${_hmd_sanitizers}")
  message(STATUS "hmd: building with -fsanitize=${_hmd_sanitize_arg}")
  add_compile_options(
    -fsanitize=${_hmd_sanitize_arg}
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer)
  add_link_options(-fsanitize=${_hmd_sanitize_arg})
endif()

// Positive thread-safety probe: correctly locked access to a guarded member
// must compile cleanly under `clang++ -Wthread-safety -Werror`. Paired with
// tsa_unlocked_access.cpp, which must FAIL to compile — together they prove
// the HMD_* annotation macros are live (not silently expanding to nothing)
// on the compiler that configures this build.
#include "support/thread_safety.h"

namespace {

struct Counter {
  hmd::support::Mutex mutex;
  int value HMD_GUARDED_BY(mutex) = 0;
};

}  // namespace

int main() {
  Counter c;
  {
    hmd::support::MutexLock lock(c.mutex);
    c.value = 1;
  }
  hmd::support::MutexLock lock(c.mutex);
  return c.value == 1 ? 0 : 1;
}

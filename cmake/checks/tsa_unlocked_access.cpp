// Negative thread-safety probe: this file accesses a HMD_GUARDED_BY member
// WITHOUT holding its mutex, and cmake/ThreadSafety.cmake asserts that it
// FAILS to compile under `clang++ -Wthread-safety -Werror`. If it ever
// starts compiling, the annotation macros have degraded to no-ops on a
// compiler that should enforce them.
#include "support/thread_safety.h"

namespace {

struct Counter {
  hmd::support::Mutex mutex;
  int value HMD_GUARDED_BY(mutex) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.value = 1;  // unlocked write: -Wthread-safety must reject this
  return c.value;
}

# clang-tidy integration.
#
#   cmake -B build -S . -DHMD_ENABLE_CLANG_TIDY=ON
#
# runs clang-tidy (configured by the repo-root .clang-tidy) on every
# translation unit as it compiles. The option degrades to a warning when no
# clang-tidy binary is installed, so the default toolchain (gcc-only
# containers included) keeps building.

option(HMD_ENABLE_CLANG_TIDY "Run clang-tidy on every compiled TU" OFF)

if(HMD_ENABLE_CLANG_TIDY)
  find_program(HMD_CLANG_TIDY_EXE NAMES clang-tidy)
  if(HMD_CLANG_TIDY_EXE)
    message(STATUS "hmd: clang-tidy enabled (${HMD_CLANG_TIDY_EXE})")
    # The compilation database clang-tidy needs is always exported by the
    # top-level CMakeLists (CMAKE_EXPORT_COMPILE_COMMANDS ON).
    set(CMAKE_CXX_CLANG_TIDY "${HMD_CLANG_TIDY_EXE}")
  else()
    message(WARNING
      "HMD_ENABLE_CLANG_TIDY=ON but no clang-tidy binary was found; "
      "continuing without it")
  endif()
endif()

# Clang thread-safety analysis integration.
#
# Under clang, every target inheriting hmd_warnings is compiled with
# `-Wthread-safety -Werror=thread-safety-analysis`, so a guarded-member
# access without its lock is a build error, not a diagnostic that scrolls
# by. Under gcc (the default container toolchain) the annotation macros in
# src/support/thread_safety.h expand to nothing and this module only prints
# a skip notice — the annotations still compile as plain C++.
#
# Two configure-time try_compile probes keep the machinery honest whenever
# clang IS the compiler:
#   - tsa_locked_access.cpp   must COMPILE  (annotations accept correct code)
#   - tsa_unlocked_access.cpp must NOT compile (annotations reject races)
# The negative probe is the important one: if the macros ever degrade to
# no-ops under clang, it starts compiling and configuration fails.

function(hmd_enable_thread_safety warnings_target)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(STATUS
      "hmd: thread-safety analysis skipped (needs clang, have "
      "${CMAKE_CXX_COMPILER_ID})")
    return()
  endif()

  target_compile_options(${warnings_target} INTERFACE
    -Wthread-safety -Werror=thread-safety-analysis)
  message(STATUS "hmd: clang -Wthread-safety enabled (errors on violation)")

  set(_tsa_flags
    "-DCOMPILE_DEFINITIONS=-Wthread-safety -Werror -std=c++20"
    "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src")

  try_compile(HMD_TSA_POSITIVE_OK
    ${CMAKE_BINARY_DIR}/tsa_checks/positive
    ${CMAKE_SOURCE_DIR}/cmake/checks/tsa_locked_access.cpp
    CMAKE_FLAGS ${_tsa_flags}
    OUTPUT_VARIABLE _tsa_positive_log)
  if(NOT HMD_TSA_POSITIVE_OK)
    message(FATAL_ERROR
      "hmd: thread-safety positive probe failed to compile — correctly "
      "locked code is being rejected:\n${_tsa_positive_log}")
  endif()

  try_compile(HMD_TSA_NEGATIVE_OK
    ${CMAKE_BINARY_DIR}/tsa_checks/negative
    ${CMAKE_SOURCE_DIR}/cmake/checks/tsa_unlocked_access.cpp
    CMAKE_FLAGS ${_tsa_flags}
    OUTPUT_VARIABLE _tsa_negative_log)
  if(HMD_TSA_NEGATIVE_OK)
    message(FATAL_ERROR
      "hmd: thread-safety negative probe COMPILED — an unlocked access to a "
      "HMD_GUARDED_BY member was accepted, so the annotation macros are "
      "dead under this clang. Check src/support/thread_safety.h.")
  endif()
  message(STATUS
    "hmd: thread-safety probes passed (locked access accepted, unlocked "
    "access rejected)")
endfunction()

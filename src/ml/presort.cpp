#include "ml/presort.h"

#include <algorithm>

#include "support/check.h"

namespace hmd::ml {

Presort::Presort(const Dataset& data)
    : data_(&data),
      columnar_(dataset_mode() == DatasetMode::kColumnar),
      identity_(data.is_identity_view()) {}

Presort::Lists Presort::make_lists(std::span<const std::size_t> rows) {
  Lists out;
  if (!columnar_) return out;
  const std::size_t nf = data_->num_features();
  const std::uint32_t* map = data_->row_map().data();
  out.per.resize(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    const detail::FeatureRuns& runs = data_->feature_runs(f);
    const std::uint32_t* run_of = runs.run_of.data();
    // Counting sort by run id; iterating `rows` in order twice keeps ties
    // in input order (the canonical tie-break).
    offsets_.assign(runs.num_runs + 1, 0);
    for (std::size_t r : rows) ++offsets_[run_of[map[r]] + 1];
    for (std::size_t k = 1; k < offsets_.size(); ++k)
      offsets_[k] += offsets_[k - 1];
    List& list = out.per[f];
    list.resize(rows.size());
    for (std::size_t r : rows)
      list[offsets_[run_of[map[r]]]++] = static_cast<std::uint32_t>(r);
  }
  return out;
}

void Presort::split_lists(const Lists& parent,
                          std::span<const std::size_t> parent_rows,
                          std::size_t feature, double threshold, Lists* left,
                          Lists* right) {
  if (!columnar_) return;
  // Flags are only ever read for this node's rows, all of which are written
  // below, so the scratch never needs resetting between nodes.
  side_.resize(data_->num_rows());
  const double* col = data_->raw_column(feature).data();
  const std::uint32_t* map = data_->row_map().data();
  std::size_t n_left = 0;
  for (std::size_t r : parent_rows) {
    const std::uint8_t s = col[map[r]] <= threshold ? 1 : 0;
    side_[r] = s;
    n_left += s;
  }
  left->per.resize(parent.per.size());
  right->per.resize(parent.per.size());
  for (std::size_t f = 0; f < parent.per.size(); ++f) {
    const List& src = parent.per[f];
    List& l = left->per[f];
    List& r = right->per[f];
    l.clear();
    r.clear();
    l.reserve(n_left);
    r.reserve(src.size() - n_left);
    for (std::uint32_t row : src) (side_[row] != 0 ? l : r).push_back(row);
  }
}

void Presort::filter_lists(Lists* lists, std::size_t feature, bool leq,
                           double value) const {
  if (!columnar_) return;
  const double* col = data_->raw_column(feature).data();
  const std::uint32_t* map = data_->row_map().data();
  for (List& list : lists->per) {
    std::size_t kept = 0;
    for (std::uint32_t row : list) {
      const double v = col[map[row]];
      if (leq ? v <= value : v >= value) list[kept++] = row;
    }
    list.resize(kept);
  }
}

void Presort::gather(std::span<const std::size_t> rows, const Lists& lists,
                     std::size_t f, std::vector<SweepItem>& items) const {
  items.clear();
  if (columnar_) {
    const List& list = lists.per[f];
    HMD_INVARIANT(list.size() == rows.size());
    // Hoist the storage pointers: the compiler cannot prove the writes to
    // `items` don't alias the dataset internals, so the inline accessors
    // would reload them on every iteration.
    const double* col = data_->raw_column(f).data();
    const int* y = data_->raw_labels().data();
    const double* w = data_->weights().data();
    const std::uint32_t* map = data_->row_map().data();
    items.resize(list.size());
    SweepItem* out = items.data();
    if (identity_) {
      for (std::uint32_t r : list) *out++ = {col[r], y[r], w[r]};
    } else {
      for (std::uint32_t r : list) *out++ = {col[map[r]], y[map[r]], w[r]};
    }
    return;
  }
  items.reserve(rows.size());
  for (std::size_t r : rows)
    items.push_back(
        {data_->value(r, f), data_->label(r), data_->weight(r)});
  // stable: ties keep the node-row order — the canonical tie-break both
  // implementations share.
  std::stable_sort(items.begin(), items.end(),
                   [](const SweepItem& a, const SweepItem& b) {
                     return a.v < b.v;
                   });
}

}  // namespace hmd::ml

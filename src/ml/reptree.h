// REPTree — WEKA's fast decision tree with Reduced-Error Pruning.
//
// The tree is grown with plain information gain (no gain ratio) on a grow
// partition, then pruned bottom-up against a held-out prune partition:
// an internal node becomes a leaf whenever the leaf would make no more
// prune-set errors than its subtree does. WEKA's default of 3 folds is
// kept: grow on 2/3 of the training data, prune on 1/3 (stratified).
#pragma once

#include <vector>

#include "ml/classifier.h"
#include "ml/presort.h"

namespace hmd::ml {

class RepTree final : public Classifier {
 public:
  explicit RepTree(double min_leaf_weight = 2.0, std::size_t num_folds = 3,
                   std::size_t max_depth = 0 /* 0 = unlimited */,
                   std::uint64_t seed = 1)
      : min_leaf_weight_(min_leaf_weight),
        num_folds_(num_folds),
        max_depth_(max_depth),
        seed_(seed) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<RepTree>(min_leaf_weight_, num_folds_, max_depth_,
                                     seed_);
  }
  std::string name() const override { return "REPTree"; }
  ModelComplexity complexity() const override;

  std::size_t num_nodes() const { return nodes_.size(); }
  bool trained() const { return trained_; }

  /// Flattened reachable tree (for hardware codegen); see J48::FlatNode.
  struct FlatNode {
    bool leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    double proba = 0.5;
  };
  std::vector<FlatNode> flatten() const;

 private:
  struct Node {
    bool leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int64_t left = -1;
    std::int64_t right = -1;
    double w_pos = 0.0;  ///< grow-set class weights
    double w_neg = 0.0;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& rows,
                    std::size_t depth, Presort& presort,
                    Presort::Lists& lists);
  /// Returns prune-set errors of the subtree after pruning decisions.
  double rep_prune(const Dataset& prune, std::size_t node,
                   const std::vector<std::size_t>& rows);

  double min_leaf_weight_;
  std::size_t num_folds_;
  std::size_t max_depth_;
  std::uint64_t seed_;

  std::vector<Node> nodes_;
  bool trained_ = false;
};

}  // namespace hmd::ml

#include "ml/cross_validation.h"

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "support/check.h"

namespace hmd::ml {

CrossValidationResult cross_validate(const Classifier& prototype,
                                     const Dataset& data, std::size_t k,
                                     Rng& rng) {
  HMD_REQUIRE(k >= 2);
  HMD_REQUIRE(data.num_rows() > 0);

  // Group id -> label; groups are label-pure (one application).
  std::map<std::size_t, int> group_label;
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    group_label[data.group(i)] = data.label(i);

  std::vector<std::size_t> pos_groups, neg_groups;
  for (const auto& [g, y] : group_label)
    (y == 1 ? pos_groups : neg_groups).push_back(g);
  HMD_REQUIRE_MSG(pos_groups.size() >= k && neg_groups.size() >= k,
                  "need at least k applications per class");

  auto shuffle = [&](std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i)
      std::swap(v[i - 1], v[rng.below(i)]);
  };
  shuffle(pos_groups);
  shuffle(neg_groups);

  // Assign groups to folds round-robin, stratified.
  std::map<std::size_t, std::size_t> fold_of;
  for (std::size_t i = 0; i < pos_groups.size(); ++i)
    fold_of[pos_groups[i]] = i % k;
  for (std::size_t i = 0; i < neg_groups.size(); ++i)
    fold_of[neg_groups[i]] = i % k;

  CrossValidationResult result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    std::vector<std::size_t> train_rows, test_rows;
    for (std::size_t i = 0; i < data.num_rows(); ++i)
      (fold_of.at(data.group(i)) == fold ? test_rows : train_rows)
          .push_back(i);
    HMD_INVARIANT(!train_rows.empty() && !test_rows.empty());

    auto model = prototype.clone_untrained();
    model->train(data.subset(train_rows));
    result.folds.push_back(
        evaluate_detector(*model, data.subset(test_rows)));
  }

  const auto n = static_cast<double>(result.folds.size());
  double acc = 0.0, auc = 0.0, perf = 0.0;
  for (const auto& m : result.folds) {
    acc += m.accuracy;
    auc += m.auc;
    perf += m.performance();
  }
  result.mean_accuracy = acc / n;
  result.mean_auc = auc / n;
  result.mean_performance = perf / n;
  double va = 0.0, vu = 0.0;
  for (const auto& m : result.folds) {
    va += (m.accuracy - result.mean_accuracy) *
          (m.accuracy - result.mean_accuracy);
    vu += (m.auc - result.mean_auc) * (m.auc - result.mean_auc);
  }
  result.stddev_accuracy = n > 1 ? std::sqrt(va / (n - 1)) : 0.0;
  result.stddev_auc = n > 1 ? std::sqrt(vu / (n - 1)) : 0.0;
  return result;
}

}  // namespace hmd::ml

// SGD — linear model trained by stochastic gradient descent on the hinge
// loss (WEKA's SGD default), i.e. a primal linear SVM.
//
// Like WEKA, the hinge-loss SGD classifier emits *hard* class posteriors
// (0 or 1): with the hinge loss there is no calibrated probability, and the
// paper's low standalone AUC for SGD (~0.72) is a direct consequence. The
// graded scores that make boosted/bagged SGD robust come from the ensemble
// combination, not from the base model.
#pragma once

#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

class Sgd final : public Classifier {
 public:
  explicit Sgd(double lambda = 1e-4, std::size_t epochs = 100,
               std::uint64_t seed = 1)
      : lambda_(lambda), epochs_(epochs), seed_(seed) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<Sgd>(lambda_, epochs_, seed_);
  }
  std::string name() const override { return "SGD"; }
  ModelComplexity complexity() const override;

  /// Raw decision margin w·x + b (standardized inputs).
  double margin(std::span<const double> x) const;

  /// Trained parameters (for hardware codegen): margin =
  /// sum_f weights()[f] * (x[f] - input_mean()[f]) / input_stdev()[f] + bias().
  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }
  const std::vector<double>& input_mean() const { return mean_; }
  const std::vector<double>& input_stdev() const { return stdev_; }

 private:
  double lambda_;
  std::size_t epochs_;
  std::uint64_t seed_;

  std::size_t nf_ = 0;
  std::vector<double> mean_, stdev_;
  std::vector<double> w_;
  double b_ = 0.0;
  bool trained_ = false;
};

}  // namespace hmd::ml

// Feature reduction — the "Correlation Analysis & Attribute Evaluation +
// Feature Scoring" stage of the paper's Figure 2.
//
// The paper scores the 44 captured events with WEKA's Correlation Attribute
// Evaluation, ranks them, and keeps the 16 most important (paper Table 1);
// detectors are then built on the top {16, 8, 4, 2}. We implement the same
// evaluator (|Pearson correlation with the class|) plus an information-gain
// evaluator for cross-checking.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.h"

namespace hmd::ml {

struct FeatureScore {
  std::size_t feature = 0;  ///< column index in the scored dataset
  double score = 0.0;
};

/// WEKA CorrelationAttributeEval: rank features by the absolute value of
/// the Pearson correlation between the feature and the {0,1} class.
/// Result is sorted by descending score (ties broken by column order).
std::vector<FeatureScore> correlation_ranking(const Dataset& data);

/// InfoGainAttributeEval: MDL-discretize each feature, rank by information
/// gain about the class.
std::vector<FeatureScore> info_gain_ranking(const Dataset& data);

/// The top-k feature indices of a ranking, in rank order.
std::vector<std::size_t> top_k_features(const std::vector<FeatureScore>& ranking,
                                        std::size_t k);

/// Redundancy filter on a ranking: walk in rank order, dropping any feature
/// whose absolute Pearson correlation with an already-kept feature exceeds
/// `max_abs_corr`. Removes the degenerate duplicates a raw correlation
/// ranker keeps (e.g. cpu_cycles / ref_cycles / bus_cycles, which are the
/// same signal), the way a human analyst curates the WEKA ranker output.
std::vector<FeatureScore> prune_redundant(const Dataset& data,
                                          const std::vector<FeatureScore>& ranking,
                                          double max_abs_corr = 0.90);

}  // namespace hmd::ml

#include "ml/jrip.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "ml/presort.h"
#include "support/check.h"
#include "support/rng.h"

namespace hmd::ml {
namespace {

double log2_safe(double v) { return v <= 0.0 ? 0.0 : std::log2(v); }

/// Weighted (target, other) coverage of a condition set over `rows`.
struct Coverage {
  double p = 0.0;  ///< target-class weight covered
  double n = 0.0;  ///< other-class weight covered
};

Coverage coverage(const JRip::Rule& rule, const Dataset& data,
                  const std::vector<std::size_t>& rows, int target) {
  Coverage cov;
  for (std::size_t r : rows) {
    if (!rule.matches(data.row(r))) continue;
    (data.label(r) == target ? cov.p : cov.n) += data.weight(r);
  }
  return cov;
}

}  // namespace

JRip::Rule JRip::grow_rule(const Dataset& data,
                           const std::vector<std::size_t>& rows) const {
  Rule rule;
  std::vector<std::size_t> covered = rows;

  // Per-feature sorted lists of the grow set, built once per rule from the
  // storage's value-run cache and filtered in place as conditions accrue
  // (ties stay in grow-set order, matching the legacy stable sort).
  Presort presort(data);
  Presort::Lists lists = presort.make_lists(covered);

  for (;;) {
    Coverage before;
    for (std::size_t r : covered)
      (data.label(r) == target_ ? before.p : before.n) += data.weight(r);
    if (before.n == 0.0 || before.p == 0.0) break;  // pure or hopeless
    const double base = log2_safe(before.p / (before.p + before.n));

    // Search all (feature, direction, threshold) conditions for best FOIL
    // gain using one sorted sweep per feature.
    double best_gain = 1e-9;
    Condition best{};
    std::vector<SweepItem>& items = presort.scratch();
    for (std::size_t f = 0; f < data.num_features(); ++f) {
      presort.gather(covered, lists, f, items);
      double lp = 0.0, ln = 0.0;
      for (std::size_t i = 0; i < items.size(); ++i) {
        (items[i].y == target_ ? lp : ln) += items[i].w;
        if (i + 1 < items.size() && items[i + 1].v <= items[i].v) continue;
        // Condition x <= v keeps the left mass; x >= next keeps the right.
        if (lp >= min_rule_weight_) {
          const double gain =
              lp * (log2_safe(lp / (lp + ln)) - base);
          if (gain > best_gain) {
            best_gain = gain;
            best = {f, true, items[i].v};
          }
        }
        const double rp = before.p - lp, rn = before.n - ln;
        if (i + 1 < items.size() && rp >= min_rule_weight_) {
          const double gain =
              rp * (log2_safe(rp / (rp + rn)) - base);
          if (gain > best_gain) {
            best_gain = gain;
            best = {f, false, items[i + 1].v};
          }
        }
      }
    }
    if (best_gain <= 1e-9) break;

    rule.conditions.push_back(best);
    std::vector<std::size_t> still;
    still.reserve(covered.size());
    const double* best_col = data.raw_column(best.feature).data();
    const std::uint32_t* map = data.row_map().data();
    for (std::size_t r : covered) {
      const double v = best_col[map[r]];
      if (best.leq ? v <= best.value : v >= best.value) still.push_back(r);
    }
    covered = std::move(still);
    presort.filter_lists(&lists, best.feature, best.leq, best.value);
    if (covered.empty()) break;
  }
  return rule;
}

void JRip::prune_rule(Rule& rule, const Dataset& data,
                      const std::vector<std::size_t>& rows) const {
  if (rule.conditions.empty() || rows.empty()) return;
  // Evaluate every trailing truncation with the RIPPER pruning metric
  // (p - n) / (p + n); keep the best (ties favour the shorter rule).
  double best_value = -std::numeric_limits<double>::infinity();
  std::size_t best_len = rule.conditions.size();
  for (std::size_t len = rule.conditions.size(); len >= 1; --len) {
    Rule truncated;
    truncated.conditions.assign(rule.conditions.begin(),
                                rule.conditions.begin() + len);
    const Coverage cov = coverage(truncated, data, rows, target_);
    const double denom = cov.p + cov.n;
    const double value = denom > 0.0 ? (cov.p - cov.n) / denom : -1.0;
    if (value >= best_value) {  // >= prefers shorter rules on ties
      best_value = value;
      best_len = len;
    }
  }
  rule.conditions.resize(best_len);
}

double JRip::rule_dl(const Rule& rule, const Dataset& data,
                     const std::vector<std::size_t>& rows) const {
  // Description length = theory bits + exception bits (entropy
  // approximation of RIPPER's subset encoding).
  const double d = static_cast<double>(data.num_features());
  const double theory =
      static_cast<double>(rule.conditions.size()) * (log2_safe(d) + 8.0) + 1.0;

  Coverage cov = coverage(rule, data, rows, target_);
  double total_p = 0.0, total_n = 0.0;
  for (std::size_t r : rows)
    (data.label(r) == target_ ? total_p : total_n) += data.weight(r);
  const double covered = cov.p + cov.n;
  const double uncovered = (total_p + total_n) - covered;
  const double fp = cov.n;            // wrongly captured others
  const double fn = total_p - cov.p;  // missed targets
  auto subset_bits = [](double n, double k) {
    if (n <= 0.0 || k <= 0.0 || k >= n) return 0.0;
    const double q = k / n;
    return n * (-q * std::log2(q) - (1.0 - q) * std::log2(1.0 - q));
  };
  return theory + subset_bits(covered, fp) + subset_bits(uncovered, fn);
}

void JRip::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  rules_.clear();
  Rng rng(seed_);

  // RIPPER learns rules for the minority class; the other is the default.
  const double w_pos = data.positive_weight();
  const double w_all = data.total_weight();
  target_ = w_pos <= w_all - w_pos ? 1 : 0;

  std::vector<std::size_t> remaining(data.num_rows());
  for (std::size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  double best_dl = std::numeric_limits<double>::infinity();
  while (true) {
    double rem_p = 0.0;
    for (std::size_t r : remaining)
      if (data.label(r) == target_) rem_p += data.weight(r);
    if (rem_p < min_rule_weight_) break;

    // Fresh stratified 2/3 grow | 1/3 prune split of the remaining rows.
    std::vector<std::size_t> shuffled = remaining;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    const std::size_t cut = shuffled.size() * 2 / 3;
    std::vector<std::size_t> grow_rows(shuffled.begin(),
                                       shuffled.begin() + cut);
    std::vector<std::size_t> prune_rows(shuffled.begin() + cut,
                                        shuffled.end());
    if (grow_rows.empty()) break;

    Rule rule = grow_rule(data, grow_rows);
    if (rule.conditions.empty()) break;
    prune_rule(rule, data, prune_rows);

    // Stop when the rule is worse than random on the prune partition.
    const Coverage pcov = coverage(rule, data, prune_rows, target_);
    if (pcov.p + pcov.n > 0.0 && pcov.p < pcov.n) break;

    // MDL stop: a rule set whose DL drifts 64 bits past the best is done.
    const double dl = rule_dl(rule, data, remaining);
    best_dl = std::min(best_dl, dl);
    if (dl > best_dl + 64.0) break;

    // Record the rule with its training precision.
    const Coverage cov = coverage(rule, data, remaining, target_);
    rule.precision = (cov.p + 1.0) / (cov.p + cov.n + 2.0);
    rules_.push_back(rule);

    std::vector<std::size_t> still;
    still.reserve(remaining.size());
    for (std::size_t r : remaining)
      if (!rules_.back().matches(data.row(r))) still.push_back(r);
    if (still.size() == remaining.size()) break;  // no progress
    remaining = std::move(still);
  }

  // Optimisation passes: try a freshly grown replacement for each rule and
  // keep whichever rule set has the lower training error.
  std::vector<std::size_t> all_rows(data.num_rows());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  auto ruleset_errors = [&](const std::vector<Rule>& rules) {
    double errors = 0.0;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      bool fired = false;
      for (const Rule& r : rules)
        if (r.matches(data.row(i))) {
          fired = true;
          break;
        }
      const int pred = fired ? target_ : 1 - target_;
      if (pred != data.label(i)) errors += data.weight(i);
    }
    return errors;
  };
  for (std::size_t pass = 0; pass < optimize_passes_ && !rules_.empty();
       ++pass) {
    for (std::size_t k = 0; k < rules_.size(); ++k) {
      // Rows not captured by earlier rules are this rule's jurisdiction.
      std::vector<std::size_t> scope;
      for (std::size_t i = 0; i < data.num_rows(); ++i) {
        bool earlier = false;
        for (std::size_t j = 0; j < k; ++j)
          if (rules_[j].matches(data.row(i))) {
            earlier = true;
            break;
          }
        if (!earlier) scope.push_back(i);
      }
      if (scope.empty()) continue;

      std::vector<std::size_t> shuffled = scope;
      for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
      const std::size_t cut = shuffled.size() * 2 / 3;
      std::vector<std::size_t> grow_rows(shuffled.begin(),
                                         shuffled.begin() + cut);
      std::vector<std::size_t> prune_rows(shuffled.begin() + cut,
                                          shuffled.end());
      if (grow_rows.empty()) continue;
      Rule replacement = grow_rule(data, grow_rows);
      prune_rule(replacement, data, prune_rows);
      if (replacement.conditions.empty()) continue;
      const Coverage cov = coverage(replacement, data, scope, target_);
      replacement.precision = (cov.p + 1.0) / (cov.p + cov.n + 2.0);

      const double err_before = ruleset_errors(rules_);
      const Rule original = rules_[k];
      rules_[k] = replacement;
      const double err_after = ruleset_errors(rules_);
      if (err_after >= err_before) rules_[k] = original;
    }
  }

  // Default (no rule fires) probability from the uncovered distribution.
  double up = 0.0, un = 0.0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    bool fired = false;
    for (const Rule& r : rules_)
      if (r.matches(data.row(i))) {
        fired = true;
        break;
      }
    if (!fired) (data.label(i) == 1 ? up : un) += data.weight(i);
  }
  default_proba_ = (up + 1.0) / (up + un + 2.0);
  trained_ = true;
}

double JRip::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "JRip::train() must be called first");
  for (const Rule& rule : rules_) {
    if (rule.matches(x))
      return target_ == 1 ? rule.precision : 1.0 - rule.precision;
  }
  return default_proba_;
}

ModelComplexity JRip::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "rules";
  std::set<std::size_t> features;
  for (const Rule& rule : rules_) {
    mc.comparators += rule.conditions.size();
    for (const Condition& c : rule.conditions) features.insert(c.feature);
  }
  mc.table_entries = rules_.size() + 1;  // decision-list actions + default
  mc.depth = 1 + rules_.size();          // priority chain
  mc.inputs = features.size();
  return mc;
}

}  // namespace hmd::ml

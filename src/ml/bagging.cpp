#include "ml/bagging.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/rng.h"

namespace hmd::ml {

Bagging::Bagging(std::unique_ptr<Classifier> prototype, std::size_t bags,
                 std::uint64_t seed)
    : prototype_(std::move(prototype)), bags_(bags), seed_(seed) {
  HMD_REQUIRE(prototype_ != nullptr);
  HMD_REQUIRE(bags_ >= 1);
}

void Bagging::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  members_.clear();
  Rng rng(seed_);
  for (std::size_t b = 0; b < bags_; ++b) {
    Rng bag_rng = rng.fork(b);
    const Dataset sample = data.bootstrap(bag_rng);
    auto model = prototype_->clone_untrained();
    model->train(sample);
    members_.push_back(std::move(model));
  }
  trained_ = true;
}

double Bagging::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "Bagging::train() must be called first");
  double acc = 0.0;
  for (const auto& m : members_) acc += m->predict_proba(x);
  return acc / static_cast<double>(members_.size());
}

double Bagging::margin(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "Bagging::train() must be called first");
  std::size_t votes = 0;
  for (const auto& m : members_) votes += m->predict(x) == 1 ? 1u : 0u;
  const double frac =
      static_cast<double>(votes) / static_cast<double>(members_.size());
  return std::abs(2.0 * frac - 1.0);
}

std::unique_ptr<Classifier> Bagging::clone_untrained() const {
  return std::make_unique<Bagging>(prototype_->clone_untrained(), bags_,
                                   seed_);
}

std::string Bagging::name() const {
  return "Bagging(" + prototype_->name() + ")";
}

ModelComplexity Bagging::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "ensemble";
  for (const auto& m : members_) {
    mc.children.push_back(m->complexity());
    mc.inputs = std::max(mc.inputs, mc.children.back().inputs);
  }
  mc.adders = members_.size();  // probability averaging tree
  mc.comparators = 1;
  std::size_t max_child_depth = 0;
  for (const auto& c : mc.children)
    max_child_depth = std::max(max_child_depth, c.depth);
  std::size_t d = 0, n = std::max<std::size_t>(members_.size(), 1);
  while (n > 1) {
    n = (n + 1) / 2;
    ++d;
  }
  mc.depth = max_child_depth + d + 1;
  return mc;
}

}  // namespace hmd::ml

#include "ml/feature_selection.h"

#include <algorithm>
#include <cmath>

#include "ml/discretize.h"
#include "support/check.h"
#include "support/stats.h"

namespace hmd::ml {
namespace {

std::vector<FeatureScore> sort_scores(std::vector<FeatureScore> scores) {
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     return a.score > b.score;
                   });
  return scores;
}

}  // namespace

std::vector<FeatureScore> correlation_ranking(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 1);
  const std::vector<double> y = data.labels_as_double();
  const std::span<const double> w = data.weights();

  std::vector<FeatureScore> scores;
  scores.reserve(data.num_features());
  std::vector<double> scratch;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const std::span<const double> col = data.column_view(f, scratch);
    scores.push_back({f, std::fabs(weighted_pearson(col, y, w))});
  }
  return sort_scores(std::move(scores));
}

std::vector<FeatureScore> info_gain_ranking(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 1);
  std::vector<int> labels;
  labels.reserve(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    labels.push_back(data.label(i));
  const std::span<const double> weights = data.weights();

  std::vector<FeatureScore> scores;
  scores.reserve(data.num_features());
  std::vector<double> scratch;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const std::span<const double> col = data.column_view(f, scratch);
    const Discretizer disc = mdl_discretize(col, labels, weights);
    scores.push_back({f, information_gain(disc, col, labels, weights)});
  }
  return sort_scores(std::move(scores));
}

std::vector<FeatureScore> prune_redundant(
    const Dataset& data, const std::vector<FeatureScore>& ranking,
    double max_abs_corr) {
  HMD_REQUIRE(max_abs_corr > 0.0 && max_abs_corr <= 1.0);
  std::vector<FeatureScore> kept;
  std::vector<std::vector<double>> kept_cols;  // copies of kept columns only
  std::vector<double> scratch;
  for (const FeatureScore& fs : ranking) {
    const std::span<const double> col = data.column_view(fs.feature, scratch);
    bool redundant = false;
    for (const auto& other : kept_cols) {
      if (std::fabs(pearson(col, other)) >= max_abs_corr) {
        redundant = true;
        break;
      }
    }
    if (!redundant) {
      kept.push_back(fs);
      kept_cols.emplace_back(col.begin(), col.end());
    }
  }
  return kept;
}

std::vector<std::size_t> top_k_features(
    const std::vector<FeatureScore>& ranking, std::size_t k) {
  HMD_REQUIRE(k >= 1 && k <= ranking.size());
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(ranking[i].feature);
  return out;
}

}  // namespace hmd::ml

// RandomForest (Breiman, 2001) — extension beyond the paper's two ensemble
// techniques.
//
// The paper studies AdaBoost and Bagging over deterministic base learners;
// the obvious next step (and what later HMD work adopted) is a forest of
// randomized trees: bagging plus per-split random feature subsets of size
// ceil(sqrt(d)). Included here as an extension classifier and exercised in
// the ensemble ablation bench.
#pragma once

#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/presort.h"

namespace hmd::ml {

/// An unpruned decision tree that considers a random feature subset at
/// every split (the RandomForest base learner). Usable standalone.
class RandomTree final : public Classifier {
 public:
  /// `features_per_split` = 0 selects ceil(sqrt(d)) at train time.
  explicit RandomTree(std::size_t features_per_split = 0,
                      double min_leaf_weight = 1.0, std::uint64_t seed = 1)
      : features_per_split_(features_per_split),
        min_leaf_weight_(min_leaf_weight),
        seed_(seed) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<RandomTree>(features_per_split_,
                                        min_leaf_weight_, seed_);
  }
  std::string name() const override { return "RandomTree"; }
  ModelComplexity complexity() const override;
  bool trained() const { return trained_; }

  /// Flattened reachable tree (for the flat inference backend); see
  /// J48::FlatNode — index 0 is the root.
  struct FlatNode {
    bool leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    double proba = 0.5;
  };
  std::vector<FlatNode> flatten() const;

 private:
  struct Node {
    bool leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int64_t left = -1;
    std::int64_t right = -1;
    double w_pos = 0.0;
    double w_neg = 0.0;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& rows,
                    Rng& rng, Presort& presort, Presort::Lists& lists);

  std::size_t features_per_split_;
  double min_leaf_weight_;
  std::uint64_t seed_;

  std::vector<Node> nodes_;
  bool trained_ = false;
};

/// Bagging of RandomTrees with probability averaging.
class RandomForest final : public Classifier {
 public:
  explicit RandomForest(std::size_t trees = 30,
                        std::size_t features_per_split = 0,
                        std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  std::string name() const override { return "RandomForest"; }
  ModelComplexity complexity() const override;

  std::size_t num_trees() const { return members_.size(); }
  const Classifier& member(std::size_t i) const { return *members_[i]; }

 private:
  std::size_t trees_;
  std::size_t features_per_split_;
  std::uint64_t seed_;

  std::vector<std::unique_ptr<Classifier>> members_;
  bool trained_ = false;
};

}  // namespace hmd::ml

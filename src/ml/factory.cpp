// Classifier factory: maps the paper's classifier/ensemble taxonomy onto
// concrete instances with WEKA-default hyper-parameters.
#include <array>

#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/bayesnet.h"
#include "ml/classifier.h"
#include "ml/j48.h"
#include "ml/jrip.h"
#include "ml/mlp.h"
#include "ml/oner.h"
#include "ml/reptree.h"
#include "ml/sgd.h"
#include "ml/smo.h"
#include "support/check.h"

namespace hmd::ml {
namespace {

constexpr std::array<ClassifierKind, kClassifierKindCount> kAllClassifiers = {
    ClassifierKind::kBayesNet, ClassifierKind::kJ48,
    ClassifierKind::kJRip,     ClassifierKind::kMlp,
    ClassifierKind::kOneR,     ClassifierKind::kRepTree,
    ClassifierKind::kSgd,      ClassifierKind::kSmo,
};

constexpr std::array<EnsembleKind, kEnsembleKindCount> kAllEnsembles = {
    EnsembleKind::kGeneral,
    EnsembleKind::kAdaBoost,
    EnsembleKind::kBagging,
};

}  // namespace

std::string_view classifier_kind_name(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kBayesNet: return "BayesNet";
    case ClassifierKind::kJ48: return "J48";
    case ClassifierKind::kJRip: return "JRip";
    case ClassifierKind::kMlp: return "MLP";
    case ClassifierKind::kOneR: return "OneR";
    case ClassifierKind::kRepTree: return "REPTree";
    case ClassifierKind::kSgd: return "SGD";
    case ClassifierKind::kSmo: return "SMO";
  }
  throw PreconditionError("unknown classifier kind");
}

std::string_view ensemble_kind_name(EnsembleKind kind) {
  switch (kind) {
    case EnsembleKind::kGeneral: return "General";
    case EnsembleKind::kAdaBoost: return "Boosted";
    case EnsembleKind::kBagging: return "Bagging";
  }
  throw PreconditionError("unknown ensemble kind");
}

std::span<const ClassifierKind> all_classifier_kinds() {
  return kAllClassifiers;
}

std::span<const EnsembleKind> all_ensemble_kinds() { return kAllEnsembles; }

std::unique_ptr<Classifier> make_classifier(ClassifierKind kind,
                                            std::uint64_t seed) {
  switch (kind) {
    case ClassifierKind::kBayesNet:
      return std::make_unique<BayesNet>();
    case ClassifierKind::kJ48:
      return std::make_unique<J48>();
    case ClassifierKind::kJRip:
      return std::make_unique<JRip>(/*optimize_passes=*/2,
                                    /*min_rule_weight=*/2.0, seed);
    case ClassifierKind::kMlp:
      return std::make_unique<Mlp>(/*hidden=*/0, /*learning_rate=*/0.3,
                                   /*momentum=*/0.2, /*epochs=*/300, seed);
    case ClassifierKind::kOneR:
      return std::make_unique<OneR>();
    case ClassifierKind::kRepTree:
      return std::make_unique<RepTree>(/*min_leaf_weight=*/2.0,
                                       /*num_folds=*/3, /*max_depth=*/0,
                                       seed);
    case ClassifierKind::kSgd:
      return std::make_unique<Sgd>(/*lambda=*/1e-4, /*epochs=*/100, seed);
    case ClassifierKind::kSmo:
      return std::make_unique<Smo>(/*c=*/1.0, /*tolerance=*/1e-3,
                                   /*max_passes=*/8, seed);
  }
  throw PreconditionError("unknown classifier kind");
}

std::unique_ptr<Classifier> make_detector(ClassifierKind kind,
                                          EnsembleKind ensemble,
                                          std::uint64_t seed) {
  auto base = make_classifier(kind, seed);
  switch (ensemble) {
    case EnsembleKind::kGeneral:
      return base;
    case EnsembleKind::kAdaBoost:
      return std::make_unique<AdaBoostM1>(std::move(base), /*iterations=*/10,
                                          seed);
    case EnsembleKind::kBagging:
      return std::make_unique<Bagging>(std::move(base), /*bags=*/10, seed);
  }
  throw PreconditionError("unknown ensemble kind");
}

}  // namespace hmd::ml

#include "ml/oner.h"

#include <algorithm>
#include <limits>

#include "ml/presort.h"
#include "support/check.h"

namespace hmd::ml {
namespace {

struct Rule {
  std::vector<double> cuts;
  std::vector<double> proba;
  double error = std::numeric_limits<double>::infinity();
};

/// Build the OneR bucket rule for one feature (Holte's algorithm) from the
/// value-sorted items: sweep sorted values; close a bucket once its majority
/// class has at least `min_bucket` weight and the next value differs; merge
/// adjacent buckets that predict the same class.
Rule build_rule(std::span<const SweepItem> s, double min_bucket) {
  struct Bucket {
    double pos = 0.0, neg = 0.0;
    double upper = 0.0;  ///< largest value in bucket
  };
  std::vector<Bucket> buckets;
  Bucket cur;
  for (std::size_t i = 0; i < s.size(); ++i) {
    (s[i].y == 1 ? cur.pos : cur.neg) += s[i].w;
    cur.upper = s[i].v;
    const bool boundary = i + 1 == s.size() || s[i + 1].v > s[i].v;
    const bool full = std::max(cur.pos, cur.neg) >= min_bucket;
    if (boundary && (full || i + 1 == s.size())) {
      buckets.push_back(cur);
      cur = Bucket{};
    }
  }
  if (buckets.empty()) return Rule{};

  // Merge trailing under-filled bucket and same-majority neighbours.
  std::vector<Bucket> merged;
  for (const Bucket& b : buckets) {
    if (!merged.empty()) {
      const bool same_class = (merged.back().pos >= merged.back().neg) ==
                              (b.pos >= b.neg);
      if (same_class) {
        merged.back().pos += b.pos;
        merged.back().neg += b.neg;
        merged.back().upper = b.upper;
        continue;
      }
    }
    merged.push_back(b);
  }

  Rule rule;
  double error = 0.0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const Bucket& b = merged[i];
    const double total = b.pos + b.neg;
    rule.proba.push_back(total > 0.0 ? b.pos / total : 0.5);
    error += std::min(b.pos, b.neg);
    if (i + 1 < merged.size()) {
      rule.cuts.push_back(b.upper);  // boundary at the last covered value
    }
  }
  rule.error = error;
  return rule;
}

}  // namespace

void OneR::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  HMD_REQUIRE(data.num_features() >= 1);

  std::vector<std::size_t> rows(data.num_rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Presort presort(data);
  const Presort::Lists lists = presort.make_lists(rows);

  Rule best;
  std::size_t best_feature = 0;
  std::vector<SweepItem>& items = presort.scratch();
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    presort.gather(rows, lists, f, items);
    Rule rule = build_rule(items, min_bucket_weight_);
    if (rule.error < best.error) {
      best = std::move(rule);
      best_feature = f;
    }
  }
  HMD_INVARIANT(!best.proba.empty());
  feature_ = best_feature;
  cuts_ = std::move(best.cuts);
  proba_ = std::move(best.proba);
  trained_ = true;
}

double OneR::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "OneR::train() must be called first");
  HMD_REQUIRE(feature_ < x.size());
  const double v = x[feature_];
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(cuts_.begin(), cuts_.end(), v) - cuts_.begin());
  return proba_[bucket];
}

ModelComplexity OneR::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "rules";
  mc.comparators = cuts_.size();
  mc.table_entries = proba_.size();
  mc.depth = 1;  // one parallel compare + table lookup
  mc.inputs = 1;
  return mc;
}

}  // namespace hmd::ml

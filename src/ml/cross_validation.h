// Group-aware k-fold cross-validation.
//
// The paper uses a single 70/30 application split; cross-validation over
// *applications* (never splitting one application's intervals across
// folds) gives the same unknown-application discipline with variance
// estimates — used by the robustness ablations.
#pragma once

#include <cstddef>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace hmd::ml {

/// Per-fold and aggregate results of a cross-validation run.
struct CrossValidationResult {
  std::vector<DetectorMetrics> folds;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  double mean_auc = 0.0;
  double stddev_auc = 0.0;
  double mean_performance = 0.0;  ///< mean of per-fold ACC×AUC
};

/// K-fold CV where folds partition *groups* (applications), stratified by
/// class. The prototype is cloned untrained for every fold. Requires at
/// least k groups per class.
CrossValidationResult cross_validate(const Classifier& prototype,
                                     const Dataset& data, std::size_t k,
                                     Rng& rng);

}  // namespace hmd::ml

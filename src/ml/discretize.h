// Attribute discretization: Fayyad–Irani MDL (supervised) and
// equal-frequency binning.
//
// Used by BayesNet (its conditional probability tables are over discretized
// HPC values), by OneR (bucket construction), and by the information-gain
// attribute evaluator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hmd::ml {

/// A set of ascending cut points defining num_cuts()+1 bins.
class Discretizer {
 public:
  Discretizer() = default;
  explicit Discretizer(std::vector<double> cuts);

  /// Bin index of a value: number of cuts strictly below it.
  std::size_t bin(double v) const;

  std::size_t num_bins() const { return cuts_.size() + 1; }
  const std::vector<double>& cuts() const { return cuts_; }

 private:
  std::vector<double> cuts_;  ///< ascending
};

/// Weighted Shannon entropy (bits) of a binary class distribution.
double binary_entropy(double w_pos, double w_neg);

/// Fayyad–Irani MDL-principled recursive discretization of one attribute
/// against binary labels. Returns no cuts when no split passes the MDL
/// criterion (the attribute is then useless to BayesNet — same as WEKA).
Discretizer mdl_discretize(std::span<const double> values,
                           std::span<const int> labels,
                           std::span<const double> weights);

/// Unsupervised equal-frequency binning with `bins` target bins
/// (duplicate boundaries are merged, so fewer bins may result).
Discretizer equal_frequency_discretize(std::span<const double> values,
                                       std::size_t bins);

/// Information gain (bits) of splitting `labels` by the discretizer's bins —
/// the InfoGainAttributeEval score for the attribute.
double information_gain(const Discretizer& disc,
                        std::span<const double> values,
                        std::span<const int> labels,
                        std::span<const double> weights);

}  // namespace hmd::ml

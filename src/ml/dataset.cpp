#include "ml/dataset.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <set>

#include "support/check.h"

namespace hmd::ml {

namespace {

// -1 = unresolved (read HMD_LEGACY_DATASET on first use), else DatasetMode.
std::atomic<int> g_dataset_mode{-1};

}  // namespace

DatasetMode dataset_mode() {
  int mode = g_dataset_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("HMD_LEGACY_DATASET");
    mode = (env != nullptr && env[0] == '1')
               ? static_cast<int>(DatasetMode::kLegacy)
               : static_cast<int>(DatasetMode::kColumnar);
    g_dataset_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<DatasetMode>(mode);
}

void set_dataset_mode(DatasetMode mode) {
  g_dataset_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace detail {

void DatasetStorage::ensure_runs() {
  // Double-checked publication: the unlocked acquire-probe makes the
  // post-build fast path lock-free, the mutex serialises racing builders,
  // and the release-store publishes the completed cache to later probes.
  if (runs_built.load(std::memory_order_acquire)) return;
  support::MutexLock lock(runs_mutex);
  if (runs_built.load(std::memory_order_relaxed)) return;
  runs.resize(columns.size());
  std::vector<std::uint32_t> order(num_rows);
  for (std::size_t f = 0; f < columns.size(); ++f) {
    const std::vector<double>& col = columns[f];
    std::iota(order.begin(), order.end(), 0u);
    // stable: equal values keep ascending storage-row order, so run
    // membership is a pure function of the value.
    std::stable_sort(order.begin(), order.end(),
                     [&col](std::uint32_t a, std::uint32_t b) {
                       return col[a] < col[b];
                     });
    FeatureRuns& fr = runs[f];
    fr.run_of.resize(num_rows);
    std::uint32_t run = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i > 0 && col[order[i]] > col[order[i - 1]]) ++run;
      fr.run_of[order[i]] = run;
    }
    fr.num_runs = num_rows > 0 ? run + 1 : 0;
  }
  runs_built.store(true, std::memory_order_release);
}

// Reads `runs` without holding runs_mutex, which the thread-safety analysis
// cannot model: the runtime precondition below is the actual guard — a true
// runs_ready() acquire-load synchronises with the builder's release-store,
// after which `runs` is immutable (ensure_appendable clones run-cached
// storage rather than appending to it).
const FeatureRuns& DatasetStorage::runs_of(std::size_t f)
    const HMD_NO_THREAD_SAFETY_ANALYSIS {
  HMD_REQUIRE_MSG(runs_ready(),
                  "value-run cache read before ensure_runs() published it");
  return runs[f];
}

}  // namespace detail

Dataset::Dataset()
    : storage_(std::make_shared<detail::DatasetStorage>(
          std::vector<std::string>{})) {}

Dataset::Dataset(std::vector<std::string> feature_names)
    : storage_(
          std::make_shared<detail::DatasetStorage>(std::move(feature_names))) {
}

void Dataset::ensure_appendable() {
  if (storage_.use_count() == 1 && identity_ && !storage_->runs_ready())
    return;
  // Copy-on-write: materialise this view into fresh storage (no run cache)
  // so the append cannot be observed through any other view.
  auto fresh =
      std::make_shared<detail::DatasetStorage>(storage_->feature_names);
  const std::size_t nf = fresh->num_features();
  fresh->num_rows = rows_.size();
  fresh->flat.reserve(rows_.size() * nf);
  fresh->y.reserve(rows_.size());
  fresh->group.reserve(rows_.size());
  for (std::size_t f = 0; f < nf; ++f) {
    fresh->columns[f].reserve(rows_.size());
    for (std::uint32_t r : rows_) fresh->columns[f].push_back(
        storage_->columns[f][r]);
  }
  for (std::uint32_t r : rows_) {
    const double* src = storage_->flat.data() + std::size_t{r} * nf;
    fresh->flat.insert(fresh->flat.end(), src, src + nf);
    fresh->y.push_back(storage_->y[r]);
    fresh->group.push_back(storage_->group[r]);
  }
  storage_ = std::move(fresh);
  std::iota(rows_.begin(), rows_.end(), 0u);
  identity_ = true;
}

void Dataset::add_row(std::vector<double> x, int label, double weight,
                      std::size_t group) {
  HMD_REQUIRE(x.size() == storage_->num_features());
  HMD_REQUIRE(label == 0 || label == 1);
  HMD_REQUIRE(weight >= 0.0);
  ensure_appendable();
  detail::DatasetStorage& s = *storage_;
  HMD_REQUIRE(s.num_rows < std::numeric_limits<std::uint32_t>::max());
  for (std::size_t f = 0; f < x.size(); ++f) s.columns[f].push_back(x[f]);
  s.flat.insert(s.flat.end(), x.begin(), x.end());
  s.y.push_back(label);
  s.group.push_back(group);
  rows_.push_back(static_cast<std::uint32_t>(s.num_rows));
  w_.push_back(weight);
  ++s.num_rows;
}

void Dataset::reserve(std::size_t rows) {
  ensure_appendable();
  detail::DatasetStorage& s = *storage_;
  const std::size_t total = s.num_rows + rows;
  for (auto& col : s.columns) col.reserve(total);
  s.flat.reserve(total * s.num_features());
  s.y.reserve(total);
  s.group.reserve(total);
  rows_.reserve(rows_.size() + rows);
  w_.reserve(w_.size() + rows);
}

std::vector<double> Dataset::column(std::size_t f) const {
  HMD_REQUIRE(f < num_features());
  std::vector<double> out;
  out.reserve(num_rows());
  const std::vector<double>& col = storage_->columns[f];
  for (std::uint32_t r : rows_) out.push_back(col[r]);
  return out;
}

std::span<const double> Dataset::column_view(
    std::size_t f, std::vector<double>& scratch) const {
  HMD_REQUIRE(f < num_features());
  const std::vector<double>& col = storage_->columns[f];
  if (identity_) return col;
  scratch.clear();
  scratch.reserve(num_rows());
  for (std::uint32_t r : rows_) scratch.push_back(col[r]);
  return scratch;
}

std::vector<double> Dataset::labels_as_double() const {
  std::vector<double> out;
  out.reserve(num_rows());
  for (std::uint32_t r : rows_)
    out.push_back(static_cast<double>(storage_->y[r]));
  return out;
}

double Dataset::total_weight() const {
  double acc = 0.0;
  for (double w : w_) acc += w;
  return acc;
}

double Dataset::positive_weight() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < num_rows(); ++i)
    if (label(i) == 1) acc += w_[i];
  return acc;
}

void Dataset::set_weights(std::vector<double> w) {
  HMD_REQUIRE(w.size() == num_rows());
  for (double v : w) HMD_REQUIRE(v >= 0.0);
  w_ = std::move(w);
}

void Dataset::normalize_weights() {
  const double total = total_weight();
  HMD_REQUIRE_MSG(total > 0.0, "cannot normalize zero-weight dataset");
  const double scale = static_cast<double>(num_rows()) / total;
  for (double& w : w_) w *= scale;
}

Dataset Dataset::select_features(std::span<const std::size_t> features) const {
  std::vector<std::string> names;
  names.reserve(features.size());
  for (std::size_t f : features) {
    HMD_REQUIRE(f < num_features());
    names.push_back(storage_->feature_names[f]);
  }
  Dataset out(std::move(names));
  out.reserve(num_rows());
  for (std::size_t i = 0; i < num_rows(); ++i) {
    std::vector<double> row;
    row.reserve(features.size());
    for (std::size_t f : features) row.push_back(value(i, f));
    out.add_row(std::move(row), label(i), w_[i], group(i));
  }
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  if (dataset_mode() == DatasetMode::kLegacy) {
    // Reference path: deep copy, as before the columnar core.
    Dataset out(storage_->feature_names);
    out.reserve(rows.size());
    for (std::size_t i : rows) {
      HMD_REQUIRE(i < num_rows());
      const std::span<const double> r = row(i);
      out.add_row(std::vector<double>(r.begin(), r.end()), label(i), w_[i],
                  group(i));
    }
    return out;
  }
  Dataset out;
  out.storage_ = storage_;
  out.rows_.reserve(rows.size());
  out.w_.reserve(rows.size());
  for (std::size_t i : rows) {
    HMD_REQUIRE(i < num_rows());
    out.rows_.push_back(rows_[i]);
    out.w_.push_back(w_[i]);
  }
  out.identity_ = out.rows_.size() == storage_->num_rows;
  for (std::size_t i = 0; out.identity_ && i < out.rows_.size(); ++i)
    out.identity_ = out.rows_[i] == i;
  return out;
}

Dataset Dataset::bootstrap(Rng& rng) const {
  HMD_REQUIRE(num_rows() > 0);
  std::vector<std::size_t> rows(num_rows());
  for (auto& r : rows) r = rng.below(num_rows());
  Dataset out = subset(rows);
  // A bootstrap replicate carries fresh unit weights.
  out.set_weights(std::vector<double>(out.num_rows(), 1.0));
  return out;
}

Dataset Dataset::weighted_bootstrap(Rng& rng) const {
  HMD_REQUIRE(num_rows() > 0);
  // Cumulative weights for inverse-CDF sampling.
  std::vector<double> cum(num_rows());
  double acc = 0.0;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    acc += w_[i];
    cum[i] = acc;
  }
  HMD_REQUIRE_MSG(acc > 0.0, "all instance weights are zero");
  std::vector<std::size_t> rows;
  rows.reserve(num_rows());
  for (std::size_t i = 0; i < num_rows(); ++i) {
    const double r = rng.uniform(0.0, acc);
    const auto it = std::lower_bound(cum.begin(), cum.end(), r);
    rows.push_back(static_cast<std::size_t>(it - cum.begin()));
  }
  Dataset out = subset(rows);
  out.set_weights(std::vector<double>(out.num_rows(), 1.0));
  return out;
}

const detail::FeatureRuns& Dataset::feature_runs(std::size_t f) const {
  HMD_REQUIRE(f < num_features());
  storage_->ensure_runs();
  return storage_->runs_of(f);
}

void Dataset::warm_presort_cache() const { storage_->ensure_runs(); }

Split stratified_group_split(const Dataset& data, double train_frac,
                             Rng& rng) {
  HMD_REQUIRE(train_frac > 0.0 && train_frac < 1.0);
  HMD_REQUIRE(data.num_rows() > 0);

  // Group id -> label (groups are assumed label-pure: one application).
  std::set<std::size_t> benign_groups, malware_groups;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    (data.label(i) == 1 ? malware_groups : benign_groups)
        .insert(data.group(i));
  }

  auto pick_train = [&](const std::set<std::size_t>& groups) {
    std::vector<std::size_t> ids(groups.begin(), groups.end());
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = ids.size(); i > 1; --i)
      std::swap(ids[i - 1], ids[rng.below(i)]);
    const auto n_train = static_cast<std::size_t>(
        std::max(1.0, train_frac * static_cast<double>(ids.size())));
    return std::set<std::size_t>(ids.begin(),
                                 ids.begin() + std::min(n_train, ids.size()));
  };
  const std::set<std::size_t> train_benign = pick_train(benign_groups);
  const std::set<std::size_t> train_malware = pick_train(malware_groups);

  std::vector<std::size_t> train_rows, test_rows;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const bool in_train = data.label(i) == 1
                              ? train_malware.contains(data.group(i))
                              : train_benign.contains(data.group(i));
    (in_train ? train_rows : test_rows).push_back(i);
  }
  HMD_INVARIANT(!train_rows.empty());
  return Split{data.subset(train_rows), data.subset(test_rows)};
}

std::vector<std::vector<std::size_t>> stratified_row_folds(const Dataset& data,
                                                           std::size_t k,
                                                           Rng& rng) {
  HMD_REQUIRE(k >= 2);
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    (data.label(i) == 1 ? pos : neg).push_back(i);
  auto shuffle = [&](std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i)
      std::swap(v[i - 1], v[rng.below(i)]);
  };
  shuffle(pos);
  shuffle(neg);
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < pos.size(); ++i) folds[i % k].push_back(pos[i]);
  for (std::size_t i = 0; i < neg.size(); ++i) folds[i % k].push_back(neg[i]);
  return folds;
}

}  // namespace hmd::ml

#include "ml/dataset.h"

#include <algorithm>
#include <set>

#include "support/check.h"

namespace hmd::ml {

void Dataset::add_row(std::vector<double> x, int label, double weight,
                      std::size_t group) {
  HMD_REQUIRE(x.size() == feature_names_.size());
  HMD_REQUIRE(label == 0 || label == 1);
  HMD_REQUIRE(weight >= 0.0);
  x_.push_back(std::move(x));
  y_.push_back(label);
  w_.push_back(weight);
  group_.push_back(group);
}

std::vector<double> Dataset::column(std::size_t f) const {
  HMD_REQUIRE(f < num_features());
  std::vector<double> out;
  out.reserve(num_rows());
  for (const auto& row : x_) out.push_back(row[f]);
  return out;
}

std::vector<double> Dataset::labels_as_double() const {
  std::vector<double> out;
  out.reserve(num_rows());
  for (int y : y_) out.push_back(static_cast<double>(y));
  return out;
}

double Dataset::total_weight() const {
  double acc = 0.0;
  for (double w : w_) acc += w;
  return acc;
}

double Dataset::positive_weight() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < num_rows(); ++i)
    if (y_[i] == 1) acc += w_[i];
  return acc;
}

void Dataset::set_weights(std::vector<double> w) {
  HMD_REQUIRE(w.size() == num_rows());
  for (double v : w) HMD_REQUIRE(v >= 0.0);
  w_ = std::move(w);
}

void Dataset::normalize_weights() {
  const double total = total_weight();
  HMD_REQUIRE_MSG(total > 0.0, "cannot normalize zero-weight dataset");
  const double scale = static_cast<double>(num_rows()) / total;
  for (double& w : w_) w *= scale;
}

Dataset Dataset::select_features(std::span<const std::size_t> features) const {
  std::vector<std::string> names;
  names.reserve(features.size());
  for (std::size_t f : features) {
    HMD_REQUIRE(f < num_features());
    names.push_back(feature_names_[f]);
  }
  Dataset out(std::move(names));
  for (std::size_t i = 0; i < num_rows(); ++i) {
    std::vector<double> row;
    row.reserve(features.size());
    for (std::size_t f : features) row.push_back(x_[i][f]);
    out.add_row(std::move(row), y_[i], w_[i], group_[i]);
  }
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  Dataset out(feature_names_);
  for (std::size_t i : rows) {
    HMD_REQUIRE(i < num_rows());
    out.add_row(x_[i], y_[i], w_[i], group_[i]);
  }
  return out;
}

Dataset Dataset::bootstrap(Rng& rng) const {
  HMD_REQUIRE(num_rows() > 0);
  std::vector<std::size_t> rows(num_rows());
  for (auto& r : rows) r = rng.below(num_rows());
  Dataset out = subset(rows);
  // A bootstrap replicate carries fresh unit weights.
  out.set_weights(std::vector<double>(out.num_rows(), 1.0));
  return out;
}

Dataset Dataset::weighted_bootstrap(Rng& rng) const {
  HMD_REQUIRE(num_rows() > 0);
  // Cumulative weights for inverse-CDF sampling.
  std::vector<double> cum(num_rows());
  double acc = 0.0;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    acc += w_[i];
    cum[i] = acc;
  }
  HMD_REQUIRE_MSG(acc > 0.0, "all instance weights are zero");
  std::vector<std::size_t> rows;
  rows.reserve(num_rows());
  for (std::size_t i = 0; i < num_rows(); ++i) {
    const double r = rng.uniform(0.0, acc);
    const auto it = std::lower_bound(cum.begin(), cum.end(), r);
    rows.push_back(static_cast<std::size_t>(it - cum.begin()));
  }
  Dataset out = subset(rows);
  out.set_weights(std::vector<double>(out.num_rows(), 1.0));
  return out;
}

Split stratified_group_split(const Dataset& data, double train_frac,
                             Rng& rng) {
  HMD_REQUIRE(train_frac > 0.0 && train_frac < 1.0);
  HMD_REQUIRE(data.num_rows() > 0);

  // Group id -> label (groups are assumed label-pure: one application).
  std::set<std::size_t> benign_groups, malware_groups;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    (data.label(i) == 1 ? malware_groups : benign_groups)
        .insert(data.group(i));
  }

  auto pick_train = [&](const std::set<std::size_t>& groups) {
    std::vector<std::size_t> ids(groups.begin(), groups.end());
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = ids.size(); i > 1; --i)
      std::swap(ids[i - 1], ids[rng.below(i)]);
    const auto n_train = static_cast<std::size_t>(
        std::max(1.0, train_frac * static_cast<double>(ids.size())));
    return std::set<std::size_t>(ids.begin(),
                                 ids.begin() + std::min(n_train, ids.size()));
  };
  const std::set<std::size_t> train_benign = pick_train(benign_groups);
  const std::set<std::size_t> train_malware = pick_train(malware_groups);

  std::vector<std::size_t> train_rows, test_rows;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const bool in_train = data.label(i) == 1
                              ? train_malware.contains(data.group(i))
                              : train_benign.contains(data.group(i));
    (in_train ? train_rows : test_rows).push_back(i);
  }
  HMD_INVARIANT(!train_rows.empty());
  return Split{data.subset(train_rows), data.subset(test_rows)};
}

std::vector<std::vector<std::size_t>> stratified_row_folds(const Dataset& data,
                                                           std::size_t k,
                                                           Rng& rng) {
  HMD_REQUIRE(k >= 2);
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    (data.label(i) == 1 ? pos : neg).push_back(i);
  auto shuffle = [&](std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i)
      std::swap(v[i - 1], v[rng.below(i)]);
  };
  shuffle(pos);
  shuffle(neg);
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < pos.size(); ++i) folds[i % k].push_back(pos[i]);
  for (std::size_t i = 0; i < neg.size(); ++i) folds[i % k].push_back(neg[i]);
  return folds;
}

}  // namespace hmd::ml

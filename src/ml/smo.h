// SMO — Platt's Sequential Minimal Optimization for a soft-margin SVM
// with a linear kernel (WEKA's SMO default configuration: C = 1,
// tolerance 1e-3, standardized inputs).
//
// The dual is optimised with the simplified SMO working-set strategy
// (randomised second choice); with the linear kernel the primal weight
// vector is maintained incrementally so training is O(n·d) per pass.
// As in WEKA (without logistic calibration), the classifier outputs hard
// 0/1 posteriors — the paper's weak standalone SMO AUC (~0.65) and its
// dramatic improvement under boosting both follow from this.
#pragma once

#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

class Smo final : public Classifier {
 public:
  explicit Smo(double c = 1.0, double tolerance = 1e-3,
               std::size_t max_passes = 8, std::uint64_t seed = 1)
      : c_(c), tolerance_(tolerance), max_passes_(max_passes), seed_(seed) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<Smo>(c_, tolerance_, max_passes_, seed_);
  }
  std::string name() const override { return "SMO"; }
  ModelComplexity complexity() const override;

  double margin(std::span<const double> x) const;
  std::size_t support_vector_count() const { return n_support_; }

  /// Trained parameters (for hardware codegen); see Sgd for the formula.
  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }
  const std::vector<double>& input_mean() const { return mean_; }
  const std::vector<double>& input_stdev() const { return stdev_; }

 private:
  double c_;
  double tolerance_;
  std::size_t max_passes_;
  std::uint64_t seed_;

  std::size_t nf_ = 0;
  std::vector<double> mean_, stdev_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::size_t n_support_ = 0;
  bool trained_ = false;
};

}  // namespace hmd::ml

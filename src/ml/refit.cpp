#include "ml/refit.h"

#include "support/check.h"

namespace hmd::ml {

std::shared_ptr<Classifier> refit_with_windows(const Dataset& base,
                                               std::span<const double> rows,
                                               std::size_t num_features,
                                               std::span<const int> labels,
                                               const RefitConfig& cfg) {
  HMD_REQUIRE(base.num_rows() > 0);
  HMD_REQUIRE(num_features == base.num_features());
  HMD_REQUIRE(rows.size() == labels.size() * num_features);
  HMD_REQUIRE(cfg.window_weight > 0.0);

  // Copy-on-write augmentation: `augmented` shares the base storage until
  // the first add_row, so the caller's split survives untouched.
  Dataset augmented = base;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::span<const double> row = rows.subspan(i * num_features,
                                                     num_features);
    augmented.add_row(std::vector<double>(row.begin(), row.end()), labels[i],
                      cfg.window_weight);
  }

  std::shared_ptr<Classifier> model =
      make_detector(cfg.kind, cfg.ensemble, cfg.seed);
  model->train(augmented);
  return model;
}

}  // namespace hmd::ml

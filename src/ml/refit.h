// Incremental model refresh: refit a detector on its original training
// split augmented with freshly harvested deployment windows.
//
// The paper trains once on a static 70/30 i.i.d. split; a deployed
// detector instead faces concept drift (novel malware families, benign
// behaviour shifts — serve/fleet.h's FleetDriftConfig). The refresh path
// deliberately does NOT train from scratch on drift data alone: the base
// split anchors everything the model already knows, and the harvested
// windows (weighted by RefitConfig::window_weight) pull the decision
// boundary toward the new regime. Augmentation is copy-on-write through
// Dataset::add_row, so the caller's base split is never mutated — the same
// idiom as the adversarial-retraining defense (attack/defense.h).
//
// Determinism: make_detector seeding plus a fixed row order make the refit
// a pure function of (base, rows, labels, cfg) — a retrain re-run after a
// crash, or on a different machine, produces a bit-identical model, which
// is what the serving layer's hot-swap determinism contract needs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace hmd::ml {

struct RefitConfig {
  ClassifierKind kind = ClassifierKind::kJRip;
  EnsembleKind ensemble = EnsembleKind::kBagging;
  std::uint64_t seed = 7;
  /// Instance weight of each harvested window row relative to base rows.
  double window_weight = 1.0;
};

/// Train a fresh detector on `base` plus the harvested window rows
/// (row-major, `num_features` wide, one label per row). `base` is shared,
/// never mutated. rows.size() must be labels.size() * num_features;
/// num_features must match the base split.
std::shared_ptr<Classifier> refit_with_windows(const Dataset& base,
                                               std::span<const double> rows,
                                               std::size_t num_features,
                                               std::span<const int> labels,
                                               const RefitConfig& cfg);

}  // namespace hmd::ml

// The binary-classifier interface implemented by all eight general learners
// and the two ensemble meta-learners.
//
// All classifiers:
//   * train on weighted instances (required by AdaBoost's re-weighting);
//   * emit P(malware | x) from predict_proba() — learners that are
//     inherently discrete (SMO, SGD with hinge loss) return near-hard
//     probabilities, which is what makes their standalone AUC poor and is
//     faithful to the WEKA behaviour the paper measured;
//   * report a ModelComplexity describing their trained structure, which
//     the hw library converts into FPGA area/latency (paper Table 3).
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace hmd::ml {

/// The decision threshold on P(malware): scores at or above it classify as
/// malware. Every decision path — Classifier::predict, detector_metrics,
/// the batched inference backends, and the HLS differential oracle — reads
/// this one constant, so scalar and batched verdicts cannot drift.
inline constexpr double kDecisionThreshold = 0.5;

/// Structural complexity of a trained model, used for hardware costing.
struct ModelComplexity {
  std::string kind;             ///< "tree", "rules", "linear", "mlp", ...
  std::size_t comparators = 0;  ///< threshold comparisons available in parallel
  std::size_t adders = 0;       ///< accumulation operators
  std::size_t multipliers = 0;  ///< MAC units (fixed-point multiplies)
  std::size_t table_entries = 0;///< ROM/LUT-table words (CPTs, rule actions)
  std::size_t nonlinearities = 0;///< activation evaluations (PWL sigmoid)
  std::size_t depth = 0;        ///< sequential depth in "stages"
  std::size_t inputs = 0;       ///< distinct features consumed
  std::vector<ModelComplexity> children;  ///< ensemble members
};

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fit the model to `data` (respecting instance weights).
  /// Requires data.num_rows() > 0 and both classes conventions documented
  /// per classifier (single-class data trains a constant model).
  virtual void train(const Dataset& data) = 0;

  /// P(label == 1 | x). Only valid after train(). `x` must have the same
  /// feature count as the training data.
  virtual double predict_proba(std::span<const double> x) const = 0;

  /// Hard decision at kDecisionThreshold.
  int predict(std::span<const double> x) const {
    return predict_proba(x) >= kDecisionThreshold ? 1 : 0;
  }

  /// Confidence of the decision in [0, 1]: 0 at the decision boundary, 1
  /// when the model is certain. The default is the probability margin
  /// |2·P(malware) − 1|; ensembles override it with their members'
  /// *agreement* (fraction of hard votes backing the verdict), which is
  /// the signal the perturbation-aware vote defence gates on — an evasion
  /// that drags the ensemble across the 0.5 boundary almost always leaves
  /// the members split, even when the averaged probability looks settled.
  virtual double margin(std::span<const double> x) const {
    return std::abs(2.0 * predict_proba(x) - 1.0);
  }

  /// A fresh untrained copy with identical hyper-parameters (used by the
  /// ensemble meta-learners to spawn base models).
  virtual std::unique_ptr<Classifier> clone_untrained() const = 0;

  /// Display name (WEKA spelling: "J48", "JRip", "SMO", ...).
  virtual std::string name() const = 0;

  /// Structure of the trained model, for hardware costing.
  virtual ModelComplexity complexity() const = 0;
};

/// The eight general ML classifiers studied by the paper.
enum class ClassifierKind {
  kBayesNet,
  kJ48,
  kJRip,
  kMlp,
  kOneR,
  kRepTree,
  kSgd,
  kSmo,
};

inline constexpr std::size_t kClassifierKindCount = 8;

/// The learner families compared across the whole evaluation.
enum class EnsembleKind {
  kGeneral,   ///< the base classifier alone
  kAdaBoost,  ///< AdaBoost.M1 over the base classifier
  kBagging,   ///< bootstrap aggregation over the base classifier
};

inline constexpr std::size_t kEnsembleKindCount = 3;

std::string_view classifier_kind_name(ClassifierKind kind);
std::string_view ensemble_kind_name(EnsembleKind kind);

std::span<const ClassifierKind> all_classifier_kinds();
std::span<const EnsembleKind> all_ensemble_kinds();

/// Factory for a general classifier with paper/WEKA-default hyper-parameters.
/// `seed` feeds any internal randomness (MLP init, fold shuffles).
std::unique_ptr<Classifier> make_classifier(ClassifierKind kind,
                                            std::uint64_t seed = 7);

/// Factory for a full detector: base classifier wrapped per `ensemble`.
std::unique_ptr<Classifier> make_detector(ClassifierKind kind,
                                          EnsembleKind ensemble,
                                          std::uint64_t seed = 7);

}  // namespace hmd::ml

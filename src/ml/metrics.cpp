#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/infer.h"
#include "support/check.h"

namespace hmd::ml {

double Confusion::accuracy() const {
  const double t = total();
  return t > 0.0 ? (tp + tn) / t : 0.0;
}

double Confusion::tpr() const {
  const double p = tp + fn;
  return p > 0.0 ? tp / p : 0.0;
}

double Confusion::fpr() const {
  const double n = fp + tn;
  return n > 0.0 ? fp / n : 0.0;
}

double Confusion::precision() const {
  const double d = tp + fp;
  return d > 0.0 ? tp / d : 0.0;
}

double Confusion::f1() const {
  const double p = precision();
  const double r = tpr();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

Confusion evaluate_confusion(const Classifier& clf, const Dataset& data) {
  Confusion cm;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const int pred = clf.predict(data.row(i));
    const double w = data.weight(i);
    if (data.label(i) == 1) {
      (pred == 1 ? cm.tp : cm.fn) += w;
    } else {
      (pred == 1 ? cm.fp : cm.tn) += w;
    }
  }
  return cm;
}

std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels,
                                std::span<const double> weights) {
  HMD_REQUIRE(scores.size() == labels.size());
  HMD_REQUIRE(weights.empty() || weights.size() == scores.size());

  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  double total_pos = 0.0, total_neg = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    (labels[i] == 1 ? total_pos : total_neg) += w;
  }

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  double tp = 0.0, fp = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    // Consume all samples tied at this score before emitting a point, so
    // ties produce a diagonal segment rather than an optimistic staircase.
    const double s = scores[order[i]];
    while (i < order.size() && scores[order[i]] == s) {
      const std::size_t idx = order[i];
      const double w = weights.empty() ? 1.0 : weights[idx];
      (labels[idx] == 1 ? tp : fp) += w;
      ++i;
    }
    curve.push_back({total_neg > 0.0 ? fp / total_neg : 0.0,
                     total_pos > 0.0 ? tp / total_pos : 0.0, s});
  }
  // Close the curve at (1,1) so it is always plottable. For a single-class
  // score set this endpoint is a fabrication (one axis never moved), which
  // is why auc() short-circuits degenerate sets to 0.5 instead of
  // integrating this curve.
  if (curve.back().fpr != 1.0 || curve.back().tpr != 1.0)
    curve.push_back({1.0, 1.0, -std::numeric_limits<double>::infinity()});
  return curve;
}

double auc_from_curve(std::span<const RocPoint> curve) {
  HMD_REQUIRE(curve.size() >= 2);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].fpr - curve[i - 1].fpr;
    area += dx * (curve[i].tpr + curve[i - 1].tpr) / 2.0;
  }
  return area;
}

double auc(std::span<const double> scores, std::span<const int> labels,
           std::span<const double> weights) {
  HMD_REQUIRE(scores.size() == labels.size());
  HMD_REQUIRE(weights.empty() || weights.size() == scores.size());
  // Degenerate (single-class) score sets carry no ranking information: AUC
  // is the probability that a random positive outranks a random negative,
  // which is undefined when one class is absent. The curve-based estimate
  // used to fabricate an answer here — roc_curve force-appends the (1,1)
  // endpoint, so an all-positive set scored ~1.0 and an all-negative set
  // ~0.0 regardless of the scores. Report chance level (0.5) instead: it
  // keeps the paper's ACC×AUC composite finite and neither rewards nor
  // punishes a detector for a test slice that cannot measure ranking.
  double total_pos = 0.0, total_neg = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    (labels[i] == 1 ? total_pos : total_neg) += w;
  }
  if (total_pos <= 0.0 || total_neg <= 0.0) return 0.5;
  const auto curve = roc_curve(scores, labels, weights);
  return auc_from_curve(curve);
}

std::vector<double> score_dataset(const Classifier& clf, const Dataset& data) {
  // The grid hot path: build the process-selected inference backend once
  // for the whole test split and score it as a single batch. Backends are
  // bit-identical to the scalar walk, so results never depend on the
  // selection (see ml/infer.h).
  const auto backend = make_active_backend(clf);
  return backend->predict_proba_batch(data);
}

DetectorMetrics detector_metrics(std::span<const double> scores,
                                 std::span<const int> labels,
                                 std::span<const double> weights) {
  HMD_REQUIRE(scores.size() == labels.size());
  HMD_REQUIRE(weights.empty() || weights.size() == scores.size());
  double correct = 0.0, total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    const int pred = scores[i] >= kDecisionThreshold ? 1 : 0;
    if (pred == labels[i]) correct += w;
    total += w;
  }
  DetectorMetrics m;
  m.accuracy = total > 0.0 ? correct / total : 0.0;
  m.auc = auc(scores, labels, weights);
  return m;
}

DetectorMetrics evaluate_detector(const Classifier& clf, const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  const auto scores = score_dataset(clf, data);
  std::vector<int> labels;
  std::vector<double> weights;
  labels.reserve(data.num_rows());
  weights.reserve(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    labels.push_back(data.label(i));
    weights.push_back(data.weight(i));
  }
  return detector_metrics(scores, labels, weights);
}

}  // namespace hmd::ml

#include "ml/calibration.h"

#include <cmath>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace hmd::ml {

PlattScaling::PlattScaling(std::unique_ptr<Classifier> inner,
                           double calibration_fraction, std::uint64_t seed)
    : inner_(std::move(inner)),
      calibration_fraction_(calibration_fraction),
      seed_(seed) {
  HMD_REQUIRE(inner_ != nullptr);
  HMD_REQUIRE(calibration_fraction_ > 0.0 && calibration_fraction_ < 1.0);
}

void PlattScaling::fit_sigmoid(std::span<const double> scores,
                               std::span<const int> labels, double& a,
                               double& b) {
  HMD_REQUIRE(scores.size() == labels.size());
  HMD_REQUIRE(!scores.empty());
  // Target probabilities with the Platt prior correction.
  double n_pos = 0.0, n_neg = 0.0;
  for (int y : labels) (y == 1 ? n_pos : n_neg) += 1.0;
  const double t_pos = (n_pos + 1.0) / (n_pos + 2.0);
  const double t_neg = 1.0 / (n_neg + 2.0);

  a = 0.0;
  b = std::log((n_neg + 1.0) / (n_pos + 1.0));
  // Newton with backtracking on the cross-entropy objective.
  const double kSigma = 1e-12;
  for (int iter = 0; iter < 100; ++iter) {
    double g_a = 0.0, g_b = 0.0, h_aa = kSigma, h_bb = kSigma, h_ab = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      const double t = labels[i] == 1 ? t_pos : t_neg;
      const double f = a * scores[i] + b;
      const double p = 1.0 / (1.0 + std::exp(f));
      // dL/df = (t - p) with this parameterisation (p = P(y=1)).
      const double d = t - p;
      g_a += scores[i] * d;
      g_b += d;
      const double w = p * (1.0 - p);
      h_aa += scores[i] * scores[i] * w;
      h_ab += scores[i] * w;
      h_bb += w;
    }
    const double det = h_aa * h_bb - h_ab * h_ab;
    if (std::fabs(det) < 1e-18) break;
    const double da = -(h_bb * g_a - h_ab * g_b) / det;
    const double db = -(h_aa * g_b - h_ab * g_a) / det;
    a += da;
    b += db;
    if (std::fabs(da) + std::fabs(db) < 1e-10) break;
  }
}

void PlattScaling::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() >= 4);
  Rng rng(seed_);

  // Stratified holdout for the sigmoid fit.
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    (data.label(i) == 1 ? pos : neg).push_back(i);
  auto shuffle = [&](std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i)
      std::swap(v[i - 1], v[rng.below(i)]);
  };
  shuffle(pos);
  shuffle(neg);
  std::vector<std::size_t> fit_rows, cal_rows;
  auto split = [&](const std::vector<std::size_t>& v) {
    const auto n_cal = static_cast<std::size_t>(
        calibration_fraction_ * static_cast<double>(v.size()));
    for (std::size_t i = 0; i < v.size(); ++i)
      (i < n_cal ? cal_rows : fit_rows).push_back(v[i]);
  };
  split(pos);
  split(neg);
  if (fit_rows.empty() || cal_rows.empty()) {
    fit_rows.clear();
    for (std::size_t i = 0; i < data.num_rows(); ++i) fit_rows.push_back(i);
    cal_rows = fit_rows;
  }

  inner_->train(data.subset(fit_rows));

  const Dataset cal = data.subset(cal_rows);
  std::vector<double> scores;
  std::vector<int> labels;
  for (std::size_t i = 0; i < cal.num_rows(); ++i) {
    // Use the inner model's raw posterior as the score; hard 0/1 outputs
    // still calibrate (they become a two-level sigmoid).
    scores.push_back(inner_->predict_proba(cal.row(i)) * 2.0 - 1.0);
    labels.push_back(cal.label(i));
  }
  fit_sigmoid(scores, labels, a_, b_);
  trained_ = true;
}

double PlattScaling::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "PlattScaling::train() must be called first");
  const double s = inner_->predict_proba(x) * 2.0 - 1.0;
  return 1.0 / (1.0 + std::exp(a_ * s + b_));
}

std::unique_ptr<Classifier> PlattScaling::clone_untrained() const {
  return std::make_unique<PlattScaling>(inner_->clone_untrained(),
                                        calibration_fraction_, seed_);
}

std::string PlattScaling::name() const {
  return "Platt(" + inner_->name() + ")";
}

ModelComplexity PlattScaling::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc = inner_->complexity();
  // The sigmoid costs one MAC plus a small PWL evaluator.
  mc.multipliers += 1;
  mc.adders += 1;
  mc.nonlinearities += 1;
  mc.depth += 1;
  return mc;
}

}  // namespace hmd::ml

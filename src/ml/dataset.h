// Dataset container for the ML layer: a weighted, labelled feature matrix
// with application-group structure.
//
// Rows are 10 ms HPC samples; the `group` of a row is the application it was
// captured from. The paper's 70/30 split is *per application* ("70% benign-
// 70% malware application for training (known applications) and 30% ...
// for testing (unknown applications)"), so the split helpers here operate on
// groups, never on raw rows — a detector is always evaluated on applications
// it has never seen.
//
// Storage layout (columnar core): the feature matrix lives in an immutable,
// shared `detail::DatasetStorage` that keeps every feature as a contiguous
// column *and* a row-major mirror (so row() stays a contiguous span). A
// `Dataset` is a lightweight view onto that storage — a row-index map plus
// per-view instance weights — so subset(), bootstrap() and
// weighted_bootstrap() are O(rows) remaps that share the backing matrix
// instead of deep-copying it. select_features() always materialises fresh
// storage, which keeps every view's feature numbering identical to its
// storage's.
//
// The storage also carries a lazily built per-feature *value-run* cache
// (rows ranked by value, ties collapsed into runs) that the tree/rule
// learners use to replace per-node std::sort with counting sorts — see
// ml/presort.h. The cache is built once per storage under `runs_mutex`
// (concurrent grid cells race to build it; one wins, the rest wait) and
// published through the `runs_built` release-store; after a true
// acquire-load it is immutable and read lock-free through runs_of(). The
// guarded-build/lock-free-read protocol is annotated for clang's
// -Wthread-safety analysis (support/thread_safety.h).
//
// `HMD_LEGACY_DATASET=1` (or set_dataset_mode) selects the legacy
// reference path — deep-copy resampling and per-node sorting — kept for one
// release so bench/micro_ml can measure the columnar speedup against it.
// Both paths are bit-identical; see DESIGN.md §9 for the tie-break and
// determinism contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/rng.h"
#include "support/thread_safety.h"

namespace hmd::ml {

/// Which data-layer implementation services resampling and split search.
enum class DatasetMode {
  kColumnar,  ///< zero-copy views + presorted-feature training (default)
  kLegacy,    ///< deep-copy resampling + per-node sorts (reference path)
};

/// Process-wide dataset mode: HMD_LEGACY_DATASET=1 selects kLegacy,
/// otherwise kColumnar. set_dataset_mode overrides the environment (used by
/// bench/micro_ml to A/B both paths in one process, and by tests).
DatasetMode dataset_mode();
void set_dataset_mode(DatasetMode mode);

namespace detail {

/// Per-feature value-run table: rows ranked by (value, row index), with
/// equal values collapsed into one run. `run_of[storage_row]` is the rank of
/// the row's value among the feature's distinct values; counting-sorting any
/// row set by run id yields ascending values with ties kept in input order —
/// exactly the canonical sweep order of ml/presort.h.
struct FeatureRuns {
  std::vector<std::uint32_t> run_of;  ///< storage row -> value-run id
  std::uint32_t num_runs = 0;
};

/// Shared backing store of one or more Dataset views. Immutable once any
/// view shares it (append is copy-on-write through Dataset::add_row).
struct DatasetStorage {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> columns;  ///< [feature][storage row]
  std::vector<double> flat;                  ///< row-major mirror for row()
  std::vector<int> y;
  std::vector<std::size_t> group;
  std::size_t num_rows = 0;

  /// Value-run cache build state: `runs` is written exactly once, under
  /// `runs_mutex`, then published by the release-store of `runs_built`.
  support::Mutex runs_mutex;
  std::vector<FeatureRuns> runs HMD_GUARDED_BY(runs_mutex);
  std::atomic<bool> runs_built{false};

  explicit DatasetStorage(std::vector<std::string> names)
      : feature_names(std::move(names)), columns(feature_names.size()) {}

  std::size_t num_features() const { return feature_names.size(); }

  /// Build the per-feature value-run cache (idempotent, thread-safe:
  /// concurrent grid cells training on the same projection race here).
  void ensure_runs();

  /// True once the cache has been published (acquire: a true result makes
  /// the builder's writes to `runs` visible to this thread).
  bool runs_ready() const {
    return runs_built.load(std::memory_order_acquire);
  }

  /// Lock-free read of the published cache. Precondition: runs_ready().
  const FeatureRuns& runs_of(std::size_t f) const;
};

}  // namespace detail

class Dataset {
 public:
  Dataset();

  /// Construct with feature names; rows are added with add_row().
  explicit Dataset(std::vector<std::string> feature_names);

  void add_row(std::vector<double> x, int label, double weight = 1.0,
               std::size_t group = 0);

  /// Pre-size the backing store for `rows` rows (corpus assembly).
  void reserve(std::size_t rows);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_features() const { return storage_->num_features(); }
  bool empty() const { return rows_.empty(); }

  std::span<const double> row(std::size_t i) const {
    const std::size_t nf = storage_->num_features();
    return {storage_->flat.data() + rows_[i] * nf, nf};
  }
  /// One cell, read through the columnar store (bit-identical to
  /// row(i)[f] — both read the same stored double).
  double value(std::size_t i, std::size_t f) const {
    return storage_->columns[f][rows_[i]];
  }
  int label(std::size_t i) const { return storage_->y[rows_[i]]; }
  double weight(std::size_t i) const { return w_[i]; }
  std::size_t group(std::size_t i) const { return storage_->group[rows_[i]]; }
  const std::string& feature_name(std::size_t f) const {
    return storage_->feature_names[f];
  }
  const std::vector<std::string>& feature_names() const {
    return storage_->feature_names;
  }

  /// All values of one feature column (copy). Prefer column_view() in new
  /// code — it aliases storage directly for identity views.
  std::vector<double> column(std::size_t f) const;

  /// Feature column in view-row order, without a copy when this view is an
  /// identity view over its storage; otherwise gathered into `scratch`
  /// (resized as needed). The span is invalidated by the next call with the
  /// same scratch and by any mutation of the dataset.
  std::span<const double> column_view(std::size_t f,
                                      std::vector<double>& scratch) const;

  /// Labels as doubles (for correlation computations).
  std::vector<double> labels_as_double() const;

  /// Per-instance weights of this view (aliases internal storage).
  std::span<const double> weights() const { return w_; }

  double total_weight() const;
  double positive_weight() const;  ///< total weight of label-1 rows

  /// Replace all instance weights (AdaBoost re-weighting).
  void set_weights(std::vector<double> w);

  /// Normalise weights to sum to num_rows (WEKA convention).
  void normalize_weights();

  /// New dataset keeping only the given feature columns, in order. Always
  /// materialises fresh storage, so the result (and every view derived from
  /// it) has identity feature numbering.
  Dataset select_features(std::span<const std::size_t> features) const;

  /// New dataset with the given rows (indices may repeat — bootstrap).
  /// Columnar mode: a zero-copy view sharing this dataset's storage.
  /// Legacy mode: a deep copy (the pre-columnar reference behaviour).
  Dataset subset(std::span<const std::size_t> rows) const;

  /// Bootstrap sample of the same size, drawn uniformly with replacement.
  Dataset bootstrap(Rng& rng) const;

  /// Weighted bootstrap: rows drawn with probability proportional to their
  /// current weights; the result has unit weights (AdaBoost-with-resampling).
  Dataset weighted_bootstrap(Rng& rng) const;

  // --- columnar internals (ml/presort.h, benchmarks, tests) ---------------

  /// Storage row backing view row `i`.
  std::uint32_t storage_row(std::size_t i) const { return rows_[i]; }

  /// Raw storage column / labels, indexed by *storage* row (map view rows
  /// through row_map()). Lets hot loops hoist the base pointers.
  std::span<const double> raw_column(std::size_t f) const {
    return storage_->columns[f];
  }
  std::span<const int> raw_labels() const { return storage_->y; }
  std::span<const std::uint32_t> row_map() const { return rows_; }

  /// True when view row i == storage row i for the whole storage (fresh
  /// datasets and select_features outputs; generally false for subsets).
  bool is_identity_view() const { return identity_; }

  /// Identity of the backing storage (views of one dataset share it).
  const void* storage_id() const { return storage_.get(); }

  /// Value-run table of feature `f`; builds the cache on first use.
  const detail::FeatureRuns& feature_runs(std::size_t f) const;

  /// Eagerly build the per-feature sort cache (called once per projection
  /// by ExperimentContext::projected_split so all grid cells share it).
  void warm_presort_cache() const;

 private:
  /// Make the storage safe to append to: clone it when it is shared with
  /// another view, already run-cached, or viewed non-identically.
  void ensure_appendable();

  std::shared_ptr<detail::DatasetStorage> storage_;
  std::vector<std::uint32_t> rows_;  ///< view row -> storage row
  std::vector<double> w_;            ///< per-view instance weights
  bool identity_ = true;
};

/// Train/test partition.
struct Split {
  Dataset train;
  Dataset test;
};

/// Stratified split at application granularity: `train_frac` of the benign
/// apps and `train_frac` of the malware apps (by distinct group id) go to
/// training; every row of a held-out app goes to test.
Split stratified_group_split(const Dataset& data, double train_frac, Rng& rng);

/// K roughly equal folds of *rows* (stratified by label) for internal
/// grow/prune splits inside classifiers (REPTree, JRip).
std::vector<std::vector<std::size_t>> stratified_row_folds(const Dataset& data,
                                                           std::size_t k,
                                                           Rng& rng);

}  // namespace hmd::ml

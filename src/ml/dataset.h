// Dataset container for the ML layer: a weighted, labelled feature matrix
// with application-group structure.
//
// Rows are 10 ms HPC samples; the `group` of a row is the application it was
// captured from. The paper's 70/30 split is *per application* ("70% benign-
// 70% malware application for training (known applications) and 30% ...
// for testing (unknown applications)"), so the split helpers here operate on
// groups, never on raw rows — a detector is always evaluated on applications
// it has never seen.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rng.h"

namespace hmd::ml {

class Dataset {
 public:
  Dataset() = default;

  /// Construct with feature names; rows are added with add_row().
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  void add_row(std::vector<double> x, int label, double weight = 1.0,
               std::size_t group = 0);

  std::size_t num_rows() const { return x_.size(); }
  std::size_t num_features() const { return feature_names_.size(); }
  bool empty() const { return x_.empty(); }

  std::span<const double> row(std::size_t i) const { return x_[i]; }
  int label(std::size_t i) const { return y_[i]; }
  double weight(std::size_t i) const { return w_[i]; }
  std::size_t group(std::size_t i) const { return group_[i]; }
  const std::string& feature_name(std::size_t f) const {
    return feature_names_[f];
  }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// All values of one feature column (copy).
  std::vector<double> column(std::size_t f) const;

  /// Labels as doubles (for correlation computations).
  std::vector<double> labels_as_double() const;

  double total_weight() const;
  double positive_weight() const;  ///< total weight of label-1 rows

  /// Replace all instance weights (AdaBoost re-weighting).
  void set_weights(std::vector<double> w);

  /// Normalise weights to sum to num_rows (WEKA convention).
  void normalize_weights();

  /// New dataset keeping only the given feature columns, in order.
  Dataset select_features(std::span<const std::size_t> features) const;

  /// New dataset with the given rows (indices may repeat — bootstrap).
  Dataset subset(std::span<const std::size_t> rows) const;

  /// Bootstrap sample of the same size, drawn uniformly with replacement.
  Dataset bootstrap(Rng& rng) const;

  /// Weighted bootstrap: rows drawn with probability proportional to their
  /// current weights; the result has unit weights (AdaBoost-with-resampling).
  Dataset weighted_bootstrap(Rng& rng) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> x_;
  std::vector<int> y_;
  std::vector<double> w_;
  std::vector<std::size_t> group_;
};

/// Train/test partition.
struct Split {
  Dataset train;
  Dataset test;
};

/// Stratified split at application granularity: `train_frac` of the benign
/// apps and `train_frac` of the malware apps (by distinct group id) go to
/// training; every row of a held-out app goes to test.
Split stratified_group_split(const Dataset& data, double train_frac, Rng& rng);

/// K roughly equal folds of *rows* (stratified by label) for internal
/// grow/prune splits inside classifiers (REPTree, JRip).
std::vector<std::vector<std::size_t>> stratified_row_folds(const Dataset& data,
                                                           std::size_t k,
                                                           Rng& rng);

}  // namespace hmd::ml

// BayesNet — Bayesian network classifier over MDL-discretized attributes.
//
// WEKA's BayesNet with default settings (K2 search, one parent maximum,
// SimpleEstimator) almost always learns the naive structure on this kind of
// data, with each attribute discretized first. We implement exactly that
// estimator: per-attribute Fayyad–Irani discretization, then a
// class-conditional probability table per attribute with Laplace smoothing
// (alpha = 0.5, WEKA's SimpleEstimator default).
//
// Optionally the structure can be upgraded to TAN (tree-augmented naive
// Bayes, Chow–Liu tree over class-conditional mutual information), which is
// exposed as an ablation in the benches.
#pragma once

#include <vector>

#include "ml/classifier.h"
#include "ml/discretize.h"

namespace hmd::ml {

class BayesNet final : public Classifier {
 public:
  enum class Structure { kNaive, kTan };

  explicit BayesNet(Structure structure = Structure::kNaive,
                    double alpha = 0.5)
      : structure_(structure), alpha_(alpha) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<BayesNet>(structure_, alpha_);
  }
  std::string name() const override { return "BayesNet"; }
  ModelComplexity complexity() const override;

  Structure structure() const { return structure_; }

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  /// Trained-parameter views (read-only, for integrity analysis / export).
  /// All are valid only after train().
  std::size_t num_attributes() const { return cpts_.size(); }
  double log_prior(int cls) const { return log_prior_[cls]; }
  /// Parent attribute of `f` in the network, or kNoParent (naive Bayes).
  std::size_t cpt_parent(std::size_t f) const { return cpts_[f].parent; }
  /// Discretizer cut points of attribute `f`.
  const std::vector<double>& cpt_cuts(std::size_t f) const {
    return cpts_[f].disc.cuts();
  }
  /// log P(bin | class, parent_bin) table of attribute `f`:
  /// [class][parent_bin][bin]; parent_bin dimension is 1 when no parent.
  const std::vector<std::vector<std::vector<double>>>& cpt_log_prob(
      std::size_t f) const {
    return cpts_[f].log_prob;
  }

 private:
  // log P(bin | class [, parent bin]) for one attribute.
  struct AttributeCpt {
    Discretizer disc;
    std::size_t parent = kNoParent;       ///< attribute index or kNoParent
    // log_prob[cls][parent_bin][bin]; parent_bin dimension is 1 when no
    // parent.
    std::vector<std::vector<std::vector<double>>> log_prob;
  };

  Structure structure_;
  double alpha_;

  double log_prior_[2] = {0.0, 0.0};
  std::vector<AttributeCpt> cpts_;
  bool trained_ = false;
};

}  // namespace hmd::ml

#include "ml/arff.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace hmd::ml {
namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& ch : out)
    if (ch == ' ' || ch == ',' || ch == '\'') ch = '_';
  return out;
}

double parse_number(const std::string& token) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    // Allow trailing whitespace only.
    for (std::size_t i = consumed; i < token.size(); ++i)
      if (!std::isspace(static_cast<unsigned char>(token[i])))
        throw PreconditionError("trailing junk in ARFF number: " + token);
    return v;
  } catch (const std::invalid_argument&) {
    throw PreconditionError("malformed ARFF numeric value: " + token);
  } catch (const std::out_of_range&) {
    throw PreconditionError("ARFF numeric value out of range: " + token);
  }
}

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool iequal_prefix(const std::string& line, const char* keyword) {
  std::size_t i = 0;
  for (; keyword[i] != '\0'; ++i) {
    if (i >= line.size() ||
        std::tolower(static_cast<unsigned char>(line[i])) != keyword[i])
      return false;
  }
  return true;
}

}  // namespace

void write_arff(std::ostream& os, const Dataset& data,
                const std::string& relation_name) {
  bool weighted = false;
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    if (data.weight(i) != 1.0) weighted = true;

  os << "% Exported by the hmd library (DAC'18 HMD reproduction).\n";
  os << "% rows=" << data.num_rows() << " features=" << data.num_features()
     << "\n@RELATION " << sanitize(relation_name) << "\n\n";
  for (std::size_t f = 0; f < data.num_features(); ++f)
    os << "@ATTRIBUTE " << sanitize(data.feature_name(f)) << " NUMERIC\n";
  os << "@ATTRIBUTE class {benign,malware}\n\n@DATA\n";

  os << std::setprecision(17);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    os << "% group " << data.group(i) << '\n';
    const auto row = data.row(i);
    for (double v : row) os << v << ',';
    os << (data.label(i) == 1 ? "malware" : "benign");
    if (weighted) os << ", {" << data.weight(i) << '}';
    os << '\n';
  }
}

Dataset read_arff(std::istream& is) {
  std::vector<std::string> names;
  bool saw_class = false;
  bool in_data = false;
  Dataset data;
  std::string line;
  std::size_t pending_group = 0;
  bool have_pending_group = false;

  while (std::getline(is, line)) {
    line = trimmed(line);
    if (line.empty()) continue;
    if (line[0] == '%') {
      // Recover the group annotation our writer emits.
      std::istringstream cs(line.substr(1));
      std::string word;
      if (cs >> word && word == "group" && (cs >> pending_group))
        have_pending_group = true;
      continue;
    }
    if (!in_data) {
      if (iequal_prefix(line, "@relation")) continue;
      if (iequal_prefix(line, "@attribute")) {
        std::istringstream as(line.substr(10));
        std::string name, type;
        as >> name >> type;
        HMD_REQUIRE_MSG(!name.empty(), "ARFF attribute without a name");
        std::string lower_type = type;
        std::transform(lower_type.begin(), lower_type.end(),
                       lower_type.begin(), ::tolower);
        if (lower_type == "numeric" || lower_type == "real") {
          HMD_REQUIRE_MSG(!saw_class,
                          "numeric attribute after the class attribute");
          names.push_back(name);
        } else {
          HMD_REQUIRE_MSG(!saw_class, "multiple nominal attributes");
          saw_class = true;  // the {benign,malware} class
        }
        continue;
      }
      if (iequal_prefix(line, "@data")) {
        HMD_REQUIRE_MSG(saw_class, "ARFF data without a class attribute");
        HMD_REQUIRE_MSG(!names.empty(), "ARFF data without attributes");
        data = Dataset(names);
        in_data = true;
        continue;
      }
      throw PreconditionError("unrecognised ARFF header line: " + line);
    }

    // Data row: v,v,...,class[, {w}]
    std::vector<double> row;
    std::string token;
    std::istringstream ls(line);
    for (std::size_t f = 0; f < names.size(); ++f) {
      HMD_REQUIRE_MSG(std::getline(ls, token, ','),
                      "ARFF row with too few values");
      row.push_back(parse_number(token));
    }
    HMD_REQUIRE_MSG(std::getline(ls, token, ','), "ARFF row missing class");
    const std::string cls = trimmed(token);
    HMD_REQUIRE_MSG(cls == "malware" || cls == "benign",
                    "unknown class value: " + cls);
    double weight = 1.0;
    if (std::getline(ls, token)) {
      const auto open = token.find('{');
      const auto close = token.find('}');
      if (open != std::string::npos && close != std::string::npos)
        weight = std::stod(token.substr(open + 1, close - open - 1));
    }
    data.add_row(std::move(row), cls == "malware" ? 1 : 0, weight,
                 have_pending_group ? pending_group : 0);
    have_pending_group = false;
  }
  HMD_REQUIRE_MSG(in_data, "stream contained no ARFF @DATA section");
  return data;
}

void write_dataset_csv(std::ostream& os, const Dataset& data) {
  for (std::size_t f = 0; f < data.num_features(); ++f)
    os << sanitize(data.feature_name(f)) << ',';
  os << "label\n" << std::setprecision(17);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    for (double v : data.row(i)) os << v << ',';
    os << data.label(i) << '\n';
  }
}

}  // namespace hmd::ml

// Batched inference engine behind a one-API/many-backends abstraction.
//
// Training became columnar (DESIGN §9); this module does the same for
// *prediction* — the path every deployed detector and every grid
// evaluation sits on. A trained model is lowered once into contiguous
// "flat" form — packed 16-byte tree nodes with a parallel
// leaf-probability array, rule lists compiled into a DAG over the same
// node form (each conjunct's pass edge continues the conjunction, its
// fail edge jumps to the next rule's entry), ensemble members as
// offset+weight records — and whole batches of intervals are scored per
// call with branch-free inner loops (the per-node child select is an
// indexed load, never a data-dependent branch, and samples walk eight
// at a time so independent load chains overlap in the pipeline). Full
// layout and measured numbers: DESIGN §13.
//
// Backends (the AbstractGfxLayer pattern: one API, several engines):
//
//   scalar  — the reference: loops Classifier::predict_proba row by row
//             over the pointer-linked model, exactly the pre-existing
//             behaviour. Every other backend is differentially tested
//             bit-identical against it.
//   flat    — the flattened branch-free batch engine. Supported for the
//             tree/rule families (J48, REPTree, RandomTree, JRip, OneR)
//             and AdaBoost/Bagging/RandomForest ensembles of them.
//   generic — the automatic fallback when `flat` is requested for a model
//             with no flat lowering (BayesNet, MLP, SGD, SMO and ensembles
//             of them): same batch API, scalar predict_proba inside, so
//             callers can pin "flat" process-wide without special-casing.
//   fixed   — bit-simulation of the HLS Q-format decision function; lives
//             in src/analysis (analysis::FixedPointBackend) because it is
//             built from the model IR, and gives the differential lint a
//             fast software oracle.
//
// Determinism contract: for any model, any backend returned by
// make_backend() produces bit-identical probabilities to the scalar
// reference, for any batch size and any thread count — the flat engine
// replays the exact double-precision comparisons and accumulation order of
// the scalar walk, it only schedules them branch-free. bench/micro_infer
// enforces this on every grid cell and exits non-zero on any mismatch.
//
// Thread safety: a backend is immutable after construction; concurrent
// predict_proba_batch() calls from different threads are safe (scratch
// state is call-local). Scalar/generic backends hold a reference to the
// model, which must outlive them; the flat backend is self-contained.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace hmd::ml {

/// Which inference engine services batch scoring.
enum class InferBackendKind {
  kScalar,  ///< reference pointer-walk, one row at a time
  kFlat,    ///< flattened branch-free batch engine (generic fallback)
};

/// Process-wide backend selection: HMD_INFER_BACKEND=scalar|flat, default
/// flat. set_infer_backend_kind overrides the environment (bench --backend
/// flag, tests). Both backends are bit-identical, so this is a performance
/// switch, never a results switch.
InferBackendKind infer_backend_kind();
void set_infer_backend_kind(InferBackendKind kind);

/// Parse a --backend flag value ("scalar" | "flat"); nullopt if unknown.
std::optional<InferBackendKind> backend_kind_from_name(std::string_view name);
std::string_view backend_kind_name(InferBackendKind kind);

/// One inference engine for one trained model.
class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  /// Engine actually in use: "scalar", "flat", or "generic" (the scalar
  /// fallback behind a kFlat request the model cannot flatten).
  virtual std::string_view name() const = 0;

  /// Score `out.size()` samples stored row-major in `x`, `num_features`
  /// doubles each (x.size() == out.size() * num_features);
  /// out[i] = P(malware | row i). An empty batch is a no-op.
  virtual void predict_proba_batch(std::span<const double> x,
                                   std::size_t num_features,
                                   std::span<double> out) const = 0;

  /// Score every row of `data` (gathering non-contiguous views first).
  void predict_proba_batch(const Dataset& data, std::span<double> out) const;
  std::vector<double> predict_proba_batch(const Dataset& data) const;

  /// Single-sample convenience (a batch of one): the run-time detector's
  /// per-interval path.
  double predict_proba(std::span<const double> x) const;
};

/// True when `model` has a flat lowering: a *trained* tree/rule-family
/// model (J48, REPTree, RandomTree, JRip, OneR) or an
/// AdaBoost/Bagging/RandomForest ensemble of them. Untrained models report
/// false — they get the generic fallback, so the scalar "train() must be
/// called first" error still surfaces at predict time.
bool flat_supported(const Classifier& model);

/// Build an inference backend for a trained model. Requesting kFlat for a
/// model without a flat lowering returns the generic fallback (same API,
/// scalar inside) rather than failing, so callers can pin the backend
/// process-wide. Scalar/generic backends reference `model`; it must
/// outlive them.
std::unique_ptr<InferenceBackend> make_backend(const Classifier& model,
                                               InferBackendKind kind);

/// Backend for the process-wide kind (the grid hot path's one-liner).
std::unique_ptr<InferenceBackend> make_active_backend(const Classifier& model);

}  // namespace hmd::ml

#include "ml/sgd.h"

#include <cmath>

#include "support/check.h"
#include "support/rng.h"
#include "support/stats.h"

namespace hmd::ml {

void Sgd::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  nf_ = data.num_features();
  mean_.assign(nf_, 0.0);
  stdev_.assign(nf_, 1.0);
  for (std::size_t f = 0; f < nf_; ++f) {
    const auto col = data.column(f);
    mean_[f] = mean(col);
    const double sd = stddev(col);
    stdev_[f] = sd > 1e-12 ? sd : 1.0;
  }

  w_.assign(nf_, 0.0);
  b_ = 0.0;
  Rng rng(seed_);
  std::vector<std::size_t> order(data.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double mean_weight =
      data.total_weight() / static_cast<double>(data.num_rows());
  HMD_REQUIRE(mean_weight > 0.0);

  std::vector<double> xs(nf_);
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    for (std::size_t idx : order) {
      ++t;
      // Pegasos-style step size.
      const double eta = 1.0 / (lambda_ * (static_cast<double>(t) + 1e4));
      const auto row = data.row(idx);
      for (std::size_t f = 0; f < nf_; ++f)
        xs[f] = (row[f] - mean_[f]) / stdev_[f];
      const double y = data.label(idx) == 1 ? 1.0 : -1.0;
      const double sw = data.weight(idx) / mean_weight;

      double m = b_;
      for (std::size_t f = 0; f < nf_; ++f) m += w_[f] * xs[f];

      // L2 shrinkage + hinge subgradient.
      for (std::size_t f = 0; f < nf_; ++f) w_[f] *= (1.0 - eta * lambda_);
      if (y * m < 1.0) {
        for (std::size_t f = 0; f < nf_; ++f) w_[f] += eta * sw * y * xs[f];
        b_ += eta * sw * y;
      }
    }
  }
  trained_ = true;
}

double Sgd::margin(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "Sgd::train() must be called first");
  HMD_REQUIRE(x.size() == nf_);
  double m = b_;
  for (std::size_t f = 0; f < nf_; ++f)
    m += w_[f] * (x[f] - mean_[f]) / stdev_[f];
  return m;
}

double Sgd::predict_proba(std::span<const double> x) const {
  // Hard posterior, like WEKA's hinge-loss SGD.
  return margin(x) >= 0.0 ? 1.0 : 0.0;
}

ModelComplexity Sgd::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "linear";
  mc.multipliers = nf_;
  mc.adders = nf_;
  mc.comparators = 1;
  std::size_t d = 0, n = std::max<std::size_t>(nf_, 1);
  while (n > 1) {
    n = (n + 1) / 2;
    ++d;
  }
  mc.depth = d + 2;
  mc.inputs = nf_;
  return mc;
}

}  // namespace hmd::ml

// Platt scaling — post-hoc probability calibration for margin classifiers.
//
// WEKA's SMO has a "-M" option that fits logistic models to the SVM output;
// the paper ran SMO *without* it, which is why SMO's standalone AUC is so
// poor and why boosting improves it so dramatically. This module provides
// the calibrated alternative as an ablation: PlattScaling wraps any
// classifier, fits  P(y=1 | s) = 1 / (1 + exp(A*s + B))  on the wrapped
// model's scores over a held-out calibration fold, and exposes graded
// probabilities. (Platt, 1999; Newton iterations per Lin/Weng/Keerthi.)
#pragma once

#include <memory>

#include "ml/classifier.h"

namespace hmd::ml {

class PlattScaling final : public Classifier {
 public:
  /// `calibration_fraction` of training rows (stratified) are held out to
  /// fit the sigmoid; the wrapped model trains on the remainder.
  explicit PlattScaling(std::unique_ptr<Classifier> inner,
                        double calibration_fraction = 0.3,
                        std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  std::string name() const override;
  ModelComplexity complexity() const override;

  double sigmoid_a() const { return a_; }
  double sigmoid_b() const { return b_; }

  /// Fit the Platt sigmoid to (score, label) pairs; exposed for testing.
  static void fit_sigmoid(std::span<const double> scores,
                          std::span<const int> labels, double& a, double& b);

 private:
  std::unique_ptr<Classifier> inner_;
  double calibration_fraction_;
  std::uint64_t seed_;

  double a_ = -1.0;
  double b_ = 0.0;
  bool trained_ = false;
};

}  // namespace hmd::ml

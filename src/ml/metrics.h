// Evaluation metrics for the malware detectors: accuracy, confusion,
// ROC curves, AUC, and the paper's combined ACC×AUC "performance" metric.
#pragma once

#include <span>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace hmd::ml {

/// Weighted confusion matrix for binary classification.
struct Confusion {
  double tp = 0.0, fp = 0.0, tn = 0.0, fn = 0.0;

  double total() const { return tp + fp + tn + fn; }
  double accuracy() const;
  double tpr() const;        ///< recall / sensitivity
  double fpr() const;        ///< fall-out
  double precision() const;
  double f1() const;
};

/// Score the classifier over a dataset at the 0.5 threshold.
Confusion evaluate_confusion(const Classifier& clf, const Dataset& data);

/// A point on the ROC curve at a given decision threshold.
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

/// Full ROC curve from scores (higher = more malware-like). The curve is
/// sorted by ascending FPR and includes the (0,0) and (1,1) endpoints.
std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels,
                                std::span<const double> weights = {});

/// Trapezoidal area under a curve from roc_curve().
double auc_from_curve(std::span<const RocPoint> curve);

/// AUC via the weighted rank statistic (handles ties — crucial for
/// classifiers that emit near-hard scores, like SMO/SGD). A degenerate
/// score set — every label (or all the weight) on one class — has no
/// ranking information and returns chance level (0.5) rather than the
/// fabricated 0/1 a forced-endpoint curve integral would produce.
double auc(std::span<const double> scores, std::span<const int> labels,
           std::span<const double> weights = {});

/// Everything the paper reports per detector.
struct DetectorMetrics {
  double accuracy = 0.0;     ///< fraction correctly classified
  double auc = 0.0;          ///< robustness (area under the ROC curve)
  double performance() const { return accuracy * auc; }  ///< ACC×AUC
};

/// Accuracy (0.5 threshold) + AUC from an existing score pass. Lets a
/// caller that already has the scores (e.g. for ROC curves) compute the
/// paper's metrics without re-scoring or re-training. Unweighted if
/// `weights` is empty.
DetectorMetrics detector_metrics(std::span<const double> scores,
                                 std::span<const int> labels,
                                 std::span<const double> weights = {});

/// Collect scores over `data` and compute accuracy + AUC in one pass.
DetectorMetrics evaluate_detector(const Classifier& clf, const Dataset& data);

/// Scores of a classifier over a dataset (P(malware) per row).
std::vector<double> score_dataset(const Classifier& clf, const Dataset& data);

}  // namespace hmd::ml

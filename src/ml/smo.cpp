#include "ml/smo.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/rng.h"
#include "support/stats.h"

namespace hmd::ml {

void Smo::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  const std::size_t n = data.num_rows();
  nf_ = data.num_features();
  mean_.assign(nf_, 0.0);
  stdev_.assign(nf_, 1.0);
  for (std::size_t f = 0; f < nf_; ++f) {
    const auto col = data.column(f);
    mean_[f] = mean(col);
    const double sd = stddev(col);
    stdev_[f] = sd > 1e-12 ? sd : 1.0;
  }

  // Standardized design matrix (kept dense: corpora here are modest).
  std::vector<double> xmat(n * nf_);
  std::vector<double> y(n);
  std::vector<double> cbox(n);  // per-instance box constraint C * weight
  const double mean_weight = data.total_weight() / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < nf_; ++f)
      xmat[i * nf_ + f] = (row[f] - mean_[f]) / stdev_[f];
    y[i] = data.label(i) == 1 ? 1.0 : -1.0;
    cbox[i] = c_ * data.weight(i) / mean_weight;
  }

  std::vector<double> alpha(n, 0.0);
  w_.assign(nf_, 0.0);
  b_ = 0.0;

  auto f_of = [&](std::size_t i) {
    double m = b_;
    const double* xi = &xmat[i * nf_];
    for (std::size_t f = 0; f < nf_; ++f) m += w_[f] * xi[f];
    return m;
  };
  auto kdot = [&](std::size_t i, std::size_t j) {
    double k = 0.0;
    const double* xi = &xmat[i * nf_];
    const double* xj = &xmat[j * nf_];
    for (std::size_t f = 0; f < nf_; ++f) k += xi[f] * xj[f];
    return k;
  };

  Rng rng(seed_);
  std::size_t passes = 0;
  // Hard cap on sweeps bounds training time even when convergence stalls
  // on noisy, non-separable data.
  const std::size_t max_total_sweeps = 60;
  std::size_t sweeps = 0;
  while (passes < max_passes_ && sweeps++ < max_total_sweeps) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = f_of(i) - y[i];
      const bool violates = (y[i] * ei < -tolerance_ && alpha[i] < cbox[i]) ||
                            (y[i] * ei > tolerance_ && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = rng.below(n - 1);
      if (j >= i) ++j;
      const double ej = f_of(j) - y[j];

      const double ai_old = alpha[i], aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(cbox[j], cbox[i] + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - cbox[i]);
        hi = std::min(cbox[j], ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * kdot(i, j) - kdot(i, i) - kdot(j, j);
      if (eta >= 0.0) continue;

      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::fabs(aj - aj_old) < 1e-7) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);

      // Maintain the primal weight vector incrementally.
      const double di = y[i] * (ai - ai_old);
      const double dj = y[j] * (aj - aj_old);
      const double* xi = &xmat[i * nf_];
      const double* xj = &xmat[j * nf_];
      for (std::size_t f = 0; f < nf_; ++f) w_[f] += di * xi[f] + dj * xj[f];

      const double b1 = b_ - ei - di * kdot(i, i) - dj * kdot(i, j);
      const double b2 = b_ - ej - di * kdot(i, j) - dj * kdot(j, j);
      if (ai > 0.0 && ai < cbox[i]) {
        b_ = b1;
      } else if (aj > 0.0 && aj < cbox[j]) {
        b_ = b2;
      } else {
        b_ = (b1 + b2) / 2.0;
      }
      alpha[i] = ai;
      alpha[j] = aj;
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  n_support_ = 0;
  for (double a : alpha)
    if (a > 1e-8) ++n_support_;
  trained_ = true;
}

double Smo::margin(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "Smo::train() must be called first");
  HMD_REQUIRE(x.size() == nf_);
  double m = b_;
  for (std::size_t f = 0; f < nf_; ++f)
    m += w_[f] * (x[f] - mean_[f]) / stdev_[f];
  return m;
}

double Smo::predict_proba(std::span<const double> x) const {
  // Hard posterior, like WEKA SMO without logistic calibration.
  return margin(x) >= 0.0 ? 1.0 : 0.0;
}

ModelComplexity Smo::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "linear";
  mc.multipliers = nf_;
  mc.adders = nf_;
  mc.comparators = 1;
  std::size_t d = 0, nfe = std::max<std::size_t>(nf_, 1);
  while (nfe > 1) {
    nfe = (nfe + 1) / 2;
    ++d;
  }
  mc.depth = d + 2;
  mc.inputs = nf_;
  return mc;
}

}  // namespace hmd::ml

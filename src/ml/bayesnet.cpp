#include "ml/bayesnet.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.h"

namespace hmd::ml {
namespace {

/// Class-conditional mutual information I(Xi; Xj | C) over discretized
/// attributes — the edge weight of the Chow–Liu tree used by TAN.
double conditional_mutual_information(const Dataset& data,
                                      const Discretizer& di, std::size_t fi,
                                      const Discretizer& dj, std::size_t fj) {
  const std::size_t bi = di.num_bins();
  const std::size_t bj = dj.num_bins();
  // joint[c][a][b], and marginals.
  std::vector<double> joint(2 * bi * bj, 0.0);
  std::vector<double> mi(2 * bi, 0.0), mj(2 * bj, 0.0);
  double cls[2] = {0.0, 0.0};
  double total = 0.0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const double w = data.weight(r);
    const int c = data.label(r);
    const std::size_t a = di.bin(data.row(r)[fi]);
    const std::size_t b = dj.bin(data.row(r)[fj]);
    joint[(c * bi + a) * bj + b] += w;
    mi[c * bi + a] += w;
    mj[c * bj + b] += w;
    cls[c] += w;
    total += w;
  }
  if (total <= 0.0) return 0.0;
  double info = 0.0;
  for (int c = 0; c < 2; ++c) {
    if (cls[c] <= 0.0) continue;
    for (std::size_t a = 0; a < bi; ++a) {
      for (std::size_t b = 0; b < bj; ++b) {
        const double pabc = joint[(c * bi + a) * bj + b] / total;
        if (pabc <= 0.0) continue;
        const double pac = mi[c * bi + a] / total;
        const double pbc = mj[c * bj + b] / total;
        const double pc = cls[c] / total;
        info += pabc * std::log((pabc * pc) / (pac * pbc));
      }
    }
  }
  return info / std::log(2.0);
}

}  // namespace

void BayesNet::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  HMD_REQUIRE(data.num_features() >= 1);
  const std::size_t nf = data.num_features();

  std::vector<int> labels;
  std::vector<double> weights;
  labels.reserve(data.num_rows());
  weights.reserve(data.num_rows());
  double w_pos = 0.0, w_neg = 0.0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    labels.push_back(data.label(i));
    weights.push_back(data.weight(i));
    (data.label(i) == 1 ? w_pos : w_neg) += data.weight(i);
  }
  const double total = w_pos + w_neg;
  log_prior_[0] = std::log((w_neg + alpha_) / (total + 2.0 * alpha_));
  log_prior_[1] = std::log((w_pos + alpha_) / (total + 2.0 * alpha_));

  cpts_.assign(nf, AttributeCpt{});
  for (std::size_t f = 0; f < nf; ++f) {
    const std::vector<double> col = data.column(f);
    cpts_[f].disc = mdl_discretize(col, labels, weights);
  }

  // TAN: maximum-spanning tree over conditional mutual information, rooted
  // at attribute 0 (Prim's algorithm); naive keeps every parent empty.
  if (structure_ == Structure::kTan && nf >= 2) {
    std::vector<bool> in_tree(nf, false);
    in_tree[0] = true;
    std::vector<double> best_w(nf, -1.0);
    std::vector<std::size_t> best_parent(nf, 0);
    for (std::size_t f = 1; f < nf; ++f) {
      best_w[f] =
          conditional_mutual_information(data, cpts_[0].disc, 0,
                                         cpts_[f].disc, f);
      best_parent[f] = 0;
    }
    for (std::size_t step = 1; step < nf; ++step) {
      std::size_t pick = nf;
      double pick_w = -1.0;
      for (std::size_t f = 0; f < nf; ++f)
        if (!in_tree[f] && best_w[f] > pick_w) {
          pick = f;
          pick_w = best_w[f];
        }
      if (pick == nf) break;
      in_tree[pick] = true;
      cpts_[pick].parent = best_parent[pick];
      for (std::size_t f = 0; f < nf; ++f) {
        if (in_tree[f]) continue;
        const double w = conditional_mutual_information(
            data, cpts_[pick].disc, pick, cpts_[f].disc, f);
        if (w > best_w[f]) {
          best_w[f] = w;
          best_parent[f] = pick;
        }
      }
    }
  }

  // Estimate the CPTs with Laplace smoothing.
  for (std::size_t f = 0; f < nf; ++f) {
    AttributeCpt& cpt = cpts_[f];
    const std::size_t bins = cpt.disc.num_bins();
    const std::size_t pbins =
        cpt.parent == kNoParent ? 1 : cpts_[cpt.parent].disc.num_bins();
    // counts[cls][pbin][bin]
    std::vector<std::vector<std::vector<double>>> counts(
        2, std::vector<std::vector<double>>(pbins,
                                            std::vector<double>(bins, 0.0)));
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
      const int c = data.label(r);
      const std::size_t b = cpt.disc.bin(data.row(r)[f]);
      const std::size_t pb =
          cpt.parent == kNoParent
              ? 0
              : cpts_[cpt.parent].disc.bin(data.row(r)[cpt.parent]);
      counts[c][pb][b] += data.weight(r);
    }
    cpt.log_prob = counts;  // reuse shape
    for (int c = 0; c < 2; ++c) {
      for (std::size_t pb = 0; pb < pbins; ++pb) {
        const double row_total = std::accumulate(
            counts[c][pb].begin(), counts[c][pb].end(), 0.0);
        for (std::size_t b = 0; b < bins; ++b) {
          cpt.log_prob[c][pb][b] =
              std::log((counts[c][pb][b] + alpha_) /
                       (row_total + alpha_ * static_cast<double>(bins)));
        }
      }
    }
  }
  trained_ = true;
}

double BayesNet::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "BayesNet::train() must be called first");
  HMD_REQUIRE(x.size() == cpts_.size());
  double log_post[2] = {log_prior_[0], log_prior_[1]};
  for (std::size_t f = 0; f < cpts_.size(); ++f) {
    const AttributeCpt& cpt = cpts_[f];
    const std::size_t b = cpt.disc.bin(x[f]);
    const std::size_t pb =
        cpt.parent == kNoParent ? 0 : cpts_[cpt.parent].disc.bin(x[cpt.parent]);
    log_post[0] += cpt.log_prob[0][pb][b];
    log_post[1] += cpt.log_prob[1][pb][b];
  }
  // Normalise in log space.
  const double m = std::max(log_post[0], log_post[1]);
  const double e0 = std::exp(log_post[0] - m);
  const double e1 = std::exp(log_post[1] - m);
  return e1 / (e0 + e1);
}

ModelComplexity BayesNet::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "bayes";
  mc.inputs = cpts_.size();
  for (const AttributeCpt& cpt : cpts_) {
    // Binning needs cuts comparators; each attribute contributes one table
    // read + one adder into the log-posterior accumulation per class.
    mc.comparators += cpt.disc.cuts().size();
    const std::size_t pbins =
        cpt.parent == kNoParent ? 1 : cpts_[cpt.parent].disc.num_bins();
    mc.table_entries += 2 * pbins * cpt.disc.num_bins();
    mc.adders += 2;
  }
  // Adder-tree depth over attributes plus the bin compare stage.
  std::size_t d = 1, n = std::max<std::size_t>(cpts_.size(), 1);
  while (n > 1) {
    n = (n + 1) / 2;
    ++d;
  }
  mc.depth = d + 1;
  return mc;
}

}  // namespace hmd::ml

#include "ml/reptree.h"

#include <algorithm>
#include <set>

#include "ml/discretize.h"  // binary_entropy
#include "support/check.h"
#include "support/rng.h"

namespace hmd::ml {

std::size_t RepTree::build(const Dataset& data,
                           std::vector<std::size_t>& rows, std::size_t depth,
                           Presort& presort, Presort::Lists& lists) {
  Node node;
  for (std::size_t r : rows)
    (data.label(r) == 1 ? node.w_pos : node.w_neg) += data.weight(r);
  const double w_all = node.w_pos + node.w_neg;
  const bool depth_stop = max_depth_ != 0 && depth >= max_depth_;
  if (node.w_pos == 0.0 || node.w_neg == 0.0 ||
      w_all < 2.0 * min_leaf_weight_ || depth_stop) {
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  // Plain information-gain split search (REPTree does not use gain ratio).
  const double h_all = binary_entropy(node.w_pos, node.w_neg);
  double best_gain = 1e-9;
  std::size_t best_f = 0;
  double best_thr = 0.0;
  std::vector<SweepItem>& items = presort.scratch();
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    presort.gather(rows, lists, f, items);
    double lp = 0.0, ln = 0.0;
    for (std::size_t i = 0; i + 1 < items.size(); ++i) {
      (items[i].y == 1 ? lp : ln) += items[i].w;
      if (items[i + 1].v <= items[i].v) continue;
      const double wl = lp + ln, wr = w_all - wl;
      if (wl < min_leaf_weight_ || wr < min_leaf_weight_) continue;
      const double cond =
          (wl / w_all) * binary_entropy(lp, ln) +
          (wr / w_all) * binary_entropy(node.w_pos - lp, node.w_neg - ln);
      const double gain = h_all - cond;
      if (gain > best_gain) {
        best_gain = gain;
        best_f = f;
        best_thr = (items[i].v + items[i + 1].v) / 2.0;
      }
    }
  }
  if (best_gain <= 1e-9) {
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  std::vector<std::size_t> left_rows, right_rows;
  const double* best_col = data.raw_column(best_f).data();
  const std::uint32_t* map = data.row_map().data();
  for (std::size_t r : rows)
    (best_col[map[r]] <= best_thr ? left_rows : right_rows).push_back(r);
  Presort::Lists left_lists, right_lists;
  presort.split_lists(lists, rows, best_f, best_thr, &left_lists,
                      &right_lists);
  node.leaf = false;
  node.feature = best_f;
  node.threshold = best_thr;
  nodes_.push_back(node);
  const std::size_t self = nodes_.size() - 1;
  rows.clear();
  rows.shrink_to_fit();
  lists = Presort::Lists{};
  const std::size_t l = build(data, left_rows, depth + 1, presort, left_lists);
  const std::size_t r =
      build(data, right_rows, depth + 1, presort, right_lists);
  nodes_[self].left = static_cast<std::int64_t>(l);
  nodes_[self].right = static_cast<std::int64_t>(r);
  return self;
}

double RepTree::rep_prune(const Dataset& prune, std::size_t idx,
                          const std::vector<std::size_t>& rows) {
  Node& node = nodes_[idx];
  // Errors if this node were a leaf predicting its grow-set majority.
  const int majority = node.w_pos >= node.w_neg ? 1 : 0;
  double leaf_errors = 0.0;
  for (std::size_t r : rows)
    if (prune.label(r) != majority) leaf_errors += prune.weight(r);
  if (node.leaf) return leaf_errors;

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows)
    (prune.row(r)[node.feature] <= node.threshold ? left_rows : right_rows)
        .push_back(r);
  const double subtree_errors =
      rep_prune(prune, static_cast<std::size_t>(node.left), left_rows) +
      rep_prune(prune, static_cast<std::size_t>(node.right), right_rows);
  if (leaf_errors <= subtree_errors) {
    node.leaf = true;
    node.left = node.right = -1;
    return leaf_errors;
  }
  return subtree_errors;
}

void RepTree::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  nodes_.clear();

  // Stratified grow/prune partition: folds 1..k-1 grow, fold 0 prunes.
  Rng rng(seed_);
  Dataset grow = data;
  Dataset prune;
  if (num_folds_ >= 2 && data.num_rows() >= 2 * num_folds_) {
    const auto folds = stratified_row_folds(data, num_folds_, rng);
    std::vector<std::size_t> grow_rows;
    for (std::size_t f = 1; f < folds.size(); ++f)
      grow_rows.insert(grow_rows.end(), folds[f].begin(), folds[f].end());
    grow = data.subset(grow_rows);
    prune = data.subset(folds[0]);
  }

  std::vector<std::size_t> rows(grow.num_rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Presort presort(grow);
  Presort::Lists lists = presort.make_lists(rows);
  build(grow, rows, 0, presort, lists);

  if (prune.num_rows() > 0) {
    std::vector<std::size_t> prune_rows(prune.num_rows());
    for (std::size_t i = 0; i < prune_rows.size(); ++i) prune_rows[i] = i;
    rep_prune(prune, 0, prune_rows);
  }
  trained_ = true;
}

double RepTree::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "RepTree::train() must be called first");
  std::size_t idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.leaf)
      return (node.w_pos + 1.0) / (node.w_pos + node.w_neg + 2.0);
    HMD_INVARIANT(node.feature < x.size());
    idx = static_cast<std::size_t>(
        x[node.feature] <= node.threshold ? node.left : node.right);
  }
}

ModelComplexity RepTree::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "tree";
  std::set<std::size_t> features;
  std::vector<std::size_t> stack{0};
  std::size_t internal = 0, leaves = 0, max_depth = 0;
  std::vector<std::pair<std::size_t, std::size_t>> dstack{{0, 0}};
  stack.clear();
  while (!dstack.empty()) {
    const auto [idx, d] = dstack.back();
    dstack.pop_back();
    const Node& node = nodes_[idx];
    max_depth = std::max(max_depth, d);
    if (node.leaf) {
      ++leaves;
      continue;
    }
    ++internal;
    features.insert(node.feature);
    dstack.push_back({static_cast<std::size_t>(node.left), d + 1});
    dstack.push_back({static_cast<std::size_t>(node.right), d + 1});
  }
  mc.comparators = internal;
  mc.table_entries = leaves;
  mc.depth = max_depth + 1;
  mc.inputs = features.size();
  return mc;
}


std::vector<RepTree::FlatNode> RepTree::flatten() const {
  HMD_REQUIRE(trained_);
  std::vector<FlatNode> out;
  // Map reachable arena indices to compact output indices, breadth-first
  // so index 0 is the root.
  std::vector<std::size_t> order{0};
  std::vector<std::size_t> compact(nodes_.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& node = nodes_[order[i]];
    compact[order[i]] = i;
    if (!node.leaf) {
      order.push_back(static_cast<std::size_t>(node.left));
      order.push_back(static_cast<std::size_t>(node.right));
    }
  }
  out.resize(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& node = nodes_[order[i]];
    FlatNode& flat = out[i];
    flat.leaf = node.leaf;
    if (node.leaf) {
      flat.proba = (node.w_pos + 1.0) / (node.w_pos + node.w_neg + 2.0);
    } else {
      flat.feature = node.feature;
      flat.threshold = node.threshold;
      flat.left = compact[static_cast<std::size_t>(node.left)];
      flat.right = compact[static_cast<std::size_t>(node.right)];
    }
  }
  return out;
}

}  // namespace hmd::ml

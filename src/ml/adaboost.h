// AdaBoost.M1 (Freund & Schapire, 1997) — the paper's "Boosted" detectors.
//
// Each boosting round trains a fresh copy of the base classifier on the
// re-weighted training set, then multiplies the weights of correctly
// classified instances by beta = err/(1-err) and renormalises (the WEKA
// AdaBoostM1 formulation). Rounds stop early when the base error hits 0 or
// exceeds 1/2. Prediction is the alpha-weighted vote of the members'
// *hard* decisions — which is exactly why boosting turns the hard-output
// SMO/SGD into detectors with a real, graded ROC curve.
#pragma once

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

class AdaBoostM1 final : public Classifier {
 public:
  /// `prototype` supplies clone_untrained() copies for the rounds.
  /// `iterations` is WEKA's default 10. `resample` switches to WEKA's -Q
  /// mode (weight-proportional bootstrap per round); the default, like
  /// WEKA's, passes the weights straight to the base learner — resampling
  /// leaks duplicate rows into learners' internal grow/prune splits and
  /// measurably hurts REPTree/J48 (see the ensemble ablation bench).
  AdaBoostM1(std::unique_ptr<Classifier> prototype,
             std::size_t iterations = 10, std::uint64_t seed = 1,
             bool resample = false);

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  /// Alpha-weighted vote margin: |vote(malware) − vote(benign)| / vote(all).
  /// Identical to the default |2p−1| here (the proba IS the vote fraction)
  /// but computed from the votes directly, documenting the agreement
  /// semantics the margin-gated defence relies on.
  double margin(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  std::string name() const override;
  ModelComplexity complexity() const override;

  std::size_t num_members() const { return members_.size(); }
  const Classifier& member(std::size_t i) const { return *members_[i]; }
  double member_alpha(std::size_t i) const { return alpha_[i]; }

 private:
  std::unique_ptr<Classifier> prototype_;
  std::size_t iterations_;
  std::uint64_t seed_;
  bool resample_;

  std::vector<std::unique_ptr<Classifier>> members_;
  std::vector<double> alpha_;
  bool trained_ = false;
};

}  // namespace hmd::ml

// ARFF (Attribute-Relation File Format) and CSV dataset I/O.
//
// The paper evaluates in WEKA; exporting our captured datasets as ARFF
// lets anyone load them into actual WEKA and cross-check our classifier
// implementations against the originals. Import exists so round-trip
// tests can verify the writer and so externally produced HPC datasets
// (real `perf stat` logs converted offline) can be pushed through the
// same detectors.
#pragma once

#include <iosfwd>
#include <string>

#include "ml/dataset.h"

namespace hmd::ml {

/// Write `data` as an ARFF relation: every feature a NUMERIC attribute,
/// the label as a nominal {benign, malware} class attribute. Instance
/// weights are emitted in ARFF's "{...}, {weight}" syntax only when some
/// weight differs from 1. Group ids are recorded as a comment per row.
void write_arff(std::ostream& os, const Dataset& data,
                const std::string& relation_name = "hmd_hpc_samples");

/// Parse an ARFF stream previously produced by write_arff (numeric
/// attributes + final nominal class; '%' comments ignored).
/// Throws PreconditionError on malformed input.
Dataset read_arff(std::istream& is);

/// Plain CSV with a header row; label column last ("label" = 0/1).
void write_dataset_csv(std::ostream& os, const Dataset& data);

}  // namespace hmd::ml

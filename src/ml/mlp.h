// MultilayerPerceptron — one hidden sigmoid layer trained with
// backpropagation (stochastic gradient descent with momentum).
//
// Hyper-parameters follow WEKA's MultilayerPerceptron defaults: hidden
// units = (#attributes + #classes) / 2 (the 'a' wildcard), learning rate
// 0.3, momentum 0.2, inputs standardized. Epoch count is configurable
// (WEKA's 500; we default to 300 which converges on these datasets).
// Instance weights scale the per-sample gradient, so the model composes
// with AdaBoost re-weighting.
#pragma once

#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

class Mlp final : public Classifier {
 public:
  explicit Mlp(std::size_t hidden = 0 /* 0 = WEKA 'a' rule */,
               double learning_rate = 0.3, double momentum = 0.2,
               std::size_t epochs = 300, std::uint64_t seed = 1)
      : hidden_(hidden),
        learning_rate_(learning_rate),
        momentum_(momentum),
        epochs_(epochs),
        seed_(seed) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<Mlp>(hidden_, learning_rate_, momentum_, epochs_,
                                 seed_);
  }
  std::string name() const override { return "MLP"; }
  ModelComplexity complexity() const override;

  std::size_t hidden_units() const { return h_; }

  /// Trained parameters (read-only, for integrity analysis / export).
  /// All are valid only after train().
  std::size_t num_inputs() const { return nf_; }
  const std::vector<double>& hidden_weights() const { return w1_; }
  const std::vector<double>& hidden_bias() const { return b1_; }
  const std::vector<double>& output_weights() const { return w2_; }
  double output_bias() const { return b2_; }
  const std::vector<double>& input_mean() const { return mean_; }
  const std::vector<double>& input_stdev() const { return stdev_; }

 private:
  double forward(std::span<const double> x, std::vector<double>& hid) const;

  std::size_t hidden_;
  double learning_rate_;
  double momentum_;
  std::size_t epochs_;
  std::uint64_t seed_;

  std::size_t nf_ = 0, h_ = 0;
  std::vector<double> mean_, stdev_;       ///< input standardization
  std::vector<double> w1_;                 ///< h_ × nf_ (row-major)
  std::vector<double> b1_;                 ///< h_
  std::vector<double> w2_;                 ///< h_
  double b2_ = 0.0;
  bool trained_ = false;
};

}  // namespace hmd::ml

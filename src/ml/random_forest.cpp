#include "ml/random_forest.h"

#include <algorithm>
#include <set>

#include "ml/discretize.h"  // binary_entropy
#include "support/check.h"
#include "support/rng.h"

namespace hmd::ml {

std::size_t RandomTree::build(const Dataset& data,
                              std::vector<std::size_t>& rows, Rng& rng,
                              Presort& presort, Presort::Lists& lists) {
  Node node;
  for (std::size_t r : rows)
    (data.label(r) == 1 ? node.w_pos : node.w_neg) += data.weight(r);
  const double w_all = node.w_pos + node.w_neg;
  if (node.w_pos == 0.0 || node.w_neg == 0.0 ||
      w_all < 2.0 * min_leaf_weight_) {
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  // Random feature subset for this split.
  std::size_t m = features_per_split_;
  if (m == 0) {
    m = 1;
    while (m * m < data.num_features()) ++m;  // ceil(sqrt(d))
  }
  m = std::min(m, data.num_features());
  std::vector<std::size_t> features(data.num_features());
  for (std::size_t f = 0; f < features.size(); ++f) features[f] = f;
  for (std::size_t i = 0; i < m; ++i)
    std::swap(features[i], features[i + rng.below(features.size() - i)]);
  features.resize(m);

  const double h_all = binary_entropy(node.w_pos, node.w_neg);
  double best_gain = 1e-9;
  std::size_t best_f = 0;
  double best_thr = 0.0;
  std::vector<SweepItem>& items = presort.scratch();
  for (std::size_t f : features) {
    presort.gather(rows, lists, f, items);
    double lp = 0.0, ln = 0.0;
    for (std::size_t i = 0; i + 1 < items.size(); ++i) {
      (items[i].y == 1 ? lp : ln) += items[i].w;
      if (items[i + 1].v <= items[i].v) continue;
      const double wl = lp + ln, wr = w_all - wl;
      if (wl < min_leaf_weight_ || wr < min_leaf_weight_) continue;
      const double cond =
          (wl / w_all) * binary_entropy(lp, ln) +
          (wr / w_all) * binary_entropy(node.w_pos - lp, node.w_neg - ln);
      const double gain = h_all - cond;
      if (gain > best_gain) {
        best_gain = gain;
        best_f = f;
        best_thr = (items[i].v + items[i + 1].v) / 2.0;
      }
    }
  }
  if (best_gain <= 1e-9) {
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  std::vector<std::size_t> left_rows, right_rows;
  const double* best_col = data.raw_column(best_f).data();
  const std::uint32_t* map = data.row_map().data();
  for (std::size_t r : rows)
    (best_col[map[r]] <= best_thr ? left_rows : right_rows).push_back(r);
  Presort::Lists left_lists, right_lists;
  presort.split_lists(lists, rows, best_f, best_thr, &left_lists,
                      &right_lists);
  node.leaf = false;
  node.feature = best_f;
  node.threshold = best_thr;
  nodes_.push_back(node);
  const std::size_t self = nodes_.size() - 1;
  rows.clear();
  rows.shrink_to_fit();
  lists = Presort::Lists{};
  const std::size_t l = build(data, left_rows, rng, presort, left_lists);
  const std::size_t r = build(data, right_rows, rng, presort, right_lists);
  nodes_[self].left = static_cast<std::int64_t>(l);
  nodes_[self].right = static_cast<std::int64_t>(r);
  return self;
}

void RandomTree::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  nodes_.clear();
  Rng rng(seed_);
  std::vector<std::size_t> rows(data.num_rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Presort presort(data);
  Presort::Lists lists = presort.make_lists(rows);
  build(data, rows, rng, presort, lists);
  trained_ = true;
}

double RandomTree::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "RandomTree::train() must be called first");
  std::size_t idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.leaf)
      return (node.w_pos + 1.0) / (node.w_pos + node.w_neg + 2.0);
    HMD_INVARIANT(node.feature < x.size());
    idx = static_cast<std::size_t>(
        x[node.feature] <= node.threshold ? node.left : node.right);
  }
}

std::vector<RandomTree::FlatNode> RandomTree::flatten() const {
  HMD_REQUIRE(trained_);
  std::vector<FlatNode> out;
  // Map reachable arena indices to compact output indices, breadth-first
  // so index 0 is the root (same scheme as J48/RepTree::flatten).
  std::vector<std::size_t> order{0};
  std::vector<std::size_t> compact(nodes_.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& node = nodes_[order[i]];
    compact[order[i]] = i;
    if (!node.leaf) {
      order.push_back(static_cast<std::size_t>(node.left));
      order.push_back(static_cast<std::size_t>(node.right));
    }
  }
  out.resize(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& node = nodes_[order[i]];
    FlatNode& flat = out[i];
    flat.leaf = node.leaf;
    if (node.leaf) {
      flat.proba = (node.w_pos + 1.0) / (node.w_pos + node.w_neg + 2.0);
    } else {
      flat.feature = node.feature;
      flat.threshold = node.threshold;
      flat.left = compact[static_cast<std::size_t>(node.left)];
      flat.right = compact[static_cast<std::size_t>(node.right)];
    }
  }
  return out;
}

ModelComplexity RandomTree::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "tree";
  std::set<std::size_t> features;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  std::size_t internal = 0, leaves = 0, depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const Node& node = nodes_[idx];
    if (node.leaf) {
      ++leaves;
      continue;
    }
    ++internal;
    features.insert(node.feature);
    stack.push_back({static_cast<std::size_t>(node.left), d + 1});
    stack.push_back({static_cast<std::size_t>(node.right), d + 1});
  }
  mc.comparators = internal;
  mc.table_entries = leaves;
  mc.depth = depth + 1;
  mc.inputs = features.size();
  return mc;
}

RandomForest::RandomForest(std::size_t trees, std::size_t features_per_split,
                           std::uint64_t seed)
    : trees_(trees), features_per_split_(features_per_split), seed_(seed) {
  HMD_REQUIRE(trees_ >= 1);
}

void RandomForest::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  members_.clear();
  Rng rng(seed_ ^ 0xF0135ULL);
  for (std::size_t t = 0; t < trees_; ++t) {
    Rng tree_rng = rng.fork(t);
    const Dataset sample = data.bootstrap(tree_rng);
    auto tree = std::make_unique<RandomTree>(features_per_split_, 1.0,
                                             mix64(seed_ + t));
    tree->train(sample);
    members_.push_back(std::move(tree));
  }
  trained_ = true;
}

double RandomForest::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "RandomForest::train() must be called first");
  double acc = 0.0;
  for (const auto& m : members_) acc += m->predict_proba(x);
  return acc / static_cast<double>(members_.size());
}

std::unique_ptr<Classifier> RandomForest::clone_untrained() const {
  return std::make_unique<RandomForest>(trees_, features_per_split_, seed_);
}

ModelComplexity RandomForest::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "ensemble";
  for (const auto& m : members_) {
    mc.children.push_back(m->complexity());
    mc.inputs = std::max(mc.inputs, mc.children.back().inputs);
  }
  mc.adders = members_.size();
  mc.comparators = 1;
  std::size_t max_child = 0;
  for (const auto& c : mc.children) max_child = std::max(max_child, c.depth);
  mc.depth = max_child + 2;
  return mc;
}

}  // namespace hmd::ml

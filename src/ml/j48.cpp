#include "ml/j48.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "ml/discretize.h"  // binary_entropy
#include "support/check.h"

namespace hmd::ml {
namespace {

struct SplitCandidate {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
  double gain_ratio = 0.0;
  bool valid = false;
};

/// Best binary split of the node on feature `f` by information gain,
/// honouring the minimum branch weight. Applies C4.5's log2(candidates)/W
/// penalty. `w_pos`/`w_neg` are the node's class weights (accumulated in
/// node-row order by the caller); the scan sequence comes from the presort
/// layer in canonical order.
SplitCandidate best_split_on_feature(const std::vector<std::size_t>& rows,
                                     std::size_t f, double min_leaf,
                                     double w_pos, double w_neg,
                                     Presort& presort,
                                     const Presort::Lists& lists) {
  std::vector<SweepItem>& items = presort.scratch();
  presort.gather(rows, lists, f, items);
  const double w_all = w_pos + w_neg;
  const double h_all = binary_entropy(w_pos, w_neg);

  SplitCandidate best;
  best.feature = f;
  std::size_t candidates = 0;
  double lp = 0.0, ln = 0.0;
  for (std::size_t i = 0; i + 1 < items.size(); ++i) {
    (items[i].y == 1 ? lp : ln) += items[i].w;
    if (items[i + 1].v <= items[i].v) continue;
    const double wl = lp + ln;
    const double wr = w_all - wl;
    if (wl < min_leaf || wr < min_leaf) continue;
    ++candidates;
    const double rp = w_pos - lp, rn = w_neg - ln;
    const double cond = (wl / w_all) * binary_entropy(lp, ln) +
                        (wr / w_all) * binary_entropy(rp, rn);
    const double gain = h_all - cond;
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold = (items[i].v + items[i + 1].v) / 2.0;
      // Split information for the gain ratio.
      const double pl = wl / w_all, pr = wr / w_all;
      const double split_info =
          -(pl * std::log2(pl) + pr * std::log2(pr));
      best.gain_ratio = split_info > 1e-9 ? gain / split_info : 0.0;
      best.valid = true;
    }
  }
  if (best.valid && candidates > 0) {
    // C4.5 charges numeric attributes for choosing among `candidates` cuts.
    best.gain -= std::log2(static_cast<double>(candidates)) / w_all;
    if (best.gain <= 0.0) best.valid = false;
  }
  return best;
}

}  // namespace

double normal_quantile(double p) {
  HMD_REQUIRE(p > 0.0 && p < 1.0);
  // Acklam's rational approximation, |relative error| < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double c45_added_errors(double n, double e, double cf) {
  HMD_REQUIRE(n > 0.0 && e >= 0.0 && e <= n);
  HMD_REQUIRE(cf > 0.0 && cf < 1.0);
  // Mirrors weka.classifiers.trees.j48.Stats.addErrs.
  if (e < 1.0) {
    const double base = n * (1.0 - std::pow(cf, 1.0 / n));
    if (e == 0.0) return base;
    return base + e * (c45_added_errors(n, 1.0, cf) - base);
  }
  if (e + 0.5 >= n) return std::max(n - e, 0.0);
  const double z = normal_quantile(1.0 - cf);
  const double f = (e + 0.5) / n;
  const double r =
      (f + z * z / (2.0 * n) +
       z * std::sqrt(f / n - f * f / n + z * z / (4.0 * n * n))) /
      (1.0 + z * z / n);
  return r * n - e;
}

std::size_t J48::build(const Dataset& data, std::vector<std::size_t>& rows,
                       Presort& presort, Presort::Lists& lists) {
  Node node;
  for (std::size_t r : rows)
    (data.label(r) == 1 ? node.w_pos : node.w_neg) += data.weight(r);

  const double w_all = node.w_pos + node.w_neg;
  const bool pure = node.w_pos == 0.0 || node.w_neg == 0.0;
  if (pure || w_all < 2.0 * min_leaf_weight_) {
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  // First stage: gains for all features; second stage: best gain ratio
  // among features reaching the mean positive gain.
  std::vector<SplitCandidate> cands;
  double gain_sum = 0.0;
  std::size_t gain_n = 0;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    SplitCandidate c = best_split_on_feature(
        rows, f, min_leaf_weight_, node.w_pos, node.w_neg, presort, lists);
    if (c.valid) {
      gain_sum += c.gain;
      ++gain_n;
    }
    cands.push_back(c);
  }
  if (gain_n == 0) {
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }
  const double mean_gain = gain_sum / static_cast<double>(gain_n);
  const SplitCandidate* best = nullptr;
  for (const SplitCandidate& c : cands) {
    if (!c.valid || c.gain + 1e-12 < mean_gain) continue;
    if (best == nullptr || c.gain_ratio > best->gain_ratio) best = &c;
  }
  if (best == nullptr) {
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  std::vector<std::size_t> left_rows, right_rows;
  const double* best_col = data.raw_column(best->feature).data();
  const std::uint32_t* map = data.row_map().data();
  for (std::size_t r : rows)
    (best_col[map[r]] <= best->threshold ? left_rows : right_rows).push_back(r);
  HMD_INVARIANT(!left_rows.empty() && !right_rows.empty());

  Presort::Lists left_lists, right_lists;
  presort.split_lists(lists, rows, best->feature, best->threshold,
                      &left_lists, &right_lists);

  node.leaf = false;
  node.feature = best->feature;
  node.threshold = best->threshold;
  nodes_.push_back(node);
  const std::size_t self = nodes_.size() - 1;
  rows.clear();
  rows.shrink_to_fit();  // release before recursing on large subsets
  lists = Presort::Lists{};
  const std::size_t left = build(data, left_rows, presort, left_lists);
  const std::size_t right = build(data, right_rows, presort, right_lists);
  nodes_[self].left = static_cast<std::int64_t>(left);
  nodes_[self].right = static_cast<std::int64_t>(right);
  return self;
}

double J48::prune_subtree(std::size_t idx) {
  Node& node = nodes_[idx];
  const double n = node.w_pos + node.w_neg;
  const double leaf_err = std::min(node.w_pos, node.w_neg);
  const double leaf_est =
      n > 0.0 ? leaf_err + c45_added_errors(n, leaf_err, confidence_) : 0.0;
  if (node.leaf) return leaf_est;

  const double subtree_est =
      prune_subtree(static_cast<std::size_t>(node.left)) +
      prune_subtree(static_cast<std::size_t>(node.right));
  if (leaf_est <= subtree_est + 0.1) {
    // Subtree replacement: this node becomes a leaf (children stay in the
    // arena but become unreachable; complexity walks from the root).
    node.leaf = true;
    node.left = node.right = -1;
    return leaf_est;
  }
  return subtree_est;
}

void J48::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  nodes_.clear();
  std::vector<std::size_t> rows(data.num_rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Presort presort(data);
  Presort::Lists lists = presort.make_lists(rows);
  // Our build appends the root first: index 0 is always the root.
  build(data, rows, presort, lists);
  if (prune_) prune_subtree(0);
  trained_ = true;
}

double J48::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "J48::train() must be called first");
  std::size_t idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.leaf) {
      // Laplace-smoothed leaf probability.
      return (node.w_pos + 1.0) / (node.w_pos + node.w_neg + 2.0);
    }
    HMD_INVARIANT(node.feature < x.size());
    idx = static_cast<std::size_t>(
        x[node.feature] <= node.threshold ? node.left : node.right);
  }
}

std::size_t J48::depth_of(std::size_t idx) const {
  const Node& node = nodes_[idx];
  if (node.leaf) return 0;
  return 1 + std::max(depth_of(static_cast<std::size_t>(node.left)),
                      depth_of(static_cast<std::size_t>(node.right)));
}

std::size_t J48::leaves_of(std::size_t idx) const {
  const Node& node = nodes_[idx];
  if (node.leaf) return 1;
  return leaves_of(static_cast<std::size_t>(node.left)) +
         leaves_of(static_cast<std::size_t>(node.right));
}

std::size_t J48::num_leaves() const {
  HMD_REQUIRE(trained_);
  return leaves_of(0);
}

std::size_t J48::depth() const {
  HMD_REQUIRE(trained_);
  return depth_of(0);
}

ModelComplexity J48::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "tree";
  std::set<std::size_t> features;
  // Walk reachable nodes only.
  std::vector<std::size_t> stack{0};
  std::size_t internal = 0, leaves = 0;
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.leaf) {
      ++leaves;
      continue;
    }
    ++internal;
    features.insert(node.feature);
    stack.push_back(static_cast<std::size_t>(node.left));
    stack.push_back(static_cast<std::size_t>(node.right));
  }
  mc.comparators = internal;
  mc.table_entries = leaves;
  mc.depth = depth_of(0) + 1;
  mc.inputs = features.size();
  return mc;
}


std::vector<J48::FlatNode> J48::flatten() const {
  HMD_REQUIRE(trained_);
  std::vector<FlatNode> out;
  // Map reachable arena indices to compact output indices, breadth-first
  // so index 0 is the root.
  std::vector<std::size_t> order{0};
  std::vector<std::size_t> compact(nodes_.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& node = nodes_[order[i]];
    compact[order[i]] = i;
    if (!node.leaf) {
      order.push_back(static_cast<std::size_t>(node.left));
      order.push_back(static_cast<std::size_t>(node.right));
    }
  }
  out.resize(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& node = nodes_[order[i]];
    FlatNode& flat = out[i];
    flat.leaf = node.leaf;
    if (node.leaf) {
      flat.proba = (node.w_pos + 1.0) / (node.w_pos + node.w_neg + 2.0);
    } else {
      flat.feature = node.feature;
      flat.threshold = node.threshold;
      flat.left = compact[static_cast<std::size_t>(node.left)];
      flat.right = compact[static_cast<std::size_t>(node.right)];
    }
  }
  return out;
}

}  // namespace hmd::ml

// OneR (Holte, 1993) — the one-rule classifier.
//
// For every feature, OneR builds a bucketed rule over the sorted values
// (each bucket must contain at least `min_bucket_weight` optimal-class
// instances, WEKA default 6) and keeps the single feature whose rule has the
// lowest training error. The paper observes that OneR always picks
// branch_instructions and is therefore insensitive to feature reduction —
// a behaviour this implementation reproduces given the same ranking.
#pragma once

#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

class OneR final : public Classifier {
 public:
  explicit OneR(double min_bucket_weight = 6.0)
      : min_bucket_weight_(min_bucket_weight) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<OneR>(min_bucket_weight_);
  }
  std::string name() const override { return "OneR"; }
  ModelComplexity complexity() const override;

  bool trained() const { return trained_; }
  /// The feature the rule was built on (valid after train()).
  std::size_t chosen_feature() const { return feature_; }
  std::size_t num_buckets() const { return proba_.size(); }
  /// Bucket boundaries and per-bucket P(malware) (for hardware codegen).
  const std::vector<double>& bucket_cuts() const { return cuts_; }
  const std::vector<double>& bucket_proba() const { return proba_; }

 private:
  double min_bucket_weight_;

  std::size_t feature_ = 0;
  std::vector<double> cuts_;   ///< ascending bucket boundaries
  std::vector<double> proba_;  ///< P(malware) per bucket (cuts_.size()+1)
  bool trained_ = false;
};

}  // namespace hmd::ml

// Presorted-feature split search for the tree/rule learners.
//
// Every sort-based learner in this library (J48, REPTree, RandomTree, JRip,
// OneR) scans each feature's values in ascending order, accumulating class
// weights to score split candidates. The canonical scan order is:
//
//   ascending value; ties in the order the rows appear in the node's row
//   list (for trees that list is always ascending view-row order; for
//   JRip's grow sets it is the shuffled grow order).
//
// Two interchangeable implementations produce *identical* SweepItem
// sequences — same values, same tie order, hence bit-identical accumulated
// sums, gains and thresholds:
//
//   * legacy (HMD_LEGACY_DATASET=1): gather the node rows and
//     std::stable_sort by value — the reference path, O(n log n) per node
//     per feature;
//   * columnar (default): counting-sort the training set's rows once per
//     tree/rule by each feature's cached value-run ids
//     (Dataset::feature_runs), then maintain the per-feature sorted lists
//     down the tree by order-preserving partition — O(features · n) per
//     node, no comparison sort anywhere below the root.
//
// A counting sort keyed by run id is stable in the input order, and an
// order-preserving partition of a sorted list leaves each side sorted, so
// both invariants of the canonical order survive every node split and every
// rule-condition filter. See DESIGN.md §9.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace hmd::ml {

/// One row of a split-search scan: feature value, label, instance weight.
struct SweepItem {
  double v;
  int y;
  double w;
};

class Presort {
 public:
  /// View rows of one node, sorted by one feature (canonical order).
  using List = std::vector<std::uint32_t>;

  /// One List per feature of the same node. Empty in legacy mode (gather
  /// then sorts on the fly).
  struct Lists {
    std::vector<List> per;
  };

  /// Binds to the training view and captures the process dataset mode for
  /// the duration of this training pass.
  explicit Presort(const Dataset& data);

  bool columnar() const { return columnar_; }

  /// Sorted per-feature lists of `rows` via counting sort on the cached
  /// value runs; ties keep the order rows appear in `rows`. Returns empty
  /// lists in legacy mode.
  Lists make_lists(std::span<const std::size_t> rows);

  /// Partition a node's lists by `x[feature] <= threshold` into left/right,
  /// preserving order (each side stays in canonical order). `parent_rows`
  /// is the node's row set. No-op in legacy mode.
  void split_lists(const Lists& parent,
                   std::span<const std::size_t> parent_rows,
                   std::size_t feature, double threshold, Lists* left,
                   Lists* right);

  /// Drop every list entry not matching the rule condition
  /// (x[feature] <= value, or >= when !leq) — JRip's grow-set shrink.
  /// No-op in legacy mode.
  void filter_lists(Lists* lists, std::size_t feature, bool leq,
                    double value) const;

  /// Fill `items` with the node's canonical scan sequence for feature `f`:
  /// columnar mode reads the presorted list, legacy mode gathers `rows` and
  /// stable-sorts. Both produce the same sequence.
  void gather(std::span<const std::size_t> rows, const Lists& lists,
              std::size_t f, std::vector<SweepItem>& items) const;

  /// Reusable gather target, so per-node sweeps don't reallocate.
  std::vector<SweepItem>& scratch() { return scratch_; }

 private:
  const Dataset* data_;
  bool columnar_;
  bool identity_;  ///< dataset is an identity view (skip the row map)
  std::vector<std::uint32_t> offsets_;  ///< counting-sort scratch
  std::vector<std::uint8_t> side_;      ///< split_lists per-row side flags
  std::vector<SweepItem> scratch_;
};

}  // namespace hmd::ml

// JRip — WEKA's implementation of RIPPER (Cohen, 1995), a propositional
// rule learner.
//
// Rules for the minority class are grown condition-by-condition on a 2/3
// grow split by maximising FOIL information gain, then pruned on the 1/3
// prune split by maximising (p - n) / (p + n). Rule-set growth stops when a
// new rule's description length exceeds the best-so-far by 64 bits or the
// rule is worse than random on the prune set. One optimisation pass then
// reconsiders each rule against a freshly grown replacement and a revised
// variant (WEKA runs two passes; we run `optimize_passes`, default 2).
//
// Prediction follows the decision list: the first matching rule fires with
// its Laplace-smoothed precision; otherwise the default class fires.
#pragma once

#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

class JRip final : public Classifier {
 public:
  explicit JRip(std::size_t optimize_passes = 2, double min_rule_weight = 2.0,
                std::uint64_t seed = 1)
      : optimize_passes_(optimize_passes),
        min_rule_weight_(min_rule_weight),
        seed_(seed) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<JRip>(optimize_passes_, min_rule_weight_, seed_);
  }
  std::string name() const override { return "JRip"; }
  ModelComplexity complexity() const override;

  struct Condition {
    std::size_t feature = 0;
    bool leq = true;  ///< true: x[f] <= value, false: x[f] >= value
    double value = 0.0;

    bool matches(std::span<const double> x) const {
      return leq ? x[feature] <= value : x[feature] >= value;
    }
  };
  struct Rule {
    std::vector<Condition> conditions;  ///< conjunctive antecedent
    double precision = 1.0;             ///< smoothed P(target | fires)

    bool matches(std::span<const double> x) const {
      for (const Condition& c : conditions)
        if (!c.matches(x)) return false;
      return true;
    }
  };

  std::size_t num_rules() const { return rules_.size(); }
  bool trained() const { return trained_; }
  const std::vector<Rule>& rules() const { return rules_; }
  int target_class() const { return target_; }
  /// P(malware) when no rule fires (valid after train()).
  double default_proba() const { return default_proba_; }

 private:
  Rule grow_rule(const Dataset& data,
                 const std::vector<std::size_t>& rows) const;
  void prune_rule(Rule& rule, const Dataset& data,
                  const std::vector<std::size_t>& rows) const;
  double rule_dl(const Rule& rule, const Dataset& data,
                 const std::vector<std::size_t>& rows) const;

  std::size_t optimize_passes_;
  double min_rule_weight_;
  std::uint64_t seed_;

  int target_ = 1;  ///< class the rules predict (minority class)
  std::vector<Rule> rules_;
  double default_proba_ = 0.5;  ///< P(malware) when no rule fires
  bool trained_ = false;
};

}  // namespace hmd::ml

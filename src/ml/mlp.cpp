#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/rng.h"
#include "support/stats.h"

namespace hmd::ml {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double Mlp::forward(std::span<const double> x, std::vector<double>& hid) const {
  hid.resize(h_);
  for (std::size_t j = 0; j < h_; ++j) {
    double z = b1_[j];
    const double* w = &w1_[j * nf_];
    for (std::size_t f = 0; f < nf_; ++f)
      z += w[f] * (x[f] - mean_[f]) / stdev_[f];
    hid[j] = sigmoid(z);
  }
  double z = b2_;
  for (std::size_t j = 0; j < h_; ++j) z += w2_[j] * hid[j];
  return sigmoid(z);
}

void Mlp::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  nf_ = data.num_features();
  h_ = hidden_ != 0 ? hidden_ : std::max<std::size_t>(2, (nf_ + 2) / 2);

  // Standardization statistics.
  mean_.assign(nf_, 0.0);
  stdev_.assign(nf_, 1.0);
  for (std::size_t f = 0; f < nf_; ++f) {
    const auto col = data.column(f);
    mean_[f] = mean(col);
    const double sd = stddev(col);
    stdev_[f] = sd > 1e-12 ? sd : 1.0;
  }

  Rng rng(seed_);
  auto init = [&] { return rng.uniform(-0.5, 0.5); };
  w1_.resize(h_ * nf_);
  b1_.assign(h_, 0.0);
  w2_.resize(h_);
  b2_ = 0.0;
  for (double& w : w1_) w = init();
  for (double& b : b1_) b = init();
  for (double& w : w2_) w = init();
  b2_ = init();

  std::vector<double> v1(w1_.size(), 0.0), vb1(h_, 0.0), v2(h_, 0.0);
  double vb2 = 0.0;

  std::vector<std::size_t> order(data.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> hid, xs(nf_);

  const double mean_weight =
      data.total_weight() / static_cast<double>(data.num_rows());
  HMD_REQUIRE(mean_weight > 0.0);

  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    // WEKA decays the learning rate over epochs.
    const double lr = learning_rate_ /
                      (1.0 + static_cast<double>(epoch) /
                                 static_cast<double>(epochs_));
    for (std::size_t idx : order) {
      const auto row = data.row(idx);
      for (std::size_t f = 0; f < nf_; ++f)
        xs[f] = (row[f] - mean_[f]) / stdev_[f];
      const double target = static_cast<double>(data.label(idx));
      const double sample_w = data.weight(idx) / mean_weight;

      const double out = forward(row, hid);
      const double delta_out = (out - target) * sample_w;

      // Output layer.
      for (std::size_t j = 0; j < h_; ++j) {
        const double g = delta_out * hid[j];
        v2[j] = momentum_ * v2[j] - lr * g;
      }
      vb2 = momentum_ * vb2 - lr * delta_out;

      // Hidden layer.
      for (std::size_t j = 0; j < h_; ++j) {
        const double delta_h =
            delta_out * w2_[j] * hid[j] * (1.0 - hid[j]);
        double* w = &w1_[j * nf_];
        double* v = &v1[j * nf_];
        for (std::size_t f = 0; f < nf_; ++f) {
          v[f] = momentum_ * v[f] - lr * delta_h * xs[f];
          w[f] += v[f];
        }
        vb1[j] = momentum_ * vb1[j] - lr * delta_h;
        b1_[j] += vb1[j];
      }
      for (std::size_t j = 0; j < h_; ++j) w2_[j] += v2[j];
      b2_ += vb2;
    }
  }
  trained_ = true;
}

double Mlp::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "Mlp::train() must be called first");
  HMD_REQUIRE(x.size() == nf_);
  std::vector<double> hid;
  return forward(x, hid);
}

ModelComplexity Mlp::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "mlp";
  mc.multipliers = h_ * nf_ + h_;
  mc.adders = h_ * nf_ + h_ + h_ + 1;
  mc.nonlinearities = h_ + 1;  // PWL sigmoid evaluators
  // Two dense layers, each an adder tree over its fan-in.
  auto tree_depth = [](std::size_t n) {
    std::size_t d = 0;
    while (n > 1) {
      n = (n + 1) / 2;
      ++d;
    }
    return d;
  };
  mc.depth = tree_depth(std::max<std::size_t>(nf_, 1)) +
             tree_depth(std::max<std::size_t>(h_, 1)) + 4;
  mc.inputs = nf_;
  return mc;
}

}  // namespace hmd::ml

// Bagging (Breiman, 1996) — bootstrap aggregation, the paper's second
// ensemble technique.
//
// Each of the `bags` members (WEKA default 10) trains on an independent
// bootstrap resample of the training data (100% bag size, drawn with
// replacement); prediction averages the members' class probabilities.
// Bagging suits the low-bias/high-variance base learners (trees, rules)
// the paper highlights.
#pragma once

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

class Bagging final : public Classifier {
 public:
  Bagging(std::unique_ptr<Classifier> prototype, std::size_t bags = 10,
          std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  /// Member agreement, not the averaged probability: |2·(hard malware
  /// votes / members) − 1|. An attacked sample that drags the *average*
  /// under 0.5 usually leaves the members split near 50/50, so this margin
  /// collapses even when |2p−1| of the averaged proba does not — exactly
  /// the signal the perturbation-aware vote defence gates on.
  double margin(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  std::string name() const override;
  ModelComplexity complexity() const override;

  std::size_t num_members() const { return members_.size(); }
  const Classifier& member(std::size_t i) const { return *members_[i]; }

 private:
  std::unique_ptr<Classifier> prototype_;
  std::size_t bags_;
  std::uint64_t seed_;

  std::vector<std::unique_ptr<Classifier>> members_;
  bool trained_ = false;
};

}  // namespace hmd::ml

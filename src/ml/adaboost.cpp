#include "ml/adaboost.h"

#include <cmath>

#include "support/check.h"

namespace hmd::ml {

AdaBoostM1::AdaBoostM1(std::unique_ptr<Classifier> prototype,
                       std::size_t iterations, std::uint64_t seed,
                       bool resample)
    : prototype_(std::move(prototype)),
      iterations_(iterations),
      seed_(seed),
      resample_(resample) {
  HMD_REQUIRE(prototype_ != nullptr);
  HMD_REQUIRE(iterations_ >= 1);
}

void AdaBoostM1::train(const Dataset& data) {
  HMD_REQUIRE(data.num_rows() > 0);
  members_.clear();
  alpha_.clear();

  Dataset working = data;
  working.normalize_weights();
  Rng rng(seed_ ^ 0xADAB005EULL);

  for (std::size_t round = 0; round < iterations_; ++round) {
    auto model = prototype_->clone_untrained();
    if (resample_) {
      Rng round_rng = rng.fork(round);
      model->train(working.weighted_bootstrap(round_rng));
    } else {
      model->train(working);
    }

    // Weighted training error of this member.
    double err = 0.0;
    double total = 0.0;
    std::vector<bool> correct(working.num_rows());
    for (std::size_t i = 0; i < working.num_rows(); ++i) {
      const int pred = model->predict(working.row(i));
      correct[i] = pred == working.label(i);
      if (!correct[i]) err += working.weight(i);
      total += working.weight(i);
    }
    err /= total;

    if (err >= 0.5) {
      // Worse than chance: discard and stop (keep at least one member).
      if (members_.empty()) {
        members_.push_back(std::move(model));
        alpha_.push_back(1.0);
      }
      break;
    }
    if (err <= 0.0) {
      // Perfect member dominates; WEKA stops boosting here.
      members_.push_back(std::move(model));
      alpha_.push_back(10.0);  // ln(1/beta) with beta floored
      break;
    }

    const double beta = err / (1.0 - err);
    members_.push_back(std::move(model));
    alpha_.push_back(std::log(1.0 / beta));

    // Reweight: correctly classified instances shrink by beta. The
    // renormalisation (total -> num_rows) is folded into the same pass
    // instead of a separate normalize_weights() walk; the accumulation
    // order and scale factor match the two-pass form bit for bit.
    std::vector<double> w(working.num_rows());
    double new_total = 0.0;
    for (std::size_t i = 0; i < working.num_rows(); ++i) {
      w[i] = working.weight(i) * (correct[i] ? beta : 1.0);
      new_total += w[i];
    }
    HMD_INVARIANT(new_total > 0.0);
    const double scale = static_cast<double>(working.num_rows()) / new_total;
    for (double& wi : w) wi *= scale;
    working.set_weights(std::move(w));
  }
  HMD_INVARIANT(!members_.empty());
  trained_ = true;
}

double AdaBoostM1::predict_proba(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "AdaBoostM1::train() must be called first");
  double vote_pos = 0.0, vote_all = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    vote_all += alpha_[i];
    if (members_[i]->predict(x) == 1) vote_pos += alpha_[i];
  }
  return vote_all > 0.0 ? vote_pos / vote_all : 0.5;
}

double AdaBoostM1::margin(std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "AdaBoostM1::train() must be called first");
  double vote_pos = 0.0, vote_all = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    vote_all += alpha_[i];
    if (members_[i]->predict(x) == 1) vote_pos += alpha_[i];
  }
  if (vote_all <= 0.0) return 0.0;
  return std::abs(2.0 * vote_pos - vote_all) / vote_all;
}

std::unique_ptr<Classifier> AdaBoostM1::clone_untrained() const {
  return std::make_unique<AdaBoostM1>(prototype_->clone_untrained(),
                                      iterations_, seed_, resample_);
}

std::string AdaBoostM1::name() const {
  return "AdaBoost(" + prototype_->name() + ")";
}

ModelComplexity AdaBoostM1::complexity() const {
  HMD_REQUIRE(trained_);
  ModelComplexity mc;
  mc.kind = "ensemble";
  for (const auto& m : members_) {
    mc.children.push_back(m->complexity());
    mc.inputs = std::max(mc.inputs, mc.children.back().inputs);
  }
  // The vote: one multiplier + adder per member, then a compare.
  mc.multipliers = members_.size();
  mc.adders = members_.size();
  mc.comparators = 1;
  std::size_t max_child_depth = 0;
  for (const auto& c : mc.children)
    max_child_depth = std::max(max_child_depth, c.depth);
  std::size_t d = 0, n = std::max<std::size_t>(members_.size(), 1);
  while (n > 1) {
    n = (n + 1) / 2;
    ++d;
  }
  mc.depth = max_child_depth + d + 1;
  return mc;
}

}  // namespace hmd::ml

// J48 — the WEKA re-implementation of Quinlan's C4.5 decision tree.
//
// Numeric attributes are split binarily at the boundary midpoint that
// maximises information gain; among attributes whose gain reaches the mean
// positive gain, the one with the best *gain ratio* wins (C4.5's two-stage
// criterion, including the log2(candidates)/N penalty for numeric splits).
// Pruning is C4.5's pessimistic subtree replacement with confidence factor
// 0.25 (WEKA default); subtree *raising* is not implemented (documented
// deviation — its effect on these datasets is marginal).
#pragma once

#include <vector>

#include "ml/classifier.h"
#include "ml/presort.h"

namespace hmd::ml {

class J48 final : public Classifier {
 public:
  /// `confidence` is the C4.5 pruning CF (default 0.25); `min_leaf_weight`
  /// the minimum instance weight per branch (WEKA -M 2); `prune` can be
  /// disabled to obtain the unpruned tree.
  explicit J48(double confidence = 0.25, double min_leaf_weight = 2.0,
               bool prune = true)
      : confidence_(confidence),
        min_leaf_weight_(min_leaf_weight),
        prune_(prune) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::unique_ptr<Classifier> clone_untrained() const override {
    return std::make_unique<J48>(confidence_, min_leaf_weight_, prune_);
  }
  std::string name() const override { return "J48"; }
  ModelComplexity complexity() const override;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const;
  std::size_t depth() const;
  bool trained() const { return trained_; }

  /// Flattened reachable tree (for hardware codegen): index 0 is the root.
  struct FlatNode {
    bool leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = 0;   ///< index of the <= branch
    std::size_t right = 0;  ///< index of the > branch
    double proba = 0.5;     ///< Laplace-smoothed P(malware) at leaves
  };
  std::vector<FlatNode> flatten() const;

 private:
  struct Node {
    bool leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int64_t left = -1;   ///< index of <= branch
    std::int64_t right = -1;  ///< index of  > branch
    double w_pos = 0.0;       ///< training weight of malware at this node
    double w_neg = 0.0;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& rows,
                    Presort& presort, Presort::Lists& lists);
  double prune_subtree(std::size_t node);  ///< returns estimated errors
  std::size_t depth_of(std::size_t node) const;
  std::size_t leaves_of(std::size_t node) const;

  double confidence_;
  double min_leaf_weight_;
  bool prune_;

  std::vector<Node> nodes_;  ///< node 0 is the root (after train())
  bool trained_ = false;
};

/// C4.5's pessimistic additional-error estimate ("addErrs"): given `n`
/// instances with `e` observed errors at a leaf, the upper confidence bound
/// (at confidence factor `cf`) on the error count. Exposed for testing.
double c45_added_errors(double n, double e, double cf);

/// Inverse standard-normal CDF (Acklam's rational approximation).
double normal_quantile(double p);

}  // namespace hmd::ml

#include "ml/infer.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/j48.h"
#include "ml/jrip.h"
#include "ml/oner.h"
#include "ml/random_forest.h"
#include "ml/reptree.h"
#include "support/check.h"

namespace hmd::ml {

namespace {

// -1 = unresolved (read HMD_INFER_BACKEND on first use), else the kind.
std::atomic<int> g_infer_backend{-1};

// ---------------------------------------------------------------------------
// Scalar reference backend (also the generic fallback behind kFlat).

class ScalarBackend final : public InferenceBackend {
 public:
  /// `label` is "scalar" or "generic" (both static strings).
  ScalarBackend(const Classifier& model, std::string_view label)
      : model_(model), label_(label) {}

  std::string_view name() const override { return label_; }

  void predict_proba_batch(std::span<const double> x,
                           std::size_t num_features,
                           std::span<double> out) const override {
    HMD_REQUIRE(x.size() == out.size() * num_features);
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = model_.predict_proba(x.subspan(i * num_features, num_features));
  }

 private:
  const Classifier& model_;
  std::string_view label_;
};

// ---------------------------------------------------------------------------
// Flat backend: the model lowered into contiguous struct-of-arrays blocks,
// scored with branch-free inner loops.

class FlatBackend final : public InferenceBackend {
 public:
  /// How member scores combine into the model score. The arithmetic and
  /// accumulation order replicate the scalar ensembles exactly: kAverage is
  /// Bagging/RandomForest's member-order sum then divide-by-count; kVote is
  /// AdaBoost's alpha-weighted hard vote normalised by the member-order
  /// alpha sum.
  enum class Combine { kSingle, kAverage, kVote };

  struct Member {
    enum class Unit : std::uint8_t { kTree, kBuckets };
    Unit unit = Unit::kTree;
    // kTree: the member's slice of the node block starts at `first_node`,
    // child indices inside it are LOCAL to that slice (so they fit u16),
    // evaluation enters at local index `entry`, and `depth` bounds the
    // walk (the member's longest entry-to-leaf path). JRip members are
    // kTree too — their decision list compiles into the shared node block
    // (see add_rules).
    std::uint32_t first_node = 0;
    std::uint16_t entry = 0;
    std::uint32_t depth = 0;
    // kBuckets: tested feature and the cut/probability slices.
    std::uint32_t feature = 0;
    std::uint32_t first_cut = 0;
    std::uint32_t num_cuts = 0;
    std::uint32_t first_bucket = 0;
    double alpha = 1.0;  ///< vote weight (kVote only)
  };

  std::string_view name() const override { return "flat"; }

  void predict_proba_batch(std::span<const double> x,
                           std::size_t num_features,
                           std::span<double> out) const override;

  // Node block (all trees of the model). One packed 16-byte record per
  // node — four nodes per cache line, where the scalar arena node (48+
  // bytes, leaf flag, int64 children) straddles two lines on its own; a
  // full-scale tree ensemble shrinks from several L1-sized blocks to one,
  // which is exactly what the walk's top levels need to stay resident.
  // Child indices are local to the member's slice (u16; lowering falls
  // back to the generic backend for the absurd case of a >65535-node
  // member) and sit in an indexable pair (child[0] = `<=` branch,
  // child[1] = `>` branch) so the per-visit select is an indexed load,
  // never a data-dependent branch. Leaves self-loop (child[0] ==
  // child[1] == self), so the walk needs no leaf test: a settled lane
  // just stops moving. Leaf probabilities live in the parallel
  // `leaf_proba_` array — they are read once per settled sample, not per
  // visit, so keeping them out of the node doubles walk cache density.
  struct FlatTreeNode {
    double threshold = 0.0;
    std::uint16_t feature = 0;
    std::uint16_t child[2] = {0, 0};
    std::uint16_t pad = 0;
  };
  static_assert(sizeof(FlatTreeNode) == 16);
  std::vector<FlatTreeNode> nodes_;
  std::vector<double> leaf_proba_;  ///< per node: leaf P(malware), else 0

  // Bucket block (OneR members).
  std::vector<double> cuts_;
  std::vector<double> bucket_proba_;

  std::vector<Member> members_;
  Combine combine_ = Combine::kSingle;
  double alpha_total_ = 0.0;     ///< member-order sum of vote alphas
  std::size_t min_features_ = 0; ///< 1 + max feature index consumed

 private:
  // The eval loops are generic over how a finished sample's probability
  // leaves the loop (`Emit`): stored for single models, accumulated for
  // kAverage, vote-masked for kVote. Fusing the combine into the member
  // walk this way means an ensemble member costs its walk and one add — no
  // per-member score buffer to store, reload and reduce.
  // Every eval walks the n contiguous rows at `x` in storage order and
  // emits row i's probability as emit(i, p). (A path-sorted schedule —
  // grouping rows by the leaf the first member settled them in, so later
  // lane groups share similar depths — was measured here and lost: the
  // collect/sort/permute overhead per tile exceeded the idle-lane visits
  // it removed at these ensemble depths, ~1.76x vs ~1.98x aggregate.)
  template <class Emit>
  void eval_member(const Member& m, const double* x, std::size_t nf,
                   std::size_t n, Emit emit) const;
  template <class Emit>
  void eval_tree(const Member& m, const double* x, std::size_t nf,
                 std::size_t n, Emit emit) const;
  template <class Emit>
  void eval_buckets(const Member& m, const double* x, std::size_t nf,
                    std::size_t n, Emit emit) const;
};

/// Emit policies: how one member's per-sample probability is committed.
struct EmitStore {
  double* out;
  void operator()(std::size_t i, double p) const { out[i] = p; }
};

struct EmitAdd {
  double* acc;
  void operator()(std::size_t i, double p) const { acc[i] += p; }
};

/// AdaBoost hard vote, branch-free: adds exactly `alpha` when the member
/// says malware and exactly +0.0 otherwise (the mask keeps the bits of
/// alpha or clears them — no rounding is involved, so the accumulated sum
/// is bit-identical to the scalar `if (vote) sum += alpha` chain).
struct EmitVote {
  double* acc;
  double alpha;
  void operator()(std::size_t i, double p) const {
    const std::uint64_t take =
        std::uint64_t{0} - static_cast<std::uint64_t>(p >= kDecisionThreshold);
    acc[i] +=
        std::bit_cast<double>(std::bit_cast<std::uint64_t>(alpha) & take);
  }
};

void FlatBackend::predict_proba_batch(std::span<const double> x,
                                      std::size_t num_features,
                                      std::span<double> out) const {
  HMD_REQUIRE(x.size() == out.size() * num_features);
  // The scalar walk re-validates feature bounds at every node
  // (HMD_INVARIANT(feature < x.size())); here the whole batch shares one
  // width, so the check hoists out of the hot loop entirely.
  HMD_REQUIRE(num_features >= min_features_);
  const std::size_t n = out.size();
  if (n == 0) return;
  const double* px = x.data();

  // 128 rows x 8 features x 8 bytes = 8 KiB of x per tile: small enough
  // that the tile AND the ensemble's hot top-of-tree node lines coexist
  // in L1 (a 512-row tile is 32 KiB — it owned the whole cache and
  // evicted the nodes between members).
  constexpr std::size_t kTile = 128;

  if (combine_ == Combine::kSingle) {
    const Member& m = members_.front();
    for (std::size_t t = 0; t < n; t += kTile) {
      const std::size_t tn = std::min(kTile, n - t);
      eval_member(m, px + t * num_features, num_features, tn,
                  EmitStore{out.data() + t});
    }
    return;
  }

  // Ensemble combine runs tiled: each member scores one kTile-row slice
  // before the next tile starts, so the slice of x (and the accumulator)
  // stays cache-resident across the whole member loop. Scoring the full
  // batch member by member instead would re-stream every byte of x from
  // outer cache levels once per member. acc[i] accumulates the same
  // member-order sequence of operands as the scalar model — kAverage as
  // Bagging/RandomForest's sum then divide-by-count, kVote as
  // AdaBoostM1's alpha-weighted hard vote over the member-order alpha
  // sum — so combining stays bit-identical.
  double acc[kTile];
  for (std::size_t t = 0; t < n; t += kTile) {
    const std::size_t tn = std::min(kTile, n - t);
    const double* tx = px + t * num_features;
    std::fill(acc, acc + tn, 0.0);
    if (combine_ == Combine::kAverage) {
      for (const Member& m : members_)
        eval_member(m, tx, num_features, tn, EmitAdd{acc});
      const double count = static_cast<double>(members_.size());
      for (std::size_t i = 0; i < tn; ++i) out[t + i] = acc[i] / count;
    } else {
      for (const Member& m : members_)
        eval_member(m, tx, num_features, tn, EmitVote{acc, m.alpha});
      for (std::size_t i = 0; i < tn; ++i)
        out[t + i] = alpha_total_ > 0.0 ? acc[i] / alpha_total_ : 0.5;
    }
  }
}

template <class Emit>
void FlatBackend::eval_member(const Member& m, const double* x,
                              std::size_t nf, std::size_t n,
                              Emit emit) const {
  switch (m.unit) {
    case Member::Unit::kTree: eval_tree(m, x, nf, n, emit); return;
    case Member::Unit::kBuckets:
      eval_buckets(m, x, nf, n, emit);
      return;
  }
  throw InvariantError("unknown flat member unit");
}

/// Interleaved group walk, kLanes samples at a time. The per-visit chain
/// (load node -> load feature value -> compare -> indexed child load) is
/// ~15 cycles of pure latency; one sample at a time that latency IS the
/// runtime, but the eight lanes here are fully independent, so the
/// out-of-order core overlaps them and the walk runs at load-port
/// throughput instead. All lane state lives in registers — the 8-entry
/// array scalarises after unrolling — so a visit costs exactly its three
/// loads: no probability tracking (leaves self-loop, so the walk's final
/// index IS the leaf and its probability is fetched once at the end), no
/// bookkeeping stores, no compaction shuffle.
///
/// Settled lanes re-walk their leaf's self-loop: an idempotent cached
/// reload instead of a per-lane exit branch. The `moved` reduction stops
/// the level loop once the whole group has settled, so a group pays its
/// own max leaf depth, not the tree's. (A per-lane early-exit-and-refill
/// schedule would pay each sample's exact path instead, but it was
/// measured strictly worse here at every depth: its leaf-exit branch is
/// taken once per sample at an unpredictable time, and that one
/// mispredict per sample-member costs more than the idle lane visits it
/// saves.) The per-sample select is an indexed load from child[2] — by
/// construction never a data-dependent branch, so random per-sample
/// paths cannot mispredict.
template <class Emit>
void FlatBackend::eval_tree(const Member& m, const double* x, std::size_t nf,
                            std::size_t n, Emit emit) const {
  const FlatTreeNode* __restrict nodes = nodes_.data() + m.first_node;
  const double* __restrict proba = leaf_proba_.data() + m.first_node;
  const double* __restrict px = x;
  if (m.depth == 0) {
    // Degenerate single-leaf tree: constant prediction, nothing to walk
    // (and nothing to read from x, which may legitimately be empty here).
    const double p = proba[m.entry];
    for (std::size_t i = 0; i < n; ++i) emit(i, p);
    return;
  }
  constexpr std::size_t kLanes = 8;
  std::size_t b = 0;
  for (; b + kLanes <= n; b += kLanes) {
    const double* __restrict base = px + b * nf;
    std::uint32_t idx[kLanes];
    for (std::size_t k = 0; k < kLanes; ++k) idx[k] = m.entry;
    for (std::uint32_t d = 0; d <= m.depth; ++d) {
      std::uint32_t moved = 0;
      for (std::size_t k = 0; k < kLanes; ++k) {
        const FlatTreeNode& nd = nodes[idx[k]];
        const std::size_t go_right = static_cast<std::size_t>(
            !(base[k * nf + nd.feature] <= nd.threshold));
        const std::uint32_t next = nd.child[go_right];
        moved |= next ^ idx[k];
        idx[k] = next;
      }
      if (moved == 0) break;
    }
    for (std::size_t k = 0; k < kLanes; ++k)
      emit(b + k, proba[idx[k]]);
  }
  for (; b < n; ++b) {
    const double* row = px + b * nf;
    std::uint32_t i = m.entry;
    for (std::uint32_t d = 0; d <= m.depth; ++d) {
      const FlatTreeNode& nd = nodes[i];
      const std::size_t go_right =
          static_cast<std::size_t>(!(row[nd.feature] <= nd.threshold));
      const std::uint32_t next = nd.child[go_right];
      if (next == i) break;
      i = next;
    }
    emit(b, proba[i]);
  }
}

template <class Emit>
void FlatBackend::eval_buckets(const Member& m, const double* x,
                               std::size_t nf, std::size_t n,
                               Emit emit) const {
  const double* cuts = cuts_.data() + m.first_cut;
  const double* proba = bucket_proba_.data() + m.first_bucket;
  // The bucket index is the number of cuts <= v, exactly what OneR's
  // upper_bound computes over the ascending cut array. Small arrays use a
  // counting scan (one predicated add per cut, no branches to predict);
  // past ~16 cuts the O(cuts) scan loses to a branchless binary search —
  // each step halves the candidate range with a conditional-move offset,
  // so the search is O(log cuts) with no data-dependent branches either.
  // Both forms compute the identical count for the finite feature values
  // this pipeline produces, so scores stay bit-identical to the scalar
  // model's upper_bound.
  constexpr std::uint32_t kScanMax = 16;
  if (m.num_cuts <= kScanMax) {
    for (std::size_t i = 0; i < n; ++i) {
      const double v = x[i * nf + m.feature];
      std::uint32_t bucket = 0;
      for (std::uint32_t k = 0; k < m.num_cuts; ++k)
        bucket += cuts[k] <= v ? 1u : 0u;
      emit(i, proba[bucket]);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i * nf + m.feature];
    // Invariant: the answer lies in [lo, lo + len]; cuts[lo - 1] <= v (or
    // lo == 0) and v < cuts[lo + len] (or lo + len == num_cuts). Probing
    // the midpoint keeps it, and len shrinks by half each step.
    std::uint32_t lo = 0;
    std::uint32_t len = m.num_cuts;
    while (len > 1) {
      const std::uint32_t half = len / 2;
      lo += cuts[lo + half - 1] <= v ? half : 0u;
      len -= half;
    }
    const std::uint32_t bucket = lo + (cuts[lo] <= v ? 1u : 0u);
    emit(i, proba[bucket]);
  }
}

// ---------------------------------------------------------------------------
// Lowering a trained model into a FlatBackend.

/// The node block's child indices are member-local u16s (half the node
/// size, twice the cache density); members past this size have no flat
/// form and fall back to the generic backend.
constexpr std::size_t kMaxMemberNodes = 65535;

/// Append one flattened tree (J48/RepTree/RandomTree FlatNode vectors all
/// share the same shape) to the node block; false if it cannot be encoded.
/// flatten() emits breadth-first with index 0 as the root, so children
/// always follow their parent and a single forward pass computes every
/// node's depth.
template <typename NodeT>
bool add_tree(FlatBackend& fb, const std::vector<NodeT>& nodes,
              double alpha) {
  HMD_INVARIANT(!nodes.empty());
  if (nodes.size() > kMaxMemberNodes) return false;
  const auto base = static_cast<std::uint32_t>(fb.nodes_.size());
  std::vector<std::uint32_t> depth(nodes.size(), 0);
  std::uint32_t max_depth = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeT& node = nodes[i];
    FlatBackend::FlatTreeNode flat;
    double proba = 0.0;
    if (node.leaf) {
      const auto self = static_cast<std::uint16_t>(i);
      flat.child[0] = self;
      flat.child[1] = self;
      proba = node.proba;
    } else {
      if (node.feature > kMaxMemberNodes) return false;  // u16 feature
      flat.feature = static_cast<std::uint16_t>(node.feature);
      flat.threshold = node.threshold;
      flat.child[0] = static_cast<std::uint16_t>(node.left);
      flat.child[1] = static_cast<std::uint16_t>(node.right);
      depth[node.left] = depth[i] + 1;
      depth[node.right] = depth[i] + 1;
      max_depth = std::max(max_depth, depth[i] + 1);
      fb.min_features_ = std::max(fb.min_features_, node.feature + 1);
    }
    fb.nodes_.push_back(flat);
    fb.leaf_proba_.push_back(proba);
  }
  FlatBackend::Member m;
  m.unit = FlatBackend::Member::Unit::kTree;
  m.first_node = base;
  m.entry = 0;          // flatten() places the root at local index 0
  m.depth = max_depth;  // a single-leaf root walks zero iterations
  m.alpha = alpha;
  fb.members_.push_back(m);
  return true;
}

/// Compile a JRip decision list into the shared flat node block. A
/// decision list IS a degenerate decision DAG: each condition becomes one
/// node whose pass edge continues the rule's conjunction (ending in the
/// rule's fire leaf) and whose fail edge jumps to the next rule's entry
/// (ultimately the default leaf). Fail edges of different conditions share
/// targets — the walk only follows child indices, so a DAG is as walkable
/// as a tree, and JRip members ride the same branch-free interleaved walk
/// as J48/RepTree instead of needing a rule interpreter of their own.
///
/// The walk's one comparison shape is `x <= threshold ? child[0] :
/// child[1]`. A `x[f] <= v` condition maps directly; a `x[f] >= v`
/// condition lowers exactly to `x[f] > nextafter(v, -inf)` — for the
/// finite doubles HPC features are drawn from, `x > prev(v)` and `x >= v`
/// select the same values — with the pass edge on child[1].
bool add_rules(FlatBackend& fb, const JRip& rip, double alpha) {
  const std::vector<JRip::Rule>& rules = rip.rules();
  const auto num_rules = static_cast<std::uint32_t>(rules.size());
  const auto base = static_cast<std::uint32_t>(fb.nodes_.size());

  // Layout (all indices member-local): all condition chains in rule
  // order, then one fire leaf per rule, then the shared default leaf.
  std::vector<std::uint16_t> chain_start(rules.size());
  std::uint32_t chain_total = 0;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    chain_start[r] = static_cast<std::uint16_t>(chain_total);
    chain_total += static_cast<std::uint32_t>(rules[r].conditions.size());
    if (chain_total + num_rules + 1 > kMaxMemberNodes) return false;
  }
  const auto first_fire = static_cast<std::uint16_t>(chain_total);
  const auto default_leaf = static_cast<std::uint16_t>(first_fire + num_rules);
  // Where evaluation of rule r begins: its first condition, or straight to
  // its fire leaf for an unconditional rule; past the last rule, the
  // default leaf.
  const auto entry = [&](std::size_t r) {
    if (r >= rules.size()) return default_leaf;
    if (rules[r].conditions.empty())
      return static_cast<std::uint16_t>(first_fire + r);
    return chain_start[r];
  };

  for (std::size_t r = 0; r < rules.size(); ++r) {
    const std::vector<JRip::Condition>& conds = rules[r].conditions;
    for (std::size_t j = 0; j < conds.size(); ++j) {
      const JRip::Condition& c = conds[j];
      const std::uint16_t pass =
          j + 1 < conds.size()
              ? static_cast<std::uint16_t>(chain_start[r] + j + 1)
              : static_cast<std::uint16_t>(first_fire + r);
      const std::uint16_t fail = entry(r + 1);
      if (c.feature > kMaxMemberNodes) return false;  // u16 feature
      FlatBackend::FlatTreeNode node;
      node.feature = static_cast<std::uint16_t>(c.feature);
      if (c.leq) {
        node.threshold = c.value;
        node.child[0] = pass;
        node.child[1] = fail;
      } else {
        node.threshold = std::nextafter(
            c.value, -std::numeric_limits<double>::infinity());
        node.child[0] = fail;
        node.child[1] = pass;
      }
      fb.min_features_ = std::max(fb.min_features_, c.feature + 1);
      fb.nodes_.push_back(node);
      fb.leaf_proba_.push_back(0.0);
    }
  }
  for (std::size_t r = 0; r < rules.size(); ++r) {
    FlatBackend::FlatTreeNode leaf;
    const auto self = static_cast<std::uint16_t>(first_fire + r);
    leaf.child[0] = self;
    leaf.child[1] = self;
    fb.nodes_.push_back(leaf);
    // The value the scalar decision list returns when this rule fires
    // first, resolved at lowering time instead of per prediction.
    fb.leaf_proba_.push_back(rip.target_class() == 1
                                 ? rules[r].precision
                                 : 1.0 - rules[r].precision);
  }
  FlatBackend::FlatTreeNode fallback;
  fallback.child[0] = default_leaf;
  fallback.child[1] = default_leaf;
  fb.nodes_.push_back(fallback);
  fb.leaf_proba_.push_back(rip.default_proba());

  FlatBackend::Member m;
  m.unit = FlatBackend::Member::Unit::kTree;
  m.first_node = base;
  m.entry = entry(0);
  // Longest possible path visits every condition once (fail through the
  // whole list) plus the final leaf.
  m.depth = rules.empty() ? 0 : chain_total + 1;
  m.alpha = alpha;
  fb.members_.push_back(m);
  return true;
}

void add_buckets(FlatBackend& fb, const OneR& oner, double alpha) {
  FlatBackend::Member m;
  m.unit = FlatBackend::Member::Unit::kBuckets;
  m.feature = static_cast<std::uint32_t>(oner.chosen_feature());
  m.first_cut = static_cast<std::uint32_t>(fb.cuts_.size());
  m.num_cuts = static_cast<std::uint32_t>(oner.bucket_cuts().size());
  m.first_bucket = static_cast<std::uint32_t>(fb.bucket_proba_.size());
  m.alpha = alpha;
  fb.cuts_.insert(fb.cuts_.end(), oner.bucket_cuts().begin(),
                  oner.bucket_cuts().end());
  fb.bucket_proba_.insert(fb.bucket_proba_.end(), oner.bucket_proba().begin(),
                          oner.bucket_proba().end());
  fb.min_features_ = std::max(fb.min_features_, oner.chosen_feature() + 1);
  fb.members_.push_back(m);
}

/// Lower one base (non-ensemble) model; false if it has no flat form.
/// Untrained models also return false: they fall back to the generic
/// backend so the scalar "train() must be called first" error surfaces at
/// predict time exactly as before.
bool add_base(FlatBackend& fb, const Classifier& model, double alpha) {
  if (const auto* j48 = dynamic_cast<const J48*>(&model)) {
    return j48->trained() && add_tree(fb, j48->flatten(), alpha);
  }
  if (const auto* rep = dynamic_cast<const RepTree*>(&model)) {
    return rep->trained() && add_tree(fb, rep->flatten(), alpha);
  }
  if (const auto* rnd = dynamic_cast<const RandomTree*>(&model)) {
    return rnd->trained() && add_tree(fb, rnd->flatten(), alpha);
  }
  if (const auto* rip = dynamic_cast<const JRip*>(&model)) {
    return rip->trained() && add_rules(fb, *rip, alpha);
  }
  if (const auto* oner = dynamic_cast<const OneR*>(&model)) {
    if (!oner->trained()) return false;
    add_buckets(fb, *oner, alpha);
    return true;
  }
  return false;
}

std::unique_ptr<FlatBackend> try_build_flat(const Classifier& model) {
  auto fb = std::make_unique<FlatBackend>();
  if (const auto* boost = dynamic_cast<const AdaBoostM1*>(&model)) {
    if (boost->num_members() == 0) return nullptr;  // untrained: fall back
    fb->combine_ = FlatBackend::Combine::kVote;
    for (std::size_t m = 0; m < boost->num_members(); ++m) {
      if (!add_base(*fb, boost->member(m), boost->member_alpha(m)))
        return nullptr;
      fb->alpha_total_ += boost->member_alpha(m);
    }
    return fb;
  }
  if (const auto* bag = dynamic_cast<const Bagging*>(&model)) {
    if (bag->num_members() == 0) return nullptr;
    fb->combine_ = FlatBackend::Combine::kAverage;
    for (std::size_t m = 0; m < bag->num_members(); ++m)
      if (!add_base(*fb, bag->member(m), 1.0)) return nullptr;
    return fb;
  }
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    if (forest->num_trees() == 0) return nullptr;
    fb->combine_ = FlatBackend::Combine::kAverage;
    for (std::size_t m = 0; m < forest->num_trees(); ++m)
      if (!add_base(*fb, forest->member(m), 1.0)) return nullptr;
    return fb;
  }
  fb->combine_ = FlatBackend::Combine::kSingle;
  if (!add_base(*fb, model, 1.0)) return nullptr;
  return fb;
}

bool base_flattenable(const Classifier& model) {
  if (const auto* j48 = dynamic_cast<const J48*>(&model))
    return j48->trained();
  if (const auto* rep = dynamic_cast<const RepTree*>(&model))
    return rep->trained();
  if (const auto* rnd = dynamic_cast<const RandomTree*>(&model))
    return rnd->trained();
  if (const auto* rip = dynamic_cast<const JRip*>(&model))
    return rip->trained();
  if (const auto* oner = dynamic_cast<const OneR*>(&model))
    return oner->trained();
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.

InferBackendKind infer_backend_kind() {
  int kind = g_infer_backend.load(std::memory_order_relaxed);
  if (kind < 0) {
    const char* env = std::getenv("HMD_INFER_BACKEND");
    const auto parsed = env != nullptr
                            ? backend_kind_from_name(env)
                            : std::optional<InferBackendKind>{};
    kind = static_cast<int>(parsed.value_or(InferBackendKind::kFlat));
    g_infer_backend.store(kind, std::memory_order_relaxed);
  }
  return static_cast<InferBackendKind>(kind);
}

void set_infer_backend_kind(InferBackendKind kind) {
  g_infer_backend.store(static_cast<int>(kind), std::memory_order_relaxed);
}

std::optional<InferBackendKind> backend_kind_from_name(
    std::string_view name) {
  if (name == "scalar") return InferBackendKind::kScalar;
  if (name == "flat") return InferBackendKind::kFlat;
  return std::nullopt;
}

std::string_view backend_kind_name(InferBackendKind kind) {
  switch (kind) {
    case InferBackendKind::kScalar: return "scalar";
    case InferBackendKind::kFlat: return "flat";
  }
  throw PreconditionError("unknown inference backend kind");
}

void InferenceBackend::predict_proba_batch(const Dataset& data,
                                           std::span<double> out) const {
  HMD_REQUIRE(out.size() == data.num_rows());
  const std::size_t nf = data.num_features();
  if (data.num_rows() == 0) return;
  if (data.is_identity_view()) {
    // Identity views read the storage's row-major mirror directly — the
    // whole test split is one contiguous block, no gather.
    predict_proba_batch(
        std::span<const double>(data.row(0).data(), data.num_rows() * nf),
        nf, out);
    return;
  }
  std::vector<double> gathered(data.num_rows() * nf);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.row(i);
    std::copy(row.begin(), row.end(),
              gathered.begin() + static_cast<std::ptrdiff_t>(i * nf));
  }
  predict_proba_batch(gathered, nf, out);
}

std::vector<double> InferenceBackend::predict_proba_batch(
    const Dataset& data) const {
  std::vector<double> out(data.num_rows());
  predict_proba_batch(data, out);
  return out;
}

double InferenceBackend::predict_proba(std::span<const double> x) const {
  double out = 0.0;
  predict_proba_batch(x, x.size(), std::span<double>(&out, 1));
  return out;
}

bool flat_supported(const Classifier& model) {
  if (const auto* boost = dynamic_cast<const AdaBoostM1*>(&model)) {
    if (boost->num_members() == 0) return false;
    for (std::size_t m = 0; m < boost->num_members(); ++m)
      if (!base_flattenable(boost->member(m))) return false;
    return true;
  }
  if (const auto* bag = dynamic_cast<const Bagging*>(&model)) {
    if (bag->num_members() == 0) return false;
    for (std::size_t m = 0; m < bag->num_members(); ++m)
      if (!base_flattenable(bag->member(m))) return false;
    return true;
  }
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    return forest->num_trees() > 0;  // members are always RandomTrees
  }
  return base_flattenable(model);
}

std::unique_ptr<InferenceBackend> make_backend(const Classifier& model,
                                               InferBackendKind kind) {
  if (kind == InferBackendKind::kFlat) {
    if (auto flat = try_build_flat(model)) return flat;
    return std::make_unique<ScalarBackend>(model, "generic");
  }
  return std::make_unique<ScalarBackend>(model, "scalar");
}

std::unique_ptr<InferenceBackend> make_active_backend(
    const Classifier& model) {
  return make_backend(model, infer_backend_kind());
}

}  // namespace hmd::ml

#include "ml/discretize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.h"

namespace hmd::ml {
namespace {

constexpr double kLog2 = 0.6931471805599453;  // ln(2)

double log2_safe(double v) { return v <= 0.0 ? 0.0 : std::log(v) / kLog2; }

struct SortedSample {
  double value;
  int label;
  double weight;
};

std::vector<SortedSample> sorted_samples(std::span<const double> values,
                                         std::span<const int> labels,
                                         std::span<const double> weights) {
  HMD_REQUIRE(values.size() == labels.size());
  HMD_REQUIRE(weights.empty() || weights.size() == values.size());
  std::vector<SortedSample> out;
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out.push_back({values[i], labels[i], weights.empty() ? 1.0 : weights[i]});
  std::sort(out.begin(), out.end(),
            [](const SortedSample& a, const SortedSample& b) {
              return a.value < b.value;
            });
  return out;
}

struct Counts {
  double pos = 0.0;
  double neg = 0.0;
  double total() const { return pos + neg; }
  double entropy() const { return binary_entropy(pos, neg); }
  int classes() const {
    return (pos > 0.0 ? 1 : 0) + (neg > 0.0 ? 1 : 0);
  }
};

/// Recursive MDL splitting of samples[lo, hi).
void mdl_split(const std::vector<SortedSample>& s, std::size_t lo,
               std::size_t hi, std::vector<double>& cuts) {
  if (hi - lo < 4) return;  // too few samples to justify a split

  Counts all;
  for (std::size_t i = lo; i < hi; ++i)
    (s[i].label == 1 ? all.pos : all.neg) += s[i].weight;
  if (all.classes() < 2) return;

  // Scan boundary candidates (value changes) for the entropy-minimising cut.
  double best_entropy = 1e300;
  std::size_t best_index = 0;  // split between best_index-1 and best_index
  Counts left_best, right_best;

  Counts left;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    (s[i - 1].label == 1 ? left.pos : left.neg) += s[i - 1].weight;
    if (s[i].value == s[i - 1].value) continue;  // not a boundary
    Counts right{all.pos - left.pos, all.neg - left.neg};
    const double wl = left.total() / all.total();
    const double wr = right.total() / all.total();
    const double e = wl * left.entropy() + wr * right.entropy();
    if (e < best_entropy) {
      best_entropy = e;
      best_index = i;
      left_best = left;
      right_best = right;
    }
  }
  if (best_index == 0) return;  // attribute constant on this range

  // Fayyad–Irani MDL acceptance criterion.
  const double n = all.total();
  const double ent_all = all.entropy();
  const double gain = ent_all - best_entropy;
  const double k = all.classes();
  const double k1 = left_best.classes();
  const double k2 = right_best.classes();
  const double delta = log2_safe(std::pow(3.0, k) - 2.0) -
                       (k * ent_all - k1 * left_best.entropy() -
                        k2 * right_best.entropy());
  const double threshold = (log2_safe(n - 1.0) + delta) / n;
  if (gain <= threshold) return;

  const double cut = (s[best_index - 1].value + s[best_index].value) / 2.0;
  mdl_split(s, lo, best_index, cuts);
  cuts.push_back(cut);
  mdl_split(s, best_index, hi, cuts);
}

}  // namespace

Discretizer::Discretizer(std::vector<double> cuts) : cuts_(std::move(cuts)) {
  HMD_REQUIRE(std::is_sorted(cuts_.begin(), cuts_.end()));
}

std::size_t Discretizer::bin(double v) const {
  // First cut strictly greater than v == count of cuts <= v.
  return static_cast<std::size_t>(
      std::upper_bound(cuts_.begin(), cuts_.end(), v) - cuts_.begin());
}

double binary_entropy(double w_pos, double w_neg) {
  // Tolerate tiny negative residues from cumulative-subtraction callers.
  HMD_REQUIRE(w_pos >= -1e-6 && w_neg >= -1e-6);
  w_pos = std::max(w_pos, 0.0);
  w_neg = std::max(w_neg, 0.0);
  const double total = w_pos + w_neg;
  if (total <= 0.0 || w_pos <= 0.0 || w_neg <= 0.0) return 0.0;
  const double p = w_pos / total;
  return -(p * log2_safe(p) + (1.0 - p) * log2_safe(1.0 - p));
}

Discretizer mdl_discretize(std::span<const double> values,
                           std::span<const int> labels,
                           std::span<const double> weights) {
  const auto s = sorted_samples(values, labels, weights);
  std::vector<double> cuts;
  if (!s.empty()) mdl_split(s, 0, s.size(), cuts);
  std::sort(cuts.begin(), cuts.end());
  return Discretizer(std::move(cuts));
}

Discretizer equal_frequency_discretize(std::span<const double> values,
                                       std::size_t bins) {
  HMD_REQUIRE(bins >= 1);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;
  if (sorted.empty() || bins == 1) return Discretizer{};
  for (std::size_t b = 1; b < bins; ++b) {
    const std::size_t idx = b * sorted.size() / bins;
    if (idx == 0 || idx >= sorted.size()) continue;
    // A cut between equal values would create an unreachable bin.
    if (sorted[idx] <= sorted[idx - 1]) continue;
    const double cut = (sorted[idx - 1] + sorted[idx]) / 2.0;
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  return Discretizer(std::move(cuts));
}

double information_gain(const Discretizer& disc,
                        std::span<const double> values,
                        std::span<const int> labels,
                        std::span<const double> weights) {
  HMD_REQUIRE(values.size() == labels.size());
  HMD_REQUIRE(weights.empty() || weights.size() == values.size());
  const std::size_t bins = disc.num_bins();
  std::vector<double> pos(bins, 0.0), neg(bins, 0.0);
  double all_pos = 0.0, all_neg = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    const std::size_t b = disc.bin(values[i]);
    if (labels[i] == 1) {
      pos[b] += w;
      all_pos += w;
    } else {
      neg[b] += w;
      all_neg += w;
    }
  }
  const double total = all_pos + all_neg;
  if (total <= 0.0) return 0.0;
  double cond = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double wb = pos[b] + neg[b];
    if (wb <= 0.0) continue;
    cond += wb / total * binary_entropy(pos[b], neg[b]);
  }
  return binary_entropy(all_pos, all_neg) - cond;
}

}  // namespace hmd::ml

#include "analysis/model_ir.h"

#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/bayesnet.h"
#include "ml/j48.h"
#include "ml/jrip.h"
#include "ml/mlp.h"
#include "ml/oner.h"
#include "ml/reptree.h"
#include "ml/sgd.h"
#include "ml/smo.h"
#include "support/check.h"

namespace hmd::analysis {
namespace {

template <typename Tree>
TreeIr lower_tree(const Tree& tree) {
  TreeIr ir;
  for (const auto& node : tree.flatten()) {
    TreeNodeIr out;
    out.leaf = node.leaf;
    out.feature = node.feature;
    out.threshold = node.threshold;
    out.left = node.left;
    out.right = node.right;
    out.proba = node.proba;
    ir.nodes.push_back(out);
  }
  return ir;
}

RuleListIr lower_jrip(const ml::JRip& jrip) {
  RuleListIr ir;
  ir.target_class = jrip.target_class();
  ir.default_proba = jrip.default_proba();
  for (const auto& rule : jrip.rules()) {
    RuleIr out;
    out.precision = rule.precision;
    for (const auto& cond : rule.conditions)
      out.conditions.push_back({cond.feature, cond.leq, cond.value});
    ir.rules.push_back(std::move(out));
  }
  return ir;
}

BucketRuleIr lower_oner(const ml::OneR& oner) {
  BucketRuleIr ir;
  ir.feature = oner.chosen_feature();
  ir.cuts = oner.bucket_cuts();
  ir.proba = oner.bucket_proba();
  return ir;
}

template <typename Linear>
LinearIr lower_linear(const Linear& linear) {
  LinearIr ir;
  ir.weights = linear.weights();
  ir.bias = linear.bias();
  ir.mean = linear.input_mean();
  ir.stdev = linear.input_stdev();
  ir.hard_output = true;
  return ir;
}

MlpIr lower_mlp(const ml::Mlp& mlp) {
  MlpIr ir;
  ir.inputs = mlp.num_inputs();
  ir.hidden = mlp.hidden_units();
  ir.w1 = mlp.hidden_weights();
  ir.b1 = mlp.hidden_bias();
  ir.w2 = mlp.output_weights();
  ir.b2 = mlp.output_bias();
  ir.mean = mlp.input_mean();
  ir.stdev = mlp.input_stdev();
  return ir;
}

BayesNetIr lower_bayesnet(const ml::BayesNet& bn) {
  BayesNetIr ir;
  ir.log_prior[0] = bn.log_prior(0);
  ir.log_prior[1] = bn.log_prior(1);
  for (std::size_t f = 0; f < bn.num_attributes(); ++f) {
    CptIr cpt;
    cpt.cuts = bn.cpt_cuts(f);
    cpt.parent = bn.cpt_parent(f) == ml::BayesNet::kNoParent
                     ? CptIr::kNoParent
                     : bn.cpt_parent(f);
    cpt.log_prob = bn.cpt_log_prob(f);
    ir.cpts.push_back(std::move(cpt));
  }
  return ir;
}

EnsembleIr lower_adaboost(const ml::AdaBoostM1& boost) {
  EnsembleIr ir;
  ir.kind = EnsembleIr::Kind::kAdaBoost;
  double total = 0.0;
  for (std::size_t m = 0; m < boost.num_members(); ++m)
    total += boost.member_alpha(m);
  for (std::size_t m = 0; m < boost.num_members(); ++m) {
    ir.member_weights.push_back(
        total > 0.0 ? boost.member_alpha(m) / total : 0.0);
    ir.member_raw_weights.push_back(boost.member_alpha(m));
    ir.members.push_back(extract_ir(boost.member(m)));
  }
  return ir;
}

EnsembleIr lower_bagging(const ml::Bagging& bag) {
  EnsembleIr ir;
  ir.kind = EnsembleIr::Kind::kBagging;
  const double uniform =
      bag.num_members() > 0
          ? 1.0 / static_cast<double>(bag.num_members())
          : 0.0;
  for (std::size_t m = 0; m < bag.num_members(); ++m) {
    ir.member_weights.push_back(uniform);
    ir.member_raw_weights.push_back(1.0);
    ir.members.push_back(extract_ir(bag.member(m)));
  }
  return ir;
}

}  // namespace

bool ir_supported(const ml::Classifier& model) {
  if (dynamic_cast<const ml::OneR*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::J48*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::RepTree*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::JRip*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::Sgd*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::Smo*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::Mlp*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::BayesNet*>(&model) != nullptr) return true;
  if (const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(&model))
    return boost->num_members() == 0 || ir_supported(boost->member(0));
  if (const auto* bag = dynamic_cast<const ml::Bagging*>(&model))
    return bag->num_members() == 0 || ir_supported(bag->member(0));
  return false;
}

ModelIr extract_ir(const ml::Classifier& model) {
  ModelIr ir;
  ir.name = model.name();
  // complexity() doubles as the trained-model gate: every classifier
  // HMD_REQUIREs trained_ there, so untrained models throw before any
  // structural accessor is touched.
  ir.reported = model.complexity();

  if (const auto* oner = dynamic_cast<const ml::OneR*>(&model))
    ir.structure = lower_oner(*oner);
  else if (const auto* j48 = dynamic_cast<const ml::J48*>(&model))
    ir.structure = lower_tree(*j48);
  else if (const auto* rep = dynamic_cast<const ml::RepTree*>(&model))
    ir.structure = lower_tree(*rep);
  else if (const auto* jrip = dynamic_cast<const ml::JRip*>(&model))
    ir.structure = lower_jrip(*jrip);
  else if (const auto* sgd = dynamic_cast<const ml::Sgd*>(&model))
    ir.structure = lower_linear(*sgd);
  else if (const auto* smo = dynamic_cast<const ml::Smo*>(&model))
    ir.structure = lower_linear(*smo);
  else if (const auto* mlp = dynamic_cast<const ml::Mlp*>(&model))
    ir.structure = lower_mlp(*mlp);
  else if (const auto* bn = dynamic_cast<const ml::BayesNet*>(&model))
    ir.structure = lower_bayesnet(*bn);
  else if (const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(&model))
    ir.structure = lower_adaboost(*boost);
  else if (const auto* bag = dynamic_cast<const ml::Bagging*>(&model))
    ir.structure = lower_bagging(*bag);
  else
    throw PreconditionError("model IR extraction does not support model: " +
                            model.name());
  return ir;
}

}  // namespace hmd::analysis

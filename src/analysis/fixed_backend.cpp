#include "analysis/fixed_backend.h"

#include <cstdint>
#include <vector>

#include "analysis/hls_checker.h"
#include "support/check.h"

namespace hmd::analysis {

FixedPointBackend::FixedPointBackend(const ml::Classifier& model,
                                     int fraction_bits)
    : FixedPointBackend(extract_ir(model), fraction_bits) {}

FixedPointBackend::FixedPointBackend(ModelIr ir, int fraction_bits)
    : ir_(std::move(ir)), bits_(fraction_bits) {
  HMD_REQUIRE(fraction_bits >= 0 && fraction_bits < 31);
}

void FixedPointBackend::predict_proba_batch(std::span<const double> x,
                                            std::size_t num_features,
                                            std::span<double> out) const {
  HMD_REQUIRE(x.size() == out.size() * num_features);
  std::vector<std::int32_t> xf(num_features);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto row = x.subspan(i * num_features, num_features);
    for (std::size_t f = 0; f < num_features; ++f)
      xf[f] = fixed_point_encode(row[f], bits_);
    out[i] = fixed_point_decide(ir_, xf, bits_) == 1 ? 1.0 : 0.0;
  }
}

}  // namespace hmd::analysis

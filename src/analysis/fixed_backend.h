// The "fixed" inference backend: a software bit-simulation of the HLS
// Q-format decision function behind the ml::InferenceBackend interface.
//
// Unlike the scalar/flat backends, this one is intentionally NOT
// bit-identical to Classifier::predict_proba — it replays the quantized
// int32/int64 arithmetic the generated C would execute (same llround
// encoding, same comparison directions, same vote arithmetic as
// fixed_point_decide), so its outputs are the hard fixed-point decisions
// mapped to probabilities 0.0 / 1.0. That makes it the fast software
// oracle for the HLS differential lint: differential_check batches this
// backend against the flat backend instead of walking both models row by
// pointer-chasing row.
//
// It lives in src/analysis (not src/ml) because it is built from the
// extracted ModelIr and the hls_checker arithmetic — the dependency points
// analysis -> ml, never the reverse.
#pragma once

#include <string_view>

#include "analysis/model_ir.h"
#include "ml/infer.h"

namespace hmd::analysis {

class FixedPointBackend final : public ml::InferenceBackend {
 public:
  /// Extracts the model IR and simulates it at `fraction_bits` (the
  /// HlsOptions Q format). Throws PreconditionError for models the HLS
  /// generator cannot emit (MLP, BayesNet) — at predict time, matching
  /// fixed_point_decide.
  FixedPointBackend(const ml::Classifier& model, int fraction_bits);
  FixedPointBackend(ModelIr ir, int fraction_bits);

  std::string_view name() const override { return "fixed"; }

  /// out[i] is the Q-format hard decision for row i: 1.0 (malware) or
  /// 0.0 (benign). Inputs are doubles; each value is fixed-point encoded
  /// exactly as the generated C harness encodes its int32 inputs.
  void predict_proba_batch(std::span<const double> x,
                           std::size_t num_features,
                           std::span<double> out) const override;
  using ml::InferenceBackend::predict_proba_batch;  // Dataset overloads

 private:
  ModelIr ir_;
  int bits_;
};

}  // namespace hmd::analysis

#include "analysis/hls_checker.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <regex>
#include <set>
#include <vector>

#include "analysis/fixed_backend.h"
#include "hw/hls_codegen.h"
#include "ml/infer.h"
#include "support/check.h"

namespace hmd::analysis {
namespace {

constexpr double kInt32Max = 2147483647.0;
constexpr double kInt64Max = 9223372036854775807.0;

/// Fixed-point conversion mirroring hw/hls_codegen's fx() exactly.
long long fx(double v, int fraction_bits) {
  return std::llround(v * static_cast<double>(1LL << fraction_bits));
}

/// The scaled value before rounding, for range checks that must not
/// invoke llround on values outside the long long range (UB).
double fx_scaled(double v, int fraction_bits) {
  return v * std::ldexp(1.0, fraction_bits);
}

void add(VerifyReport& report, Severity severity, std::string code,
         std::string message) {
  report.findings.push_back(
      {severity, std::move(code), std::move(message)});
}

// ---- textual lint -----------------------------------------------------

/// Replace /* ... */ comments with spaces; flags unterminated comments.
std::string strip_comments(const std::string& src, VerifyReport& report) {
  std::string out;
  out.reserve(src.size());
  std::size_t i = 0;
  while (i < src.size()) {
    if (src[i] == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) {
        add(report, Severity::kError, "hls-comment",
            "unterminated block comment");
        return out;
      }
      out.push_back(' ');
      i = end + 2;
      continue;
    }
    out.push_back(src[i++]);
  }
  return out;
}

void check_delimiters(const std::string& code, VerifyReport& report) {
  std::vector<char> stack;
  for (char c : code) {
    if (c == '(' || c == '{' || c == '[') {
      stack.push_back(c);
      continue;
    }
    const char open = c == ')' ? '(' : c == '}' ? '{' : c == ']' ? '[' : 0;
    if (open == 0) continue;
    if (stack.empty() || stack.back() != open) {
      add(report, Severity::kError, "hls-unbalanced",
          std::string("unbalanced '") + c + "'");
      return;
    }
    stack.pop_back();
  }
  if (!stack.empty())
    add(report, Severity::kError, "hls-unbalanced",
        std::string("unclosed '") + stack.back() + "'");
}

void check_preprocessor(const std::string& code, VerifyReport& report) {
  std::size_t pos = 0;
  while (pos < code.size()) {
    std::size_t eol = code.find('\n', pos);
    if (eol == std::string::npos) eol = code.size();
    std::size_t start = pos;
    while (start < eol && std::isspace(static_cast<unsigned char>(
                              code[start])) != 0)
      ++start;
    if (start < eol && code[start] == '#') {
      const std::string line = code.substr(start, eol - start);
      if (line != "#include <stdint.h>")
        add(report, Severity::kError, "hls-preprocessor",
            "directive outside the contract: " + line);
    }
    pos = eol + 1;
  }
}

bool parse_ll(const std::string& text, long long& value) {
  errno = 0;
  char* end = nullptr;
  value = std::strtoll(text.c_str(), &end, 10);
  return errno != ERANGE && end != text.c_str();
}

/// Calls, definitions, keywords, loop shapes: one pass over identifiers.
void check_calls_and_loops(const std::string& code, VerifyReport& report) {
  static const std::set<std::string> kKeywords = {
      "if", "return", "sizeof", "switch", "case", "else"};
  static const std::regex kCountedFor(
      R"(^\(\s*int\s+(\w+)\s*=\s*0\s*;\s*\1\s*<\s*\d+\s*;\s*\+\+\1\s*\))");

  std::set<std::string> defined;
  std::string current_function;
  std::string prev_token;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isalpha(static_cast<unsigned char>(c)) == 0 && c != '_') {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < code.size() &&
           (std::isalnum(static_cast<unsigned char>(code[i])) != 0 ||
            code[i] == '_'))
      ++i;
    const std::string token = code.substr(start, i - start);

    if (token == "while" || token == "do") {
      add(report, Severity::kError, "hls-unbounded-loop",
          "'" + token + "' loop violates the bounded-loop contract");
      prev_token = token;
      continue;
    }
    if (token == "goto") {
      add(report, Severity::kError, "hls-goto",
          "'goto' violates the structured-control contract");
      prev_token = token;
      continue;
    }

    std::size_t next = i;
    while (next < code.size() &&
           std::isspace(static_cast<unsigned char>(code[next])) != 0)
      ++next;
    const bool called = next < code.size() && code[next] == '(';

    if (token == "for") {
      if (called) {
        std::smatch m;
        const std::string rest = code.substr(next);
        if (!std::regex_search(rest, m, kCountedFor))
          add(report, Severity::kError, "hls-unbounded-loop",
              "'for' loop is not the counted 0..N form the contract "
              "requires");
      }
    } else if (called && !kKeywords.contains(token)) {
      if (prev_token == "int") {
        defined.insert(token);
        current_function = token;
      } else if (token == current_function) {
        add(report, Severity::kError, "hls-recursion",
            "function '" + token + "' calls itself");
      } else if (!defined.contains(token)) {
        add(report, Severity::kError, "hls-unknown-call",
            "call to '" + token +
                "' which is not a previously defined local helper "
                "(libc call, forward reference, or mutual recursion)");
      }
    }
    prev_token = token;
  }
}

/// Constants compared against the int32 input vector, and int32 array
/// initializers, must be representable in int32.
void check_constant_ranges(const std::string& code, VerifyReport& report) {
  // Only comparisons against the int32 input vector (x[f], or the local
  // copy `v` the OneR emitter uses); int64 accumulator comparisons
  // (ensemble vote totals) may legitimately exceed int32.
  static const std::regex kCompare(
      R"((?:x\[\d+\]|\bv\b)\s*(?:<=|>=|<|>)\s*(-?\d+)LL)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kCompare);
       it != std::sregex_iterator(); ++it) {
    long long v = 0;
    if (!parse_ll((*it)[1].str(), v) || v > 2147483647LL ||
        v < -2147483648LL)
      add(report, Severity::kError, "hls-const-range",
          "comparison constant " + (*it)[1].str() +
              "LL is not representable in int32");
  }
  static const std::regex kI32Array(
      R"(int32_t\s+\w+\[[^\]]*\]\s*=\s*\{([^}]*)\})");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kI32Array);
       it != std::sregex_iterator(); ++it) {
    const std::string list = (*it)[1].str();
    static const std::regex kLiteral(R"((-?\d+)LL)");
    for (auto lit = std::sregex_iterator(list.begin(), list.end(), kLiteral);
         lit != std::sregex_iterator(); ++lit) {
      long long v = 0;
      if (!parse_ll((*lit)[1].str(), v) || v > 2147483647LL ||
          v < -2147483648LL)
        add(report, Severity::kError, "hls-const-range",
            "int32 array initializer " + (*lit)[1].str() +
                "LL silently truncates");
    }
  }
}

// ---- structural fixed-point range check -------------------------------

class FixedPointRange {
 public:
  FixedPointRange(int fraction_bits, VerifyReport& report)
      : bits_(fraction_bits), report_(report) {}

  void check(const ModelIr& ir, const std::string& ctx) {
    std::visit([&](const auto& s) { walk(s, ctx); }, ir.structure);
  }

 private:
  void flag(const std::string& ctx, const std::string& what, double v,
            int bits, double limit) {
    add(report_, Severity::kError, "fixed-point-range",
        (ctx.empty() ? what : ctx + ": " + what) + " = " +
            std::to_string(v) + " is not representable at Q" +
            std::to_string(bits) + " (|" + std::to_string(v) + " * 2^" +
            std::to_string(bits) + "| > " +
            (limit == kInt32Max ? std::string("int32 max")
                                : std::string("int64 max")) +
            ")");
  }

  void require_fits(const std::string& ctx, const std::string& what,
                    double v, int bits, double limit = kInt32Max) {
    if (!std::isfinite(v) || std::abs(fx_scaled(v, bits)) > limit)
      flag(ctx, what, v, bits, limit);
  }

  void walk(const TreeIr& tree, const std::string& ctx) {
    for (std::size_t i = 0; i < tree.nodes.size(); ++i)
      if (!tree.nodes[i].leaf)
        require_fits(ctx, "split threshold of node " + std::to_string(i),
                     tree.nodes[i].threshold, bits_);
  }
  void walk(const RuleListIr& rules, const std::string& ctx) {
    for (std::size_t r = 0; r < rules.rules.size(); ++r)
      for (const RuleConditionIr& cond : rules.rules[r].conditions)
        require_fits(ctx, "rule " + std::to_string(r) + " bound",
                     cond.value, bits_);
  }
  void walk(const BucketRuleIr& rule, const std::string& ctx) {
    for (double cut : rule.cuts)
      require_fits(ctx, "bucket boundary", cut, bits_);
  }
  void walk(const LinearIr& linear, const std::string& ctx) {
    std::vector<double> slopes;
    double offset = linear.bias;
    for (std::size_t f = 0; f < linear.weights.size(); ++f) {
      if (f >= linear.stdev.size() || linear.stdev[f] == 0.0) continue;
      slopes.push_back(linear.weights[f] / linear.stdev[f]);
      if (f < linear.mean.size())
        offset -= linear.weights[f] * linear.mean[f] / linear.stdev[f];
    }
    // The generator widens the slope format (hw::linear_fixed_point_bits);
    // check at the format it actually emits.
    const int sb = hw::linear_fixed_point_bits(slopes, offset, bits_);
    for (std::size_t f = 0; f < slopes.size(); ++f)
      require_fits(ctx, "folded slope of feature " + std::to_string(f),
                   slopes[f], sb);
    // The offset initialises an int64 accumulator at input*slope scale.
    require_fits(ctx, "folded offset", offset, bits_ + sb, kInt64Max);
  }
  void walk(const MlpIr&, const std::string&) {}
  void walk(const BayesNetIr&, const std::string&) {}
  void walk(const EnsembleIr& ens, const std::string& ctx) {
    for (std::size_t m = 0; m < ens.member_raw_weights.size(); ++m)
      require_fits(ctx, "vote weight of member " + std::to_string(m),
                   ens.member_raw_weights[m], bits_);
    for (std::size_t m = 0; m < ens.members.size(); ++m) {
      const std::string child_ctx =
          (ctx.empty() ? std::string{} : ctx + " / ") + "member " +
          std::to_string(m);
      check(ens.members[m], child_ctx);
    }
  }

  int bits_;
  VerifyReport& report_;
};

// ---- fixed-point mirror evaluation ------------------------------------

// Replicates the emitted arithmetic of hw/hls_codegen bit for bit: the
// decide visitor mirrors the hard-decision helpers, the proba visitor the
// Q(bits) probability helpers Bagging members use.

long long fixed_proba(const ModelIr& ir, std::span<const std::int32_t> x,
                      int bits);

/// The branch both visitors share: which bucket/leaf/rule the probe lands
/// in. Returns the model-side P(malware) for that landing spot.
double landed_proba(const BucketRuleIr& rule,
                    std::span<const std::int32_t> x, int bits) {
  HMD_REQUIRE(rule.feature < x.size());
  HMD_REQUIRE(rule.proba.size() == rule.cuts.size() + 1);
  const std::int32_t v = x[rule.feature];
  // Strictly-below: the model's upper_bound sends v == cut upward.
  for (std::size_t b = 0; b < rule.cuts.size(); ++b)
    if (v < fx(rule.cuts[b], bits)) return rule.proba[b];
  return rule.proba.back();
}

double landed_proba(const TreeIr& tree, std::span<const std::int32_t> x,
                    int bits) {
  HMD_REQUIRE(!tree.nodes.empty());
  std::size_t n = 0;
  // Bounded walk exactly like the emitted loop: nodes.size() steps.
  for (std::size_t step = 0; step < tree.nodes.size(); ++step) {
    const TreeNodeIr& node = tree.nodes[n];
    if (node.leaf) return node.proba;
    HMD_REQUIRE(node.feature < x.size());
    HMD_REQUIRE(node.left < tree.nodes.size() &&
                node.right < tree.nodes.size());
    n = x[node.feature] <= fx(node.threshold, bits) ? node.left
                                                    : node.right;
  }
  return 0.0;
}

double landed_proba(const RuleListIr& rules,
                    std::span<const std::int32_t> x, int bits) {
  const int fire = rules.target_class;
  for (const RuleIr& rule : rules.rules) {
    bool match = true;
    for (const RuleConditionIr& cond : rule.conditions) {
      HMD_REQUIRE(cond.feature < x.size());
      const long long bound = fx(cond.value, bits);
      if (cond.leq ? x[cond.feature] > bound : x[cond.feature] < bound) {
        match = false;
        break;
      }
    }
    if (match) return fire == 1 ? rule.precision : 1.0 - rule.precision;
  }
  return rules.default_proba;
}

/// Sign of the emitted linear accumulator (>= 0 means malware).
bool linear_nonnegative(const LinearIr& linear,
                        std::span<const std::int32_t> x, int bits) {
  HMD_REQUIRE(linear.weights.size() <= x.size());
  HMD_REQUIRE(linear.mean.size() == linear.weights.size() &&
              linear.stdev.size() == linear.weights.size());
  std::vector<double> slopes(linear.weights.size());
  double offset = linear.bias;
  for (std::size_t f = 0; f < linear.weights.size(); ++f) {
    HMD_REQUIRE(linear.stdev[f] != 0.0);
    slopes[f] = linear.weights[f] / linear.stdev[f];
    offset -= linear.weights[f] * linear.mean[f] / linear.stdev[f];
  }
  const int sb = hw::linear_fixed_point_bits(slopes, offset, bits);
  long long acc = fx(offset, bits + sb);
  for (std::size_t f = 0; f < slopes.size(); ++f)
    acc += fx(slopes[f], sb) * static_cast<long long>(x[f]);
  return acc >= 0;
}

struct FixedDecide {
  std::span<const std::int32_t> x;
  int bits;

  int operator()(const BucketRuleIr& rule) const {
    return landed_proba(rule, x, bits) >= 0.5 ? 1 : 0;
  }
  int operator()(const TreeIr& tree) const {
    return landed_proba(tree, x, bits) >= 0.5 ? 1 : 0;
  }
  int operator()(const RuleListIr& rules) const {
    return landed_proba(rules, x, bits) >= 0.5 ? 1 : 0;
  }
  int operator()(const LinearIr& linear) const {
    return linear_nonnegative(linear, x, bits) ? 1 : 0;
  }

  int operator()(const MlpIr&) const {
    throw PreconditionError(
        "HLS differential check: MLP is not an HLS-supported structure");
  }
  int operator()(const BayesNetIr&) const {
    throw PreconditionError(
        "HLS differential check: BayesNet is not an HLS-supported "
        "structure");
  }

  int operator()(const EnsembleIr& ens) const {
    HMD_REQUIRE(!ens.members.empty());
    HMD_REQUIRE(ens.member_raw_weights.size() == ens.members.size());
    if (ens.kind == EnsembleIr::Kind::kAdaBoost) {
      long long vote = 0, total = 0;
      for (std::size_t m = 0; m < ens.members.size(); ++m) {
        const long long alpha = fx(ens.member_raw_weights[m], bits);
        total += alpha;
        if (fixed_point_decide(ens.members[m], x, bits) == 1) vote += alpha;
      }
      return 2 * vote >= total ? 1 : 0;
    }
    // Bagging averages member probabilities, like Bagging::predict_proba
    // and the emitted acc-of-Q(bits)-probas helper.
    long long acc = 0;
    for (const ModelIr& member : ens.members)
      acc += fixed_proba(member, x, bits);
    return 2 * acc >= (static_cast<long long>(ens.members.size()) << bits)
               ? 1
               : 0;
  }
};

struct FixedProba {
  std::span<const std::int32_t> x;
  int bits;

  long long operator()(const BucketRuleIr& rule) const {
    return fx(landed_proba(rule, x, bits), bits);
  }
  long long operator()(const TreeIr& tree) const {
    return fx(landed_proba(tree, x, bits), bits);
  }
  long long operator()(const RuleListIr& rules) const {
    return fx(landed_proba(rules, x, bits), bits);
  }
  long long operator()(const LinearIr& linear) const {
    return linear_nonnegative(linear, x, bits) ? (1LL << bits) : 0;
  }

  long long operator()(const MlpIr&) const {
    throw PreconditionError(
        "HLS differential check: MLP is not an HLS-supported structure");
  }
  long long operator()(const BayesNetIr&) const {
    throw PreconditionError(
        "HLS differential check: BayesNet is not an HLS-supported "
        "structure");
  }

  long long operator()(const EnsembleIr& ens) const {
    HMD_REQUIRE(!ens.members.empty());
    HMD_REQUIRE(ens.member_raw_weights.size() == ens.members.size());
    if (ens.kind == EnsembleIr::Kind::kAdaBoost) {
      long long vote = 0, total = 0;
      for (std::size_t m = 0; m < ens.members.size(); ++m) {
        const long long alpha = fx(ens.member_raw_weights[m], bits);
        total += alpha;
        if (fixed_point_decide(ens.members[m], x, bits) == 1) vote += alpha;
      }
      if (total <= 0) return 1LL << (bits - 1);
      return (vote << bits) / total;
    }
    long long acc = 0;
    for (const ModelIr& member : ens.members)
      acc += fixed_proba(member, x, bits);
    return acc / static_cast<long long>(ens.members.size());
  }
};

long long fixed_proba(const ModelIr& ir, std::span<const std::int32_t> x,
                      int bits) {
  return std::visit(FixedProba{x, bits}, ir.structure);
}

std::int32_t saturate_i32(long long v) {
  if (v > 2147483647LL) return 2147483647;
  if (v < -2147483648LL) return INT32_MIN;
  return static_cast<std::int32_t>(v);
}

}  // namespace

VerifyReport lint_hls_code(const std::string& c_source,
                           const HlsLintOptions& options) {
  (void)options;  // fraction_bits is reserved for scale-aware checks
  VerifyReport report;
  const std::string code = strip_comments(c_source, report);
  if (!report.ok()) return report;
  check_delimiters(code, report);
  check_preprocessor(code, report);
  check_calls_and_loops(code, report);
  check_constant_ranges(code, report);
  return report;
}

VerifyReport check_fixed_point_range(const ModelIr& ir, int fraction_bits) {
  HMD_REQUIRE(fraction_bits >= 0 && fraction_bits < 31);
  VerifyReport report;
  FixedPointRange checker(fraction_bits, report);
  checker.check(ir, /*ctx=*/"");
  return report;
}

std::int32_t fixed_point_encode(double v, int fraction_bits) {
  return saturate_i32(fx(v, fraction_bits));
}

int fixed_point_decide(const ModelIr& ir, std::span<const std::int32_t> x,
                       int fraction_bits) {
  return std::visit(FixedDecide{x, fraction_bits}, ir.structure);
}

DifferentialResult differential_check(const ml::Classifier& model,
                                      const ml::Dataset& probes,
                                      const DifferentialOptions& options) {
  HMD_REQUIRE_MSG(probes.num_rows() > 0,
                  "differential check needs a non-empty probe set");
  // Both sides of the comparison are batched inference backends: the flat
  // engine stands in for predict_proba (bit-identical by contract, see
  // ml/infer.h), the fixed backend bit-simulates the generated C. This
  // turned the lint's hottest loop from two pointer walks per probe row
  // into two contiguous batch sweeps.
  const FixedPointBackend mirror(extract_ir(model), options.fraction_bits);
  const auto live = ml::make_backend(model, ml::InferBackendKind::kFlat);
  const std::vector<double> live_scores = live->predict_proba_batch(probes);
  const std::vector<double> mirror_scores =
      mirror.predict_proba_batch(probes);

  DifferentialResult result;
  result.probes = probes.num_rows();
  for (std::size_t i = 0; i < probes.num_rows(); ++i) {
    const int live_decision =
        live_scores[i] >= ml::kDecisionThreshold ? 1 : 0;
    const int mirror_decision =
        mirror_scores[i] >= ml::kDecisionThreshold ? 1 : 0;
    if (mirror_decision != live_decision) ++result.mismatches;
  }
  result.ok = result.mismatch_rate() <= options.max_mismatch_rate;
  return result;
}

}  // namespace hmd::analysis

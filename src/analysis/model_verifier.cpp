#include "analysis/model_verifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "support/check.h"

namespace hmd::analysis {

std::size_t VerifyReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::kError;
      }));
}

std::size_t VerifyReport::warning_count() const {
  return findings.size() - error_count();
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  for (const Finding& f : findings)
    os << (f.severity == Severity::kError ? "ERROR" : "WARNING") << "["
       << f.code << "] " << f.message << "\n";
  return os.str();
}

namespace {

/// Depth of a balanced binary reduction over n operands, in stages.
std::size_t reduction_depth(std::size_t n) {
  std::size_t d = 0;
  n = std::max<std::size_t>(n, 1);
  while (n > 1) {
    n = (n + 1) / 2;
    ++d;
  }
  return d;
}

bool finite(double v) { return std::isfinite(v); }

bool valid_proba(double v) { return finite(v) && v >= 0.0 && v <= 1.0; }

class Verifier {
 public:
  explicit Verifier(const VerifyOptions& options) : options_(options) {}

  VerifyReport take_report() { return std::move(report_); }

  void verify(const ModelIr& ir, const std::string& context) {
    std::visit([&](const auto& s) { check_structure(s, context); },
               ir.structure);
    if (options_.check_complexity) check_complexity(ir, context);
  }

 private:
  void add(Severity severity, std::string code, const std::string& context,
           const std::string& message) {
    report_.findings.push_back(
        {severity, std::move(code),
         context.empty() ? message : context + ": " + message});
  }
  void error(std::string code, const std::string& context,
             const std::string& message) {
    add(Severity::kError, std::move(code), context, message);
  }
  void warn(std::string code, const std::string& context,
            const std::string& message) {
    add(Severity::kWarning, std::move(code), context, message);
  }

  // ---- tree ----------------------------------------------------------

  void check_structure(const TreeIr& tree, const std::string& ctx) {
    const std::size_t n = tree.nodes.size();
    if (n == 0) {
      error("tree-empty", ctx, "tree has no nodes");
      return;
    }

    std::vector<std::size_t> indegree(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const TreeNodeIr& node = tree.nodes[i];
      if (node.leaf) {
        if (!valid_proba(node.proba))
          error("tree-leaf-proba", ctx,
                "leaf node " + std::to_string(i) +
                    " class distribution is invalid (P(malware) = " +
                    std::to_string(node.proba) +
                    " is not a probability, so P(malware) + P(benign) "
                    "cannot sum to 1)");
        continue;
      }
      if (!finite(node.threshold))
        error("tree-threshold", ctx,
              "internal node " + std::to_string(i) +
                  " has a non-finite split threshold");
      if (node.left >= n || node.right >= n) {
        error("tree-child-range", ctx,
              "internal node " + std::to_string(i) +
                  " references a child outside the node array");
        continue;
      }
      if (node.left == node.right)
        warn("tree-degenerate-split", ctx,
             "internal node " + std::to_string(i) +
                 " sends both branches to the same child");
      ++indegree[node.left];
      ++indegree[node.right];
    }

    // A well-formed tree reaches every node from the root exactly once:
    // the root has indegree 0 and every other node indegree 1. Indegree 0
    // elsewhere is an orphan; indegree > 1 is node sharing, which also
    // covers every cycle not involving the root (some node on the cycle is
    // entered both from the cycle and from the root's spanning path).
    if (indegree[0] > 0)
      error("tree-cycle", ctx, "root node is referenced as a child");
    for (std::size_t i = 1; i < n; ++i) {
      if (indegree[i] == 0)
        error("tree-orphan", ctx,
              "node " + std::to_string(i) + " is unreachable from the root");
      else if (indegree[i] > 1)
        error("tree-shared-node", ctx,
              "node " + std::to_string(i) +
                  " has multiple parents (shared subtree or cycle)");
    }
  }

  // ---- rule list (JRip) ----------------------------------------------

  void check_structure(const RuleListIr& rules, const std::string& ctx) {
    if (rules.target_class != 0 && rules.target_class != 1)
      error("rule-target", ctx,
            "target class " + std::to_string(rules.target_class) +
                " is not a binary label");
    if (!valid_proba(rules.default_proba))
      error("rule-default", ctx,
            "default probability " + std::to_string(rules.default_proba) +
                " is invalid — the decision list no longer covers the "
                "whole input space");

    for (std::size_t r = 0; r < rules.rules.size(); ++r) {
      const RuleIr& rule = rules.rules[r];
      const std::string where = "rule " + std::to_string(r);
      if (!valid_proba(rule.precision))
        error("rule-precision", ctx,
              where + " has invalid precision " +
                  std::to_string(rule.precision));

      // Per-feature interval intersection: a conjunction is satisfiable
      // iff every feature's lower bound stays below its upper bound.
      std::map<std::size_t, std::pair<double, double>> bounds;  // lo, hi
      for (const RuleConditionIr& cond : rule.conditions) {
        if (!finite(cond.value)) {
          error("rule-value", ctx,
                where + " has a non-finite condition value on feature " +
                    std::to_string(cond.feature));
          continue;
        }
        auto [it, inserted] = bounds.try_emplace(
            cond.feature,
            std::pair<double, double>{-std::numeric_limits<double>::infinity(),
                                      std::numeric_limits<double>::infinity()});
        if (cond.leq)
          it->second.second = std::min(it->second.second, cond.value);
        else
          it->second.first = std::max(it->second.first, cond.value);
      }
      for (const auto& [feature, lo_hi] : bounds) {
        if (lo_hi.first > lo_hi.second)
          error("rule-contradiction", ctx,
                where + " is unsatisfiable: feature " +
                    std::to_string(feature) + " must be >= " +
                    std::to_string(lo_hi.first) + " and <= " +
                    std::to_string(lo_hi.second));
      }

      if (rule.conditions.empty() && r + 1 < rules.rules.size())
        warn("rule-shadowed", ctx,
             where + " always fires, shadowing " +
                 std::to_string(rules.rules.size() - r - 1) +
                 " later rule(s) and the default");
    }
  }

  // ---- bucket rule (OneR) --------------------------------------------

  void check_structure(const BucketRuleIr& rule, const std::string& ctx) {
    if (rule.proba.size() != rule.cuts.size() + 1)
      error("bucket-shape", ctx,
            std::to_string(rule.cuts.size()) + " cuts require " +
                std::to_string(rule.cuts.size() + 1) +
                " bucket probabilities, got " +
                std::to_string(rule.proba.size()));
    for (std::size_t i = 0; i < rule.cuts.size(); ++i) {
      if (!finite(rule.cuts[i])) {
        error("bucket-cuts", ctx, "bucket boundary " + std::to_string(i) +
                                      " is not finite");
        continue;
      }
      if (i > 0 && finite(rule.cuts[i - 1]) &&
          rule.cuts[i] <= rule.cuts[i - 1])
        error("bucket-cuts", ctx,
              "bucket boundaries are not strictly ascending at index " +
                  std::to_string(i));
    }
    for (std::size_t i = 0; i < rule.proba.size(); ++i)
      if (!valid_proba(rule.proba[i]))
        error("bucket-proba", ctx,
              "bucket " + std::to_string(i) + " probability " +
                  std::to_string(rule.proba[i]) + " is invalid");
  }

  // ---- linear (SGD / SMO) --------------------------------------------

  void check_structure(const LinearIr& linear, const std::string& ctx) {
    const std::size_t nf = linear.weights.size();
    if (linear.mean.size() != nf || linear.stdev.size() != nf) {
      error("linear-shape", ctx,
            "standardization vectors do not match the weight vector (" +
                std::to_string(linear.mean.size()) + " means, " +
                std::to_string(linear.stdev.size()) + " stdevs, " +
                std::to_string(nf) + " weights)");
      return;
    }
    if (!finite(linear.bias))
      error("linear-weight", ctx, "bias is not finite");
    double max_slope = 0.0;
    for (std::size_t f = 0; f < nf; ++f) {
      if (!finite(linear.weights[f]) || !finite(linear.mean[f]))
        error("linear-weight", ctx,
              "weight/mean for feature " + std::to_string(f) +
                  " is not finite");
      if (!finite(linear.stdev[f]) || linear.stdev[f] <= 0.0)
        error("linear-stdev", ctx,
              "standardization scale for feature " + std::to_string(f) +
                  " is not a positive finite number");
      else if (finite(linear.weights[f]))
        max_slope = std::max(max_slope,
                             std::abs(linear.weights[f]) / linear.stdev[f]);
    }
    // A sane trained margin moves by O(1) per standardized input step;
    // slopes this extreme indicate diverged training or unit confusion.
    if (max_slope > 1e6)
      warn("linear-margin", ctx,
           "margin slope magnitude " + std::to_string(max_slope) +
               " is implausibly large for standardized inputs");
  }

  // ---- MLP -----------------------------------------------------------

  void check_structure(const MlpIr& mlp, const std::string& ctx) {
    if (mlp.w1.size() != mlp.hidden * mlp.inputs ||
        mlp.b1.size() != mlp.hidden || mlp.w2.size() != mlp.hidden ||
        mlp.mean.size() != mlp.inputs || mlp.stdev.size() != mlp.inputs) {
      error("mlp-shape", ctx,
            "layer shapes are inconsistent with " +
                std::to_string(mlp.inputs) + " inputs and " +
                std::to_string(mlp.hidden) + " hidden units");
      return;
    }
    if (mlp.hidden == 0)
      warn("mlp-empty", ctx, "network has no hidden units");
    auto all_finite = [](const std::vector<double>& v) {
      return std::all_of(v.begin(), v.end(),
                         [](double x) { return std::isfinite(x); });
    };
    if (!all_finite(mlp.w1) || !all_finite(mlp.b1) || !all_finite(mlp.w2) ||
        !finite(mlp.b2) || !all_finite(mlp.mean))
      error("mlp-weight", ctx, "network contains non-finite weights");
    for (std::size_t f = 0; f < mlp.stdev.size(); ++f)
      if (!finite(mlp.stdev[f]) || mlp.stdev[f] <= 0.0)
        error("mlp-stdev", ctx,
              "standardization scale for feature " + std::to_string(f) +
                  " is not a positive finite number");
  }

  // ---- BayesNet ------------------------------------------------------

  void check_structure(const BayesNetIr& bn, const std::string& ctx) {
    const double prior_sum =
        std::exp(bn.log_prior[0]) + std::exp(bn.log_prior[1]);
    if (!finite(bn.log_prior[0]) || !finite(bn.log_prior[1]) ||
        std::abs(prior_sum - 1.0) > options_.distribution_tolerance)
      error("bayes-prior", ctx,
            "class priors do not form a distribution (sum = " +
                std::to_string(prior_sum) + ")");

    const std::size_t na = bn.cpts.size();
    for (std::size_t f = 0; f < na; ++f) {
      const CptIr& cpt = bn.cpts[f];
      const std::string where = "attribute " + std::to_string(f);

      for (std::size_t i = 0; i < cpt.cuts.size(); ++i)
        if (!finite(cpt.cuts[i]) ||
            (i > 0 && cpt.cuts[i] <= cpt.cuts[i - 1]))
          error("bayes-cuts", ctx,
                where + " discretizer boundaries are not finite strictly "
                        "ascending");

      if (cpt.parent != CptIr::kNoParent && (cpt.parent >= na ||
                                             cpt.parent == f)) {
        error("bayes-parent", ctx,
              where + " has an invalid parent index " +
                  std::to_string(cpt.parent));
        continue;
      }

      const std::size_t bins = cpt.cuts.size() + 1;
      const std::size_t pbins = cpt.parent == CptIr::kNoParent
                                    ? 1
                                    : bn.cpts[cpt.parent].cuts.size() + 1;
      bool shape_ok = cpt.log_prob.size() == 2;
      for (const auto& per_class : cpt.log_prob) {
        shape_ok = shape_ok && per_class.size() == pbins;
        for (const auto& row : per_class)
          shape_ok = shape_ok && row.size() == bins;
      }
      if (!shape_ok) {
        error("bayes-cpt-shape", ctx,
              where + " CPT dimensions do not match its discretizer (" +
                  std::to_string(bins) + " bins) and parent (" +
                  std::to_string(pbins) + " parent bins)");
        continue;
      }
      for (const auto& per_class : cpt.log_prob) {
        for (const auto& row : per_class) {
          double sum = 0.0;
          bool row_finite = true;
          for (double lp : row) {
            if (!finite(lp) || lp > 1e-12) {
              row_finite = false;
              error("bayes-cpt-entry", ctx,
                    where + " CPT contains a value that is not a "
                            "log-probability");
              break;
            }
            sum += std::exp(lp);
          }
          if (row_finite &&
              std::abs(sum - 1.0) >
                  options_.distribution_tolerance *
                      static_cast<double>(std::max<std::size_t>(bins, 1)))
            error("bayes-cpt-sum", ctx,
                  where + " conditional distribution sums to " +
                      std::to_string(sum) + ", not 1");
        }
      }
    }

    // Parent chains must terminate (the TAN structure is a tree).
    for (std::size_t f = 0; f < na; ++f) {
      std::set<std::size_t> seen{f};
      std::size_t cur = f;
      while (cur < na && bn.cpts[cur].parent != CptIr::kNoParent) {
        cur = bn.cpts[cur].parent;
        if (cur >= na) break;  // already reported as bayes-parent
        if (!seen.insert(cur).second) {
          error("bayes-parent-cycle", ctx,
                "attribute parent chain starting at " + std::to_string(f) +
                    " forms a cycle");
          break;
        }
      }
    }
  }

  // ---- ensembles -----------------------------------------------------

  void check_structure(const EnsembleIr& ens, const std::string& ctx) {
    if (ens.members.empty()) {
      error("ensemble-empty", ctx, "ensemble has no members");
      return;
    }
    if (ens.member_weights.size() != ens.members.size()) {
      error("ensemble-shape", ctx,
            std::to_string(ens.members.size()) + " members but " +
                std::to_string(ens.member_weights.size()) +
                " member weights");
    } else {
      double sum = 0.0;
      bool weights_ok = true;
      for (std::size_t m = 0; m < ens.member_weights.size(); ++m) {
        const double w = ens.member_weights[m];
        if (!finite(w) || w <= 0.0) {
          error("ensemble-weight", ctx,
                "member " + std::to_string(m) + " weight " +
                    std::to_string(w) +
                    " is not a positive finite vote share");
          weights_ok = false;
          continue;
        }
        sum += w;
      }
      if (weights_ok && std::abs(sum - 1.0) > 1e-6)
        error("ensemble-normalization", ctx,
              "member weights sum to " + std::to_string(sum) + ", not 1");
    }
    for (std::size_t m = 0; m < ens.members.size(); ++m) {
      const std::string child_ctx =
          (ctx.empty() ? std::string{} : ctx + " / ") + "member " +
          std::to_string(m) + " (" + ens.members[m].name + ")";
      verify(ens.members[m], child_ctx);
    }
  }

  // ---- complexity cross-check ----------------------------------------

  void check_complexity(const ModelIr& ir, const std::string& ctx) {
    const ml::ModelComplexity expected = expected_complexity(ir);
    const ml::ModelComplexity& reported = ir.reported;

    auto mismatch = [&](const char* field, std::size_t want,
                        std::size_t got) {
      if (want != got)
        error("complexity-drift", ctx,
              ir.name + " reports " + field + " = " + std::to_string(got) +
                  " but its structure implies " + std::to_string(want) +
                  " — hw/resources costing would drift");
    };
    if (expected.kind != reported.kind)
      error("complexity-drift", ctx,
            ir.name + " reports kind '" + reported.kind +
                "' but its structure is '" + expected.kind + "'");
    mismatch("comparators", expected.comparators, reported.comparators);
    mismatch("adders", expected.adders, reported.adders);
    mismatch("multipliers", expected.multipliers, reported.multipliers);
    mismatch("table_entries", expected.table_entries,
             reported.table_entries);
    mismatch("nonlinearities", expected.nonlinearities,
             reported.nonlinearities);
    mismatch("depth", expected.depth, reported.depth);
    mismatch("inputs", expected.inputs, reported.inputs);
    // Member complexities are cross-checked by the recursive member
    // verification; only the arity is compared here.
    mismatch("children", expected.children.size(), reported.children.size());
  }

  VerifyOptions options_;
  VerifyReport report_;
};

struct ExpectedComplexity {
  ml::ModelComplexity operator()(const TreeIr& tree) const {
    ml::ModelComplexity mc;
    mc.kind = "tree";
    if (tree.nodes.empty()) return mc;
    std::set<std::size_t> features;
    // Guarded walk from the root: out-of-range children are skipped and a
    // visited set keeps corrupted (cyclic) IR from hanging the analyzer.
    std::vector<bool> visited(tree.nodes.size(), false);
    std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
    std::size_t internal = 0, leaves = 0, depth = 0;
    while (!stack.empty()) {
      const auto [idx, level] = stack.back();
      stack.pop_back();
      if (idx >= tree.nodes.size() || visited[idx]) continue;
      visited[idx] = true;
      depth = std::max(depth, level);
      const TreeNodeIr& node = tree.nodes[idx];
      if (node.leaf) {
        ++leaves;
        continue;
      }
      ++internal;
      features.insert(node.feature);
      stack.emplace_back(node.left, level + 1);
      stack.emplace_back(node.right, level + 1);
    }
    mc.comparators = internal;
    mc.table_entries = leaves;
    mc.depth = depth;
    mc.inputs = features.size();
    return mc;
  }

  ml::ModelComplexity operator()(const RuleListIr& rules) const {
    ml::ModelComplexity mc;
    mc.kind = "rules";
    std::set<std::size_t> features;
    for (const RuleIr& rule : rules.rules) {
      mc.comparators += rule.conditions.size();
      for (const RuleConditionIr& c : rule.conditions)
        features.insert(c.feature);
    }
    mc.table_entries = rules.rules.size() + 1;
    mc.depth = 1 + rules.rules.size();
    mc.inputs = features.size();
    return mc;
  }

  ml::ModelComplexity operator()(const BucketRuleIr& rule) const {
    ml::ModelComplexity mc;
    mc.kind = "rules";
    mc.comparators = rule.cuts.size();
    mc.table_entries = rule.proba.size();
    mc.depth = 1;
    mc.inputs = 1;
    return mc;
  }

  ml::ModelComplexity operator()(const LinearIr& linear) const {
    ml::ModelComplexity mc;
    mc.kind = "linear";
    const std::size_t nf = linear.weights.size();
    mc.multipliers = nf;
    mc.adders = nf;
    mc.comparators = 1;
    mc.depth = reduction_depth(nf) + 2;
    mc.inputs = nf;
    return mc;
  }

  ml::ModelComplexity operator()(const MlpIr& mlp) const {
    ml::ModelComplexity mc;
    mc.kind = "mlp";
    mc.multipliers = mlp.hidden * mlp.inputs + mlp.hidden;
    mc.adders = mlp.hidden * mlp.inputs + mlp.hidden + mlp.hidden + 1;
    mc.nonlinearities = mlp.hidden + 1;
    mc.depth = reduction_depth(mlp.inputs) + reduction_depth(mlp.hidden) + 4;
    mc.inputs = mlp.inputs;
    return mc;
  }

  ml::ModelComplexity operator()(const BayesNetIr& bn) const {
    ml::ModelComplexity mc;
    mc.kind = "bayes";
    mc.inputs = bn.cpts.size();
    for (const CptIr& cpt : bn.cpts) {
      mc.comparators += cpt.cuts.size();
      const std::size_t pbins = cpt.parent == CptIr::kNoParent ||
                                        cpt.parent >= bn.cpts.size()
                                    ? 1
                                    : bn.cpts[cpt.parent].cuts.size() + 1;
      mc.table_entries += 2 * pbins * (cpt.cuts.size() + 1);
      mc.adders += 2;
    }
    mc.depth = reduction_depth(bn.cpts.size()) + 2;
    return mc;
  }

  ml::ModelComplexity operator()(const EnsembleIr& ens) const {
    ml::ModelComplexity mc;
    mc.kind = "ensemble";
    const std::size_t n = ens.members.size();
    if (ens.kind == EnsembleIr::Kind::kAdaBoost) mc.multipliers = n;
    mc.adders = n;
    mc.comparators = 1;
    std::size_t max_child_depth = 0;
    for (const ModelIr& member : ens.members) {
      mc.children.push_back(expected_complexity(member));
      mc.inputs = std::max(mc.inputs, mc.children.back().inputs);
      max_child_depth = std::max(max_child_depth, mc.children.back().depth);
    }
    mc.depth = max_child_depth + reduction_depth(n) + 1;
    return mc;
  }
};

}  // namespace

ml::ModelComplexity expected_complexity(const ModelIr& ir) {
  return std::visit(ExpectedComplexity{}, ir.structure);
}

VerifyReport verify_ir(const ModelIr& ir, const VerifyOptions& options) {
  Verifier verifier(options);
  verifier.verify(ir, /*context=*/"");
  return verifier.take_report();
}

VerifyReport verify_model(const ml::Classifier& model,
                          const VerifyOptions& options) {
  HMD_REQUIRE_MSG(ir_supported(model),
                  "model verification does not support model: " +
                      model.name());
  return verify_ir(extract_ir(model), options);
}

}  // namespace hmd::analysis

// hmd_srclint — the determinism contract as a machine-checkable source lint.
//
// The repo's core claim is bit-identical output at any thread count, under
// fault injection, and across checkpoint resume. That property holds only
// because every source of nondeterminism is funnelled through explicit,
// seeded machinery (support/rng.h) and because nothing iterates a container
// whose order depends on addresses or hashing. Runtime tests verify the
// property for today's code paths; this lint makes the *contract itself*
// enforceable at CI time, so a future PR cannot quietly introduce a
// wall-clock read or an unordered container feeding output.
//
// The rules (DESIGN.md §12 is the authoritative rationale table):
//
//   rng-construct        std::random_device / rand() / srand() / standard
//                        <random> engines anywhere but src/support/rng.h —
//                        all randomness flows from explicitly seeded Rng.
//   wall-clock           std::chrono::system_clock, time(), clock(),
//                        gettimeofday, localtime/gmtime outside the bench
//                        timing allowlist — results must not depend on when
//                        they were computed. (steady_clock is allowed: it
//                        is monotonic and only ever times work.)
//   unordered-container  std::unordered_{map,set,multimap,multiset} —
//                        hash-order iteration feeding any output is the
//                        classic silent nondeterminism; the tree has zero
//                        today and this rule locks that in.
//   pointer-key          std::{map,set,...} keyed on a pointer type —
//                        ordered by address, which varies run to run.
//   local-static         mutable function-local `static` in library code
//                        (src/) — hidden cross-call state breaks the "work
//                        unit i depends only on i" parallel contract.
//
// A violation is silenced only by an inline comment on the same line (or a
// comment-only line immediately above):
//
//     // HMD_SRCLINT_ALLOW(wall-clock): sanctioned bench timing shim
//
// A suppression with an unknown rule id or a missing reason is itself an
// error. Suppressions are recognised only inside comments, so a string
// literal mentioning the marker (e.g. in this lint's own tests) is inert.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hmd::analysis {

/// One named rule of the determinism contract.
struct SrclintRule {
  std::string id;
  std::string bans;       ///< one-line summary of the banned construct
  std::string rationale;  ///< why it threatens determinism
};

/// The rule set, in report order. Stable ids — suppressions name them.
const std::vector<SrclintRule>& srclint_rules();

/// One banned construct found in a scanned file.
struct SrclintViolation {
  std::string file;  ///< '/'-separated path relative to the scan root
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string snippet;     ///< trimmed source line
  bool suppressed = false;
  std::string reason;  ///< allow-marker reason when suppressed
};

/// Scan result of a single file.
struct SrclintFileResult {
  std::vector<SrclintViolation> violations;  ///< in line order
  std::vector<std::string> errors;  ///< malformed/unknown suppressions
};

/// Scan one file's text. `rel_path` ('/'-separated, relative to the scan
/// root) drives the per-rule allowlists, so callers must pass tree-relative
/// paths, not absolute ones. Pure function of its arguments.
SrclintFileResult srclint_scan_source(std::string_view rel_path,
                                      std::string_view text);

/// Whole-tree scan result.
struct SrclintReport {
  std::vector<std::string> files;            ///< scanned, sorted
  std::vector<SrclintViolation> violations;  ///< file-major, line-ordered
  std::vector<std::string> errors;

  std::size_t unsuppressed() const;
  /// Zero unsuppressed violations and zero suppression errors.
  bool clean() const { return unsuppressed() == 0 && errors.empty(); }
};

/// Scan every .h/.hpp/.cc/.cpp under root/{src,bench,tools,tests,examples}
/// on `threads` workers (0 = auto), dogfooding support::parallel_map — the
/// file list is sorted and results are assembled in input order, so the
/// report is identical at any thread count.
SrclintReport srclint_scan_tree(const std::string& root,
                                std::size_t threads = 0);

/// Serialise a report in the LINT_src.json schema.
std::string srclint_report_json(const SrclintReport& report);

}  // namespace hmd::analysis

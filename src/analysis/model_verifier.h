// Static integrity verification of trained detector models.
//
// The experiment pipeline (core/experiment.h) and the hardware flow
// (hw/resources.h, hw/hls_codegen.h) both consume trained models without
// questioning them: a NaN threshold, an orphan tree node, or a zero-weight
// ensemble member silently corrupts Table 2 metrics or Table 3 area numbers
// instead of failing loudly. verify_model() walks the extracted model IR
// and reports every structural defect it can prove statically:
//
//   * trees — every node reachable from the root exactly once (no orphans,
//     no sharing, no cycles), child indices in range, finite thresholds,
//     leaf probabilities forming a valid class distribution;
//   * rule lists — finite condition values, per-rule satisfiability (no
//     contradictory bounds on one feature), total coverage via an in-range
//     default, no rules shadowed by an earlier always-true rule;
//   * bucket rules — strictly ascending finite cuts, one probability per
//     bucket, probabilities in [0, 1];
//   * linear models — finite weights/bias, positive finite standardization
//     scales, consistent dimensions;
//   * MLPs — consistent layer shapes, finite weights and biases;
//   * BayesNets — valid parent graph (in-range, no self-loops, acyclic),
//     CPT dimensions matching the discretizers, log-probabilities finite
//     and <= 0, every conditional distribution summing to 1;
//   * ensembles — non-empty membership, finite positive member weights
//     normalised to sum to 1, members verified recursively.
//
// In addition, the verifier recomputes the ModelComplexity that hw/resources
// costing relies on from the IR itself and flags any drift from the value
// the classifier reported — so a classifier whose complexity() falls out of
// sync with its real structure can no longer skew area/latency estimates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/model_ir.h"

namespace hmd::analysis {

enum class Severity {
  kWarning,  ///< suspicious but not provably wrong
  kError,    ///< the model is structurally invalid
};

/// One defect found by an analyzer.
struct Finding {
  Severity severity = Severity::kError;
  std::string code;     ///< stable machine-readable id, e.g. "tree-orphan"
  std::string message;  ///< human-readable description with context
};

/// Outcome of one verification run.
struct VerifyReport {
  std::vector<Finding> findings;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  /// True when no error-severity findings were recorded.
  bool ok() const { return error_count() == 0; }
  /// All findings, one per line ("ERROR[code] message").
  std::string to_string() const;
};

struct VerifyOptions {
  /// Cross-check the classifier-reported ModelComplexity against the
  /// structure (disable when verifying hand-built IR without one).
  bool check_complexity = true;
  /// Relative tolerance for probability-sum checks (CPT rows, priors).
  double distribution_tolerance = 1e-6;
};

/// Verify hand-built or extracted IR. `ir.reported` is only consulted when
/// options.check_complexity is set.
VerifyReport verify_ir(const ModelIr& ir, const VerifyOptions& options = {});

/// Convenience: extract_ir() + verify_ir() for a trained classifier.
/// Throws PreconditionError for untrained or unsupported models.
VerifyReport verify_model(const ml::Classifier& model,
                          const VerifyOptions& options = {});

/// Recompute the hardware-costing complexity from the structure alone,
/// mirroring the documented per-family rules. Exposed so tests and the
/// drift check share one implementation.
ml::ModelComplexity expected_complexity(const ModelIr& ir);

}  // namespace hmd::analysis

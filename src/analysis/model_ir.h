// Intermediate representation of trained detector structure, extracted from
// a live ml::Classifier for integrity analysis.
//
// The verifier (model_verifier.h) and the HLS checker (hls_checker.h) never
// poke at classifier internals directly: extract_ir() lowers every model
// family the pipeline trains — the eight general learners plus
// AdaBoost/Bagging ensembles of them — into the plain-data structures below.
// Tests exercise the analyzers by constructing deliberately corrupted IR
// (NaN thresholds, orphan tree nodes, zero-weight ensemble members) that a
// correct training run could never produce.
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "ml/classifier.h"

namespace hmd::analysis {

/// One node of a flattened decision tree; index 0 is the root.
struct TreeNodeIr {
  bool leaf = true;
  std::size_t feature = 0;
  double threshold = 0.0;
  std::size_t left = 0;   ///< child index for x[feature] <= threshold
  std::size_t right = 0;  ///< child index for x[feature] >  threshold
  double proba = 0.5;     ///< P(malware) at leaves
};

/// J48 / REPTree: a flat array of nodes rooted at index 0.
struct TreeIr {
  std::vector<TreeNodeIr> nodes;
};

/// One conjunct of a JRip rule antecedent.
struct RuleConditionIr {
  std::size_t feature = 0;
  bool leq = true;  ///< true: x[f] <= value, false: x[f] >= value
  double value = 0.0;
};

/// One JRip rule: conjunctive antecedent, smoothed precision when it fires.
struct RuleIr {
  std::vector<RuleConditionIr> conditions;
  double precision = 1.0;
};

/// JRip: an ordered decision list with a default.
struct RuleListIr {
  std::vector<RuleIr> rules;
  int target_class = 1;        ///< class the rules predict
  double default_proba = 0.5;  ///< P(malware) when no rule fires
};

/// OneR: a single-feature bucketed rule.
struct BucketRuleIr {
  std::size_t feature = 0;
  std::vector<double> cuts;   ///< ascending bucket boundaries
  std::vector<double> proba;  ///< P(malware) per bucket (cuts.size() + 1)
};

/// SGD / SMO: a linear margin over standardized inputs.
/// margin = sum_f weights[f] * (x[f] - mean[f]) / stdev[f] + bias.
struct LinearIr {
  std::vector<double> weights;
  double bias = 0.0;
  std::vector<double> mean;
  std::vector<double> stdev;
  bool hard_output = true;  ///< emits 0/1 posteriors (hinge-loss behaviour)
};

/// MLP: one hidden sigmoid layer over standardized inputs.
struct MlpIr {
  std::size_t inputs = 0;
  std::size_t hidden = 0;
  std::vector<double> w1;  ///< hidden × inputs, row-major
  std::vector<double> b1;  ///< hidden
  std::vector<double> w2;  ///< hidden
  double b2 = 0.0;
  std::vector<double> mean;
  std::vector<double> stdev;
};

/// One attribute's conditional probability table in a BayesNet.
struct CptIr {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::vector<double> cuts;  ///< discretizer boundaries, ascending
  std::size_t parent = kNoParent;  ///< attribute index, or kNoParent
  /// log P(bin | class, parent_bin): [class][parent_bin][bin]; the
  /// parent_bin dimension is 1 when there is no parent.
  std::vector<std::vector<std::vector<double>>> log_prob;
};

/// BayesNet: class log-priors plus one CPT per attribute.
struct BayesNetIr {
  double log_prior[2] = {0.0, 0.0};
  std::vector<CptIr> cpts;
};

struct ModelIr;

/// AdaBoost / Bagging: weighted members (weights normalised to sum to 1;
/// Bagging members carry uniform weight).
struct EnsembleIr {
  enum class Kind { kAdaBoost, kBagging };

  Kind kind = Kind::kBagging;
  std::vector<double> member_weights;  ///< one per member, sums to ~1
  /// Unnormalised vote weights as the model stores them (AdaBoost alphas;
  /// 1.0 per member for Bagging) — what the HLS generator quantizes.
  std::vector<double> member_raw_weights;
  std::vector<ModelIr> members;
};

using ModelStructure = std::variant<TreeIr, RuleListIr, BucketRuleIr,
                                    LinearIr, MlpIr, BayesNetIr, EnsembleIr>;

/// A model's structure plus the complexity the classifier *claims* —
/// the verifier recomputes the latter from the former and flags drift.
struct ModelIr {
  std::string name;
  ModelStructure structure;
  ml::ModelComplexity reported;
};

/// Lower a trained classifier into IR. Supports the eight general
/// classifiers and AdaBoost/Bagging ensembles of them.
///
/// Throws PreconditionError for untrained models (the classifier's own
/// structural accessors enforce this) and for unknown classifier types.
ModelIr extract_ir(const ml::Classifier& model);

/// True if extract_ir() can lower this classifier.
bool ir_supported(const ml::Classifier& model);

}  // namespace hmd::analysis

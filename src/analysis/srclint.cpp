#include "analysis/srclint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "support/check.h"
#include "support/parallel.h"

namespace hmd::analysis {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Source stripping: split a translation unit's text into a code view (string
// and character literals and all comments blanked to spaces) and a comment
// view (everything else blanked). Rules match only the code view, so a
// banned token inside a string or comment is inert; suppressions parse only
// the comment view, so a string literal mentioning the marker is too.

struct StrippedSource {
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

StrippedSource strip_source(std::string_view text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  StrippedSource out;
  std::string code_line, comment_line;
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of the active raw string
  char prev_code = '\0';
  bool line_comment_continues = false;  // backslash-newline inside //

  auto flush_line = [&] {
    out.code.push_back(std::move(code_line));
    out.comment.push_back(std::move(comment_line));
    code_line.clear();
    comment_line.clear();
  };
  auto put_code = [&](char c) {
    code_line.push_back(c);
    comment_line.push_back(' ');
    prev_code = c;
  };
  auto put_comment = [&](char c) {
    code_line.push_back(' ');
    comment_line.push_back(c);
  };
  auto put_blank = [&] {
    code_line.push_back(' ');
    comment_line.push_back(' ');
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      // A backslash-continued line comment spills onto the next line;
      // every other state passes the newline through unchanged.
      flush_line();
      if (state == State::kLineComment && !line_comment_continues)
        state = State::kCode;
      line_comment_continues = false;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          put_comment(c);
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          put_comment(c);
          put_comment(next);
          ++i;
        } else if (c == 'R' && next == '"' && !ident_char(prev_code)) {
          // Raw string literal: R"delim( ... )delim". Collect the delimiter.
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != '\n' &&
                 delim.size() < 16)
            delim.push_back(text[j++]);
          if (j < n && text[j] == '(') {
            raw_end = ")" + delim + "\"";
            state = State::kRawString;
            for (std::size_t k = i; k <= j; ++k) put_blank();
            i = j;
            prev_code = '\0';
          } else {
            put_code(c);  // not actually a raw string; keep the R
          }
        } else if (c == '"') {
          state = State::kString;
          put_blank();
          prev_code = '\0';
        } else if (c == '\'' && ident_char(prev_code) && ident_char(next)) {
          put_code(c);  // digit separator, e.g. 1'000'000
        } else if (c == '\'') {
          state = State::kChar;
          put_blank();
          prev_code = '\0';
        } else {
          put_code(c);
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') line_comment_continues = true;
        put_comment(c);
        break;
      case State::kBlockComment:
        put_comment(c);
        if (c == '*' && next == '/') {
          put_comment(next);
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
      case State::kChar: {
        put_blank();
        if (c == '\\' && next != '\0' && next != '\n') {
          put_blank();
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        break;
      }
      case State::kRawString:
        put_blank();
        if (c == raw_end.front() &&
            text.compare(i, raw_end.size(), raw_end) == 0) {
          for (std::size_t k = 1; k < raw_end.size(); ++k) put_blank();
          i += raw_end.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  flush_line();
  return out;
}

// ---------------------------------------------------------------------------
// Rules.

struct RuleDef {
  SrclintRule info;
  std::regex pattern;              // matched against the code view per line
  std::vector<std::string> allow;  // rel paths exempt from this rule
  bool src_only = false;           // library-code rule (src/ only)
  bool needs_scope = false;        // uses the function-scope walk instead
};

const std::vector<RuleDef>& rule_defs() {
  static const std::vector<RuleDef> defs = [] {
    std::vector<RuleDef> r;
    r.push_back(RuleDef{
        {"rng-construct",
         "std::random_device / rand() / srand() / standard <random> engines",
         "all randomness must flow from support/rng.h's explicitly seeded "
         "Rng, or results stop reproducing across runs and platforms"},
        std::regex(
            R"(std::random_device|std::mt19937|std::minstd_rand|std::default_random_engine|std::ranlux|std::knuth_b|\b(rand|srand|rand_r|srandom|drand48|lrand48|mrand48)\s*\()"),
        {"src/support/rng.h"},
        false,
        false});
    r.push_back(RuleDef{
        {"wall-clock",
         "std::chrono::system_clock, time(), clock(), gettimeofday, "
         "localtime/gmtime",
         "output must not depend on when it was computed; steady_clock is "
         "monotonic and stays legal for timing work"},
        std::regex(
            R"(system_clock|\btime\s*\(|\bclock\s*\(|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b|\bstrftime\b)"),
        {"bench/bench_util.h"},
        false,
        false});
    r.push_back(RuleDef{
        {"unordered-container",
         "std::unordered_map/set/multimap/multiset",
         "hash-order iteration feeding any output is silent "
         "nondeterminism; the tree has zero and this locks that in"},
        std::regex(R"(std::unordered_(map|set|multimap|multiset)\b)"),
        {},
        false,
        false});
    r.push_back(RuleDef{
        {"pointer-key",
         "std::map/std::set (and multi variants) keyed on a pointer type",
         "address order varies run to run, so iterating a pointer-keyed "
         "ordered container is as nondeterministic as a hashed one"},
        std::regex(R"(std::(multi)?(map|set)\s*<\s*[^,<>]*\*)"),
        {},
        false,
        false});
    r.push_back(RuleDef{
        {"local-static",
         "mutable function-local `static` in library code",
         "hidden cross-call state breaks the parallel contract that work "
         "unit i depends only on i and immutable shared state"},
        std::regex(
            R"(^static\s+(?!(const|constexpr|inline\s+const|inline\s+constexpr)\b))"),
        {},
        true,
        true});
    return r;
  }();
  return defs;
}

// ---------------------------------------------------------------------------
// Suppressions: the allow marker (rule id + reason), comments only.

struct Suppression {
  std::string rule;
  std::string reason;
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)
    --e;
  return std::string(s.substr(b, e - b));
}

bool known_rule(const std::string& id) {
  for (const RuleDef& def : rule_defs())
    if (def.info.id == id) return true;
  return false;
}

bool blank_line(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  });
}

/// Parse per-line suppressions out of the comment view. Index = 0-based
/// line; a suppression on a comment-only line covers the following line.
std::vector<const Suppression*> parse_suppressions(
    std::string_view rel_path, const StrippedSource& stripped,
    std::vector<Suppression>& storage, std::vector<std::string>& errors) {
  static const std::regex form(
      R"(HMD_SRCLINT_ALLOW\(\s*([A-Za-z][A-Za-z0-9_-]*)\s*\)\s*:\s*(.*))");
  const std::size_t n = stripped.comment.size();
  // Two passes: collect into stable storage first, then build the per-line
  // pointer table (pointers into a still-growing vector would dangle).
  std::vector<std::pair<std::size_t, std::size_t>> found;  // line -> index
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& comment = stripped.comment[i];
    if (comment.find("HMD_SRCLINT_ALLOW") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(comment, m, form)) {
      errors.push_back(std::string(rel_path) + ":" + std::to_string(i + 1) +
                       ": malformed HMD_SRCLINT_ALLOW (expected "
                       "HMD_SRCLINT_ALLOW(rule-id): reason)");
      continue;
    }
    const std::string rule = m[1].str();
    const std::string reason = trim(m[2].str());
    if (!known_rule(rule)) {
      errors.push_back(std::string(rel_path) + ":" + std::to_string(i + 1) +
                       ": HMD_SRCLINT_ALLOW names unknown rule '" + rule +
                       "'");
      continue;
    }
    if (reason.empty()) {
      errors.push_back(std::string(rel_path) + ":" + std::to_string(i + 1) +
                       ": HMD_SRCLINT_ALLOW(" + rule +
                       ") is missing a reason");
      continue;
    }
    storage.push_back(Suppression{rule, reason});
    found.emplace_back(i, storage.size() - 1);
  }
  std::vector<const Suppression*> by_line(n, nullptr);
  for (const auto& [line, idx] : found) {
    by_line[line] = &storage[idx];
    // A comment-only line's suppression covers the next line.
    if (blank_line(stripped.code[line]) && line + 1 < n &&
        by_line[line + 1] == nullptr)
      by_line[line + 1] = &storage[idx];
  }
  return by_line;
}

// ---------------------------------------------------------------------------
// Function-scope tracking for the local-static rule. Walks the code view
// keeping a stack of brace scopes classified as function-like or not: a
// brace whose header ends with ')' or ']' (function bodies, lambdas,
// control statements) opens a function-like scope unless the header names a
// type or namespace. Heuristic by design — the tree's style keeps it exact,
// and an inline allow marker covers any future corner case.

std::vector<bool> function_scope_lines(const StrippedSource& stripped) {
  std::vector<bool> in_function(stripped.code.size(), false);
  static const std::regex type_scope(
      R"((^|[^\w])(namespace|class|struct|union|enum)([^\w]|$))");
  std::vector<bool> stack;  // true = function-like scope
  std::string head;
  bool depth_any_function = false;

  auto recompute = [&] {
    depth_any_function =
        std::any_of(stack.begin(), stack.end(), [](bool f) { return f; });
  };
  for (std::size_t i = 0; i < stripped.code.size(); ++i) {
    const std::string& line = stripped.code[i];
    // The line counts as function scope if any enclosing brace at any point
    // of the line is function-like; track the max over the line.
    bool line_function = depth_any_function;
    for (char c : line) {
      if (c == '{') {
        const std::string h = trim(head);
        bool function_like = false;
        if (!std::regex_search(h, type_scope)) {
          const char tail = h.empty() ? '\0' : h.back();
          function_like =
              depth_any_function || tail == ')' || tail == ']' ||
              h == "do" || h == "else" || h == "try";
        }
        stack.push_back(function_like);
        recompute();
        head.clear();
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        recompute();
        head.clear();
      } else if (c == ';') {
        head.clear();
      } else {
        if (head.size() < 256) head.push_back(c);
      }
      line_function = line_function || depth_any_function;
    }
    if (!head.empty()) head.push_back(' ');  // keep multi-line headers apart
    in_function[i] = line_function;
  }
  return in_function;
}

/// Does this code line declare a mutable static at function scope? The
/// pattern anchors at the `static` keyword so `static const`/`constexpr`
/// (immutable, deterministic) stay legal.
bool mutable_static_on_line(const std::string& code_line,
                            const std::regex& pattern) {
  std::size_t pos = 0;
  while ((pos = code_line.find("static", pos)) != std::string::npos) {
    const bool boundary_before =
        pos == 0 || !ident_char(code_line[pos - 1]);
    if (boundary_before) {
      const std::string tail = code_line.substr(pos);
      if (std::regex_search(tail, pattern,
                            std::regex_constants::match_continuous))
        return true;
    }
    pos += 6;
  }
  return false;
}

bool path_in(const std::vector<std::string>& list, std::string_view path) {
  return std::find(list.begin(), list.end(), path) != list.end();
}

std::string snippet_of(std::string_view text_line) {
  std::string s = trim(text_line);
  if (s.size() > 160) s = s.substr(0, 157) + "...";
  return s;
}

// ---------------------------------------------------------------------------
// JSON emission (same hand-rolled style as the bench reports).

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<SrclintRule>& srclint_rules() {
  static const std::vector<SrclintRule> rules = [] {
    std::vector<SrclintRule> r;
    for (const RuleDef& def : rule_defs()) r.push_back(def.info);
    return r;
  }();
  return rules;
}

SrclintFileResult srclint_scan_source(std::string_view rel_path,
                                      std::string_view text) {
  SrclintFileResult result;
  const StrippedSource stripped = strip_source(text);

  std::vector<Suppression> suppression_storage;
  const std::vector<const Suppression*> suppressed_on = parse_suppressions(
      rel_path, stripped, suppression_storage, result.errors);

  // Raw lines, for snippets.
  std::vector<std::string_view> raw_lines;
  raw_lines.reserve(stripped.code.size());
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == '\n') {
        raw_lines.push_back(text.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  std::vector<bool> in_function;  // built lazily for the local-static rule

  for (const RuleDef& def : rule_defs()) {
    if (path_in(def.allow, rel_path)) continue;
    if (def.src_only && rel_path.substr(0, 4) != "src/") continue;
    if (def.needs_scope && in_function.empty())
      in_function = function_scope_lines(stripped);
    for (std::size_t i = 0; i < stripped.code.size(); ++i) {
      const std::string& code = stripped.code[i];
      bool hit;
      if (def.needs_scope) {
        hit = in_function[i] && mutable_static_on_line(code, def.pattern);
      } else {
        hit = std::regex_search(code, def.pattern);
      }
      if (!hit) continue;
      SrclintViolation v;
      v.file = std::string(rel_path);
      v.line = i + 1;
      v.rule = def.info.id;
      v.snippet = i < raw_lines.size() ? snippet_of(raw_lines[i]) : "";
      const Suppression* sup =
          i < suppressed_on.size() ? suppressed_on[i] : nullptr;
      if (sup != nullptr && sup->rule == def.info.id) {
        v.suppressed = true;
        v.reason = sup->reason;
      }
      result.violations.push_back(std::move(v));
    }
  }
  // Line-major order regardless of which rule found what.
  std::stable_sort(result.violations.begin(), result.violations.end(),
                   [](const SrclintViolation& a, const SrclintViolation& b) {
                     return a.line < b.line;
                   });
  return result;
}

std::size_t SrclintReport::unsuppressed() const {
  std::size_t n = 0;
  for (const SrclintViolation& v : violations)
    if (!v.suppressed) ++n;
  return n;
}

SrclintReport srclint_scan_tree(const std::string& root,
                                std::size_t threads) {
  static constexpr const char* kDirs[] = {"src", "bench", "tools", "tests",
                                          "examples"};
  static constexpr const char* kExts[] = {".h", ".hpp", ".cc", ".cpp"};

  SrclintReport report;
  const fs::path root_path(root);
  HMD_REQUIRE_MSG(fs::is_directory(root_path),
                  "srclint root is not a directory: " + root);
  for (const char* dir : kDirs) {
    const fs::path top = root_path / dir;
    if (!fs::is_directory(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find_if(std::begin(kExts), std::end(kExts),
                       [&](const char* e) { return ext == e; }) ==
          std::end(kExts))
        continue;
      report.files.push_back(
          fs::relative(entry.path(), root_path).generic_string());
    }
  }
  // Directory iteration order is unspecified; sorting keeps the report (and
  // the parallel_map work assignment) identical across runs and platforms.
  std::sort(report.files.begin(), report.files.end());

  support::ThreadPool pool(threads);
  const std::vector<SrclintFileResult> per_file =
      pool.parallel_map(report.files.size(), [&](std::size_t i) {
        std::ifstream in(root_path / report.files[i],
                         std::ios::in | std::ios::binary);
        HMD_REQUIRE_MSG(in.good(), "cannot read " + report.files[i]);
        std::ostringstream text;
        text << in.rdbuf();
        return srclint_scan_source(report.files[i], text.str());
      });
  for (const SrclintFileResult& fr : per_file) {
    report.violations.insert(report.violations.end(), fr.violations.begin(),
                             fr.violations.end());
    report.errors.insert(report.errors.end(), fr.errors.begin(),
                         fr.errors.end());
  }
  return report;
}

std::string srclint_report_json(const SrclintReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"hmd_srclint\",\n";
  os << "  \"files_scanned\": " << report.files.size() << ",\n";
  os << "  \"rules\": [\n";
  const auto& rules = srclint_rules();
  for (std::size_t r = 0; r < rules.size(); ++r) {
    std::size_t active = 0, suppressed = 0;
    for (const SrclintViolation& v : report.violations) {
      if (v.rule != rules[r].id) continue;
      (v.suppressed ? suppressed : active)++;
    }
    os << "    {\"id\": \"" << json_escape(rules[r].id) << "\", \"bans\": \""
       << json_escape(rules[r].bans) << "\", \"violations\": " << active
       << ", \"suppressed\": " << suppressed << "}"
       << (r + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"violations\": [\n";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const SrclintViolation& v = report.violations[i];
    os << "    {\"file\": \"" << json_escape(v.file)
       << "\", \"line\": " << v.line << ", \"rule\": \""
       << json_escape(v.rule) << "\", \"suppressed\": "
       << (v.suppressed ? "true" : "false") << ", \"reason\": \""
       << json_escape(v.reason) << "\", \"snippet\": \""
       << json_escape(v.snippet) << "\"}"
       << (i + 1 < report.violations.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"errors\": [\n";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    os << "    \"" << json_escape(report.errors[i]) << "\""
       << (i + 1 < report.errors.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"unsuppressed_total\": " << report.unsuppressed() << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace hmd::analysis

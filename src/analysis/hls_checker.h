// Static checking of the HLS C emitted by hw/hls_codegen.
//
// The generator documents a synthesis contract — self-contained C99, no
// libc calls, no recursion, bounded loops only, int32 fixed-point
// arithmetic — but nothing enforced it: a generator regression that emitted
// a `while`, called into libm, or produced a threshold constant that
// silently truncates in an int32 array would only be discovered inside a
// (slow, external) HLS tool run. This module closes that gap three ways:
//
//   * lint_hls_code() — a textual lint of the emitted C against the
//     contract: balanced delimiters, only the <stdint.h> include, every
//     call resolving to a previously defined local helper (which rules out
//     libc calls, forward references, and recursion in one check), loops
//     restricted to the generator's counted `for` shape, and comparison
//     constants representable in int32;
//   * check_fixed_point_range() — a structural walk of the model IR
//     verifying every constant the generator will quantize (tree
//     thresholds, rule bounds, bucket cuts, folded linear slopes/offsets,
//     vote weights) stays representable in int32 at the configured
//     fraction_bits before any code is emitted;
//   * differential_check() — a fixed-point mirror of the generated
//     function's arithmetic, evaluated against predict_proba() thresholding
//     over a probe dataset, bounding the decision divergence introduced by
//     quantization (and catching any semantic drift between the generator
//     and the model outright).
#pragma once

#include <cstddef>
#include <string>

#include "analysis/model_ir.h"
#include "analysis/model_verifier.h"
#include "ml/dataset.h"

namespace hmd::analysis {

struct HlsLintOptions {
  /// Fixed-point fraction bits the code was generated with (HlsOptions).
  int fraction_bits = 8;
};

/// Lint generated HLS C source against the synthesis contract.
/// Works on any string; feed it the output of hw::generate_hls_c.
VerifyReport lint_hls_code(const std::string& c_source,
                           const HlsLintOptions& options = {});

/// Verify every model constant the HLS generator quantizes fits int32 at
/// `fraction_bits`. MLP/BayesNet structures yield no findings (the
/// generator rejects them before emitting anything).
VerifyReport check_fixed_point_range(const ModelIr& ir,
                                     int fraction_bits = 8);

struct DifferentialOptions {
  int fraction_bits = 8;
  /// Accepted fraction of probe rows whose fixed-point decision differs
  /// from predict_proba() thresholding (quantization near split
  /// boundaries makes a small rate unavoidable).
  double max_mismatch_rate = 0.02;
};

struct DifferentialResult {
  std::size_t probes = 0;
  std::size_t mismatches = 0;
  bool ok = false;

  double mismatch_rate() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(mismatches) /
                             static_cast<double>(probes);
  }
};

/// Encode one feature value exactly as the differential harness feeds the
/// generated C function: Q(fraction_bits) via llround, saturated to int32.
std::int32_t fixed_point_encode(double v, int fraction_bits);

/// Decide `x` (already fixed-point encoded at `fraction_bits`) exactly as
/// the generated C function would — same rounding, same comparison
/// directions, same vote arithmetic. Returns 1 for malware, 0 for benign.
/// Throws PreconditionError for structures the generator cannot emit
/// (MLP, BayesNet).
int fixed_point_decide(const ModelIr& ir, std::span<const std::int32_t> x,
                       int fraction_bits);

/// Compare the fixed-point mirror against the live model over the rows of
/// `probes`. Throws PreconditionError when the model is untrained, not
/// HLS-supported, or `probes` is empty.
DifferentialResult differential_check(const ml::Classifier& model,
                                      const ml::Dataset& probes,
                                      const DifferentialOptions& options = {});

}  // namespace hmd::analysis

// Workload catalog: the population of benign and malware applications.
//
// The paper profiles >100 applications: benign = MiBench suite, Linux
// system programs, browsers, editors, a word processor; malware = Linux
// ELFs and python/perl/bash scripts from VirusTotal, spanning several
// malicious behaviours. We reproduce the *population structure* with
// parameterized behaviour templates:
//
//   * 18 benign templates modelled on MiBench kernels and desktop/system
//     software, including deliberately "hard" ones (compiler, browser,
//     shell utilities) whose microarchitectural behaviour overlaps malware;
//   * 14 malware family templates (scanner, flooder, fork-storm, miner,
//     ransomware, spyware, beacon, rootkit, worm, dropper, script bots,
//     adware, infostealer), including "hard" ones that resemble benign
//     compute (the crypto-miner looks like MiBench/sha).
//
// Each template is instantiated several times with deterministic
// per-instance jitter, giving a corpus of 100+ distinct applications.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/app_profile.h"

namespace hmd::sim {

/// Knobs for corpus construction; defaults reproduce the paper-scale corpus.
struct CorpusConfig {
  std::uint64_t seed = 2018;            ///< master seed (DAC'18!)
  std::uint32_t benign_per_template = 4;
  std::uint32_t malware_per_template = 5;
  std::uint32_t intervals_per_app = 20; ///< 10 ms samples captured per run
  /// Global scale on per-interval instruction volume. The default trades
  /// simulation time for per-interval count resolution; 1.0 doubles both.
  double instruction_scale = 0.5;
  /// Use only the first N malware templates (0 = all). The concept-drift
  /// scenario trains on a truncated template set and unleashes the held-out
  /// "novel family" templates mid-campaign — families the deployed model
  /// has never seen any variant of, the realistic drift a run-time HMD
  /// faces. Template order is stable, so limit k always holds out exactly
  /// the templates with index >= k.
  std::size_t malware_template_limit = 0;
};

/// Number of behaviour templates on each side.
std::size_t benign_template_count();
std::size_t malware_template_count();

/// Instantiate one application from a template (variant = jitter stream).
AppProfile make_benign(std::size_t template_index, std::uint32_t variant,
                       std::uint64_t seed, std::uint32_t intervals);
AppProfile make_malware(std::size_t template_index, std::uint32_t variant,
                        std::uint64_t seed, std::uint32_t intervals);

/// The full labelled corpus: all templates × all variants, benign first.
std::vector<AppProfile> build_corpus(const CorpusConfig& cfg = {});

/// Mimicry attack model: every behaviour parameter of `malware` is moved a
/// fraction `lambda` toward `cover`'s behaviour (phase-wise; `cover`'s
/// phases are cycled if the counts differ). lambda = 0 returns the malware
/// unchanged; lambda = 1 makes it microarchitecturally identical to the
/// cover application — but then it also does none of its malicious work,
/// which is the fundamental cost of mimicry this ablation quantifies.
AppProfile blend_toward(const AppProfile& malware, const AppProfile& cover,
                        double lambda);

}  // namespace hmd::sim

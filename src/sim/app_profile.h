// Application behaviour profiles: the statistical "program" the Machine
// executes.
//
// The paper runs >100 real benign applications (MiBench, system tools,
// browsers, editors) and Linux malware (ELFs, python/perl/bash scripts).
// We cannot ship malware, so each application is modelled as a sequence of
// *phases*, each phase a distribution over instruction mix, control-flow
// predictability, code/data footprint, kernel-crossing rate, and OS noise.
// The Machine turns a phase into a synthetic instruction trace and runs it
// through real (functional) cache / TLB / branch-predictor models, so the
// resulting 44 event counts carry the cross-event structure a real PMU
// would see (e.g. context switches inflate TLB misses because the TLBs are
// actually flushed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hmd::sim {

/// One steady-state behaviour regime of an application.
struct PhaseSpec {
  std::string name = "phase";
  double weight = 1.0;  ///< relative share of intervals spent in this phase

  // Instruction stream volume per 10 ms interval (scaled-down trace window).
  double instructions_mean = 12000.0;
  double instructions_jitter = 0.14;  ///< relative lognormal jitter

  // Instruction mix (fractions of the dynamic stream; the rest is ALU).
  double frac_branch = 0.16;
  double frac_load = 0.24;
  double frac_store = 0.09;

  // Control flow.
  double branch_bias = 0.88;      ///< mean per-site taken (or not) skew
  double branch_noise = 0.04;     ///< per-dynamic-branch outcome randomness
  double code_jump_spread = 0.15; ///< P(taken branch leaves the current page)

  // Code footprint.
  std::uint32_t code_pages = 6;
  std::uint32_t blocks_per_page = 16;

  // Data footprint.
  std::uint32_t data_pages = 48;
  double hot_fraction = 0.12;    ///< share of data pages forming the hot set
  double hot_access_prob = 0.85; ///< P(access targets the hot set)
  double sequential_prob = 0.65; ///< P(streaming access | hot set)
  std::uint32_t stride_bytes = 64;
  double store_scatter = 0.25;   ///< P(store targets a random cold page)
  double numa_remote_frac = 0.08;///< share of memory traffic to remote node

  // Kernel interaction: each syscall executes a burst of kernel-space
  // instructions (separate code/data pages), which competes for the same
  // TLBs and caches.
  double syscalls_per_kilo_instr = 0.4;
  double kernel_burst_instr = 220.0;

  // OS / software event rates (expected count per interval).
  double context_switch_rate = 0.4;
  double migration_rate = 0.01;
  double minor_fault_rate = 0.8;
  double major_fault_rate = 0.005;
  double alignment_fault_rate = 0.0;
  double emulation_fault_rate = 0.0;
};

/// A complete application: an identity plus its phase script.
struct AppProfile {
  std::string name;
  bool is_malware = false;
  std::string family;     ///< e.g. "mibench", "scanner", "ransomware"
  std::uint64_t seed = 1; ///< per-application stream for all randomness
  std::vector<PhaseSpec> phases;

  /// Intervals captured per run (the paper samples every 10 ms for the life
  /// of the application; we use a fixed window per app).
  std::uint32_t intervals = 24;
};

}  // namespace hmd::sim

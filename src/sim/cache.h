// Set-associative cache and TLB models with selectable replacement.
//
// These are functional (hit/miss) models, not timing models: the Machine
// (machine.h) charges latency penalties itself. Geometry defaults follow
// the Intel Xeon X5550 (Nehalem) the paper measured on.
//
// Replacement policies (the microarchitecture-sensitivity ablation sweeps
// them; true-LRU is the default used everywhere else):
//   kLru     — true least-recently-used
//   kFifo    — evict the oldest-inserted line (no update on hit)
//   kRandom  — uniform random victim (deterministic internal stream)
//   kTreePlru— tree pseudo-LRU (power-of-two associativity; falls back to
//              true LRU for other way counts)
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/check.h"

namespace hmd::sim {

enum class ReplacementPolicy : std::uint8_t {
  kLru,
  kFifo,
  kRandom,
  kTreePlru,
};

std::string_view replacement_policy_name(ReplacementPolicy policy);

/// Geometry of a set-associative cache (or TLB, with line == page).
struct CacheGeometry {
  std::uint32_t sets = 64;        ///< number of sets (power of two)
  std::uint32_t ways = 8;         ///< associativity
  std::uint32_t line_bytes = 64;  ///< line (or page) size in bytes
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(sets) * ways * line_bytes;
  }
};

/// A single cache level tracking access/miss counts.
class Cache {
 public:
  explicit Cache(CacheGeometry geo);

  /// Look up `address`; allocates the line on miss. Returns true on hit.
  bool access(std::uint64_t address);

  /// Probe without allocating (used by prefetch-accounting). True on hit.
  bool probe(std::uint64_t address) const;

  /// Insert a line without counting an access (prefetch fill).
  void fill(std::uint64_t address);

  /// Drop all contents and zero statistics (container reset between runs).
  void reset();

  /// Drop contents but keep statistics (e.g. TLB flush on context switch).
  void flush();

  /// Invalidate a random `fraction` of lines — models pollution by other
  /// processes sharing the cache across a context switch. `mix` is a
  /// caller-supplied random word (kept raw to avoid an Rng dependency).
  void pollute(double fraction, std::uint64_t mix);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  const CacheGeometry& geometry() const { return geo_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;  ///< LRU recency or FIFO insertion order
    bool valid = false;
  };

  std::size_t set_index(std::uint64_t address) const {
    return static_cast<std::size_t>((address / geo_.line_bytes) &
                                    (geo_.sets - 1));
  }
  std::uint64_t tag_of(std::uint64_t address) const {
    return (address / geo_.line_bytes) / geo_.sets;
  }

  /// Victim way within [base, base+ways) per the configured policy.
  std::size_t pick_victim(std::size_t set, std::size_t base);
  void touch(std::size_t set, std::size_t base, std::size_t way,
             bool is_insert);

  CacheGeometry geo_;
  std::vector<Line> lines_;           ///< sets × ways, row-major by set
  std::vector<std::uint32_t> plru_;   ///< per-set tree bits (kTreePlru)
  bool plru_applicable_ = false;
  std::uint64_t tick_ = 0;
  std::uint64_t rand_state_ = 0x9E3779B97F4A7C15ULL;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

/// Nehalem-ish default geometries used by MachineConfig.
namespace nehalem {
inline constexpr CacheGeometry kL1I{64, 4, 64};    // 16 KiB scaled model
inline constexpr CacheGeometry kL1D{64, 8, 64};    // 32 KiB
inline constexpr CacheGeometry kLlc{512, 16, 64};  // 512 KiB per-core slice
inline constexpr CacheGeometry kDtlb{16, 4, 4096};
inline constexpr CacheGeometry kItlb{16, 4, 4096};
}  // namespace nehalem

}  // namespace hmd::sim

#include "sim/events.h"

#include <string>

#include "support/check.h"

namespace hmd::sim {
namespace {

struct EventMeta {
  std::string_view name;
  EventUnit unit;
};

constexpr std::array<EventMeta, kEventCount> kMeta = {{
    {"cpu_cycles", EventUnit::kPipeline},
    {"instructions", EventUnit::kPipeline},
    {"cache_references", EventUnit::kLlc},
    {"cache_misses", EventUnit::kLlc},
    {"branch_instructions", EventUnit::kBranchUnit},
    {"branch_misses", EventUnit::kBranchUnit},
    {"bus_cycles", EventUnit::kPipeline},
    {"ref_cycles", EventUnit::kPipeline},
    {"stalled_cycles_frontend", EventUnit::kPipeline},
    {"stalled_cycles_backend", EventUnit::kPipeline},
    {"L1_dcache_loads", EventUnit::kL1Dcache},
    {"L1_dcache_load_misses", EventUnit::kL1Dcache},
    {"L1_dcache_stores", EventUnit::kL1Dcache},
    {"L1_dcache_store_misses", EventUnit::kL1Dcache},
    {"L1_dcache_prefetches", EventUnit::kL1Dcache},
    {"L1_icache_loads", EventUnit::kL1Icache},
    {"L1_icache_load_misses", EventUnit::kL1Icache},
    {"LLC_loads", EventUnit::kLlc},
    {"LLC_load_misses", EventUnit::kLlc},
    {"LLC_stores", EventUnit::kLlc},
    {"LLC_store_misses", EventUnit::kLlc},
    {"LLC_prefetches", EventUnit::kLlc},
    {"LLC_prefetch_misses", EventUnit::kLlc},
    {"dTLB_loads", EventUnit::kDtlb},
    {"dTLB_load_misses", EventUnit::kDtlb},
    {"dTLB_stores", EventUnit::kDtlb},
    {"dTLB_store_misses", EventUnit::kDtlb},
    {"iTLB_loads", EventUnit::kItlb},
    {"iTLB_load_misses", EventUnit::kItlb},
    {"branch_loads", EventUnit::kBranchUnit},
    {"branch_load_misses", EventUnit::kBranchUnit},
    {"node_loads", EventUnit::kNode},
    {"node_load_misses", EventUnit::kNode},
    {"node_stores", EventUnit::kNode},
    {"node_store_misses", EventUnit::kNode},
    {"node_prefetches", EventUnit::kNode},
    {"node_prefetch_misses", EventUnit::kNode},
    {"page_faults", EventUnit::kSoftware},
    {"context_switches", EventUnit::kSoftware},
    {"cpu_migrations", EventUnit::kSoftware},
    {"minor_faults", EventUnit::kSoftware},
    {"major_faults", EventUnit::kSoftware},
    {"alignment_faults", EventUnit::kSoftware},
    {"emulation_faults", EventUnit::kSoftware},
}};

constexpr std::array<Event, kEventCount> make_all() {
  std::array<Event, kEventCount> out{};
  for (std::size_t i = 0; i < kEventCount; ++i)
    out[i] = static_cast<Event>(i);
  return out;
}
constexpr auto kAll = make_all();

}  // namespace

std::string_view event_name(Event e) {
  const auto idx = static_cast<std::size_t>(e);
  HMD_REQUIRE(idx < kEventCount);
  return kMeta[idx].name;
}

Event event_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kEventCount; ++i)
    if (kMeta[i].name == name) return static_cast<Event>(i);
  throw PreconditionError("unknown perf event name: " + std::string(name));
}

EventUnit event_unit(Event e) {
  const auto idx = static_cast<std::size_t>(e);
  HMD_REQUIRE(idx < kEventCount);
  return kMeta[idx].unit;
}

bool is_software_event(Event e) {
  return event_unit(e) == EventUnit::kSoftware;
}

std::span<const Event> all_events() { return kAll; }

}  // namespace hmd::sim

#include "sim/branch_predictor.h"

#include "support/check.h"
#include "support/rng.h"

namespace hmd::sim {

std::string_view branch_predictor_kind_name(BranchPredictorKind kind) {
  switch (kind) {
    case BranchPredictorKind::kGshare: return "gshare";
    case BranchPredictorKind::kBimodal: return "bimodal";
    case BranchPredictorKind::kLocalHistory: return "local";
    case BranchPredictorKind::kTournament: return "tournament";
  }
  throw PreconditionError("unknown branch predictor kind");
}

BranchPredictor::BranchPredictor(BranchPredictorConfig cfg)
    : cfg_(cfg), btb_(cfg.btb) {
  HMD_REQUIRE(cfg_.history_bits >= 1 && cfg_.history_bits <= 24);
  const std::size_t entries = std::size_t{1} << cfg_.history_bits;
  mask_ = entries - 1;
  gshare_counters_.assign(entries, 1);  // weakly not-taken
  bimodal_counters_.assign(entries, 1);
  local_history_.assign(entries, 0);
  local_counters_.assign(entries, 1);
  chooser_.assign(entries, 2);  // weakly favour gshare
}

std::size_t BranchPredictor::gshare_index(std::uint64_t pc) const {
  return static_cast<std::size_t>((mix64(pc) ^ history_) & mask_);
}

std::size_t BranchPredictor::pc_index(std::uint64_t pc) const {
  return static_cast<std::size_t>(mix64(pc) & mask_);
}

std::size_t BranchPredictor::local_index(std::uint64_t pc) const {
  return static_cast<std::size_t>(
      (local_history_[pc_index(pc)] ^ mix64(pc * 3)) & mask_);
}

bool BranchPredictor::predict_gshare(std::uint64_t pc) const {
  return gshare_counters_[gshare_index(pc)] >= 2;
}

bool BranchPredictor::predict_bimodal(std::uint64_t pc) const {
  return bimodal_counters_[pc_index(pc)] >= 2;
}

bool BranchPredictor::predict_local(std::uint64_t pc) const {
  return local_counters_[local_index(pc)] >= 2;
}

void BranchPredictor::update_tables(std::uint64_t pc, bool taken) {
  auto bump = [taken](std::uint8_t& ctr) {
    if (taken && ctr < 3) ++ctr;
    if (!taken && ctr > 0) --ctr;
  };
  bump(gshare_counters_[gshare_index(pc)]);
  bump(bimodal_counters_[pc_index(pc)]);
  bump(local_counters_[local_index(pc)]);
  std::uint64_t& lh = local_history_[pc_index(pc)];
  lh = ((lh << 1) | (taken ? 1u : 0u)) & mask_;
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & mask_;
}

bool BranchPredictor::execute(std::uint64_t pc, bool taken) {
  ++branches_;
  last_btb_hit_ = btb_.access(pc);

  bool predicted_taken = false;
  switch (cfg_.kind) {
    case BranchPredictorKind::kGshare:
      predicted_taken = predict_gshare(pc);
      break;
    case BranchPredictorKind::kBimodal:
      predicted_taken = predict_bimodal(pc);
      break;
    case BranchPredictorKind::kLocalHistory:
      predicted_taken = predict_local(pc);
      break;
    case BranchPredictorKind::kTournament: {
      const bool g = predict_gshare(pc);
      const bool b = predict_bimodal(pc);
      predicted_taken = chooser_[pc_index(pc)] >= 2 ? g : b;
      // Train the chooser toward whichever component was right.
      if (g != b) {
        std::uint8_t& ch = chooser_[pc_index(pc)];
        if (g == taken && ch < 3) ++ch;
        if (b == taken && ch > 0) --ch;
      }
      break;
    }
  }
  const bool correct = predicted_taken == taken;
  if (!correct) ++direction_misses_;
  update_tables(pc, taken);
  return correct;
}

void BranchPredictor::reset() {
  gshare_counters_.assign(gshare_counters_.size(), 1);
  bimodal_counters_.assign(bimodal_counters_.size(), 1);
  local_history_.assign(local_history_.size(), 0);
  local_counters_.assign(local_counters_.size(), 1);
  chooser_.assign(chooser_.size(), 2);
  history_ = 0;
  btb_.reset();
  last_btb_hit_ = false;
  branches_ = 0;
  direction_misses_ = 0;
}

}  // namespace hmd::sim

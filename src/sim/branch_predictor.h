// Branch prediction unit model: selectable direction predictor plus a
// set-associative branch target buffer (BTB).
//
// Direction predictor organisations (selectable for the microarchitecture-
// sensitivity ablation; the default matches Nehalem-era cores):
//   kGshare      — global history XOR pc indexing one 2-bit counter table
//   kBimodal     — per-pc 2-bit counters, no history
//   kLocalHistory— per-pc local history indexing a pattern table
//   kTournament  — gshare + bimodal with a per-pc chooser (Alpha 21264)
//
// Event mapping (matches how perf attributes the generic branch events):
//   branch_loads        — BTB lookups (one per executed branch)
//   branch_load_misses  — BTB misses (target unknown at fetch)
//   branch_misses       — direction mispredictions
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/cache.h"

namespace hmd::sim {

enum class BranchPredictorKind : std::uint8_t {
  kGshare,
  kBimodal,
  kLocalHistory,
  kTournament,
};

std::string_view branch_predictor_kind_name(BranchPredictorKind kind);

struct BranchPredictorConfig {
  BranchPredictorKind kind = BranchPredictorKind::kGshare;
  std::uint32_t history_bits = 12;   ///< global/local history length
  CacheGeometry btb{128, 4, 4};      ///< 512-entry BTB, 4-way
};

class BranchPredictor {
 public:
  explicit BranchPredictor(BranchPredictorConfig cfg = {});

  /// Record the outcome of one executed branch at `pc`.
  /// Returns true if the *direction* was predicted correctly.
  bool execute(std::uint64_t pc, bool taken);

  /// True if the most recent execute() hit in the BTB.
  bool last_btb_hit() const { return last_btb_hit_; }

  std::uint64_t branches() const { return branches_; }
  std::uint64_t direction_misses() const { return direction_misses_; }
  std::uint64_t btb_lookups() const { return btb_.accesses(); }
  std::uint64_t btb_misses() const { return btb_.misses(); }
  BranchPredictorKind kind() const { return cfg_.kind; }

  void reset();

 private:
  bool predict_gshare(std::uint64_t pc) const;
  bool predict_bimodal(std::uint64_t pc) const;
  bool predict_local(std::uint64_t pc) const;
  void update_tables(std::uint64_t pc, bool taken);

  std::size_t gshare_index(std::uint64_t pc) const;
  std::size_t pc_index(std::uint64_t pc) const;
  std::size_t local_index(std::uint64_t pc) const;

  BranchPredictorConfig cfg_;
  std::uint64_t mask_ = 0;
  std::vector<std::uint8_t> gshare_counters_;
  std::vector<std::uint8_t> bimodal_counters_;
  std::vector<std::uint64_t> local_history_;
  std::vector<std::uint8_t> local_counters_;
  std::vector<std::uint8_t> chooser_;  ///< >=2 favours gshare
  std::uint64_t history_ = 0;
  Cache btb_;
  bool last_btb_hit_ = false;
  std::uint64_t branches_ = 0;
  std::uint64_t direction_misses_ = 0;
};

}  // namespace hmd::sim

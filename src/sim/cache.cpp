#include "sim/cache.h"

namespace hmd::sim {

namespace {
constexpr bool is_pow2(std::uint32_t v) { return v && (v & (v - 1)) == 0; }
}  // namespace

std::string_view replacement_policy_name(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru: return "LRU";
    case ReplacementPolicy::kFifo: return "FIFO";
    case ReplacementPolicy::kRandom: return "random";
    case ReplacementPolicy::kTreePlru: return "tree-PLRU";
  }
  throw PreconditionError("unknown replacement policy");
}

Cache::Cache(CacheGeometry geo) : geo_(geo) {
  HMD_REQUIRE_MSG(is_pow2(geo_.sets), "cache sets must be a power of two");
  HMD_REQUIRE(geo_.ways >= 1);
  HMD_REQUIRE(is_pow2(geo_.line_bytes));
  lines_.resize(static_cast<std::size_t>(geo_.sets) * geo_.ways);
  plru_applicable_ =
      geo_.policy == ReplacementPolicy::kTreePlru && is_pow2(geo_.ways);
  if (plru_applicable_) plru_.assign(geo_.sets, 0);
}

std::size_t Cache::pick_victim(std::size_t set, std::size_t base) {
  // Invalid way first, under every policy.
  for (std::size_t w = 0; w < geo_.ways; ++w)
    if (!lines_[base + w].valid) return base + w;

  switch (geo_.policy) {
    case ReplacementPolicy::kRandom: {
      rand_state_ = rand_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      return base + ((rand_state_ >> 33) % geo_.ways);
    }
    case ReplacementPolicy::kTreePlru:
      if (plru_applicable_) {
        // Walk the tree: each bit says which half was touched less recently.
        std::uint32_t bits = plru_[set];
        std::size_t node = 0;  // index within the implicit tree
        std::size_t lo = 0, span = geo_.ways;
        while (span > 1) {
          const bool right = (bits >> node) & 1u;
          span /= 2;
          if (right) lo += span;
          node = 2 * node + 1 + (right ? 1 : 0);
        }
        return base + lo;
      }
      [[fallthrough]];
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // Both use the stamp; FIFO simply never refreshes it on hits.
      std::size_t victim = base;
      std::uint64_t oldest = ~0ULL;
      for (std::size_t w = 0; w < geo_.ways; ++w) {
        if (lines_[base + w].stamp < oldest) {
          oldest = lines_[base + w].stamp;
          victim = base + w;
        }
      }
      return victim;
    }
  }
  throw InvariantError("unreachable replacement policy");
}

void Cache::touch(std::size_t set, std::size_t base, std::size_t way,
                  bool is_insert) {
  ++tick_;
  Line& line = lines_[base + way];
  switch (geo_.policy) {
    case ReplacementPolicy::kLru:
      line.stamp = tick_;
      break;
    case ReplacementPolicy::kFifo:
      if (is_insert) line.stamp = tick_;
      break;
    case ReplacementPolicy::kRandom:
      break;
    case ReplacementPolicy::kTreePlru:
      if (plru_applicable_) {
        // Flip the path bits away from the touched way.
        std::uint32_t& bits = plru_[set];
        std::size_t node = 0;
        std::size_t lo = 0, span = geo_.ways;
        while (span > 1) {
          span /= 2;
          const bool right = way >= lo + span;
          // Point the bit at the *other* half.
          if (right) {
            bits &= ~(1u << node);
            lo += span;
          } else {
            bits |= (1u << node);
          }
          node = 2 * node + 1 + (right ? 1 : 0);
        }
      } else {
        line.stamp = tick_;
      }
      break;
  }
}

bool Cache::access(std::uint64_t address) {
  ++accesses_;
  const std::size_t set = set_index(address);
  const std::size_t base = set * geo_.ways;
  const std::uint64_t tag = tag_of(address);

  for (std::size_t w = 0; w < geo_.ways; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      touch(set, base, w, /*is_insert=*/false);
      return true;
    }
  }
  ++misses_;
  const std::size_t victim = pick_victim(set, base);
  lines_[victim] = Line{tag, 0, true};
  touch(set, base, victim - base, /*is_insert=*/true);
  return false;
}

bool Cache::probe(std::uint64_t address) const {
  const std::size_t base = set_index(address) * geo_.ways;
  const std::uint64_t tag = tag_of(address);
  for (std::size_t w = 0; w < geo_.ways; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

void Cache::fill(std::uint64_t address) {
  const std::size_t set = set_index(address);
  const std::size_t base = set * geo_.ways;
  const std::uint64_t tag = tag_of(address);
  for (std::size_t w = 0; w < geo_.ways; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      touch(set, base, w, /*is_insert=*/false);
      return;  // already present
    }
  }
  const std::size_t victim = pick_victim(set, base);
  lines_[victim] = Line{tag, 0, true};
  touch(set, base, victim - base, /*is_insert=*/true);
}

void Cache::reset() {
  flush();
  tick_ = 0;
  accesses_ = 0;
  misses_ = 0;
  rand_state_ = 0x9E3779B97F4A7C15ULL;
}

void Cache::flush() {
  for (Line& line : lines_) line.valid = false;
  if (plru_applicable_) plru_.assign(geo_.sets, 0);
}

void Cache::pollute(double fraction, std::uint64_t mix) {
  if (fraction <= 0.0) return;
  const auto threshold = static_cast<std::uint64_t>(
      fraction * 1024.0);  // fraction in 1/1024 units
  std::uint64_t h = mix | 1;
  for (Line& line : lines_) {
    // Cheap LCG walk; quality is irrelevant for eviction noise.
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((h >> 33) % 1024 < threshold) line.valid = false;
  }
}

}  // namespace hmd::sim

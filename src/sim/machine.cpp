#include "sim/machine.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace hmd::sim {
namespace {

constexpr std::uint64_t kPageBytes = 4096;
constexpr std::uint64_t kUserCodeBase = 0x0000'4000'0000ULL;
constexpr std::uint64_t kUserDataBase = 0x0000'7f00'0000ULL;
constexpr std::uint64_t kKernelCodeBase = 0xffff'8000'0000ULL;
constexpr std::uint64_t kKernelDataBase = 0xffff'c000'0000ULL;

// Kernel bursts behave like a fixed small kernel working set.
constexpr std::uint32_t kKernelCodePages = 20;
constexpr std::uint32_t kKernelBlocksPerPage = 12;
constexpr std::uint32_t kKernelDataPages = 48;

}  // namespace

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      l1i_(cfg.l1i),
      l1d_(cfg.l1d),
      llc_(cfg.llc),
      dtlb_(cfg.dtlb),
      itlb_(cfg.itlb),
      bp_(cfg.branch) {}

void Machine::start_run(const AppProfile& app, std::uint32_t run_index) {
  HMD_REQUIRE_MSG(!app.phases.empty(), "application must have >= 1 phase");
  HMD_REQUIRE(app.intervals >= 1);
  reset();
  app_ = &app;
  run_index_ = run_index;
  interval_ = 0;
  total_intervals_ = app.intervals;
  // Per-run randomness: the paper re-executes the app for every 4-event
  // batch, so batch-to-batch counts differ by natural run noise.
  std::uint64_t s = app.seed;
  layout_seed_ = splitmix64(s) ^ mix64(0x1007ULL + run_index);
  rng_.reseed(mix64(app.seed * 0x9E37ULL + run_index));
  user_pc_ = {};
  kernel_pc_ = {};
  seq_ptr_ = 0;
}

void Machine::reset() {
  l1i_.reset();
  l1d_.reset();
  llc_.reset();
  dtlb_.reset();
  itlb_.reset();
  bp_.reset();
  app_ = nullptr;
  interval_ = 0;
  total_intervals_ = 0;
  fetch_slot_ = 0;
  need_fetch_ = true;
  extra_frontend_ = extra_backend_ = 0.0;
}

const PhaseSpec& Machine::phase_for_interval(std::uint32_t interval) const {
  // Phases partition the run proportionally to their weights, in order —
  // e.g. an app that unpacks, then scans, then exfiltrates.
  double total = 0.0;
  for (const auto& ph : app_->phases) total += std::max(ph.weight, 1e-9);
  const double pos =
      (static_cast<double>(interval) + 0.5) /
      static_cast<double>(total_intervals_) * total;
  double acc = 0.0;
  for (const auto& ph : app_->phases) {
    acc += std::max(ph.weight, 1e-9);
    if (pos <= acc) return ph;
  }
  return app_->phases.back();
}

std::uint64_t Machine::code_address(bool kernel, const CodePoint& at,
                                    std::uint32_t instr_slot) const {
  const std::uint64_t base = kernel ? kKernelCodeBase : kUserCodeBase;
  // Scatter pages across the address space per run (ASLR-like) so that the
  // cache-set mapping differs between runs/applications.
  const std::uint64_t page_id =
      kernel ? at.page
             : (mix64(layout_seed_ ^ (0xC0DEULL + at.page)) & 0x3FF);
  const std::uint64_t block_bytes = 64;  // one basic block ~ one line
  return base + page_id * kPageBytes + at.block * block_bytes +
         (instr_slot % 16) * 4;
}

std::uint64_t Machine::data_address(bool kernel, const PhaseSpec& ph,
                                    bool is_store, Rng& rng) {
  if (kernel) {
    const std::uint64_t page = rng.below(kKernelDataPages);
    return kKernelDataBase + page * kPageBytes + (rng.below(64) * 64);
  }
  const std::uint32_t pages = std::max<std::uint32_t>(ph.data_pages, 1);
  const auto hot_pages = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(ph.hot_fraction * pages)));

  const bool scatter_store = is_store && rng.chance(ph.store_scatter);
  std::uint64_t page;
  bool sequential = false;
  if (!scatter_store && rng.chance(ph.hot_access_prob)) {
    if (rng.chance(ph.sequential_prob)) {
      // Streaming pointer walks the hot region with the phase stride.
      const std::uint64_t hot_bytes =
          static_cast<std::uint64_t>(hot_pages) * kPageBytes;
      seq_ptr_ = (seq_ptr_ + std::max<std::uint32_t>(ph.stride_bytes, 1)) %
                 hot_bytes;
      sequential = true;
      page = seq_ptr_ / kPageBytes;
      const std::uint64_t page_id = mix64(layout_seed_ ^ (0xDA7AULL + page));
      return kUserDataBase + (page_id & 0xFFF) * kPageBytes +
             (seq_ptr_ % kPageBytes);
    }
    page = rng.below(hot_pages);
  } else {
    page = hot_pages + rng.below(std::max<std::uint32_t>(pages - hot_pages, 1));
  }
  (void)sequential;
  const std::uint64_t page_id = mix64(layout_seed_ ^ (0xDA7AULL + page));
  return kUserDataBase + (page_id & 0xFFF) * kPageBytes + rng.below(64) * 64;
}

void Machine::memory_access(std::uint64_t addr, bool is_store, bool sequential,
                            const PhaseSpec& ph, Rng& rng, EventCounts& out) {
  // dTLB.
  const bool dtlb_hit = dtlb_.access(addr & ~(kPageBytes - 1));
  if (is_store) {
    ++out[Event::kDtlbStores];
    if (!dtlb_hit) ++out[Event::kDtlbStoreMisses];
  } else {
    ++out[Event::kDtlbLoads];
    if (!dtlb_hit) ++out[Event::kDtlbLoadMisses];
  }
  if (!dtlb_hit) extra_backend_ += cfg_.tlb_miss_penalty;

  // L1D.
  const bool l1_hit = l1d_.access(addr);
  if (is_store) {
    ++out[Event::kL1DcacheStores];
    if (!l1_hit) ++out[Event::kL1DcacheStoreMisses];
  } else {
    ++out[Event::kL1DcacheLoads];
    if (!l1_hit) ++out[Event::kL1DcacheLoadMisses];
  }
  if (l1_hit) return;
  extra_backend_ += cfg_.l1d_miss_penalty;

  // LLC.
  const bool llc_hit = llc_.access(addr);
  ++out[Event::kCacheReferences];
  if (is_store) {
    ++out[Event::kLlcStores];
    if (!llc_hit) ++out[Event::kLlcStoreMisses];
  } else {
    ++out[Event::kLlcLoads];
    if (!llc_hit) ++out[Event::kLlcLoadMisses];
  }

  if (!llc_hit) {
    ++out[Event::kCacheMisses];
    extra_backend_ += cfg_.llc_miss_penalty;
    // Memory reaches a NUMA node; remote with the phase's probability.
    const bool remote = rng.chance(ph.numa_remote_frac);
    if (is_store) {
      ++out[Event::kNodeStores];
      if (remote) ++out[Event::kNodeStoreMisses];
    } else {
      ++out[Event::kNodeLoads];
      if (remote) ++out[Event::kNodeLoadMisses];
    }
    if (remote) extra_backend_ += cfg_.remote_node_penalty;
  }

  // Next-line prefetch on a sequential L1D miss.
  if (sequential) {
    const std::uint64_t next = addr + l1d_.geometry().line_bytes;
    ++out[Event::kL1DcachePrefetches];
    l1d_.fill(next);
    ++out[Event::kLlcPrefetches];
    if (!llc_.probe(next)) {
      ++out[Event::kLlcPrefetchMisses];
      ++out[Event::kNodePrefetches];
      if (rng.chance(ph.numa_remote_frac)) ++out[Event::kNodePrefetchMisses];
      llc_.fill(next);
    }
  }
}

void Machine::execute_instruction(const PhaseSpec& ph, bool kernel, Rng& rng,
                                  EventCounts& out) {
  ++out[Event::kInstructions];
  CodePoint& pc = kernel ? kernel_pc_ : user_pc_;
  const std::uint32_t pages = kernel ? kKernelCodePages
                                     : std::max<std::uint32_t>(ph.code_pages, 1);
  const std::uint32_t blocks =
      kernel ? kKernelBlocksPerPage
             : std::max<std::uint32_t>(ph.blocks_per_page, 1);

  // Instruction fetch: iTLB + L1I at 16-byte (4-instruction) fetch-group
  // granularity — a fetch happens on control-flow redirects and every
  // fourth sequential slot, as in a real front end.
  const std::uint64_t fetch = code_address(kernel, pc, fetch_slot_);
  if (need_fetch_ || fetch_slot_ % 4 == 0) {
    need_fetch_ = false;
    ++out[Event::kItlbLoads];
    if (!itlb_.access(fetch & ~(kPageBytes - 1))) {
      ++out[Event::kItlbLoadMisses];
      extra_frontend_ += cfg_.tlb_miss_penalty;
    }
    ++out[Event::kL1IcacheLoads];
    if (!l1i_.access(fetch)) {
      ++out[Event::kL1IcacheLoadMisses];
      extra_frontend_ += cfg_.l1i_miss_penalty;
      // Instruction fetch misses also consult the LLC.
      ++out[Event::kCacheReferences];
      if (!llc_.access(fetch)) {
        ++out[Event::kCacheMisses];
        extra_frontend_ += cfg_.llc_miss_penalty;
      }
    }
  }
  ++fetch_slot_;

  const double r = rng.uniform();
  if (r < ph.frac_branch) {
    // A branch: resolve the site's bias deterministically from its address
    // so gshare can learn stable sites, then add per-dynamic noise.
    ++out[Event::kBranchInstructions];
    ++out[Event::kBranchLoads];  // BTB lookup
    const std::uint64_t site = fetch & ~63ULL;
    const std::uint64_t h = mix64(site ^ layout_seed_);
    const double site_bias =
        0.5 + (ph.branch_bias - 0.5) *
                  ((h & 1) ? 1.0 : -1.0);  // taken- or not-taken-biased site
    bool taken = rng.chance(site_bias);
    if (rng.chance(ph.branch_noise)) taken = !taken;

    const bool dir_ok = bp_.execute(site, taken);
    if (!bp_.last_btb_hit()) {
      ++out[Event::kBranchLoadMisses];
      extra_frontend_ += cfg_.btb_miss_penalty;
    }
    if (!dir_ok) {
      ++out[Event::kBranchMisses];
      extra_frontend_ += cfg_.branch_miss_penalty;
    }

    if (taken) {
      if (rng.chance(ph.code_jump_spread)) pc.page = static_cast<std::uint32_t>(rng.below(pages));
      pc.block = static_cast<std::uint32_t>(rng.below(blocks));
      need_fetch_ = true;  // redirect: next instruction refetches
    } else {
      pc.block = (pc.block + 1) % blocks;
      if (pc.block == 0) pc.page = (pc.page + 1) % pages;
      need_fetch_ = true;  // fall-through to a new block address
    }
  } else if (r < ph.frac_branch + ph.frac_load) {
    const bool seq = !kernel && rng.chance(ph.hot_access_prob * ph.sequential_prob);
    const std::uint64_t addr = data_address(kernel, ph, false, rng);
    memory_access(addr, false, seq, ph, rng, out);
  } else if (r < ph.frac_branch + ph.frac_load + ph.frac_store) {
    const std::uint64_t addr = data_address(kernel, ph, true, rng);
    memory_access(addr, true, false, ph, rng, out);
  }
  // else: ALU/other — fetch cost only.
}

void Machine::context_switch(EventCounts& out) {
  ++out[Event::kContextSwitches];
  // The incoming context invalidates the (untagged) TLBs, perturbs the
  // small L1I, and pollutes the data caches — this is the mechanism that
  // couples OS activity to TLB/cache-miss events in the captured data and
  // the dominant miss-count noise source for interactive benign software.
  dtlb_.flush();
  itlb_.flush();
  l1i_.flush();
  l1d_.pollute(0.5, rng_());
  llc_.pollute(0.12, rng_());
  extra_frontend_ += cfg_.context_switch_penalty;
}

EventCounts Machine::next_interval() {
  HMD_REQUIRE_MSG(running(), "no active run — call start_run() first");
  const PhaseSpec& ph = phase_for_interval(interval_);
  EventCounts out{};
  extra_frontend_ = extra_backend_ = 0.0;

  double jitter =
      std::exp(rng_.gaussian(0.0, std::max(ph.instructions_jitter, 0.0)));
  // Scheduler preemption: some 10 ms windows only partially belong to the
  // profiled application, shrinking every volume-type count.
  double ctx_extra = 0.0;
  if (rng_.chance(cfg_.deschedule_prob)) {
    jitter *= rng_.uniform(cfg_.deschedule_min_share,
                           cfg_.deschedule_max_share);
    ctx_extra = 2.0;
  }
  const auto n_instr = static_cast<std::uint64_t>(
      std::max(64.0, ph.instructions_mean * jitter));

  // Pre-draw the OS noise for this interval and spread it over the stream.
  const std::uint64_t n_ctx =
      rng_.poisson(ph.context_switch_rate + ctx_extra);
  const std::uint64_t ctx_every =
      n_ctx > 0 ? std::max<std::uint64_t>(1, n_instr / (n_ctx + 1)) : 0;

  const double syscall_p = ph.syscalls_per_kilo_instr / 1000.0;

  for (std::uint64_t i = 0; i < n_instr; ++i) {
    if (ctx_every != 0 && i > 0 && i % ctx_every == 0 &&
        out[Event::kContextSwitches] < n_ctx) {
      context_switch(out);
    }
    execute_instruction(ph, /*kernel=*/false, rng_, out);
    if (syscall_p > 0.0 && rng_.chance(syscall_p)) {
      // Kernel burst: syscall entry runs kernel code against kernel data.
      // Entering and leaving the kernel both redirect the front end.
      const auto burst = static_cast<std::uint64_t>(
          std::max(8.0, rng_.gaussian(ph.kernel_burst_instr,
                                      ph.kernel_burst_instr * 0.2)));
      need_fetch_ = true;
      for (std::uint64_t k = 0; k < burst; ++k)
        execute_instruction(ph, /*kernel=*/true, rng_, out);
      need_fetch_ = true;
    }
  }

  // Software events beyond context switches.
  const std::uint64_t minor = rng_.poisson(ph.minor_fault_rate +
                                           (interval_ == 0 ? 40.0 : 0.0));
  const std::uint64_t major = rng_.poisson(ph.major_fault_rate);
  out[Event::kMinorFaults] = minor;
  out[Event::kMajorFaults] = major;
  out[Event::kPageFaults] = minor + major;
  out[Event::kCpuMigrations] = rng_.poisson(ph.migration_rate);
  out[Event::kAlignmentFaults] = rng_.poisson(ph.alignment_fault_rate);
  out[Event::kEmulationFaults] = rng_.poisson(ph.emulation_fault_rate);
  extra_backend_ +=
      static_cast<double>(major) * 2.0 * cfg_.context_switch_penalty;

  // Cycle accounting from the penalty model.
  const double busy =
      static_cast<double>(out[Event::kInstructions]) * cfg_.base_cpi;
  const double cycles = busy + extra_frontend_ + extra_backend_;
  out[Event::kCpuCycles] = static_cast<std::uint64_t>(cycles);
  out[Event::kStalledCyclesFrontend] =
      static_cast<std::uint64_t>(extra_frontend_);
  out[Event::kStalledCyclesBackend] =
      static_cast<std::uint64_t>(extra_backend_);
  out[Event::kRefCycles] = out[Event::kCpuCycles];
  out[Event::kBusCycles] = out[Event::kCpuCycles] / 4;

  ++interval_;
  return out;
}

}  // namespace hmd::sim

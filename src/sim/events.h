// The 44 CPU event taxonomy captured by the (simulated) perf subsystem.
//
// The paper extracts "44 CPU events available under Perf" on an Intel Xeon
// X5550 and reduces them to the 16 most important (paper Table 1). This
// header enumerates the same generic perf event set: the 10 generalized
// hardware events, the 27 hw-cache events (L1D/L1I/LLC/dTLB/iTLB/branch/node
// ops × access/miss), and 7 software events, for a total of 44.
//
// Every EventCounts produced by the simulator carries all 44; the PMU layer
// (src/hpc) then enforces the paper's constraint that only 4 can be *read*
// per run.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace hmd::sim {

/// Generic perf-style CPU events, in stable enumeration order.
enum class Event : std::uint8_t {
  // Generalized hardware events.
  kCpuCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchInstructions,
  kBranchMisses,
  kBusCycles,
  kRefCycles,
  kStalledCyclesFrontend,
  kStalledCyclesBackend,
  // L1 data cache.
  kL1DcacheLoads,
  kL1DcacheLoadMisses,
  kL1DcacheStores,
  kL1DcacheStoreMisses,
  kL1DcachePrefetches,
  // L1 instruction cache.
  kL1IcacheLoads,
  kL1IcacheLoadMisses,
  // Last-level cache.
  kLlcLoads,
  kLlcLoadMisses,
  kLlcStores,
  kLlcStoreMisses,
  kLlcPrefetches,
  kLlcPrefetchMisses,
  // Data TLB.
  kDtlbLoads,
  kDtlbLoadMisses,
  kDtlbStores,
  kDtlbStoreMisses,
  // Instruction TLB.
  kItlbLoads,
  kItlbLoadMisses,
  // Branch prediction unit (BTB) accesses.
  kBranchLoads,
  kBranchLoadMisses,
  // NUMA node (local-socket memory controller) traffic.
  kNodeLoads,
  kNodeLoadMisses,
  kNodeStores,
  kNodeStoreMisses,
  kNodePrefetches,
  kNodePrefetchMisses,
  // Software events.
  kPageFaults,
  kContextSwitches,
  kCpuMigrations,
  kMinorFaults,
  kMajorFaults,
  kAlignmentFaults,
  kEmulationFaults,
};

/// Number of distinct events (the paper's "44 CPU events").
inline constexpr std::size_t kEventCount = 44;

/// perf-style spelling of each event (e.g. "branch_instructions").
std::string_view event_name(Event e);

/// Parse an event from its perf-style name; throws PreconditionError if
/// the name is unknown.
Event event_from_name(std::string_view name);

/// The microarchitectural unit an event is attributed to — used by the
/// documentation generators and by PMU scheduling diagnostics.
enum class EventUnit : std::uint8_t {
  kPipeline,
  kBranchUnit,
  kL1Dcache,
  kL1Icache,
  kLlc,
  kDtlb,
  kItlb,
  kNode,
  kSoftware,
};

EventUnit event_unit(Event e);

/// True for the 7 kernel-maintained software events (these do not occupy a
/// hardware counter register and are always readable).
bool is_software_event(Event e);

/// All 44 events in enumeration order.
std::span<const Event> all_events();

/// One 10 ms interval's worth of event counts, indexed by Event.
struct EventCounts {
  std::array<std::uint64_t, kEventCount> value{};

  std::uint64_t& operator[](Event e) {
    return value[static_cast<std::size_t>(e)];
  }
  std::uint64_t operator[](Event e) const {
    return value[static_cast<std::size_t>(e)];
  }
};

}  // namespace hmd::sim

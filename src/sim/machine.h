// The simulated machine: a functional microarchitecture model of one core
// of the paper's Intel Xeon X5550 (Nehalem) testbed.
//
// A Machine executes an AppProfile one 10 ms interval at a time. For each
// interval it synthesises an instruction trace from the active PhaseSpec and
// drives it through:
//   * a gshare branch predictor + BTB          (branch_* events)
//   * L1I / L1D / LLC set-associative caches   (L1_*, LLC_*, cache_* events)
//   * iTLB / dTLB                              (i/dTLB_* events)
//   * a NUMA memory interface                  (node_* events)
//   * a next-line prefetcher                   (*_prefetch* events)
// and synthesises the 7 software events from the phase's OS-noise rates.
// Context switches genuinely flush the TLBs, and syscalls genuinely execute
// kernel-space bursts that compete for the same structures, so the
// cross-event correlation structure of the output is mechanical, not
// hand-painted.
//
// Cycle counts come from a penalty-based CPI model on top of the functional
// miss counts (Nehalem-ish penalties; see machine.cpp).
#pragma once

#include <cstdint>

#include "sim/app_profile.h"
#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/events.h"
#include "support/rng.h"

namespace hmd::sim {

/// Structural configuration of the simulated core.
struct MachineConfig {
  CacheGeometry l1i = nehalem::kL1I;
  CacheGeometry l1d = nehalem::kL1D;
  CacheGeometry llc = nehalem::kLlc;
  CacheGeometry dtlb = nehalem::kDtlb;
  CacheGeometry itlb = nehalem::kItlb;
  BranchPredictorConfig branch{};

  // CPI / penalty model (cycles).
  double base_cpi = 0.8;
  double branch_miss_penalty = 17.0;
  double btb_miss_penalty = 6.0;
  double l1d_miss_penalty = 6.0;
  double l1i_miss_penalty = 8.0;
  double llc_miss_penalty = 110.0;
  double remote_node_penalty = 90.0;
  double tlb_miss_penalty = 26.0;
  double context_switch_penalty = 4000.0;

  // OS scheduler model: with this probability an interval loses part of its
  // timeslice to other tasks, scaling the instruction volume down. This is
  // the dominant noise source on volume-type events in real perf data.
  double deschedule_prob = 0.10;
  double deschedule_min_share = 0.35;
  double deschedule_max_share = 0.75;
};

/// Executes application profiles and reports per-interval event counts.
///
/// A Machine is *stateful across intervals of one run* (caches stay warm)
/// and must be `reset()` between runs; the hpc::Container wrapper does this
/// automatically, mirroring the paper's destroy-the-LXC-container-per-run
/// protocol.
class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});

  /// Begin a run of `app`. `run_index` differentiates the 11 capture
  /// batches: the paper re-executes the application per batch, so two runs
  /// see statistically identical but not bit-identical behaviour.
  void start_run(const AppProfile& app, std::uint32_t run_index);

  /// True while the current run has intervals left.
  bool running() const { return app_ != nullptr && interval_ < total_intervals_; }

  /// Execute the next 10 ms interval and return all 44 event counts.
  /// The PMU layer decides which of these are architecturally visible.
  EventCounts next_interval();

  /// Clear all microarchitectural and run state.
  void reset();

  const MachineConfig& config() const { return cfg_; }

 private:
  struct CodePoint {
    std::uint32_t page = 0;
    std::uint32_t block = 0;
  };

  const PhaseSpec& phase_for_interval(std::uint32_t interval) const;
  std::uint64_t code_address(bool kernel, const CodePoint& at,
                             std::uint32_t instr_slot) const;
  std::uint64_t data_address(bool kernel, const PhaseSpec& ph, bool is_store,
                             Rng& rng);
  void execute_instruction(const PhaseSpec& ph, bool kernel, Rng& rng,
                           EventCounts& out);
  void memory_access(std::uint64_t addr, bool is_store, bool sequential,
                     const PhaseSpec& ph, Rng& rng, EventCounts& out);
  void context_switch(EventCounts& out);

  MachineConfig cfg_;
  Cache l1i_, l1d_, llc_, dtlb_, itlb_;
  BranchPredictor bp_;

  const AppProfile* app_ = nullptr;
  std::uint32_t run_index_ = 0;
  std::uint32_t interval_ = 0;
  std::uint32_t total_intervals_ = 0;
  std::uint64_t layout_seed_ = 0;  ///< per-run ASLR-style address layout
  Rng rng_{0};

  CodePoint user_pc_{};
  CodePoint kernel_pc_{};
  std::uint64_t seq_ptr_ = 0;    ///< streaming-access pointer within hot set
  std::uint32_t fetch_slot_ = 0; ///< advancing instruction slot in a block
  bool need_fetch_ = true;       ///< control flow forces a refetch

  // Penalty accumulators for the interval being simulated.
  double extra_frontend_ = 0.0;
  double extra_backend_ = 0.0;
};

}  // namespace hmd::sim

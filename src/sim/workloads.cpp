#include "sim/workloads.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

#include "support/check.h"
#include "support/rng.h"

namespace hmd::sim {
namespace {

// --- per-instance jitter helpers -----------------------------------------

double jit(Rng& rng, double v, double rel) {
  return v * std::exp(rng.gaussian(0.0, rel));
}

std::uint32_t jit_u(Rng& rng, std::uint32_t v, double rel) {
  const double j = jit(rng, static_cast<double>(v), rel);
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(j)));
}

double clampp(double v, double lo, double hi) {
  return std::clamp(v, lo, hi);
}

/// Apply bounded multiplicative jitter to every tunable of a phase.
void jitter_phase(PhaseSpec& ph, Rng& rng) {
  ph.instructions_mean = jit(rng, ph.instructions_mean, 0.10);
  ph.frac_branch = clampp(jit(rng, ph.frac_branch, 0.08), 0.02, 0.40);
  ph.frac_load = clampp(jit(rng, ph.frac_load, 0.07), 0.05, 0.45);
  ph.frac_store = clampp(jit(rng, ph.frac_store, 0.10), 0.01, 0.30);
  ph.branch_bias = clampp(jit(rng, ph.branch_bias, 0.035), 0.55, 0.99);
  ph.branch_noise = clampp(jit(rng, ph.branch_noise, 0.20), 0.0, 0.45);
  ph.code_jump_spread = clampp(jit(rng, ph.code_jump_spread, 0.15), 0.0, 0.9);
  ph.code_pages = jit_u(rng, ph.code_pages, 0.15);
  ph.data_pages = jit_u(rng, ph.data_pages, 0.15);
  ph.hot_fraction = clampp(jit(rng, ph.hot_fraction, 0.15), 0.01, 0.9);
  ph.hot_access_prob = clampp(jit(rng, ph.hot_access_prob, 0.06), 0.1, 0.99);
  ph.sequential_prob = clampp(jit(rng, ph.sequential_prob, 0.10), 0.0, 0.99);
  ph.store_scatter = clampp(jit(rng, ph.store_scatter, 0.15), 0.0, 0.95);
  ph.numa_remote_frac = clampp(jit(rng, ph.numa_remote_frac, 0.25), 0.0, 0.6);
  ph.syscalls_per_kilo_instr = jit(rng, ph.syscalls_per_kilo_instr, 0.25);
  ph.kernel_burst_instr = jit(rng, ph.kernel_burst_instr, 0.15);
  ph.context_switch_rate = jit(rng, ph.context_switch_rate, 0.30);
  ph.migration_rate = jit(rng, ph.migration_rate, 0.30);
  ph.minor_fault_rate = jit(rng, ph.minor_fault_rate, 0.30);
  ph.major_fault_rate = jit(rng, ph.major_fault_rate, 0.30);
}

// --- template table --------------------------------------------------------

struct Template {
  const char* name;
  const char* family;
  std::function<std::vector<PhaseSpec>()> phases;
};

/// Shorthand phase builder: start from defaults, tweak via lambda.
PhaseSpec phase(const char* name, const std::function<void(PhaseSpec&)>& fn) {
  PhaseSpec ph;
  ph.name = name;
  fn(ph);
  return ph;
}

const std::vector<Template>& benign_templates() {
  static const std::vector<Template> kTemplates = {
      {"mibench.qsort", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("sort", [](PhaseSpec& p) {
           p.instructions_mean = 13000;
           p.frac_branch = 0.18;
           p.frac_load = 0.26;
           p.frac_store = 0.10;
           p.branch_bias = 0.80;
           p.branch_noise = 0.07;
           p.code_pages = 3;
           p.data_pages = 60;
           p.hot_fraction = 0.2;
           p.sequential_prob = 0.40;
           p.syscalls_per_kilo_instr = 0.2;
         })};
       }},
      {"mibench.dijkstra", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("relax", [](PhaseSpec& p) {
           p.instructions_mean = 11000;
           p.frac_branch = 0.16;
           p.frac_load = 0.30;
           p.frac_store = 0.07;
           p.branch_bias = 0.86;
           p.data_pages = 60;
           p.hot_fraction = 0.12;
           p.hot_access_prob = 0.7;
           p.sequential_prob = 0.20;
           p.syscalls_per_kilo_instr = 0.2;
         })};
       }},
      {"mibench.sha", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("rounds", [](PhaseSpec& p) {
           p.instructions_mean = 15000;
           p.frac_branch = 0.10;
           p.frac_load = 0.18;
           p.frac_store = 0.06;
           p.branch_bias = 0.95;
           p.branch_noise = 0.01;
           p.code_pages = 2;
           p.data_pages = 8;
           p.hot_fraction = 0.5;
           p.sequential_prob = 0.9;
           p.syscalls_per_kilo_instr = 0.1;
           p.context_switch_rate = 0.2;
         })};
       }},
      {"mibench.cjpeg", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("encode", [](PhaseSpec& p) {
           p.instructions_mean = 13500;
           p.frac_branch = 0.13;
           p.frac_load = 0.27;
           p.frac_store = 0.12;
           p.branch_bias = 0.90;
           p.data_pages = 90;
           p.hot_fraction = 0.2;
           p.sequential_prob = 0.85;
           p.stride_bytes = 8;
           p.syscalls_per_kilo_instr = 0.3;
         })};
       }},
      {"mibench.fft", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("butterfly", [](PhaseSpec& p) {
           p.instructions_mean = 14000;
           p.frac_branch = 0.09;
           p.frac_load = 0.30;
           p.frac_store = 0.14;
           p.branch_bias = 0.93;
           p.branch_noise = 0.02;
           p.data_pages = 150;
           p.hot_fraction = 0.3;
           p.sequential_prob = 0.8;
           p.stride_bytes = 512;
           p.syscalls_per_kilo_instr = 0.15;
         })};
       }},
      {"mibench.stringsearch", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("scan", [](PhaseSpec& p) {
           p.instructions_mean = 12500;
           p.frac_branch = 0.21;
           p.frac_load = 0.30;
           p.frac_store = 0.04;
           p.branch_bias = 0.88;
           p.branch_noise = 0.06;
           p.data_pages = 20;
           p.hot_fraction = 0.4;
           p.sequential_prob = 0.75;
           p.syscalls_per_kilo_instr = 0.2;
         })};
       }},
      {"mibench.susan", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("edges", [](PhaseSpec& p) {
           p.instructions_mean = 13000;
           p.frac_branch = 0.12;
           p.frac_load = 0.29;
           p.frac_store = 0.11;
           p.branch_bias = 0.91;
           p.data_pages = 110;
           p.hot_fraction = 0.25;
           p.sequential_prob = 0.8;
           p.stride_bytes = 16;
           p.syscalls_per_kilo_instr = 0.25;
         })};
       }},
      {"mibench.basicmath", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("math", [](PhaseSpec& p) {
           p.instructions_mean = 14500;
           p.frac_branch = 0.08;
           p.frac_load = 0.15;
           p.frac_store = 0.05;
           p.branch_bias = 0.94;
           p.branch_noise = 0.015;
           p.code_pages = 2;
           p.data_pages = 6;
           p.hot_fraction = 0.6;
           p.syscalls_per_kilo_instr = 0.1;
         })};
       }},
      {"mibench.bitcount", "mibench",
       [] {
         return std::vector<PhaseSpec>{phase("bits", [](PhaseSpec& p) {
           p.instructions_mean = 15500;
           p.frac_branch = 0.12;
           p.frac_load = 0.12;
           p.frac_store = 0.03;
           p.branch_bias = 0.97;
           p.branch_noise = 0.005;
           p.code_pages = 1;
           p.data_pages = 4;
           p.hot_fraction = 0.8;
           p.syscalls_per_kilo_instr = 0.05;
         })};
       }},
      {"mibench.patricia", "mibench",
       [] {
         // Trie walking: benign but deliberately TLB-unfriendly.
         return std::vector<PhaseSpec>{phase("trie", [](PhaseSpec& p) {
           p.instructions_mean = 11500;
           p.frac_branch = 0.17;
           p.frac_load = 0.33;
           p.frac_store = 0.05;
           p.branch_bias = 0.84;
           p.data_pages = 120;
           p.hot_fraction = 0.10;
           p.hot_access_prob = 0.6;
           p.sequential_prob = 0.1;
           p.syscalls_per_kilo_instr = 0.2;
         })};
       }},
      {"typeset.latex", "desktop",
       [] {
         return std::vector<PhaseSpec>{phase("layout", [](PhaseSpec& p) {
           p.instructions_mean = 12000;
           p.frac_branch = 0.16;
           p.frac_load = 0.26;
           p.frac_store = 0.09;
           p.branch_noise = 0.05;
           p.code_pages = 30;
           p.code_jump_spread = 0.32;
           p.data_pages = 120;
           p.hot_fraction = 0.12;
           p.syscalls_per_kilo_instr = 1.0;
           p.context_switch_rate = 0.8;
         })};
       }},
      {"devtools.compiler", "desktop",
       [] {
         // Hard benign: big branchy code footprint, overlaps script malware.
         return std::vector<PhaseSpec>{phase("compile", [](PhaseSpec& p) {
           p.instructions_mean = 12500;
           p.frac_branch = 0.21;
           p.frac_load = 0.27;
           p.frac_store = 0.10;
           p.branch_bias = 0.82;
           p.branch_noise = 0.08;
           p.code_pages = 40;
           p.code_jump_spread = 0.35;
           p.data_pages = 150;
           p.hot_fraction = 0.1;
           p.sequential_prob = 0.3;
           p.syscalls_per_kilo_instr = 1.5;
           p.context_switch_rate = 1.0;
           p.minor_fault_rate = 3.0;
         })};
       }},
      {"desktop.browser", "desktop",
       [] {
         // Hard benign: syscall/ctx heavy with a large code image.
         return std::vector<PhaseSpec>{phase("render", [](PhaseSpec& p) {
           p.instructions_mean = 11000;
           p.frac_branch = 0.20;
           p.frac_load = 0.27;
           p.frac_store = 0.11;
           p.branch_noise = 0.07;
           p.code_pages = 60;
           p.code_jump_spread = 0.3;
           p.data_pages = 200;
           p.hot_fraction = 0.08;
           p.syscalls_per_kilo_instr = 3.5;
           p.kernel_burst_instr = 250;
           p.context_switch_rate = 3.0;
           p.migration_rate = 0.05;
           p.minor_fault_rate = 4.0;
         })};
       }},
      {"desktop.editor", "desktop",
       [] {
         return std::vector<PhaseSpec>{phase("edit", [](PhaseSpec& p) {
           p.instructions_mean = 6000;
           p.frac_branch = 0.15;
           p.frac_load = 0.24;
           p.frac_store = 0.08;
           p.code_pages = 20;
           p.code_jump_spread = 0.30;
           p.data_pages = 40;
           p.syscalls_per_kilo_instr = 3.0;
           p.context_switch_rate = 2.0;
         })};
       }},
      {"desktop.wordproc", "desktop",
       [] {
         return std::vector<PhaseSpec>{phase("layout", [](PhaseSpec& p) {
           p.instructions_mean = 9000;
           p.frac_branch = 0.16;
           p.frac_load = 0.25;
           p.frac_store = 0.10;
           p.code_pages = 35;
           p.code_jump_spread = 0.30;
           p.data_pages = 90;
           p.syscalls_per_kilo_instr = 3.0;
           p.context_switch_rate = 1.5;
         })};
       }},
      {"system.shellutils", "system",
       [] {
         // Hard benign: grep/find-style syscall storms.
         return std::vector<PhaseSpec>{phase("walk", [](PhaseSpec& p) {
           p.instructions_mean = 8000;
           p.frac_branch = 0.20;
           p.frac_load = 0.28;
           p.frac_store = 0.06;
           p.branch_noise = 0.05;
           p.code_pages = 12;
           p.data_pages = 60;
           p.syscalls_per_kilo_instr = 7.0;
           p.kernel_burst_instr = 200;
           p.context_switch_rate = 2.5;
           p.minor_fault_rate = 5.0;
         })};
       }},
      {"system.gzip", "system",
       [] {
         // Streaming compressor: heavy stores, benign (vs. ransomware).
         return std::vector<PhaseSpec>{phase("deflate", [](PhaseSpec& p) {
           p.instructions_mean = 13000;
           p.frac_branch = 0.12;
           p.frac_load = 0.28;
           p.frac_store = 0.18;
           p.branch_bias = 0.9;
           p.data_pages = 100;
           p.hot_fraction = 0.2;
           p.sequential_prob = 0.9;
           p.syscalls_per_kilo_instr = 1.0;
         })};
       }},
      {"system.sqlite", "system",
       [] {
         return std::vector<PhaseSpec>{phase("query", [](PhaseSpec& p) {
           p.instructions_mean = 10500;
           p.frac_branch = 0.17;
           p.frac_load = 0.29;
           p.frac_store = 0.09;
           p.branch_noise = 0.05;
           p.code_pages = 25;
           p.code_jump_spread = 0.28;
           p.data_pages = 120;
           p.hot_fraction = 0.15;
           p.sequential_prob = 0.35;
           p.syscalls_per_kilo_instr = 3.5;
           p.context_switch_rate = 1.2;
         })};
       }},
  };
  return kTemplates;
}

const std::vector<Template>& malware_templates() {
  static const std::vector<Template> kTemplates = {
      {"mal.portscanner", "scanner",
       [] {
         return std::vector<PhaseSpec>{phase("probe", [](PhaseSpec& p) {
           p.instructions_mean = 9000;
           p.frac_branch = 0.19;
           p.frac_load = 0.25;
           p.frac_store = 0.08;
           p.branch_bias = 0.84;
           p.branch_noise = 0.06;
           p.code_pages = 14;
           p.code_jump_spread = 0.3;
           p.data_pages = 90;
           p.hot_fraction = 0.06;
           p.syscalls_per_kilo_instr = 7.0;
           p.kernel_burst_instr = 300;
           p.context_switch_rate = 4.0;
           p.numa_remote_frac = 0.15;
         })};
       }},
      {"mal.synflood", "dos",
       [] {
         return std::vector<PhaseSpec>{phase("flood", [](PhaseSpec& p) {
           p.instructions_mean = 8000;
           p.frac_branch = 0.18;
           p.frac_load = 0.22;
           p.frac_store = 0.12;
           p.branch_noise = 0.06;
           p.code_pages = 10;
           p.code_jump_spread = 0.3;
           p.data_pages = 50;
           p.hot_fraction = 0.08;
           p.syscalls_per_kilo_instr = 8.0;
           p.kernel_burst_instr = 350;
           p.context_switch_rate = 6.0;
         })};
       }},
      {"mal.forkstorm", "dos",
       [] {
         return std::vector<PhaseSpec>{phase("spawn", [](PhaseSpec& p) {
           p.instructions_mean = 7000;
           p.frac_branch = 0.19;
           p.frac_load = 0.24;
           p.frac_store = 0.11;
           p.branch_noise = 0.07;
           p.code_pages = 20;
           p.code_jump_spread = 0.38;
           p.data_pages = 70;
           p.syscalls_per_kilo_instr = 7.0;
           p.context_switch_rate = 7.0;
           p.migration_rate = 0.3;
           p.minor_fault_rate = 25.0;
           p.major_fault_rate = 0.1;
         })};
       }},
      {"mal.cryptominer", "miner",
       [] {
         // Hard malware: compute kernel that resembles mibench.sha.
         return std::vector<PhaseSpec>{phase("hash", [](PhaseSpec& p) {
           p.instructions_mean = 14500;
           p.frac_branch = 0.14;
           p.frac_load = 0.20;
           p.frac_store = 0.07;
           p.branch_bias = 0.93;
           p.branch_noise = 0.035;
           p.code_pages = 3;
           p.data_pages = 10;
           p.hot_fraction = 0.5;
           p.sequential_prob = 0.85;
           p.syscalls_per_kilo_instr = 0.8;
           p.context_switch_rate = 0.6;
         })};
       }},
      {"mal.ransomware", "ransomware",
       [] {
         return std::vector<PhaseSpec>{
             phase("scan", [](PhaseSpec& p) {
               p.weight = 1.0;
               p.instructions_mean = 9000;
               p.frac_branch = 0.17;
               p.frac_load = 0.30;
               p.frac_store = 0.06;
               p.branch_noise = 0.07;
               p.code_pages = 16;
               p.data_pages = 250;
               p.hot_fraction = 0.05;
               p.sequential_prob = 0.2;
               p.syscalls_per_kilo_instr = 4.0;
               p.minor_fault_rate = 8.0;
             }),
             phase("encrypt", [](PhaseSpec& p) {
               p.weight = 3.0;
               p.instructions_mean = 12500;
               p.frac_branch = 0.12;
               p.frac_load = 0.30;
               p.frac_store = 0.22;
               p.branch_noise = 0.05;
               p.code_pages = 10;
               p.data_pages = 300;
               p.hot_fraction = 0.1;
               p.sequential_prob = 0.8;
               p.store_scatter = 0.4;
               p.syscalls_per_kilo_instr = 3.0;
               p.numa_remote_frac = 0.12;
             })};
       }},
      {"mal.spyware", "spyware",
       [] {
         return std::vector<PhaseSpec>{phase("poll", [](PhaseSpec& p) {
           p.instructions_mean = 5000;
           p.frac_branch = 0.20;
           p.frac_load = 0.26;
           p.frac_store = 0.09;
           p.branch_noise = 0.06;
           p.code_pages = 15;
           p.code_jump_spread = 0.3;
           p.data_pages = 70;
           p.hot_fraction = 0.08;
           p.syscalls_per_kilo_instr = 6.0;
           p.kernel_burst_instr = 180;
           p.context_switch_rate = 5.0;
         })};
       }},
      {"mal.botbeacon", "botnet",
       [] {
         // Medium-hard: mostly idle, periodic bursty network phases.
         return std::vector<PhaseSpec>{
             phase("idle", [](PhaseSpec& p) {
               p.weight = 2.0;
               p.instructions_mean = 4000;
               p.frac_branch = 0.18;
               p.frac_load = 0.23;
               p.frac_store = 0.07;
               p.code_pages = 10;
               p.data_pages = 20;
               p.syscalls_per_kilo_instr = 3.0;
               p.context_switch_rate = 2.0;
             }),
             phase("burst", [](PhaseSpec& p) {
               p.weight = 1.0;
               p.instructions_mean = 10000;
               p.frac_branch = 0.20;
               p.frac_load = 0.25;
               p.frac_store = 0.10;
               p.branch_noise = 0.10;
               p.code_pages = 16;
               p.code_jump_spread = 0.4;
               p.data_pages = 40;
               p.syscalls_per_kilo_instr = 7.0;
               p.context_switch_rate = 5.0;
               p.numa_remote_frac = 0.2;
             })};
       }},
      {"mal.rootkit", "rootkit",
       [] {
         return std::vector<PhaseSpec>{phase("hook", [](PhaseSpec& p) {
           p.instructions_mean = 8500;
           p.frac_branch = 0.17;
           p.frac_load = 0.26;
           p.frac_store = 0.10;
           p.branch_noise = 0.06;
           p.code_pages = 10;
           p.data_pages = 50;
           p.syscalls_per_kilo_instr = 8.0;
           p.kernel_burst_instr = 300;
           p.context_switch_rate = 3.0;
         })};
       }},
      {"mal.worm", "worm",
       [] {
         return std::vector<PhaseSpec>{
             phase("scan", [](PhaseSpec& p) {
               p.weight = 1.5;
               p.instructions_mean = 9000;
               p.frac_branch = 0.21;
               p.frac_load = 0.24;
               p.frac_store = 0.08;
               p.branch_noise = 0.08;
               p.code_pages = 18;
               p.code_jump_spread = 0.35;
               p.data_pages = 35;
               p.syscalls_per_kilo_instr = 6.0;
               p.context_switch_rate = 4.0;
               p.numa_remote_frac = 0.18;
             }),
             phase("copy", [](PhaseSpec& p) {
               p.weight = 1.0;
               p.instructions_mean = 11000;
               p.frac_branch = 0.16;
               p.frac_load = 0.30;
               p.frac_store = 0.20;
               p.data_pages = 200;
               p.hot_fraction = 0.1;
               p.sequential_prob = 0.7;
               p.syscalls_per_kilo_instr = 4.0;
             })};
       }},
      {"mal.dropper", "dropper",
       [] {
         // Unpacker: scattered self-written code → iTLB / L1I pressure.
         return std::vector<PhaseSpec>{phase("unpack", [](PhaseSpec& p) {
           p.instructions_mean = 10000;
           p.frac_branch = 0.22;
           p.frac_load = 0.26;
           p.frac_store = 0.18;
           p.branch_bias = 0.78;
           p.branch_noise = 0.09;
           p.code_pages = 30;
           p.code_jump_spread = 0.40;
           p.data_pages = 120;
           p.hot_fraction = 0.08;
           p.store_scatter = 0.5;
           p.syscalls_per_kilo_instr = 5.0;
           p.minor_fault_rate = 15.0;
         })};
       }},
      {"mal.perlbot", "scriptbot",
       [] {
         // Interpreter dispatch loop: extremely branchy, scattered code.
         return std::vector<PhaseSpec>{phase("interp", [](PhaseSpec& p) {
           p.instructions_mean = 9500;
           p.frac_branch = 0.30;
           p.frac_load = 0.30;
           p.frac_store = 0.10;
           p.branch_bias = 0.74;
           p.branch_noise = 0.07;
           p.code_pages = 24;
           p.code_jump_spread = 0.3;
           p.data_pages = 90;
           p.hot_fraction = 0.25;
           p.sequential_prob = 0.3;
           p.syscalls_per_kilo_instr = 1.5;
           p.context_switch_rate = 1.2;
         })};
       }},
      {"mal.pythonbot", "scriptbot",
       [] {
         return std::vector<PhaseSpec>{phase("interp", [](PhaseSpec& p) {
           p.instructions_mean = 9500;
           p.frac_branch = 0.28;
           p.frac_load = 0.31;
           p.frac_store = 0.11;
           p.branch_bias = 0.74;
           p.branch_noise = 0.08;
           p.code_pages = 28;
           p.code_jump_spread = 0.28;
           p.data_pages = 110;
           p.hot_fraction = 0.2;
           p.sequential_prob = 0.35;
           p.syscalls_per_kilo_instr = 1.5;
           p.context_switch_rate = 1.2;
           p.minor_fault_rate = 4.0;
         })};
       }},
      {"mal.adware", "adware",
       [] {
         return std::vector<PhaseSpec>{phase("inject", [](PhaseSpec& p) {
           p.instructions_mean = 8500;
           p.frac_branch = 0.21;
           p.frac_load = 0.26;
           p.frac_store = 0.11;
           p.branch_noise = 0.07;
           p.code_pages = 28;
           p.code_jump_spread = 0.35;
           p.data_pages = 80;
           p.syscalls_per_kilo_instr = 5.5;
           p.context_switch_rate = 3.5;
         })};
       }},
      {"mal.infostealer", "stealer",
       [] {
         return std::vector<PhaseSpec>{
             phase("walk", [](PhaseSpec& p) {
               p.weight = 2.0;
               p.instructions_mean = 8000;
               p.frac_branch = 0.21;
               p.frac_load = 0.28;
               p.frac_store = 0.08;
               p.branch_noise = 0.08;
               p.code_pages = 16;
               p.data_pages = 160;
               p.hot_fraction = 0.06;
               p.sequential_prob = 0.25;
               p.syscalls_per_kilo_instr = 7.0;
               p.kernel_burst_instr = 260;
               p.minor_fault_rate = 10.0;
             }),
             phase("exfil", [](PhaseSpec& p) {
               p.weight = 1.0;
               p.instructions_mean = 9500;
               p.frac_branch = 0.19;
               p.frac_load = 0.30;
               p.frac_store = 0.10;
               p.code_pages = 12;
               p.data_pages = 120;
               p.sequential_prob = 0.6;
               p.syscalls_per_kilo_instr = 6.0;
               p.numa_remote_frac = 0.25;
               p.context_switch_rate = 3.0;
             })};
       }},
  };
  return kTemplates;
}

AppProfile instantiate(const Template& tpl, bool is_malware,
                       std::size_t template_index, std::uint32_t variant,
                       std::uint64_t seed, std::uint32_t intervals) {
  AppProfile app;
  app.name = std::string(tpl.name) + ".v" + std::to_string(variant);
  app.is_malware = is_malware;
  app.family = tpl.family;
  app.intervals = intervals;
  app.seed = mix64(seed ^ mix64((is_malware ? 0x4D41ULL : 0x4245ULL) +
                                template_index * 131 + variant));
  app.phases = tpl.phases();
  Rng rng(app.seed ^ 0x5EEDULL);
  for (auto& ph : app.phases) jitter_phase(ph, rng);
  return app;
}

}  // namespace

std::size_t benign_template_count() { return benign_templates().size(); }
std::size_t malware_template_count() { return malware_templates().size(); }

AppProfile make_benign(std::size_t template_index, std::uint32_t variant,
                       std::uint64_t seed, std::uint32_t intervals) {
  HMD_REQUIRE(template_index < benign_template_count());
  return instantiate(benign_templates()[template_index], false, template_index,
                     variant, seed, intervals);
}

AppProfile make_malware(std::size_t template_index, std::uint32_t variant,
                        std::uint64_t seed, std::uint32_t intervals) {
  HMD_REQUIRE(template_index < malware_template_count());
  return instantiate(malware_templates()[template_index], true, template_index,
                     variant, seed, intervals);
}

std::vector<AppProfile> build_corpus(const CorpusConfig& cfg) {
  HMD_REQUIRE(cfg.benign_per_template >= 1);
  HMD_REQUIRE(cfg.malware_per_template >= 1);
  // 0 = all templates; a positive limit holds out the tail of the template
  // list (the drift scenario's "novel families").
  const std::size_t malware_templates =
      cfg.malware_template_limit > 0
          ? std::min(cfg.malware_template_limit, malware_template_count())
          : malware_template_count();
  std::vector<AppProfile> corpus;
  corpus.reserve(benign_template_count() * cfg.benign_per_template +
                 malware_templates * cfg.malware_per_template);
  for (std::size_t t = 0; t < benign_template_count(); ++t)
    for (std::uint32_t v = 0; v < cfg.benign_per_template; ++v)
      corpus.push_back(make_benign(t, v, cfg.seed, cfg.intervals_per_app));
  for (std::size_t t = 0; t < malware_templates; ++t)
    for (std::uint32_t v = 0; v < cfg.malware_per_template; ++v)
      corpus.push_back(make_malware(t, v, cfg.seed, cfg.intervals_per_app));
  HMD_REQUIRE(cfg.instruction_scale > 0.0);
  for (auto& app : corpus)
    for (auto& ph : app.phases) ph.instructions_mean *= cfg.instruction_scale;
  return corpus;
}

AppProfile blend_toward(const AppProfile& malware, const AppProfile& cover,
                        double lambda) {
  HMD_REQUIRE(lambda >= 0.0 && lambda <= 1.0);
  HMD_REQUIRE(!malware.phases.empty() && !cover.phases.empty());
  AppProfile out = malware;
  out.name = malware.name + ".mimic" + std::to_string(lambda);

  auto mix = [lambda](double a, double b) {
    return (1.0 - lambda) * a + lambda * b;
  };
  auto mix_u = [&](std::uint32_t a, std::uint32_t b) {
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(mix(static_cast<double>(a),
                               static_cast<double>(b)))));
  };
  for (std::size_t i = 0; i < out.phases.size(); ++i) {
    PhaseSpec& m = out.phases[i];
    const PhaseSpec& c = cover.phases[i % cover.phases.size()];
    m.instructions_mean = mix(m.instructions_mean, c.instructions_mean);
    m.frac_branch = mix(m.frac_branch, c.frac_branch);
    m.frac_load = mix(m.frac_load, c.frac_load);
    m.frac_store = mix(m.frac_store, c.frac_store);
    m.branch_bias = mix(m.branch_bias, c.branch_bias);
    m.branch_noise = mix(m.branch_noise, c.branch_noise);
    m.code_jump_spread = mix(m.code_jump_spread, c.code_jump_spread);
    m.code_pages = mix_u(m.code_pages, c.code_pages);
    m.blocks_per_page = mix_u(m.blocks_per_page, c.blocks_per_page);
    m.data_pages = mix_u(m.data_pages, c.data_pages);
    m.hot_fraction = mix(m.hot_fraction, c.hot_fraction);
    m.hot_access_prob = mix(m.hot_access_prob, c.hot_access_prob);
    m.sequential_prob = mix(m.sequential_prob, c.sequential_prob);
    m.stride_bytes = mix_u(m.stride_bytes, c.stride_bytes);
    m.store_scatter = mix(m.store_scatter, c.store_scatter);
    m.numa_remote_frac = mix(m.numa_remote_frac, c.numa_remote_frac);
    m.syscalls_per_kilo_instr =
        mix(m.syscalls_per_kilo_instr, c.syscalls_per_kilo_instr);
    m.kernel_burst_instr = mix(m.kernel_burst_instr, c.kernel_burst_instr);
    m.context_switch_rate = mix(m.context_switch_rate, c.context_switch_rate);
    m.migration_rate = mix(m.migration_rate, c.migration_rate);
    m.minor_fault_rate = mix(m.minor_fault_rate, c.minor_fault_rate);
    m.major_fault_rate = mix(m.major_fault_rate, c.major_fault_rate);
    m.alignment_fault_rate =
        mix(m.alignment_fault_rate, c.alignment_fault_rate);
    m.emulation_fault_rate =
        mix(m.emulation_fault_rate, c.emulation_fault_rate);
  }
  return out;
}

}  // namespace hmd::sim

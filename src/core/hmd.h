// Umbrella header: the public API of the HMD (Hardware Malware Detection)
// library. Include this to get the whole pipeline:
//
//   #include "core/hmd.h"
//
//   auto ctx = hmd::core::prepare_experiment();            // capture corpus
//   auto cell = hmd::core::run_cell(ctx,                   // train+evaluate
//       hmd::ml::ClassifierKind::kRepTree,
//       hmd::ml::EnsembleKind::kAdaBoost, /*hpcs=*/2);
//   auto hw = hmd::hw::estimate_hardware(cell.complexity); // FPGA cost
#pragma once

#include "core/experiment.h"   // IWYU pragma: export
#include "core/online.h"       // IWYU pragma: export
#include "hpc/capture.h"       // IWYU pragma: export
#include "hpc/container.h"     // IWYU pragma: export
#include "hpc/pmu.h"           // IWYU pragma: export
#include "hw/resources.h"      // IWYU pragma: export
#include "ml/classifier.h"     // IWYU pragma: export
#include "ml/dataset.h"        // IWYU pragma: export
#include "ml/feature_selection.h"  // IWYU pragma: export
#include "ml/infer.h"          // IWYU pragma: export
#include "ml/metrics.h"        // IWYU pragma: export
#include "sim/machine.h"       // IWYU pragma: export
#include "sim/workloads.h"     // IWYU pragma: export

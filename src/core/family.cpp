#include "core/family.h"

#include <algorithm>
#include <set>

#include "support/check.h"

namespace hmd::core {

FamilyClassifier::FamilyClassifier() : cfg_(Config{}) {}

FamilyClassifier::FamilyClassifier(Config cfg) : cfg_(cfg) {}

void FamilyClassifier::train(const ml::Dataset& data,
                             const std::vector<std::string>& family_of_row) {
  HMD_REQUIRE(data.num_rows() > 0);
  HMD_REQUIRE(family_of_row.size() == data.num_rows());

  std::set<std::string> family_set;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const bool is_malware = data.label(i) == 1;
    HMD_REQUIRE_MSG(is_malware == !family_of_row[i].empty(),
                    "family labels must match the binary labels");
    if (is_malware) family_set.insert(family_of_row[i]);
  }
  HMD_REQUIRE_MSG(!family_set.empty(), "no malware families in training data");

  families_.assign(family_set.begin(), family_set.end());

  // Stage 1: the binary malware-vs-benign gate (the paper's detector).
  gate_ = ml::make_detector(cfg_.base, cfg_.ensemble, cfg_.seed);
  gate_->train(data);

  detectors_.clear();
  for (const std::string& family : families_) {
    // One-vs-rest: this family's rows against benign AND every other
    // family. (Family-vs-benign-only detectors cannot arbitrate between
    // families — two of them can both fire with probability 1.)
    ml::Dataset subset(data.feature_names());
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      std::vector<double> row(data.row(i).begin(), data.row(i).end());
      subset.add_row(std::move(row), family_of_row[i] == family ? 1 : 0,
                     data.weight(i), data.group(i));
    }
    auto detector = ml::make_detector(cfg_.base, cfg_.ensemble, cfg_.seed);
    detector->train(subset);
    detectors_.push_back(std::move(detector));
  }
  trained_ = true;
}

FamilyClassifier::Prediction FamilyClassifier::classify(
    std::span<const double> x) const {
  HMD_REQUIRE_MSG(trained_, "FamilyClassifier::train() must be called first");
  Prediction best;
  best.gate_score = gate_->predict_proba(x);
  if (best.gate_score < cfg_.gate_threshold) return best;  // benign
  // Stage 2: arg-max over the family detectors (no threshold — the gate
  // already decided this sample is malicious).
  for (std::size_t f = 0; f < families_.size(); ++f) {
    const double score = detectors_[f]->predict_proba(x);
    if (score >= best.score) {
      best.score = score;
      best.family = families_[f];
    }
  }
  return best;
}

std::vector<std::string> family_labels(
    const hpc::Capture& capture, const std::vector<sim::AppProfile>& corpus) {
  HMD_REQUIRE(capture.app_names.size() == corpus.size());
  std::vector<std::string> out;
  out.reserve(capture.num_rows());
  for (std::size_t i = 0; i < capture.num_rows(); ++i) {
    const sim::AppProfile& app = capture.row_app[i] < corpus.size()
                                     ? corpus[capture.row_app[i]]
                                     : corpus.front();
    out.push_back(app.is_malware ? app.family : std::string{});
  }
  return out;
}

FamilyConfusion evaluate_families(
    const FamilyClassifier& clf, const ml::Dataset& test,
    const std::vector<std::string>& family_of_row) {
  HMD_REQUIRE(family_of_row.size() == test.num_rows());
  FamilyConfusion confusion;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    const auto pred = clf.classify(test.row(i));
    ++confusion[family_of_row[i]][pred.family];
  }
  return confusion;
}

}  // namespace hmd::core

#include "core/experiment.h"

#include "support/check.h"

namespace hmd::core {

std::vector<std::size_t> ExperimentContext::top_features(std::size_t k) const {
  return ml::top_k_features(ranking, k);
}

std::vector<std::string> ExperimentContext::top_feature_names(
    std::size_t k) const {
  std::vector<std::string> names;
  names.reserve(k);
  for (std::size_t f : top_features(k))
    names.push_back(full.feature_name(f));
  return names;
}

ml::Dataset to_dataset(const hpc::Capture& capture) {
  ml::Dataset data(capture.feature_names);
  for (std::size_t i = 0; i < capture.num_rows(); ++i)
    data.add_row(capture.rows[i], capture.labels[i], 1.0,
                 capture.row_app[i]);
  return data;
}

ExperimentContext prepare_experiment(const ExperimentConfig& config) {
  ExperimentContext ctx;
  ctx.config = config;

  const auto corpus = sim::build_corpus(config.corpus);
  ctx.capture = hpc::capture_all_events(corpus, config.capture);
  ctx.full = to_dataset(ctx.capture);

  Rng split_rng(config.split_seed);
  ctx.split =
      ml::stratified_group_split(ctx.full, config.train_fraction, split_rng);

  // Feature reduction is fit on the training applications only — the test
  // applications are "unknown" end to end. The raw correlation ranking is
  // de-duplicated so near-identical counters don't crowd out distinct ones.
  ctx.ranking = ml::prune_redundant(ctx.split.train,
                                    ml::correlation_ranking(ctx.split.train));
  return ctx;
}

namespace {

/// Train the cell's detector on the context's training split restricted to
/// the top `hpcs` events.
std::unique_ptr<ml::Classifier> train_cell(const ExperimentContext& ctx,
                                           ml::ClassifierKind kind,
                                           ml::EnsembleKind ensemble,
                                           std::size_t hpcs,
                                           ml::Dataset& test_out) {
  HMD_REQUIRE(hpcs >= 1);
  const auto features = ctx.top_features(hpcs);
  const ml::Dataset train = ctx.split.train.select_features(features);
  test_out = ctx.split.test.select_features(features);

  auto detector = ml::make_detector(kind, ensemble, ctx.config.model_seed);
  detector->train(train);
  return detector;
}

}  // namespace

CellResult run_cell(const ExperimentContext& ctx, ml::ClassifierKind kind,
                    ml::EnsembleKind ensemble, std::size_t hpcs) {
  ml::Dataset test;
  const auto detector = train_cell(ctx, kind, ensemble, hpcs, test);

  CellResult cell;
  cell.classifier = kind;
  cell.ensemble = ensemble;
  cell.hpcs = hpcs;
  cell.metrics = ml::evaluate_detector(*detector, test);
  cell.complexity = detector->complexity();
  return cell;
}

CellScores run_cell_scores(const ExperimentContext& ctx,
                           ml::ClassifierKind kind, ml::EnsembleKind ensemble,
                           std::size_t hpcs) {
  ml::Dataset test;
  const auto detector = train_cell(ctx, kind, ensemble, hpcs, test);

  CellScores out;
  out.scores = ml::score_dataset(*detector, test);
  out.labels.reserve(test.num_rows());
  for (std::size_t i = 0; i < test.num_rows(); ++i)
    out.labels.push_back(test.label(i));
  return out;
}

}  // namespace hmd::core

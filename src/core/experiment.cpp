#include "core/experiment.h"

#include "support/check.h"

namespace hmd::core {

std::vector<std::size_t> ExperimentContext::top_features(std::size_t k) const {
  return ml::top_k_features(ranking, k);
}

std::vector<std::string> ExperimentContext::top_feature_names(
    std::size_t k) const {
  std::vector<std::string> names;
  names.reserve(k);
  for (std::size_t f : top_features(k))
    names.push_back(full.feature_name(f));
  return names;
}

const ml::Split& ExperimentContext::projected_split(std::size_t hpcs) const {
  HMD_REQUIRE(hpcs >= 1);
  return projections->get(hpcs, [&] {
    const auto features = top_features(hpcs);
    ml::Split projected{split.train.select_features(features),
                        split.test.select_features(features)};
    // Build the per-feature sort cache while the projection is warmed, so
    // every grid cell sharing this projection trains against ready-made
    // presorted orders instead of racing to build them lazily.
    projected.train.warm_presort_cache();
    return projected;
  });
}

ml::Dataset to_dataset(const hpc::Capture& capture) {
  ml::Dataset data(capture.feature_names);
  data.reserve(capture.num_rows());
  for (std::size_t i = 0; i < capture.num_rows(); ++i)
    data.add_row(capture.rows[i], capture.labels[i], 1.0,
                 capture.row_app[i]);
  return data;
}

ExperimentContext prepare_experiment(const ExperimentConfig& config) {
  ExperimentContext ctx;
  ctx.config = config;

  const auto corpus = sim::build_corpus(config.corpus);
  hpc::CaptureConfig capture_cfg = config.capture;
  if (capture_cfg.threads == 0) capture_cfg.threads = config.threads;
  ctx.capture = hpc::capture_all_events(corpus, capture_cfg,
                                        &ctx.resume_stats);

  // Protocol-cost accounting must stay honest under retries: the headline
  // run counter and the per-app fault ledger are maintained separately and
  // can only diverge through a bug, so divergence is fatal here rather
  // than a silently wrong cost column in an ablation.
  std::uint64_t ledger_runs = 0;
  for (const auto& app : ctx.capture.report.apps) ledger_runs += app.attempts;
  HMD_INVARIANT(ctx.capture.total_runs == ledger_runs);

  // Merged-ledger invariant under checkpointing: every app is either reused
  // from a prior session or executed in this one, and total_runs — the
  // honest protocol cost across sessions — must split exactly into reused
  // and fresh attempts. A resumed campaign that dropped or double-counted
  // work would corrupt every downstream cost ablation, so it is fatal.
  if (ctx.resume_stats.checkpointing) {
    HMD_INVARIANT(ctx.resume_stats.loaded_apps +
                      ctx.resume_stats.executed_apps ==
                  ctx.capture.report.apps.size());
    HMD_INVARIANT(ctx.resume_stats.loaded_runs +
                      ctx.resume_stats.session_runs ==
                  ctx.capture.total_runs);
  }

  ctx.full = to_dataset(ctx.capture);

  Rng split_rng(config.split_seed);
  ctx.split =
      ml::stratified_group_split(ctx.full, config.train_fraction, split_rng);

  // Feature reduction is fit on the training applications only — the test
  // applications are "unknown" end to end. The raw correlation ranking is
  // de-duplicated so near-identical counters don't crowd out distinct ones.
  ctx.ranking = ml::prune_redundant(ctx.split.train,
                                    ml::correlation_ranking(ctx.split.train));
  return ctx;
}

namespace {

/// Train the cell's detector on the context's (cached) training projection
/// for the top `hpcs` events; `test_out` points at the cached test side.
std::unique_ptr<ml::Classifier> train_cell(const ExperimentContext& ctx,
                                           ml::ClassifierKind kind,
                                           ml::EnsembleKind ensemble,
                                           std::size_t hpcs,
                                           const ml::Dataset** test_out) {
  HMD_REQUIRE(hpcs >= 1);
  const ml::Split& projected = ctx.projected_split(hpcs);
  *test_out = &projected.test;

  auto detector = ml::make_detector(kind, ensemble, ctx.config.model_seed);
  detector->train(projected.train);
  return detector;
}

}  // namespace

CellEvaluation run_cell_full(const ExperimentContext& ctx,
                             ml::ClassifierKind kind,
                             ml::EnsembleKind ensemble, std::size_t hpcs) {
  const ml::Dataset* test = nullptr;
  const auto detector = train_cell(ctx, kind, ensemble, hpcs, &test);

  CellEvaluation out;
  out.result.classifier = kind;
  out.result.ensemble = ensemble;
  out.result.hpcs = hpcs;
  out.result.complexity = detector->complexity();

  out.scores.scores = ml::score_dataset(*detector, *test);
  std::vector<double> weights;
  out.scores.labels.reserve(test->num_rows());
  weights.reserve(test->num_rows());
  for (std::size_t i = 0; i < test->num_rows(); ++i) {
    out.scores.labels.push_back(test->label(i));
    weights.push_back(test->weight(i));
  }
  out.result.metrics =
      ml::detector_metrics(out.scores.scores, out.scores.labels, weights);
  return out;
}

CellResult run_cell(const ExperimentContext& ctx, ml::ClassifierKind kind,
                    ml::EnsembleKind ensemble, std::size_t hpcs) {
  return run_cell_full(ctx, kind, ensemble, hpcs).result;
}

CellScores run_cell_scores(const ExperimentContext& ctx,
                           ml::ClassifierKind kind, ml::EnsembleKind ensemble,
                           std::size_t hpcs) {
  return std::move(run_cell_full(ctx, kind, ensemble, hpcs).scores);
}

std::vector<GridCell> full_grid() {
  constexpr std::size_t kHpcGrid[] = {16, 8, 4, 2};
  std::vector<GridCell> cells;
  cells.reserve(ml::all_classifier_kinds().size() *
                ml::all_ensemble_kinds().size() * std::size(kHpcGrid));
  for (ml::ClassifierKind kind : ml::all_classifier_kinds())
    for (ml::EnsembleKind ensemble : ml::all_ensemble_kinds())
      for (std::size_t hpcs : kHpcGrid)
        cells.push_back({kind, ensemble, hpcs});
  return cells;
}

std::vector<CellResult> run_grid(const ExperimentContext& ctx,
                                 std::span<const GridCell> cells,
                                 std::size_t threads) {
  return map_grid(ctx, cells, threads, [&](const GridCell& cell) {
    return run_cell(ctx, cell.classifier, cell.ensemble, cell.hpcs);
  });
}

std::vector<CellEvaluation> run_grid_full(const ExperimentContext& ctx,
                                          std::span<const GridCell> cells,
                                          std::size_t threads) {
  return map_grid(ctx, cells, threads, [&](const GridCell& cell) {
    return run_cell_full(ctx, cell.classifier, cell.ensemble, cell.hpcs);
  });
}

}  // namespace hmd::core

#include "core/online.h"

#include <algorithm>
#include <utility>

#include "core/experiment.h"
#include "hpc/capture.h"
#include "support/check.h"

namespace hmd::core {

Verdict OnlineState::step_score(const OnlineConfig& cfg, double score,
                                bool degraded, bool suspect) {
  missing_streak_ = 0;  // a real sample refreshes the held state
  suspect_ = suspect;
  Verdict v;
  v.interval = interval_++;
  v.degraded = degraded;
  v.score = score;
  v.suspect = suspect;
  if (v.interval < cfg.warmup_intervals) {
    // Cold caches make the first interval(s) unrepresentative.
    v.ewma = ewma_init_ ? ewma_ : 0.0;
    v.alarm = alarm_;
    return v;
  }
  if (!ewma_init_) {
    ewma_ = score;
    ewma_init_ = true;
  } else {
    ewma_ = cfg.ewma_alpha * score + (1.0 - cfg.ewma_alpha) * ewma_;
  }
  if (!alarm_ && ewma_ >= cfg.alarm_on) alarm_ = true;
  if (alarm_ && ewma_ <= cfg.alarm_off) alarm_ = false;

  v.ewma = ewma_;
  v.alarm = alarm_;
  return v;
}

Verdict OnlineState::step_missing(const OnlineConfig& cfg, bool degraded) {
  ++missing_streak_;
  Verdict v;
  v.interval = interval_++;
  v.degraded = degraded;
  // Hold, don't reset: a dropped sample is not evidence of anything, so
  // the smoothed score, the alarm, and the margin-gate suspicion keep
  // their last trustworthy values. Dropping `suspect` here would let a
  // flagged host read as confidently clean after one lost sample.
  v.score = ewma_init_ ? ewma_ : 0.0;
  v.ewma = ewma_init_ ? ewma_ : 0.0;
  v.alarm = alarm_;
  v.suspect = suspect_;
  v.stale = stale(cfg);
  return v;
}

void OnlineState::reset() {
  interval_ = 0;
  missing_streak_ = 0;
  ewma_ = 0.0;
  alarm_ = false;
  suspect_ = false;
  ewma_init_ = false;
}

OnlineDetector::OnlineDetector(std::shared_ptr<const ml::Classifier> model,
                               std::vector<sim::Event> events,
                               hpc::PmuConfig pmu, OnlineConfig cfg)
    : model_(std::move(model)), events_(std::move(events)), cfg_(cfg) {
  HMD_REQUIRE(model_ != nullptr);
  HMD_REQUIRE(!events_.empty());
  backend_ = ml::make_active_backend(*model_);
  HMD_REQUIRE(cfg_.alarm_off <= cfg_.alarm_on);
  HMD_REQUIRE(cfg_.suspect_margin >= 0.0);
  held_.assign(events_.size(), 0.0);
  reprogram(std::move(pmu));
}

void OnlineDetector::reprogram(hpc::PmuConfig pmu) {
  pmu_ = hpc::Pmu(std::move(pmu));
  active_events_.clear();
  active_pos_.clear();
  // Graceful degradation: events this PMU cannot count are excluded from
  // programming and fed held values instead of failing deployment. On a
  // re-probe after recovery, events that came back rejoin the programmed
  // set; their held_ slots refresh on the next real sample. Everything
  // else — EWMA, alarm, staleness, held values — carries across.
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (!pmu_.event_available(events_[i])) continue;
    active_events_.push_back(events_[i]);
    active_pos_.push_back(i);
  }
  HMD_REQUIRE_MSG(!active_events_.empty(),
                  "no detector event is available on this PMU");
  // The run-time constraint: the detector's (available) events must be
  // concurrently countable — this throws if they exceed the PMU width.
  pmu_.program(active_events_);
  // One allocation here instead of one per interval: observe() samples
  // into this buffer for the lifetime of the programming.
  sample_scratch_.reserve(pmu_.programmed().size());
}

Verdict OnlineDetector::observe(const sim::EventCounts& counts) {
  pmu_.observe(counts);
  // Reused readout buffer: the steady-state path constructs no fresh batch
  // and performs no heap allocation (the flat backend's scratch is
  // stack-local, and sample_scratch_ keeps its capacity across intervals).
  pmu_.sample_and_clear(sample_scratch_);
  for (std::size_t k = 0; k < sample_scratch_.size(); ++k)
    held_[active_pos_[k]] = static_cast<double>(sample_scratch_[k]);

  const double score = backend_->predict_proba(held_);
  // Perturbation-aware vote: a low-margin (low member-agreement) score is
  // exactly what a budget-bounded evasion leaves behind — flag it rather
  // than trusting the raw probability.
  const bool suspect = cfg_.suspect_margin > 0.0 &&
                       model_->margin(held_) < cfg_.suspect_margin;
  return state_.step_score(cfg_, score, degraded(), suspect);
}

Verdict OnlineDetector::observe_missing() {
  return state_.step_missing(cfg_, degraded());
}

void OnlineDetector::reset() {
  state_.reset();
  std::fill(held_.begin(), held_.end(), 0.0);
  pmu_.clear();
}

std::shared_ptr<ml::Classifier> train_deployment_model(
    const std::vector<sim::AppProfile>& corpus,
    const std::vector<sim::Event>& events, ml::ClassifierKind kind,
    ml::EnsembleKind ensemble, const hpc::CaptureConfig& capture_cfg,
    std::uint64_t seed) {
  HMD_REQUIRE(!events.empty());
  const hpc::Capture capture =
      hpc::capture_corpus(corpus, events, capture_cfg);
  const ml::Dataset data = to_dataset(capture);
  std::shared_ptr<ml::Classifier> model =
      ml::make_detector(kind, ensemble, seed);
  model->train(data);
  return model;
}

std::vector<Verdict> monitor_application(const sim::AppProfile& app,
                                         OnlineDetector& detector,
                                         sim::MachineConfig machine_cfg,
                                         std::uint32_t run_index) {
  sim::Machine machine(machine_cfg);
  machine.start_run(app, run_index);
  std::vector<Verdict> timeline;
  timeline.reserve(app.intervals);
  while (machine.running())
    timeline.push_back(detector.observe(machine.next_interval()));
  return timeline;
}

}  // namespace hmd::core

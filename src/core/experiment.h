// The end-to-end experimental pipeline of the paper (Figure 2):
//
//   corpus → capture (44 events, 4-counter PMU, 11 batches) →
//   feature reduction (Correlation Attribute Evaluation, top 16) →
//   70/30 application-level split →
//   train {General, AdaBoost, Bagging} × {8 classifiers} × {16,8,4,2 HPCs} →
//   evaluate accuracy / AUC / ACC×AUC / hardware cost.
//
// `prepare_experiment` performs the expensive data collection once;
// `run_cell` evaluates one grid cell against the shared context, and
// `run_grid` evaluates many cells concurrently with bit-identical results
// for any thread count (every cell trains its own detector from
// config.model_seed against immutable shared state, and results are
// assembled in input order). Every bench binary regenerating a paper
// table/figure is a thin loop over the cells it needs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "hpc/capture.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/feature_selection.h"
#include "ml/metrics.h"
#include "support/parallel.h"

namespace hmd::core {

struct ExperimentConfig {
  sim::CorpusConfig corpus{};
  hpc::CaptureConfig capture{};
  double train_fraction = 0.7;   ///< paper: 70%/30% known/unknown apps
  std::uint64_t split_seed = 42;
  std::size_t selected_features = 16;  ///< paper Table 1 keeps 16
  std::uint64_t model_seed = 7;
  /// Worker threads for capture and grid evaluation; 0 = auto (HMD_THREADS
  /// env, else hardware_concurrency). Results are thread-count-invariant.
  std::size_t threads = 0;
};

namespace detail {

/// Thread-safe lazy cache of feature-subset projections of the split.
/// The 8 classifiers × 3 ensembles of one HPC budget all train on the same
/// projected train/test pair; caching the four {16,8,4,2} projections means
/// 24 grid cells share one materialisation instead of copying the split 96
/// times per binary. Values are pointer-stable once built: entries are
/// heap-allocated, never erased, and a returned Split is immutable (grid
/// cells read it concurrently without further locking — its presort cache
/// is warmed before publication, see ExperimentContext::projected_split).
class ProjectionCache {
 public:
  const ml::Split& get(std::size_t hpcs,
                       const std::function<ml::Split()>& build) {
    support::MutexLock lock(mutex_);
    auto it = cache_.find(hpcs);
    if (it == cache_.end())
      it = cache_.emplace(hpcs, std::make_unique<ml::Split>(build())).first;
    return *it->second;
  }

 private:
  support::Mutex mutex_;
  std::map<std::size_t, std::unique_ptr<ml::Split>> cache_
      HMD_GUARDED_BY(mutex_);
};

}  // namespace detail

/// Shared, immutable state for a whole experiment grid.
struct ExperimentContext {
  ExperimentConfig config;
  hpc::Capture capture;             ///< raw 44-event matrix
  /// Checkpoint accounting of the capture session (all-zero unless
  /// config.capture.checkpoint_dir was set): apps/runs reused from a prior
  /// session vs executed in this one. Observability only — the capture
  /// itself is bit-identical whether or not a campaign was resumed.
  hpc::CaptureResumeStats resume_stats{};
  ml::Dataset full;                 ///< as Dataset (group = application)
  ml::Split split;                  ///< app-level 70/30 split, all features
  std::vector<ml::FeatureScore> ranking;  ///< correlation ranking (train set)

  /// Global feature (event) indices of the top-k ranked HPCs.
  std::vector<std::size_t> top_features(std::size_t k) const;

  /// Names of the top-k ranked events, in rank order (paper Table 1).
  std::vector<std::string> top_feature_names(std::size_t k) const;

  /// Train/test split projected onto the top `hpcs` ranked events. Built
  /// lazily, cached, and safe to call from run_grid workers; a projection
  /// is a pure function of (split, ranking, hpcs), so sharing the cache
  /// across copies of the context cannot change any result.
  const ml::Split& projected_split(std::size_t hpcs) const;

  /// Shared across copies so a context handed to several grids still
  /// materialises each projection once.
  std::shared_ptr<detail::ProjectionCache> projections =
      std::make_shared<detail::ProjectionCache>();
};

/// Convert a capture into a Dataset (row group = application index).
ml::Dataset to_dataset(const hpc::Capture& capture);

/// Collect the corpus, build the dataset, split, and rank features.
/// This is the expensive step — an entire 11-runs-per-application campaign.
/// The capture runs on config.threads workers (one task per application).
ExperimentContext prepare_experiment(const ExperimentConfig& config = {});

/// One cell of the paper's evaluation grid.
struct CellResult {
  ml::ClassifierKind classifier{};
  ml::EnsembleKind ensemble{};
  std::size_t hpcs = 0;
  ml::DetectorMetrics metrics{};
  ml::ModelComplexity complexity{};  ///< trained structure, for hw costing
};

/// Scores of one trained cell over the test set, with labels — used by the
/// ROC figure bench.
struct CellScores {
  std::vector<double> scores;
  std::vector<int> labels;
};

/// Metrics and test-set scores of one cell from a single training run —
/// the metrics are computed from the same score pass the ROC curves use,
/// so a bench needing both never trains a detector twice.
struct CellEvaluation {
  CellResult result;
  CellScores scores;
};

/// Train and evaluate one (classifier, ensemble, #HPC) detector on the
/// context's split. Deterministic given config.model_seed.
CellResult run_cell(const ExperimentContext& ctx, ml::ClassifierKind kind,
                    ml::EnsembleKind ensemble, std::size_t hpcs);

CellScores run_cell_scores(const ExperimentContext& ctx,
                           ml::ClassifierKind kind, ml::EnsembleKind ensemble,
                           std::size_t hpcs);

CellEvaluation run_cell_full(const ExperimentContext& ctx,
                             ml::ClassifierKind kind,
                             ml::EnsembleKind ensemble, std::size_t hpcs);

/// Coordinates of one cell, for batch evaluation via run_grid/map_grid.
struct GridCell {
  ml::ClassifierKind classifier{};
  ml::EnsembleKind ensemble{};
  std::size_t hpcs = 0;
};

/// The paper's full 8 × {General, Boosted, Bagging} × {16,8,4,2} grid, in
/// the canonical bench order: classifier-major, then ensemble, then HPCs.
std::vector<GridCell> full_grid();

/// Evaluate `fn` over every cell concurrently (threads = 0 → the context's
/// config.threads, itself 0 → auto) and return the results in input order.
/// `fn` must be safe to call concurrently against the immutable context —
/// run_cell / run_cell_full and the hmd_lint checkers all are.
template <typename Fn>
auto map_grid(const ExperimentContext& ctx, std::span<const GridCell> cells,
              std::size_t threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, const GridCell&>> {
  support::ThreadPool pool(threads != 0 ? threads : ctx.config.threads);
  return pool.parallel_map(cells.size(),
                           [&](std::size_t i) { return fn(cells[i]); });
}

/// Train and evaluate many cells concurrently; results in input order,
/// bit-identical to a serial run.
std::vector<CellResult> run_grid(const ExperimentContext& ctx,
                                 std::span<const GridCell> cells,
                                 std::size_t threads = 0);

/// run_grid variant that keeps the test-set scores of every cell.
std::vector<CellEvaluation> run_grid_full(const ExperimentContext& ctx,
                                          std::span<const GridCell> cells,
                                          std::size_t threads = 0);

}  // namespace hmd::core

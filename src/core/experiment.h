// The end-to-end experimental pipeline of the paper (Figure 2):
//
//   corpus → capture (44 events, 4-counter PMU, 11 batches) →
//   feature reduction (Correlation Attribute Evaluation, top 16) →
//   70/30 application-level split →
//   train {General, AdaBoost, Bagging} × {8 classifiers} × {16,8,4,2 HPCs} →
//   evaluate accuracy / AUC / ACC×AUC / hardware cost.
//
// `prepare_experiment` performs the expensive data collection once;
// `run_cell` evaluates one grid cell against the shared context. Every
// bench binary regenerating a paper table/figure is a thin loop over cells.
#pragma once

#include <cstdint>
#include <vector>

#include "hpc/capture.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/feature_selection.h"
#include "ml/metrics.h"

namespace hmd::core {

struct ExperimentConfig {
  sim::CorpusConfig corpus{};
  hpc::CaptureConfig capture{};
  double train_fraction = 0.7;   ///< paper: 70%/30% known/unknown apps
  std::uint64_t split_seed = 42;
  std::size_t selected_features = 16;  ///< paper Table 1 keeps 16
  std::uint64_t model_seed = 7;
};

/// Shared, immutable state for a whole experiment grid.
struct ExperimentContext {
  ExperimentConfig config;
  hpc::Capture capture;             ///< raw 44-event matrix
  ml::Dataset full;                 ///< as Dataset (group = application)
  ml::Split split;                  ///< app-level 70/30 split, all features
  std::vector<ml::FeatureScore> ranking;  ///< correlation ranking (train set)

  /// Global feature (event) indices of the top-k ranked HPCs.
  std::vector<std::size_t> top_features(std::size_t k) const;

  /// Names of the top-k ranked events, in rank order (paper Table 1).
  std::vector<std::string> top_feature_names(std::size_t k) const;
};

/// Convert a capture into a Dataset (row group = application index).
ml::Dataset to_dataset(const hpc::Capture& capture);

/// Collect the corpus, build the dataset, split, and rank features.
/// This is the expensive step — an entire 11-runs-per-application campaign.
ExperimentContext prepare_experiment(const ExperimentConfig& config = {});

/// One cell of the paper's evaluation grid.
struct CellResult {
  ml::ClassifierKind classifier{};
  ml::EnsembleKind ensemble{};
  std::size_t hpcs = 0;
  ml::DetectorMetrics metrics{};
  ml::ModelComplexity complexity{};  ///< trained structure, for hw costing
};

/// Train and evaluate one (classifier, ensemble, #HPC) detector on the
/// context's split. Deterministic given config.model_seed.
CellResult run_cell(const ExperimentContext& ctx, ml::ClassifierKind kind,
                    ml::EnsembleKind ensemble, std::size_t hpcs);

/// Scores of one freshly trained cell over the test set, with labels —
/// used by the ROC figure bench.
struct CellScores {
  std::vector<double> scores;
  std::vector<int> labels;
};
CellScores run_cell_scores(const ExperimentContext& ctx,
                           ml::ClassifierKind kind, ml::EnsembleKind ensemble,
                           std::size_t hpcs);

}  // namespace hmd::core

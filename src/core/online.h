// Run-time detection: the deployment-side component the paper motivates.
//
// A trained detector (typically 2-4 HPC ensemble) watches an application
// while it executes: the PMU is programmed ONCE with the detector's events
// (they must fit the 4 counter registers — the whole point of the paper),
// every 10 ms sample is classified, and an exponentially-weighted moving
// average of the malware probability drives an alarm with hysteresis.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hpc/capture.h"
#include "hpc/pmu.h"
#include "ml/classifier.h"
#include "ml/infer.h"
#include "sim/app_profile.h"
#include "sim/machine.h"

namespace hmd::core {

struct OnlineConfig {
  double ewma_alpha = 0.35;      ///< smoothing of the per-interval scores
  double alarm_on = 0.60;        ///< EWMA level that raises the alarm
  double alarm_off = 0.40;       ///< EWMA level that clears it (hysteresis)
  std::size_t warmup_intervals = 1;  ///< ignore cold-start intervals
  /// Staleness watchdog: after this many *consecutive* missing samples
  /// (observe_missing), verdicts are flagged stale — the held EWMA/alarm
  /// state can no longer be trusted, but the detector must not crash or
  /// silently clear an alarm just because the collector hiccuped.
  std::size_t max_stale_intervals = 8;
  /// Perturbation-aware vote gate: verdicts whose model margin (member
  /// agreement for ensembles — ml::Classifier::margin) falls below this
  /// are flagged `suspect`. An adversary must drag the score across the
  /// decision boundary, which leaves an ensemble's members split; clean
  /// traffic is normally decided near-unanimously. 0 disables the gate.
  double suspect_margin = 0.0;
};

/// Per-interval verdict from the online detector.
struct Verdict {
  std::size_t interval = 0;
  double score = 0.0;   ///< P(malware) for this sample
  double ewma = 0.0;    ///< smoothed score
  bool alarm = false;   ///< alarm state after this sample
  bool degraded = false;  ///< some model features fed held values
  bool stale = false;     ///< watchdog: EWMA older than max_stale_intervals
  /// Margin gate (OnlineConfig::suspect_margin): the model's confidence in
  /// this interval's score is low — treat the verdict as possibly shaped
  /// by an adversary. Always false while the gate is disabled.
  bool suspect = false;
};

/// The batch-steppable half of the online detector: the per-host
/// EWMA/alarm/staleness automaton, decoupled from sampling and scoring.
///
/// OnlineDetector scores one PMU stream and steps one of these per
/// interval; the fleet serving layer (src/serve) instead scores *many*
/// hosts' intervals in one predict_proba_batch call and then steps each
/// host's OnlineState with its score. Both paths run this exact code, so a
/// served host's verdict stream is bit-identical to a dedicated detector
/// fed the same samples. Plain value type: copyable, no allocation, no
/// locking — one per host, owned by whoever serializes that host's time.
class OnlineState {
 public:
  /// Advance one interval with a real sample's score. `degraded` annotates
  /// the verdict only; `suspect` is annotated AND held, so a later
  /// step_missing reports the last trustworthy suspicion level.
  Verdict step_score(const OnlineConfig& cfg, double score,
                     bool degraded = false, bool suspect = false);

  /// Advance one interval with no sample (dropped read, shed load): hold
  /// the EWMA, alarm, and suspect flag, advance the staleness watchdog.
  /// Holding `suspect` matters: a host flagged by the margin gate must not
  /// read as confidently clean just because one sample was dropped.
  Verdict step_missing(const OnlineConfig& cfg, bool degraded = false);

  void reset();

  bool alarmed() const { return alarm_; }
  std::size_t intervals() const { return interval_; }
  std::size_t missing_streak() const { return missing_streak_; }
  bool stale(const OnlineConfig& cfg) const {
    return missing_streak_ > cfg.max_stale_intervals;
  }

 private:
  std::size_t interval_ = 0;
  std::size_t missing_streak_ = 0;
  double ewma_ = 0.0;
  bool alarm_ = false;
  bool suspect_ = false;  ///< last real sample's margin-gate flag, held
  bool ewma_init_ = false;
};

/// Streams PMU samples into a trained classifier.
///
/// Graceful degradation: if some of the model's events are unavailable on
/// this PMU (PmuConfig::unavailable_events), the detector programs the
/// best available subset and feeds held values (0 until ever measured) for
/// the rest, flagging every verdict `degraded` — a weakened detector beats
/// a crashed one at run time. Missing samples (dropped perf reads) are
/// survived via observe_missing(): the EWMA and alarm hold, and a
/// staleness watchdog flags verdicts once the data is too old.
class OnlineDetector {
 public:
  /// `events` are the detector's input events, in the exact feature order
  /// the classifier was trained with; the available subset must fit the
  /// PMU width, and at least one event must be available.
  OnlineDetector(std::shared_ptr<const ml::Classifier> model,
                 std::vector<sim::Event> events, hpc::PmuConfig pmu = {},
                 OnlineConfig cfg = {});

  /// Feed one 10 ms interval of machine activity; returns the verdict.
  Verdict observe(const sim::EventCounts& counts);

  /// The collector lost this interval's sample entirely: hold the EWMA
  /// and alarm state instead of crashing or resetting, advance the
  /// staleness watchdog, and report the held state.
  Verdict observe_missing();

  /// Reset the EWMA/alarm/staleness state (e.g. a new application).
  void reset();

  /// Reprogram the PMU against a (possibly changed) availability mask —
  /// the recovery path out of degraded operation: when counters that were
  /// broken at construction come back (a collector restart, a microcode
  /// fix), the detector re-probes which of its events are countable and
  /// reprograms the registers, while the EWMA, alarm, staleness, and held
  /// feature values all carry across the transition — recovery must not
  /// silently clear an alarm or forget the last trusted state.
  void reprogram(hpc::PmuConfig pmu);

  const std::vector<sim::Event>& events() const { return events_; }
  /// The subset of events() actually programmed on this PMU.
  const std::vector<sim::Event>& active_events() const {
    return active_events_;
  }
  /// True when unavailable events forced a feature-subset fallback.
  bool degraded() const { return active_events_.size() != events_.size(); }
  bool alarmed() const { return state_.alarmed(); }
  std::size_t missing_streak() const { return state_.missing_streak(); }
  /// True once the watchdog considers the held state stale.
  bool stale() const { return state_.stale(cfg_); }

 private:
  std::shared_ptr<const ml::Classifier> model_;
  /// Inference engine for the per-interval score, built once at
  /// construction from the process-wide backend selection (bit-identical
  /// to calling model_->predict_proba directly; see ml/infer.h).
  std::unique_ptr<ml::InferenceBackend> backend_;
  std::vector<sim::Event> events_;
  hpc::Pmu pmu_;
  OnlineConfig cfg_;

  std::vector<sim::Event> active_events_;  ///< programmed subset of events_
  std::vector<std::size_t> active_pos_;    ///< feature index of each active
  std::vector<double> held_;  ///< last known value per model feature
  /// Counter readout buffer reused across intervals: the steady-state
  /// observe() path performs no heap allocation (asserted by test).
  std::vector<std::uint64_t> sample_scratch_;

  OnlineState state_;  ///< EWMA/alarm/staleness automaton
};

/// Execute `app` on a fresh machine under the online detector and return
/// the full verdict timeline (convenience driver for examples/tests).
std::vector<Verdict> monitor_application(const sim::AppProfile& app,
                                         OnlineDetector& detector,
                                         sim::MachineConfig machine_cfg = {},
                                         std::uint32_t run_index = 0);

/// Train a detector *for deployment*: re-captures `corpus` with exactly the
/// detector's `events` — which fit the PMU, so one run per application —
/// and fits the model on that data.
///
/// This step matters: the offline study merges feature columns from
/// different runs (the 11-batch protocol), but at run time all counters
/// are read from the SAME execution, so cross-feature noise is correlated
/// in a way the merged training data never shows. Training on
/// deployment-shaped data removes a systematic false-alarm source (see the
/// run-time section of EXPERIMENTS.md).
std::shared_ptr<ml::Classifier> train_deployment_model(
    const std::vector<sim::AppProfile>& corpus,
    const std::vector<sim::Event>& events, ml::ClassifierKind kind,
    ml::EnsembleKind ensemble, const hpc::CaptureConfig& capture_cfg = {},
    std::uint64_t seed = 7);

}  // namespace hmd::core

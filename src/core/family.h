// Malware *family* classification — the specialization the paper's related
// work (Khasawneh et al., RAID'15) builds: one detector per malware type,
// combined into a decision.
//
// Two-stage design: a binary malware-vs-benign gate (the paper's detector)
// decides WHETHER a sample is malicious; one one-vs-rest detector per
// family then arbitrates WHICH family, by arg-max score. Gating first
// matters — family scores alone are poorly calibrated against benign
// traffic, and the binary detector is the best benign boundary we have.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hpc/capture.h"
#include "ml/classifier.h"

namespace hmd::core {

class FamilyClassifier {
 public:
  struct Config {
    ml::ClassifierKind base = ml::ClassifierKind::kJ48;
    ml::EnsembleKind ensemble = ml::EnsembleKind::kBagging;
    double gate_threshold = 0.5;  ///< binary malware gate decision point
    std::uint64_t seed = 7;
  };

  // Defined out-of-line: a nested struct with default member initializers
  // is not usable as a default argument inside its own class definition.
  FamilyClassifier();
  explicit FamilyClassifier(Config cfg);

  /// Train one family-vs-benign detector per malware family present.
  /// `family_of_row[i]` is "" (benign) or the family of row i.
  void train(const ml::Dataset& data,
             const std::vector<std::string>& family_of_row);

  struct Prediction {
    std::string family;      ///< "" = benign
    double score = 0.0;      ///< winning family's probability
    double gate_score = 0.0; ///< binary malware probability
  };
  Prediction classify(std::span<const double> x) const;

  const std::vector<std::string>& families() const { return families_; }
  bool trained() const { return trained_; }

 private:
  Config cfg_;
  std::vector<std::string> families_;
  std::unique_ptr<ml::Classifier> gate_;  ///< malware-vs-benign
  std::vector<std::unique_ptr<ml::Classifier>> detectors_;
  bool trained_ = false;
};

/// Per-row family labels for a capture ("" for benign rows).
std::vector<std::string> family_labels(const hpc::Capture& capture,
                                       const std::vector<sim::AppProfile>& corpus);

/// Family-level confusion: result[truth][predicted] = row count, with ""
/// for benign on both axes.
using FamilyConfusion = std::map<std::string, std::map<std::string, std::size_t>>;

FamilyConfusion evaluate_families(const FamilyClassifier& clf,
                                  const ml::Dataset& test,
                                  const std::vector<std::string>& family_of_row);

}  // namespace hmd::core

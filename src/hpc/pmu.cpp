#include "hpc/pmu.h"

#include <algorithm>

#include "support/check.h"

namespace hmd::hpc {

Pmu::Pmu(PmuConfig cfg) : cfg_(cfg) {
  HMD_REQUIRE(cfg_.programmable_counters >= 1);
  HMD_REQUIRE(cfg_.counter_bits >= 1 && cfg_.counter_bits <= 64);
}

std::uint32_t Pmu::hardware_event_count(
    const std::vector<sim::Event>& events) {
  std::uint32_t n = 0;
  for (sim::Event e : events)
    if (!sim::is_software_event(e)) ++n;
  return n;
}

void Pmu::program(const std::vector<sim::Event>& events) {
  for (std::size_t i = 0; i < events.size(); ++i)
    for (std::size_t j = i + 1; j < events.size(); ++j)
      HMD_REQUIRE_MSG(events[i] != events[j], "duplicate event programmed");
  HMD_REQUIRE_MSG(
      hardware_event_count(events) <= cfg_.programmable_counters,
      "more hardware events than programmable counter registers");
  for (sim::Event e : events)
    HMD_REQUIRE_MSG(event_available(e),
                    "event not supported by this PMU: " +
                        std::string(sim::event_name(e)));
  programmed_ = events;
  value_.assign(programmed_.size(), 0);
}

bool Pmu::event_available(sim::Event e) const {
  return std::find(cfg_.unavailable_events.begin(),
                   cfg_.unavailable_events.end(),
                   e) == cfg_.unavailable_events.end();
}

std::uint64_t Pmu::saturation_value() const {
  return cfg_.counter_bits >= 64
             ? ~0ULL
             : (std::uint64_t{1} << cfg_.counter_bits) - 1;
}

void Pmu::observe(const sim::EventCounts& counts) {
  const std::uint64_t cap = saturation_value();
  for (std::size_t i = 0; i < programmed_.size(); ++i) {
    const std::uint64_t delta = counts[programmed_[i]];
    // Saturating accumulate: clamp whenever the headroom is too small.
    value_[i] = (delta >= cap - value_[i]) ? cap : value_[i] + delta;
  }
}

std::optional<std::uint64_t> Pmu::read(sim::Event e) const {
  for (std::size_t i = 0; i < programmed_.size(); ++i)
    if (programmed_[i] == e) return value_[i];
  return std::nullopt;
}

std::vector<std::uint64_t> Pmu::sample_and_clear() {
  std::vector<std::uint64_t> out = value_;
  clear();
  return out;
}

void Pmu::sample_and_clear(std::vector<std::uint64_t>& out) {
  out.assign(value_.begin(), value_.end());
  clear();
}

void Pmu::clear() { std::fill(value_.begin(), value_.end(), 0); }

std::vector<std::vector<sim::Event>> schedule_batches(
    const std::vector<sim::Event>& events, std::uint32_t width) {
  HMD_REQUIRE(width >= 1);
  std::vector<std::vector<sim::Event>> batches;
  std::vector<sim::Event> software;
  std::vector<sim::Event> current;
  for (sim::Event e : events) {
    if (sim::is_software_event(e)) {
      software.push_back(e);
      continue;
    }
    current.push_back(e);
    if (current.size() == width) {
      batches.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  if (!software.empty()) {
    if (batches.empty()) batches.emplace_back();
    // Software events cost no register; attach them to the first batch.
    auto& first = batches.front();
    first.insert(first.end(), software.begin(), software.end());
  }
  return batches;
}

}  // namespace hmd::hpc

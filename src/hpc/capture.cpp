#include "hpc/capture.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "support/check.h"
#include "support/parallel.h"

namespace hmd::hpc {
namespace {

/// Column index of each requested event in the output feature matrix.
std::size_t column_of(const std::vector<sim::Event>& events, sim::Event e) {
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i] == e) return i;
  throw InvariantError("event missing from capture request");
}

/// Rows captured for one application — the unit of parallel work. Each
/// task owns a fresh Container/Machine; all randomness derives from the
/// AppProfile's seed and the run index, so tasks are independent and their
/// output does not depend on which thread (or in which order) they ran.
struct AppCapture {
  std::vector<std::vector<double>> rows;
  std::uint64_t runs = 0;
};

AppCapture capture_app_multi_run(const sim::AppProfile& app,
                                 const std::vector<sim::Event>& events,
                                 const std::vector<std::vector<sim::Event>>& batches,
                                 const CaptureConfig& cfg) {
  Container container(cfg.machine, cfg.pmu);
  AppCapture out;
  // rows for this app, assembled across batches by interval index.
  out.rows.assign(app.intervals,
                  std::vector<double>(events.size(),
                                      std::numeric_limits<double>::quiet_NaN()));
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const RunTrace trace =
        container.run(app, static_cast<std::uint32_t>(b), batches[b]);
    HMD_INVARIANT(trace.samples.size() == app.intervals);
    for (std::size_t i = 0; i < trace.samples.size(); ++i)
      for (std::size_t j = 0; j < trace.events.size(); ++j)
        out.rows[i][column_of(events, trace.events[j])] =
            static_cast<double>(trace.samples[i][j]);
  }
  for (const auto& row : out.rows)
    for (double v : row)
      HMD_INVARIANT(v == v);  // every column filled by some batch
  out.runs = container.runs_executed();
  return out;
}

AppCapture capture_app_multiplex(const sim::AppProfile& app,
                                 const std::vector<sim::Event>& events,
                                 const std::vector<std::vector<sim::Event>>& batches,
                                 const CaptureConfig& cfg) {
  sim::Machine machine(cfg.machine);
  Pmu pmu(cfg.pmu);
  machine.start_run(app, /*run_index=*/0);

  AppCapture out;
  out.runs = 1;
  std::vector<double> last_seen(events.size(),
                                std::numeric_limits<double>::quiet_NaN());
  std::size_t interval = 0;
  while (machine.running()) {
    const auto& batch = batches[interval % batches.size()];
    pmu.program(batch);
    const sim::EventCounts counts = machine.next_interval();
    pmu.observe(counts);
    const auto values = pmu.sample_and_clear();
    for (std::size_t j = 0; j < batch.size(); ++j)
      last_seen[column_of(events, batch[j])] = static_cast<double>(values[j]);

    // Emit a row only once every event has been measured at least once
    // (perf reports scaled estimates; we model hold-last-value).
    const bool complete =
        std::none_of(last_seen.begin(), last_seen.end(),
                     [](double v) { return v != v; });
    if (complete) out.rows.push_back(last_seen);
    ++interval;
  }
  return out;
}

AppCapture capture_app_oracle(const sim::AppProfile& app,
                              const std::vector<sim::Event>& events,
                              const CaptureConfig& cfg) {
  sim::Machine machine(cfg.machine);
  machine.start_run(app, /*run_index=*/0);

  AppCapture out;
  out.runs = 1;
  while (machine.running()) {
    const sim::EventCounts counts = machine.next_interval();
    std::vector<double> row(events.size());
    for (std::size_t j = 0; j < events.size(); ++j)
      row[j] = static_cast<double>(counts[events[j]]);
    out.rows.push_back(std::move(row));
  }
  return out;
}

/// Run the per-app capture tasks on a pool and assemble the labelled
/// matrix in corpus order, regardless of task completion order.
void capture_parallel(
    const std::vector<sim::AppProfile>& corpus, const CaptureConfig& cfg,
    const std::function<AppCapture(const sim::AppProfile&)>& capture_app,
    Capture& out) {
  support::ThreadPool pool(cfg.threads);
  auto per_app = pool.parallel_map(
      corpus.size(),
      [&](std::size_t a) { return capture_app(corpus[a]); });
  for (std::size_t a = 0; a < corpus.size(); ++a) {
    const sim::AppProfile& app = corpus[a];
    for (auto& row : per_app[a].rows) {
      out.rows.push_back(std::move(row));
      out.labels.push_back(app.is_malware ? 1 : 0);
      out.row_app.push_back(a);
    }
    out.total_runs += per_app[a].runs;
  }
}

}  // namespace

std::string_view capture_protocol_name(CaptureProtocol p) {
  switch (p) {
    case CaptureProtocol::kMultiRun: return "multi-run";
    case CaptureProtocol::kMultiplex: return "multiplex";
    case CaptureProtocol::kOracle: return "oracle";
  }
  throw PreconditionError("unknown capture protocol");
}

Capture capture_corpus(const std::vector<sim::AppProfile>& corpus,
                       const std::vector<sim::Event>& events,
                       const CaptureConfig& cfg) {
  HMD_REQUIRE(!corpus.empty());
  HMD_REQUIRE(!events.empty());

  Capture out;
  out.feature_names.reserve(events.size());
  for (sim::Event e : events)
    out.feature_names.emplace_back(sim::event_name(e));
  for (const auto& app : corpus) {
    out.app_names.push_back(app.name);
    out.app_labels.push_back(app.is_malware ? 1 : 0);
  }

  switch (cfg.protocol) {
    case CaptureProtocol::kMultiRun: {
      const auto batches =
          schedule_batches(events, Pmu(cfg.pmu).hardware_slots());
      capture_parallel(
          corpus, cfg,
          [&](const sim::AppProfile& app) {
            return capture_app_multi_run(app, events, batches, cfg);
          },
          out);
      break;
    }
    case CaptureProtocol::kMultiplex: {
      const auto batches =
          schedule_batches(events, cfg.pmu.programmable_counters);
      capture_parallel(
          corpus, cfg,
          [&](const sim::AppProfile& app) {
            return capture_app_multiplex(app, events, batches, cfg);
          },
          out);
      break;
    }
    case CaptureProtocol::kOracle:
      capture_parallel(
          corpus, cfg,
          [&](const sim::AppProfile& app) {
            return capture_app_oracle(app, events, cfg);
          },
          out);
      break;
  }
  return out;
}

Capture capture_all_events(const std::vector<sim::AppProfile>& corpus,
                           const CaptureConfig& cfg) {
  std::vector<sim::Event> events(sim::all_events().begin(),
                                 sim::all_events().end());
  return capture_corpus(corpus, events, cfg);
}

}  // namespace hmd::hpc

#include "hpc/capture.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>

#include "hpc/checkpoint.h"
#include "support/check.h"
#include "support/parallel.h"

namespace hmd::hpc {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Retries re-execute the app under a distinct run index so the retried
/// run sees fresh (but still seeded) machine randomness — a crashed real
/// run is a new execution, not a replay. The stride keeps retry indices
/// clear of every batch index.
constexpr std::uint32_t kAttemptRunStride = 1u << 20;

/// Capped exponential backoff, *accounted* rather than slept: sleeping
/// would make capture wall-clock (and thread-schedule) dependent, breaking
/// the bit-determinism contract, but the cost must still show up in the
/// report so protocol-cost ablations can price fault handling.
constexpr std::uint64_t kBackoffBaseMs = 10;
constexpr std::uint64_t kBackoffCapMs = 80;

std::uint64_t backoff_ms_for_retry(std::uint32_t retry_number) {
  const std::uint64_t shifted = retry_number >= 4
                                    ? kBackoffCapMs
                                    : kBackoffBaseMs << (retry_number - 1);
  return std::min(shifted, kBackoffCapMs);
}

/// Column index of each requested event in the output feature matrix.
std::size_t column_of(const std::vector<sim::Event>& events, sim::Event e) {
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i] == e) return i;
  throw InvariantError("event missing from capture request");
}

/// Rows captured for one application — the unit of parallel work. Each
/// task owns a fresh Container/Machine; all randomness derives from the
/// AppProfile's seed, the run index, and the fault seed, so tasks are
/// independent and their output does not depend on which thread (or in
/// which order) they ran.
struct AppCapture {
  std::vector<std::vector<double>> rows;
  AppCaptureReport report;
};

/// Median of the valid (finite) entries of one column; NaN if none.
double column_median(const std::vector<std::vector<double>>& rows,
                     std::size_t col) {
  std::vector<double> valid;
  valid.reserve(rows.size());
  for (const auto& row : rows)
    if (std::isfinite(row[col])) valid.push_back(row[col]);
  if (valid.empty()) return kNaN;
  std::sort(valid.begin(), valid.end());
  const std::size_t mid = valid.size() / 2;
  if (valid.size() % 2 == 1) return valid[mid];
  return 0.5 * (valid[mid - 1] + valid[mid]);
}

/// Validation + imputation of one app's assembled matrix: glitched cells
/// (counter saturation) are screened to NaN, then every NaN cell is imputed
/// hold-last-value, else per-app column median, else 0. Every intervention
/// is tallied in `rep`.
void screen_and_impute(std::vector<std::vector<double>>& rows,
                       double saturation, AppCaptureReport& rep) {
  if (rows.empty()) return;
  const std::size_t cols = rows.front().size();
  for (std::size_t j = 0; j < cols; ++j) {
    for (auto& row : rows) {
      if (std::isfinite(row[j]) && row[j] >= saturation) {
        row[j] = kNaN;  // stuck/overflowed counter readout
        ++rep.glitched_cells;
      }
    }
    const double median = column_median(rows, j);
    double last_valid = kNaN;
    for (auto& row : rows) {
      if (std::isfinite(row[j])) {
        last_valid = row[j];
        continue;
      }
      if (std::isfinite(last_valid))
        row[j] = last_valid;
      else
        row[j] = std::isfinite(median) ? median : 0.0;
      ++rep.imputed_cells;
    }
  }
}

AppCapture capture_app_multi_run(
    const sim::AppProfile& app, const std::vector<sim::Event>& events,
    const std::vector<std::vector<sim::Event>>& batches,
    const CaptureConfig& cfg, const PmuConfig& pmu_cfg,
    const FaultInjector* faults) {
  Container container(cfg.machine, pmu_cfg, faults);
  AppCapture out;
  AppCaptureReport& rep = out.report;

  // A run attempt is usable if it kept at least this many intervals.
  const auto min_intervals = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::ceil(cfg.min_run_fraction *
                       static_cast<double>(app.intervals))));

  std::vector<RunTrace> traces;
  traces.reserve(batches.size());
  for (std::size_t b = 0; b < batches.size() && !rep.quarantined; ++b) {
    bool accepted = false;
    for (std::uint32_t attempt = 0; attempt <= cfg.max_retries; ++attempt) {
      if (attempt > 0) {
        ++rep.retries;
        rep.backoff_ms += backoff_ms_for_retry(attempt);
      }
      const auto run_index =
          static_cast<std::uint32_t>(b) + attempt * kAttemptRunStride;
      RunTrace trace;
      try {
        trace = container.run(app, run_index, batches[b]);
      } catch (const RunCrashError&) {
        ++rep.crashes;
        continue;
      }
      if (trace.samples.size() < min_intervals) continue;  // too short
      if (faults == nullptr)
        HMD_INVARIANT(trace.samples.size() == app.intervals);
      if (trace.truncated) ++rep.truncated_runs;
      traces.push_back(std::move(trace));
      accepted = true;
      break;
    }
    // Bounded retries exhausted without a usable run: quarantine the app
    // rather than fabricate data or abort the whole campaign.
    if (!accepted) rep.quarantined = true;
  }
  rep.attempts = container.runs_executed();
  if (rep.quarantined) return out;  // no rows for this app

  // Unequal batch lengths (truncated runs) align on the shortest common
  // interval: a row may only merge columns that every batch measured.
  std::size_t aligned = app.intervals;
  for (const auto& trace : traces)
    aligned = std::min(aligned, trace.samples.size());
  rep.aligned_intervals = static_cast<std::uint32_t>(aligned);
  rep.cells = aligned * events.size();

  out.rows.assign(aligned, std::vector<double>(events.size(), kNaN));
  for (const auto& trace : traces) {
    for (std::size_t i = 0; i < aligned; ++i) {
      for (std::size_t j = 0; j < trace.events.size(); ++j) {
        if (!trace.dropped.empty() && trace.dropped[i][j] != 0) {
          ++rep.dropped_cells;  // cell lost by the collector; leave NaN
          continue;
        }
        out.rows[i][column_of(events, trace.events[j])] =
            static_cast<double>(trace.samples[i][j]);
      }
    }
  }

  if (faults != nullptr) {
    screen_and_impute(out.rows, static_cast<double>(Pmu(pmu_cfg).saturation_value()),
                      rep);
  }
  for (const auto& row : out.rows)
    for (double v : row)
      HMD_INVARIANT(v == v);  // every column filled (or imputed)
  return out;
}

AppCapture capture_app_multiplex(const sim::AppProfile& app,
                                 const std::vector<sim::Event>& events,
                                 const std::vector<std::vector<sim::Event>>& batches,
                                 const CaptureConfig& cfg,
                                 const PmuConfig& pmu_cfg) {
  sim::Machine machine(cfg.machine);
  Pmu pmu(pmu_cfg);
  machine.start_run(app, /*run_index=*/0);

  AppCapture out;
  out.report.attempts = 1;
  out.rows.reserve(app.intervals);
  std::vector<double> last_seen(events.size(), kNaN);
  std::size_t interval = 0;
  while (machine.running()) {
    const auto& batch = batches[interval % batches.size()];
    pmu.program(batch);
    const sim::EventCounts counts = machine.next_interval();
    pmu.observe(counts);
    const auto values = pmu.sample_and_clear();
    for (std::size_t j = 0; j < batch.size(); ++j)
      last_seen[column_of(events, batch[j])] = static_cast<double>(values[j]);

    // Emit a row only once every event has been measured at least once
    // (perf reports scaled estimates; we model hold-last-value).
    const bool complete =
        std::none_of(last_seen.begin(), last_seen.end(),
                     [](double v) { return v != v; });
    if (complete) out.rows.push_back(last_seen);
    ++interval;
  }
  out.report.aligned_intervals = static_cast<std::uint32_t>(out.rows.size());
  out.report.cells = out.rows.size() * events.size();
  return out;
}

AppCapture capture_app_oracle(const sim::AppProfile& app,
                              const std::vector<sim::Event>& events,
                              const CaptureConfig& cfg) {
  sim::Machine machine(cfg.machine);
  machine.start_run(app, /*run_index=*/0);

  AppCapture out;
  out.report.attempts = 1;
  out.rows.reserve(app.intervals);
  while (machine.running()) {
    const sim::EventCounts counts = machine.next_interval();
    std::vector<double> row(events.size());
    for (std::size_t j = 0; j < events.size(); ++j)
      row[j] = static_cast<double>(counts[events[j]]);
    out.rows.push_back(std::move(row));
  }
  out.report.aligned_intervals = static_cast<std::uint32_t>(out.rows.size());
  out.report.cells = out.rows.size() * events.size();
  return out;
}

/// Run the per-app capture tasks on a pool and assemble the labelled
/// matrix in corpus order, regardless of task completion order.
///
/// Checkpointing rides inside the per-app task: a task whose state was
/// loaded from `resume[a]` returns it verbatim (zero container runs), every
/// executed task persists its result through `store` the moment it
/// completes — each task touches only its own index and file, so the
/// parallel layer's determinism contract is untouched.
void capture_parallel(
    const std::vector<sim::AppProfile>& corpus, const CaptureConfig& cfg,
    const std::function<AppCapture(const sim::AppProfile&)>& capture_app,
    Capture& out, const CheckpointStore* store,
    std::vector<std::optional<AppCheckpoint>>& resume,
    CaptureResumeStats* stats) {
  HMD_INVARIANT(resume.size() == corpus.size());
  support::ThreadPool pool(cfg.threads);
  auto per_app = pool.parallel_map(corpus.size(), [&](std::size_t a) {
    if (resume[a]) {
      AppCapture cap;
      cap.rows = std::move(resume[a]->rows);  // has_value() stays true
      cap.report = resume[a]->report;
      return cap;
    }
    AppCapture cap = capture_app(corpus[a]);
    if (store != nullptr)
      store->save_app(a, corpus[a].name, cap.rows, cap.report);
    return cap;
  });
  std::size_t total_rows = 0;
  for (const auto& cap : per_app) total_rows += cap.rows.size();
  out.rows.reserve(total_rows);
  out.labels.reserve(total_rows);
  out.row_app.reserve(total_rows);
  out.report.apps.reserve(corpus.size());
  for (std::size_t a = 0; a < corpus.size(); ++a) {
    const sim::AppProfile& app = corpus[a];
    for (auto& row : per_app[a].rows) {
      out.rows.push_back(std::move(row));
      out.labels.push_back(app.is_malware ? 1 : 0);
      out.row_app.push_back(a);
    }
    out.total_runs += per_app[a].report.attempts;
    if (stats != nullptr) {
      if (resume[a]) {
        ++stats->loaded_apps;
        stats->loaded_runs += per_app[a].report.attempts;
      } else {
        ++stats->executed_apps;
        stats->session_runs += per_app[a].report.attempts;
      }
    }
    out.report.apps.push_back(std::move(per_app[a].report));
  }
}

}  // namespace

std::string_view capture_protocol_name(CaptureProtocol p) {
  switch (p) {
    case CaptureProtocol::kMultiRun: return "multi-run";
    case CaptureProtocol::kMultiplex: return "multiplex";
    case CaptureProtocol::kOracle: return "oracle";
  }
  throw PreconditionError("unknown capture protocol");
}

std::uint64_t CaptureReport::total_retries() const {
  std::uint64_t n = 0;
  for (const auto& app : apps) n += app.retries;
  return n;
}

std::uint64_t CaptureReport::total_crashes() const {
  std::uint64_t n = 0;
  for (const auto& app : apps) n += app.crashes;
  return n;
}

std::uint64_t CaptureReport::total_backoff_ms() const {
  std::uint64_t n = 0;
  for (const auto& app : apps) n += app.backoff_ms;
  return n;
}

std::size_t CaptureReport::quarantined_apps() const {
  std::size_t n = 0;
  for (const auto& app : apps) n += app.quarantined ? 1 : 0;
  return n;
}

std::size_t CaptureReport::total_imputed_cells() const {
  std::size_t n = 0;
  for (const auto& app : apps) n += app.imputed_cells;
  return n;
}

std::size_t CaptureReport::total_cells() const {
  std::size_t n = 0;
  for (const auto& app : apps) n += app.cells;
  return n;
}

double CaptureReport::quarantine_fraction() const {
  if (apps.empty()) return 0.0;
  return static_cast<double>(quarantined_apps()) /
         static_cast<double>(apps.size());
}

double CaptureReport::imputed_fraction() const {
  const std::size_t cells = total_cells();
  if (cells == 0) return 0.0;
  return static_cast<double>(total_imputed_cells()) /
         static_cast<double>(cells);
}

Capture capture_corpus(const std::vector<sim::AppProfile>& corpus,
                       const std::vector<sim::Event>& events,
                       const CaptureConfig& cfg,
                       CaptureResumeStats* resume_stats) {
  HMD_REQUIRE(!corpus.empty());
  HMD_REQUIRE(!events.empty());
  HMD_REQUIRE_MSG(cfg.min_run_fraction >= 0.0 && cfg.min_run_fraction <= 1.0,
                  "min_run_fraction must be in [0, 1]");
  HMD_REQUIRE_MSG(!cfg.resume || !cfg.checkpoint_dir.empty(),
                  "resume requires a checkpoint_dir");
  // The fault model perturbs Container::run, which only the paper's
  // multi-run protocol uses; the static unavailable-event degradation
  // below applies to every protocol.
  HMD_REQUIRE_MSG(!cfg.faults.any() ||
                      cfg.protocol == CaptureProtocol::kMultiRun,
                  "stochastic fault injection models the multi-run protocol");

  // Graceful degradation: events the PMU cannot count are dropped from the
  // feature set up front and recorded, instead of failing the campaign.
  PmuConfig pmu_cfg = cfg.pmu;
  pmu_cfg.unavailable_events.insert(pmu_cfg.unavailable_events.end(),
                                    cfg.faults.unavailable_events.begin(),
                                    cfg.faults.unavailable_events.end());
  const Pmu probe(pmu_cfg);
  std::vector<sim::Event> available;
  available.reserve(events.size());
  Capture out;
  for (sim::Event e : events) {
    if (probe.event_available(e))
      available.push_back(e);
    else
      out.report.degraded_events.emplace_back(sim::event_name(e));
  }
  HMD_REQUIRE_MSG(!available.empty(),
                  "no requested event is available on this PMU");

  out.feature_names.reserve(available.size());
  for (sim::Event e : available)
    out.feature_names.emplace_back(sim::event_name(e));
  for (const auto& app : corpus) {
    out.app_names.push_back(app.name);
    out.app_labels.push_back(app.is_malware ? 1 : 0);
  }

  // Zero-cost abstraction: without stochastic faults no injector exists,
  // and the capture path (incl. validation/imputation) is untouched.
  std::optional<FaultInjector> injector;
  if (cfg.faults.any()) injector.emplace(cfg.faults);
  const FaultInjector* faults = injector ? &*injector : nullptr;

  // Checkpointing (hpc/checkpoint.h): fingerprint the campaign, then either
  // open a fresh store or load the prior session's per-app state. A loaded
  // *quarantined* app is dropped back to "execute" — quarantine is a
  // retryable outcome, not a result worth keeping — and with an unchanged
  // fingerprint its re-execution reproduces the prior ledger bit-for-bit,
  // so the merged campaign stays identical to an uninterrupted one.
  std::optional<CheckpointStore> store;
  std::vector<std::optional<AppCheckpoint>> resume(corpus.size());
  bool resuming = false;
  if (!cfg.checkpoint_dir.empty()) {
    store.emplace(cfg.checkpoint_dir,
                  capture_fingerprint(corpus, events, cfg));
    // resume_auto defers the fresh-vs-resume choice to the directory: a
    // matching manifest resumes, an absent one starts fresh, a mismatched
    // one throws from can_resume() before any state is touched.
    resuming = cfg.resume || (cfg.resume_auto && store->can_resume());
    if (resuming) {
      store->begin_resume();
      for (std::size_t a = 0; a < corpus.size(); ++a) {
        resume[a] = store->load_app(a, available.size());
        if (resume[a] && resume[a]->report.quarantined) resume[a].reset();
      }
    } else {
      store->begin_fresh();
    }
  }
  if (resume_stats != nullptr) {
    *resume_stats = {};
    resume_stats->checkpointing = store.has_value();
    resume_stats->resumed = resuming;
  }
  const CheckpointStore* store_ptr = store ? &*store : nullptr;

  switch (cfg.protocol) {
    case CaptureProtocol::kMultiRun: {
      const auto batches =
          schedule_batches(available, probe.hardware_slots());
      capture_parallel(
          corpus, cfg,
          [&](const sim::AppProfile& app) {
            return capture_app_multi_run(app, available, batches, cfg,
                                         pmu_cfg, faults);
          },
          out, store_ptr, resume, resume_stats);
      break;
    }
    case CaptureProtocol::kMultiplex: {
      const auto batches =
          schedule_batches(available, pmu_cfg.programmable_counters);
      capture_parallel(
          corpus, cfg,
          [&](const sim::AppProfile& app) {
            return capture_app_multiplex(app, available, batches, cfg,
                                         pmu_cfg);
          },
          out, store_ptr, resume, resume_stats);
      break;
    }
    case CaptureProtocol::kOracle:
      capture_parallel(
          corpus, cfg,
          [&](const sim::AppProfile& app) {
            return capture_app_oracle(app, available, cfg);
          },
          out, store_ptr, resume, resume_stats);
      break;
  }

  // An empty multiplex capture (warm-up longer than the app) predates the
  // fault layer and stays legal; emptiness *caused by quarantine* is fatal.
  if (out.rows.empty() && out.report.quarantined_apps() > 0)
    throw CaptureError(
        "capture campaign produced no usable rows (all " +
        std::to_string(out.report.quarantined_apps()) +
        " applications quarantined after retries; lower the fault rates or "
        "raise max_retries)");
  return out;
}

Capture capture_all_events(const std::vector<sim::AppProfile>& corpus,
                           const CaptureConfig& cfg,
                           CaptureResumeStats* resume_stats) {
  std::vector<sim::Event> events(sim::all_events().begin(),
                                 sim::all_events().end());
  return capture_corpus(corpus, events, cfg, resume_stats);
}

}  // namespace hmd::hpc

// Deterministic fault injection for the HPC capture pipeline.
//
// A real perf deployment never sees the clean traces the paper's offline
// study assumes: ring-buffer overflows drop samples, runs crash or get
// killed mid-capture, counter reads occasionally glitch (saturated or
// corrupted registers), and some events are simply unavailable on a given
// core. FaultInjector models all of these as *seeded, reproducible*
// perturbations of Container::run: every decision derives only from
// (fault seed, application seed, run index), so a faulted capture is
// bit-identical for any worker thread count — the same determinism policy
// as the parallel layer (DESIGN §7).
//
// Fault taxonomy:
//   * run crash     — the run aborts before producing a trace
//                     (Container::run throws RunCrashError; the attempt is
//                     still counted in runs_executed());
//   * truncation    — the run ends early after a deterministic number of
//                     intervals (the app was killed / the collector died);
//   * sample drop   — one (interval, counter) cell is lost (ring-buffer
//                     overflow); visible to the collector via the
//                     RunTrace::dropped mask, exactly like a failed read;
//   * counter glitch— one cell is silently corrupted to the counter's
//                     saturation value; NOT flagged — the capture layer's
//                     validation screens must catch it;
//   * unavailable   — events the PMU of this core cannot count at all
//                     (handled by PmuConfig::unavailable_events + the
//                     capture layer's graceful degradation).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "hpc/container.h"
#include "sim/events.h"
#include "support/rng.h"

namespace hmd::hpc {

/// Fault model parameters. All rates are per-trial probabilities in [0, 1].
struct FaultConfig {
  double sample_drop_rate = 0.0;     ///< P(a sampled cell is dropped)
  double run_crash_rate = 0.0;       ///< P(a run attempt crashes)
  double counter_glitch_rate = 0.0;  ///< P(a cell is silently corrupted)
  double truncate_rate = 0.0;        ///< P(a run ends early)
  /// Events this machine's PMU cannot count (merged into
  /// PmuConfig::unavailable_events by the capture layer).
  std::vector<sim::Event> unavailable_events{};
  std::uint64_t seed = 0;  ///< fault stream seed, independent of the corpus

  /// True if any stochastic fault rate is non-zero (unavailable_events are
  /// a static capability, not a stochastic fault, and are excluded).
  bool any() const {
    return sample_drop_rate > 0.0 || run_crash_rate > 0.0 ||
           counter_glitch_rate > 0.0 || truncate_rate > 0.0;
  }
};

/// Named fault profiles shared by the benches (--faults none|light|heavy).
enum class FaultProfile { kNone, kLight, kHeavy };

FaultConfig fault_profile(FaultProfile profile, std::uint64_t seed = 0);
std::string_view fault_profile_name(FaultProfile profile);
std::optional<FaultProfile> fault_profile_from_name(std::string_view name);

/// One-line human summary, e.g. "drop=2% crash=2% glitch=1% trunc=2%
/// unavailable=1 seed=3"; "none" when nothing is configured.
std::string describe_faults(const FaultConfig& cfg);

/// Thrown by Container::run when the injector decides this attempt crashes.
class RunCrashError : public std::runtime_error {
 public:
  explicit RunCrashError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Seeded source of per-run fault decisions and per-cell perturbations.
class FaultInjector {
 public:
  static constexpr std::uint32_t kNoTruncation = 0xFFFFFFFFu;

  explicit FaultInjector(FaultConfig cfg);

  const FaultConfig& config() const { return cfg_; }

  /// Pre-run decisions for one (app, run_index) attempt.
  struct RunPlan {
    bool crash = false;
    std::uint32_t keep_intervals = kNoTruncation;  ///< truncation point
  };

  RunPlan plan_run(std::uint64_t app_seed, std::uint32_t run_index,
                   std::uint32_t intervals) const;

  /// Perturb a completed trace in place: dropped cells are flagged in
  /// trace.dropped (their values are meaningless), glitched cells are
  /// silently overwritten with `glitch_value` (the counter saturation
  /// value — the classic stuck-counter symptom a validator can screen).
  void perturb(RunTrace& trace, std::uint64_t app_seed,
               std::uint32_t run_index, std::uint64_t glitch_value) const;

 private:
  /// Independent per-run randomness: a pure function of the fault seed,
  /// the application seed, and the run index — never of thread schedule.
  Rng run_rng(std::uint64_t app_seed, std::uint32_t run_index) const;

  FaultConfig cfg_;
};

}  // namespace hmd::hpc

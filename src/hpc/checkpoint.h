// Checkpoint/resume for capture campaigns.
//
// The paper's Figure 2 protocol re-executes every application 11 times
// (11 batches × 4 events), so an interrupted or quarantine-heavy campaign
// used to lose all completed work. This module persists per-application
// capture state — the assembled rows plus the AppCaptureReport ledger — to
// a checkpoint directory as each application completes, and lets a resumed
// campaign reload completed applications and re-execute only the
// quarantined or missing ones.
//
// Contracts:
//
//  * Bit-identity. A resumed campaign's Capture is bit-identical to an
//    uninterrupted run at any thread count: rows round-trip through C99
//    hexadecimal float literals (exact for every finite double), ledgers
//    are integers, and labels/row_app are re-derived from the corpus, so
//    nothing depends on which session executed an application.
//  * Fingerprint, never trust. Every manifest and app file carries a
//    64-bit FNV-1a fingerprint of everything that determines capture
//    output — corpus (per-app name/seed/intervals/label), machine and PMU
//    configuration, event set, protocol, fault rates + fault seed,
//    retry/alignment parameters. A mismatch on resume is a hard
//    CheckpointError, never a silent reuse of stale data. Thread count and
//    the checkpoint settings themselves are deliberately excluded (the
//    determinism contract makes them output-invariant).
//  * Atomic writes. Every file is written to "<name>.tmp" and renamed into
//    place, so a crash mid-write leaves at worst a stray .tmp file (which
//    loaders ignore) and the directory always loadable.
//  * Corruption is loud. A truncated, garbled, or wrong-shape app file
//    fails the resume with a CheckpointError naming the file; delete the
//    file to re-execute that application instead.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "hpc/capture.h"

namespace hmd::hpc {

/// Thrown on any checkpoint defect: resuming a directory whose fingerprint
/// does not match the requested campaign, a corrupted or truncated state
/// file, or an unwritable checkpoint directory.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// On-disk format version; bumped on any incompatible layout change. A
/// version mismatch is treated exactly like a fingerprint mismatch.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Identity of one capture campaign. `hash` covers every input that can
/// change the capture output; the named fields ride along for readable
/// mismatch diagnostics.
struct CaptureFingerprint {
  std::uint32_t format_version = kCheckpointFormatVersion;
  std::uint64_t hash = 0;
  std::string protocol;        ///< capture_protocol_name(cfg.protocol)
  std::size_t num_events = 0;  ///< requested (pre-degradation) event count
  std::size_t num_apps = 0;    ///< corpus size
};

/// Fingerprint of a (corpus, events, config) capture request. Pure and
/// deterministic; cfg.threads / cfg.checkpoint_dir / cfg.resume are
/// excluded because they cannot change any captured bit.
CaptureFingerprint capture_fingerprint(
    const std::vector<sim::AppProfile>& corpus,
    const std::vector<sim::Event>& events, const CaptureConfig& cfg);

/// Persisted state of one completed (or quarantined) application.
struct AppCheckpoint {
  std::vector<std::vector<double>> rows;  ///< empty when quarantined
  AppCaptureReport report;
};

/// One campaign's checkpoint directory: a manifest naming the campaign
/// fingerprint plus one "app_NNNNN.ckpt" file per completed application.
///
/// Concurrency: capture workers call save_app / load_app concurrently, one
/// worker per application. The store needs no mutex for that — both members
/// are `const` (immutable after construction, statically enforced), every
/// method is const, and concurrent calls touch disjoint per-index files;
/// the write-temp-then-rename protocol keeps each file individually atomic.
class CheckpointStore {
 public:
  CheckpointStore(std::string dir, CaptureFingerprint fingerprint);

  /// Start a fresh campaign: create the directory and write the manifest.
  /// Refuses (CheckpointError) a directory that already holds a manifest —
  /// pass resume to continue that campaign, or remove the directory; a
  /// silent overwrite could leave stale app files mixed into a new run.
  void begin_fresh() const;

  /// Resume a prior campaign: the manifest must exist and its version and
  /// fingerprint must match exactly, else CheckpointError.
  void begin_resume() const;

  /// Whether this directory holds a *matching* prior campaign: false when
  /// no manifest exists (a fresh campaign may begin), true when the
  /// manifest's version and fingerprint match this store's exactly.
  /// A manifest that exists but does NOT match throws CheckpointError —
  /// the directory belongs to a different campaign and neither resuming
  /// nor silently overwriting it is safe. This is the decision procedure
  /// behind CaptureConfig::resume_auto (resume if possible, else fresh),
  /// which is what lets a repeated retrain reuse one checkpoint directory.
  bool can_resume() const;

  /// Load application `index` if its state file exists. Returns nullopt
  /// when the file is absent (the app was never completed); throws
  /// CheckpointError when the file exists but is corrupt, truncated, from
  /// a different campaign, or has a row shape other than
  /// aligned_intervals × expected_columns.
  std::optional<AppCheckpoint> load_app(std::size_t index,
                                        std::size_t expected_columns) const;

  /// Atomically persist application `index` (write-temp + rename).
  /// `app_name` is stored for human inspection only.
  void save_app(std::size_t index, std::string_view app_name,
                const std::vector<std::vector<double>>& rows,
                const AppCaptureReport& report) const;

  /// Path of application `index`'s state file ("<dir>/app_NNNNN.ckpt").
  std::string app_path(std::size_t index) const;

  const CaptureFingerprint& fingerprint() const { return fingerprint_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string manifest_path() const;

  const std::string dir_;
  const CaptureFingerprint fingerprint_;
};

}  // namespace hmd::hpc

// Isolated execution of one application run — the LXC-container analogue.
//
// The paper runs every capture inside a fresh Linux container and destroys
// it after each run "to ensure that there is no contamination in collected
// data due to the previous run". Container mirrors that: each run() starts
// from a fully reset Machine (cold caches, cold predictor, fresh address
// layout) and leaves no state behind for the next run.
#pragma once

#include <cstdint>
#include <vector>

#include "hpc/pmu.h"
#include "sim/app_profile.h"
#include "sim/machine.h"

namespace hmd::hpc {

class FaultInjector;

/// Per-interval readout of the programmed counters for one run.
struct RunTrace {
  std::vector<sim::Event> events;  ///< programmed events, column order
  /// samples[i][j] = count of events[j] during 10 ms interval i.
  std::vector<std::vector<std::uint64_t>> samples;
  /// Parallel mask of lost cells (perf read failure / ring-buffer
  /// overflow): dropped[i][j] != 0 means samples[i][j] is meaningless.
  /// Empty — the common case — when no fault injector is attached.
  std::vector<std::vector<std::uint8_t>> dropped;
  /// True when the run ended before the app's full interval count
  /// (injected truncation); samples then holds only the completed prefix.
  bool truncated = false;
};

class Container {
 public:
  /// `faults`, when non-null, perturbs every run deterministically (seeded
  /// per app seed + run index); it must outlive the Container. Null — the
  /// default — leaves the capture path byte-identical to a fault-free
  /// build (zero-cost abstraction).
  explicit Container(sim::MachineConfig machine_cfg = {},
                     PmuConfig pmu_cfg = {},
                     const FaultInjector* faults = nullptr)
      : machine_(machine_cfg), pmu_(pmu_cfg), faults_(faults) {}

  /// Execute `app` from scratch with the PMU programmed to `events`,
  /// sampling every interval. `run_index` selects the batch-specific run
  /// randomness (the paper re-executes the app once per batch).
  /// With a fault injector attached this may throw RunCrashError — the
  /// crashed attempt still counts in runs_executed(), because the paper's
  /// protocol-cost accounting must include work that was thrown away.
  RunTrace run(const sim::AppProfile& app, std::uint32_t run_index,
               const std::vector<sim::Event>& events);

  /// Total run attempts executed, including crashed and truncated ones
  /// (for honest protocol-cost accounting in the ablations).
  std::uint64_t runs_executed() const { return runs_; }

  const Pmu& pmu() const { return pmu_; }

 private:
  sim::Machine machine_;
  Pmu pmu_;
  const FaultInjector* faults_ = nullptr;
  std::uint64_t runs_ = 0;
};

}  // namespace hmd::hpc

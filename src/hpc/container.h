// Isolated execution of one application run — the LXC-container analogue.
//
// The paper runs every capture inside a fresh Linux container and destroys
// it after each run "to ensure that there is no contamination in collected
// data due to the previous run". Container mirrors that: each run() starts
// from a fully reset Machine (cold caches, cold predictor, fresh address
// layout) and leaves no state behind for the next run.
#pragma once

#include <cstdint>
#include <vector>

#include "hpc/pmu.h"
#include "sim/app_profile.h"
#include "sim/machine.h"

namespace hmd::hpc {

/// Per-interval readout of the programmed counters for one run.
struct RunTrace {
  std::vector<sim::Event> events;  ///< programmed events, column order
  /// samples[i][j] = count of events[j] during 10 ms interval i.
  std::vector<std::vector<std::uint64_t>> samples;
};

class Container {
 public:
  explicit Container(sim::MachineConfig machine_cfg = {}, PmuConfig pmu_cfg = {})
      : machine_(machine_cfg), pmu_(pmu_cfg) {}

  /// Execute `app` from scratch with the PMU programmed to `events`,
  /// sampling every interval. `run_index` selects the batch-specific run
  /// randomness (the paper re-executes the app once per batch).
  RunTrace run(const sim::AppProfile& app, std::uint32_t run_index,
               const std::vector<sim::Event>& events);

  /// Total runs executed (for protocol-cost accounting in the ablations).
  std::uint64_t runs_executed() const { return runs_; }

  const Pmu& pmu() const { return pmu_; }

 private:
  sim::Machine machine_;
  Pmu pmu_;
  std::uint64_t runs_ = 0;
};

}  // namespace hmd::hpc

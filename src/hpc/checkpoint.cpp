#include "hpc/checkpoint.h"

#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/check.h"

namespace hmd::hpc {
namespace {

namespace fs = std::filesystem;

/// 64-bit FNV-1a over a tagged, canonical serialisation of the campaign
/// inputs. Every value is fed as fixed-width bytes (doubles via their bit
/// pattern), strings are length-prefixed, so two different input sequences
/// cannot collide by concatenation.
class Fnv1a {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    for (char c : s) byte(static_cast<unsigned char>(c));
  }
  std::uint64_t value() const { return hash_; }

 private:
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 1099511628211ull;
  }
  std::uint64_t hash_ = 14695981039346656037ull;
};

void hash_geometry(Fnv1a& h, const sim::CacheGeometry& g) {
  h.u64(g.sets);
  h.u64(g.ways);
  h.u64(g.line_bytes);
  h.u64(static_cast<std::uint64_t>(g.policy));
}

void hash_machine(Fnv1a& h, const sim::MachineConfig& m) {
  hash_geometry(h, m.l1i);
  hash_geometry(h, m.l1d);
  hash_geometry(h, m.llc);
  hash_geometry(h, m.dtlb);
  hash_geometry(h, m.itlb);
  h.u64(static_cast<std::uint64_t>(m.branch.kind));
  h.u64(m.branch.history_bits);
  hash_geometry(h, m.branch.btb);
  h.f64(m.base_cpi);
  h.f64(m.branch_miss_penalty);
  h.f64(m.btb_miss_penalty);
  h.f64(m.l1d_miss_penalty);
  h.f64(m.l1i_miss_penalty);
  h.f64(m.llc_miss_penalty);
  h.f64(m.remote_node_penalty);
  h.f64(m.tlb_miss_penalty);
  h.f64(m.context_switch_penalty);
  h.f64(m.deschedule_prob);
  h.f64(m.deschedule_min_share);
  h.f64(m.deschedule_max_share);
}

void hash_events(Fnv1a& h, const std::vector<sim::Event>& events) {
  h.u64(events.size());
  for (sim::Event e : events) h.str(sim::event_name(e));
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return std::string(buf);
}

/// Atomic text-file write: the content lands under `path + ".tmp"` and is
/// renamed into place, so a crash mid-write never leaves a half-written
/// file under the final name (loaders ignore .tmp strays).
void write_atomically(const fs::path& path, const std::string& content) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError("cannot write checkpoint file " + tmp.string() +
                            ": " + std::strerror(errno));
    }
    out << content;
    out.flush();
    if (!out) {
      throw CheckpointError("short write to checkpoint file " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw CheckpointError("cannot rename " + tmp.string() + " to " +
                          path.string() + ": " + ec.message());
  }
}

[[noreturn]] void corrupt(const fs::path& path, const std::string& why) {
  throw CheckpointError("corrupt checkpoint file " + path.string() + ": " +
                        why + " (delete the file to re-execute this app)");
}

/// Strict line reader: getline or a named parse error.
std::istream& need_line(std::istream& in, std::string& line,
                        const fs::path& path, const char* what) {
  if (!std::getline(in, line)) corrupt(path, std::string("missing ") + what);
  return in;
}

std::uint64_t parse_u64_field(const std::string& line, const char* key,
                              const fs::path& path) {
  std::istringstream is(line);
  std::string k;
  std::uint64_t v = 0;
  if (!(is >> k >> v) || k != key)
    corrupt(path, std::string("expected '") + key + " <n>', got '" + line +
                      "'");
  std::string rest;
  if (is >> rest)
    corrupt(path, std::string("trailing tokens after '") + key + "'");
  return v;
}

constexpr const char* kManifestMagic = "hmd-capture-manifest";
constexpr const char* kAppMagic = "hmd-app-checkpoint";

}  // namespace

CaptureFingerprint capture_fingerprint(
    const std::vector<sim::AppProfile>& corpus,
    const std::vector<sim::Event>& events, const CaptureConfig& cfg) {
  Fnv1a h;
  h.str("hmd-capture-fingerprint");
  h.u64(kCheckpointFormatVersion);

  h.str(capture_protocol_name(cfg.protocol));
  hash_machine(h, cfg.machine);

  h.str("pmu");
  h.u64(cfg.pmu.programmable_counters);
  h.u64(cfg.pmu.counter_bits);
  hash_events(h, cfg.pmu.unavailable_events);

  h.str("capture");
  h.u64(cfg.max_retries);
  h.f64(cfg.min_run_fraction);

  h.str("faults");
  h.f64(cfg.faults.sample_drop_rate);
  h.f64(cfg.faults.run_crash_rate);
  h.f64(cfg.faults.counter_glitch_rate);
  h.f64(cfg.faults.truncate_rate);
  h.u64(cfg.faults.seed);
  hash_events(h, cfg.faults.unavailable_events);

  h.str("events");
  hash_events(h, events);

  h.str("corpus");
  h.u64(corpus.size());
  for (const auto& app : corpus) {
    h.str(app.name);
    h.u64(app.seed);
    h.u64(app.intervals);
    h.u64(app.is_malware ? 1 : 0);
  }

  CaptureFingerprint fp;
  fp.hash = h.value();
  fp.protocol = std::string(capture_protocol_name(cfg.protocol));
  fp.num_events = events.size();
  fp.num_apps = corpus.size();
  return fp;
}

CheckpointStore::CheckpointStore(std::string dir,
                                 CaptureFingerprint fingerprint)
    : dir_(std::move(dir)), fingerprint_(std::move(fingerprint)) {
  HMD_REQUIRE_MSG(!dir_.empty(), "checkpoint directory must be non-empty");
}

std::string CheckpointStore::manifest_path() const {
  return (fs::path(dir_) / "manifest.ckpt").string();
}

std::string CheckpointStore::app_path(std::size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "app_%05zu.ckpt", index);
  return (fs::path(dir_) / name).string();
}

void CheckpointStore::begin_fresh() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw CheckpointError("cannot create checkpoint directory " + dir_ +
                          ": " + ec.message());
  }
  if (fs::exists(manifest_path())) {
    throw CheckpointError(
        "checkpoint directory " + dir_ +
        " already holds a campaign manifest; resume it (--resume) or remove "
        "the directory before starting a fresh campaign");
  }
  std::ostringstream m;
  m << kManifestMagic << ' ' << fingerprint_.format_version << '\n'
    << "fingerprint " << hex64(fingerprint_.hash) << '\n'
    << "protocol " << fingerprint_.protocol << '\n'
    << "events " << fingerprint_.num_events << '\n'
    << "apps " << fingerprint_.num_apps << '\n';
  write_atomically(manifest_path(), m.str());
}

void CheckpointStore::begin_resume() const {
  const fs::path path = manifest_path();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("cannot resume: no campaign manifest at " +
                          path.string());
  }
  std::string magic;
  std::uint32_t version = 0;
  if (!(in >> magic >> version) || magic != kManifestMagic) {
    throw CheckpointError("corrupt checkpoint manifest " + path.string() +
                          ": bad magic");
  }
  if (version != fingerprint_.format_version) {
    throw CheckpointError(
        "checkpoint format version mismatch at " + path.string() + ": found " +
        std::to_string(version) + ", this build writes " +
        std::to_string(fingerprint_.format_version));
  }
  std::string key, stored_hash;
  if (!(in >> key >> stored_hash) || key != "fingerprint") {
    throw CheckpointError("corrupt checkpoint manifest " + path.string() +
                          ": missing fingerprint");
  }
  if (stored_hash != hex64(fingerprint_.hash)) {
    // Best effort at a readable diff: the manifest's informative fields.
    std::string protocol = "?", events = "?", apps = "?";
    in >> key >> protocol;
    in >> key >> events;
    in >> key >> apps;
    throw CheckpointError(
        "checkpoint fingerprint mismatch at " + path.string() +
        ": the stored campaign (" + stored_hash + ", protocol " + protocol +
        ", " + events + " events, " + apps +
        " apps) was captured under a different configuration than the one "
        "requested (" + hex64(fingerprint_.hash) + ", protocol " +
        fingerprint_.protocol + ", " + std::to_string(fingerprint_.num_events) +
        " events, " + std::to_string(fingerprint_.num_apps) +
        " apps) — corpus seed, fault profile/seed, event set, protocol, or "
        "capture parameters differ; refusing to mix campaigns");
  }
}

bool CheckpointStore::can_resume() const {
  if (!fs::exists(manifest_path())) return false;
  begin_resume();  // validates version + fingerprint; throws on mismatch
  return true;
}

void CheckpointStore::save_app(std::size_t index, std::string_view app_name,
                               const std::vector<std::vector<double>>& rows,
                               const AppCaptureReport& report) const {
  std::ostringstream out;
  out << kAppMagic << ' ' << fingerprint_.format_version << '\n'
      << "fingerprint " << hex64(fingerprint_.hash) << '\n'
      << "app " << index << '\n'
      << "name " << app_name << '\n'
      << "quarantined " << (report.quarantined ? 1 : 0) << '\n'
      << "attempts " << report.attempts << '\n'
      << "retries " << report.retries << '\n'
      << "crashes " << report.crashes << '\n'
      << "truncated_runs " << report.truncated_runs << '\n'
      << "aligned_intervals " << report.aligned_intervals << '\n'
      << "backoff_ms " << report.backoff_ms << '\n'
      << "cells " << report.cells << '\n'
      << "dropped_cells " << report.dropped_cells << '\n'
      << "glitched_cells " << report.glitched_cells << '\n'
      << "imputed_cells " << report.imputed_cells << '\n';
  const std::size_t cols = rows.empty() ? 0 : rows.front().size();
  out << "rows " << rows.size() << ' ' << cols << '\n';
  char cell[48];
  for (const auto& row : rows) {
    HMD_INVARIANT(row.size() == cols);
    for (std::size_t j = 0; j < row.size(); ++j) {
      // C99 hexadecimal float literals round-trip every finite double
      // bit-exactly through strtod — the load path must reproduce the
      // capture to the last bit, decimal shortest-round-trip is not enough.
      std::snprintf(cell, sizeof(cell), "%s%a", j == 0 ? "" : " ", row[j]);
      out << cell;
    }
    out << '\n';
  }
  out << "end\n";
  write_atomically(app_path(index), out.str());
}

std::optional<AppCheckpoint> CheckpointStore::load_app(
    std::size_t index, std::size_t expected_columns) const {
  const fs::path path = app_path(index);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // never completed — re-execute

  std::string line;
  need_line(in, line, path, "header");
  {
    std::istringstream is(line);
    std::string magic;
    std::uint32_t version = 0;
    if (!(is >> magic >> version) || magic != kAppMagic)
      corrupt(path, "bad magic");
    if (version != fingerprint_.format_version)
      corrupt(path, "format version " + std::to_string(version) +
                        " (this build reads " +
                        std::to_string(fingerprint_.format_version) + ")");
  }
  need_line(in, line, path, "fingerprint");
  {
    std::istringstream is(line);
    std::string key, stored;
    if (!(is >> key >> stored) || key != "fingerprint")
      corrupt(path, "missing fingerprint");
    if (stored != hex64(fingerprint_.hash))
      corrupt(path, "fingerprint " + stored +
                        " belongs to a different campaign (expected " +
                        hex64(fingerprint_.hash) + ")");
  }
  need_line(in, line, path, "app index");
  if (parse_u64_field(line, "app", path) != index)
    corrupt(path, "app index does not match file name");
  need_line(in, line, path, "app name");
  if (line.rfind("name ", 0) != 0) corrupt(path, "missing app name");

  AppCheckpoint state;
  AppCaptureReport& rep = state.report;
  const auto u64_line = [&](const char* key) {
    need_line(in, line, path, key);
    return parse_u64_field(line, key, path);
  };
  const auto u32_line = [&](const char* key) {
    return static_cast<std::uint32_t>(u64_line(key));
  };
  rep.quarantined = u64_line("quarantined") != 0;
  rep.attempts = u64_line("attempts");
  rep.retries = u32_line("retries");
  rep.crashes = u32_line("crashes");
  rep.truncated_runs = u32_line("truncated_runs");
  rep.aligned_intervals = u32_line("aligned_intervals");
  rep.backoff_ms = u64_line("backoff_ms");
  rep.cells = static_cast<std::size_t>(u64_line("cells"));
  rep.dropped_cells = static_cast<std::size_t>(u64_line("dropped_cells"));
  rep.glitched_cells = static_cast<std::size_t>(u64_line("glitched_cells"));
  rep.imputed_cells = static_cast<std::size_t>(u64_line("imputed_cells"));

  need_line(in, line, path, "row header");
  std::size_t num_rows = 0, num_cols = 0;
  {
    std::istringstream is(line);
    std::string key;
    if (!(is >> key >> num_rows >> num_cols) || key != "rows")
      corrupt(path, "expected 'rows <n> <cols>', got '" + line + "'");
  }
  if (!rep.quarantined && num_rows != rep.aligned_intervals)
    corrupt(path, "row count disagrees with aligned_intervals");
  if (num_rows > 0 && num_cols != expected_columns)
    corrupt(path, "column count " + std::to_string(num_cols) +
                      " does not match the campaign's feature set (" +
                      std::to_string(expected_columns) + ")");

  state.rows.reserve(num_rows);
  for (std::size_t i = 0; i < num_rows; ++i) {
    need_line(in, line, path, "row data");
    std::vector<double> row;
    row.reserve(num_cols);
    const char* p = line.c_str();
    for (std::size_t j = 0; j < num_cols; ++j) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(p, &end);
      if (end == p || errno == ERANGE)
        corrupt(path, "unparseable cell in row " + std::to_string(i));
      row.push_back(v);
      p = end;
    }
    while (*p == ' ') ++p;
    if (*p != '\0') corrupt(path, "excess cells in row " + std::to_string(i));
    state.rows.push_back(std::move(row));
  }
  need_line(in, line, path, "end marker");
  if (line != "end") corrupt(path, "truncated (missing end marker)");
  return state;
}

}  // namespace hmd::hpc

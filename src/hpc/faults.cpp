#include "hpc/faults.h"

#include <sstream>

#include "support/check.h"

namespace hmd::hpc {
namespace {

void require_rate(double rate, const char* what) {
  HMD_REQUIRE_MSG(rate >= 0.0 && rate <= 1.0,
                  std::string(what) + " must be a probability in [0, 1]");
}

}  // namespace

FaultConfig fault_profile(FaultProfile profile, std::uint64_t seed) {
  FaultConfig cfg;
  cfg.seed = seed;
  switch (profile) {
    case FaultProfile::kNone:
      return cfg;
    case FaultProfile::kLight:
      cfg.sample_drop_rate = 0.02;
      cfg.run_crash_rate = 0.02;
      cfg.counter_glitch_rate = 0.01;
      cfg.truncate_rate = 0.02;
      return cfg;
    case FaultProfile::kHeavy:
      cfg.sample_drop_rate = 0.08;
      cfg.run_crash_rate = 0.08;
      cfg.counter_glitch_rate = 0.04;
      cfg.truncate_rate = 0.08;
      // Real perf deployments routinely lack off-core / uncore events.
      cfg.unavailable_events = {sim::Event::kBusCycles,
                                sim::Event::kNodePrefetchMisses};
      return cfg;
  }
  throw PreconditionError("unknown fault profile");
}

std::string_view fault_profile_name(FaultProfile profile) {
  switch (profile) {
    case FaultProfile::kNone: return "none";
    case FaultProfile::kLight: return "light";
    case FaultProfile::kHeavy: return "heavy";
  }
  throw PreconditionError("unknown fault profile");
}

std::optional<FaultProfile> fault_profile_from_name(std::string_view name) {
  if (name == "none") return FaultProfile::kNone;
  if (name == "light") return FaultProfile::kLight;
  if (name == "heavy") return FaultProfile::kHeavy;
  return std::nullopt;
}

std::string describe_faults(const FaultConfig& cfg) {
  if (!cfg.any() && cfg.unavailable_events.empty()) return "none";
  std::ostringstream os;
  os << "drop=" << 100.0 * cfg.sample_drop_rate << "%"
     << " crash=" << 100.0 * cfg.run_crash_rate << "%"
     << " glitch=" << 100.0 * cfg.counter_glitch_rate << "%"
     << " trunc=" << 100.0 * cfg.truncate_rate << "%";
  if (!cfg.unavailable_events.empty())
    os << " unavailable=" << cfg.unavailable_events.size();
  os << " seed=" << cfg.seed;
  return os.str();
}

FaultInjector::FaultInjector(FaultConfig cfg) : cfg_(std::move(cfg)) {
  require_rate(cfg_.sample_drop_rate, "sample_drop_rate");
  require_rate(cfg_.run_crash_rate, "run_crash_rate");
  require_rate(cfg_.counter_glitch_rate, "counter_glitch_rate");
  require_rate(cfg_.truncate_rate, "truncate_rate");
}

Rng FaultInjector::run_rng(std::uint64_t app_seed,
                           std::uint32_t run_index) const {
  std::uint64_t s = cfg_.seed ^ 0xFA017C0DEULL;
  s = mix64(s) ^ mix64(app_seed);
  s = mix64(s) ^ mix64(0x9E37ULL + run_index);
  return Rng(s);
}

FaultInjector::RunPlan FaultInjector::plan_run(std::uint64_t app_seed,
                                               std::uint32_t run_index,
                                               std::uint32_t intervals) const {
  HMD_REQUIRE(intervals >= 1);
  RunPlan plan;
  Rng rng = run_rng(app_seed, run_index).fork(1);
  plan.crash = rng.chance(cfg_.run_crash_rate);
  if (!plan.crash && rng.chance(cfg_.truncate_rate)) {
    // Uniform truncation point in [1, intervals]; a draw of `intervals`
    // models a kill that lands after the last sample (a no-op).
    plan.keep_intervals = 1 + static_cast<std::uint32_t>(rng.below(intervals));
  }
  return plan;
}

void FaultInjector::perturb(RunTrace& trace, std::uint64_t app_seed,
                            std::uint32_t run_index,
                            std::uint64_t glitch_value) const {
  if (cfg_.sample_drop_rate <= 0.0 && cfg_.counter_glitch_rate <= 0.0) return;
  Rng rng = run_rng(app_seed, run_index).fork(2);
  trace.dropped.assign(trace.samples.size(),
                       std::vector<std::uint8_t>(trace.events.size(), 0));
  for (std::size_t i = 0; i < trace.samples.size(); ++i) {
    for (std::size_t j = 0; j < trace.events.size(); ++j) {
      if (rng.chance(cfg_.sample_drop_rate)) {
        trace.dropped[i][j] = 1;
      } else if (rng.chance(cfg_.counter_glitch_rate)) {
        trace.samples[i][j] = glitch_value;  // silent corruption
      }
    }
  }
}

}  // namespace hmd::hpc

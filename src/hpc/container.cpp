#include "hpc/container.h"

#include "hpc/faults.h"

namespace hmd::hpc {

RunTrace Container::run(const sim::AppProfile& app, std::uint32_t run_index,
                        const std::vector<sim::Event>& events) {
  ++runs_;  // every attempt counts, even one that crashes below
  FaultInjector::RunPlan plan;
  if (faults_ != nullptr)
    plan = faults_->plan_run(app.seed, run_index, app.intervals);
  if (plan.crash)
    throw RunCrashError("injected run crash: app=" + app.name +
                        " run_index=" + std::to_string(run_index));

  // Fresh container: the machine state is fully destroyed and rebuilt.
  machine_.start_run(app, run_index);
  pmu_.program(events);

  RunTrace trace;
  trace.events = pmu_.programmed();
  trace.samples.reserve(app.intervals);
  while (machine_.running() && trace.samples.size() < plan.keep_intervals) {
    const sim::EventCounts counts = machine_.next_interval();
    pmu_.observe(counts);
    trace.samples.push_back(pmu_.sample_and_clear());
  }
  machine_.reset();
  trace.truncated = trace.samples.size() < app.intervals;
  if (faults_ != nullptr)
    faults_->perturb(trace, app.seed, run_index, pmu_.saturation_value());
  return trace;
}

}  // namespace hmd::hpc

#include "hpc/container.h"

namespace hmd::hpc {

RunTrace Container::run(const sim::AppProfile& app, std::uint32_t run_index,
                        const std::vector<sim::Event>& events) {
  ++runs_;
  // Fresh container: the machine state is fully destroyed and rebuilt.
  machine_.start_run(app, run_index);
  pmu_.program(events);

  RunTrace trace;
  trace.events = pmu_.programmed();
  trace.samples.reserve(app.intervals);
  while (machine_.running()) {
    const sim::EventCounts counts = machine_.next_interval();
    pmu_.observe(counts);
    trace.samples.push_back(pmu_.sample_and_clear());
  }
  machine_.reset();
  return trace;
}

}  // namespace hmd::hpc

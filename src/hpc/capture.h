// Corpus-wide HPC data collection — the "Capturing HPCs via Perf Tool"
// stage of the paper's Figure 2 pipeline.
//
// Three capture protocols are provided:
//
//  * kMultiRun   — the paper's protocol: the requested events are scheduled
//                  into batches of (PMU width) and the application is
//                  re-executed once per batch inside a fresh container
//                  ("we divide 44 events into 11 batches of 4 events and run
//                  each application 11 times at sampling time of 10 ms").
//                  Feature vectors are assembled by aligning the batches on
//                  interval index, so the columns of one row come from
//                  *different* runs — exactly the cross-run noise the real
//                  methodology incurs.
//  * kMultiplex  — one execution, rotating the PMU across batches between
//                  intervals (perf's time-division multiplexing); missing
//                  events hold their most recent measured value. Cheaper but
//                  stale — used by the counter-protocol ablation bench.
//  * kOracle     — one execution with an imaginary PMU wide enough for all
//                  events at once; the upper bound no real Nehalem has.
//
// Fault tolerance (multi-run protocol): with a FaultConfig attached, runs
// that crash are retried a bounded number of times (with capped exponential
// backoff *accounted*, never slept — wall-clock sleeps would break the
// bit-determinism contract) and apps whose runs never succeed are
// quarantined; truncated runs shorten the app's matrix to the shortest
// common interval across its batches; dropped and glitched cells are
// screened (NaN / counter-saturation) and imputed (hold-last-value, else
// per-app median). A CaptureReport records every intervention so nothing
// degrades silently.
//
// Checkpoint/resume: with CaptureConfig::checkpoint_dir set, each app's
// completed state (rows + ledger) is persisted atomically as it finishes,
// and a resumed campaign (CaptureConfig::resume) reloads completed apps and
// re-executes only quarantined or missing ones — bit-identical to an
// uninterrupted run, guarded by a config fingerprint (hpc/checkpoint.h).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "hpc/container.h"
#include "hpc/faults.h"
#include "sim/workloads.h"

namespace hmd::hpc {

enum class CaptureProtocol { kMultiRun, kMultiplex, kOracle };

std::string_view capture_protocol_name(CaptureProtocol p);

/// Thrown when a capture campaign cannot produce usable data at all
/// (e.g. every application ended up quarantined under a heavy fault load).
class CaptureError : public std::runtime_error {
 public:
  explicit CaptureError(const std::string& what) : std::runtime_error(what) {}
};

struct CaptureConfig {
  sim::MachineConfig machine{};
  PmuConfig pmu{};
  CaptureProtocol protocol = CaptureProtocol::kMultiRun;
  /// Worker threads for the per-application capture campaign; 0 = auto
  /// (HMD_THREADS, else hardware_concurrency). Every application's runs are
  /// seeded from its own AppProfile::seed and assembled in corpus order, so
  /// the capture is bit-identical for any thread count.
  std::size_t threads = 0;
  /// Fault model. All-zero rates (the default) leave the capture path
  /// byte-identical to a build without the fault layer; non-zero rates
  /// require the multi-run protocol (the only one the paper deploys).
  FaultConfig faults{};
  /// Retries per failed run attempt (crash, or truncation below
  /// min_run_fraction) before the application is quarantined.
  std::uint32_t max_retries = 2;
  /// A truncated run shorter than this fraction of the app's intervals is
  /// treated as failed (retried, then quarantined); longer truncations are
  /// accepted and handled by shortest-common-interval alignment.
  double min_run_fraction = 0.5;
  /// Checkpoint directory for the campaign (see hpc/checkpoint.h). Empty —
  /// the default — disables checkpointing entirely and leaves the capture
  /// path byte-identical to a build without the checkpoint layer. Non-empty
  /// without `resume` starts a fresh campaign, persisting each app's
  /// state as it completes; with `resume`, previously completed apps are
  /// loaded and only quarantined or missing ones re-execute.
  std::string checkpoint_dir{};
  /// Resume the campaign in checkpoint_dir. Requires a manifest whose
  /// config fingerprint matches this request exactly (corpus, events,
  /// protocol, faults, machine/PMU, retry parameters) — any mismatch is a
  /// hard CheckpointError, never a silent reuse of stale data.
  bool resume = false;
  /// Auto-resume: when checkpoint_dir holds a manifest that matches this
  /// request, resume it; when the directory is empty/absent, start fresh.
  /// A *mismatched* manifest is still a hard CheckpointError (neither
  /// resuming it nor overwriting it is safe). This is the mode unattended
  /// callers want — e.g. the serving layer's drift-triggered retrain,
  /// which must survive being killed mid-capture and simply re-run:
  /// first run fresh, interrupted re-runs resume, all bit-identical.
  /// Ignored when checkpoint_dir is empty; `resume` takes precedence.
  bool resume_auto = false;
};

/// Observability record of one capture session under checkpointing: how
/// much work was reused versus executed. Deliberately *not* part of
/// Capture — a resumed Capture must stay bit-identical to an uninterrupted
/// one, and these numbers necessarily differ between the two.
struct CaptureResumeStats {
  bool checkpointing = false;      ///< a checkpoint directory was configured
  bool resumed = false;            ///< this session loaded a prior campaign
  std::size_t loaded_apps = 0;     ///< apps reused from checkpoint files
  std::size_t executed_apps = 0;   ///< apps executed in this session
  std::uint64_t loaded_runs = 0;   ///< container attempts reused (ledger)
  std::uint64_t session_runs = 0;  ///< container attempts this session
};

/// Per-application fault-handling ledger for one capture campaign.
struct AppCaptureReport {
  std::uint64_t attempts = 0;        ///< container runs, incl. retries
  std::uint32_t retries = 0;         ///< attempts beyond the first per batch
  std::uint32_t crashes = 0;         ///< attempts that crashed
  std::uint32_t truncated_runs = 0;  ///< accepted runs shorter than the app
  std::uint32_t aligned_intervals = 0;  ///< rows kept after alignment
  std::uint64_t backoff_ms = 0;      ///< retry backoff accounted (not slept)
  std::size_t cells = 0;             ///< matrix cells kept for this app
  std::size_t dropped_cells = 0;     ///< cells lost by the collector
  std::size_t glitched_cells = 0;    ///< cells caught by the saturation screen
  std::size_t imputed_cells = 0;     ///< dropped + glitched, after imputation
  bool quarantined = false;          ///< app contributed no rows
};

/// Campaign-wide fault-handling summary; apps[] is parallel to
/// Capture::app_names. All-zero for a fault-free capture.
struct CaptureReport {
  std::vector<AppCaptureReport> apps;
  /// Requested events unavailable on this PMU, dropped from the feature
  /// set (graceful degradation — see PmuConfig::unavailable_events).
  std::vector<std::string> degraded_events;

  std::uint64_t total_retries() const;
  std::uint64_t total_crashes() const;
  std::uint64_t total_backoff_ms() const;
  std::size_t quarantined_apps() const;
  std::size_t total_imputed_cells() const;
  std::size_t total_cells() const;
  /// Fraction of apps quarantined / of kept cells imputed — the lint
  /// budgets hmd_lint enforces over a faulted capture.
  double quarantine_fraction() const;
  double imputed_fraction() const;
};

/// A labelled per-interval feature matrix over a corpus of applications.
struct Capture {
  std::vector<std::string> feature_names;    ///< column = event name
  std::vector<std::vector<double>> rows;     ///< one row per 10 ms interval
  std::vector<int> labels;                   ///< per row: 1 = malware
  std::vector<std::size_t> row_app;          ///< per row: corpus app index
  std::vector<std::string> app_names;        ///< per app
  std::vector<int> app_labels;               ///< per app: 1 = malware
  /// Protocol cost: every container run attempt, *including* retries of
  /// crashed or truncated runs — always equal to the sum of
  /// report.apps[*].attempts, so the cost ablations stay honest.
  std::uint64_t total_runs = 0;
  CaptureReport report;                      ///< fault-handling ledger

  std::size_t num_rows() const { return rows.size(); }
  std::size_t num_features() const { return feature_names.size(); }
};

/// Collect `events` for every application in `corpus` under `cfg`.
/// `resume_stats`, when non-null, receives the session's checkpoint
/// accounting (reused vs executed apps/runs); it never affects the capture.
Capture capture_corpus(const std::vector<sim::AppProfile>& corpus,
                       const std::vector<sim::Event>& events,
                       const CaptureConfig& cfg = {},
                       CaptureResumeStats* resume_stats = nullptr);

/// Convenience: capture all 44 events.
Capture capture_all_events(const std::vector<sim::AppProfile>& corpus,
                           const CaptureConfig& cfg = {},
                           CaptureResumeStats* resume_stats = nullptr);

}  // namespace hmd::hpc

// Corpus-wide HPC data collection — the "Capturing HPCs via Perf Tool"
// stage of the paper's Figure 2 pipeline.
//
// Three capture protocols are provided:
//
//  * kMultiRun   — the paper's protocol: the requested events are scheduled
//                  into batches of (PMU width) and the application is
//                  re-executed once per batch inside a fresh container
//                  ("we divide 44 events into 11 batches of 4 events and run
//                  each application 11 times at sampling time of 10 ms").
//                  Feature vectors are assembled by aligning the batches on
//                  interval index, so the columns of one row come from
//                  *different* runs — exactly the cross-run noise the real
//                  methodology incurs.
//  * kMultiplex  — one execution, rotating the PMU across batches between
//                  intervals (perf's time-division multiplexing); missing
//                  events hold their most recent measured value. Cheaper but
//                  stale — used by the counter-protocol ablation bench.
//  * kOracle     — one execution with an imaginary PMU wide enough for all
//                  events at once; the upper bound no real Nehalem has.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hpc/container.h"
#include "sim/workloads.h"

namespace hmd::hpc {

enum class CaptureProtocol { kMultiRun, kMultiplex, kOracle };

std::string_view capture_protocol_name(CaptureProtocol p);

struct CaptureConfig {
  sim::MachineConfig machine{};
  PmuConfig pmu{};
  CaptureProtocol protocol = CaptureProtocol::kMultiRun;
  /// Worker threads for the per-application capture campaign; 0 = auto
  /// (HMD_THREADS, else hardware_concurrency). Every application's runs are
  /// seeded from its own AppProfile::seed and assembled in corpus order, so
  /// the capture is bit-identical for any thread count.
  std::size_t threads = 0;
};

/// A labelled per-interval feature matrix over a corpus of applications.
struct Capture {
  std::vector<std::string> feature_names;    ///< column = event name
  std::vector<std::vector<double>> rows;     ///< one row per 10 ms interval
  std::vector<int> labels;                   ///< per row: 1 = malware
  std::vector<std::size_t> row_app;          ///< per row: corpus app index
  std::vector<std::string> app_names;        ///< per app
  std::vector<int> app_labels;               ///< per app: 1 = malware
  std::uint64_t total_runs = 0;              ///< protocol cost

  std::size_t num_rows() const { return rows.size(); }
  std::size_t num_features() const { return feature_names.size(); }
};

/// Collect `events` for every application in `corpus` under `cfg`.
Capture capture_corpus(const std::vector<sim::AppProfile>& corpus,
                       const std::vector<sim::Event>& events,
                       const CaptureConfig& cfg = {});

/// Convenience: capture all 44 events.
Capture capture_all_events(const std::vector<sim::AppProfile>& corpus,
                           const CaptureConfig& cfg = {});

}  // namespace hmd::hpc

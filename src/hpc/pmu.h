// Performance monitoring unit (PMU) model.
//
// The paper's central constraint: the Xeon X5550 exposes only **4**
// programmable counter registers, so only 4 hardware events can be counted
// concurrently; capturing the 44-event feature space therefore needs 11
// batches = 11 separate executions of the application. This class enforces
// that constraint — the rest of the stack cannot read an event the PMU was
// not programmed with.
//
// Software events (page faults, context switches, ...) are maintained by
// the kernel, not by counter registers, and are always readable — exactly
// as with perf_event_open.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/events.h"

namespace hmd::hpc {

/// Architectural width of the PMU.
struct PmuConfig {
  std::uint32_t programmable_counters = 4;  ///< Nehalem: 4
  /// Bit width of each counter register. Counters saturate at 2^bits - 1
  /// within a sampling period (we model saturating rather than wrapping
  /// counters, the common PMU design choice for narrow counters). Nehalem
  /// counters are 48 bits — effectively unsaturable at 10 ms; the
  /// counter-width ablation shrinks this to study cheap-PMU designs.
  std::uint32_t counter_bits = 48;
  /// Events this PMU cannot count at all (perf returns <not supported> for
  /// them on real machines — off-core and uncore events are the usual
  /// casualties). Programming one throws; the capture layer and the online
  /// detector degrade gracefully to the available subset instead.
  std::vector<sim::Event> unavailable_events{};
};

/// A programmable-counter file that can observe a sim::EventCounts stream.
class Pmu {
 public:
  explicit Pmu(PmuConfig cfg = {});

  /// Program the counter registers. Hardware events in `events` must fit in
  /// the available registers (software events are free). Throws
  /// PreconditionError on over-subscription, duplicates, or events this
  /// PMU does not support (see PmuConfig::unavailable_events).
  void program(const std::vector<sim::Event>& events);

  /// False for events listed in PmuConfig::unavailable_events.
  bool event_available(sim::Event e) const;

  /// Events currently programmed (hardware + software), in program order.
  const std::vector<sim::Event>& programmed() const { return programmed_; }

  /// Accumulate one interval of machine activity into the counters.
  void observe(const sim::EventCounts& counts);

  /// Read a counter; disallowed (nullopt) for events not programmed —
  /// this models the fact that an unprogrammed event simply has no register.
  std::optional<std::uint64_t> read(sim::Event e) const;

  /// Read and clear all programmed counters (sampling readout).
  std::vector<std::uint64_t> sample_and_clear();

  /// Allocation-free readout for per-interval hot paths: fills `out` with
  /// the programmed counters (resized to programmed().size(), reusing its
  /// capacity) and clears them. The online detector samples through a
  /// reused buffer so a 10 ms interval costs no heap traffic.
  void sample_and_clear(std::vector<std::uint64_t>& out);

  /// Zero all counters.
  void clear();

  std::uint32_t hardware_slots() const { return cfg_.programmable_counters; }

  /// The clamp value of a counter register: 2^counter_bits - 1. A readout
  /// at this value is indistinguishable from a stuck/overflowed counter,
  /// which is exactly the screen the capture validator applies.
  std::uint64_t saturation_value() const;

  /// Number of hardware (register-occupying) events among `events`.
  static std::uint32_t hardware_event_count(
      const std::vector<sim::Event>& events);

 private:
  PmuConfig cfg_;
  std::vector<sim::Event> programmed_;
  std::vector<std::uint64_t> value_;
};

/// Partition `events` into capture batches that each fit a `width`-counter
/// PMU. Software events ride along with the first batch (they cost no
/// register). Preserves order. This is the paper's "11 batches of 4 events".
std::vector<std::vector<sim::Event>> schedule_batches(
    const std::vector<sim::Event>& events, std::uint32_t width);

}  // namespace hmd::hpc

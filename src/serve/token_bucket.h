// Token-bucket admission control on the serving pipeline's virtual clock.
//
// The fleet driver is overload-prone by design: thousands of hosts emit a
// sample every 10 ms tick, and the controller must decide — before any
// scoring happens — which samples it can afford to score. A classic token
// bucket does that: `refill_per_tick` tokens arrive per virtual tick, up to
// a burst capacity, and each admitted sample spends one. Samples that find
// the bucket empty are *shed*, explicitly: the host's detector state is
// stepped with OnlineState::step_missing (hold the EWMA/alarm, advance the
// staleness watchdog) and the shed is counted, never silently dropped.
//
// Determinism: the bucket runs entirely on the virtual tick clock (integer
// tokens, refilled by the single-threaded controller in tick order), so the
// admitted/shed partition is a pure function of the workload and the
// configuration — bit-identical at any worker count, which is what lets
// BENCH_serve.json's shed counters participate in the determinism contract.
#pragma once

#include <cstdint>

namespace hmd::serve {

class TokenBucket {
 public:
  /// A bucket that starts full at `capacity` (the burst allowance) and
  /// gains `refill_per_tick` tokens per refill() call, saturating at
  /// capacity. capacity >= 1, refill_per_tick >= 1: a zero refill silently
  /// sheds ALL traffic once the initial burst is spent, which in a serving
  /// config is almost always a misconfiguration (e.g. an integer rate that
  /// rounded down to 0) — so the constructor rejects it. The deliberate
  /// drain-then-starve shape is still available via burst_only().
  TokenBucket(std::uint64_t capacity, std::uint64_t refill_per_tick);

  /// Explicit zero-refill mode: a bucket holding exactly one burst of
  /// `capacity` tokens that never refills. Every sample after the burst is
  /// shed (and accounted in the shed ledger). This is the documented way to
  /// ask for starvation — e.g. to test shed bookkeeping or to hard-cap a
  /// one-shot admission window — so an accidental `refill_per_tick == 0`
  /// can be rejected loudly by the constructor.
  static TokenBucket burst_only(std::uint64_t capacity);

  /// Advance one virtual tick: add the refill, clamp to capacity.
  void refill();

  /// Request admission for `want` samples; grants what the bucket holds.
  /// Returns the number granted (<= want) and accounts the rest as shed.
  std::uint64_t take(std::uint64_t want);

  std::uint64_t tokens() const { return tokens_; }
  std::uint64_t capacity() const { return capacity_; }

  /// Lifetime accounting: offered = granted + shed, maintained by take().
  std::uint64_t offered() const { return offered_; }
  std::uint64_t granted() const { return granted_; }
  std::uint64_t shed() const { return shed_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t refill_per_tick_;
  std::uint64_t tokens_;
  std::uint64_t offered_ = 0;
  std::uint64_t granted_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace hmd::serve

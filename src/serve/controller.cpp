#include "serve/controller.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "serve/token_bucket.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/thread_safety.h"

namespace hmd::serve {

namespace {

constexpr std::uint64_t kStragglerSalt = 0x57A661E2B0A7ED15ULL;
constexpr std::uint64_t kHarvestSalt = 0xB3A9D17E4C08F562ULL;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seeded per-(tick, shard) straggler mark. A pure function of the fleet
/// seed — independent of worker count, so straggler_batches and
/// hedges_launched stay in the deterministic domain.
bool straggles(std::uint64_t seed, std::uint32_t tick, std::uint32_t shard,
               double rate) {
  if (rate <= 0.0) return false;
  const std::uint64_t v =
      mix64(mix64(seed ^ kStragglerSalt) ^
            ((static_cast<std::uint64_t>(tick) << 32) | shard));
  return static_cast<double>(v >> 11) * 0x1.0p-53 < rate;
}

/// Deterministic per-(host, tick) harvest-sampling decision: whether an
/// admitted window row is kept as retrain input. A pure hash, independent
/// of the drop/scale/straggler streams, so harvesting perturbs nothing.
bool harvest_keep(std::uint64_t seed, std::uint32_t host, std::uint32_t tick,
                  double keep_prob) {
  if (keep_prob >= 1.0) return true;
  const std::uint64_t v =
      mix64(mix64(seed ^ kHarvestSalt) ^
            ((static_cast<std::uint64_t>(host) << 32) | tick));
  return static_cast<double>(v >> 11) * 0x1.0p-53 < keep_prob;
}

/// One unit of work: a (tick, shard) batch, or its hedge duplicate.
struct Task {
  std::uint32_t tick = 0;
  std::uint32_t shard = 0;
  bool is_hedge = false;  ///< score-only duplicate for the hedge store
  bool hedged = false;    ///< a hedge duplicate was launched for this batch
  std::uint32_t straggler_reps = 0;  ///< injected extra re-scores
  /// Inference engine of the model epoch current at DISPATCH time. Bound
  /// by the controller, on the virtual tick clock — a late-executing task
  /// still scores with the epoch its tick belongs to, which is what keeps
  /// verdict streams bit-identical across worker counts through a
  /// hot-swap. Points into run_fleet-owned storage that outlives workers.
  const ml::InferenceBackend* backend = nullptr;
  /// Row-major features of the *scored* hosts of the shard, in shard host
  /// order. Shared so a hedge duplicate needs no copy.
  std::shared_ptr<const std::vector<double>> rows;
  /// Outcome per shard host (parallel to the shard's host list); empty for
  /// hedge tasks.
  std::vector<SampleOutcome> outcomes;
  double created_us = 0.0;  ///< batch assembly start (e2e anchor)
  double enqueue_us = 0.0;  ///< queue-wait anchor
};

/// A worker's finished batch, bound for the collector.
struct Chunk {
  std::uint32_t tick = 0;
  std::uint32_t shard = 0;
  std::vector<ServeVerdict> verdicts;
  std::uint64_t alarms = 0;  ///< false->true transitions in this batch
  std::uint64_t scored = 0;  ///< rows scored (== admitted hosts)
  bool hedge_win = false;    ///< the hedge duplicate's scores arrived first
  double queue_us = 0.0;
  double score_us = 0.0;
  double step_us = 0.0;
  double e2e_us = 0.0;
};

/// Rendezvous for hedge results: the hedge worker deposits the batch's
/// scores keyed by (tick, shard); the owner consumes them if they beat its
/// own scoring. Scores are bit-identical either way (same backend, same
/// rows), so this race affects latency only.
class HedgeStore {
 public:
  void put(std::uint32_t tick, std::uint32_t shard,
           std::vector<double> scores) {
    support::MutexLock lock(mutex_);
    store_.emplace(std::make_pair(tick, shard), std::move(scores));
  }

  std::optional<std::vector<double>> take(std::uint32_t tick,
                                          std::uint32_t shard) {
    support::MutexLock lock(mutex_);
    const auto it = store_.find(std::make_pair(tick, shard));
    if (it == store_.end()) return std::nullopt;
    std::vector<double> scores = std::move(it->second);
    store_.erase(it);
    return scores;
  }

 private:
  support::Mutex mutex_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<double>>
      store_ HMD_GUARDED_BY(mutex_);
};

}  // namespace

std::uint64_t verdict_stream_hash(const std::vector<ServeVerdict>& verdicts) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](std::uint64_t v, unsigned bytes) {
    for (unsigned b = 0; b < bytes; ++b) {
      h ^= (v >> (8 * b)) & 0xFFU;
      h *= 0x100000001B3ULL;
    }
  };
  for (const ServeVerdict& v : verdicts) {
    mix(v.tick, 4);
    mix(v.host, 4);
    mix(static_cast<std::uint64_t>(v.outcome), 1);
    mix(static_cast<std::uint64_t>(v.alarm) |
            (static_cast<std::uint64_t>(v.stale) << 1),
        1);
    mix(std::bit_cast<std::uint64_t>(v.score), 8);
    mix(std::bit_cast<std::uint64_t>(v.ewma), 8);
  }
  return h;
}

ServeReport run_fleet(const FleetSetup& fleet, const ServeConfig& cfg) {
  const std::size_t hosts = fleet.hosts.size();
  const std::uint32_t ticks = fleet.cfg.ticks;
  const std::size_t nf = fleet.num_features;
  HMD_REQUIRE(hosts >= 1 && ticks >= 1 && nf >= 1);
  HMD_REQUIRE(cfg.queue_capacity >= 1);

  // Shard count is deterministic-domain: auto depends on the fleet only,
  // never on the worker count.
  std::size_t num_shards =
      cfg.shards > 0 ? cfg.shards : std::max<std::size_t>(1, hosts / 32);
  num_shards = std::min(num_shards, hosts);
  const std::size_t workers =
      std::max<std::size_t>(1,
                            std::min(support::resolve_threads(cfg.threads),
                                     num_shards));

  // Shard s owns hosts h with h mod S == s, ascending; worker w owns
  // shards s with s mod W == w. Per-shard state is touched only by its
  // owning worker, and tasks reach it tick-ordered through a FIFO queue —
  // that exclusivity plus ordering is the whole thread-safety story for
  // detector state.
  std::vector<std::vector<std::uint32_t>> shard_hosts(num_shards);
  for (std::uint32_t h = 0; h < hosts; ++h)
    shard_hosts[h % num_shards].push_back(h);
  std::vector<std::vector<core::OnlineState>> state(num_shards);
  std::vector<std::vector<std::uint8_t>> ever_alarmed(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    state[s].resize(shard_hosts[s].size());
    ever_alarmed[s].assign(shard_hosts[s].size(), 0);
  }

  std::vector<std::unique_ptr<support::BoundedQueue<Task>>> task_q;
  for (std::size_t w = 0; w < workers; ++w)
    task_q.push_back(
        std::make_unique<support::BoundedQueue<Task>>(cfg.queue_capacity));
  support::BoundedQueue<Chunk> result_q(
      std::max<std::size_t>(64, 4 * workers));
  HedgeStore hedges;

  ServeReport report;
  ServeCounters& counters = report.counters;
  ServeTiming& timing = report.timing;
  std::vector<ServeVerdict> verdicts;
  verdicts.reserve(static_cast<std::size_t>(hosts) * ticks);

  const double t_start = now_us();

  // Collector: drains result chunks. Sole owner of `timing`/`verdicts`
  // (and the chunk-summed counters) until joined.
  std::thread collector([&] {
    while (std::optional<Chunk> c = result_q.pop()) {
      timing.queue.add(c->queue_us);
      timing.score.add(c->score_us);
      timing.step.add(c->step_us);
      timing.e2e.add(c->e2e_us);
      if (c->hedge_win) ++timing.hedge_wins;
      ++counters.batches;
      counters.scored_rows += c->scored;
      counters.alarms_raised += c->alarms;
      verdicts.insert(verdicts.end(), c->verdicts.begin(), c->verdicts.end());
    }
  });

  // Drift machinery (serve/drift.h). Windows are written by each shard's
  // owning worker and read by the controller only at pipeline-drain
  // barriers; `completed` (vs the controller's dispatched count) is the
  // barrier condition and the happens-before edge for those reads.
  const bool drift_on = cfg.drift.enabled;
  std::vector<ShardScoreWindow> windows;
  std::optional<DriftDetector> detector;
  if (drift_on) {
    HMD_REQUIRE(!cfg.refresh.enabled ||
                cfg.refresh.refresh_lag_ticks > cfg.refresh.harvest_ticks);
    windows.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s)
      windows.emplace_back(cfg.drift.tail_q);
    detector.emplace(cfg.drift, num_shards);
  }
  std::atomic<std::uint64_t> completed{0};

  // Workers: score whole batches, step the owned shards' automata. The
  // engine comes from the task (the model epoch bound at dispatch), never
  // from shared mutable state.
  const auto score_batch = [&](const ml::InferenceBackend& backend,
                               const std::vector<double>& rows,
                               std::vector<double>& out) {
    const std::size_t n = rows.size() / nf;
    out.assign(n, 0.0);
    if (n == 0) return;
    if (cfg.batched) {
      backend.predict_proba_batch(rows, nf, out);
    } else {
      // A/B baseline: the identical engine, one batch-of-one call per row
      // — the per-interval scalar path every OnlineDetector runs today.
      const std::span<const double> x(rows);
      for (std::size_t i = 0; i < n; ++i)
        out[i] = backend.predict_proba(x.subspan(i * nf, nf));
    }
  };

  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      std::vector<double> scores;
      std::vector<double> waste;
      while (std::optional<Task> t = task_q[w]->pop()) {
        const double pop_us = now_us();
        Task& task = *t;
        if (task.is_hedge) {
          std::vector<double> dup;
          score_batch(*task.backend, *task.rows, dup);
          hedges.put(task.tick, task.shard, std::move(dup));
          continue;
        }
        // Straggler injection: re-score and discard. Burns deterministic
        // extra work in the owner so the hedge has something to win.
        for (std::uint32_t rep = 0; rep < task.straggler_reps; ++rep)
          score_batch(*task.backend, *task.rows, waste);
        bool hedge_win = false;
        if (task.hedged) {
          if (auto dup = hedges.take(task.tick, task.shard)) {
            scores = std::move(*dup);
            hedge_win = true;
          }
        }
        if (!hedge_win) score_batch(*task.backend, *task.rows, scores);
        const double scored_us = now_us();

        Chunk c;
        c.tick = task.tick;
        c.shard = task.shard;
        c.hedge_win = hedge_win;
        c.verdicts.reserve(task.outcomes.size());
        std::vector<core::OnlineState>& st = state[task.shard];
        std::vector<std::uint8_t>& ever = ever_alarmed[task.shard];
        std::size_t k = 0;  // cursor into the batch's scored rows
        for (std::size_t i = 0; i < task.outcomes.size(); ++i) {
          const bool was = st[i].alarmed();
          core::Verdict v;
          if (task.outcomes[i] == SampleOutcome::kScored) {
            const double sc = scores[k++];
            // Shard windows fill in FIFO tick order by the single owning
            // worker — the deterministic observation sequence the drift
            // detector's purity contract rests on.
            if (drift_on) windows[task.shard].observe(sc);
            v = st[i].step_score(cfg.online, sc);
          } else {
            v = st[i].step_missing(cfg.online);
          }
          if (!was && st[i].alarmed()) {
            ++c.alarms;
            ever[i] = 1;
          }
          c.verdicts.push_back({task.tick, shard_hosts[task.shard][i],
                                v.score, v.ewma, task.outcomes[i], v.alarm,
                                v.stale});
        }
        c.scored = k;
        const double done_us = now_us();
        c.queue_us = pop_us - task.enqueue_us;
        c.score_us = scored_us - pop_us;
        c.step_us = done_us - scored_us;
        c.e2e_us = done_us - task.created_us;
        result_q.push(std::move(c));
        if (drift_on) {
          // Release: publishes this task's window writes to the
          // controller's barrier (acquire) read.
          completed.fetch_add(1, std::memory_order_release);
          completed.notify_all();
        }
      }
    });
  }

  // Controller (this thread): the single producer. Admission, drops, batch
  // assembly, and straggler/hedge marks all happen here, on the virtual
  // tick clock, in (tick, shard, host) order — the deterministic domain.
  const std::uint64_t admit_cap =
      cfg.admit_burst > 0 ? cfg.admit_burst : cfg.admit_per_tick;
  std::optional<TokenBucket> bucket;
  if (cfg.admit_per_tick > 0) bucket.emplace(admit_cap, cfg.admit_per_tick);

  std::uint64_t missing = 0;
  std::uint64_t shed = 0;
  std::uint64_t admitted = 0;
  std::uint64_t straggler_batches = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t stalls = 0;
  std::uint64_t dispatched = 0;  ///< non-hedge tasks, barrier denominator
  LatencyStats gen_stats;

  // Model-epoch state. Epoch 0 serves with the fleet's backend; a single
  // drift-triggered refresh installs epoch 1 at a fixed virtual tick. The
  // current pointer is bound into every Task at dispatch, so the swap
  // needs no barrier: in-flight epoch-0 tasks keep their epoch-0 engine.
  const ml::InferenceBackend* current_backend = fleet.backend.get();
  std::shared_ptr<const ml::Classifier> swapped_model;
  std::unique_ptr<ml::InferenceBackend> swapped_backend;
  std::uint64_t current_epoch = 0;
  std::uint64_t model_swaps = 0;
  std::uint64_t model_swap_tick = 0;

  // Pipeline-drain barrier: every dispatched batch stepped and its shard
  // window published. Only used at drift checks.
  const auto drain_pipeline = [&] {
    std::uint64_t done = completed.load(std::memory_order_acquire);
    while (done != dispatched) {
      completed.wait(done, std::memory_order_acquire);
      done = completed.load(std::memory_order_acquire);
    }
  };

  // Refresh state machine: trigger -> harvest window rows (controller
  // side, at assembly) -> background retrain -> hot-swap at swap_tick.
  bool trigger_seen = false;
  bool harvesting = false;
  std::uint32_t harvest_from = 0, harvest_until = 0;
  double harvest_keep_prob = 1.0;
  std::vector<double> harvest_rows;
  std::vector<int> harvest_labels;
  bool swap_scheduled = false;
  std::uint32_t swap_tick = 0;
  struct RetrainShared {
    RetrainOutcome out;
    double ms = 0.0;
  };
  std::unique_ptr<RetrainShared> retrain_shared;
  std::thread retrain_thread;
  double barrier_us = 0.0;

  for (std::uint32_t tick = 0; tick < ticks; ++tick) {
    // Hot-swap at the scheduled virtual tick: every batch from this tick
    // on scores with the refreshed model. The join is the only place the
    // controller can block on the retrain — measured domain only (the
    // swap tick itself was fixed at trigger time).
    if (swap_scheduled && tick == swap_tick) {
      swap_scheduled = false;
      const double w0 = now_us();
      retrain_thread.join();
      timing.swap_wait_ms = (now_us() - w0) / 1000.0;
      swapped_model = retrain_shared->out.model;
      swapped_backend = ml::make_active_backend(*swapped_model);
      current_backend = swapped_backend.get();
      current_epoch = 1;
      model_swaps = 1;
      model_swap_tick = tick;
    }
    if (bucket && tick > 0) bucket->refill();  // the bucket starts full
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const double t0 = now_us();
      const std::vector<std::uint32_t>& members = shard_hosts[s];
      auto rows = std::make_shared<std::vector<double>>();
      rows->reserve(members.size() * nf);
      std::vector<SampleOutcome> outcomes(members.size(),
                                          SampleOutcome::kScored);
      for (std::size_t i = 0; i < members.size(); ++i) {
        const std::uint32_t h = members[i];
        if (sample_dropped(fleet, h, tick)) {
          outcomes[i] = SampleOutcome::kMissing;
          ++missing;
          continue;
        }
        if (bucket && bucket->take(1) == 0) {
          outcomes[i] = SampleOutcome::kShed;
          ++shed;
          continue;
        }
        ++admitted;
        const std::size_t at = rows->size();
        rows->resize(at + nf);
        gen_features(fleet, h, tick, std::span<double>(*rows).subspan(at, nf));
        // Harvest (post-trigger): a deterministic hash-sample of admitted
        // windows becomes retrain input, labelled by ground truth — the
        // analyst-triage model (drift.h). Rows are copied here, at
        // assembly, so the harvest never touches worker-owned data.
        if (harvesting && tick >= harvest_from && tick < harvest_until &&
            harvest_labels.size() < cfg.refresh.max_window_rows &&
            harvest_keep(fleet.cfg.seed, h, tick, harvest_keep_prob)) {
          const std::span<const double> row(*rows);
          harvest_rows.insert(harvest_rows.end(), row.begin() + at,
                              row.begin() + at + nf);
          harvest_labels.push_back(host_infected(fleet, h, tick) ? 1 : 0);
        }
      }

      Task task;
      task.tick = tick;
      task.shard = s;
      task.backend = current_backend;
      task.rows = rows;
      task.outcomes = std::move(outcomes);
      task.created_us = t0;
      const bool straggle =
          straggles(fleet.cfg.seed, tick, s, cfg.straggler_rate);
      if (straggle) {
        ++straggler_batches;
        task.straggler_reps = cfg.straggler_reps;
        if (cfg.hedge && !rows->empty()) {
          // Hedge goes out FIRST, to the next worker's queue: with one
          // worker it lands ahead of the straggling batch and always wins;
          // with several it genuinely races.
          ++hedges_launched;
          task.hedged = true;
          Task hedge;
          hedge.tick = tick;
          hedge.shard = s;
          hedge.is_hedge = true;
          hedge.backend = current_backend;
          hedge.rows = rows;
          hedge.enqueue_us = now_us();
          const std::size_t hw = (s + 1) % workers;
          if (!task_q[hw]->try_push(hedge)) {
            ++stalls;
            task_q[hw]->push(std::move(hedge));
          }
        }
      }
      gen_stats.add(now_us() - t0);
      task.enqueue_us = now_us();
      ++dispatched;  // hedge duplicates don't count toward the barrier
      const std::size_t w = s % workers;
      if (!task_q[w]->try_push(task)) {
        ++stalls;  // backpressure: a full queue stalls the controller
        task_q[w]->push(std::move(task));
      }
    }

    if (drift_on && (tick + 1) % cfg.drift.check_interval == 0) {
      // Drift check: drain the pipeline (the acquire on `completed` makes
      // every worker's window writes visible), evaluate, reset windows for
      // the next interval. The barrier cost is measured-domain; the check
      // verdict is a pure function of the score stream.
      const double b0 = now_us();
      drain_pipeline();
      barrier_us += now_us() - b0;
      const bool fired =
          detector->check(std::span<const ShardScoreWindow>(windows), tick);
      for (ShardScoreWindow& w : windows) w.reset();
      if (fired && !trigger_seen) {
        trigger_seen = true;
        if (cfg.refresh.enabled) {
          // Fix the whole refresh timeline now, on the tick clock: harvest
          // the next harvest_ticks ticks, swap at trigger + lag. The keep
          // probability targets max_window_rows with 25% headroom (the
          // row-count cap above is the hard stop); it depends only on
          // fleet geometry, so it is deterministic too.
          harvesting = true;
          harvest_from = tick + 1;
          harvest_until = tick + 1 + cfg.refresh.harvest_ticks;
          const double expected =
              static_cast<double>(hosts) *
              static_cast<double>(cfg.refresh.harvest_ticks);
          harvest_keep_prob = std::min(
              1.0,
              expected > 0.0
                  ? static_cast<double>(cfg.refresh.max_window_rows) * 1.25 /
                        expected
                  : 1.0);
          swap_scheduled = true;
          swap_tick = tick + cfg.refresh.refresh_lag_ticks;
        }
      }
    }

    if (harvesting && tick + 1 == harvest_until) {
      // Harvest complete: kick the retrain off on a background worker. It
      // owns moved copies of the harvest; the controller only rejoins it
      // at the swap tick (or at end of run if the swap lands past it).
      harvesting = false;
      retrain_shared = std::make_unique<RetrainShared>();
      retrain_thread = std::thread(
          [&fleet, &refresh = cfg.refresh, shared = retrain_shared.get(),
           rows = std::move(harvest_rows),
           labels = std::move(harvest_labels)] {
            const double r0 = now_us();
            shared->out = retrain_model(fleet, rows, labels, refresh);
            shared->ms = (now_us() - r0) / 1000.0;
          });
    }
  }

  for (auto& q : task_q) q->close();
  for (std::thread& t : pool) t.join();
  result_q.close();
  collector.join();
  // A retrain whose swap tick landed past the end of the run (or was
  // launched on the final ticks) still has to be joined; its model is
  // simply never installed.
  if (retrain_thread.joinable()) retrain_thread.join();
  const double t_end = now_us();

  // The stream is assembled in completion order (worker- and
  // timing-dependent); sorting by (tick, host) restores the canonical
  // order every configuration shares.
  std::sort(verdicts.begin(), verdicts.end(),
            [](const ServeVerdict& a, const ServeVerdict& b) {
              return a.tick != b.tick ? a.tick < b.tick : a.host < b.host;
            });

  counters.hosts = hosts;
  counters.ticks = ticks;
  counters.shards = num_shards;
  counters.offered = static_cast<std::uint64_t>(hosts) * ticks;
  counters.missing = missing;
  counters.emitted = counters.offered - missing;
  counters.admitted = admitted;
  counters.shed = shed;
  counters.straggler_batches = straggler_batches;
  counters.hedges_launched = hedges_launched;
  counters.malware_hosts = fleet.malware_hosts;
  counters.campaign_hosts = fleet.campaign_hosts;
  for (const auto& flags : ever_alarmed)
    for (std::uint8_t f : flags) counters.alarmed_hosts += f;
  if (drift_on) {
    counters.drift_checks = detector->checks();
    counters.drift_triggers = detector->triggers();
    counters.drift_trigger_tick = detector->trigger_tick();
    counters.drift_tripped_shards = detector->tripped_shards();
  }
  counters.model_swaps = model_swaps;
  counters.model_swap_tick = model_swap_tick;
  if (retrain_shared) {
    counters.retrain_base_rows = retrain_shared->out.base_rows;
    counters.retrain_window_rows = retrain_shared->out.window_rows;
    timing.retrain_ms = retrain_shared->ms;
  }
  counters.final_model_epoch = current_epoch;
  counters.verdict_hash = verdict_stream_hash(verdicts);

  timing.gen = gen_stats;
  timing.wall_ms = (t_end - t_start) / 1000.0;
  timing.intervals_per_sec =
      timing.wall_ms > 0.0
          ? static_cast<double>(counters.offered) * 1000.0 / timing.wall_ms
          : 0.0;
  timing.hedge_wasted = hedges_launched - timing.hedge_wins;
  timing.backpressure_stalls = stalls;
  timing.barrier_ms = barrier_us / 1000.0;

  if (cfg.record_verdicts) report.verdicts = std::move(verdicts);
  return report;
}

double verdict_window_accuracy(const FleetSetup& fleet,
                               const std::vector<ServeVerdict>& verdicts,
                               std::uint32_t begin_tick,
                               std::uint32_t end_tick) {
  std::uint64_t n = 0;
  std::uint64_t correct = 0;
  for (const ServeVerdict& v : verdicts) {
    if (v.tick < begin_tick || v.tick >= end_tick) continue;
    ++n;
    if (v.alarm == host_infected(fleet, v.host, v.tick)) ++correct;
  }
  return n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

}  // namespace hmd::serve

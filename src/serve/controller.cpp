#include "serve/controller.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "serve/token_bucket.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/thread_safety.h"

namespace hmd::serve {

namespace {

constexpr std::uint64_t kStragglerSalt = 0x57A661E2B0A7ED15ULL;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seeded per-(tick, shard) straggler mark. A pure function of the fleet
/// seed — independent of worker count, so straggler_batches and
/// hedges_launched stay in the deterministic domain.
bool straggles(std::uint64_t seed, std::uint32_t tick, std::uint32_t shard,
               double rate) {
  if (rate <= 0.0) return false;
  const std::uint64_t v =
      mix64(mix64(seed ^ kStragglerSalt) ^
            ((static_cast<std::uint64_t>(tick) << 32) | shard));
  return static_cast<double>(v >> 11) * 0x1.0p-53 < rate;
}

/// One unit of work: a (tick, shard) batch, or its hedge duplicate.
struct Task {
  std::uint32_t tick = 0;
  std::uint32_t shard = 0;
  bool is_hedge = false;  ///< score-only duplicate for the hedge store
  bool hedged = false;    ///< a hedge duplicate was launched for this batch
  std::uint32_t straggler_reps = 0;  ///< injected extra re-scores
  /// Row-major features of the *scored* hosts of the shard, in shard host
  /// order. Shared so a hedge duplicate needs no copy.
  std::shared_ptr<const std::vector<double>> rows;
  /// Outcome per shard host (parallel to the shard's host list); empty for
  /// hedge tasks.
  std::vector<SampleOutcome> outcomes;
  double created_us = 0.0;  ///< batch assembly start (e2e anchor)
  double enqueue_us = 0.0;  ///< queue-wait anchor
};

/// A worker's finished batch, bound for the collector.
struct Chunk {
  std::uint32_t tick = 0;
  std::uint32_t shard = 0;
  std::vector<ServeVerdict> verdicts;
  std::uint64_t alarms = 0;  ///< false->true transitions in this batch
  std::uint64_t scored = 0;  ///< rows scored (== admitted hosts)
  bool hedge_win = false;    ///< the hedge duplicate's scores arrived first
  double queue_us = 0.0;
  double score_us = 0.0;
  double step_us = 0.0;
  double e2e_us = 0.0;
};

/// Rendezvous for hedge results: the hedge worker deposits the batch's
/// scores keyed by (tick, shard); the owner consumes them if they beat its
/// own scoring. Scores are bit-identical either way (same backend, same
/// rows), so this race affects latency only.
class HedgeStore {
 public:
  void put(std::uint32_t tick, std::uint32_t shard,
           std::vector<double> scores) {
    support::MutexLock lock(mutex_);
    store_.emplace(std::make_pair(tick, shard), std::move(scores));
  }

  std::optional<std::vector<double>> take(std::uint32_t tick,
                                          std::uint32_t shard) {
    support::MutexLock lock(mutex_);
    const auto it = store_.find(std::make_pair(tick, shard));
    if (it == store_.end()) return std::nullopt;
    std::vector<double> scores = std::move(it->second);
    store_.erase(it);
    return scores;
  }

 private:
  support::Mutex mutex_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<double>>
      store_ HMD_GUARDED_BY(mutex_);
};

}  // namespace

std::uint64_t verdict_stream_hash(const std::vector<ServeVerdict>& verdicts) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](std::uint64_t v, unsigned bytes) {
    for (unsigned b = 0; b < bytes; ++b) {
      h ^= (v >> (8 * b)) & 0xFFU;
      h *= 0x100000001B3ULL;
    }
  };
  for (const ServeVerdict& v : verdicts) {
    mix(v.tick, 4);
    mix(v.host, 4);
    mix(static_cast<std::uint64_t>(v.outcome), 1);
    mix(static_cast<std::uint64_t>(v.alarm) |
            (static_cast<std::uint64_t>(v.stale) << 1),
        1);
    mix(std::bit_cast<std::uint64_t>(v.score), 8);
    mix(std::bit_cast<std::uint64_t>(v.ewma), 8);
  }
  return h;
}

ServeReport run_fleet(const FleetSetup& fleet, const ServeConfig& cfg) {
  const std::size_t hosts = fleet.hosts.size();
  const std::uint32_t ticks = fleet.cfg.ticks;
  const std::size_t nf = fleet.num_features;
  HMD_REQUIRE(hosts >= 1 && ticks >= 1 && nf >= 1);
  HMD_REQUIRE(cfg.queue_capacity >= 1);

  // Shard count is deterministic-domain: auto depends on the fleet only,
  // never on the worker count.
  std::size_t num_shards =
      cfg.shards > 0 ? cfg.shards : std::max<std::size_t>(1, hosts / 32);
  num_shards = std::min(num_shards, hosts);
  const std::size_t workers =
      std::max<std::size_t>(1,
                            std::min(support::resolve_threads(cfg.threads),
                                     num_shards));

  // Shard s owns hosts h with h mod S == s, ascending; worker w owns
  // shards s with s mod W == w. Per-shard state is touched only by its
  // owning worker, and tasks reach it tick-ordered through a FIFO queue —
  // that exclusivity plus ordering is the whole thread-safety story for
  // detector state.
  std::vector<std::vector<std::uint32_t>> shard_hosts(num_shards);
  for (std::uint32_t h = 0; h < hosts; ++h)
    shard_hosts[h % num_shards].push_back(h);
  std::vector<std::vector<core::OnlineState>> state(num_shards);
  std::vector<std::vector<std::uint8_t>> ever_alarmed(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    state[s].resize(shard_hosts[s].size());
    ever_alarmed[s].assign(shard_hosts[s].size(), 0);
  }

  std::vector<std::unique_ptr<support::BoundedQueue<Task>>> task_q;
  for (std::size_t w = 0; w < workers; ++w)
    task_q.push_back(
        std::make_unique<support::BoundedQueue<Task>>(cfg.queue_capacity));
  support::BoundedQueue<Chunk> result_q(
      std::max<std::size_t>(64, 4 * workers));
  HedgeStore hedges;

  ServeReport report;
  ServeCounters& counters = report.counters;
  ServeTiming& timing = report.timing;
  std::vector<ServeVerdict> verdicts;
  verdicts.reserve(static_cast<std::size_t>(hosts) * ticks);

  const double t_start = now_us();

  // Collector: drains result chunks. Sole owner of `timing`/`verdicts`
  // (and the chunk-summed counters) until joined.
  std::thread collector([&] {
    while (std::optional<Chunk> c = result_q.pop()) {
      timing.queue.add(c->queue_us);
      timing.score.add(c->score_us);
      timing.step.add(c->step_us);
      timing.e2e.add(c->e2e_us);
      if (c->hedge_win) ++timing.hedge_wins;
      ++counters.batches;
      counters.scored_rows += c->scored;
      counters.alarms_raised += c->alarms;
      verdicts.insert(verdicts.end(), c->verdicts.begin(), c->verdicts.end());
    }
  });

  // Workers: score whole batches, step the owned shards' automata.
  const auto score_batch = [&](const std::vector<double>& rows,
                               std::vector<double>& out) {
    const std::size_t n = rows.size() / nf;
    out.assign(n, 0.0);
    if (n == 0) return;
    if (cfg.batched) {
      fleet.backend->predict_proba_batch(rows, nf, out);
    } else {
      // A/B baseline: the identical engine, one batch-of-one call per row
      // — the per-interval scalar path every OnlineDetector runs today.
      const std::span<const double> x(rows);
      for (std::size_t i = 0; i < n; ++i)
        out[i] = fleet.backend->predict_proba(x.subspan(i * nf, nf));
    }
  };

  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      std::vector<double> scores;
      std::vector<double> waste;
      while (std::optional<Task> t = task_q[w]->pop()) {
        const double pop_us = now_us();
        Task& task = *t;
        if (task.is_hedge) {
          std::vector<double> dup;
          score_batch(*task.rows, dup);
          hedges.put(task.tick, task.shard, std::move(dup));
          continue;
        }
        // Straggler injection: re-score and discard. Burns deterministic
        // extra work in the owner so the hedge has something to win.
        for (std::uint32_t rep = 0; rep < task.straggler_reps; ++rep)
          score_batch(*task.rows, waste);
        bool hedge_win = false;
        if (task.hedged) {
          if (auto dup = hedges.take(task.tick, task.shard)) {
            scores = std::move(*dup);
            hedge_win = true;
          }
        }
        if (!hedge_win) score_batch(*task.rows, scores);
        const double scored_us = now_us();

        Chunk c;
        c.tick = task.tick;
        c.shard = task.shard;
        c.hedge_win = hedge_win;
        c.verdicts.reserve(task.outcomes.size());
        std::vector<core::OnlineState>& st = state[task.shard];
        std::vector<std::uint8_t>& ever = ever_alarmed[task.shard];
        std::size_t k = 0;  // cursor into the batch's scored rows
        for (std::size_t i = 0; i < task.outcomes.size(); ++i) {
          const bool was = st[i].alarmed();
          const core::Verdict v =
              task.outcomes[i] == SampleOutcome::kScored
                  ? st[i].step_score(cfg.online, scores[k++])
                  : st[i].step_missing(cfg.online);
          if (!was && st[i].alarmed()) {
            ++c.alarms;
            ever[i] = 1;
          }
          c.verdicts.push_back({task.tick, shard_hosts[task.shard][i],
                                v.score, v.ewma, task.outcomes[i], v.alarm,
                                v.stale});
        }
        c.scored = k;
        const double done_us = now_us();
        c.queue_us = pop_us - task.enqueue_us;
        c.score_us = scored_us - pop_us;
        c.step_us = done_us - scored_us;
        c.e2e_us = done_us - task.created_us;
        result_q.push(std::move(c));
      }
    });
  }

  // Controller (this thread): the single producer. Admission, drops, batch
  // assembly, and straggler/hedge marks all happen here, on the virtual
  // tick clock, in (tick, shard, host) order — the deterministic domain.
  const std::uint64_t admit_cap =
      cfg.admit_burst > 0 ? cfg.admit_burst : cfg.admit_per_tick;
  std::optional<TokenBucket> bucket;
  if (cfg.admit_per_tick > 0) bucket.emplace(admit_cap, cfg.admit_per_tick);

  std::uint64_t missing = 0;
  std::uint64_t shed = 0;
  std::uint64_t admitted = 0;
  std::uint64_t straggler_batches = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t stalls = 0;
  LatencyStats gen_stats;

  for (std::uint32_t tick = 0; tick < ticks; ++tick) {
    if (bucket && tick > 0) bucket->refill();  // the bucket starts full
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const double t0 = now_us();
      const std::vector<std::uint32_t>& members = shard_hosts[s];
      auto rows = std::make_shared<std::vector<double>>();
      rows->reserve(members.size() * nf);
      std::vector<SampleOutcome> outcomes(members.size(),
                                          SampleOutcome::kScored);
      for (std::size_t i = 0; i < members.size(); ++i) {
        const std::uint32_t h = members[i];
        if (sample_dropped(fleet, h, tick)) {
          outcomes[i] = SampleOutcome::kMissing;
          ++missing;
          continue;
        }
        if (bucket && bucket->take(1) == 0) {
          outcomes[i] = SampleOutcome::kShed;
          ++shed;
          continue;
        }
        ++admitted;
        const std::size_t at = rows->size();
        rows->resize(at + nf);
        gen_features(fleet, h, tick, std::span<double>(*rows).subspan(at, nf));
      }

      Task task;
      task.tick = tick;
      task.shard = s;
      task.rows = rows;
      task.outcomes = std::move(outcomes);
      task.created_us = t0;
      const bool straggle =
          straggles(fleet.cfg.seed, tick, s, cfg.straggler_rate);
      if (straggle) {
        ++straggler_batches;
        task.straggler_reps = cfg.straggler_reps;
        if (cfg.hedge && !rows->empty()) {
          // Hedge goes out FIRST, to the next worker's queue: with one
          // worker it lands ahead of the straggling batch and always wins;
          // with several it genuinely races.
          ++hedges_launched;
          task.hedged = true;
          Task hedge;
          hedge.tick = tick;
          hedge.shard = s;
          hedge.is_hedge = true;
          hedge.rows = rows;
          hedge.enqueue_us = now_us();
          const std::size_t hw = (s + 1) % workers;
          if (!task_q[hw]->try_push(hedge)) {
            ++stalls;
            task_q[hw]->push(std::move(hedge));
          }
        }
      }
      gen_stats.add(now_us() - t0);
      task.enqueue_us = now_us();
      const std::size_t w = s % workers;
      if (!task_q[w]->try_push(task)) {
        ++stalls;  // backpressure: a full queue stalls the controller
        task_q[w]->push(std::move(task));
      }
    }
  }

  for (auto& q : task_q) q->close();
  for (std::thread& t : pool) t.join();
  result_q.close();
  collector.join();
  const double t_end = now_us();

  // The stream is assembled in completion order (worker- and
  // timing-dependent); sorting by (tick, host) restores the canonical
  // order every configuration shares.
  std::sort(verdicts.begin(), verdicts.end(),
            [](const ServeVerdict& a, const ServeVerdict& b) {
              return a.tick != b.tick ? a.tick < b.tick : a.host < b.host;
            });

  counters.hosts = hosts;
  counters.ticks = ticks;
  counters.shards = num_shards;
  counters.offered = static_cast<std::uint64_t>(hosts) * ticks;
  counters.missing = missing;
  counters.emitted = counters.offered - missing;
  counters.admitted = admitted;
  counters.shed = shed;
  counters.straggler_batches = straggler_batches;
  counters.hedges_launched = hedges_launched;
  counters.malware_hosts = fleet.malware_hosts;
  for (const auto& flags : ever_alarmed)
    for (std::uint8_t f : flags) counters.alarmed_hosts += f;
  counters.verdict_hash = verdict_stream_hash(verdicts);

  timing.gen = gen_stats;
  timing.wall_ms = (t_end - t_start) / 1000.0;
  timing.intervals_per_sec =
      timing.wall_ms > 0.0
          ? static_cast<double>(counters.offered) * 1000.0 / timing.wall_ms
          : 0.0;
  timing.hedge_wasted = hedges_launched - timing.hedge_wins;
  timing.backpressure_stalls = stalls;

  if (cfg.record_verdicts) report.verdicts = std::move(verdicts);
  return report;
}

}  // namespace hmd::serve

// Streaming quantile estimation for tail-latency accounting.
//
// The serving pipeline (serve/controller.h) reports p50/p95/p99 per stage
// over hundreds of thousands of measurements; storing and sorting them all
// would cost more than the stages being measured. QuantileEstimator is the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the target
// quantile and its neighbourhood in O(1) memory and O(1) per observation,
// adjusting marker heights by a piecewise-parabolic fit as samples stream
// in. Below five samples the estimate falls back to the exact sorted value,
// so short runs (a --quick bench, a unit test) are not nonsense.
//
// Determinism: the estimate is a pure function of the observation sequence
// — no randomisation, no clocks — which is what lets the estimator tests
// compare it against a sorted reference on seeded streams. (The *latencies*
// fed to it at run time are measured and therefore vary; the counters
// section of a serve report never passes through this class.)
#pragma once

#include <array>
#include <cstddef>

namespace hmd::serve {

/// P² single-quantile streaming estimator.
class QuantileEstimator {
 public:
  /// `q` in (0, 1), e.g. 0.99 for p99.
  explicit QuantileEstimator(double q);

  /// Observe one value.
  void add(double x);

  /// Current estimate of the q-quantile; 0 before any observation.
  ///
  /// Small-sample convention (count < 5, the exact sorted prefix):
  /// nearest-rank on the 0-based rank q*(count-1), with exact-half ranks
  /// rounding UP to the upper element — e.g. the median of {a, b} is b.
  /// This is deliberate and locked by regression tests: the upper element
  /// never under-reports a latency tail, and round-half-up keeps the
  /// estimate monotone in q across the bootstrap counts.
  double estimate() const;

  std::size_t count() const { return count_; }
  double quantile() const { return q_; }

  /// The five P² marker heights (only the first count() entries are
  /// meaningful below five samples). Exposed for invariant tests: after
  /// the markers take over, heights must stay sorted even under
  /// duplicate-heavy or constant streams.
  const std::array<double, 5>& marker_heights() const { return height_; }

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> height_{};    ///< marker heights (sorted invariant)
  std::array<double, 5> pos_{};       ///< actual marker positions (1-based)
  std::array<double, 5> desired_{};   ///< desired marker positions
  std::array<double, 5> rate_{};      ///< desired-position increments
};

/// One pipeline stage's latency account: p50/p95/p99 plus mean and max.
/// All values are in microseconds by convention of the serving layer.
class LatencyStats {
 public:
  LatencyStats() : p50_(0.50), p95_(0.95), p99_(0.99) {}

  void add(double us);

  double p50() const { return p50_.estimate(); }
  double p95() const { return p95_.estimate(); }
  double p99() const { return p99_.estimate(); }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double max() const { return max_; }
  std::size_t count() const { return count_; }

 private:
  QuantileEstimator p50_;
  QuantileEstimator p95_;
  QuantileEstimator p99_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hmd::serve

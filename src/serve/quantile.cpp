#include "serve/quantile.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace hmd::serve {

QuantileEstimator::QuantileEstimator(double q) : q_(q) {
  HMD_REQUIRE(q > 0.0 && q < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  rate_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void QuantileEstimator::add(double x) {
  if (count_ < 5) {
    // Bootstrap: collect the first five observations sorted. estimate()
    // reads the exact value out of this prefix until the markers take over.
    height_[count_++] = x;
    std::sort(height_.begin(), height_.begin() + static_cast<long>(count_));
    if (count_ == 5)
      for (std::size_t i = 0; i < 5; ++i) pos_[i] = static_cast<double>(i + 1);
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  std::size_t k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = std::max(height_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rate_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions, by a
  // piecewise-parabolic (P²) height step when it preserves ordering, else
  // by a linear step.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double np = pos_[i + 1], pp = pos_[i - 1], cp = pos_[i];
      const double nh = height_[i + 1], ph = height_[i - 1], ch = height_[i];
      double h = ch + s / (np - pp) *
                          ((cp - pp + s) * (nh - ch) / (np - cp) +
                           (np - cp - s) * (ch - ph) / (cp - pp));
      if (h <= ph || h >= nh)  // parabolic step broke ordering: go linear
        h = s > 0.0 ? ch + (nh - ch) / (np - cp)
                    : ch - (ph - ch) / (pp - cp);
      height_[i] = h;
      pos_[i] += s;
    }
  }
}

double QuantileEstimator::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile of the sorted prefix: nearest-rank on the 0-based
    // fractional rank q*(count-1), rounding half-ranks UP (rank + 0.5
    // truncates to the upper neighbour on exact .5). The upper element is
    // the pinned convention — for a latency tail it is the conservative
    // choice (never under-reports), and the round-half-up tie-break keeps
    // the estimate monotone in q. Locked by the SmallSampleConvention
    // regression tests; changing it silently shifts every --quick bench.
    const double rank = q_ * static_cast<double>(count_ - 1);
    const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
    return height_[std::min(idx, count_ - 1)];
  }
  return height_[2];
}

void LatencyStats::add(double us) {
  p50_.add(us);
  p95_.add(us);
  p99_.add(us);
  ++count_;
  sum_ += us;
  max_ = std::max(max_, us);
}

}  // namespace hmd::serve

#include "serve/fleet.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/experiment.h"
#include "hpc/capture.h"
#include "sim/workloads.h"
#include "support/check.h"
#include "support/rng.h"

namespace hmd::serve {

namespace {

// Independent salt per decision stream: drop decisions, scale jitter, and
// host assignment must not share randomness, or consuming one (e.g. the
// admission path asking "dropped?" before generating the row) would
// perturb the others.
constexpr std::uint64_t kHostSalt = 0x9D7A11F0C3B52E64ULL;
constexpr std::uint64_t kDropSalt = 0x5EED0FDA7ADE0D11ULL;
constexpr std::uint64_t kScaleSalt = 0xC0FFEE1234ABCD99ULL;
constexpr std::uint64_t kCampaignSalt = 0xD81F7A2E50C4B376ULL;

std::uint64_t pack(std::uint32_t host, std::uint32_t tick) {
  return (static_cast<std::uint64_t>(host) << 32) | tick;
}

}  // namespace

FleetSetup make_fleet(const FleetConfig& cfg) {
  HMD_REQUIRE(cfg.hosts >= 1);
  HMD_REQUIRE(cfg.ticks >= 1);
  HMD_REQUIRE(cfg.bank_intervals >= 1);
  HMD_REQUIRE(cfg.malware_fraction >= 0.0 && cfg.malware_fraction <= 1.0);
  HMD_REQUIRE(cfg.drop_rate >= 0.0 && cfg.drop_rate < 1.0);
  const FleetDriftConfig& drift = cfg.drift;
  if (drift.enabled) {
    HMD_REQUIRE(drift.novel_templates >= 1 &&
                drift.novel_templates < sim::malware_template_count());
    HMD_REQUIRE(drift.campaign_fraction >= 0.0 &&
                drift.campaign_fraction <= 1.0);
    HMD_REQUIRE(drift.benign_shift >= 0.0);
  }
  // Templates the deployed model trains on; the held-out tail is the drift
  // scenario's novel families, reachable only through the bank.
  const std::size_t trained_malware_templates =
      drift.enabled ? sim::malware_template_count() - drift.novel_templates
                    : sim::malware_template_count();

  FleetSetup fleet;
  fleet.cfg = cfg;

  // Offline phase, exactly the deployment recipe of examples/runtime_monitor:
  // the 44-event study capture picks the top features, then the served
  // model is retrained on data captured the way it will be read at run
  // time (its events together, one run per app).
  core::ExperimentConfig exp;
  exp.corpus.seed = cfg.seed;
  exp.corpus.benign_per_template = cfg.train_variants;
  exp.corpus.malware_per_template = cfg.train_variants;
  exp.corpus.intervals_per_app = cfg.train_intervals;
  // Drift: the study and both training corpora exclude the novel-family
  // templates — the model's first contact with them is the campaign wave.
  if (drift.enabled)
    exp.corpus.malware_template_limit = trained_malware_templates;
  exp.threads = cfg.threads;
  exp.capture.threads = cfg.threads;
  const core::ExperimentContext ctx = core::prepare_experiment(exp);

  for (std::size_t f : ctx.top_features(cfg.hpcs))
    fleet.events.push_back(sim::event_from_name(ctx.full.feature_name(f)));
  fleet.num_features = fleet.events.size();

  sim::CorpusConfig deploy = exp.corpus;
  deploy.benign_per_template = cfg.train_variants + 2;
  deploy.malware_per_template = cfg.train_variants + 2;
  // Capture the deployment-protocol training split here (instead of inside
  // train_deployment_model) so the split itself can be cached on the setup:
  // a drift-triggered retrain augments exactly this data, or — with a
  // checkpoint directory — re-captures this same recipe resumably.
  const hpc::Capture deploy_capture = hpc::capture_corpus(
      sim::build_corpus(deploy), fleet.events, exp.capture);
  fleet.base_train = core::to_dataset(deploy_capture);
  fleet.offline = true;
  fleet.deploy_corpus = deploy;
  fleet.capture_cfg = exp.capture;
  std::shared_ptr<ml::Classifier> model =
      ml::make_detector(fleet.model_kind, fleet.model_ensemble,
                        fleet.model_seed);
  model->train(fleet.base_train);
  fleet.model = std::move(model);
  fleet.backend = ml::make_active_backend(*fleet.model);

  // Template bank: one *unseen* variant per behaviour template (the
  // variant index was never instantiated by either training corpus),
  // captured with exactly the model's events — one run per app.
  const std::uint32_t unseen = deploy.benign_per_template;
  std::vector<sim::AppProfile> bank_corpus;
  for (std::size_t t = 0; t < sim::benign_template_count(); ++t)
    bank_corpus.push_back(
        sim::make_benign(t, unseen, cfg.seed, cfg.bank_intervals));
  for (std::size_t t = 0; t < sim::malware_template_count(); ++t)
    bank_corpus.push_back(
        sim::make_malware(t, unseen, cfg.seed, cfg.bank_intervals));
  const hpc::Capture bank =
      hpc::capture_corpus(bank_corpus, fleet.events, exp.capture);
  HMD_REQUIRE(bank.num_features() == fleet.num_features);

  fleet.app_begin.assign(bank_corpus.size(), 0);
  fleet.app_rows.assign(bank_corpus.size(), 0);
  fleet.app_labels = bank.app_labels;
  for (std::size_t r = 0; r < bank.num_rows(); ++r) {
    const std::size_t app = bank.row_app[r];
    if (fleet.app_rows[app] == 0) fleet.app_begin[app] = fleet.bank.size() /
                                                         fleet.num_features;
    ++fleet.app_rows[app];
    fleet.bank.insert(fleet.bank.end(), bank.rows[r].begin(),
                      bank.rows[r].end());
  }
  for (std::size_t app = 0; app < bank_corpus.size(); ++app)
    HMD_REQUIRE_MSG(fleet.app_rows[app] > 0,
                    "bank app captured no rows: " + bank.app_names[app]);

  // Host assignment: every field is a hash of (seed, host) — stable under
  // any fleet size change that keeps the host index.
  const std::uint32_t benign_apps =
      static_cast<std::uint32_t>(sim::benign_template_count());
  const std::uint32_t malware_apps =
      static_cast<std::uint32_t>(sim::malware_template_count());
  const std::uint64_t host_seed = mix64(cfg.seed ^ kHostSalt);
  fleet.hosts.resize(cfg.hosts);
  for (std::uint32_t h = 0; h < cfg.hosts; ++h) {
    const std::uint64_t hs = mix64(host_seed ^ h);
    HostProfile& p = fleet.hosts[h];
    p.is_malware =
        static_cast<double>(mix64(hs ^ 1) >> 11) * 0x1.0p-53 <
        cfg.malware_fraction;
    p.benign_app = static_cast<std::uint32_t>(mix64(hs ^ 2) % benign_apps);
    p.malware_app =
        benign_apps + static_cast<std::uint32_t>(mix64(hs ^ 3) % malware_apps);
    if (!p.is_malware) p.malware_app = p.benign_app;
    // Infection begins somewhere in the middle 60% of the run, so every
    // malware host shows both clean and infected behaviour.
    p.onset_tick = cfg.ticks / 5 +
                   static_cast<std::uint32_t>(
                       mix64(hs ^ 4) % (1 + (cfg.ticks * 3) / 5));
    p.phase = static_cast<std::uint32_t>(mix64(hs ^ 5));
    if (p.is_malware) ++fleet.malware_hosts;

    // Campaign recruitment: an extra hash-selected slice of the *benign*
    // hosts switches to a novel-family app mid-run, with individually
    // staggered onsets — the wave arrives over campaign_spread ticks, not
    // as one synchronized step. Pure hash of (seed, host), like the rest.
    if (drift.enabled && !p.is_malware) {
      const std::uint64_t cs = mix64(mix64(cfg.seed ^ kCampaignSalt) ^ h);
      if (static_cast<double>(mix64(cs ^ 1) >> 11) * 0x1.0p-53 <
          drift.campaign_fraction) {
        const std::uint32_t onset =
            drift.campaign_onset > 0 ? drift.campaign_onset : cfg.ticks / 2;
        p.campaign = true;
        p.campaign_app =
            benign_apps +
            static_cast<std::uint32_t>(trained_malware_templates) +
            static_cast<std::uint32_t>(mix64(cs ^ 2) %
                                       drift.novel_templates);
        p.campaign_onset =
            onset + static_cast<std::uint32_t>(
                        mix64(cs ^ 3) %
                        (1 + static_cast<std::uint64_t>(
                                 drift.campaign_spread)));
        ++fleet.campaign_hosts;
      }
    }
  }
  return fleet;
}

bool sample_dropped(const FleetSetup& fleet, std::uint32_t host,
                    std::uint32_t tick) {
  const double rate = fleet.cfg.drop_rate;
  if (rate <= 0.0) return false;
  const std::uint64_t v =
      mix64(mix64(fleet.cfg.seed ^ kDropSalt) ^ pack(host, tick));
  return static_cast<double>(v >> 11) * 0x1.0p-53 < rate;
}

void gen_features(const FleetSetup& fleet, std::uint32_t host,
                  std::uint32_t tick, std::span<double> out) {
  HMD_REQUIRE(out.size() == fleet.num_features);
  const HostProfile& p = fleet.hosts[host];
  // Campaign recruits replay their novel-family app once their staggered
  // onset passes; statically assigned malware hosts keep their app.
  std::uint32_t app = p.benign_app;
  bool infected = false;
  if (p.is_malware && tick >= p.onset_tick) {
    app = p.malware_app;
    infected = true;
  } else if (p.campaign && tick >= p.campaign_onset) {
    app = p.campaign_app;
    infected = true;
  }
  const std::size_t rows = fleet.app_rows[app];
  const std::size_t row = fleet.app_begin[app] + (tick + p.phase) % rows;
  const double* src = fleet.bank.data() + row * fleet.num_features;
  double scale = 1.0;
  if (fleet.cfg.scale_sigma > 0.0) {
    Rng rng(mix64(fleet.cfg.seed ^ kScaleSalt) ^ pack(host, tick));
    scale = rng.lognormal(0.0, fleet.cfg.scale_sigma);
  }
  // Benign behaviour shift: clean rows drift upward by a deterministic
  // ramp after the campaign onset — the environment changed, no malware
  // involved. Infected rows are left alone so the shift erodes the benign
  // side of the decision boundary specifically.
  const FleetDriftConfig& drift = fleet.cfg.drift;
  if (drift.enabled && !infected && drift.benign_shift > 0.0) {
    const std::uint32_t onset =
        drift.campaign_onset > 0 ? drift.campaign_onset : fleet.cfg.ticks / 2;
    if (tick >= onset) {
      const double ramp =
          drift.benign_shift_ramp == 0
              ? 1.0
              : std::min(1.0, static_cast<double>(tick - onset) /
                                  static_cast<double>(drift.benign_shift_ramp));
      scale *= 1.0 + drift.benign_shift * ramp;
    }
  }
  for (std::size_t j = 0; j < fleet.num_features; ++j) out[j] = src[j] * scale;
}

}  // namespace hmd::serve

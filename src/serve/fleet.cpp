#include "serve/fleet.h"

#include <string>
#include <utility>

#include "core/experiment.h"
#include "hpc/capture.h"
#include "sim/workloads.h"
#include "support/check.h"
#include "support/rng.h"

namespace hmd::serve {

namespace {

// Independent salt per decision stream: drop decisions, scale jitter, and
// host assignment must not share randomness, or consuming one (e.g. the
// admission path asking "dropped?" before generating the row) would
// perturb the others.
constexpr std::uint64_t kHostSalt = 0x9D7A11F0C3B52E64ULL;
constexpr std::uint64_t kDropSalt = 0x5EED0FDA7ADE0D11ULL;
constexpr std::uint64_t kScaleSalt = 0xC0FFEE1234ABCD99ULL;

std::uint64_t pack(std::uint32_t host, std::uint32_t tick) {
  return (static_cast<std::uint64_t>(host) << 32) | tick;
}

}  // namespace

FleetSetup make_fleet(const FleetConfig& cfg) {
  HMD_REQUIRE(cfg.hosts >= 1);
  HMD_REQUIRE(cfg.ticks >= 1);
  HMD_REQUIRE(cfg.bank_intervals >= 1);
  HMD_REQUIRE(cfg.malware_fraction >= 0.0 && cfg.malware_fraction <= 1.0);
  HMD_REQUIRE(cfg.drop_rate >= 0.0 && cfg.drop_rate < 1.0);

  FleetSetup fleet;
  fleet.cfg = cfg;

  // Offline phase, exactly the deployment recipe of examples/runtime_monitor:
  // the 44-event study capture picks the top features, then the served
  // model is retrained on data captured the way it will be read at run
  // time (its events together, one run per app).
  core::ExperimentConfig exp;
  exp.corpus.seed = cfg.seed;
  exp.corpus.benign_per_template = cfg.train_variants;
  exp.corpus.malware_per_template = cfg.train_variants;
  exp.corpus.intervals_per_app = cfg.train_intervals;
  exp.threads = cfg.threads;
  exp.capture.threads = cfg.threads;
  const core::ExperimentContext ctx = core::prepare_experiment(exp);

  for (std::size_t f : ctx.top_features(cfg.hpcs))
    fleet.events.push_back(sim::event_from_name(ctx.full.feature_name(f)));
  fleet.num_features = fleet.events.size();

  sim::CorpusConfig deploy = exp.corpus;
  deploy.benign_per_template = cfg.train_variants + 2;
  deploy.malware_per_template = cfg.train_variants + 2;
  fleet.model = core::train_deployment_model(
      sim::build_corpus(deploy), fleet.events, ml::ClassifierKind::kJRip,
      ml::EnsembleKind::kBagging, exp.capture, /*seed=*/7);
  fleet.backend = ml::make_active_backend(*fleet.model);

  // Template bank: one *unseen* variant per behaviour template (the
  // variant index was never instantiated by either training corpus),
  // captured with exactly the model's events — one run per app.
  const std::uint32_t unseen = deploy.benign_per_template;
  std::vector<sim::AppProfile> bank_corpus;
  for (std::size_t t = 0; t < sim::benign_template_count(); ++t)
    bank_corpus.push_back(
        sim::make_benign(t, unseen, cfg.seed, cfg.bank_intervals));
  for (std::size_t t = 0; t < sim::malware_template_count(); ++t)
    bank_corpus.push_back(
        sim::make_malware(t, unseen, cfg.seed, cfg.bank_intervals));
  const hpc::Capture bank =
      hpc::capture_corpus(bank_corpus, fleet.events, exp.capture);
  HMD_REQUIRE(bank.num_features() == fleet.num_features);

  fleet.app_begin.assign(bank_corpus.size(), 0);
  fleet.app_rows.assign(bank_corpus.size(), 0);
  fleet.app_labels = bank.app_labels;
  for (std::size_t r = 0; r < bank.num_rows(); ++r) {
    const std::size_t app = bank.row_app[r];
    if (fleet.app_rows[app] == 0) fleet.app_begin[app] = fleet.bank.size() /
                                                         fleet.num_features;
    ++fleet.app_rows[app];
    fleet.bank.insert(fleet.bank.end(), bank.rows[r].begin(),
                      bank.rows[r].end());
  }
  for (std::size_t app = 0; app < bank_corpus.size(); ++app)
    HMD_REQUIRE_MSG(fleet.app_rows[app] > 0,
                    "bank app captured no rows: " + bank.app_names[app]);

  // Host assignment: every field is a hash of (seed, host) — stable under
  // any fleet size change that keeps the host index.
  const std::uint32_t benign_apps =
      static_cast<std::uint32_t>(sim::benign_template_count());
  const std::uint32_t malware_apps =
      static_cast<std::uint32_t>(sim::malware_template_count());
  const std::uint64_t host_seed = mix64(cfg.seed ^ kHostSalt);
  fleet.hosts.resize(cfg.hosts);
  for (std::uint32_t h = 0; h < cfg.hosts; ++h) {
    const std::uint64_t hs = mix64(host_seed ^ h);
    HostProfile& p = fleet.hosts[h];
    p.is_malware =
        static_cast<double>(mix64(hs ^ 1) >> 11) * 0x1.0p-53 <
        cfg.malware_fraction;
    p.benign_app = static_cast<std::uint32_t>(mix64(hs ^ 2) % benign_apps);
    p.malware_app =
        benign_apps + static_cast<std::uint32_t>(mix64(hs ^ 3) % malware_apps);
    if (!p.is_malware) p.malware_app = p.benign_app;
    // Infection begins somewhere in the middle 60% of the run, so every
    // malware host shows both clean and infected behaviour.
    p.onset_tick = cfg.ticks / 5 +
                   static_cast<std::uint32_t>(
                       mix64(hs ^ 4) % (1 + (cfg.ticks * 3) / 5));
    p.phase = static_cast<std::uint32_t>(mix64(hs ^ 5));
    if (p.is_malware) ++fleet.malware_hosts;
  }
  return fleet;
}

bool sample_dropped(const FleetSetup& fleet, std::uint32_t host,
                    std::uint32_t tick) {
  const double rate = fleet.cfg.drop_rate;
  if (rate <= 0.0) return false;
  const std::uint64_t v =
      mix64(mix64(fleet.cfg.seed ^ kDropSalt) ^ pack(host, tick));
  return static_cast<double>(v >> 11) * 0x1.0p-53 < rate;
}

void gen_features(const FleetSetup& fleet, std::uint32_t host,
                  std::uint32_t tick, std::span<double> out) {
  HMD_REQUIRE(out.size() == fleet.num_features);
  const HostProfile& p = fleet.hosts[host];
  const std::uint32_t app =
      host_infected(fleet, host, tick) ? p.malware_app : p.benign_app;
  const std::size_t rows = fleet.app_rows[app];
  const std::size_t row = fleet.app_begin[app] + (tick + p.phase) % rows;
  const double* src = fleet.bank.data() + row * fleet.num_features;
  double scale = 1.0;
  if (fleet.cfg.scale_sigma > 0.0) {
    Rng rng(mix64(fleet.cfg.seed ^ kScaleSalt) ^ pack(host, tick));
    scale = rng.lognormal(0.0, fleet.cfg.scale_sigma);
  }
  for (std::size_t j = 0; j < fleet.num_features; ++j) out[j] = src[j] * scale;
}

}  // namespace hmd::serve

#include "serve/token_bucket.h"

#include <algorithm>

#include "support/check.h"

namespace hmd::serve {

TokenBucket::TokenBucket(std::uint64_t capacity,
                         std::uint64_t refill_per_tick)
    : capacity_(capacity), refill_per_tick_(refill_per_tick),
      tokens_(capacity) {
  HMD_REQUIRE(capacity >= 1);
  // A zero refill starves the pipeline after the first burst with no
  // diagnostic — reject it here; burst_only() is the explicit opt-in.
  HMD_REQUIRE_MSG(refill_per_tick >= 1,
                  "refill_per_tick == 0 sheds all traffic after the burst; "
                  "use TokenBucket::burst_only() if that is intended");
}

TokenBucket TokenBucket::burst_only(std::uint64_t capacity) {
  TokenBucket bucket(capacity, 1);
  bucket.refill_per_tick_ = 0;
  return bucket;
}

void TokenBucket::refill() {
  // Saturating add: a long idle stretch never banks more than one burst.
  tokens_ = (refill_per_tick_ >= capacity_ - tokens_)
                ? capacity_
                : tokens_ + refill_per_tick_;
}

std::uint64_t TokenBucket::take(std::uint64_t want) {
  const std::uint64_t grant = std::min(want, tokens_);
  tokens_ -= grant;
  offered_ += want;
  granted_ += grant;
  shed_ += want - grant;
  return grant;
}

}  // namespace hmd::serve

// Concept-drift detection and model refresh for the serving pipeline.
//
// A deployed HMD has no labels at run time — the only signal it owns is
// the score stream its own model emits (the anomaly-detection framing of
// Garcia-Serrano, PAPERS.md). This module watches exactly that: each
// shard's worker accumulates a ShardScoreWindow (mean + P² tail quantile —
// serve/quantile.h reused) over the scores it steps, and at fixed
// check-interval barriers the controller feeds every shard's window, in
// shard order, to a DriftDetector that maintains per-shard EWMA'd means
// under a two-sided Page-Hinkley test plus a tail-shift gate. When at
// least `min_shards` shards trip in one check, the fleet-wide trigger
// fires.
//
// Determinism: the trigger is a pure function of the verdict stream.
// Scores are bit-identical across worker counts (the serving contract),
// each shard's window is filled by its single owning worker in FIFO tick
// order, the controller only reads windows at pipeline-drain barriers, and
// the detector walks shards in index order — so the trigger tick, the
// tripped-shard count, and everything downstream (retrain input, swap
// tick) land in ServeCounters' deterministic domain, bit-identical across
// --threads {1,4}.
//
// The refresh path (RefreshConfig, retrain_model): after a trigger the
// controller harvests a deterministic sample of admitted windows (labelled
// by ground truth — modelling analyst triage of the flagged interval; a
// novel family the model scores benign would never be alarm-self-labelled,
// so self-training on own verdicts is exactly the trap this avoids),
// refits on a background worker via ml::refit_with_windows, and hot-swaps
// the model at a fixed virtual tick. With a checkpoint directory set, the
// retrain re-captures the deployment split under the PR 5 checkpoint
// subsystem (hpc/checkpoint.h, auto-resume): a retrain killed mid-capture
// resumes where it stopped and still produces a bit-identical model.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "serve/fleet.h"
#include "serve/quantile.h"

namespace hmd::serve {

/// Drift-detection knobs. All thresholds act on scores in [0, 1].
struct DriftDetectorConfig {
  bool enabled = false;
  /// Ticks between drift checks; each check is a pipeline-drain barrier.
  std::uint32_t check_interval = 16;
  /// Checks that only establish the baseline; no trigger can fire during
  /// warmup (the first checks see cold-start EWMA transients).
  std::uint32_t warmup_checks = 2;
  /// Smoothing of the per-check shard mean score fed to Page-Hinkley.
  double ewma_alpha = 0.3;
  /// Page-Hinkley insensitivity: per-check slack around the running mean.
  double ph_delta = 0.005;
  /// Page-Hinkley trip threshold on the cumulative deviation.
  double ph_lambda = 0.1;
  /// Quantile of the per-window score tail gate (P² estimator).
  double tail_q = 0.95;
  /// Absolute tail shift versus the warmup baseline that trips a shard.
  double tail_lambda = 0.2;
  /// Shards that must trip in the same check to fire the fleet trigger.
  std::size_t min_shards = 2;
};

/// One shard's score accumulation between two drift checks. Owned by the
/// shard's worker thread; read and reset by the controller only at
/// barriers. Pure function of the (ordered) score sequence.
class ShardScoreWindow {
 public:
  explicit ShardScoreWindow(double tail_q = 0.95)
      : tail_q_(tail_q), tail_(tail_q) {}

  void observe(double score) {
    sum_ += score;
    ++n_;
    tail_.add(score);
  }

  bool empty() const { return n_ == 0; }
  std::uint64_t samples() const { return n_; }
  double mean() const {
    return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0;
  }
  double tail() const { return tail_.estimate(); }

  void reset() {
    sum_ = 0.0;
    n_ = 0;
    tail_ = QuantileEstimator(tail_q_);
  }

 private:
  double tail_q_;
  double sum_ = 0.0;
  std::uint64_t n_ = 0;
  QuantileEstimator tail_;
};

/// Two-sided Page-Hinkley change detector: cumulative deviation of the
/// observations from their running mean, with `delta` slack; trips when
/// either side's excursion from its extremum exceeds `lambda`. Pure
/// function of the observation sequence.
class PageHinkley {
 public:
  PageHinkley(double delta, double lambda);

  void observe(double x);
  bool tripped() const { return tripped_; }
  /// Largest excursion seen so far (max over both sides); the margin
  /// against lambda, useful for diagnostics.
  double excursion() const { return excursion_; }
  std::uint64_t observations() const { return n_; }

 private:
  double delta_;
  double lambda_;
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double up_ = 0.0;        ///< cumulative (x - mean - delta)
  double up_min_ = 0.0;    ///< running min of up_
  double down_ = 0.0;      ///< cumulative (x - mean + delta)
  double down_max_ = 0.0;  ///< running max of down_
  double excursion_ = 0.0;
  bool tripped_ = false;
};

/// Fleet-wide drift detector: per-shard EWMA + Page-Hinkley + tail gate,
/// evaluated at controller barriers. Single-threaded (controller-owned).
class DriftDetector {
 public:
  DriftDetector(const DriftDetectorConfig& cfg, std::size_t shards);

  /// Evaluate one check at barrier tick `tick` from the per-shard windows
  /// (windows.size() == shards, shard index order). Empty windows (a shard
  /// whose samples were all shed/missing this interval) are skipped.
  /// Returns true when the fleet-wide trigger condition holds this check.
  bool check(std::span<const ShardScoreWindow> windows, std::uint32_t tick);

  std::uint64_t checks() const { return checks_; }
  /// Checks (post-warmup) on which the fleet-wide condition held.
  std::uint64_t triggers() const { return triggers_; }
  bool triggered() const { return triggers_ > 0; }
  /// Barrier tick of the first trigger; 0 when never triggered.
  std::uint32_t trigger_tick() const { return trigger_tick_; }
  /// Shards tripped at the first trigger; 0 when never triggered.
  std::size_t tripped_shards() const { return tripped_shards_; }

 private:
  struct Shard {
    PageHinkley ph;
    double ewma = 0.0;
    bool ewma_init = false;
    double baseline_tail_sum = 0.0;
    std::uint64_t baseline_checks = 0;
    bool tripped = false;  ///< latched once tripped
  };

  DriftDetectorConfig cfg_;
  std::vector<Shard> shards_;
  std::uint64_t checks_ = 0;
  std::uint64_t triggers_ = 0;
  std::uint32_t trigger_tick_ = 0;
  std::size_t tripped_shards_ = 0;
};

/// Model-refresh knobs (acted on by the controller after a trigger).
struct RefreshConfig {
  /// Retrain + hot-swap on trigger. false = detection-only: the trigger
  /// and its tick are still counted, nothing is retrained or swapped.
  bool enabled = true;
  /// Ticks of admitted windows harvested after the trigger as retrain
  /// input (labelled by ground truth — the analyst-triage model).
  std::uint32_t harvest_ticks = 16;
  /// Trigger tick -> swap tick distance. The retrain runs on a background
  /// worker inside this budget; must exceed harvest_ticks. If the swap
  /// tick lands past the end of the run, no swap happens.
  std::uint32_t refresh_lag_ticks = 48;
  /// Cap on harvested window rows (deterministically subsampled).
  std::size_t max_window_rows = 4096;
  /// Instance weight of harvested rows in the refit.
  double window_weight = 1.0;
  /// Non-empty: the retrain re-captures the deployment training split
  /// under this checkpoint directory (auto-resume: fresh when empty,
  /// resumed when a matching manifest exists — kill-and-re-run safe).
  /// Empty: the retrain augments the cached FleetSetup::base_train.
  /// Both paths produce bit-identical models (capture is deterministic).
  std::string checkpoint_dir{};
  /// Seed for the refit's make_detector (defaults to the deployed model's).
  std::uint64_t refit_seed = 0;  ///< 0 = FleetSetup::model_seed
};

/// Outcome of one drift-triggered retrain.
struct RetrainOutcome {
  std::shared_ptr<const ml::Classifier> model;
  std::uint64_t base_rows = 0;    ///< rows of the base training split
  std::uint64_t window_rows = 0;  ///< harvested rows in the augmentation
};

/// Refit the fleet's model on its base training split plus harvested
/// window rows (row-major fleet.num_features wide; one label per row).
/// Deterministic in its inputs; see RefreshConfig::checkpoint_dir for the
/// resumable re-capture path.
RetrainOutcome retrain_model(const FleetSetup& fleet,
                             std::span<const double> window_rows,
                             std::span<const int> window_labels,
                             const RefreshConfig& cfg);

}  // namespace hmd::serve

// Sharded controller/worker serving pipeline: fleet-scale run-time
// detection with cross-host batched inference.
//
// One OnlineDetector per host scores each interval alone — a batch of one
// — which wastes the flat inference engine's entire design (DESIGN §13:
// branch-free 8-lane walks want *rows*). The serving layer restores the
// batch dimension across hosts instead of across time: a single-threaded
// controller walks the virtual 10 ms tick clock, coalesces every pending
// host interval of a shard into one row-major batch, and hands it to a
// worker that scores the whole batch in ONE predict_proba_batch call and
// then steps each host's OnlineState (core/online.h) with its score.
// Per-interval scalar scoring becomes cross-host batched scoring; the
// speedup is the bench's headline (bench/serve, BENCH_serve.json).
//
// Pipeline stages and roles:
//
//   controller (1 thread)  — per tick: token-bucket admission (explicit
//     shed accounting), drop simulation, batch assembly, straggler/hedge
//     decisions; pushes batches to per-worker BoundedQueues (backpressure:
//     a full queue stalls the controller, counted, never dropped).
//   workers (N threads)    — own a fixed partition of shards (shard
//     s -> worker s mod N): score the batch (one batched call, or
//     row-by-row in the unbatched A/B mode), step the shard's per-host
//     EWMA/alarm/staleness automata in tick order, emit a result chunk.
//   collector (1 thread)   — drains result chunks: latency accounting
//     (P^2 p50/p95/p99 per stage — serve/quantile.h) and the verdict
//     stream.
//
// Tail-latency machinery: per-(tick, shard) straggler injection (a seeded
// decision slows the owning worker by re-scoring the batch a configured
// number of extra times) and hedging — the controller launches a duplicate
// score-only task on the *next* worker for batches it marked straggling;
// whichever result is ready first is used. Scores are bit-identical either
// way, so hedging is invisible to the verdict stream.
//
// Determinism contract (enforced by tests and the ci.sh serve leg): the
// verdict stream and every field of ServeCounters are bit-identical across
// worker counts, batched vs unbatched scoring, and hedging on or off,
// under a fixed seed. Everything decided on the virtual tick clock —
// admission, shed, drops, straggler marks, hedge launches, scores, alarm
// transitions — is deterministic; everything *measured* (stage latencies,
// hedge win/waste, backpressure stalls, throughput) lives in ServeTiming
// and is explicitly excluded from the contract.
#pragma once

#include <cstdint>
#include <vector>

#include "core/online.h"
#include "serve/drift.h"
#include "serve/fleet.h"
#include "serve/quantile.h"

namespace hmd::serve {

struct ServeConfig {
  /// Worker threads (scoring/stepping); 0 = auto via resolve_threads().
  /// Clamped to the shard count. The controller and collector threads are
  /// additional but never touch detector state or scores.
  std::size_t threads = 1;
  /// Host shards; 0 = auto: max(1, hosts / 32). The auto value depends
  /// only on the fleet, never on the worker count — shard boundaries are
  /// part of the deterministic domain.
  std::size_t shards = 0;
  /// Per-worker task queue depth, in batches. A full queue blocks the
  /// controller (backpressure); stalls are counted in ServeTiming.
  std::size_t queue_capacity = 8;
  /// true: one predict_proba_batch call per shard batch (the point of the
  /// serving layer). false: the A/B baseline — identical pipeline, but
  /// each row scored with a batch-of-one call. Verdicts are bit-identical.
  bool batched = true;
  /// Token-bucket admission: samples admitted per tick across the fleet;
  /// 0 disables admission control entirely (everything emitted is scored).
  std::uint64_t admit_per_tick = 0;
  /// Bucket (burst) capacity; 0 means admit_per_tick.
  std::uint64_t admit_burst = 0;
  /// Per-(tick, shard) probability the owning worker straggles (seeded,
  /// deterministic); the slowdown is `straggler_reps` wasted re-scores.
  double straggler_rate = 0.0;
  std::uint32_t straggler_reps = 3;
  /// Launch a duplicate score-only task on the next worker for batches
  /// marked straggling. Changes latency, never results.
  bool hedge = true;
  /// Keep the full verdict stream in the report (hosts × ticks entries).
  /// The verdict hash is computed either way.
  bool record_verdicts = true;
  core::OnlineConfig online{};
  /// Concept-drift detection over the score stream (serve/drift.h).
  /// Disabled by default, which leaves the pipeline byte-identical to the
  /// pre-drift build. When enabled, every check_interval ticks the
  /// controller drains the pipeline (a barrier) and evaluates the
  /// detector; all of it stays in the deterministic domain.
  DriftDetectorConfig drift{};
  /// What to do when the drift trigger fires: harvest flagged windows,
  /// retrain on a background worker, hot-swap at a fixed virtual tick.
  RefreshConfig refresh{};
};

/// How one (host, tick) sample left the pipeline.
enum class SampleOutcome : std::uint8_t {
  kScored = 0,   ///< admitted and scored
  kMissing = 1,  ///< collector dropped the sample (fleet drop_rate)
  kShed = 2,     ///< admission control rejected it (token bucket empty)
};

/// One per-(host, tick) verdict. Missing/shed samples still produce a
/// verdict — the held EWMA/alarm state via OnlineState::step_missing.
struct ServeVerdict {
  std::uint32_t tick = 0;
  std::uint32_t host = 0;
  double score = 0.0;  ///< per-sample P(malware); held value when not scored
  double ewma = 0.0;
  SampleOutcome outcome = SampleOutcome::kScored;
  bool alarm = false;
  bool stale = false;
};

/// Deterministic domain: bit-identical across worker counts, batched vs
/// unbatched, hedging on/off (fixed seed). The ci.sh serve leg diffs these
/// across thread counts byte for byte.
struct ServeCounters {
  std::uint64_t hosts = 0;
  std::uint64_t ticks = 0;
  std::uint64_t shards = 0;
  std::uint64_t offered = 0;    ///< hosts × ticks
  std::uint64_t missing = 0;    ///< lost by the collector (drop_rate)
  std::uint64_t emitted = 0;    ///< offered - missing
  std::uint64_t admitted = 0;   ///< emitted samples the bucket admitted
  std::uint64_t shed = 0;       ///< emitted samples rejected by admission
  std::uint64_t batches = 0;    ///< one per (tick, shard)
  std::uint64_t scored_rows = 0;        ///< == admitted
  std::uint64_t straggler_batches = 0;  ///< seeded straggler marks
  std::uint64_t hedges_launched = 0;    ///< duplicate tasks dispatched
  std::uint64_t alarms_raised = 0;   ///< false->true alarm transitions
  std::uint64_t alarmed_hosts = 0;   ///< hosts whose alarm ever raised
  std::uint64_t malware_hosts = 0;   ///< ground truth from the fleet
  std::uint64_t campaign_hosts = 0;  ///< drift-wave recruits (ground truth)
  // Drift / refresh accounting. All deterministic: the trigger is a pure
  // function of the score stream, the swap tick a pure function of the
  // trigger, and the retrain row counts a pure function of the harvest.
  std::uint64_t drift_checks = 0;    ///< barrier evaluations performed
  std::uint64_t drift_triggers = 0;  ///< checks on which the trigger held
  std::uint64_t drift_trigger_tick = 0;   ///< first trigger (0 = none)
  std::uint64_t drift_tripped_shards = 0; ///< shards tripped at 1st trigger
  std::uint64_t model_swaps = 0;          ///< hot-swaps performed (0 or 1)
  std::uint64_t model_swap_tick = 0;      ///< tick of the swap (0 = none)
  std::uint64_t retrain_base_rows = 0;    ///< base split rows in the refit
  std::uint64_t retrain_window_rows = 0;  ///< harvested rows in the refit
  std::uint64_t final_model_epoch = 0;    ///< epoch serving the last tick
  std::uint64_t verdict_hash = 0;    ///< FNV-1a over the sorted stream
};

/// Measured domain: wall-clock throughput and per-stage latency. Varies
/// run to run and across thread counts by nature; never part of the
/// determinism contract.
struct ServeTiming {
  double wall_ms = 0.0;
  double intervals_per_sec = 0.0;  ///< offered / wall seconds
  LatencyStats gen;    ///< controller: emit + admission + batch assembly
  LatencyStats queue;  ///< task wait in the worker queue
  LatencyStats score;  ///< batch scoring (incl. injected straggler work)
  LatencyStats step;   ///< per-host state stepping + verdict emit
  LatencyStats e2e;    ///< batch assembly start -> verdicts emitted
  std::uint64_t hedge_wins = 0;    ///< hedge result arrived first
  std::uint64_t hedge_wasted = 0;  ///< hedges_launched - hedge_wins
  std::uint64_t backpressure_stalls = 0;  ///< controller blocked on a queue
  double retrain_ms = 0.0;    ///< background retrain wall time
  double swap_wait_ms = 0.0;  ///< controller blocked at the swap tick
  double barrier_ms = 0.0;    ///< total pipeline-drain wait at drift checks
};

struct ServeReport {
  ServeCounters counters;
  ServeTiming timing;
  /// Sorted by (tick, host); empty unless ServeConfig::record_verdicts.
  std::vector<ServeVerdict> verdicts;
};

/// Drive the fleet through the serving pipeline. The FleetSetup is shared
/// read-only across all workers; per-host detector state lives inside the
/// call. Deterministic per the contract above.
ServeReport run_fleet(const FleetSetup& fleet, const ServeConfig& cfg);

/// FNV-1a 64 over the canonical byte serialisation of a (tick, host)-sorted
/// verdict stream — the cross-thread-count identity witness.
std::uint64_t verdict_stream_hash(const std::vector<ServeVerdict>& verdicts);

/// Fleet accuracy over the tick window [begin_tick, end_tick): the
/// fraction of verdicts whose alarm state matches ground truth
/// (host_infected) at that tick. The drift bench's pre-onset /
/// post-onset / post-refresh phase metric. Returns 0 on an empty window.
double verdict_window_accuracy(const FleetSetup& fleet,
                               const std::vector<ServeVerdict>& verdicts,
                               std::uint32_t begin_tick,
                               std::uint32_t end_tick);

}  // namespace hmd::serve

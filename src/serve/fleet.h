// Deterministic fleet workload for the streaming detection service.
//
// The serving layer's job is to monitor *thousands* of hosts at once, but
// simulating a full sim::Machine per host per 10 ms tick would make the
// workload generator orders of magnitude slower than the pipeline it
// feeds. The fleet driver therefore captures a small *template bank* up
// front — one unseen variant of every benign and malware behaviour
// template, captured with exactly the deployed model's events (one run per
// app, the deployment protocol) — and then synthesises each host's
// interval stream from the bank: host h at tick t replays a bank row of
// its assigned application, phase-shifted per host and scaled by a
// per-(host, tick) log-normal factor. One factor per row (not per cell)
// preserves the cross-feature correlation a real co-sampled interval has.
//
// Everything is a pure function of (seed, host, tick): which hosts run
// malware, when each infection begins, which samples the collector drops,
// and every feature value. The generator has no state to share, so any
// number of threads can emit any host's tick independently and the fleet's
// offered load is bit-identical across runs, worker counts, and hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/online.h"
#include "hpc/capture.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/infer.h"
#include "sim/events.h"
#include "sim/workloads.h"

namespace hmd::serve {

/// The time-evolving half of the fleet workload: everything the paper's
/// static 70/30 i.i.d. split assumes away. Three shifts, all pure hashes
/// of (seed, host, tick) so the evolving load stays deterministic:
///
///  * Novel malware families: the last `novel_templates` malware behaviour
///    templates are held OUT of both training corpora (the deployed model
///    has never seen any variant of them) and appear only through the
///    mid-campaign wave below.
///  * A campaign wave: at `campaign_onset`, a hash-selected extra
///    `campaign_fraction` of previously benign hosts becomes infected with
///    a novel-family app (staggered over `campaign_spread` ticks) — which
///    is simultaneously the class-imbalance sweep: the infected share of
///    the fleet steps from `malware_fraction` to roughly
///    malware_fraction + campaign_fraction mid-run.
///  * Benign behaviour shift: benign rows are scaled by an extra
///    (1 + benign_shift) factor, ramped in linearly over
///    `benign_shift_ramp` ticks from the onset — the slow environmental
///    drift (new software rollout, changed load mix) that erodes a frozen
///    decision boundary without any malware at all.
struct FleetDriftConfig {
  bool enabled = false;
  /// Malware templates held out of training and reserved for the campaign.
  std::size_t novel_templates = 4;
  /// First tick of the campaign wave; 0 = ticks / 2.
  std::uint32_t campaign_onset = 0;
  /// Extra fraction of (previously benign) hosts the campaign infects.
  double campaign_fraction = 0.2;
  /// Ticks over which recruited hosts' individual onsets are staggered.
  std::uint32_t campaign_spread = 16;
  /// Relative scale drift applied to benign rows post-onset (0 disables).
  double benign_shift = 0.25;
  /// Ticks the benign shift takes to ramp from 0 to benign_shift.
  std::uint32_t benign_shift_ramp = 32;
};

struct FleetConfig {
  std::size_t hosts = 2000;
  std::uint32_t ticks = 300;  ///< 10 ms intervals per host (3 s of fleet time)
  std::uint64_t seed = 2018;
  double malware_fraction = 0.25;  ///< hosts that run a malware app
  /// Per-(host, tick) probability the collector loses the sample (the
  /// detector steps its staleness watchdog instead of scoring).
  double drop_rate = 0.01;
  /// Sigma of the log-normal per-row scale jitter on bank rows.
  double scale_sigma = 0.08;
  /// Rows captured per bank application (the replay period per host).
  std::uint32_t bank_intervals = 24;
  /// Counters the deployed detector uses (= PMU width it must fit).
  std::size_t hpcs = 4;
  /// Corpus scale for the offline phase: the 44-event study capture that
  /// picks the features, and the deployment-protocol capture that trains
  /// the served model. Small defaults keep fleet setup in bench-tolerable
  /// time; they only shape the model, never the serving pipeline.
  std::uint32_t train_variants = 2;
  std::uint32_t train_intervals = 12;
  std::size_t threads = 0;  ///< capture threads for setup; 0 = auto
  /// Time-evolving workload (concept drift); disabled by default, which
  /// leaves every preexisting fleet byte-identical.
  FleetDriftConfig drift{};
};

/// One host's static assignment, derived from the fleet seed.
struct HostProfile {
  std::uint32_t benign_app = 0;   ///< bank index replayed while clean
  std::uint32_t malware_app = 0;  ///< bank index replayed once infected
  std::uint32_t onset_tick = 0;   ///< first infected tick (malware hosts)
  std::uint32_t phase = 0;        ///< per-host shift into the bank rows
  bool is_malware = false;
  /// Campaign recruitment (FleetDriftConfig): a previously benign host
  /// that becomes infected with a novel-family app mid-run.
  bool campaign = false;
  std::uint32_t campaign_app = 0;    ///< bank index of the novel-family app
  std::uint32_t campaign_onset = 0;  ///< this host's staggered onset tick
};

/// The trained model, its template bank, and the per-host assignments —
/// immutable once built; shared read-only by every worker.
struct FleetSetup {
  FleetConfig cfg;
  std::shared_ptr<const ml::Classifier> model;
  /// Process-wide-selected inference engine over `model` (thread-safe;
  /// see ml/infer.h). Built once, shared by all serving workers.
  std::unique_ptr<ml::InferenceBackend> backend;
  std::vector<sim::Event> events;  ///< model features, in training order
  std::size_t num_features = 0;

  std::vector<double> bank;             ///< row-major bank rows
  std::vector<std::size_t> app_begin;   ///< first bank row of app i
  std::vector<std::size_t> app_rows;    ///< row count of app i
  std::vector<int> app_labels;          ///< 1 = malware template
  std::vector<HostProfile> hosts;
  std::size_t malware_hosts = 0;
  std::size_t campaign_hosts = 0;  ///< hosts recruited by the drift wave

  /// Retrain support (serve/drift.h). `base_train` is the deployment-
  /// protocol training split the served model was fitted on, cached so an
  /// incremental refit can augment it without re-running the offline
  /// phase. When `offline` is true the remaining fields record the recipe
  /// (corpus, capture config, model spec) that produced it, so a retrain
  /// may instead RE-CAPTURE the split under a checkpoint store — resumable
  /// and, because capture is deterministic, bit-identical to the cache.
  ml::Dataset base_train;
  bool offline = false;  ///< base_train came from make_fleet's capture
  sim::CorpusConfig deploy_corpus{};
  hpc::CaptureConfig capture_cfg{};
  ml::ClassifierKind model_kind = ml::ClassifierKind::kJRip;
  ml::EnsembleKind model_ensemble = ml::EnsembleKind::kBagging;
  std::uint64_t model_seed = 7;
};

/// Offline phase: select features, train the deployment model, capture the
/// template bank, and assign host profiles. Deterministic in cfg.
FleetSetup make_fleet(const FleetConfig& cfg);

/// True when host h's tick-t sample is lost by the collector. Pure
/// function of (cfg.seed, host, tick); independent of the feature stream —
/// admission control consumes drop decisions before any row is generated,
/// and that must not perturb the rows themselves.
bool sample_dropped(const FleetSetup& fleet, std::uint32_t host,
                    std::uint32_t tick);

/// Synthesise host h's feature row for tick t into `out`
/// (out.size() == num_features). Pure function of (cfg.seed, host, tick).
void gen_features(const FleetSetup& fleet, std::uint32_t host,
                  std::uint32_t tick, std::span<double> out);

/// Whether host h is running a malware app at tick t — its statically
/// assigned one, or (drift) the novel-family app its campaign recruitment
/// switched it to. Ground truth for accuracy accounting; the serving
/// pipeline itself never reads it.
inline bool host_infected(const FleetSetup& fleet, std::uint32_t host,
                          std::uint32_t tick) {
  const HostProfile& p = fleet.hosts[host];
  if (p.is_malware && tick >= p.onset_tick) return true;
  return p.campaign && tick >= p.campaign_onset;
}

}  // namespace hmd::serve

#include "serve/drift.h"

#include <algorithm>
#include <cmath>

#include "core/experiment.h"
#include "ml/refit.h"
#include "support/check.h"

namespace hmd::serve {

PageHinkley::PageHinkley(double delta, double lambda)
    : delta_(delta), lambda_(lambda) {
  HMD_REQUIRE(delta >= 0.0);
  HMD_REQUIRE(lambda > 0.0);
}

void PageHinkley::observe(double x) {
  ++n_;
  mean_ += (x - mean_) / static_cast<double>(n_);
  // Upward side: cumulative (x - mean - delta) drifts up under a mean
  // increase; the excursion above its running minimum is the test statistic.
  up_ += x - mean_ - delta_;
  up_min_ = std::min(up_min_, up_);
  // Downward side, mirrored.
  down_ += x - mean_ + delta_;
  down_max_ = std::max(down_max_, down_);
  excursion_ =
      std::max(excursion_, std::max(up_ - up_min_, down_max_ - down_));
  if (excursion_ > lambda_) tripped_ = true;
}

DriftDetector::DriftDetector(const DriftDetectorConfig& cfg,
                             std::size_t shards)
    : cfg_(cfg) {
  HMD_REQUIRE(shards >= 1);
  HMD_REQUIRE(cfg.check_interval >= 1);
  HMD_REQUIRE(cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0);
  HMD_REQUIRE(cfg.tail_q > 0.0 && cfg.tail_q < 1.0);
  HMD_REQUIRE(cfg.tail_lambda > 0.0);
  HMD_REQUIRE(cfg.min_shards >= 1);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shards_.push_back(Shard{PageHinkley(cfg.ph_delta, cfg.ph_lambda)});
}

bool DriftDetector::check(std::span<const ShardScoreWindow> windows,
                          std::uint32_t tick) {
  HMD_REQUIRE(windows.size() == shards_.size());
  ++checks_;
  const bool warm = checks_ > cfg_.warmup_checks;
  std::size_t tripped_now = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardScoreWindow& w = windows[s];
    if (w.empty()) {
      // A fully shed/missing window carries no score evidence; skipping it
      // (rather than feeding a fabricated 0) keeps the detector a pure
      // function of the scores that actually exist.
      if (shards_[s].tripped) ++tripped_now;
      continue;
    }
    Shard& sh = shards_[s];
    const double mean = w.mean();
    sh.ewma = sh.ewma_init ? cfg_.ewma_alpha * mean +
                                 (1.0 - cfg_.ewma_alpha) * sh.ewma
                           : mean;
    sh.ewma_init = true;
    sh.ph.observe(sh.ewma);
    if (!warm) {
      // Warmup: establish the tail baseline, suppress any trip.
      sh.baseline_tail_sum += w.tail();
      ++sh.baseline_checks;
      continue;
    }
    if (!sh.tripped) {
      const double baseline =
          sh.baseline_checks > 0
              ? sh.baseline_tail_sum / static_cast<double>(sh.baseline_checks)
              : 0.0;
      const bool tail_shift =
          sh.baseline_checks > 0 &&
          std::abs(w.tail() - baseline) > cfg_.tail_lambda;
      // Latched: once a shard's score distribution has moved, it stays
      // tripped for the rest of the run. Only the FIRST fleet trigger is
      // acted on (one refresh per run); later checks merely keep counting
      // triggers for the report.
      if (sh.ph.tripped() || tail_shift) sh.tripped = true;
    }
    if (sh.tripped) ++tripped_now;
  }
  if (!warm) return false;
  const std::size_t need = std::min(cfg_.min_shards, shards_.size());
  const bool fired = tripped_now >= need;
  if (fired) {
    if (triggers_ == 0) {
      trigger_tick_ = tick;
      tripped_shards_ = tripped_now;
    }
    ++triggers_;
  }
  return fired;
}

RetrainOutcome retrain_model(const FleetSetup& fleet,
                             std::span<const double> window_rows,
                             std::span<const int> window_labels,
                             const RefreshConfig& cfg) {
  HMD_REQUIRE(window_rows.size() ==
              window_labels.size() * fleet.num_features);

  // Base split: either the cached deployment split, or — when a checkpoint
  // directory is configured and the fleet records its offline recipe — a
  // re-capture of that exact recipe under the checkpoint store. The two
  // are bit-identical (capture is deterministic); the checkpointed path
  // additionally survives being killed mid-capture: auto-resume reloads
  // completed apps and re-executes only the missing ones.
  ml::Dataset base = fleet.base_train;
  if (!cfg.checkpoint_dir.empty() && fleet.offline) {
    hpc::CaptureConfig capture = fleet.capture_cfg;
    capture.checkpoint_dir = cfg.checkpoint_dir;
    capture.resume = false;
    capture.resume_auto = true;
    const hpc::Capture recapture = hpc::capture_corpus(
        sim::build_corpus(fleet.deploy_corpus), fleet.events, capture);
    base = core::to_dataset(recapture);
  }
  HMD_REQUIRE_MSG(base.num_rows() > 0,
                  "fleet has no base training split to refit from");

  ml::RefitConfig refit;
  refit.kind = fleet.model_kind;
  refit.ensemble = fleet.model_ensemble;
  refit.seed = cfg.refit_seed != 0 ? cfg.refit_seed : fleet.model_seed;
  refit.window_weight = cfg.window_weight;

  RetrainOutcome out;
  out.base_rows = base.num_rows();
  out.window_rows = window_labels.size();
  out.model = ml::refit_with_windows(base, window_rows, fleet.num_features,
                                     window_labels, refit);
  return out;
}

}  // namespace hmd::serve

#include "hw/hls_codegen.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/j48.h"
#include "ml/jrip.h"
#include "ml/oner.h"
#include "ml/reptree.h"
#include "ml/sgd.h"
#include "ml/smo.h"
#include "support/check.h"

namespace hmd::hw {
namespace {

/// Fixed-point conversion of a real constant.
long long fx(double v, int fraction_bits) {
  return static_cast<long long>(
      std::llround(v * static_cast<double>(1LL << fraction_bits)));
}

struct Emitter {
  std::ostream& os;
  const HlsOptions& opt;
  std::size_t num_inputs;
  int next_id = 0;

  std::string fresh(const char* stem) {
    return std::string(stem) + "_" + std::to_string(next_id++);
  }

  /// Emit a helper returning the model's hard {0,1} decision into
  /// `int <name>(const int32_t x[])`; returns the helper's name.
  std::string emit_model(const ml::Classifier& model);

  std::string emit_oner(const ml::OneR& oner);
  template <typename Tree>
  std::string emit_tree(const Tree& tree);
  std::string emit_jrip(const ml::JRip& jrip);
  template <typename Linear>
  std::string emit_linear(const Linear& linear);
  std::string emit_adaboost(const ml::AdaBoostM1& boost);
  std::string emit_bagging(const ml::Bagging& bag);
};

std::string Emitter::emit_oner(const ml::OneR& oner) {
  const std::string name = fresh("oner");
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  const int32_t v = x[" << oner.chosen_feature() << "];\n";
  const auto& cuts = oner.bucket_cuts();
  const auto& proba = oner.bucket_proba();
  // Cascaded compares: first cut >= v selects the bucket.
  for (std::size_t b = 0; b < cuts.size(); ++b)
    os << "  if (v <= " << fx(cuts[b], opt.fraction_bits) << "LL) return "
       << (proba[b] >= 0.5 ? 1 : 0) << ";\n";
  os << "  return " << (proba.back() >= 0.5 ? 1 : 0) << ";\n}\n\n";
  return name;
}

template <typename Tree>
std::string Emitter::emit_tree(const Tree& tree) {
  const std::string name = fresh("tree");
  const auto nodes = tree.flatten();
  // Iterative node walk (HLS-friendly: bounded loop, no recursion).
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  static const int32_t thr[" << nodes.size() << "] = {";
  for (std::size_t i = 0; i < nodes.size(); ++i)
    os << (i ? "," : "") << fx(nodes[i].leaf ? 0.0 : nodes[i].threshold,
                               opt.fraction_bits) << "LL";
  os << "};\n  static const int16_t feat[" << nodes.size() << "] = {";
  for (std::size_t i = 0; i < nodes.size(); ++i)
    os << (i ? "," : "")
       << (nodes[i].leaf ? -(nodes[i].proba >= 0.5 ? 2 : 1)
                         : static_cast<int>(nodes[i].feature));
  os << "};\n  static const uint16_t kid[" << nodes.size() << "][2] = {";
  for (std::size_t i = 0; i < nodes.size(); ++i)
    os << (i ? "," : "") << "{" << nodes[i].left << "," << nodes[i].right
       << "}";
  os << "};\n"
     << "  uint16_t n = 0;\n"
     << "  for (int depth = 0; depth < " << nodes.size() << "; ++depth) {\n"
     << "    const int f = feat[n];\n"
     << "    if (f < 0) return -f - 1;  /* leaf: -1 benign, -2 malware */\n"
     << "    n = kid[n][x[f] <= thr[n] ? 0 : 1];\n"
     << "  }\n  return 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_jrip(const ml::JRip& jrip) {
  const std::string name = fresh("jrip");
  os << "static int " << name << "(const int32_t x[]) {\n";
  const int fire = jrip.target_class();
  for (const auto& rule : jrip.rules()) {
    os << "  if (1";
    for (const auto& cond : rule.conditions)
      os << " && x[" << cond.feature << "] " << (cond.leq ? "<=" : ">=")
         << " " << fx(cond.value, opt.fraction_bits) << "LL";
    os << ") return " << (fire == 1 ? (rule.precision >= 0.5 ? 1 : 0)
                                    : (rule.precision >= 0.5 ? 0 : 1))
       << ";\n";
  }
  os << "  return " << (fire == 1 ? 0 : 1) << ";  /* default class */\n"
     << "}\n\n";
  return name;
}

template <typename Linear>
std::string Emitter::emit_linear(const Linear& linear) {
  const std::string name = fresh("linear");
  // Fold the standardization into per-feature slope and a global offset:
  // margin = sum_f (w_f / sd_f) * x_f + (b - sum_f w_f * mu_f / sd_f).
  const auto& w = linear.weights();
  const auto& mu = linear.input_mean();
  const auto& sd = linear.input_stdev();
  double offset = linear.bias();
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  static const int64_t slope[" << w.size() << "] = {";
  for (std::size_t f = 0; f < w.size(); ++f) {
    os << (f ? "," : "") << fx(w[f] / sd[f], opt.fraction_bits) << "LL";
    offset -= w[f] * mu[f] / sd[f];
  }
  os << "};\n"
     << "  int64_t acc = " << fx(offset, 2 * opt.fraction_bits) << "LL;\n"
     << "  for (int f = 0; f < " << w.size() << "; ++f)\n"
     << "    acc += slope[f] * (int64_t)x[f];\n"
     << "  return acc >= 0 ? 1 : 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_adaboost(const ml::AdaBoostM1& boost) {
  std::vector<std::string> members;
  std::vector<long long> alphas;
  for (std::size_t m = 0; m < boost.num_members(); ++m) {
    members.push_back(emit_model(boost.member(m)));
    alphas.push_back(fx(boost.member_alpha(m), opt.fraction_bits));
  }
  long long total = 0;
  for (long long a : alphas) total += a;
  const std::string name = fresh("adaboost");
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  int64_t vote = 0;\n";
  for (std::size_t m = 0; m < members.size(); ++m)
    os << "  if (" << members[m] << "(x)) vote += " << alphas[m] << "LL;\n";
  os << "  return 2 * vote >= " << total << "LL ? 1 : 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_bagging(const ml::Bagging& bag) {
  std::vector<std::string> members;
  for (std::size_t m = 0; m < bag.num_members(); ++m)
    members.push_back(emit_model(bag.member(m)));
  const std::string name = fresh("bagging");
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  int votes = 0;\n";
  for (const auto& member : members)
    os << "  votes += " << member << "(x);\n";
  os << "  return 2 * votes >= " << members.size() << " ? 1 : 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_model(const ml::Classifier& model) {
  if (const auto* oner = dynamic_cast<const ml::OneR*>(&model))
    return emit_oner(*oner);
  if (const auto* j48 = dynamic_cast<const ml::J48*>(&model))
    return emit_tree(*j48);
  if (const auto* rep = dynamic_cast<const ml::RepTree*>(&model))
    return emit_tree(*rep);
  if (const auto* jrip = dynamic_cast<const ml::JRip*>(&model))
    return emit_jrip(*jrip);
  if (const auto* sgd = dynamic_cast<const ml::Sgd*>(&model))
    return emit_linear(*sgd);
  if (const auto* smo = dynamic_cast<const ml::Smo*>(&model))
    return emit_linear(*smo);
  if (const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(&model))
    return emit_adaboost(*boost);
  if (const auto* bag = dynamic_cast<const ml::Bagging*>(&model))
    return emit_bagging(*bag);
  throw PreconditionError("HLS codegen does not support model: " +
                          model.name());
}

}  // namespace

bool hls_supported(const ml::Classifier& model) {
  if (dynamic_cast<const ml::OneR*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::J48*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::RepTree*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::JRip*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::Sgd*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::Smo*>(&model) != nullptr) return true;
  if (const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(&model)) {
    return boost->num_members() == 0 || hls_supported(boost->member(0));
  }
  if (const auto* bag = dynamic_cast<const ml::Bagging*>(&model)) {
    return bag->num_members() == 0 || hls_supported(bag->member(0));
  }
  return false;
}

void generate_hls_c(std::ostream& os, const ml::Classifier& model,
                    std::size_t num_inputs, const HlsOptions& options) {
  HMD_REQUIRE(num_inputs >= 1);
  HMD_REQUIRE_MSG(hls_supported(model),
                  "HLS codegen does not support model: " + model.name());

  // The generated file is self-contained C99.
  std::ostringstream body;
  Emitter emitter{body, options, num_inputs};
  const std::string top = emitter.emit_model(model);

  os << "/* Generated by hmd (DAC'18 HMD reproduction).\n"
     << " * Model: " << model.name() << "; inputs: " << num_inputs
     << " HPC counters, Q" << (32 - options.fraction_bits) << "."
     << options.fraction_bits << " fixed point.\n"
     << " * int " << options.function_name
     << "(const int32_t x[]) returns 1 = malware, 0 = benign.\n */\n"
     << "#include <stdint.h>\n\n"
     << body.str() << "int " << options.function_name
     << "(const int32_t x[" << num_inputs << "]) {\n  return " << top
     << "(x);\n}\n";
}

}  // namespace hmd::hw

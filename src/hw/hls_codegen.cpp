#include "hw/hls_codegen.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/j48.h"
#include "ml/jrip.h"
#include "ml/oner.h"
#include "ml/reptree.h"
#include "ml/sgd.h"
#include "ml/smo.h"
#include "support/check.h"

namespace hmd::hw {
namespace {

/// Fixed-point conversion of a real constant.
long long fx(double v, int fraction_bits) {
  return static_cast<long long>(
      std::llround(v * static_cast<double>(1LL << fraction_bits)));
}

struct Emitter {
  std::ostream& os;
  const HlsOptions& opt;
  std::size_t num_inputs;
  int next_id = 0;

  std::string fresh(const char* stem) {
    return std::string(stem) + "_" + std::to_string(next_id++);
  }

  /// Emit a helper returning the model's hard {0,1} decision into
  /// `int <name>(const int32_t x[])`; returns the helper's name.
  std::string emit_model(const ml::Classifier& model);

  /// Emit a helper returning P(malware) in Q(fraction_bits) fixed point —
  /// what Bagging members must expose so the ensemble can average
  /// probabilities exactly like Bagging::predict_proba().
  std::string emit_model_proba(const ml::Classifier& model);

  std::string emit_oner(const ml::OneR& oner, bool proba);
  template <typename Tree>
  std::string emit_tree(const Tree& tree, bool proba);
  std::string emit_jrip(const ml::JRip& jrip, bool proba);
  template <typename Linear>
  std::string emit_linear(const Linear& linear, bool proba);
  std::string emit_adaboost(const ml::AdaBoostM1& boost, bool proba);
  std::string emit_bagging(const ml::Bagging& bag, bool proba);
};

std::string Emitter::emit_oner(const ml::OneR& oner, bool proba) {
  const std::string name = fresh("oner");
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  const int32_t v = x[" << oner.chosen_feature() << "];\n";
  const auto& cuts = oner.bucket_cuts();
  const auto& probs = oner.bucket_proba();
  const auto bucket_value = [&](double p) {
    return proba ? fx(p, opt.fraction_bits) : (p >= 0.5 ? 1LL : 0LL);
  };
  // Cascaded compares; strictly-below matches OneR's upper_bound bucket
  // assignment (a value equal to a boundary belongs to the bucket above).
  for (std::size_t b = 0; b < cuts.size(); ++b)
    os << "  if (v < " << fx(cuts[b], opt.fraction_bits) << "LL) return "
       << bucket_value(probs[b]) << ";\n";
  os << "  return " << bucket_value(probs.back()) << ";\n}\n\n";
  return name;
}

template <typename Tree>
std::string Emitter::emit_tree(const Tree& tree, bool proba) {
  const std::string name = fresh("tree");
  const auto nodes = tree.flatten();
  // Iterative node walk (HLS-friendly: bounded loop, no recursion).
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  static const int32_t thr[" << nodes.size() << "] = {";
  for (std::size_t i = 0; i < nodes.size(); ++i)
    os << (i ? "," : "") << fx(nodes[i].leaf ? 0.0 : nodes[i].threshold,
                               opt.fraction_bits) << "LL";
  os << "};\n  static const int16_t feat[" << nodes.size() << "] = {";
  for (std::size_t i = 0; i < nodes.size(); ++i)
    os << (i ? "," : "")
       << (nodes[i].leaf ? -(nodes[i].proba >= 0.5 ? 2 : 1)
                         : static_cast<int>(nodes[i].feature));
  os << "};\n";
  if (proba) {
    os << "  static const int32_t prob[" << nodes.size() << "] = {";
    for (std::size_t i = 0; i < nodes.size(); ++i)
      os << (i ? "," : "")
         << fx(nodes[i].leaf ? nodes[i].proba : 0.0, opt.fraction_bits)
         << "LL";
    os << "};\n";
  }
  os << "  static const uint16_t kid[" << nodes.size() << "][2] = {";
  for (std::size_t i = 0; i < nodes.size(); ++i)
    os << (i ? "," : "") << "{" << nodes[i].left << "," << nodes[i].right
       << "}";
  os << "};\n"
     << "  uint16_t n = 0;\n"
     << "  for (int depth = 0; depth < " << nodes.size() << "; ++depth) {\n"
     << "    const int f = feat[n];\n";
  if (proba)
    os << "    if (f < 0) return prob[n];  /* leaf: P(malware) in Q"
       << opt.fraction_bits << " */\n";
  else
    os << "    if (f < 0) return -f - 1;  /* leaf: -1 benign, -2 malware */\n";
  os << "    n = kid[n][x[f] <= thr[n] ? 0 : 1];\n"
     << "  }\n  return 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_jrip(const ml::JRip& jrip, bool proba) {
  const std::string name = fresh("jrip");
  os << "static int " << name << "(const int32_t x[]) {\n";
  const int fire = jrip.target_class();
  const auto outcome = [&](double p_malware) {
    return proba ? fx(p_malware, opt.fraction_bits)
                 : (p_malware >= 0.5 ? 1LL : 0LL);
  };
  for (const auto& rule : jrip.rules()) {
    os << "  if (1";
    for (const auto& cond : rule.conditions)
      os << " && x[" << cond.feature << "] " << (cond.leq ? "<=" : ">=")
         << " " << fx(cond.value, opt.fraction_bits) << "LL";
    os << ") return "
       << outcome(fire == 1 ? rule.precision : 1.0 - rule.precision) << ";\n";
  }
  os << "  return " << outcome(jrip.default_proba())
     << ";  /* default class */\n"
     << "}\n\n";
  return name;
}

template <typename Linear>
std::string Emitter::emit_linear(const Linear& linear, bool proba) {
  const std::string name = fresh("linear");
  // Fold the standardization into per-feature slope and a global offset:
  // margin = sum_f (w_f / sd_f) * x_f + (b - sum_f w_f * mu_f / sd_f).
  const auto& w = linear.weights();
  const auto& mu = linear.input_mean();
  const auto& sd = linear.input_stdev();
  std::vector<double> slopes(w.size());
  double offset = linear.bias();
  for (std::size_t f = 0; f < w.size(); ++f) {
    slopes[f] = w[f] / sd[f];
    offset -= w[f] * mu[f] / sd[f];
  }
  // Standardized slopes on raw HPC counts are tiny; quantizing them at the
  // input scale would underflow every coefficient to zero, so the slopes
  // get their own (wider) fixed-point format.
  const int sb = linear_fixed_point_bits(slopes, offset, opt.fraction_bits);
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  /* slopes in Q" << sb << ", accumulator in Q"
     << (opt.fraction_bits + sb) << " */\n"
     << "  static const int64_t slope[" << w.size() << "] = {";
  for (std::size_t f = 0; f < slopes.size(); ++f)
    os << (f ? "," : "") << fx(slopes[f], sb) << "LL";
  os << "};\n"
     << "  int64_t acc = " << fx(offset, opt.fraction_bits + sb) << "LL;\n"
     << "  for (int f = 0; f < " << w.size() << "; ++f)\n"
     << "    acc += slope[f] * (int64_t)x[f];\n";
  if (proba)
    os << "  return acc >= 0 ? " << (1LL << opt.fraction_bits)
       << " : 0;\n}\n\n";
  else
    os << "  return acc >= 0 ? 1 : 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_adaboost(const ml::AdaBoostM1& boost, bool proba) {
  std::vector<std::string> members;
  std::vector<long long> alphas;
  for (std::size_t m = 0; m < boost.num_members(); ++m) {
    members.push_back(emit_model(boost.member(m)));
    alphas.push_back(fx(boost.member_alpha(m), opt.fraction_bits));
  }
  long long total = 0;
  for (long long a : alphas) total += a;
  const std::string name = fresh("adaboost");
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  int64_t vote = 0;\n";
  for (std::size_t m = 0; m < members.size(); ++m)
    os << "  if (" << members[m] << "(x)) vote += " << alphas[m] << "LL;\n";
  if (proba && total > 0)
    os << "  return (int)((vote << " << opt.fraction_bits << ") / " << total
       << "LL);\n}\n\n";
  else if (proba)
    os << "  return " << (1LL << (opt.fraction_bits - 1))
       << ";  /* no informative members */\n}\n\n";
  else
    os << "  return 2 * vote >= " << total << "LL ? 1 : 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_bagging(const ml::Bagging& bag, bool proba) {
  // Bagging averages member *probabilities* (Bagging::predict_proba), so
  // members are emitted in their Q(fraction_bits) probability form rather
  // than as hard votes.
  std::vector<std::string> members;
  for (std::size_t m = 0; m < bag.num_members(); ++m)
    members.push_back(emit_model_proba(bag.member(m)));
  const auto n = static_cast<long long>(members.size());
  const std::string name = fresh("bagging");
  os << "static int " << name << "(const int32_t x[]) {\n"
     << "  int64_t acc = 0;  /* sum of member P(malware), Q"
     << opt.fraction_bits << " */\n";
  for (const auto& member : members)
    os << "  acc += " << member << "(x);\n";
  if (proba)
    os << "  return (int)(acc / " << n << "LL);\n}\n\n";
  else
    os << "  return 2 * acc >= " << (n << opt.fraction_bits)
       << "LL ? 1 : 0;\n}\n\n";
  return name;
}

std::string Emitter::emit_model(const ml::Classifier& model) {
  if (const auto* oner = dynamic_cast<const ml::OneR*>(&model))
    return emit_oner(*oner, /*proba=*/false);
  if (const auto* j48 = dynamic_cast<const ml::J48*>(&model))
    return emit_tree(*j48, /*proba=*/false);
  if (const auto* rep = dynamic_cast<const ml::RepTree*>(&model))
    return emit_tree(*rep, /*proba=*/false);
  if (const auto* jrip = dynamic_cast<const ml::JRip*>(&model))
    return emit_jrip(*jrip, /*proba=*/false);
  if (const auto* sgd = dynamic_cast<const ml::Sgd*>(&model))
    return emit_linear(*sgd, /*proba=*/false);
  if (const auto* smo = dynamic_cast<const ml::Smo*>(&model))
    return emit_linear(*smo, /*proba=*/false);
  if (const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(&model))
    return emit_adaboost(*boost, /*proba=*/false);
  if (const auto* bag = dynamic_cast<const ml::Bagging*>(&model))
    return emit_bagging(*bag, /*proba=*/false);
  throw PreconditionError("HLS codegen does not support model: " +
                          model.name());
}

std::string Emitter::emit_model_proba(const ml::Classifier& model) {
  if (const auto* oner = dynamic_cast<const ml::OneR*>(&model))
    return emit_oner(*oner, /*proba=*/true);
  if (const auto* j48 = dynamic_cast<const ml::J48*>(&model))
    return emit_tree(*j48, /*proba=*/true);
  if (const auto* rep = dynamic_cast<const ml::RepTree*>(&model))
    return emit_tree(*rep, /*proba=*/true);
  if (const auto* jrip = dynamic_cast<const ml::JRip*>(&model))
    return emit_jrip(*jrip, /*proba=*/true);
  if (const auto* sgd = dynamic_cast<const ml::Sgd*>(&model))
    return emit_linear(*sgd, /*proba=*/true);
  if (const auto* smo = dynamic_cast<const ml::Smo*>(&model))
    return emit_linear(*smo, /*proba=*/true);
  if (const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(&model))
    return emit_adaboost(*boost, /*proba=*/true);
  if (const auto* bag = dynamic_cast<const ml::Bagging*>(&model))
    return emit_bagging(*bag, /*proba=*/true);
  throw PreconditionError("HLS codegen does not support model: " +
                          model.name());
}

}  // namespace

int linear_fixed_point_bits(std::span<const double> slopes, double offset,
                            int fraction_bits) {
  double max_abs = 0.0;
  for (double s : slopes) max_abs = std::max(max_abs, std::abs(s));
  // Widen while every quantized slope stays below 2^24 (comfortable int32
  // headroom) and the folded offset — encoded at fraction_bits + slope
  // bits — stays well inside int64. Cap keeps the accumulator products
  // (slope * 32-bit input) representable.
  int bits = fraction_bits;
  constexpr int kMaxBits = 46;
  while (bits < kMaxBits &&
         max_abs * std::ldexp(1.0, bits + 1) < std::ldexp(1.0, 24) &&
         std::abs(offset) * std::ldexp(1.0, fraction_bits + bits + 1) <
             std::ldexp(1.0, 62)) {
    ++bits;
  }
  return bits;
}

bool hls_supported(const ml::Classifier& model) {
  if (dynamic_cast<const ml::OneR*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::J48*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::RepTree*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::JRip*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::Sgd*>(&model) != nullptr) return true;
  if (dynamic_cast<const ml::Smo*>(&model) != nullptr) return true;
  if (const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(&model)) {
    return boost->num_members() == 0 || hls_supported(boost->member(0));
  }
  if (const auto* bag = dynamic_cast<const ml::Bagging*>(&model)) {
    return bag->num_members() == 0 || hls_supported(bag->member(0));
  }
  return false;
}

void generate_hls_c(std::ostream& os, const ml::Classifier& model,
                    std::size_t num_inputs, const HlsOptions& options) {
  HMD_REQUIRE(num_inputs >= 1);
  HMD_REQUIRE_MSG(hls_supported(model),
                  "HLS codegen does not support model: " + model.name());

  // The generated file is self-contained C99.
  std::ostringstream body;
  Emitter emitter{body, options, num_inputs};
  const std::string top = emitter.emit_model(model);

  os << "/* Generated by hmd (DAC'18 HMD reproduction).\n"
     << " * Model: " << model.name() << "; inputs: " << num_inputs
     << " HPC counters, Q" << (32 - options.fraction_bits) << "."
     << options.fraction_bits << " fixed point.\n"
     << " * int " << options.function_name
     << "(const int32_t x[]) returns 1 = malware, 0 = benign.\n */\n"
     << "#include <stdint.h>\n\n"
     << body.str() << "int " << options.function_name
     << "(const int32_t x[" << num_inputs << "]) {\n  return " << top
     << "(x);\n}\n";
}

}  // namespace hmd::hw

// FPGA implementation cost model — the paper's Table 3 substitute.
//
// The paper synthesises each trained detector with Vivado HLS onto a Xilinx
// Virtex-7 and reports (a) classification latency in clock cycles @10 ns and
// (b) area as utilized LUT/FF/DSP resources relative to an OpenSPARC core on
// the same fabric. Without the Xilinx toolchain we estimate both from the
// *structure of the actually-trained model* (ml::ModelComplexity):
//
//   * every threshold comparison costs a W-bit comparator, every
//     accumulation a W-bit adder, every MAC a DSP48 slice, every CPT/leaf
//     entry a word of LUTRAM, every activation a piece-wise-linear sigmoid
//     evaluator;
//   * trees evaluate one level per pipeline stage, rule lists in parallel
//     with a priority encoder, linear models as a sequential MAC schedule,
//     MLPs as a fully sequential HLS MAC loop;
//   * ensembles are synthesised as ONE shared evaluation engine that plays
//     the member models from parameter memory back-to-back (this is what
//     makes ensemble latency grow ~linearly with members while the area
//     overhead stays small — the paper's central hardware observation).
//
// Absolute numbers differ from the paper's Vivado results; the relative
// ordering (MLP >> everything; OneR/JRip/REPTree tiny; <~3% ensemble area
// overhead; boosted-MLP-2HPC smaller than general-MLP-8HPC) is reproduced.
#pragma once

#include <cstdint>
#include <string>

#include "ml/classifier.h"

namespace hmd::hw {

/// Per-operator resource parameters (Virtex-7-class fabric, 16-bit fixed
/// point datapath).
struct FabricParams {
  std::uint32_t word_bits = 16;
  std::uint32_t luts_per_comparator_bit = 1;
  std::uint32_t luts_per_adder_bit = 1;
  std::uint32_t luts_per_table_word = 8;    ///< LUTRAM, 16-bit word
  std::uint32_t luts_per_sigmoid = 220;     ///< PWL segment evaluator
  std::uint32_t dsp_area_lut_equiv = 450;   ///< DSP48 slice area weight
  std::uint32_t fixed_overhead_luts = 600;  ///< HPC bus interface + control
  std::uint32_t luts_per_input = 40;        ///< counter capture register+mux
  std::uint32_t member_fsm_luts = 60;       ///< ensemble sequencing control
};

/// The area reference the paper normalises against.
struct ReferenceCore {
  std::string name = "OpenSPARC T1 core (Virtex-7)";
  std::uint64_t area_lut_equiv = 45000;
};

/// Synthesis result for one detector.
struct ResourceEstimate {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t dsps = 0;
  double latency_cycles = 0.0;  ///< cycles @10 ns to classify one vector

  /// Composite area in LUT-equivalents (LUTs + FFs + weighted DSPs).
  double area_lut_equiv(const FabricParams& fabric = {}) const;

  /// Area relative to the reference core, percent (paper Table 3 "Area %").
  double area_percent(const ReferenceCore& core = {},
                      const FabricParams& fabric = {}) const;

  /// Classification latency in nanoseconds at the 100 MHz (10 ns) clock.
  double latency_ns() const { return latency_cycles * 10.0; }
};

/// Estimate the hardware implementation of a trained model.
ResourceEstimate estimate_hardware(const ml::ModelComplexity& model,
                                   const FabricParams& fabric = {});

/// Convenience: estimate directly from a trained classifier.
ResourceEstimate estimate_hardware(const ml::Classifier& clf,
                                   const FabricParams& fabric = {});

}  // namespace hmd::hw

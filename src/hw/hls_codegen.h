// HLS C code generation for trained detectors.
//
// The paper's hardware flow is "trained WEKA model → C implementation →
// Vivado HLS → Virtex-7". This module performs the first arrow: it walks a
// trained classifier and emits a self-contained, synthesis-friendly C
// function (fixed-point arithmetic, no libc calls, no recursion, bounded
// loops) that computes the same decision. Feed the output to any HLS tool
// to obtain real implementation numbers next to the analytic estimates of
// hw/resources.h.
//
// Supported model families: OneR, J48, REPTree, JRip, SGD, SMO, and
// AdaBoost/Bagging ensembles of those. (BayesNet CPT tables and MLP
// weights are exported as ROM arrays with an evaluation loop.)
#pragma once

#include <iosfwd>
#include <string>

#include "ml/classifier.h"

namespace hmd::hw {

/// Fixed-point format used by the generated code.
struct HlsOptions {
  std::string function_name = "hmd_classify";
  int fraction_bits = 8;  ///< inputs/constants scaled by 2^fraction_bits
};

/// Emit a C function `int <name>(const int32_t x[N])` returning 1 for
/// malware, 0 for benign, implementing the trained `model`. `num_inputs`
/// must match the model's training feature count.
///
/// Throws PreconditionError for untrained models or model families the
/// generator does not support.
void generate_hls_c(std::ostream& os, const ml::Classifier& model,
                    std::size_t num_inputs, const HlsOptions& options = {});

/// Fraction bits the generator uses for the folded slopes (w_f / sd_f) of a
/// linear model. Starts at `fraction_bits` and widens while the largest
/// slope magnitude stays below 2^24 and the folded offset (encoded at
/// `fraction_bits` + the result) stays well inside int64 — standardized
/// slopes on raw HPC counts are tiny, and quantizing them at the input
/// scale underflows every coefficient to zero. Exposed so the analysis
/// subsystem's fixed-point mirror stays bit-exact with the generator.
int linear_fixed_point_bits(std::span<const double> slopes, double offset,
                            int fraction_bits);

/// True if generate_hls_c supports this classifier (by name / structure).
bool hls_supported(const ml::Classifier& model);

}  // namespace hmd::hw

#include "hw/resources.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace hmd::hw {
namespace {

std::size_t ceil_log2(std::size_t n) {
  std::size_t d = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++d;
  }
  return d;
}

/// Latency of a single (non-ensemble) model per its evaluation style.
double leaf_latency(const ml::ModelComplexity& m) {
  if (m.kind == "tree") {
    // One compare + branch per level, pipelined in 3-cycle stages.
    return 3.0 * static_cast<double>(std::max<std::size_t>(m.depth, 1));
  }
  if (m.kind == "rules") {
    // All conditions in parallel, then a priority chain of depth stages.
    return static_cast<double>(std::max<std::size_t>(m.depth, 1));
  }
  if (m.kind == "bayes") {
    // Bin comparators, CPT reads, log-posterior adder tree.
    return 3.0 * static_cast<double>(std::max<std::size_t>(m.depth, 1));
  }
  if (m.kind == "linear") {
    // Sequential MAC over the inputs on one DSP lane.
    return 2.0 + 4.0 * static_cast<double>(std::max<std::size_t>(m.inputs, 1));
  }
  if (m.kind == "mlp") {
    // HLS MAC loop: every multiply scheduled sequentially.
    return 2.0 +
           6.0 * static_cast<double>(std::max<std::size_t>(m.multipliers, 1));
  }
  // Unknown leaf kind: fall back to depth-based estimate.
  return 2.0 * static_cast<double>(std::max<std::size_t>(m.depth, 1));
}

/// Storage (parameter memory) of one member model, in LUTs.
std::uint64_t member_storage_luts(const ml::ModelComplexity& m,
                                  const FabricParams& fp) {
  // Tables plus the constants feeding comparators/MACs.
  const std::uint64_t words = m.table_entries + m.comparators + m.multipliers;
  return words * fp.luts_per_table_word;
}

/// Combinational datapath of one member model (no parameter storage).
ResourceEstimate member_datapath(const ml::ModelComplexity& m,
                                 const FabricParams& fp) {
  ResourceEstimate r;
  r.luts = m.comparators * fp.luts_per_comparator_bit * fp.word_bits +
           m.adders * fp.luts_per_adder_bit * fp.word_bits +
           m.nonlinearities * fp.luts_per_sigmoid;
  r.dsps = m.multipliers;
  r.ffs = (m.depth + m.inputs) * fp.word_bits;
  r.latency_cycles = leaf_latency(m);
  return r;
}

}  // namespace

double ResourceEstimate::area_lut_equiv(const FabricParams& fabric) const {
  return static_cast<double>(luts) + static_cast<double>(ffs) +
         static_cast<double>(dsps) *
             static_cast<double>(fabric.dsp_area_lut_equiv);
}

double ResourceEstimate::area_percent(const ReferenceCore& core,
                                      const FabricParams& fabric) const {
  HMD_REQUIRE(core.area_lut_equiv > 0);
  return 100.0 * area_lut_equiv(fabric) /
         static_cast<double>(core.area_lut_equiv);
}

ResourceEstimate estimate_hardware(const ml::ModelComplexity& model,
                                   const FabricParams& fabric) {
  ResourceEstimate total;

  if (model.kind == "ensemble") {
    HMD_REQUIRE_MSG(!model.children.empty(),
                    "ensemble complexity must have members");
    // One shared engine sized for the largest member; parameters of every
    // member stored in on-chip memory; members evaluated back-to-back.
    ResourceEstimate engine;
    std::uint64_t storage = 0;
    double member_cycles = 0.0;
    std::size_t max_inputs = 0;
    for (const auto& child : model.children) {
      const ResourceEstimate dp = member_datapath(child, fabric);
      engine.luts = std::max(engine.luts, dp.luts);
      engine.ffs = std::max(engine.ffs, dp.ffs);
      engine.dsps = std::max(engine.dsps, dp.dsps);
      storage += member_storage_luts(child, fabric);
      member_cycles += dp.latency_cycles +
                       static_cast<double>(child.inputs) + 2.0;
      max_inputs = std::max(max_inputs, child.inputs);
    }
    const std::size_t members = model.children.size();
    total.luts = engine.luts + storage +
                 members * fabric.member_fsm_luts +
                 members * fabric.word_bits /* vote accumulate */ +
                 fabric.fixed_overhead_luts +
                 max_inputs * fabric.luts_per_input;
    total.ffs = engine.ffs + members * fabric.word_bits;
    total.dsps = engine.dsps + model.multipliers /* vote weights */;
    total.latency_cycles =
        member_cycles + static_cast<double>(ceil_log2(members)) + 1.0;
    return total;
  }

  const ResourceEstimate dp = member_datapath(model, fabric);
  total.luts = dp.luts + member_storage_luts(model, fabric) +
               fabric.fixed_overhead_luts +
               model.inputs * fabric.luts_per_input;
  total.ffs = dp.ffs;
  total.dsps = dp.dsps;
  total.latency_cycles = dp.latency_cycles;
  return total;
}

ResourceEstimate estimate_hardware(const ml::Classifier& clf,
                                   const FabricParams& fabric) {
  return estimate_hardware(clf.complexity(), fabric);
}

}  // namespace hmd::hw

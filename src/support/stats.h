// Small statistics helpers shared by the ML library and the benchmark
// harnesses: means, variances, Pearson correlation, ranking utilities.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hmd {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Unbiased sample variance; 0 for fewer than two elements.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Pearson product-moment correlation in [-1, 1]; 0 when either side is
/// constant (the convention used by WEKA's CorrelationAttributeEval).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Weighted Pearson correlation with per-observation weights.
double weighted_pearson(std::span<const double> xs, std::span<const double> ys,
                        std::span<const double> ws);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  void add_weighted(double x, double w);
  std::size_t count() const { return n_; }
  double weight() const { return w_sum_; }
  double mean() const { return mean_; }
  double variance() const;  ///< unbiased-ish (frequency weights)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double w_sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Indices 0..n-1 sorted so values[result[0]] is the largest.
std::vector<std::size_t> rank_descending(std::span<const double> values);

/// Percentile via linear interpolation on a *sorted* input; p in [0, 100].
double percentile_sorted(std::span<const double> sorted, double p);

}  // namespace hmd

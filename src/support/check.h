// Lightweight precondition / invariant checking for the hmd libraries.
//
// We deliberately do not use <cassert>: checks here are part of the public
// contract of the library and must fire in release builds too, because the
// benchmark harnesses run in Release mode and silently-wrong experiment
// output is worse than a crash.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hmd {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant is broken (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace hmd

/// Validate a documented precondition of a public API.
#define HMD_REQUIRE(expr)                                               \
  do {                                                                  \
    if (!(expr)) ::hmd::detail::fail_require(#expr, __FILE__, __LINE__, \
                                             std::string{});            \
  } while (false)

#define HMD_REQUIRE_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::hmd::detail::fail_require(#expr, __FILE__, __LINE__, \
                                             (msg));                    \
  } while (false)

/// Validate an internal invariant; failure indicates a library bug.
#define HMD_INVARIANT(expr)                                               \
  do {                                                                    \
    if (!(expr)) ::hmd::detail::fail_invariant(#expr, __FILE__, __LINE__, \
                                               std::string{});            \
  } while (false)

// Deterministic parallel execution for the experiment pipeline.
//
// The paper's workload is embarrassingly parallel at two levels — the
// 11-runs-per-application capture campaign and the 8 classifiers ×
// {General, Boosted, Bagging} × {16,8,4,2} evaluation grid — and every unit
// of work derives its randomness from explicit per-unit seeds (see
// support/rng.h), never from shared mutable state. ThreadPool exploits
// that: `parallel_for(n, fn)` runs fn(0..n-1) on a fixed set of workers and
// `parallel_map` assembles results *in input order*, so the output of a
// parallel run is bit-identical to a serial one. Determinism contract:
//
//   * work unit i must depend only on i and on state that is immutable for
//     the duration of the call (enforced by convention, checked by the
//     serial-vs-parallel tests);
//   * results are written to slot i, never appended, so completion order
//     cannot leak into the output;
//   * if several units throw, the exception of the *lowest* index is
//     rethrown — every unit still runs, keeping error reporting
//     deterministic too.
//
// Thread count: an explicit request wins; 0 means "auto" — the HMD_THREADS
// environment variable if set, else std::thread::hardware_concurrency().
// A pool of size 1 spawns no threads at all and runs everything inline,
// which is both the degenerate-correctness baseline and the fallback used
// for nested parallel_for calls from inside a worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/thread_safety.h"

namespace hmd::support {

/// Parse a thread-count override in the HMD_THREADS format: a positive
/// decimal integer. Returns nullopt for null, empty, zero, junk, or
/// implausibly large (> 1024) values.
std::optional<std::size_t> parse_thread_count(const char* text);

/// Effective worker count for a request: `requested` if positive, else
/// HMD_THREADS from the environment, else hardware_concurrency (min 1).
std::size_t resolve_threads(std::size_t requested = 0);

/// Bounded multi-producer/multi-consumer FIFO queue — the hand-off
/// primitive of the serving pipeline (src/serve), reusable anywhere a
/// stage boundary needs backpressure.
///
/// Semantics:
///   * push() blocks while the queue is full — a slow consumer therefore
///     stalls its producers instead of growing an unbounded backlog
///     (backpressure). Returns false iff the queue was closed.
///   * try_push() never blocks: false when full or closed (the caller can
///     count the would-have-stalled case before falling back to push()).
///   * pop() blocks while empty; after close() it drains the remaining
///     items in FIFO order and then returns nullopt — shutdown never
///     loses accepted work.
///   * close() is idempotent and wakes every waiter.
///
/// FIFO order is per-queue total order: items pushed by one thread are
/// popped in push order (the serving controller relies on this to keep
/// per-shard state updates in tick order). All fields are guarded by one
/// mutex (clang -Wthread-safety checked); condition waits run on the
/// annotated support::Mutex directly.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    HMD_REQUIRE(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking enqueue; false iff the queue is (or becomes) closed.
  bool push(T value) {
    MutexLock lock(mutex_);
    not_full_.wait(mutex_,
                   [&]() HMD_REQUIRES(mutex_) {
                     return closed_ || items_.size() < capacity_;
                   });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue; false when full or closed (`value` is left
  /// untouched so the caller can retry with push()).
  bool try_push(T& value) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking dequeue; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    MutexLock lock(mutex_);
    not_empty_.wait(mutex_, [&]() HMD_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking dequeue; nullopt when currently empty.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Close the queue: subsequent pushes fail, pops drain then end.
  void close() {
    MutexLock lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mutex_;
  std::condition_variable_any not_full_;   ///< producers wait for space
  std::condition_variable_any not_empty_;  ///< consumers wait for items
  std::deque<T> items_ HMD_GUARDED_BY(mutex_);
  const std::size_t capacity_;
  bool closed_ HMD_GUARDED_BY(mutex_) = false;
};

class ThreadPool {
 public:
  /// `threads == 0` resolves via resolve_threads(). A pool of size 1 owns
  /// no worker threads and executes inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Invoke fn(i) for every i in [0, n); blocks until all complete.
  /// One parallel_for may be in flight per pool at a time; a call made
  /// from inside a worker of any pool runs inline (no nested fan-out).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for that collects fn(i) into slot i of the result vector —
  /// the output order is the input order regardless of scheduling.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<std::optional<R>> slots(n);
    parallel_for(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  void worker_loop();
  void run_serial(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;

  /// Every field of the job state below is guarded by mutex_ (checked by
  /// clang -Wthread-safety; see support/thread_safety.h). Workers execute a
  /// claimed unit with the lock *released*, through a pointer copied while
  /// it was held — parallel_for cannot retire the job before active_ drops
  /// to zero, so the copy outlives the call.
  Mutex mutex_;
  std::condition_variable_any work_cv_;  ///< workers wait for a job
  std::condition_variable_any done_cv_;  ///< the caller waits for completion
  const std::function<void(std::size_t)>* job_ HMD_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t job_n_ HMD_GUARDED_BY(mutex_) = 0;
  /// next unclaimed index of the current job
  std::size_t next_ HMD_GUARDED_BY(mutex_) = 0;
  /// workers currently executing a unit
  std::size_t active_ HMD_GUARDED_BY(mutex_) = 0;
  bool stop_ HMD_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ HMD_GUARDED_BY(mutex_);
  /// lowest index that threw so far
  std::size_t error_index_ HMD_GUARDED_BY(mutex_) = 0;
};

}  // namespace hmd::support

#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace hmd {

void TextTable::set_header(std::vector<std::string> header) {
  HMD_REQUIRE(rows_.empty());
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) HMD_REQUIRE(row.size() == header_.size());
  if (!rows_.empty()) HMD_REQUIRE(row.size() == rows_.front().size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  const std::size_t cols = !header_.empty() ? header_.size()
                           : !rows_.empty() ? rows_.front().size()
                                            : 0;
  if (cols == 0) return;

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto rule = [&](char corner, char fill) {
    os << corner;
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << fill;
      os << corner;
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << row[c] << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule('+', '-');
  if (!header_.empty()) {
    line(header_);
    rule('+', '=');
  }
  for (const auto& row : rows_) line(row);
  rule('+', '-');
}

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      const bool quote = row[i].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : row[i]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[i];
      }
    }
    os << '\n';
  };
  emit(header);
  for (const auto& row : rows) {
    HMD_REQUIRE(row.size() == header.size());
    emit(row);
  }
}

}  // namespace hmd

// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (workload synthesis, instance
// resampling in Bagging, weight initialisation in the MLP, ...) draw from a
// `Rng` seeded explicitly by the caller, never from global state, so every
// table and figure regenerates bit-identically across runs and platforms.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded via SplitMix64 —
// small, fast, and with well-studied statistical quality; we avoid
// std::mt19937 because its distributions are not specified to be identical
// across standard library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "support/check.h"

namespace hmd {

/// SplitMix64 step — used for seeding and for cheap hash-like mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mix an arbitrary 64-bit value into a well-distributed hash.
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Deterministic xoshiro256** generator with explicit seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1CEB00DULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent stream, e.g. one per workload or per bag.
  Rng fork(std::uint64_t stream) const {
    Rng child(0);
    std::uint64_t sm = state_[0] ^ mix64(stream ^ 0xA5A5A5A5DEADBEEFULL);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) {
    HMD_REQUIRE(n > 0);
    // Lemire-style rejection-free-ish reduction; bias is negligible for the
    // ranges used here but we reject to keep the stream exactly uniform.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = operator()();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    HMD_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state simple).
  double gaussian() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Log-normal sample with the given underlying normal parameters.
  double lognormal(double mu, double sigma) {
    return std::exp(gaussian(mu, sigma));
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish burst length >= 1 with mean roughly `mean`.
  std::uint64_t burst(double mean) {
    HMD_REQUIRE(mean >= 1.0);
    const double p = 1.0 / mean;
    std::uint64_t n = 1;
    while (!chance(p) && n < 1u << 20) ++n;
    return n;
  }

  /// Poisson sample (Knuth for small lambda, normal approx for large).
  std::uint64_t poisson(double lambda) {
    HMD_REQUIRE(lambda >= 0.0);
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      const double v = gaussian(lambda, std::sqrt(lambda));
      return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hmd

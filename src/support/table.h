// ASCII table rendering for the reproduction harnesses: every bench binary
// prints the rows of the paper table/figure it regenerates through this,
// so the output format is consistent and diff-able across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hmd {

/// A simple column-aligned text table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width if a header was set.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Render with box-drawing rules to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write rows as CSV (header first) — used to dump figure series for
/// external plotting.
void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace hmd

// Clang thread-safety annotations and annotated locking primitives.
//
// The determinism contract of this codebase (DESIGN.md §7/§12) leans on a
// small number of mutex-guarded structures: the ThreadPool job state, the
// experiment projection cache, and the dataset presort cache. Runtime tests
// and TSan exercise them, but neither checks *statically* that every access
// to a guarded member actually holds its lock. Clang's `-Wthread-safety`
// analysis does — provided the mutex type and the guarded members carry
// capability attributes.
//
// This header defines the attribute macros (no-ops on non-clang compilers,
// so the default gcc toolchain is unaffected) plus `Mutex` / `MutexLock`:
// thin annotated wrappers over std::mutex that the analysis understands.
// libstdc++'s std::mutex carries no capability attributes, so guarding a
// member with a raw std::mutex would silence the analysis entirely — always
// guard with support::Mutex in library code.
//
// The build integration lives in cmake/ThreadSafety.cmake: under clang the
// flags `-Wthread-safety -Werror=thread-safety-analysis` are added to every
// target, and a configure-time negative-compilation check proves that an
// unlocked access to a HMD_GUARDED_BY member is rejected (i.e. that these
// macros are not silently expanding to nothing under clang).
#pragma once

#include <mutex>

#if defined(__clang__)
#define HMD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HMD_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no such analysis
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define HMD_CAPABILITY(x) HMD_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define HMD_SCOPED_CAPABILITY HMD_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define HMD_GUARDED_BY(x) HMD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define HMD_PT_GUARDED_BY(x) HMD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities.
#define HMD_REQUIRES(...) \
  HMD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires / releases the given capabilities.
#define HMD_ACQUIRE(...) HMD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HMD_RELEASE(...) HMD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define HMD_TRY_ACQUIRE(ret, ...) \
  HMD_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the given capabilities.
#define HMD_EXCLUDES(...) HMD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for accesses the analysis cannot model (e.g. lock-free
/// reads of data published through an atomic release). Every use must carry
/// a comment justifying why the access is safe.
#define HMD_NO_THREAD_SAFETY_ANALYSIS \
  HMD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hmd::support {

/// std::mutex with capability annotations. Also a BasicLockable, so it can
/// be waited on directly with std::condition_variable_any (the analysis
/// does not look inside the wait — the capability state at the call site is
/// unchanged, which matches the caller's view: wait returns holding the
/// lock exactly as it was entered).
class HMD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HMD_ACQUIRE() { mutex_.lock(); }
  void unlock() HMD_RELEASE() { mutex_.unlock(); }
  bool try_lock() HMD_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock over support::Mutex, understood by the analysis (std::lock_guard
/// over an annotated mutex is not — it lacks the scoped_lockable attribute).
class HMD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HMD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() HMD_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace hmd::support

#include "support/parallel.h"

#include <cstdlib>
#include <cstring>

#include "support/check.h"

namespace hmd::support {
namespace {

/// Set while the current thread is executing a unit on behalf of any pool,
/// so nested parallel_for calls degrade to inline execution instead of
/// deadlocking on their own pool or over-subscribing another.
thread_local bool tls_in_pool_worker = false;

}  // namespace

std::optional<std::size_t> parse_thread_count(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;
  if (v == 0 || v > 1024) return std::nullopt;
  return static_cast<std::size_t>(v);
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const auto env = parse_thread_count(std::getenv("HMD_THREADS")))
    return *env;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
    : size_(resolve_threads(threads)) {
  if (size_ == 1) return;  // inline mode: no workers, no synchronisation
  workers_.reserve(size_);
  for (std::size_t t = 0; t < size_; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_serial(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || tls_in_pool_worker) {
    run_serial(n, fn);
    return;
  }

  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    HMD_REQUIRE_MSG(job_ == nullptr,
                    "ThreadPool supports one parallel_for at a time");
    job_ = &fn;
    job_n_ = n;
    next_ = 0;
    error_ = nullptr;
    error_index_ = n;
    work_cv_.notify_all();
    // condition_variable_any waits on the annotated mutex directly; the
    // capability is held again whenever the predicate is evaluated.
    while (!(next_ >= job_n_ && active_ == 0)) done_cv_.wait(mutex_);
    job_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  // Rethrown outside the lock so a handler touching the pool cannot
  // deadlock against it.
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  mutex_.lock();
  for (;;) {
    while (!stop_ && (job_ == nullptr || next_ >= job_n_))
      work_cv_.wait(mutex_);
    if (stop_) break;
    while (job_ != nullptr && next_ < job_n_) {
      // Copy the job pointer while the lock is held: parallel_for cannot
      // retire the job until active_ drops back to zero, so the copy stays
      // valid for the unlocked call below.
      const std::function<void(std::size_t)>* job = job_;
      const std::size_t index = next_++;
      ++active_;
      mutex_.unlock();
      tls_in_pool_worker = true;
      std::exception_ptr thrown;
      try {
        (*job)(index);
      } catch (...) {
        thrown = std::current_exception();
      }
      tls_in_pool_worker = false;
      mutex_.lock();
      if (thrown != nullptr && index < error_index_) {
        // Every unit still runs; reporting the lowest-index failure keeps
        // the observable error independent of scheduling.
        error_ = thrown;
        error_index_ = index;
      }
      --active_;
      if (next_ >= job_n_ && active_ == 0) done_cv_.notify_all();
    }
  }
  mutex_.unlock();
}

}  // namespace hmd::support

#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/check.h"

namespace hmd {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  HMD_REQUIRE(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double weighted_pearson(std::span<const double> xs, std::span<const double> ys,
                        std::span<const double> ws) {
  HMD_REQUIRE(xs.size() == ys.size() && xs.size() == ws.size());
  double wsum = 0.0;
  for (double w : ws) {
    HMD_REQUIRE(w >= 0.0);
    wsum += w;
  }
  if (wsum <= 0.0 || xs.size() < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += ws[i] * xs[i];
    my += ws[i] * ys[i];
  }
  mx /= wsum;
  my /= wsum;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += ws[i] * dx * dy;
    sxx += ws[i] * dx * dx;
    syy += ws[i] * dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) { add_weighted(x, 1.0); }

void RunningStats::add_weighted(double x, double w) {
  HMD_REQUIRE(w >= 0.0);
  if (w == 0.0) return;
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  w_sum_ += w;
  const double delta = x - mean_;
  mean_ += (w / w_sum_) * delta;
  m2_ += w * delta * (x - mean_);
}

double RunningStats::variance() const {
  if (w_sum_ <= 1.0) return 0.0;
  return m2_ / (w_sum_ - 1.0);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::vector<std::size_t> rank_descending(std::span<const double> values) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return values[a] > values[b];
  });
  return idx;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  HMD_REQUIRE(!sorted.empty());
  HMD_REQUIRE(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace hmd

#include "attack/adversary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"
#include "support/rng.h"
#include "support/table.h"

namespace hmd::attack {
namespace {

/// Per-coordinate feasible value range under the budget (integer-aligned
/// when the budget demands integer counts).
struct Box {
  double lo = 0.0;
  double hi = 0.0;
  bool movable = false;  ///< the coordinate has at least one non-clean value
};

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::string describe_budget(const PerturbationBudget& budget) {
  std::string s = "abs " + TextTable::num(budget.max_abs_delta, 0) + ", rel " +
                  TextTable::num(100.0 * budget.max_rel_delta, 1) + "%";
  s += budget.total_budget > 0.0
           ? ", total " + TextTable::num(budget.total_budget, 0)
           : ", total off";
  s += budget.integer_counts ? ", integer" : ", continuous";
  return s;
}

Adversary::Adversary(const ml::Classifier& model, PerturbationBudget budget,
                     EvasionSearchConfig search, std::uint64_t seed)
    : model_(&model),
      backend_(ml::make_active_backend(model)),
      budget_(budget),
      search_(search),
      seed_(seed) {
  HMD_REQUIRE(budget_.max_abs_delta >= 0.0);
  HMD_REQUIRE(budget_.max_rel_delta >= 0.0);
  HMD_REQUIRE(budget_.total_budget >= 0.0);
}

EvasionResult Adversary::evade(std::span<const double> x,
                               std::uint64_t stream) const {
  const std::size_t nf = x.size();
  HMD_REQUIRE(nf > 0);

  EvasionResult out;
  out.x.assign(x.begin(), x.end());
  out.clean_score = backend_->predict_proba(x);
  out.score = out.clean_score;

  // The feasible box around the clean reading: non-negative, per-event
  // capped, integer-aligned. A coordinate whose integer box collapses onto
  // the clean value (tiny cap) simply cannot move.
  std::vector<Box> box(nf);
  bool any_movable = false;
  for (std::size_t i = 0; i < nf; ++i) {
    const double cap = budget_.event_cap(x[i]);
    double lo = std::max(0.0, x[i] - cap);
    double hi = x[i] + cap;
    if (budget_.integer_counts) {
      lo = std::ceil(lo);
      hi = std::floor(hi);
    }
    box[i].lo = lo;
    box[i].hi = hi;
    box[i].movable = hi > lo || (hi == lo && hi != x[i]);
    any_movable = any_movable || box[i].movable;
  }
  if (budget_.empty() || !any_movable) return out;

  std::vector<double>& cur = out.x;
  double spent = 0.0;
  const double total = budget_.total_budget;

  // Project a proposal for coordinate i into its box and an L1 allowance
  // around the clean value. Integer snapping rounds *toward* the clean
  // value, so neither the box nor the allowance can be exceeded (box
  // endpoints are already integers).
  const auto project = [&](std::size_t i, double v, double allow) {
    v = std::clamp(v, box[i].lo, box[i].hi);
    if (allow < kInf) v = std::clamp(v, x[i] - allow, x[i] + allow);
    if (budget_.integer_counts) v = v > x[i] ? std::floor(v) : std::ceil(v);
    return v;
  };

  Rng base(seed_);
  Rng rng = base.fork(stream);

  std::vector<double> cand_vals;
  std::vector<double> batch;
  std::vector<double> scores;

  for (std::size_t round = 0; round < search_.rounds; ++round) {
    bool improved = false;

    // Coordinate sweep: for each event, score a small candidate set (box
    // extremes, box midpoint, half-steps from the current value) in one
    // backend batch and keep the best strict improvement.
    for (std::size_t i = 0; i < nf && out.score > 0.0; ++i) {
      if (!box[i].movable) continue;
      const double allow =
          total > 0.0 ? total - (spent - std::abs(cur[i] - x[i])) : kInf;
      if (allow <= 0.0) continue;

      const double proposals[5] = {box[i].lo, box[i].hi,
                                   0.5 * (box[i].lo + box[i].hi),
                                   0.5 * (cur[i] + box[i].lo),
                                   0.5 * (cur[i] + box[i].hi)};
      cand_vals.clear();
      for (const double p : proposals) {
        const double v = project(i, p, allow);
        if (v == cur[i]) continue;
        if (std::find(cand_vals.begin(), cand_vals.end(), v) !=
            cand_vals.end())
          continue;
        cand_vals.push_back(v);
      }
      if (cand_vals.empty()) continue;

      batch.assign(cand_vals.size() * nf, 0.0);
      for (std::size_t c = 0; c < cand_vals.size(); ++c) {
        std::copy(cur.begin(), cur.end(), batch.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  c * nf));
        batch[c * nf + i] = cand_vals[c];
      }
      scores.assign(cand_vals.size(), 0.0);
      backend_->predict_proba_batch(batch, nf, scores);

      std::size_t best = cand_vals.size();
      double best_score = out.score;
      for (std::size_t c = 0; c < cand_vals.size(); ++c) {
        if (scores[c] < best_score) {  // strict: ties keep the incumbent
          best = c;
          best_score = scores[c];
        }
      }
      if (best == cand_vals.size()) continue;
      spent += std::abs(cand_vals[best] - x[i]) - std::abs(cur[i] - x[i]);
      cur[i] = cand_vals[best];
      out.score = best_score;
      improved = true;
    }

    // Random joint probes: seeded uniform draws over the whole box,
    // greedily trimmed to the total budget in coordinate order. These move
    // several events at once, which the per-coordinate sweep cannot.
    if (search_.random_probes > 0 && out.score > 0.0) {
      batch.assign(search_.random_probes * nf, 0.0);
      for (std::size_t p = 0; p < search_.random_probes; ++p) {
        double remaining = total > 0.0 ? total : kInf;
        for (std::size_t i = 0; i < nf; ++i) {
          double v = x[i];
          if (box[i].movable && remaining > 0.0) {
            v = project(i, box[i].lo + rng.uniform() * (box[i].hi - box[i].lo),
                        remaining);
            if (total > 0.0) remaining -= std::abs(v - x[i]);
          }
          batch[p * nf + i] = v;
        }
      }
      scores.assign(search_.random_probes, 0.0);
      backend_->predict_proba_batch(batch, nf, scores);
      std::size_t best = search_.random_probes;
      double best_score = out.score;
      for (std::size_t p = 0; p < search_.random_probes; ++p) {
        if (scores[p] < best_score) {
          best = p;
          best_score = scores[p];
        }
      }
      if (best < search_.random_probes) {
        const auto row = batch.begin() +
                         static_cast<std::ptrdiff_t>(best * nf);
        std::copy(row, row + static_cast<std::ptrdiff_t>(nf), cur.begin());
        spent = 0.0;
        for (std::size_t i = 0; i < nf; ++i) spent += std::abs(cur[i] - x[i]);
        out.score = best_score;
        improved = true;
      }
    }

    if (!improved || out.score <= 0.0) break;
  }

  out.spent = spent;
  out.evaded = out.clean_score >= ml::kDecisionThreshold &&
               out.score < ml::kDecisionThreshold;
  return out;
}

}  // namespace hmd::attack

#include "attack/attack_eval.h"

#include <algorithm>
#include <cmath>

#include "sim/machine.h"
#include "support/check.h"
#include "support/parallel.h"

namespace hmd::attack {

DatasetAttackResult attack_dataset(const ml::Classifier& model,
                                   const ml::Dataset& data,
                                   const PerturbationBudget& budget,
                                   const EvasionSearchConfig& search,
                                   std::uint64_t seed, std::size_t threads) {
  const std::size_t nf = data.num_features();
  DatasetAttackResult out;
  out.num_features = nf;

  const auto backend = ml::make_active_backend(model);
  out.clean_scores = backend->predict_proba_batch(data);
  out.attacked_scores = out.clean_scores;

  for (std::size_t i = 0; i < data.num_rows(); ++i)
    if (data.label(i) == 1) out.attacked_rows.push_back(i);
  out.malware_rows = out.attacked_rows.size();
  if (out.attacked_rows.empty()) return out;

  const Adversary adversary(model, budget, search, seed);
  // One independent search per malware row, streamed by row index: the
  // parallel map's output order is the input order, so the result is
  // bit-identical at any worker count.
  support::ThreadPool pool(threads);
  std::vector<EvasionResult> evasions =
      pool.parallel_map(out.attacked_rows.size(), [&](std::size_t k) {
        const std::size_t row = out.attacked_rows[k];
        return adversary.evade(data.row(row), row);
      });

  out.perturbed.resize(out.attacked_rows.size() * nf);
  for (std::size_t k = 0; k < out.attacked_rows.size(); ++k) {
    const EvasionResult& ev = evasions[k];
    std::copy(ev.x.begin(), ev.x.end(),
              out.perturbed.begin() + static_cast<std::ptrdiff_t>(k * nf));
    out.attacked_scores[out.attacked_rows[k]] = ev.score;
    if (ev.clean_score >= ml::kDecisionThreshold) {
      ++out.detected_clean;
      if (ev.evaded) ++out.evaded;
    }
  }
  return out;
}

std::vector<double> transfer_scores(const ml::Classifier& model,
                                    const ml::Dataset& data,
                                    const DatasetAttackResult& attack) {
  HMD_REQUIRE(attack.num_features == data.num_features());
  const auto backend = ml::make_active_backend(model);
  std::vector<double> scores = backend->predict_proba_batch(data);
  if (!attack.attacked_rows.empty()) {
    std::vector<double> perturbed_scores(attack.attacked_rows.size(), 0.0);
    backend->predict_proba_batch(attack.perturbed, attack.num_features,
                                 perturbed_scores);
    for (std::size_t k = 0; k < attack.attacked_rows.size(); ++k)
      scores[attack.attacked_rows[k]] = perturbed_scores[k];
  }
  return scores;
}

ml::DetectorMetrics metrics_of(const ml::Dataset& data,
                               std::span<const double> scores) {
  HMD_REQUIRE(scores.size() == data.num_rows());
  std::vector<int> labels;
  std::vector<double> weights;
  labels.reserve(data.num_rows());
  weights.reserve(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    labels.push_back(data.label(i));
    weights.push_back(data.weight(i));
  }
  return ml::detector_metrics(scores, labels, weights);
}

std::vector<core::Verdict> monitor_application_under_attack(
    const sim::AppProfile& app, core::OnlineDetector& detector,
    const Adversary& adversary, sim::MachineConfig machine_cfg,
    std::uint32_t run_index) {
  const std::vector<sim::Event>& events = detector.events();
  sim::Machine machine(machine_cfg);
  machine.start_run(app, run_index);
  std::vector<core::Verdict> timeline;
  timeline.reserve(app.intervals);
  std::vector<double> x(events.size(), 0.0);
  std::uint64_t interval = 0;
  while (machine.running()) {
    sim::EventCounts counts = machine.next_interval();
    for (std::size_t k = 0; k < events.size(); ++k)
      x[k] = static_cast<double>(counts[events[k]]);
    const EvasionResult ev = adversary.evade(
        x, (static_cast<std::uint64_t>(run_index) << 32) ^ interval);
    for (std::size_t k = 0; k < events.size(); ++k) {
      HMD_INVARIANT(ev.x[k] >= 0.0);
      counts[events[k]] = static_cast<std::uint64_t>(std::llround(ev.x[k]));
    }
    timeline.push_back(detector.observe(counts));
    ++interval;
  }
  return timeline;
}

}  // namespace hmd::attack

// Adversarial counter perturbation: the attacker-side counterpart of the
// fault layer.
//
// The fault layer (src/hpc/faults.h) models a collector that loses data at
// *random*; this module models malware that shapes its own HPC footprint on
// purpose — Kuruvila et al., "Defending Hardware-based Malware Detectors
// against Adversarial Attacks", show that small bounded perturbations of
// the counter stream collapse single-model HMD accuracy. An `Adversary`
// owns two things:
//
//   * a budget model (PerturbationBudget) giving the attacker explicit,
//     physical limits — a per-event cap that combines an absolute and a
//     relative delta, non-negativity (a counter cannot go below zero),
//     integer counts (a counter reading is an integer), and an optional
//     total L1 budget across the whole feature vector (shaping one event
//     costs instructions that show up in others; the total budget is the
//     coarse knob for that coupling);
//
//   * a seeded, gradient-free evasion search over the budget box: batched
//     coordinate descent (every candidate batch is scored through the
//     PR 7 InferenceBackend, so the inner loop rides the branch-free batch
//     engine) plus seeded random joint probes that escape axis-aligned
//     local minima. The search only ever *accepts* score decreases, so an
//     attacked score is never above the clean score — the monotonicity the
//     bench and CI assert on.
//
// Determinism contract: evade() is a pure function of (model, budget,
// search config, seed, stream, x). Every random draw comes from an Rng
// forked from (seed, stream), candidates are generated and compared in a
// fixed order, and ties keep the incumbent — so attack results are
// bit-identical across runs and thread counts, like everything else in the
// tree. Thread safety: an Adversary is immutable after construction;
// concurrent evade() calls are safe (search state is call-local).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/infer.h"

namespace hmd::attack {

/// Explicit physical limits on how far the attacker can shape one
/// interval's counter readings.
struct PerturbationBudget {
  /// Per-event absolute delta: |x'_i - x_i| <= max_abs_delta + ...
  double max_abs_delta = 0.0;
  /// ... + max_rel_delta * x_i (scale-free component; 0.05 = 5%).
  double max_rel_delta = 0.0;
  /// Optional L1 budget across the whole vector: sum_i |x'_i - x_i| <=
  /// total_budget. 0 disables the coupling (each event only limited by its
  /// own cap).
  double total_budget = 0.0;
  /// Counter readings are integers; perturbed values snap to the integer
  /// lattice inside the box. Disable only for already-continuous features
  /// (e.g. imputed medians in unit tests).
  bool integer_counts = true;

  /// Largest per-event |delta| for a clean reading `value` (>= 0).
  double event_cap(double value) const {
    return max_abs_delta + max_rel_delta * value;
  }
  /// True when no event can move at all.
  bool empty() const { return max_abs_delta <= 0.0 && max_rel_delta <= 0.0; }
};

/// One-line human description, for bench banners ("abs 0 rel 5% total off").
std::string describe_budget(const PerturbationBudget& budget);

/// Shape of the gradient-free evasion search.
struct EvasionSearchConfig {
  /// Full coordinate sweeps (each followed by a random-probe batch).
  std::size_t rounds = 3;
  /// Seeded random joint perturbations scored per round; escapes
  /// axis-aligned local minima of the coordinate sweep. 0 disables.
  std::size_t random_probes = 16;
};

/// Outcome of attacking one feature vector.
struct EvasionResult {
  std::vector<double> x;     ///< perturbed vector (== input when no gain)
  double clean_score = 0.0;  ///< P(malware) of the clean vector
  double score = 0.0;        ///< P(malware) of the perturbed vector
  double spent = 0.0;        ///< L1 perturbation actually used
  /// The detector's clean verdict was malware and the perturbed one is not.
  bool evaded = false;
};

/// A budget-bounded evasion attacker against one trained model.
class Adversary {
 public:
  /// `model` must be trained and outlive the adversary; scoring goes
  /// through the process-wide inference backend (ml::make_active_backend).
  Adversary(const ml::Classifier& model, PerturbationBudget budget,
            EvasionSearchConfig search = {}, std::uint64_t seed = 0xADE5A17ULL);

  /// Minimise P(malware | x') over the budget box around `x`. `stream`
  /// derives the per-call random stream (callers use the row index or the
  /// interval number), so a dataset attack is a set of independent,
  /// reproducible per-row searches.
  EvasionResult evade(std::span<const double> x, std::uint64_t stream) const;

  const PerturbationBudget& budget() const { return budget_; }
  const EvasionSearchConfig& search() const { return search_; }
  std::uint64_t seed() const { return seed_; }

 private:
  const ml::Classifier* model_;
  std::unique_ptr<ml::InferenceBackend> backend_;
  PerturbationBudget budget_;
  EvasionSearchConfig search_;
  std::uint64_t seed_;
};

}  // namespace hmd::attack

// Hardening the detectors against the adversary next door.
//
// Two defences, mirroring the literature:
//
//   * adversarial retraining (Kuruvila et al.): craft evasions against the
//     deployed baseline on the TRAINING split, append them as extra
//     malware rows (the columnar dataset's copy-on-write add_row keeps the
//     clean split's storage shared and untouched), and fit a fresh
//     detector on the augmented data. The retrained model is evaluated two
//     ways — against the baseline's test-set perturbations (transfer: the
//     attacker has not adapted) and against a fresh evasion search on the
//     retrained model itself (adaptive: the attacker has);
//
//   * perturbation-aware voting: gate every verdict on the ensemble's
//     margin (member agreement — ml::Classifier::margin). A verdict whose
//     margin falls below the suspect threshold is escalated to the malware
//     side of the decision boundary: an evasion must drag the ensemble
//     *across* 0.5, which leaves the members split, while clean traffic is
//     normally decided near-unanimously. The same gate runs online as
//     core::Verdict::suspect.
//
// run_attack_cell / run_attack_grid package the offline evaluation the
// bench and hmd_lint share: train a grid cell, attack its projected test
// split, report clean vs attacked metrics and the evasion rate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/attack_eval.h"
#include "core/experiment.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace hmd::attack {

/// Training split plus perturbed copies of its attacked malware rows
/// (label 1, original row's weight and group). The append is copy-on-write:
/// the input's storage is shared until the first added row, then cloned, so
/// callers holding views of `train` are unaffected.
ml::Dataset augment_with_perturbed(const ml::Dataset& train,
                                   const DatasetAttackResult& attack);

/// Adversarial retraining: attack `baseline` on `train`, augment with the
/// perturbed malware rows, and fit a fresh detector (same kind/ensemble/
/// seed as the cell) on the result. Deterministic given (seed, attack
/// seed); the training-split attack runs on `threads` workers.
std::unique_ptr<ml::Classifier> adversarial_retrain(
    const ml::Classifier& baseline, const ml::Dataset& train,
    ml::ClassifierKind kind, ml::EnsembleKind ensemble,
    std::uint64_t model_seed, const PerturbationBudget& budget,
    const EvasionSearchConfig& search, std::uint64_t attack_seed,
    std::size_t threads = 1);

/// The margin gate of the perturbation-aware vote.
struct MarginVoteConfig {
  /// Verdicts with margin() below this are suspect; 0 disables the gate.
  double suspect_margin = 0.35;
};

/// Margin-gated scores over `data` with the attack's perturbed rows
/// substituted: every row is scored and margin-checked on what the model
/// actually sees (perturbed for attacked rows, clean otherwise); suspect
/// rows are escalated to exactly kDecisionThreshold (classified malware,
/// ranked at the boundary). `suspects_out`, when non-null, receives the
/// number of escalated rows.
std::vector<double> margin_defended_scores(const ml::Classifier& model,
                                           const ml::Dataset& data,
                                           const DatasetAttackResult& attack,
                                           const MarginVoteConfig& cfg,
                                           std::size_t* suspects_out = nullptr);

/// Attack parameters shared by a whole grid evaluation.
struct AttackOptions {
  PerturbationBudget budget;
  EvasionSearchConfig search;
  std::uint64_t seed = 0xADE5A17ULL;
};

/// Clean-vs-attacked outcome of one grid cell.
struct AttackCellReport {
  core::GridCell cell;
  ml::DetectorMetrics clean;     ///< baseline on the clean test split
  ml::DetectorMetrics attacked;  ///< baseline on the perturbed test split
  std::size_t malware_rows = 0;
  std::size_t detected_clean = 0;
  std::size_t evaded = 0;
  double evasion_rate = 0.0;
};

/// Train `cell`'s detector on the context's projected split, attack the
/// test side, and report clean vs attacked metrics. Pure function of
/// (ctx, cell, opts) — safe to map over the grid.
AttackCellReport run_attack_cell(const core::ExperimentContext& ctx,
                                 const core::GridCell& cell,
                                 const AttackOptions& opts);

/// run_attack_cell over many cells concurrently; results in input order,
/// bit-identical at any thread count.
std::vector<AttackCellReport> run_attack_grid(
    const core::ExperimentContext& ctx, std::span<const core::GridCell> cells,
    const AttackOptions& opts, std::size_t threads = 0);

}  // namespace hmd::attack

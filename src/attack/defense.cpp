#include "attack/defense.h"

#include <algorithm>

#include "support/check.h"

namespace hmd::attack {

ml::Dataset augment_with_perturbed(const ml::Dataset& train,
                                   const DatasetAttackResult& attack) {
  HMD_REQUIRE(attack.num_features == train.num_features());
  ml::Dataset augmented = train;
  for (std::size_t k = 0; k < attack.attacked_rows.size(); ++k) {
    const std::size_t row = attack.attacked_rows[k];
    const auto perturbed = attack.perturbed_row(k);
    augmented.add_row(std::vector<double>(perturbed.begin(), perturbed.end()),
                      1, train.weight(row), train.group(row));
  }
  return augmented;
}

std::unique_ptr<ml::Classifier> adversarial_retrain(
    const ml::Classifier& baseline, const ml::Dataset& train,
    ml::ClassifierKind kind, ml::EnsembleKind ensemble,
    std::uint64_t model_seed, const PerturbationBudget& budget,
    const EvasionSearchConfig& search, std::uint64_t attack_seed,
    std::size_t threads) {
  const DatasetAttackResult train_attack =
      attack_dataset(baseline, train, budget, search, attack_seed, threads);
  const ml::Dataset augmented = augment_with_perturbed(train, train_attack);
  auto hardened = ml::make_detector(kind, ensemble, model_seed);
  hardened->train(augmented);
  return hardened;
}

std::vector<double> margin_defended_scores(const ml::Classifier& model,
                                           const ml::Dataset& data,
                                           const DatasetAttackResult& attack,
                                           const MarginVoteConfig& cfg,
                                           std::size_t* suspects_out) {
  HMD_REQUIRE(attack.num_features == data.num_features());
  HMD_REQUIRE(attack.attacked_scores.size() == data.num_rows());
  std::vector<double> scores = attack.attacked_scores;
  std::size_t suspects = 0;
  if (cfg.suspect_margin > 0.0) {
    std::size_t k = 0;  // cursor into attacked_rows (ascending)
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      const bool is_attacked =
          k < attack.attacked_rows.size() && attack.attacked_rows[k] == i;
      const std::span<const double> x =
          is_attacked ? attack.perturbed_row(k) : data.row(i);
      if (is_attacked) ++k;
      if (model.margin(x) < cfg.suspect_margin) {
        ++suspects;
        // Escalate: a low-agreement verdict is treated as malware, ranked
        // exactly at the decision boundary.
        scores[i] = std::max(scores[i], ml::kDecisionThreshold);
      }
    }
  }
  if (suspects_out != nullptr) *suspects_out = suspects;
  return scores;
}

AttackCellReport run_attack_cell(const core::ExperimentContext& ctx,
                                 const core::GridCell& cell,
                                 const AttackOptions& opts) {
  const ml::Split& projected = ctx.projected_split(cell.hpcs);
  const auto detector = ml::make_detector(cell.classifier, cell.ensemble,
                                          ctx.config.model_seed);
  detector->train(projected.train);

  // Single-threaded inner attack: the outer grid map is the parallel axis.
  const DatasetAttackResult attack =
      attack_dataset(*detector, projected.test, opts.budget, opts.search,
                     opts.seed, /*threads=*/1);

  AttackCellReport report;
  report.cell = cell;
  report.clean = metrics_of(projected.test, attack.clean_scores);
  report.attacked = metrics_of(projected.test, attack.attacked_scores);
  report.malware_rows = attack.malware_rows;
  report.detected_clean = attack.detected_clean;
  report.evaded = attack.evaded;
  report.evasion_rate = attack.evasion_rate();
  return report;
}

std::vector<AttackCellReport> run_attack_grid(
    const core::ExperimentContext& ctx, std::span<const core::GridCell> cells,
    const AttackOptions& opts, std::size_t threads) {
  return core::map_grid(ctx, cells, threads, [&](const core::GridCell& cell) {
    return run_attack_cell(ctx, cell, opts);
  });
}

}  // namespace hmd::attack

// Attack evaluation: run an Adversary against whole datasets and live
// detector streams.
//
// Offline, attack_dataset() perturbs every malware row of a test split
// (the adversary controls its own execution, never the benign workloads)
// and reports clean vs attacked scores plus the evasion ledger; the
// perturbed rows are kept so a *different* model can be scored on the same
// attack (transfer_scores — Kuruvila et al.'s retraining-defence
// protocol). Online, monitor_application_under_attack() replays the
// man-in-the-middle variant: the adversary sits between the machine and
// the OnlineDetector and reshapes each 10 ms interval's counter readings
// before the detector observes them.
//
// Determinism: per-row (and per-interval) searches derive their random
// streams from the row index (interval number), so results are
// bit-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/adversary.h"
#include "core/online.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace hmd::attack {

/// Outcome of attacking every malware row of one dataset.
struct DatasetAttackResult {
  std::vector<double> clean_scores;    ///< per row, model on clean data
  std::vector<double> attacked_scores; ///< per row (== clean for benign rows)
  std::vector<std::size_t> attacked_rows;  ///< malware row indices, ascending
  /// Perturbed feature vectors of the attacked rows, row-major, in
  /// attacked_rows order (rows the search could not improve stay clean).
  std::vector<double> perturbed;
  std::size_t num_features = 0;

  std::size_t malware_rows = 0;
  std::size_t detected_clean = 0;  ///< malware rows the clean model catches
  std::size_t evaded = 0;          ///< ... of which the attack flips benign

  /// Fraction of clean-detected malware rows the attack slips past the
  /// model (0 when the clean model catches nothing).
  double evasion_rate() const {
    return detected_clean == 0
               ? 0.0
               : static_cast<double>(evaded) /
                     static_cast<double>(detected_clean);
  }

  std::span<const double> perturbed_row(std::size_t k) const {
    return {perturbed.data() + k * num_features, num_features};
  }
};

/// Attack every malware row of `data` against `model` (benign rows pass
/// through untouched). Rows are independent searches seeded by row index,
/// evaluated on `threads` workers with bit-identical results.
DatasetAttackResult attack_dataset(const ml::Classifier& model,
                                   const ml::Dataset& data,
                                   const PerturbationBudget& budget,
                                   const EvasionSearchConfig& search,
                                   std::uint64_t seed,
                                   std::size_t threads = 1);

/// Score `model` over `data` with the attack's perturbed rows substituted
/// — a transfer evaluation: perturbations crafted against one model,
/// scored by another (e.g. its adversarially retrained replacement).
std::vector<double> transfer_scores(const ml::Classifier& model,
                                    const ml::Dataset& data,
                                    const DatasetAttackResult& attack);

/// Paper metrics (accuracy at the 0.5 threshold + AUC) of a score vector
/// against `data`'s labels and weights.
ml::DetectorMetrics metrics_of(const ml::Dataset& data,
                               std::span<const double> scores);

/// Execute `app` with `adversary` reshaping every interval's counter
/// readings (the detector's events only) before the detector observes
/// them. The adversary should be built against the same model the detector
/// scores with — that is the white-box threat model. Intervals stream
/// seeds from (run_index, interval), so timelines reproduce exactly.
std::vector<core::Verdict> monitor_application_under_attack(
    const sim::AppProfile& app, core::OnlineDetector& detector,
    const Adversary& adversary, sim::MachineConfig machine_cfg = {},
    std::uint32_t run_index = 0);

}  // namespace hmd::attack

// Unit tests for src/support: RNG determinism & distributions, statistics,
// ranking helpers, table rendering, and the check macros.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/check.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace hmd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.fork(3);
  (void)parent();  // consuming the parent must not change fork(3)
  Rng parent2(7);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(10);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(12);
  std::array<int, 5> hits{};
  for (int i = 0; i < 5000; ++i) ++hits[rng.below(5)];
  for (int h : hits) EXPECT_GT(h, 800);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(14);
  RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(15);
  for (double lambda : {0.5, 4.0, 100.0}) {
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
      acc += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(acc / n, lambda, lambda * 0.08 + 0.05) << lambda;
  }
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(16);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{7.0}), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs{1, 1, 1, 1};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, WeightedPearsonMatchesUnweightedWithUnitWeights) {
  const std::vector<double> xs{1, 3, 2, 5, 4};
  const std::vector<double> ys{2, 1, 4, 3, 5};
  const std::vector<double> ws(5, 1.0);
  EXPECT_NEAR(weighted_pearson(xs, ys, ws), pearson(xs, ys), 1e-12);
}

TEST(Stats, WeightedPearsonZeroWeightIgnoresPoint) {
  // The outlier (100, -100) has zero weight; correlation stays ~1.
  const std::vector<double> xs{1, 2, 3, 100};
  const std::vector<double> ys{1, 2, 3, -100};
  const std::vector<double> ws{1, 1, 1, 0};
  EXPECT_NEAR(weighted_pearson(xs, ys, ws), 1.0, 1e-9);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(20);
  std::vector<double> xs;
  RunningStats st;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(rng.uniform(0.0, 10.0));
    st.add(xs.back());
  }
  EXPECT_NEAR(st.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(st.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(st.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(st.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Stats, RankDescending) {
  const std::vector<double> v{0.3, 0.9, 0.1, 0.9};
  const auto idx = rank_descending(v);
  EXPECT_EQ(idx[0], 1u);  // stable: first 0.9 wins the tie
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 0u);
  EXPECT_EQ(idx[3], 2u);
}

TEST(Stats, PercentileSorted) {
  const std::vector<double> v{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 25), 1.0);
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t("Title");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Table, CsvEscapesQuotesAndCommas) {
  std::ostringstream os;
  write_csv(os, {"x"}, {{R"(a,"b")"}});
  EXPECT_EQ(os.str(), "x\n\"a,\"\"b\"\"\"\n");
}

TEST(Check, RequireThrowsWithLocation) {
  try {
    HMD_REQUIRE_MSG(false, "context");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("context"), std::string::npos);
  }
}

TEST(Check, InvariantThrowsLogicError) {
  EXPECT_THROW(HMD_INVARIANT(1 == 2), InvariantError);
}

}  // namespace
}  // namespace hmd

// Property-style parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P)
// over structural invariants of the simulator and the ML layer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hpc/pmu.h"
#include "ml/metrics.h"
#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/workloads.h"
#include "support/rng.h"

namespace hmd {
namespace {

// ---------------------------------------------------- cache geometry sweep --

struct CacheGeomCase {
  std::uint32_t sets;
  std::uint32_t ways;
  std::uint32_t line;
};

class CacheProperties : public testing::TestWithParam<CacheGeomCase> {};

TEST_P(CacheProperties, MissesNeverExceedAccesses) {
  const auto p = GetParam();
  sim::Cache cache({p.sets, p.ways, p.line});
  Rng rng(p.sets * 131 + p.ways);
  for (int i = 0; i < 20000; ++i)
    cache.access(rng.below(1 << 22));
  EXPECT_LE(cache.misses(), cache.accesses());
  EXPECT_EQ(cache.accesses(), 20000u);
}

TEST_P(CacheProperties, ResidentWorkingSetStopsMissing) {
  const auto p = GetParam();
  sim::Cache cache({p.sets, p.ways, p.line});
  // Touch exactly capacity/2 distinct lines repeatedly: after the cold
  // pass, everything fits and no further misses may occur (true LRU).
  const std::uint64_t lines = std::uint64_t{p.sets} * p.ways / 2;
  for (int round = 0; round < 4; ++round)
    for (std::uint64_t l = 0; l < lines; ++l) cache.access(l * p.line);
  EXPECT_EQ(cache.misses(), lines);
}

TEST_P(CacheProperties, FullAssociativeSweepEvictsInOrder) {
  const auto p = GetParam();
  sim::Cache cache({p.sets, p.ways, p.line});
  // Fill every way of set 0, then one more line in set 0: the first line
  // inserted must be the victim.
  const std::uint64_t stride = std::uint64_t{p.sets} * p.line;
  for (std::uint32_t w = 0; w < p.ways; ++w) cache.access(w * stride);
  cache.access(p.ways * stride);
  EXPECT_FALSE(cache.probe(0));                 // LRU victim gone
  EXPECT_TRUE(cache.probe(stride * (p.ways)));  // newcomer resident
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperties,
    testing::Values(CacheGeomCase{16, 1, 64}, CacheGeomCase{16, 4, 64},
                    CacheGeomCase{64, 8, 64}, CacheGeomCase{512, 16, 64},
                    CacheGeomCase{16, 4, 4096}, CacheGeomCase{1, 8, 64}),
    [](const testing::TestParamInfo<CacheGeomCase>& tpi) {
      return std::to_string(tpi.param.sets) + "s" +
             std::to_string(tpi.param.ways) + "w" +
             std::to_string(tpi.param.line) + "b";
    });

// -------------------------------------------------- machine template sweep --

class MachineTemplateProperties : public testing::TestWithParam<int> {};

TEST_P(MachineTemplateProperties, EveryTemplateSatisfiesCountInvariants) {
  const int index = GetParam();
  const bool malware = index >= static_cast<int>(sim::benign_template_count());
  const std::size_t t =
      malware ? index - sim::benign_template_count() : index;
  const sim::AppProfile app = malware ? sim::make_malware(t, 0, 77, 4)
                                      : sim::make_benign(t, 0, 77, 4);
  sim::Machine m;
  m.start_run(app, 0);
  while (m.running()) {
    const auto c = m.next_interval();
    ASSERT_GT(c[sim::Event::kInstructions], 0u) << app.name;
    ASSERT_LE(c[sim::Event::kBranchMisses],
              c[sim::Event::kBranchInstructions])
        << app.name;
    ASSERT_EQ(c[sim::Event::kDtlbLoads], c[sim::Event::kL1DcacheLoads])
        << app.name;
    ASSERT_LE(c[sim::Event::kLlcLoadMisses], c[sim::Event::kLlcLoads])
        << app.name;
    ASSERT_LE(c[sim::Event::kNodeLoads], c[sim::Event::kLlcLoadMisses])
        << app.name;
    ASSERT_EQ(c[sim::Event::kPageFaults],
              c[sim::Event::kMinorFaults] + c[sim::Event::kMajorFaults])
        << app.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, MachineTemplateProperties,
    testing::Range(0, static_cast<int>(sim::benign_template_count() +
                                       sim::malware_template_count())));

// ----------------------------------------------------- AUC property sweep --

// AUC must be invariant under any strictly monotone transform of scores.
using Transform = double (*)(double);

class AucInvariance : public testing::TestWithParam<Transform> {};

TEST_P(AucInvariance, MonotoneTransformPreservesAuc) {
  Rng rng(99);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    labels.push_back(rng.chance(0.5) ? 1 : 0);
    scores.push_back(0.3 * labels.back() + rng.uniform());
  }
  const double base = ml::auc(scores, labels);
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(GetParam()(s));
  EXPECT_NEAR(ml::auc(transformed, labels), base, 1e-12);
}

double t_affine(double s) { return 3.0 * s + 11.0; }
double t_cube(double s) { return s * s * s; }
double t_exp(double s) { return std::exp(s); }
double t_atan(double s) { return std::atan(s); }

INSTANTIATE_TEST_SUITE_P(Transforms, AucInvariance,
                         testing::Values(&t_affine, &t_cube, &t_exp,
                                         &t_atan));

// --------------------------------------------- PMU width scheduling sweep --

class SchedulingWidth : public testing::TestWithParam<std::uint32_t> {};

TEST_P(SchedulingWidth, EveryEventScheduledExactlyOnce) {
  const std::uint32_t width = GetParam();
  std::vector<sim::Event> all(sim::all_events().begin(),
                              sim::all_events().end());
  const auto batches = hpc::schedule_batches(all, width);
  std::set<sim::Event> seen;
  for (const auto& batch : batches) {
    EXPECT_LE(hpc::Pmu::hardware_event_count(batch), width);
    for (sim::Event e : batch) EXPECT_TRUE(seen.insert(e).second);
  }
  EXPECT_EQ(seen.size(), sim::kEventCount);
  // Hardware events need ceil(37/width) batches.
  const std::size_t expected = (37 + width - 1) / width;
  EXPECT_EQ(batches.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Widths, SchedulingWidth,
                         testing::Values(1u, 2u, 3u, 4u, 6u, 8u, 16u, 37u,
                                         64u));

}  // namespace
}  // namespace hmd

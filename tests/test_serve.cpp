// Tests for the fleet serving layer (src/serve): token-bucket admission,
// the P² streaming quantile estimator against a sorted reference, the
// OnlineState automaton, and — the core contract — run_fleet determinism:
// verdict streams and counters bit-identical across worker counts, batched
// vs unbatched scoring, and hedging/straggler injection on or off.
//
// This translation unit also replaces the global operator new/delete with
// counting versions, which backs the no-allocation assertion on the
// steady-state OnlineDetector::observe() path (DESIGN §15: per-interval
// scoring must not churn the heap at fleet rates).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "core/online.h"
#include "ml/classifier.h"
#include "ml/infer.h"
#include "serve/controller.h"
#include "serve/fleet.h"
#include "serve/quantile.h"
#include "serve/token_bucket.h"
#include "sim/events.h"
#include "support/rng.h"
#include "test_util.h"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace

// Counting replacements for the default-aligned global allocator. Only the
// unaligned forms are replaced; over-aligned allocations keep the library
// defaults (nothing on the observe() path is over-aligned). The replaced
// pairs are malloc/free-based throughout, so the mismatch warning (which
// assumes the defaults) does not apply.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace hmd {
namespace {

// ---------------------------------------------------------------------------
// TokenBucket: integer tokens on the virtual tick clock.

TEST(TokenBucket, StartsFullAndGrantsUpToCapacity) {
  serve::TokenBucket bucket(10, 3);
  EXPECT_EQ(bucket.tokens(), 10u);
  EXPECT_EQ(bucket.take(4), 4u);
  EXPECT_EQ(bucket.tokens(), 6u);
  EXPECT_EQ(bucket.take(6), 6u);
  EXPECT_EQ(bucket.tokens(), 0u);
  EXPECT_EQ(bucket.shed(), 0u);
}

TEST(TokenBucket, PartialGrantShedsTheRemainder) {
  serve::TokenBucket bucket = serve::TokenBucket::burst_only(5);
  EXPECT_EQ(bucket.take(8), 5u);  // grants what it holds, sheds 3
  EXPECT_EQ(bucket.take(2), 0u);  // empty: everything shed
  EXPECT_EQ(bucket.offered(), 10u);
  EXPECT_EQ(bucket.granted(), 5u);
  EXPECT_EQ(bucket.shed(), 5u);
  EXPECT_EQ(bucket.offered(), bucket.granted() + bucket.shed());
}

TEST(TokenBucket, RefillSaturatesAtCapacity) {
  serve::TokenBucket bucket(6, 4);
  EXPECT_EQ(bucket.take(6), 6u);
  bucket.refill();
  EXPECT_EQ(bucket.tokens(), 4u);
  bucket.refill();
  EXPECT_EQ(bucket.tokens(), 6u);  // 4 + 4 clamps to capacity
  bucket.refill();
  EXPECT_EQ(bucket.tokens(), 6u);
}

TEST(TokenBucket, ZeroRefillNeverRecovers) {
  // burst_only is the explicit opt-in for the drain-then-starve shape.
  serve::TokenBucket bucket = serve::TokenBucket::burst_only(3);
  EXPECT_EQ(bucket.take(3), 3u);
  bucket.refill();
  EXPECT_EQ(bucket.tokens(), 0u);
  EXPECT_EQ(bucket.take(1), 0u);
  EXPECT_EQ(bucket.shed(), 1u);
}

TEST(TokenBucket, RejectsAccidentalZeroRefill) {
  // Regression: TokenBucket(cap, 0) used to be accepted and silently shed
  // ALL traffic once the initial burst was spent — a rate that integer-
  // rounded to zero starved the fleet with no diagnostic.
  EXPECT_THROW(serve::TokenBucket(5, 0), PreconditionError);
}

TEST(TokenBucket, BurstOnlyShedLedgerStaysHonest) {
  // Regression companion to RejectsAccidentalZeroRefill: the documented
  // zero-refill mode must keep offered == granted + shed forever, so the
  // starvation is visible in the ledger rather than silent.
  serve::TokenBucket bucket = serve::TokenBucket::burst_only(4);
  EXPECT_EQ(bucket.take(6), 4u);  // burst grants 4, sheds 2
  for (int tick = 0; tick < 5; ++tick) {
    bucket.refill();               // refills nothing by design
    EXPECT_EQ(bucket.take(3), 0u);
  }
  EXPECT_EQ(bucket.offered(), 6u + 5u * 3u);
  EXPECT_EQ(bucket.granted(), 4u);
  EXPECT_EQ(bucket.shed(), 2u + 5u * 3u);
  EXPECT_EQ(bucket.offered(), bucket.granted() + bucket.shed());
}

TEST(TokenBucket, SteadyStateAdmitsExactlyTheRefillRate) {
  serve::TokenBucket bucket(20, 7);
  (void)bucket.take(20);  // drain the initial burst
  for (int tick = 0; tick < 50; ++tick) {
    bucket.refill();
    EXPECT_EQ(bucket.take(12), 7u);  // offered 12/tick, sustained 7/tick
  }
  EXPECT_EQ(bucket.granted(), 20u + 50u * 7u);
  EXPECT_EQ(bucket.shed(), 50u * 5u);
}

// ---------------------------------------------------------------------------
// QuantileEstimator: P² against a sorted reference.

double nearest_rank(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

TEST(QuantileEstimator, ExactBelowFiveSamples) {
  serve::QuantileEstimator median(0.5);
  EXPECT_EQ(median.estimate(), 0.0);  // no observations yet
  median.add(5.0);
  EXPECT_EQ(median.estimate(), 5.0);
  median.add(1.0);
  median.add(3.0);
  EXPECT_EQ(median.estimate(), 3.0);  // exact: sorted {1,3,5}

  serve::QuantileEstimator tail(0.99);
  tail.add(2.0);
  tail.add(9.0);
  tail.add(4.0);
  EXPECT_EQ(tail.estimate(), 9.0);  // p99 of 3 samples = max
}

TEST(QuantileEstimator, SmallSampleConventionLocked) {
  // Pin the documented small-sample convention: nearest-rank on the
  // 0-based rank q*(count-1), exact-half ranks rounding UP to the upper
  // element. Checked for q in {0.5, 0.95, 0.99} at every bootstrap count
  // 1..4 against the shared sorted-reference helper, on values inserted
  // out of order so the sorted-prefix bookkeeping is exercised too.
  const std::vector<double> stream = {7.0, 1.0, 9.0, 4.0};
  for (const double q : {0.5, 0.95, 0.99}) {
    serve::QuantileEstimator est(q);
    std::vector<double> seen;
    for (std::size_t n = 0; n < stream.size(); ++n) {
      est.add(stream[n]);
      seen.push_back(stream[n]);
      EXPECT_EQ(est.count(), n + 1);
      EXPECT_EQ(est.estimate(), nearest_rank(seen, q))
          << "q=" << q << " count=" << n + 1;
    }
  }
  // The half-rank tie-break itself, spelled out: the median of two
  // elements sits at rank 0.5 and must resolve to the UPPER one.
  serve::QuantileEstimator median(0.5);
  median.add(10.0);
  median.add(2.0);
  EXPECT_EQ(median.estimate(), 10.0);  // sorted {2,10}: upper element
  // And at count 3 the p95/p99 rank rounds up to the max.
  serve::QuantileEstimator p95(0.95);
  p95.add(3.0);
  p95.add(8.0);
  EXPECT_EQ(p95.estimate(), 8.0);  // rank 0.95 -> upper of {3,8}
}

TEST(QuantileEstimator, ConstantStreamKeepsMarkersDegenerate) {
  // All-equal samples: every marker height must collapse to the one value
  // and stay there — the parabolic step must never fabricate spread.
  serve::QuantileEstimator p99(0.99);
  for (int i = 0; i < 2000; ++i) {
    p99.add(42.0);
    EXPECT_EQ(p99.estimate(), 42.0);
  }
  for (const double h : p99.marker_heights()) EXPECT_EQ(h, 42.0);
}

TEST(QuantileEstimator, DuplicateHeavyStreamPreservesMarkerOrdering) {
  // Long runs of a single value interleaved with rare outliers create the
  // zero-width cells (height[k] == height[k+1]) that the marker-adjustment
  // step must survive: heights must stay sorted and the estimate bounded
  // by the observed range. The seeded-uniform tests never stress this.
  Rng rng(1234);
  for (const double q : {0.5, 0.95, 0.99}) {
    serve::QuantileEstimator est(q);
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < 5000; ++i) {
      // ~90% of samples are one of two duplicated plateau values.
      const double u = rng.uniform();
      const double x = u < 0.45 ? 5.0 : (u < 0.90 ? 7.0 : rng.uniform() * 100.0);
      est.add(x);
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      const auto& h = est.marker_heights();
      if (est.count() >= 5) {
        for (std::size_t k = 0; k + 1 < h.size(); ++k)
          ASSERT_LE(h[k], h[k + 1]) << "marker ordering broke at i=" << i;
        ASSERT_GE(est.estimate(), lo);
        ASSERT_LE(est.estimate(), hi);
      }
    }
  }
}

TEST(QuantileEstimator, LongRunOfOneValueThenShiftRecovers) {
  // A constant prefix pins all five markers to one height; the estimator
  // must still move once the stream shifts (duplicate cells must not trap
  // the interior markers forever).
  serve::QuantileEstimator p50(0.5);
  for (int i = 0; i < 1000; ++i) p50.add(1.0);
  EXPECT_EQ(p50.estimate(), 1.0);
  for (int i = 0; i < 4000; ++i) p50.add(9.0);
  // 4000 of 5000 samples are 9.0: the median must have left the plateau.
  EXPECT_GT(p50.estimate(), 1.0);
  const auto& h = p50.marker_heights();
  for (std::size_t k = 0; k + 1 < h.size(); ++k) EXPECT_LE(h[k], h[k + 1]);
}

TEST(QuantileEstimator, TracksUniformStreamAgainstSortedReference) {
  Rng rng(41);
  std::vector<double> values;
  serve::QuantileEstimator p50(0.50), p95(0.95), p99(0.99);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform();
    values.push_back(x);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_EQ(p50.count(), 5000u);
  EXPECT_NEAR(p50.estimate(), nearest_rank(values, 0.50), 0.03);
  EXPECT_NEAR(p95.estimate(), nearest_rank(values, 0.95), 0.03);
  EXPECT_NEAR(p99.estimate(), nearest_rank(values, 0.99), 0.03);
}

TEST(QuantileEstimator, TracksSkewedStreamAgainstSortedReference) {
  // Latencies are log-normal-ish: heavy right tail, exactly what P² must
  // not be fooled by.
  Rng rng(77);
  std::vector<double> values;
  serve::QuantileEstimator p50(0.50), p99(0.99);
  for (int i = 0; i < 8000; ++i) {
    const double x = rng.lognormal(3.0, 0.6);  // ~20 us median
    values.push_back(x);
    p50.add(x);
    p99.add(x);
  }
  const double ref50 = nearest_rank(values, 0.50);
  const double ref99 = nearest_rank(values, 0.99);
  EXPECT_NEAR(p50.estimate(), ref50, 0.10 * ref50);
  EXPECT_NEAR(p99.estimate(), ref99, 0.15 * ref99);
  EXPECT_GT(p99.estimate(), p50.estimate());
}

TEST(QuantileEstimator, IsAPureFunctionOfTheObservationSequence) {
  Rng rng(9);
  std::vector<double> stream;
  for (int i = 0; i < 1000; ++i) stream.push_back(rng.lognormal(2.0, 1.0));
  serve::QuantileEstimator a(0.95), b(0.95);
  for (double x : stream) a.add(x);
  for (double x : stream) b.add(x);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.estimate()),
            std::bit_cast<std::uint64_t>(b.estimate()));
}

TEST(LatencyStats, MeanMaxCountAndOrderedQuantiles) {
  serve::LatencyStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
  EXPECT_NEAR(s.p50(), 50.0, 3.0);
  EXPECT_NEAR(s.p99(), 99.0, 3.0);
}

// ---------------------------------------------------------------------------
// OnlineState: the batch-steppable EWMA/alarm/staleness automaton.

TEST(OnlineState, AlarmRaisesWithHysteresis) {
  core::OnlineConfig cfg;  // alpha .35, on .60, off .40, warmup 1
  core::OnlineState st;
  auto v = st.step_score(cfg, 0.9);  // warmup interval: no EWMA yet
  EXPECT_EQ(v.interval, 0u);
  EXPECT_FALSE(v.alarm);
  v = st.step_score(cfg, 0.9);  // first real sample seeds the EWMA
  EXPECT_DOUBLE_EQ(v.ewma, 0.9);
  EXPECT_TRUE(v.alarm);
  // Hysteresis: one low sample pulls the EWMA below alarm_on but not
  // below alarm_off — the alarm must hold.
  v = st.step_score(cfg, 0.0);
  EXPECT_DOUBLE_EQ(v.ewma, 0.65 * 0.9);
  EXPECT_GT(v.ewma, cfg.alarm_off);
  EXPECT_TRUE(v.alarm);
  // Keep feeding zeros: once the EWMA crosses alarm_off it clears.
  while (v.ewma > cfg.alarm_off) v = st.step_score(cfg, 0.0);
  EXPECT_FALSE(v.alarm);
}

TEST(OnlineState, MissingStepsHoldStateAndTrackStaleness) {
  core::OnlineConfig cfg;
  cfg.warmup_intervals = 0;
  core::OnlineState st;
  auto v = st.step_score(cfg, 0.8);
  EXPECT_TRUE(st.alarmed());
  for (std::size_t k = 1; k <= cfg.max_stale_intervals; ++k) {
    v = st.step_missing(cfg);
    EXPECT_DOUBLE_EQ(v.ewma, 0.8);  // held, not decayed
    EXPECT_TRUE(v.alarm);           // a dropped sample never clears an alarm
    EXPECT_FALSE(v.stale);
    EXPECT_EQ(st.missing_streak(), k);
  }
  v = st.step_missing(cfg);  // one past the watchdog limit
  EXPECT_TRUE(v.stale);
  EXPECT_TRUE(v.alarm);
  // A real sample refreshes the streak and clears staleness.
  v = st.step_score(cfg, 0.8);
  EXPECT_EQ(st.missing_streak(), 0u);
  EXPECT_FALSE(st.stale(cfg));
}

TEST(OnlineState, MissingStepsHoldTheSuspectFlag) {
  // Regression: step_missing used to drop `suspect` while holding the
  // EWMA and alarm, so a margin-gated host read as confidently clean the
  // moment one sample was lost. Timeline: suspect -> missing -> suspect.
  core::OnlineConfig cfg;
  cfg.warmup_intervals = 0;
  core::OnlineState st;
  auto v = st.step_score(cfg, 0.7, /*degraded=*/false, /*suspect=*/true);
  EXPECT_TRUE(v.suspect);
  v = st.step_missing(cfg);
  EXPECT_TRUE(v.suspect) << "held verdict must keep the suspicion";
  EXPECT_DOUBLE_EQ(v.ewma, 0.7);  // EWMA held alongside, as before
  v = st.step_missing(cfg);
  EXPECT_TRUE(v.suspect);  // holds across a streak, like alarm_
  v = st.step_score(cfg, 0.7, false, /*suspect=*/true);
  EXPECT_TRUE(v.suspect);
  // A clean real sample clears it — and a following missing step now
  // holds the cleared state, not a stale suspicion.
  v = st.step_score(cfg, 0.7, false, /*suspect=*/false);
  EXPECT_FALSE(v.suspect);
  v = st.step_missing(cfg);
  EXPECT_FALSE(v.suspect);
  // reset() restores the cold-start (not-suspect) state.
  st.step_score(cfg, 0.7, false, true);
  st.reset();
  v = st.step_missing(cfg);
  EXPECT_FALSE(v.suspect);
}

TEST(OnlineState, ResetRestoresColdStart) {
  core::OnlineConfig cfg;
  cfg.warmup_intervals = 0;
  core::OnlineState st;
  st.step_score(cfg, 1.0);
  st.step_missing(cfg);
  EXPECT_TRUE(st.alarmed());
  st.reset();
  EXPECT_FALSE(st.alarmed());
  EXPECT_EQ(st.intervals(), 0u);
  EXPECT_EQ(st.missing_streak(), 0u);
  const auto v = st.step_score(cfg, 0.0);
  EXPECT_EQ(v.interval, 0u);
  EXPECT_DOUBLE_EQ(v.ewma, 0.0);
}

// ---------------------------------------------------------------------------
// run_fleet determinism on a synthetic fleet.
//
// make_fleet's offline phase (feature study + deployment training) costs
// seconds; the pipeline contract doesn't care where the bank came from. So
// these tests hand-build a FleetSetup around a small trained ensemble:
// app 0 replays rows near the benign blob centre (-2), app 1 near the
// malware centre (+2), so scores are unambiguous and alarm behaviour is a
// ground-truth assertion rather than a statistical one.

constexpr std::size_t kSynFeatures = 4;   // 3 informative + 1 noise column
constexpr std::size_t kSynRowsPerApp = 6;

serve::FleetSetup synthetic_fleet(std::size_t hosts, std::uint32_t ticks) {
  serve::FleetSetup f;
  f.cfg.hosts = hosts;
  f.cfg.ticks = ticks;
  f.cfg.seed = 321;
  f.cfg.drop_rate = 0.04;
  f.cfg.scale_sigma = 0.05;

  auto clf = ml::make_detector(ml::ClassifierKind::kJRip,
                               ml::EnsembleKind::kBagging, 7);
  clf->train(testutil::gaussian_blobs(60, 3, 1, 0.8, 11));
  f.model = std::move(clf);
  f.backend = ml::make_active_backend(*f.model);
  f.events = {sim::Event::kCpuCycles, sim::Event::kInstructions,
              sim::Event::kCacheMisses, sim::Event::kBranchMisses};
  f.num_features = kSynFeatures;

  Rng rng(99);
  for (int app = 0; app < 2; ++app) {
    f.app_begin.push_back(f.bank.size() / kSynFeatures);
    f.app_rows.push_back(kSynRowsPerApp);
    f.app_labels.push_back(app);
    const double centre = app == 0 ? -2.0 : 2.0;
    for (std::size_t r = 0; r < kSynRowsPerApp; ++r)
      for (std::size_t j = 0; j < kSynFeatures; ++j)
        f.bank.push_back(j < 3 ? centre + 0.4 * (rng.uniform() - 0.5) : 0.1);
  }

  for (std::size_t h = 0; h < hosts; ++h) {
    serve::HostProfile p;
    p.benign_app = 0;
    p.malware_app = 1;
    p.is_malware = h % 3 == 0;
    p.onset_tick = ticks / 3 + static_cast<std::uint32_t>(h % 5);
    p.phase = static_cast<std::uint32_t>(h % kSynRowsPerApp);
    f.hosts.push_back(p);
    if (p.is_malware) ++f.malware_hosts;
  }
  return f;
}

const serve::FleetSetup& shared_fleet() {
  static const serve::FleetSetup fleet = synthetic_fleet(48, 36);
  return fleet;
}

serve::ServeConfig base_config() {
  serve::ServeConfig cfg;
  cfg.threads = 1;
  cfg.shards = 5;  // several shards even on a 48-host fleet
  cfg.straggler_rate = 0.25;
  cfg.straggler_reps = 1;
  cfg.hedge = true;
  cfg.record_verdicts = true;
  return cfg;
}

void expect_same_counters(const serve::ServeCounters& a,
                          const serve::ServeCounters& b) {
  EXPECT_EQ(a.hosts, b.hosts);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.missing, b.missing);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.scored_rows, b.scored_rows);
  EXPECT_EQ(a.straggler_batches, b.straggler_batches);
  EXPECT_EQ(a.hedges_launched, b.hedges_launched);
  EXPECT_EQ(a.alarms_raised, b.alarms_raised);
  EXPECT_EQ(a.alarmed_hosts, b.alarmed_hosts);
  EXPECT_EQ(a.malware_hosts, b.malware_hosts);
  EXPECT_EQ(a.campaign_hosts, b.campaign_hosts);
  EXPECT_EQ(a.drift_checks, b.drift_checks);
  EXPECT_EQ(a.drift_triggers, b.drift_triggers);
  EXPECT_EQ(a.drift_trigger_tick, b.drift_trigger_tick);
  EXPECT_EQ(a.drift_tripped_shards, b.drift_tripped_shards);
  EXPECT_EQ(a.model_swaps, b.model_swaps);
  EXPECT_EQ(a.model_swap_tick, b.model_swap_tick);
  EXPECT_EQ(a.retrain_base_rows, b.retrain_base_rows);
  EXPECT_EQ(a.retrain_window_rows, b.retrain_window_rows);
  EXPECT_EQ(a.final_model_epoch, b.final_model_epoch);
  EXPECT_EQ(a.verdict_hash, b.verdict_hash);
}

void expect_same_verdicts(const std::vector<serve::ServeVerdict>& a,
                          const std::vector<serve::ServeVerdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tick, b[i].tick);
    EXPECT_EQ(a[i].host, b[i].host);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].alarm, b[i].alarm);
    EXPECT_EQ(a[i].stale, b[i].stale);
    // Exact bits, not a tolerance: the determinism contract.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].score),
              std::bit_cast<std::uint64_t>(b[i].score));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].ewma),
              std::bit_cast<std::uint64_t>(b[i].ewma));
  }
}

TEST(ServeFleet, BitIdenticalAcrossWorkerCounts) {
  const serve::FleetSetup& fleet = shared_fleet();
  serve::ServeConfig one = base_config();
  serve::ServeConfig three = base_config();
  three.threads = 3;
  const auto a = serve::run_fleet(fleet, one);
  const auto b = serve::run_fleet(fleet, three);
  expect_same_counters(a.counters, b.counters);
  expect_same_verdicts(a.verdicts, b.verdicts);
}

TEST(ServeFleet, BatchedAndUnbatchedScoringAgreeBitForBit) {
  const serve::FleetSetup& fleet = shared_fleet();
  serve::ServeConfig batched = base_config();
  batched.threads = 2;
  serve::ServeConfig unbatched = batched;
  unbatched.batched = false;
  const auto a = serve::run_fleet(fleet, batched);
  const auto b = serve::run_fleet(fleet, unbatched);
  expect_same_counters(a.counters, b.counters);
  expect_same_verdicts(a.verdicts, b.verdicts);
}

TEST(ServeFleet, HedgingIsInvisibleToTheVerdictStream) {
  const serve::FleetSetup& fleet = shared_fleet();
  serve::ServeConfig hedged = base_config();
  serve::ServeConfig unhedged = base_config();
  unhedged.hedge = false;
  const auto a = serve::run_fleet(fleet, hedged);
  const auto b = serve::run_fleet(fleet, unhedged);
  // Same straggler marks (seeded), hedges launched only when enabled.
  EXPECT_GT(a.counters.straggler_batches, 0u);
  EXPECT_EQ(a.counters.straggler_batches, b.counters.straggler_batches);
  EXPECT_EQ(a.counters.hedges_launched, a.counters.straggler_batches);
  EXPECT_EQ(b.counters.hedges_launched, 0u);
  // Results are unchanged either way.
  EXPECT_EQ(a.counters.verdict_hash, b.counters.verdict_hash);
  expect_same_verdicts(a.verdicts, b.verdicts);
}

TEST(ServeFleet, VerdictStreamIsSortedCompleteAndHashes) {
  const serve::FleetSetup& fleet = shared_fleet();
  const auto r = serve::run_fleet(fleet, base_config());
  const auto& c = r.counters;
  EXPECT_EQ(c.hosts, 48u);
  EXPECT_EQ(c.ticks, 36u);
  EXPECT_EQ(c.shards, 5u);
  EXPECT_EQ(c.offered, 48u * 36u);
  EXPECT_EQ(c.emitted, c.offered - c.missing);
  EXPECT_GT(c.missing, 0u);  // 4% drop rate over 1728 samples
  EXPECT_EQ(c.shed, 0u);     // admission disabled in the base config
  EXPECT_EQ(c.admitted, c.emitted);
  EXPECT_EQ(c.scored_rows, c.admitted);
  EXPECT_EQ(c.batches, static_cast<std::uint64_t>(c.ticks) * c.shards);

  // Every (tick, host) pair appears exactly once, in sorted order, and the
  // recorded stream re-hashes to the reported hash.
  ASSERT_EQ(r.verdicts.size(), c.offered);
  for (std::size_t i = 0; i < r.verdicts.size(); ++i) {
    const auto& v = r.verdicts[i];
    EXPECT_EQ(v.tick, static_cast<std::uint32_t>(i / 48));
    EXPECT_EQ(v.host, static_cast<std::uint32_t>(i % 48));
  }
  EXPECT_EQ(serve::verdict_stream_hash(r.verdicts), c.verdict_hash);

  // record_verdicts=false skips the stream but must not change the hash.
  serve::ServeConfig quiet = base_config();
  quiet.record_verdicts = false;
  const auto r2 = serve::run_fleet(fleet, quiet);
  EXPECT_TRUE(r2.verdicts.empty());
  EXPECT_EQ(r2.counters.verdict_hash, c.verdict_hash);
}

TEST(ServeFleet, MalwareHostsAlarmAndBenignHostsStayQuiet) {
  const serve::FleetSetup& fleet = shared_fleet();
  const auto r = serve::run_fleet(fleet, base_config());
  EXPECT_EQ(r.counters.malware_hosts, 16u);  // every third of 48
  // The synthetic bank's blobs sit at the class centres, so detection is
  // ground truth: every infected host alarms after onset, no clean host
  // ever does.
  EXPECT_EQ(r.counters.alarmed_hosts, r.counters.malware_hosts);
  for (const auto& v : r.verdicts) {
    if (!v.alarm) continue;
    EXPECT_TRUE(fleet.hosts[v.host].is_malware);
    EXPECT_GT(v.tick, fleet.hosts[v.host].onset_tick);
  }
}

TEST(ServeFleet, AdmissionShedsDeterministicallyUnderOverload) {
  const serve::FleetSetup& fleet = shared_fleet();
  serve::ServeConfig cfg = base_config();
  cfg.admit_per_tick = 24;  // half the fleet per tick
  cfg.admit_burst = 48;
  const auto a = serve::run_fleet(fleet, cfg);
  EXPECT_GT(a.counters.shed, 0u);
  EXPECT_EQ(a.counters.admitted + a.counters.shed, a.counters.emitted);
  EXPECT_EQ(a.counters.scored_rows, a.counters.admitted);

  // Shed verdicts carry the held automaton state, flagged kShed.
  std::uint64_t shed_seen = 0;
  for (const auto& v : a.verdicts)
    if (v.outcome == serve::SampleOutcome::kShed) ++shed_seen;
  EXPECT_EQ(shed_seen, a.counters.shed);

  // The admitted/shed partition is part of the deterministic domain.
  serve::ServeConfig threaded = cfg;
  threaded.threads = 3;
  const auto b = serve::run_fleet(fleet, threaded);
  expect_same_counters(a.counters, b.counters);
  expect_same_verdicts(a.verdicts, b.verdicts);
}

// ---------------------------------------------------------------------------
// The no-allocation contract on the steady-state observe() path.

TEST(OnlineDetectorAllocation, SteadyStateObserveDoesNotAllocate) {
  auto trained = ml::make_detector(ml::ClassifierKind::kJRip,
                                   ml::EnsembleKind::kBagging, 7);
  trained->train(testutil::gaussian_blobs(40, 3, 1, 0.8, 11));
  std::shared_ptr<const ml::Classifier> model = std::move(trained);
  const std::vector<sim::Event> events = {
      sim::Event::kCpuCycles, sim::Event::kInstructions,
      sim::Event::kCacheMisses, sim::Event::kBranchMisses};
  core::OnlineDetector detector(model, events);

  std::vector<sim::EventCounts> samples(8);
  Rng rng(5);
  for (auto& counts : samples)
    for (sim::Event e : events)
      counts[e] = 1000 + static_cast<std::uint64_t>(rng.uniform() * 4096.0);

  // Warm up: first observes may touch lazily-sized buffers.
  for (std::size_t i = 0; i < 4; ++i) detector.observe(samples[i]);

  const std::uint64_t before = heap_allocs();
  double ewma = 0.0;
  for (std::size_t i = 0; i < 200; ++i)
    ewma = detector.observe(samples[i % samples.size()]).ewma;
  const std::uint64_t after = heap_allocs();
  EXPECT_EQ(after, before) << "observe() allocated on the steady-state path";
  EXPECT_GE(ewma, 0.0);  // keep the loop's result observable

  // observe_missing is pure automaton stepping: also allocation-free.
  const std::uint64_t before_missing = heap_allocs();
  for (int i = 0; i < 50; ++i) detector.observe_missing();
  EXPECT_EQ(heap_allocs(), before_missing);
}

}  // namespace
}  // namespace hmd

// Unit tests for src/hpc: PMU programming constraints, event batching,
// container isolation, and the three capture protocols.
#include <gtest/gtest.h>

#include <cmath>

#include "hpc/capture.h"
#include "hpc/container.h"
#include "hpc/pmu.h"
#include "support/check.h"

namespace hmd::hpc {
namespace {

using sim::Event;

std::vector<Event> events(std::initializer_list<Event> list) { return list; }

// ------------------------------------------------------------------- pmu --

TEST(Pmu, AcceptsUpToWidthHardwareEvents) {
  Pmu pmu(PmuConfig{4});
  EXPECT_NO_THROW(pmu.program(events({Event::kCpuCycles, Event::kInstructions,
                                      Event::kCacheMisses,
                                      Event::kBranchMisses})));
}

TEST(Pmu, RejectsOverSubscription) {
  Pmu pmu(PmuConfig{2});
  EXPECT_THROW(pmu.program(events({Event::kCpuCycles, Event::kInstructions,
                                   Event::kCacheMisses})),
               PreconditionError);
}

TEST(Pmu, SoftwareEventsAreFree) {
  Pmu pmu(PmuConfig{2});
  EXPECT_NO_THROW(pmu.program(
      events({Event::kCpuCycles, Event::kInstructions, Event::kPageFaults,
              Event::kContextSwitches, Event::kMinorFaults})));
}

TEST(Pmu, RejectsDuplicates) {
  Pmu pmu(PmuConfig{4});
  EXPECT_THROW(pmu.program(events({Event::kCpuCycles, Event::kCpuCycles})),
               PreconditionError);
}

TEST(Pmu, ReadUnprogrammedIsNullopt) {
  Pmu pmu(PmuConfig{4});
  pmu.program(events({Event::kCpuCycles}));
  EXPECT_FALSE(pmu.read(Event::kCacheMisses).has_value());
  EXPECT_TRUE(pmu.read(Event::kCpuCycles).has_value());
}

TEST(Pmu, ObserveAccumulatesAndSampleClears) {
  Pmu pmu(PmuConfig{4});
  pmu.program(events({Event::kInstructions, Event::kBranchMisses}));
  sim::EventCounts c{};
  c[Event::kInstructions] = 100;
  c[Event::kBranchMisses] = 7;
  pmu.observe(c);
  pmu.observe(c);
  EXPECT_EQ(pmu.read(Event::kInstructions), 200u);
  const auto sample = pmu.sample_and_clear();
  EXPECT_EQ(sample[0], 200u);
  EXPECT_EQ(sample[1], 14u);
  EXPECT_EQ(pmu.read(Event::kInstructions), 0u);
}

// ------------------------------------------------------------ scheduling --

TEST(Scheduling, FortyFourEventsNeedElevenBatchesOfFour) {
  // The paper: "We divide 44 events into 11 batches of 4 events".
  std::vector<Event> all(sim::all_events().begin(), sim::all_events().end());
  const auto batches = schedule_batches(all, 4);
  // 37 hardware events -> ceil(37/4) = 10 batches; the 7 software events
  // ride along for free, so the protocol needs 10 runs (perf's software
  // events do not consume counter registers — one run fewer than the
  // paper's accounting, which batched them like hardware events).
  EXPECT_EQ(batches.size(), 10u);
  std::size_t total = 0;
  for (const auto& b : batches) {
    EXPECT_LE(Pmu::hardware_event_count(b), 4u);
    total += b.size();
  }
  EXPECT_EQ(total, 44u);
}

TEST(Scheduling, PreservesEventOrderWithinBatches) {
  const auto batches = schedule_batches(
      events({Event::kCpuCycles, Event::kInstructions, Event::kCacheMisses}),
      2);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0][0], Event::kCpuCycles);
  EXPECT_EQ(batches[0][1], Event::kInstructions);
  EXPECT_EQ(batches[1][0], Event::kCacheMisses);
}

TEST(Scheduling, WidthOneSerialisesEverything) {
  std::vector<Event> all(sim::all_events().begin(), sim::all_events().end());
  EXPECT_EQ(schedule_batches(all, 1).size(), 37u);
}

// ------------------------------------------------------------- container --

TEST(Container, ProducesOneSamplePerInterval) {
  Container container;
  const auto app = sim::make_benign(0, 0, 11, 5);
  const auto trace = container.run(app, 0, events({Event::kInstructions}));
  EXPECT_EQ(trace.samples.size(), 5u);
  for (const auto& s : trace.samples) EXPECT_GT(s[0], 0u);
}

TEST(Container, IsolationNoCrossRunContamination) {
  // Two identical runs must produce identical traces even with a
  // different run in between (the destroyed-container property).
  Container container;
  const auto app = sim::make_benign(1, 0, 12, 4);
  const auto other = sim::make_malware(0, 0, 13, 4);
  const auto first = container.run(app, 0, events({Event::kCacheMisses}));
  container.run(other, 0, events({Event::kCacheMisses}));
  const auto again = container.run(app, 0, events({Event::kCacheMisses}));
  ASSERT_EQ(first.samples.size(), again.samples.size());
  for (std::size_t i = 0; i < first.samples.size(); ++i)
    EXPECT_EQ(first.samples[i][0], again.samples[i][0]) << i;
}

TEST(Container, CountsRuns) {
  Container container;
  const auto app = sim::make_benign(0, 0, 14, 2);
  container.run(app, 0, events({Event::kInstructions}));
  container.run(app, 1, events({Event::kInstructions}));
  EXPECT_EQ(container.runs_executed(), 2u);
}

// --------------------------------------------------------------- capture --

std::vector<sim::AppProfile> tiny_corpus() {
  return {sim::make_benign(0, 0, 21, 6), sim::make_malware(0, 0, 21, 6)};
}

TEST(Capture, MultiRunFillsEveryColumn) {
  const auto cap = capture_all_events(tiny_corpus());
  EXPECT_EQ(cap.num_features(), 44u);
  EXPECT_EQ(cap.num_rows(), 12u);  // 2 apps x 6 intervals
  for (const auto& row : cap.rows)
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
}

TEST(Capture, MultiRunCostsTenRunsPerApp) {
  const auto cap = capture_all_events(tiny_corpus());
  EXPECT_EQ(cap.total_runs, 2u * 10u);
}

TEST(Capture, LabelsFollowApps) {
  const auto cap = capture_all_events(tiny_corpus());
  for (std::size_t i = 0; i < cap.num_rows(); ++i)
    EXPECT_EQ(cap.labels[i], cap.app_labels[cap.row_app[i]]);
  EXPECT_EQ(cap.app_labels[0], 0);
  EXPECT_EQ(cap.app_labels[1], 1);
}

TEST(Capture, OracleIsOneRunPerApp) {
  CaptureConfig cfg;
  cfg.protocol = CaptureProtocol::kOracle;
  const auto cap = capture_all_events(tiny_corpus(), cfg);
  EXPECT_EQ(cap.total_runs, 2u);
  EXPECT_EQ(cap.num_rows(), 12u);
}

TEST(Capture, MultiplexIsOneRunButDropsWarmupRows) {
  CaptureConfig cfg;
  cfg.protocol = CaptureProtocol::kMultiplex;
  std::vector<sim::AppProfile> corpus = {sim::make_benign(0, 0, 21, 15),
                                         sim::make_malware(0, 0, 21, 15)};
  const auto cap = capture_all_events(corpus, cfg);
  EXPECT_EQ(cap.total_runs, 2u);
  // 10 batches rotate; rows only emitted once all events seen.
  EXPECT_EQ(cap.num_rows(), 2u * (15u - 9u));
}

TEST(Capture, ColumnsComeFromDifferentRunsUnderMultiRun) {
  // branch_instructions and branch_loads are identical counts inside one
  // run; under the multi-run protocol they land in different batches, so
  // the merged columns must differ by run-to-run noise.
  const auto cap = capture_all_events(tiny_corpus());
  std::size_t bi = 0, bl = 0;
  for (std::size_t f = 0; f < cap.feature_names.size(); ++f) {
    if (cap.feature_names[f] == "branch_instructions") bi = f;
    if (cap.feature_names[f] == "branch_loads") bl = f;
  }
  bool any_difference = false;
  for (const auto& row : cap.rows)
    if (row[bi] != row[bl]) any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(Capture, EmptyCorpusRejected) {
  EXPECT_THROW(capture_all_events({}), PreconditionError);
}

TEST(Capture, ProtocolNames) {
  EXPECT_EQ(capture_protocol_name(CaptureProtocol::kMultiRun), "multi-run");
  EXPECT_EQ(capture_protocol_name(CaptureProtocol::kMultiplex), "multiplex");
  EXPECT_EQ(capture_protocol_name(CaptureProtocol::kOracle), "oracle");
}

}  // namespace
}  // namespace hmd::hpc

// Tests for the fault-tolerant capture layer: deterministic fault
// injection (FaultInjector), retry/quarantine/backoff accounting,
// shortest-common-interval alignment, the saturation screen + imputation,
// graceful degradation under unavailable events, and the online detector's
// missing-sample / staleness behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "core/online.h"
#include "hpc/capture.h"
#include "hpc/container.h"
#include "hpc/faults.h"
#include "sim/workloads.h"
#include "support/check.h"

namespace hmd {
namespace {

sim::CorpusConfig tiny_corpus() {
  sim::CorpusConfig cfg;
  cfg.benign_per_template = 1;
  cfg.malware_per_template = 1;
  cfg.intervals_per_app = 6;
  return cfg;
}

hpc::FaultConfig moderate_faults(std::uint64_t seed = 3) {
  hpc::FaultConfig f;
  f.sample_drop_rate = 0.05;
  f.run_crash_rate = 0.05;
  f.counter_glitch_rate = 0.02;
  f.truncate_rate = 0.05;
  f.seed = seed;
  return f;
}

void expect_same_report(const hpc::CaptureReport& a,
                        const hpc::CaptureReport& b) {
  EXPECT_EQ(a.degraded_events, b.degraded_events);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].attempts, b.apps[i].attempts) << "app " << i;
    EXPECT_EQ(a.apps[i].retries, b.apps[i].retries) << "app " << i;
    EXPECT_EQ(a.apps[i].crashes, b.apps[i].crashes) << "app " << i;
    EXPECT_EQ(a.apps[i].truncated_runs, b.apps[i].truncated_runs);
    EXPECT_EQ(a.apps[i].aligned_intervals, b.apps[i].aligned_intervals);
    EXPECT_EQ(a.apps[i].backoff_ms, b.apps[i].backoff_ms);
    EXPECT_EQ(a.apps[i].cells, b.apps[i].cells);
    EXPECT_EQ(a.apps[i].dropped_cells, b.apps[i].dropped_cells);
    EXPECT_EQ(a.apps[i].glitched_cells, b.apps[i].glitched_cells);
    EXPECT_EQ(a.apps[i].imputed_cells, b.apps[i].imputed_cells);
    EXPECT_EQ(a.apps[i].quarantined, b.apps[i].quarantined);
  }
}

// ---------------------------------------------------------------------------
// FaultConfig / profiles.

TEST(FaultProfiles, ParseAndNameRoundTrip) {
  for (const auto profile :
       {hpc::FaultProfile::kNone, hpc::FaultProfile::kLight,
        hpc::FaultProfile::kHeavy}) {
    const auto parsed =
        hpc::fault_profile_from_name(hpc::fault_profile_name(profile));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, profile);
  }
  EXPECT_FALSE(hpc::fault_profile_from_name("medium").has_value());
  EXPECT_FALSE(hpc::fault_profile_from_name("").has_value());
}

TEST(FaultProfiles, ProfilesAreOrderedAndSeeded) {
  const auto none = hpc::fault_profile(hpc::FaultProfile::kNone, 7);
  const auto light = hpc::fault_profile(hpc::FaultProfile::kLight, 7);
  const auto heavy = hpc::fault_profile(hpc::FaultProfile::kHeavy, 7);
  EXPECT_FALSE(none.any());
  EXPECT_TRUE(light.any());
  EXPECT_TRUE(heavy.any());
  EXPECT_GT(heavy.run_crash_rate, light.run_crash_rate);
  EXPECT_GT(heavy.sample_drop_rate, light.sample_drop_rate);
  EXPECT_FALSE(heavy.unavailable_events.empty());
  EXPECT_EQ(light.seed, 7u);
  EXPECT_EQ(hpc::describe_faults(none), "none");
  EXPECT_NE(hpc::describe_faults(heavy).find("unavailable"),
            std::string::npos);
}

TEST(FaultProfiles, UnavailableEventsAloneAreNotStochastic) {
  hpc::FaultConfig f;
  f.unavailable_events = {sim::Event::kBusCycles};
  EXPECT_FALSE(f.any());  // static capability, not a stochastic fault
}

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour.

TEST(FaultInjector, PlansArePureFunctionsOfSeedAppAndRunIndex) {
  const hpc::FaultInjector a(moderate_faults(11));
  const hpc::FaultInjector b(moderate_faults(11));
  for (std::uint32_t run = 0; run < 64; ++run) {
    const auto pa = a.plan_run(/*app_seed=*/42, run, /*intervals=*/20);
    const auto pb = b.plan_run(42, run, 20);
    EXPECT_EQ(pa.crash, pb.crash);
    EXPECT_EQ(pa.keep_intervals, pb.keep_intervals);
  }
  // A different fault seed must decorrelate the stream: at 5% crash over
  // 64 runs, two independent streams agreeing everywhere is (1-2pq)^64 —
  // astronomically unlikely to hold AND match truncation points too.
  const hpc::FaultInjector c(moderate_faults(12));
  bool all_equal = true;
  for (std::uint32_t run = 0; run < 256; ++run) {
    const auto pa = a.plan_run(42, run, 20);
    const auto pc = c.plan_run(42, run, 20);
    all_equal = all_equal && pa.crash == pc.crash &&
                pa.keep_intervals == pc.keep_intervals;
  }
  EXPECT_FALSE(all_equal);
}

TEST(FaultInjector, CrashRateOneAlwaysCrashes) {
  hpc::FaultConfig f;
  f.run_crash_rate = 1.0;
  const hpc::FaultInjector inj(f);
  for (std::uint32_t run = 0; run < 16; ++run)
    EXPECT_TRUE(inj.plan_run(1, run, 10).crash);
}

TEST(FaultInjector, TruncationPointStaysInRange) {
  hpc::FaultConfig f;
  f.truncate_rate = 1.0;
  const hpc::FaultInjector inj(f);
  for (std::uint32_t run = 0; run < 64; ++run) {
    const auto plan = inj.plan_run(5, run, 12);
    EXPECT_FALSE(plan.crash);
    ASSERT_NE(plan.keep_intervals, hpc::FaultInjector::kNoTruncation);
    EXPECT_GE(plan.keep_intervals, 1u);
    EXPECT_LE(plan.keep_intervals, 12u);
  }
}

TEST(FaultInjector, PerturbIsDeterministicAndMarksDrops) {
  hpc::FaultConfig f;
  f.sample_drop_rate = 0.3;
  f.counter_glitch_rate = 0.2;
  f.seed = 9;
  const hpc::FaultInjector inj(f);

  const auto make_trace = [] {
    hpc::RunTrace t;
    t.events = {sim::Event::kCpuCycles, sim::Event::kInstructions};
    t.samples.assign(10, std::vector<std::uint64_t>{100, 200});
    return t;
  };
  constexpr std::uint64_t kGlitch = 0xFFFFu;
  auto t1 = make_trace();
  auto t2 = make_trace();
  inj.perturb(t1, /*app_seed=*/77, /*run_index=*/3, kGlitch);
  inj.perturb(t2, 77, 3, kGlitch);
  EXPECT_EQ(t1.samples, t2.samples);
  EXPECT_EQ(t1.dropped, t2.dropped);

  ASSERT_EQ(t1.dropped.size(), t1.samples.size());
  std::size_t drops = 0, glitches = 0;
  for (std::size_t i = 0; i < t1.samples.size(); ++i)
    for (std::size_t j = 0; j < t1.samples[i].size(); ++j) {
      if (t1.dropped[i][j] != 0) ++drops;
      else if (t1.samples[i][j] == kGlitch) ++glitches;  // silent corruption
    }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(glitches, 0u);

  // A different run index must perturb differently.
  auto t3 = make_trace();
  inj.perturb(t3, 77, 4, kGlitch);
  EXPECT_TRUE(t3.samples != t1.samples || t3.dropped != t1.dropped);
}

TEST(Container, CrashedAttemptStillCountsInRunsExecuted) {
  hpc::FaultConfig f;
  f.run_crash_rate = 1.0;
  const hpc::FaultInjector inj(f);
  hpc::Container container({}, {}, &inj);
  const auto app = sim::make_benign(0, 0, 33, 4);
  EXPECT_THROW(
      container.run(app, 0, {sim::Event::kCpuCycles}),
      hpc::RunCrashError);
  EXPECT_EQ(container.runs_executed(), 1u);
}

TEST(Container, NullInjectorLeavesTraceClean) {
  hpc::Container container;
  const auto app = sim::make_benign(0, 0, 33, 4);
  const auto trace = container.run(app, 0, {sim::Event::kCpuCycles});
  EXPECT_TRUE(trace.dropped.empty());
  EXPECT_FALSE(trace.truncated);
  EXPECT_EQ(trace.samples.size(), app.intervals);
}

// ---------------------------------------------------------------------------
// Faulted capture: determinism, zero cost, accounting, screening.

TEST(FaultedCapture, BitIdenticalAcrossThreadCounts) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig serial_cfg;
  serial_cfg.faults = moderate_faults();
  serial_cfg.threads = 1;
  hpc::CaptureConfig parallel_cfg = serial_cfg;
  parallel_cfg.threads = 4;

  const auto serial = hpc::capture_all_events(corpus, serial_cfg);
  const auto parallel = hpc::capture_all_events(corpus, parallel_cfg);
  EXPECT_EQ(serial.feature_names, parallel.feature_names);
  EXPECT_EQ(serial.labels, parallel.labels);
  EXPECT_EQ(serial.row_app, parallel.row_app);
  EXPECT_EQ(serial.total_runs, parallel.total_runs);
  EXPECT_EQ(serial.rows, parallel.rows);  // exact doubles, no tolerance
  expect_same_report(serial.report, parallel.report);
}

TEST(FaultedCapture, AllZeroRatesAreByteIdenticalToCleanCapture) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto clean = hpc::capture_all_events(corpus, {});
  hpc::CaptureConfig zero_cfg;
  zero_cfg.faults.seed = 123;  // seed without rates must change nothing
  const auto zero = hpc::capture_all_events(corpus, zero_cfg);

  EXPECT_EQ(clean.rows, zero.rows);
  EXPECT_EQ(clean.total_runs, zero.total_runs);
  EXPECT_EQ(zero.report.total_retries(), 0u);
  EXPECT_EQ(zero.report.total_crashes(), 0u);
  EXPECT_EQ(zero.report.quarantined_apps(), 0u);
  EXPECT_EQ(zero.report.total_imputed_cells(), 0u);
  EXPECT_EQ(zero.report.total_backoff_ms(), 0u);
  EXPECT_TRUE(zero.report.degraded_events.empty());
}

TEST(FaultedCapture, RetryAndBackoffAccountingStaysHonest) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.faults = moderate_faults(5);
  const auto capture = hpc::capture_all_events(corpus, cfg);

  // total_runs is the honest protocol cost: every attempt, incl. retries.
  std::uint64_t ledger = 0;
  for (const auto& app : capture.report.apps) ledger += app.attempts;
  EXPECT_EQ(capture.total_runs, ledger);
  EXPECT_GT(capture.report.total_crashes(), 0u);
  EXPECT_GE(capture.report.total_retries(), capture.report.total_crashes());
  // Backoff is accounted per retry, capped 10..80 ms.
  EXPECT_GE(capture.report.total_backoff_ms(),
            10u * capture.report.total_retries());
  EXPECT_LE(capture.report.total_backoff_ms(),
            80u * capture.report.total_retries());
}

TEST(FaultedCapture, PersistentCrashQuarantinesEveryAppAndThrows) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.faults.run_crash_rate = 1.0;
  EXPECT_THROW(hpc::capture_all_events(corpus, cfg), hpc::CaptureError);
}

TEST(FaultedCapture, TruncationShortensAppsToCommonInterval) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.faults.truncate_rate = 0.6;  // frequent, but >= min_run_fraction often
  cfg.faults.seed = 2;
  const auto capture = hpc::capture_all_events(corpus, cfg);

  const auto& report = capture.report;
  EXPECT_GT(std::accumulate(
                report.apps.begin(), report.apps.end(), std::uint64_t{0},
                [](std::uint64_t acc, const hpc::AppCaptureReport& app) {
                  return acc + app.truncated_runs;
                }),
            0u);
  // Per app: rows kept == aligned_intervals <= the app's interval count.
  std::vector<std::size_t> rows_per_app(capture.app_names.size(), 0);
  for (std::size_t app : capture.row_app) ++rows_per_app[app];
  for (std::size_t a = 0; a < report.apps.size(); ++a) {
    if (report.apps[a].quarantined) {
      EXPECT_EQ(rows_per_app[a], 0u);
      continue;
    }
    EXPECT_EQ(rows_per_app[a], report.apps[a].aligned_intervals);
    EXPECT_LE(report.apps[a].aligned_intervals, corpus[a].intervals);
    EXPECT_GE(report.apps[a].aligned_intervals, 1u);
  }
}

TEST(FaultedCapture, ScreenAndImputationLeaveNoHolesOrSaturation) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.faults.sample_drop_rate = 0.10;
  cfg.faults.counter_glitch_rate = 0.10;
  cfg.faults.seed = 4;
  const auto capture = hpc::capture_all_events(corpus, cfg);

  EXPECT_GT(capture.report.total_imputed_cells(), 0u);
  const double saturation =
      static_cast<double>((std::uint64_t{1} << 48) - 1);  // default 48 bits
  for (const auto& row : capture.rows)
    for (double v : row) {
      EXPECT_TRUE(std::isfinite(v));     // every hole was imputed
      EXPECT_LT(v, saturation * 0.5);    // every glitch was screened
    }
  // Accounting: imputed == dropped + glitched, and within the lint budget
  // shape (fractions in [0, 1]).
  std::size_t dropped = 0, glitched = 0;
  for (const auto& app : capture.report.apps) {
    dropped += app.dropped_cells;
    glitched += app.glitched_cells;
    EXPECT_EQ(app.imputed_cells, app.dropped_cells + app.glitched_cells);
  }
  EXPECT_EQ(capture.report.total_imputed_cells(), dropped + glitched);
  EXPECT_GE(capture.report.imputed_fraction(), 0.0);
  EXPECT_LE(capture.report.imputed_fraction(), 1.0);
}

TEST(FaultedCapture, StochasticFaultsRequireMultiRunProtocol) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.faults = moderate_faults();
  cfg.protocol = hpc::CaptureProtocol::kOracle;
  EXPECT_THROW(hpc::capture_all_events(corpus, cfg), PreconditionError);
}

TEST(FaultedCapture, RejectsOutOfRangeMinRunFraction) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.min_run_fraction = 1.5;
  EXPECT_THROW(hpc::capture_all_events(corpus, cfg), PreconditionError);
}

// ---------------------------------------------------------------------------
// Graceful degradation: unavailable events.

TEST(DegradedCapture, UnavailableEventsAreDroppedAndReported) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.faults.unavailable_events = {sim::Event::kBusCycles,
                                   sim::Event::kNodePrefetchMisses};
  const auto capture = hpc::capture_all_events(corpus, cfg);

  EXPECT_EQ(capture.num_features(), sim::all_events().size() - 2);
  ASSERT_EQ(capture.report.degraded_events.size(), 2u);
  EXPECT_EQ(capture.report.degraded_events[0],
            sim::event_name(sim::Event::kBusCycles));
  for (const auto& name : capture.feature_names) {
    EXPECT_NE(name, sim::event_name(sim::Event::kBusCycles));
    EXPECT_NE(name, sim::event_name(sim::Event::kNodePrefetchMisses));
  }
}

TEST(DegradedCapture, EveryEventUnavailableIsFatal) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.faults.unavailable_events.assign(sim::all_events().begin(),
                                       sim::all_events().end());
  EXPECT_THROW(hpc::capture_all_events(corpus, cfg), PreconditionError);
}

TEST(Pmu, ProgrammingAnUnavailableEventThrows) {
  hpc::PmuConfig cfg;
  cfg.unavailable_events = {sim::Event::kBusCycles};
  hpc::Pmu pmu(cfg);
  EXPECT_FALSE(pmu.event_available(sim::Event::kBusCycles));
  EXPECT_TRUE(pmu.event_available(sim::Event::kCpuCycles));
  EXPECT_THROW(pmu.program({sim::Event::kBusCycles}), PreconditionError);
}

// ---------------------------------------------------------------------------
// Online detector: missing samples, staleness watchdog, degraded subset.

/// Deterministic stand-in model: P(malware) rises with instruction count.
class FixedScorer : public ml::Classifier {
 public:
  void train(const ml::Dataset&) override {}
  double predict_proba(std::span<const double> x) const override {
    return std::clamp(x[0] / 1000.0, 0.0, 1.0);
  }
  std::unique_ptr<ml::Classifier> clone_untrained() const override {
    return std::make_unique<FixedScorer>();
  }
  std::string name() const override { return "Fixed"; }
  ml::ModelComplexity complexity() const override { return {}; }
};

sim::EventCounts counts_with_instructions(std::uint64_t n) {
  sim::EventCounts c{};
  c[sim::Event::kInstructions] = n;
  return c;
}

core::OnlineConfig sharp_online() {
  core::OnlineConfig cfg;
  cfg.ewma_alpha = 1.0;
  cfg.warmup_intervals = 0;
  cfg.max_stale_intervals = 3;
  return cfg;
}

TEST(OnlineFaults, MissingSamplesHoldEwmaAndAlarm) {
  core::OnlineDetector det(std::make_shared<FixedScorer>(),
                           {sim::Event::kInstructions}, hpc::PmuConfig{},
                           sharp_online());
  const auto alarmed = det.observe(counts_with_instructions(900));  // 0.9
  EXPECT_TRUE(alarmed.alarm);

  // The collector hiccups: the alarm must neither crash nor clear.
  for (std::size_t i = 0; i < 3; ++i) {
    const auto held = det.observe_missing();
    EXPECT_TRUE(held.alarm);
    EXPECT_DOUBLE_EQ(held.ewma, alarmed.ewma);
    EXPECT_FALSE(held.stale) << "within the watchdog window at miss " << i;
  }
  // One more miss exceeds max_stale_intervals = 3: flagged, still alarmed.
  const auto stale = det.observe_missing();
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.alarm);
  EXPECT_EQ(det.missing_streak(), 4u);

  // A real sample resets the watchdog.
  const auto fresh = det.observe(counts_with_instructions(100));
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(det.missing_streak(), 0u);
  EXPECT_FALSE(fresh.alarm);  // 0.1 < alarm_off
}

TEST(OnlineFaults, ResetClearsStaleness) {
  core::OnlineDetector det(std::make_shared<FixedScorer>(),
                           {sim::Event::kInstructions}, hpc::PmuConfig{},
                           sharp_online());
  det.observe(counts_with_instructions(900));
  for (std::size_t i = 0; i < 5; ++i) det.observe_missing();
  EXPECT_TRUE(det.stale());
  det.reset();
  EXPECT_FALSE(det.stale());
  EXPECT_EQ(det.missing_streak(), 0u);
}

TEST(OnlineFaults, UnavailableEventDegradesToActiveSubset) {
  hpc::PmuConfig pmu;
  pmu.unavailable_events = {sim::Event::kCacheMisses};
  core::OnlineDetector det(
      std::make_shared<FixedScorer>(),
      {sim::Event::kInstructions, sim::Event::kCacheMisses}, pmu,
      sharp_online());

  EXPECT_TRUE(det.degraded());
  ASSERT_EQ(det.active_events().size(), 1u);
  EXPECT_EQ(det.active_events()[0], sim::Event::kInstructions);

  // The detector still scores (the missing feature feeds its held 0) and
  // every verdict carries the degraded flag.
  const auto v = det.observe(counts_with_instructions(900));
  EXPECT_TRUE(v.degraded);
  EXPECT_TRUE(v.alarm);  // feature 0 alone drives FixedScorer
}

TEST(OnlineFaults, AllEventsUnavailableIsFatal) {
  hpc::PmuConfig pmu;
  pmu.unavailable_events = {sim::Event::kInstructions};
  EXPECT_THROW(core::OnlineDetector(std::make_shared<FixedScorer>(),
                                    {sim::Event::kInstructions}, pmu),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Online detector: recovery transitions (stale -> healthy, degraded ->
// healthy). Entering the degraded/stale states is covered above; these
// prove the way *back* keeps the EWMA, alarm, and held state honest.

TEST(OnlineRecovery, StaleToHealthyKeepsEwmaAcrossTheGap) {
  core::OnlineConfig cfg = sharp_online();
  cfg.ewma_alpha = 0.5;  // partial smoothing, so the gap is observable
  core::OnlineDetector det(std::make_shared<FixedScorer>(),
                           {sim::Event::kInstructions}, hpc::PmuConfig{},
                           cfg);

  const auto before = det.observe(counts_with_instructions(900));  // 0.9
  EXPECT_DOUBLE_EQ(before.ewma, 0.9);  // first sample initialises the EWMA
  EXPECT_TRUE(before.alarm);

  // Past the watchdog: verdicts go stale but hold the last trusted state.
  for (std::size_t i = 0; i < 4; ++i) det.observe_missing();
  EXPECT_TRUE(det.stale());
  EXPECT_TRUE(det.alarmed());

  // Counters return. The recovery verdict must not be stale, and its EWMA
  // must blend the new score into the *held* pre-gap state — 0.5·0.1 +
  // 0.5·0.9 — not restart from the new score (which would be 0.1).
  const auto recovered = det.observe(counts_with_instructions(100));
  EXPECT_FALSE(recovered.stale);
  EXPECT_EQ(det.missing_streak(), 0u);
  EXPECT_DOUBLE_EQ(recovered.ewma, 0.5 * 0.1 + 0.5 * 0.9);
  EXPECT_TRUE(recovered.alarm);  // 0.5 is above alarm_off = 0.4: no clear

  // A healthy run of low scores decays the EWMA and clears the alarm
  // through the normal hysteresis, not through the recovery itself.
  const auto settled = det.observe(counts_with_instructions(100));
  EXPECT_FALSE(settled.stale);
  EXPECT_DOUBLE_EQ(settled.ewma, 0.5 * 0.1 + 0.5 * recovered.ewma);
  EXPECT_FALSE(settled.alarm);  // 0.3 <= alarm_off
}

/// Two-feature scorer, so a held (degraded) feature visibly changes the
/// score: P = clamp((x0 + x1) / 2000).
class MeanScorer : public ml::Classifier {
 public:
  void train(const ml::Dataset&) override {}
  double predict_proba(std::span<const double> x) const override {
    return std::clamp((x[0] + x[1]) / 2000.0, 0.0, 1.0);
  }
  std::unique_ptr<ml::Classifier> clone_untrained() const override {
    return std::make_unique<MeanScorer>();
  }
  std::string name() const override { return "Mean"; }
  ml::ModelComplexity complexity() const override { return {}; }
};

TEST(OnlineRecovery, DegradedToHealthyViaReprogramKeepsAlarmAndEwma) {
  core::OnlineConfig cfg = sharp_online();
  cfg.ewma_alpha = 0.5;
  hpc::PmuConfig broken;
  broken.unavailable_events = {sim::Event::kCacheMisses};
  core::OnlineDetector det(
      std::make_shared<MeanScorer>(),
      {sim::Event::kInstructions, sim::Event::kCacheMisses}, broken, cfg);
  EXPECT_TRUE(det.degraded());

  // Degraded: the unavailable feature feeds its held 0, so 1800 alone
  // scores 0.9, raising the alarm.
  sim::EventCounts counts = counts_with_instructions(1800);
  counts[sim::Event::kCacheMisses] = 1800;
  const auto degraded = det.observe(counts);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_DOUBLE_EQ(degraded.score, 0.9);
  EXPECT_TRUE(degraded.alarm);

  // The counter comes back (collector restart): re-probe and reprogram.
  det.reprogram(hpc::PmuConfig{});
  EXPECT_FALSE(det.degraded());
  ASSERT_EQ(det.active_events().size(), 2u);

  // Recovery must carry the alarm and EWMA across the transition, and the
  // first healthy sample refreshes the previously-held feature: both
  // events now contribute, scoring (400 + 400) / 2000 = 0.4.
  EXPECT_TRUE(det.alarmed());
  sim::EventCounts healthy = counts_with_instructions(400);
  healthy[sim::Event::kCacheMisses] = 400;
  const auto recovered = det.observe(healthy);
  EXPECT_FALSE(recovered.degraded);
  EXPECT_DOUBLE_EQ(recovered.score, 0.4);
  EXPECT_DOUBLE_EQ(recovered.ewma, 0.5 * 0.4 + 0.5 * 0.9);
  EXPECT_TRUE(recovered.alarm);  // 0.65 is still above alarm_off

  const auto cleared = det.observe(counts_with_instructions(0));
  EXPECT_DOUBLE_EQ(cleared.ewma, 0.5 * 0.0 + 0.5 * recovered.ewma);
  EXPECT_FALSE(cleared.alarm);  // 0.325 <= alarm_off = 0.4
}

TEST(OnlineRecovery, ReprogramToNoAvailableEventsIsFatal) {
  core::OnlineDetector det(std::make_shared<FixedScorer>(),
                           {sim::Event::kInstructions}, hpc::PmuConfig{},
                           sharp_online());
  hpc::PmuConfig dead;
  dead.unavailable_events = {sim::Event::kInstructions};
  EXPECT_THROW(det.reprogram(dead), PreconditionError);
}

}  // namespace
}  // namespace hmd

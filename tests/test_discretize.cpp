// Unit tests for MDL / equal-frequency discretization and information gain.
#include <gtest/gtest.h>

#include "ml/discretize.h"
#include "support/check.h"
#include "support/rng.h"

namespace hmd::ml {
namespace {

TEST(BinaryEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.0, 0.0), 0.0);
  EXPECT_NEAR(binary_entropy(3.0, 1.0), 0.8112781244591328, 1e-12);
}

TEST(BinaryEntropy, SymmetricAndScaleInvariant) {
  EXPECT_DOUBLE_EQ(binary_entropy(2.0, 5.0), binary_entropy(5.0, 2.0));
  EXPECT_NEAR(binary_entropy(2.0, 5.0), binary_entropy(20.0, 50.0), 1e-12);
}

TEST(Discretizer, BinBoundaries) {
  const Discretizer disc(std::vector<double>{1.0, 3.0});
  EXPECT_EQ(disc.num_bins(), 3u);
  EXPECT_EQ(disc.bin(0.0), 0u);
  EXPECT_EQ(disc.bin(1.0), 1u);  // cuts are inclusive on the left bin edge
  EXPECT_EQ(disc.bin(2.0), 1u);
  EXPECT_EQ(disc.bin(3.5), 2u);
}

TEST(Discretizer, UnsortedCutsRejected) {
  EXPECT_THROW(Discretizer(std::vector<double>{3.0, 1.0}),
               PreconditionError);
}

TEST(MdlDiscretize, FindsTheObviousCut) {
  // Class 0 in [0,1), class 1 in [2,3): one clean boundary.
  std::vector<double> values;
  std::vector<int> labels;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.uniform(0.0, 1.0));
    labels.push_back(0);
    values.push_back(rng.uniform(2.0, 3.0));
    labels.push_back(1);
  }
  const auto disc = mdl_discretize(values, labels, {});
  ASSERT_EQ(disc.cuts().size(), 1u);
  EXPECT_GT(disc.cuts()[0], 1.0);
  EXPECT_LT(disc.cuts()[0], 2.0);
}

TEST(MdlDiscretize, UselessFeatureGetsNoCuts) {
  std::vector<double> values;
  std::vector<int> labels;
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    values.push_back(rng.uniform(0.0, 1.0));
    labels.push_back(i % 2);  // label independent of value
  }
  const auto disc = mdl_discretize(values, labels, {});
  EXPECT_EQ(disc.cuts().size(), 0u);
}

TEST(MdlDiscretize, ThreeClassesOfValueGetTwoCuts) {
  std::vector<double> values;
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < 150; ++i) {
    values.push_back(rng.uniform(0.0, 1.0));
    labels.push_back(0);
    values.push_back(rng.uniform(2.0, 3.0));
    labels.push_back(1);
    values.push_back(rng.uniform(4.0, 5.0));
    labels.push_back(0);
  }
  const auto disc = mdl_discretize(values, labels, {});
  EXPECT_EQ(disc.cuts().size(), 2u);
}

TEST(MdlDiscretize, RespectsWeights) {
  // Heavily down-weighting one side makes the split not worth its bits.
  std::vector<double> values{0.1, 0.2, 0.3, 2.1, 2.2, 2.3};
  std::vector<int> labels{0, 0, 0, 1, 1, 1};
  std::vector<double> tiny(6, 1e-6);
  const auto disc = mdl_discretize(values, labels, tiny);
  EXPECT_EQ(disc.cuts().size(), 0u);
}

TEST(EqualFrequency, SplitsMassEvenly) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  const auto disc = equal_frequency_discretize(values, 4);
  EXPECT_EQ(disc.num_bins(), 4u);
  std::array<int, 4> counts{};
  for (double v : values) ++counts[disc.bin(v)];
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(EqualFrequency, DegenerateDuplicatesCollapseBins) {
  const std::vector<double> values(50, 7.0);
  const auto disc = equal_frequency_discretize(values, 4);
  EXPECT_EQ(disc.num_bins(), 1u);
}

TEST(InformationGain, PerfectSplitGivesFullEntropy) {
  std::vector<double> values{0, 0, 0, 10, 10, 10};
  std::vector<int> labels{0, 0, 0, 1, 1, 1};
  const Discretizer disc(std::vector<double>{5.0});
  EXPECT_NEAR(information_gain(disc, values, labels, {}), 1.0, 1e-12);
}

TEST(InformationGain, UselessSplitGivesZero) {
  std::vector<double> values{0, 10, 0, 10};
  std::vector<int> labels{0, 0, 1, 1};
  const Discretizer disc(std::vector<double>{5.0});
  EXPECT_NEAR(information_gain(disc, values, labels, {}), 0.0, 1e-12);
}

}  // namespace
}  // namespace hmd::ml

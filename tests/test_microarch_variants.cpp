// Tests for the selectable microarchitecture variants: branch predictor
// organisations and cache replacement policies.
#include <gtest/gtest.h>

#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/workloads.h"
#include "support/rng.h"

namespace hmd::sim {
namespace {

// ------------------------------------------------------ branch predictors --

class PredictorKinds
    : public testing::TestWithParam<BranchPredictorKind> {};

TEST_P(PredictorKinds, LearnsABiasedBranch) {
  BranchPredictorConfig cfg;
  cfg.kind = GetParam();
  BranchPredictor bp(cfg);
  for (int i = 0; i < 2000; ++i) bp.execute(0x400000, true);
  EXPECT_LT(static_cast<double>(bp.direction_misses()) /
                static_cast<double>(bp.branches()),
            0.05);
}

TEST_P(PredictorKinds, RandomBranchesNearChance) {
  BranchPredictorConfig cfg;
  cfg.kind = GetParam();
  BranchPredictor bp(cfg);
  Rng rng(7);
  for (int i = 0; i < 8000; ++i) bp.execute(0x400100, rng.chance(0.5));
  const double rate = static_cast<double>(bp.direction_misses()) /
                      static_cast<double>(bp.branches());
  EXPECT_GT(rate, 0.3);
  EXPECT_LT(rate, 0.7);
}

TEST_P(PredictorKinds, ResetZeroesCounters) {
  BranchPredictorConfig cfg;
  cfg.kind = GetParam();
  BranchPredictor bp(cfg);
  bp.execute(0x1, true);
  bp.reset();
  EXPECT_EQ(bp.branches(), 0u);
  EXPECT_EQ(bp.direction_misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PredictorKinds,
    testing::Values(BranchPredictorKind::kGshare,
                    BranchPredictorKind::kBimodal,
                    BranchPredictorKind::kLocalHistory,
                    BranchPredictorKind::kTournament),
    [](const testing::TestParamInfo<BranchPredictorKind>& tpi) {
      return std::string(branch_predictor_kind_name(tpi.param));
    });

TEST(PredictorKindsSpecific, LocalHistoryBeatsBimodalOnAlternation) {
  // A strictly alternating branch defeats per-pc 2-bit counters but is
  // trivial for a local-history predictor.
  BranchPredictorConfig bimodal_cfg;
  bimodal_cfg.kind = BranchPredictorKind::kBimodal;
  BranchPredictorConfig local_cfg;
  local_cfg.kind = BranchPredictorKind::kLocalHistory;
  BranchPredictor bimodal(bimodal_cfg), local(local_cfg);
  for (int i = 0; i < 4000; ++i) {
    bimodal.execute(0x2000, i % 2 == 0);
    local.execute(0x2000, i % 2 == 0);
  }
  EXPECT_GT(bimodal.direction_misses(), local.direction_misses() * 2);
}

TEST(PredictorKindsSpecific, TournamentTracksTheBetterComponent) {
  // Alternation: gshare/local-style history wins; the tournament must not
  // be much worse than gshare alone.
  BranchPredictorConfig tour_cfg;
  tour_cfg.kind = BranchPredictorKind::kTournament;
  BranchPredictorConfig gshare_cfg;
  BranchPredictor tour(tour_cfg), gshare(gshare_cfg);
  for (int i = 0; i < 6000; ++i) {
    tour.execute(0x3000, i % 2 == 0);
    gshare.execute(0x3000, i % 2 == 0);
  }
  EXPECT_LT(tour.direction_misses(),
            gshare.direction_misses() + 1000);
}

// ---------------------------------------------------- replacement policies --

class Policies : public testing::TestWithParam<ReplacementPolicy> {};

TEST_P(Policies, BasicHitMissAccounting) {
  CacheGeometry geo{16, 4, 64};
  geo.policy = GetParam();
  Cache c(geo);
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.accesses(), 2u);
}

TEST_P(Policies, ResidentWorkingSetEventuallyStopsMissing) {
  // Half-capacity working set: LRU/FIFO/PLRU retain it exactly; random
  // may evict resident lines occasionally, so allow slack there.
  CacheGeometry geo{16, 4, 64};
  geo.policy = GetParam();
  Cache c(geo);
  const std::uint64_t lines = 32;
  for (int round = 0; round < 6; ++round)
    for (std::uint64_t l = 0; l < lines; ++l) c.access(l * 64);
  if (GetParam() == ReplacementPolicy::kRandom) {
    EXPECT_LT(c.misses(), c.accesses() / 2);
  } else {
    EXPECT_EQ(c.misses(), lines);
  }
}

TEST_P(Policies, PolicyNameIsStable) {
  EXPECT_FALSE(replacement_policy_name(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, Policies,
    testing::Values(ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
                    ReplacementPolicy::kRandom,
                    ReplacementPolicy::kTreePlru),
    [](const testing::TestParamInfo<ReplacementPolicy>& tpi) {
      std::string name(replacement_policy_name(tpi.param));
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(PolicySpecific, FifoIgnoresHitsWhenChoosingVictims) {
  // One set, 2 ways. Insert A, B; re-touch A (hit); insert C.
  // LRU evicts B (least recently used); FIFO evicts A (oldest insert).
  CacheGeometry lru_geo{1, 2, 64};
  CacheGeometry fifo_geo{1, 2, 64};
  fifo_geo.policy = ReplacementPolicy::kFifo;
  Cache lru(lru_geo), fifo(fifo_geo);
  for (Cache* c : {&lru, &fifo}) {
    c->access(0 * 64);   // A
    c->access(1 * 64);   // B
    c->access(0 * 64);   // touch A
    c->access(2 * 64);   // C evicts ...
  }
  EXPECT_TRUE(lru.probe(0 * 64));    // LRU kept A
  EXPECT_FALSE(lru.probe(1 * 64));   // ... evicted B
  EXPECT_FALSE(fifo.probe(0 * 64));  // FIFO evicted A
  EXPECT_TRUE(fifo.probe(1 * 64));   // ... kept B
}

TEST(PolicySpecific, TreePlruApproximatesLruOnSequentialFill) {
  CacheGeometry geo{1, 4, 64};
  geo.policy = ReplacementPolicy::kTreePlru;
  Cache c(geo);
  for (std::uint64_t l = 0; l < 4; ++l) c.access(l * 64);
  // Way 0 is the stalest path; inserting a 5th line must not evict the
  // most recently used line (way 3).
  c.access(4 * 64);
  EXPECT_TRUE(c.probe(3 * 64));
}

// -------------------------------------------- machine with variant configs --

TEST(MachineVariants, EveryConfigurationProducesConsistentCounts) {
  for (const auto pk :
       {BranchPredictorKind::kGshare, BranchPredictorKind::kTournament}) {
    for (const auto rp :
         {ReplacementPolicy::kLru, ReplacementPolicy::kTreePlru}) {
      MachineConfig cfg;
      cfg.branch.kind = pk;
      cfg.l1d.policy = rp;
      cfg.llc.policy = rp;
      Machine m(cfg);
      const auto app = make_benign(0, 0, 41, 3);
      m.start_run(app, 0);
      while (m.running()) {
        const auto c = m.next_interval();
        EXPECT_LE(c[Event::kBranchMisses], c[Event::kBranchInstructions]);
        EXPECT_LE(c[Event::kL1DcacheLoadMisses], c[Event::kL1DcacheLoads]);
      }
    }
  }
}

}  // namespace
}  // namespace hmd::sim

// Tests for the deterministic parallel execution layer: the ThreadPool
// itself (ordering, exception propagation, degenerate sizes) and the hard
// bit-exactness contract — serial and parallel runs of the capture
// campaign and the evaluation grid must produce identical bits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "hpc/capture.h"
#include "sim/workloads.h"
#include "support/check.h"
#include "support/parallel.h"

namespace hmd {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests.

TEST(ParseThreadCount, AcceptsPositiveIntegers) {
  EXPECT_EQ(support::parse_thread_count("1"), 1u);
  EXPECT_EQ(support::parse_thread_count("4"), 4u);
  EXPECT_EQ(support::parse_thread_count("128"), 128u);
}

TEST(ParseThreadCount, RejectsJunk) {
  EXPECT_FALSE(support::parse_thread_count(nullptr).has_value());
  EXPECT_FALSE(support::parse_thread_count("").has_value());
  EXPECT_FALSE(support::parse_thread_count("0").has_value());
  EXPECT_FALSE(support::parse_thread_count("-2").has_value());
  EXPECT_FALSE(support::parse_thread_count("4x").has_value());
  EXPECT_FALSE(support::parse_thread_count("abc").has_value());
  EXPECT_FALSE(support::parse_thread_count("99999").has_value());
}

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(support::resolve_threads(3), 3u);
  EXPECT_EQ(support::resolve_threads(1), 1u);
  EXPECT_GE(support::resolve_threads(0), 1u);  // env or hardware, at least 1
}

TEST(ThreadPool, MapReturnsResultsInInputOrder) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const auto out =
      pool.parallel_map(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SingleThreadRunsInlineInIndexOrder) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;  // no mutex needed: inline execution
  pool.parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  support::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(501);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  support::ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, PropagatesException) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("unit 37");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, LowestIndexExceptionWinsDeterministically) {
  support::ThreadPool pool(4);
  try {
    pool.parallel_for(300, [](std::size_t i) {
      if (i == 11) throw std::runtime_error("eleven");
      if (i == 250) throw std::runtime_error("two-fifty");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "eleven");
  }
}

TEST(ThreadPool, ExceptionOnSingleThreadPool) {
  support::ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   5, [](std::size_t i) {
                     if (i == 2) throw PreconditionError("boom");
                   }),
               PreconditionError);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  support::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  const auto out = pool.parallel_map(10, [](std::size_t i) { return i + 1; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  support::ThreadPool outer(2);
  const auto out = outer.parallel_map(8, [](std::size_t i) {
    support::ThreadPool inner(4);  // degrades to inline inside a worker
    std::size_t sum = 0;
    inner.parallel_for(10, [&](std::size_t j) { sum += i * 10 + j; });
    return sum;
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], i * 100 + 45);
}

// ---------------------------------------------------------------------------
// BoundedQueue: the serving layer's backpressure primitive.

TEST(BoundedQueue, FifoOrderSingleThread) {
  support::BoundedQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushRespectsCapacityAndLeavesValueIntact) {
  support::BoundedQueue<std::vector<int>> q(2);
  std::vector<int> a{1}, b{2}, c{3, 4, 5};
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));        // full: refused without blocking
  EXPECT_EQ(c, (std::vector<int>{3, 4, 5}));  // refused value untouched
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.try_push(c));         // a slot freed: accepted
}

TEST(BoundedQueue, TryPopOnEmptyReturnsNothing) {
  support::BoundedQueue<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.push(7));
  const auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenEnds) {
  support::BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // producers are refused after close...
  const auto a = q.pop();   // ...but consumers drain what was queued
  const auto b = q.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(q.pop().has_value());  // drained and closed: end of stream
  q.close();                          // idempotent
}

TEST(BoundedQueue, BackpressureBlocksProducerUntilConsumerDrains) {
  constexpr int kItems = 200;
  support::BoundedQueue<int> q(3);
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) EXPECT_TRUE(q.push(i));
    q.close();
  });
  std::vector<int> received;
  while (auto v = q.pop()) {
    EXPECT_LE(q.size(), q.capacity());  // the bound held while we slept
    received.push_back(*v);
  }
  producer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

TEST(BoundedQueue, PopBlocksUntilAnItemArrives) {
  support::BoundedQueue<int> q(1);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(q.push(42));
  });
  const auto v = q.pop();  // must wait for the producer, not spin out
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(BoundedQueue, CloseWakesABlockedConsumer) {
  support::BoundedQueue<int> q(1);
  std::optional<int> popped = std::nullopt;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    popped = q.pop();
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(done.load());
  EXPECT_FALSE(popped.has_value());
}

// ---------------------------------------------------------------------------
// Bit-exactness: serial (1 thread) vs parallel (4 threads) must agree on
// every bit of the capture, the grid metrics, and the model structures.

core::ExperimentConfig tiny_config(std::size_t threads) {
  core::ExperimentConfig cfg;
  cfg.corpus.benign_per_template = 1;
  cfg.corpus.malware_per_template = 1;
  cfg.corpus.intervals_per_app = 6;
  cfg.threads = threads;
  return cfg;
}

void expect_same_capture(const hpc::Capture& a, const hpc::Capture& b) {
  EXPECT_EQ(a.feature_names, b.feature_names);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.row_app, b.row_app);
  EXPECT_EQ(a.app_names, b.app_names);
  EXPECT_EQ(a.app_labels, b.app_labels);
  EXPECT_EQ(a.total_runs, b.total_runs);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.rows, b.rows);  // exact doubles, no tolerance
}

void expect_same_complexity(const ml::ModelComplexity& a,
                            const ml::ModelComplexity& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.comparators, b.comparators);
  EXPECT_EQ(a.adders, b.adders);
  EXPECT_EQ(a.multipliers, b.multipliers);
  EXPECT_EQ(a.table_entries, b.table_entries);
  EXPECT_EQ(a.nonlinearities, b.nonlinearities);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.inputs, b.inputs);
  ASSERT_EQ(a.children.size(), b.children.size());
  for (std::size_t i = 0; i < a.children.size(); ++i)
    expect_same_complexity(a.children[i], b.children[i]);
}

TEST(ParallelDeterminism, CaptureIsBitIdenticalAcrossThreadCounts) {
  const auto corpus = sim::build_corpus(tiny_config(1).corpus);
  hpc::CaptureConfig serial_cfg;
  serial_cfg.threads = 1;
  hpc::CaptureConfig parallel_cfg;
  parallel_cfg.threads = 4;
  const auto serial = hpc::capture_all_events(corpus, serial_cfg);
  const auto parallel = hpc::capture_all_events(corpus, parallel_cfg);
  expect_same_capture(serial, parallel);
}

TEST(ParallelDeterminism, MultiplexAndOracleCaptureMatchToo) {
  auto cfg = tiny_config(1);
  const auto corpus = sim::build_corpus(cfg.corpus);
  for (const auto protocol :
       {hpc::CaptureProtocol::kMultiplex, hpc::CaptureProtocol::kOracle}) {
    hpc::CaptureConfig serial_cfg;
    serial_cfg.protocol = protocol;
    serial_cfg.threads = 1;
    hpc::CaptureConfig parallel_cfg = serial_cfg;
    parallel_cfg.threads = 4;
    expect_same_capture(hpc::capture_all_events(corpus, serial_cfg),
                        hpc::capture_all_events(corpus, parallel_cfg));
  }
}

TEST(ParallelDeterminism, GridResultsAreBitIdenticalAcrossThreadCounts) {
  const auto serial_ctx = core::prepare_experiment(tiny_config(1));
  const auto parallel_ctx = core::prepare_experiment(tiny_config(4));

  // The contexts themselves must already agree bit-for-bit.
  expect_same_capture(serial_ctx.capture, parallel_ctx.capture);
  ASSERT_EQ(serial_ctx.ranking.size(), parallel_ctx.ranking.size());
  for (std::size_t i = 0; i < serial_ctx.ranking.size(); ++i) {
    EXPECT_EQ(serial_ctx.ranking[i].feature, parallel_ctx.ranking[i].feature);
    EXPECT_EQ(serial_ctx.ranking[i].score, parallel_ctx.ranking[i].score);
  }

  // A cheap but representative slice of the grid: 3 classifier families ×
  // 3 ensembles × {4, 2} HPCs = 18 cells.
  std::vector<core::GridCell> cells;
  for (ml::ClassifierKind kind :
       {ml::ClassifierKind::kJ48, ml::ClassifierKind::kOneR,
        ml::ClassifierKind::kBayesNet})
    for (ml::EnsembleKind ens : ml::all_ensemble_kinds())
      for (std::size_t hpcs : {4u, 2u}) cells.push_back({kind, ens, hpcs});

  const auto serial = core::run_grid(serial_ctx, cells, 1);
  const auto parallel = core::run_grid(parallel_ctx, cells, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].classifier, parallel[i].classifier);
    EXPECT_EQ(serial[i].ensemble, parallel[i].ensemble);
    EXPECT_EQ(serial[i].hpcs, parallel[i].hpcs);
    // Metrics must match to the last bit, not within a tolerance.
    EXPECT_EQ(serial[i].metrics.accuracy, parallel[i].metrics.accuracy);
    EXPECT_EQ(serial[i].metrics.auc, parallel[i].metrics.auc);
    expect_same_complexity(serial[i].complexity, parallel[i].complexity);
  }
}

TEST(ParallelDeterminism, CellScoresComeFromTheSameTrainingRun) {
  const auto ctx = core::prepare_experiment(tiny_config(2));
  const auto full = core::run_cell_full(ctx, ml::ClassifierKind::kRepTree,
                                        ml::EnsembleKind::kAdaBoost, 2);
  const auto result = core::run_cell(ctx, ml::ClassifierKind::kRepTree,
                                     ml::EnsembleKind::kAdaBoost, 2);
  const auto scores = core::run_cell_scores(ctx, ml::ClassifierKind::kRepTree,
                                            ml::EnsembleKind::kAdaBoost, 2);
  EXPECT_EQ(full.result.metrics.accuracy, result.metrics.accuracy);
  EXPECT_EQ(full.result.metrics.auc, result.metrics.auc);
  EXPECT_EQ(full.scores.scores, scores.scores);
  EXPECT_EQ(full.scores.labels, scores.labels);
  // The metrics derive from the very scores exposed for the ROC curves.
  const auto recomputed =
      ml::detector_metrics(full.scores.scores, full.scores.labels);
  EXPECT_EQ(recomputed.accuracy, full.result.metrics.accuracy);
  EXPECT_EQ(recomputed.auc, full.result.metrics.auc);
}

TEST(ParallelDeterminism, ProjectedSplitIsCachedAndStable) {
  const auto ctx = core::prepare_experiment(tiny_config(2));
  const ml::Split& first = ctx.projected_split(4);
  const ml::Split& again = ctx.projected_split(4);
  EXPECT_EQ(&first, &again);  // same materialisation, not a copy
  EXPECT_EQ(first.train.num_features(), 4u);
  EXPECT_EQ(first.test.num_features(), 4u);
  EXPECT_EQ(first.train.num_rows(), ctx.split.train.num_rows());

  // Concurrent first-touch from many threads builds each projection once
  // and never tears: all returned references must be identical.
  const auto fresh = core::prepare_experiment(tiny_config(4));
  support::ThreadPool pool(4);
  const auto refs = pool.parallel_map(16, [&](std::size_t i) {
    return &fresh.projected_split(i % 2 == 0 ? 4 : 2);
  });
  for (std::size_t i = 2; i < refs.size(); ++i)
    EXPECT_EQ(refs[i], refs[i - 2]);
}

}  // namespace
}  // namespace hmd

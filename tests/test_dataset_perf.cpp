// Columnar dataset core: view semantics, presort canonical ordering, and
// bit-identity of the columnar training path against the legacy row-copy
// path (HMD_LEGACY_DATASET=1), including across worker-thread counts.
#include <gtest/gtest.h>

#include <vector>

#include "core/hmd.h"
#include "ml/presort.h"
#include "test_util.h"

namespace hmd::ml {
namespace {

/// Force a dataset mode for one test body; restores the prior mode on exit.
class ScopedDatasetMode {
 public:
  explicit ScopedDatasetMode(DatasetMode mode) : prev_(dataset_mode()) {
    set_dataset_mode(mode);
  }
  ~ScopedDatasetMode() { set_dataset_mode(prev_); }
  ScopedDatasetMode(const ScopedDatasetMode&) = delete;
  ScopedDatasetMode& operator=(const ScopedDatasetMode&) = delete;

 private:
  DatasetMode prev_;
};

/// Small dataset with duplicated feature values (ties) and non-unit
/// weights — the regime where sweep order could diverge between paths.
Dataset tied_weighted(std::uint64_t seed) {
  Dataset base = testutil::gaussian_blobs(40, 2, 1, 1.5, seed);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < base.num_features(); ++f)
    names.push_back(base.feature_name(f));
  Dataset data(std::move(names));
  Rng rng(seed ^ 0x7157ULL);
  for (std::size_t i = 0; i < base.num_rows(); ++i) {
    std::vector<double> row(base.row(i).begin(), base.row(i).end());
    // Quantise one column hard so many rows tie exactly.
    row[0] = std::floor(row[0]);
    const double w = 0.25 + static_cast<double>(rng.below(8)) * 0.25;
    data.add_row(std::move(row), base.label(i), w, base.group(i));
  }
  return data;
}

TEST(DatasetView, SubsetSharesStorageInColumnarMode) {
  const ScopedDatasetMode mode(DatasetMode::kColumnar);
  const Dataset d = tied_weighted(1);
  const Dataset s = d.subset(std::vector<std::size_t>{5, 5, 2});
  EXPECT_EQ(s.storage_id(), d.storage_id());
  EXPECT_FALSE(s.is_identity_view());
  EXPECT_DOUBLE_EQ(s.row(0)[0], d.row(5)[0]);
  EXPECT_DOUBLE_EQ(s.row(1)[1], d.row(5)[1]);
  EXPECT_EQ(s.label(2), d.label(2));
  EXPECT_EQ(s.storage_row(2), 2u);
}

TEST(DatasetView, SubsetCopiesInLegacyMode) {
  const ScopedDatasetMode mode(DatasetMode::kLegacy);
  const Dataset d = tied_weighted(1);
  const Dataset s = d.subset(std::vector<std::size_t>{5, 5, 2});
  EXPECT_NE(s.storage_id(), d.storage_id());
  EXPECT_DOUBLE_EQ(s.row(0)[0], d.row(5)[0]);
}

TEST(DatasetView, ViewWeightsAreIsolatedFromParent) {
  const ScopedDatasetMode mode(DatasetMode::kColumnar);
  const Dataset d = tied_weighted(2);
  Dataset s = d.subset(std::vector<std::size_t>{0, 1, 2, 3});
  std::vector<double> w{9.0, 9.0, 9.0, 9.0};
  s.set_weights(std::move(w));
  EXPECT_DOUBLE_EQ(s.weight(0), 9.0);
  EXPECT_DOUBLE_EQ(d.weight(0), tied_weighted(2).weight(0));
  s.normalize_weights();
  EXPECT_NEAR(s.total_weight(), 4.0, 1e-12);
}

TEST(DatasetView, SelectFeaturesMaterialisesIdentityView) {
  const ScopedDatasetMode mode(DatasetMode::kColumnar);
  const Dataset d = tied_weighted(3);
  const Dataset sub = d.subset(std::vector<std::size_t>{7, 3, 3, 1});
  const Dataset proj = sub.select_features(std::vector<std::size_t>{2, 0});
  EXPECT_NE(proj.storage_id(), d.storage_id());
  EXPECT_TRUE(proj.is_identity_view());
  EXPECT_EQ(proj.num_features(), 2u);
  EXPECT_DOUBLE_EQ(proj.row(1)[1], sub.row(1)[0]);
  EXPECT_DOUBLE_EQ(proj.weight(2), sub.weight(2));
}

TEST(DatasetView, AddRowAfterWarmCacheCopiesOnWrite) {
  const ScopedDatasetMode mode(DatasetMode::kColumnar);
  Dataset d = tied_weighted(4);
  const Dataset view = d.subset(std::vector<std::size_t>{0, 1});
  d.warm_presort_cache();
  const std::size_t before = d.num_rows();
  d.add_row(std::vector<double>(d.num_features(), 0.5), 1, 1.0, 99);
  EXPECT_EQ(d.num_rows(), before + 1);
  EXPECT_DOUBLE_EQ(d.row(before)[0], 0.5);
  // The pre-existing view must still see the old storage, unchanged.
  EXPECT_EQ(view.num_rows(), 2u);
  EXPECT_NE(view.storage_id(), d.storage_id());
}

TEST(DatasetView, BootstrapDrawsIdenticalRowsInBothModes) {
  const Dataset d = tied_weighted(5);
  std::vector<std::vector<double>> rows[2];
  std::vector<double> weights[2];
  const DatasetMode modes[2] = {DatasetMode::kLegacy, DatasetMode::kColumnar};
  for (int m = 0; m < 2; ++m) {
    const ScopedDatasetMode mode(modes[m]);
    Rng rng(77);
    const Dataset b = d.bootstrap(rng);
    Rng wrng(78);
    const Dataset wb = d.weighted_bootstrap(wrng);
    for (std::size_t i = 0; i < b.num_rows(); ++i) {
      rows[m].emplace_back(b.row(i).begin(), b.row(i).end());
      rows[m].emplace_back(wb.row(i).begin(), wb.row(i).end());
      weights[m].push_back(b.weight(i));
      weights[m].push_back(wb.weight(i));
    }
  }
  EXPECT_EQ(rows[0], rows[1]);
  EXPECT_EQ(weights[0], weights[1]);
}

TEST(Presort, ListsMatchStableSortOrderOnTies) {
  const ScopedDatasetMode mode(DatasetMode::kColumnar);
  const Dataset d = tied_weighted(6);
  std::vector<std::size_t> rows{11, 3, 19, 3, 7, 0, 25};
  Presort columnar(d);
  const Presort::Lists lists = columnar.make_lists(rows);
  std::vector<SweepItem> fast;
  columnar.gather(rows, lists, 0, fast);

  // Reference: the legacy gather (stable sort over the node rows).
  std::vector<SweepItem> slow;
  {
    const ScopedDatasetMode legacy(DatasetMode::kLegacy);
    Presort ref(d);
    const Presort::Lists none = ref.make_lists(rows);
    ref.gather(rows, none, 0, slow);
  }
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].v, slow[i].v);
    EXPECT_EQ(fast[i].y, slow[i].y);
    EXPECT_EQ(fast[i].w, slow[i].w);
  }
}

TEST(Presort, SplitAndFilterPreserveSortedOrder) {
  const ScopedDatasetMode mode(DatasetMode::kColumnar);
  const Dataset d = tied_weighted(7);
  std::vector<std::size_t> rows(d.num_rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Presort presort(d);
  Presort::Lists lists = presort.make_lists(rows);
  const double thr = d.value(rows[0], 1);

  Presort::Lists left, right;
  presort.split_lists(lists, rows, 1, thr, &left, &right);
  for (std::size_t f = 0; f < d.num_features(); ++f) {
    ASSERT_EQ(left.per[f].size() + right.per[f].size(), rows.size());
    for (std::size_t i = 1; i < left.per[f].size(); ++i)
      EXPECT_LE(d.value(left.per[f][i - 1], f), d.value(left.per[f][i], f));
    for (std::uint32_t r : left.per[f]) EXPECT_LE(d.value(r, 1), thr);
    for (std::uint32_t r : right.per[f]) EXPECT_GT(d.value(r, 1), thr);
  }

  presort.filter_lists(&lists, 1, /*leq=*/false, thr);
  for (std::size_t f = 0; f < d.num_features(); ++f) {
    for (std::uint32_t r : lists.per[f]) EXPECT_GE(d.value(r, 1), thr);
    for (std::size_t i = 1; i < lists.per[f].size(); ++i)
      EXPECT_LE(d.value(lists.per[f][i - 1], f), d.value(lists.per[f][i], f));
  }
}

/// Every classifier family × ensemble mode must score bit-identically
/// whether trained through the columnar presort path or the legacy
/// sort-per-node path — on data with exact ties and non-unit weights.
TEST(ModePairity, AllDetectorsScoreBitIdenticallyAcrossModes) {
  const Dataset train = tied_weighted(8);
  const Dataset test = tied_weighted(9);
  for (ClassifierKind kind : all_classifier_kinds()) {
    for (EnsembleKind ensemble : all_ensemble_kinds()) {
      std::vector<double> scores[2];
      const DatasetMode modes[2] = {DatasetMode::kLegacy,
                                    DatasetMode::kColumnar};
      for (int m = 0; m < 2; ++m) {
        const ScopedDatasetMode mode(modes[m]);
        auto detector = make_detector(kind, ensemble, 42);
        detector->train(train);
        for (std::size_t i = 0; i < test.num_rows(); ++i)
          scores[m].push_back(detector->predict_proba(test.row(i)));
      }
      EXPECT_EQ(scores[0], scores[1])
          << classifier_kind_name(kind) << " / "
          << ensemble_kind_name(ensemble);
    }
  }
}

/// End-to-end grid identity: a small experiment grid evaluated under
/// legacy and columnar modes, with 1 and 4 worker threads, must produce
/// byte-identical metrics in all four combinations.
TEST(ModePairity, GridResultsInvariantToModeAndThreads) {
  core::ExperimentConfig cfg;
  cfg.corpus.benign_per_template = 1;
  cfg.corpus.malware_per_template = 1;
  cfg.corpus.intervals_per_app = 10;
  cfg.threads = 1;
  const core::ExperimentContext ctx = core::prepare_experiment(cfg);

  const std::vector<core::GridCell> cells{
      {ClassifierKind::kJ48, EnsembleKind::kAdaBoost, 4},
      {ClassifierKind::kJRip, EnsembleKind::kBagging, 4},
      {ClassifierKind::kRepTree, EnsembleKind::kAdaBoost, 2},
      {ClassifierKind::kOneR, EnsembleKind::kBagging, 2},
  };

  std::vector<std::vector<double>> outcomes;
  for (const DatasetMode mode :
       {DatasetMode::kLegacy, DatasetMode::kColumnar}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const ScopedDatasetMode scoped(mode);
      // A fresh projection cache per run so each combination rebuilds its
      // projected datasets under the mode being tested.
      core::ExperimentContext run = ctx;
      run.projections = std::make_shared<core::detail::ProjectionCache>();
      const auto results = core::run_grid(run, cells, threads);
      std::vector<double> flat;
      for (const auto& cell : results) {
        flat.push_back(cell.metrics.accuracy);
        flat.push_back(cell.metrics.auc);
      }
      outcomes.push_back(std::move(flat));
    }
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i)
    EXPECT_EQ(outcomes[0], outcomes[i]) << "combination " << i;
}

}  // namespace
}  // namespace hmd::ml

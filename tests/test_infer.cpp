// Contract tests for the batched inference engine (ml/infer.h): the flat
// backend must be BIT-identical to the scalar reference walk for every
// classifier kind and ensemble wrapping, across batch shapes, feature
// widths, and degenerate models. Identity here is EXPECT_EQ on doubles on
// purpose — the flat engine replays the scalar model's comparisons and
// accumulation order exactly, so even the last ulp must agree.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/fixed_backend.h"
#include "analysis/hls_checker.h"
#include "analysis/model_ir.h"
#include "core/online.h"
#include "ml/classifier.h"
#include "ml/infer.h"
#include "ml/j48.h"
#include "ml/jrip.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::ml {
namespace {

using testutil::gaussian_blobs;

struct Case {
  ClassifierKind kind;
  EnsembleKind ensemble;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return std::string(classifier_kind_name(info.param.kind)) + "_" +
         std::string(ensemble_kind_name(info.param.ensemble));
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (ClassifierKind k : all_classifier_kinds())
    for (EnsembleKind e : all_ensemble_kinds()) cases.push_back({k, e});
  return cases;
}

/// Scores `data` through both backend kinds and requires bitwise equality.
void expect_backends_identical(const Classifier& model, const Dataset& data) {
  const auto scalar = make_backend(model, InferBackendKind::kScalar);
  const auto flat = make_backend(model, InferBackendKind::kFlat);
  const std::vector<double> a = scalar->predict_proba_batch(data);
  const std::vector<double> b = flat->predict_proba_batch(data);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "row " << i << " diverged on backend "
                          << flat->name();
}

class InferContract : public testing::TestWithParam<Case> {};

TEST_P(InferContract, FlatMatchesScalarBitwise) {
  const auto data = gaussian_blobs(60, 3, 1, 1.4, 11);
  const auto clf = make_detector(GetParam().kind, GetParam().ensemble, 7);
  clf->train(data);
  expect_backends_identical(*clf, data);
}

TEST_P(InferContract, SingleRowBatchMatchesPredictProba) {
  const auto data = gaussian_blobs(40, 2, 0, 1.2, 5);
  const auto clf = make_detector(GetParam().kind, GetParam().ensemble, 7);
  clf->train(data);
  const auto backend = make_active_backend(*clf);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto row = data.row(i);
    EXPECT_EQ(backend->predict_proba(row), clf->predict_proba(row));
  }
}

TEST_P(InferContract, EmptyBatchIsANoOp) {
  const auto data = gaussian_blobs(40, 2, 0, 1.2, 5);
  const auto clf = make_detector(GetParam().kind, GetParam().ensemble, 7);
  clf->train(data);
  const auto backend = make_active_backend(*clf);
  std::vector<double> out;
  EXPECT_NO_THROW(backend->predict_proba_batch(
      std::span<const double>{}, data.num_features(), out));
}

TEST_P(InferContract, UntrainedModelFallsBackAndStillThrows) {
  const auto clf = make_detector(GetParam().kind, GetParam().ensemble, 7);
  const auto backend = make_backend(*clf, InferBackendKind::kFlat);
  // Nothing to lower yet, so the flat request must resolve to the generic
  // wrapper and surface the scalar "train first" error at predict time.
  EXPECT_EQ(backend->name(), "generic");
  const std::vector<double> x{0.0, 0.0};
  EXPECT_THROW(backend->predict_proba(x), PreconditionError);
}

TEST_P(InferContract, DecisionThresholdRoutesPredict) {
  const auto data = gaussian_blobs(40, 2, 0, 1.4, 9);
  const auto clf = make_detector(GetParam().kind, GetParam().ensemble, 7);
  clf->train(data);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto row = data.row(i);
    EXPECT_EQ(clf->predict(row),
              clf->predict_proba(row) >= kDecisionThreshold ? 1 : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, InferContract,
                         testing::ValuesIn(all_cases()), case_name);

// ---------------------------------------------------------------------------
// Batch-shape and feature-width coverage beyond the per-cell contract.

TEST(Infer, FeatureWidthSweepStaysBitIdentical) {
  for (std::size_t informative : {1u, 2u, 4u}) {
    for (std::size_t noise : {1u, 4u, 12u}) {
      const auto data = gaussian_blobs(50, informative, noise, 1.3,
                                       17 + informative + noise);
      for (ClassifierKind kind :
           {ClassifierKind::kJ48, ClassifierKind::kRepTree,
            ClassifierKind::kJRip, ClassifierKind::kOneR}) {
        const auto clf = make_detector(kind, EnsembleKind::kAdaBoost, 7);
        clf->train(data);
        expect_backends_identical(*clf, data);
      }
    }
  }
}

TEST(Infer, OddBatchSizesCoverLaneRemainders) {
  // 1..19 rows exercises every remainder of the 8-wide lane groups, the
  // refill drain, and the sub-group fallback paths.
  const auto data = gaussian_blobs(40, 2, 1, 1.3, 23);
  const auto clf = make_detector(ClassifierKind::kJ48,
                                 EnsembleKind::kBagging, 7);
  clf->train(data);
  const auto scalar = make_backend(*clf, InferBackendKind::kScalar);
  const auto flat = make_backend(*clf, InferBackendKind::kFlat);
  const std::size_t nf = data.num_features();
  std::vector<double> x;
  for (std::size_t rows = 1; rows <= 19; ++rows) {
    x.clear();
    for (std::size_t i = 0; i < rows; ++i) {
      const auto row = data.row((i * 7) % data.num_rows());
      x.insert(x.end(), row.begin(), row.end());
    }
    std::vector<double> a(rows), b(rows);
    scalar->predict_proba_batch(x, nf, a);
    flat->predict_proba_batch(x, nf, b);
    for (std::size_t i = 0; i < rows; ++i)
      EXPECT_EQ(a[i], b[i]) << "rows=" << rows << " i=" << i;
  }
}

TEST(Infer, RandomForestFlattens) {
  const auto data = gaussian_blobs(60, 3, 1, 1.4, 31);
  RandomForest forest(12, 0, 7);
  forest.train(data);
  EXPECT_TRUE(flat_supported(forest));
  const auto backend = make_backend(forest, InferBackendKind::kFlat);
  EXPECT_EQ(backend->name(), "flat");
  expect_backends_identical(forest, data);
}

// ---------------------------------------------------------------------------
// Degenerate models.

TEST(Infer, SingleLeafTreeIsConstant) {
  // All-one-label data trains J48 to a single leaf (depth-0 walk).
  Dataset data(std::vector<std::string>{"a", "b"});
  for (std::size_t i = 0; i < 20; ++i)
    data.add_row({static_cast<double>(i), 1.0}, 0, 1.0, i / 4);
  J48 tree;
  tree.train(data);
  const auto backend = make_backend(tree, InferBackendKind::kFlat);
  EXPECT_EQ(backend->name(), "flat");
  expect_backends_identical(tree, data);
}

TEST(Infer, SingleClassRuleListUsesDefaultOnly) {
  // JRip trained on one class learns no rules for the other: the compiled
  // decision list is just the default leaf.
  Dataset data(std::vector<std::string>{"a", "b"});
  for (std::size_t i = 0; i < 24; ++i)
    data.add_row({static_cast<double>(i % 5), 2.0}, 1, 1.0, i / 4);
  JRip rip;
  rip.train(data);
  const auto backend = make_backend(rip, InferBackendKind::kFlat);
  EXPECT_EQ(backend->name(), "flat");
  expect_backends_identical(rip, data);
}

// ---------------------------------------------------------------------------
// Backend selection plumbing.

TEST(Infer, KindNamesRoundTrip) {
  for (InferBackendKind kind :
       {InferBackendKind::kScalar, InferBackendKind::kFlat}) {
    const auto parsed = backend_kind_from_name(backend_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(backend_kind_from_name("vectorised").has_value());
  EXPECT_FALSE(backend_kind_from_name("").has_value());
}

TEST(Infer, ProcessWideSelectionDrivesMakeActiveBackend) {
  const auto data = gaussian_blobs(30, 2, 0, 1.2, 3);
  const auto clf = make_detector(ClassifierKind::kJ48,
                                 EnsembleKind::kGeneral, 7);
  clf->train(data);
  const InferBackendKind before = infer_backend_kind();
  set_infer_backend_kind(InferBackendKind::kScalar);
  EXPECT_EQ(infer_backend_kind(), InferBackendKind::kScalar);
  EXPECT_EQ(make_active_backend(*clf)->name(), "scalar");
  set_infer_backend_kind(InferBackendKind::kFlat);
  EXPECT_EQ(make_active_backend(*clf)->name(), "flat");
  set_infer_backend_kind(before);
}

TEST(Infer, ScoreDatasetIdenticalAcrossBackendKinds) {
  const auto data = gaussian_blobs(50, 3, 1, 1.4, 19);
  const auto clf = make_detector(ClassifierKind::kRepTree,
                                 EnsembleKind::kAdaBoost, 7);
  clf->train(data);
  const InferBackendKind before = infer_backend_kind();
  set_infer_backend_kind(InferBackendKind::kScalar);
  const std::vector<double> a = score_dataset(*clf, data);
  set_infer_backend_kind(InferBackendKind::kFlat);
  const std::vector<double> b = score_dataset(*clf, data);
  set_infer_backend_kind(before);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hmd::ml

// ---------------------------------------------------------------------------
// Cross-layer integration: the online detector and the fixed-point
// bit-simulation are InferenceBackend consumers too.

namespace hmd {
namespace {

TEST(InferOnline, VerdictsIdenticalAcrossBackends) {
  const auto data = testutil::gaussian_blobs(50, 4, 0, 1.4, 41);
  auto trainable = ml::make_detector(ml::ClassifierKind::kJ48,
                                     ml::EnsembleKind::kBagging, 7);
  trainable->train(data);
  const std::shared_ptr<const ml::Classifier> model(std::move(trainable));
  const std::vector<sim::Event> events{
      sim::Event::kBranchInstructions, sim::Event::kBranchMisses,
      sim::Event::kCacheMisses, sim::Event::kInstructions};

  const ml::InferBackendKind before = ml::infer_backend_kind();
  const auto run = [&](ml::InferBackendKind kind) {
    ml::set_infer_backend_kind(kind);
    core::OnlineDetector detector(model, events);
    const auto app = sim::make_malware(0, 3, 77, 8);
    return core::monitor_application(app, detector);
  };
  const auto flat = run(ml::InferBackendKind::kFlat);
  const auto scalar = run(ml::InferBackendKind::kScalar);
  ml::set_infer_backend_kind(before);

  ASSERT_EQ(flat.size(), scalar.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].score, scalar[i].score) << "interval " << i;
    EXPECT_EQ(flat[i].ewma, scalar[i].ewma) << "interval " << i;
    EXPECT_EQ(flat[i].alarm, scalar[i].alarm) << "interval " << i;
  }
}

TEST(InferFixedPoint, BackendMatchesFixedPointDecide) {
  const auto data = testutil::gaussian_blobs(40, 2, 0, 1.2, 13);
  ml::J48 tree;
  tree.train(data);
  constexpr int kBits = 8;
  const analysis::FixedPointBackend backend(tree, kBits);
  EXPECT_EQ(backend.name(), "fixed");
  const analysis::ModelIr ir = analysis::extract_ir(tree);
  std::vector<std::int32_t> encoded(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < row.size(); ++f)
      encoded[f] = analysis::fixed_point_encode(row[f], kBits);
    const double p = backend.predict_proba(row);
    EXPECT_EQ(p, analysis::fixed_point_decide(ir, encoded, kBits) == 1
                     ? 1.0
                     : 0.0)
        << "row " << i;
  }
}

}  // namespace
}  // namespace hmd

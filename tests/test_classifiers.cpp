// Parameterized contract tests that every one of the eight general
// classifiers (and their ensemble wrappings) must satisfy, plus targeted
// behavioural tests on datasets with known structure.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/classifier.h"
#include "ml/mlp.h"
#include "ml/metrics.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::ml {
namespace {

using testutil::gaussian_blobs;
using testutil::train_accuracy;
using testutil::xor_data;

struct Case {
  ClassifierKind kind;
  EnsembleKind ensemble;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return std::string(classifier_kind_name(info.param.kind)) + "_" +
         std::string(ensemble_kind_name(info.param.ensemble));
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (ClassifierKind k : all_classifier_kinds())
    for (EnsembleKind e : all_ensemble_kinds()) cases.push_back({k, e});
  return cases;
}

class ClassifierContract : public testing::TestWithParam<Case> {
 protected:
  std::unique_ptr<Classifier> make() const {
    return make_detector(GetParam().kind, GetParam().ensemble, /*seed=*/7);
  }
};

TEST_P(ClassifierContract, PredictBeforeTrainThrows) {
  const auto clf = make();
  const std::vector<double> x{0.0, 0.0};
  EXPECT_THROW(clf->predict_proba(x), PreconditionError);
}

TEST_P(ClassifierContract, SeparatesGaussianBlobs) {
  const Dataset data = gaussian_blobs(150, 2, 1, 0.8, 42);
  auto clf = make();
  clf->train(data);
  EXPECT_GE(train_accuracy(*clf, data), 0.93)
      << clf->name() << " should separate well-separated blobs";
}

TEST_P(ClassifierContract, ProbabilitiesAreValid) {
  const Dataset data = gaussian_blobs(80, 2, 1, 1.2, 43);
  auto clf = make();
  clf->train(data);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = clf->predict_proba(data.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(ClassifierContract, DeterministicGivenSeed) {
  const Dataset data = gaussian_blobs(60, 2, 1, 1.0, 44);
  auto a = make();
  auto b = make();
  a->train(data);
  b->train(data);
  for (std::size_t i = 0; i < data.num_rows(); i += 7)
    EXPECT_DOUBLE_EQ(a->predict_proba(data.row(i)),
                     b->predict_proba(data.row(i)));
}

TEST_P(ClassifierContract, HandlesSingleClassData) {
  Dataset data(std::vector<std::string>{"x"});
  for (int i = 0; i < 20; ++i)
    data.add_row({static_cast<double>(i)}, 1);
  auto clf = make();
  clf->train(data);
  EXPECT_EQ(clf->predict(data.row(0)), 1);
}

TEST_P(ClassifierContract, CloneUntrainedIsIndependent) {
  const Dataset data = gaussian_blobs(50, 1, 0, 1.0, 45);
  auto original = make();
  auto clone = original->clone_untrained();
  original->train(data);
  // The clone was made before training and must still require train().
  EXPECT_THROW(clone->predict_proba(data.row(0)), PreconditionError);
  clone->train(data);
  EXPECT_EQ(clone->name(), original->name());
}

TEST_P(ClassifierContract, ComplexityIsPopulated) {
  const Dataset data = gaussian_blobs(80, 2, 0, 1.0, 46);
  auto clf = make();
  clf->train(data);
  const ModelComplexity mc = clf->complexity();
  EXPECT_FALSE(mc.kind.empty());
  EXPECT_GE(mc.depth, 1u);
  if (GetParam().ensemble != EnsembleKind::kGeneral) {
    EXPECT_FALSE(mc.children.empty());
  }
  const std::size_t ops = mc.comparators + mc.adders + mc.multipliers +
                          mc.table_entries + mc.children.size();
  EXPECT_GT(ops, 0u);
}

TEST_P(ClassifierContract, InstanceWeightsMatter) {
  // Overlapping blobs; weighting class 1 makes the detector favour it.
  Dataset data = gaussian_blobs(100, 1, 0, 2.5, 47);
  auto neutral = make();
  neutral->train(data);

  std::vector<double> w(data.num_rows(), 1.0);
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    if (data.label(i) == 1) w[i] = 25.0;
  Dataset skewed = data;
  skewed.set_weights(std::move(w));
  auto biased = make();
  biased->train(skewed);

  // Count positive predictions over a neutral probe grid.
  auto positives = [&](const Classifier& clf) {
    int n = 0;
    for (double x = -4.0; x <= 4.0; x += 0.25)
      n += clf.predict(std::vector<double>{x});
    return n;
  };
  EXPECT_GE(positives(*biased), positives(*neutral));
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, ClassifierContract,
                         testing::ValuesIn(all_cases()), case_name);

// -------------------------------------------------- per-classifier tests --

TEST(Factory, NamesMatchWekaSpelling) {
  EXPECT_EQ(make_classifier(ClassifierKind::kBayesNet)->name(), "BayesNet");
  EXPECT_EQ(make_classifier(ClassifierKind::kJ48)->name(), "J48");
  EXPECT_EQ(make_classifier(ClassifierKind::kJRip)->name(), "JRip");
  EXPECT_EQ(make_classifier(ClassifierKind::kMlp)->name(), "MLP");
  EXPECT_EQ(make_classifier(ClassifierKind::kOneR)->name(), "OneR");
  EXPECT_EQ(make_classifier(ClassifierKind::kRepTree)->name(), "REPTree");
  EXPECT_EQ(make_classifier(ClassifierKind::kSgd)->name(), "SGD");
  EXPECT_EQ(make_classifier(ClassifierKind::kSmo)->name(), "SMO");
}

TEST(Factory, DetectorNamesIncludeEnsemble) {
  EXPECT_EQ(
      make_detector(ClassifierKind::kJ48, EnsembleKind::kAdaBoost)->name(),
      "AdaBoost(J48)");
  EXPECT_EQ(
      make_detector(ClassifierKind::kSmo, EnsembleKind::kBagging)->name(),
      "Bagging(SMO)");
}

TEST(LinearModels, CannotSolveXor) {
  // XOR has no linear boundary; hinge-loss SGD stays near chance. (The
  // greedy trees also fail at the *root* of pure XOR — C4.5's documented
  // myopia, exercised in test_trees_rules.cpp.)
  const Dataset data = xor_data(80, 0.7, 50);
  auto sgd = make_classifier(ClassifierKind::kSgd);
  sgd->train(data);
  EXPECT_LT(train_accuracy(*sgd, data), 0.75);
}

TEST(Mlp, WideHiddenLayerSolvesXor) {
  const Dataset data = xor_data(80, 0.7, 50);
  Mlp mlp(/*hidden=*/8, 0.3, 0.2, /*epochs=*/600, /*seed=*/3);
  mlp.train(data);
  EXPECT_GT(train_accuracy(mlp, data), 0.9);
}

TEST(Trees, SolveNestedBandProblem) {
  // Class 1 iff |x| < 1: the root split *does* have gain here, and the
  // solution needs two stacked thresholds — trees get it, linear can't.
  Dataset data(std::vector<std::string>{"x", "noise"});
  Rng rng(51);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    data.add_row({x, rng.gaussian(0.0, 1.0)},
                 std::fabs(x) < 1.0 ? 1 : 0);
  }
  auto tree = make_classifier(ClassifierKind::kJ48);
  tree->train(data);
  EXPECT_GT(train_accuracy(*tree, data), 0.95);

  auto sgd = make_classifier(ClassifierKind::kSgd);
  sgd->train(data);
  EXPECT_LT(train_accuracy(*sgd, data), 0.8);
}

TEST(HardOutputModels, SmoAndSgdEmitHardPosteriors) {
  const Dataset data = gaussian_blobs(60, 2, 0, 1.0, 51);
  for (ClassifierKind kind : {ClassifierKind::kSmo, ClassifierKind::kSgd}) {
    auto clf = make_classifier(kind);
    clf->train(data);
    for (std::size_t i = 0; i < data.num_rows(); i += 5) {
      const double p = clf->predict_proba(data.row(i));
      EXPECT_TRUE(p == 0.0 || p == 1.0)
          << classifier_kind_name(kind) << " emitted graded score " << p;
    }
  }
}

TEST(GradedOutputModels, EnsemblesOfHardModelsAreGraded) {
  const Dataset data = gaussian_blobs(80, 2, 0, 2.0, 52);
  auto boosted =
      make_detector(ClassifierKind::kSmo, EnsembleKind::kAdaBoost, 7);
  boosted->train(data);
  bool saw_intermediate = false;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = boosted->predict_proba(data.row(i));
    if (p > 0.05 && p < 0.95) saw_intermediate = true;
  }
  EXPECT_TRUE(saw_intermediate)
      << "boosting hard models should produce graded votes";
}

}  // namespace
}  // namespace hmd::ml

// Tests for the ensemble meta-learners: AdaBoost.M1 and Bagging.
#include <gtest/gtest.h>

#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/metrics.h"
#include "ml/oner.h"
#include "ml/reptree.h"
#include "ml/sgd.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::ml {
namespace {

using testutil::gaussian_blobs;
using testutil::train_accuracy;
using testutil::xor_data;

TEST(AdaBoost, RequiresPrototype) {
  EXPECT_THROW(AdaBoostM1(nullptr, 10), PreconditionError);
}

TEST(AdaBoost, BoostsStumpsOnADiagonalBoundary) {
  // Class = sign(x + y): one axis-aligned stump caps near 75-80%; a boosted
  // committee of stumps approximates the diagonal. (On symmetric XOR even
  // boosting axis-aligned stumps provably fails — not a useful test.)
  Dataset data(std::vector<std::string>{"x", "y"});
  Rng rng(20);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    const double y = rng.uniform(-2.0, 2.0);
    data.add_row({x, y}, x + y > 0.0 ? 1 : 0);
  }
  OneR alone;
  alone.train(data);
  const double alone_acc = train_accuracy(alone, data);
  EXPECT_LT(alone_acc, 0.85);

  AdaBoostM1 boosted(std::make_unique<OneR>(), /*iterations=*/30, 7);
  boosted.train(data);
  EXPECT_GT(train_accuracy(boosted, data), alone_acc + 0.05);
}

TEST(AdaBoost, StopsEarlyOnPerfectBaseLearner) {
  const Dataset data = gaussian_blobs(100, 1, 0, 0.3, 21);  // trivially split
  AdaBoostM1 boosted(std::make_unique<RepTree>(), 10, 7,
                     /*resample=*/false);
  boosted.train(data);
  EXPECT_LT(boosted.num_members(), 10u);
}

TEST(AdaBoost, AlphasArePositive) {
  const Dataset data = gaussian_blobs(120, 2, 0, 2.0, 22);
  AdaBoostM1 boosted(std::make_unique<OneR>(), 10, 7);
  boosted.train(data);
  for (std::size_t i = 0; i < boosted.num_members(); ++i)
    EXPECT_GT(boosted.member_alpha(i), 0.0);
}

TEST(AdaBoost, GradedVotesFromHardMembers) {
  const Dataset data = gaussian_blobs(120, 2, 0, 2.2, 23);
  AdaBoostM1 boosted(std::make_unique<Sgd>(), 10, 7);
  boosted.train(data);
  int distinct = 0;
  double last = -1.0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = boosted.predict_proba(data.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    if (p != last) ++distinct;
    last = p;
  }
  EXPECT_GT(distinct, 2);
}

TEST(AdaBoost, ComplexityAggregatesMembers) {
  const Dataset data = gaussian_blobs(100, 1, 0, 1.8, 24);
  AdaBoostM1 boosted(std::make_unique<OneR>(), 10, 7);
  boosted.train(data);
  const auto mc = boosted.complexity();
  EXPECT_EQ(mc.kind, "ensemble");
  EXPECT_EQ(mc.children.size(), boosted.num_members());
}

TEST(Bagging, RequiresPrototypeAndBags) {
  EXPECT_THROW(Bagging(nullptr, 10), PreconditionError);
  EXPECT_THROW(Bagging(std::make_unique<OneR>(), 0), PreconditionError);
}

TEST(Bagging, AveragesProbabilities) {
  const Dataset data = gaussian_blobs(120, 2, 0, 2.0, 25);
  Bagging bag(std::make_unique<RepTree>(), 10, 7);
  bag.train(data);
  // Averaged tree probabilities should be graded, not just {0, 1}.
  bool graded = false;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = bag.predict_proba(data.row(i));
    if (p > 0.2 && p < 0.8) graded = true;
  }
  EXPECT_TRUE(graded);
}

TEST(Bagging, ImprovesAucOfUnstableBase) {
  // On noisy data, bagging a high-variance tree improves ranking quality —
  // the mechanism behind the paper's Bagging rows in Table 2.
  const Dataset train = gaussian_blobs(150, 2, 2, 2.6, 26);
  const Dataset test = gaussian_blobs(150, 2, 2, 2.6, 27);

  RepTree tree;
  tree.train(train);
  const double tree_auc = evaluate_detector(tree, test).auc;

  Bagging bag(std::make_unique<RepTree>(), 10, 7);
  bag.train(train);
  const double bag_auc = evaluate_detector(bag, test).auc;
  EXPECT_GT(bag_auc, tree_auc - 0.02);  // never materially worse
}

TEST(Bagging, MembersDiffer) {
  const Dataset data = gaussian_blobs(100, 1, 0, 2.0, 28);
  Bagging bag(std::make_unique<RepTree>(), 5, 7);
  bag.train(data);
  // At least two members disagree somewhere (they saw different bootstraps).
  bool disagreement = false;
  for (std::size_t i = 0; i < data.num_rows() && !disagreement; ++i) {
    const int first = bag.member(0).predict(data.row(i));
    for (std::size_t m = 1; m < bag.num_members(); ++m)
      if (bag.member(m).predict(data.row(i)) != first) disagreement = true;
  }
  EXPECT_TRUE(disagreement);
}

TEST(Bagging, DeterministicGivenSeed) {
  const Dataset data = gaussian_blobs(80, 2, 0, 1.6, 29);
  Bagging a(std::make_unique<RepTree>(), 5, 7);
  Bagging b(std::make_unique<RepTree>(), 5, 7);
  a.train(data);
  b.train(data);
  for (std::size_t i = 0; i < data.num_rows(); i += 9)
    EXPECT_DOUBLE_EQ(a.predict_proba(data.row(i)),
                     b.predict_proba(data.row(i)));
}

}  // namespace
}  // namespace hmd::ml

// Unit tests for the feature-reduction stage: correlation & info-gain
// attribute evaluation, ranking, redundancy pruning.
#include <gtest/gtest.h>

#include "ml/feature_selection.h"
#include "support/check.h"
#include "support/rng.h"

namespace hmd::ml {
namespace {

/// Columns: f0 = strong signal, f1 = weak signal, f2 = pure noise,
/// f3 = duplicate of f0 (for redundancy tests).
Dataset synthetic(std::uint64_t seed = 1, std::size_t n = 400) {
  Dataset d(std::vector<std::string>{"strong", "weak", "noise", "dup"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.chance(0.5) ? 1 : 0;
    const double strong = label * 3.0 + rng.gaussian(0.0, 1.0);
    const double weak = label * 0.7 + rng.gaussian(0.0, 1.0);
    const double noise = rng.gaussian(0.0, 1.0);
    d.add_row({strong, weak, noise, strong + 0.001 * rng.gaussian(0, 1)},
              label);
  }
  return d;
}

TEST(CorrelationRanking, OrdersBySignalStrength) {
  const auto ranking = correlation_ranking(synthetic());
  // strong (or its duplicate) first, noise last.
  EXPECT_TRUE(ranking[0].feature == 0 || ranking[0].feature == 3);
  EXPECT_EQ(ranking.back().feature, 2u);
  for (std::size_t i = 1; i < ranking.size(); ++i)
    EXPECT_LE(ranking[i].score, ranking[i - 1].score);
}

TEST(CorrelationRanking, ScoresWithinUnitInterval) {
  for (const auto& fs : correlation_ranking(synthetic(7))) {
    EXPECT_GE(fs.score, 0.0);
    EXPECT_LE(fs.score, 1.0);
  }
}

TEST(InfoGainRanking, AgreesOnStrongVsNoise) {
  const auto ranking = info_gain_ranking(synthetic(3));
  EXPECT_TRUE(ranking[0].feature == 0 || ranking[0].feature == 3);
  EXPECT_EQ(ranking.back().feature, 2u);
  EXPECT_NEAR(ranking.back().score, 0.0, 1e-9);
}

TEST(TopK, TakesPrefixInOrder) {
  const auto ranking = correlation_ranking(synthetic(4));
  const auto top2 = top_k_features(ranking, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], ranking[0].feature);
  EXPECT_EQ(top2[1], ranking[1].feature);
}

TEST(TopK, BoundsChecked) {
  const auto ranking = correlation_ranking(synthetic(5));
  EXPECT_THROW(top_k_features(ranking, 0), PreconditionError);
  EXPECT_THROW(top_k_features(ranking, ranking.size() + 1),
               PreconditionError);
}

TEST(PruneRedundant, DropsTheDuplicateKeepsTheRest) {
  const Dataset d = synthetic(6);
  const auto ranking = correlation_ranking(d);
  const auto pruned = prune_redundant(d, ranking, 0.98);
  // dup correlates ~1.0 with strong: exactly one of them survives.
  std::size_t strong_like = 0;
  for (const auto& fs : pruned)
    if (fs.feature == 0 || fs.feature == 3) ++strong_like;
  EXPECT_EQ(strong_like, 1u);
  EXPECT_EQ(pruned.size(), 3u);  // strong-like, weak, noise
}

TEST(PruneRedundant, ThresholdOneKeepsEverything) {
  const Dataset d = synthetic(8);
  const auto ranking = correlation_ranking(d);
  EXPECT_EQ(prune_redundant(d, ranking, 1.0).size(), ranking.size());
}

}  // namespace
}  // namespace hmd::ml

// Tests for the capture checkpoint/resume subsystem: fingerprint purity
// and sensitivity, interrupted-then-resumed bit-identity across thread
// counts, quarantined-app-only re-execution, and loud rejection of
// mismatched, corrupted, or truncated checkpoint state.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hpc/capture.h"
#include "hpc/checkpoint.h"
#include "sim/workloads.h"
#include "support/check.h"

namespace hmd {
namespace {

namespace fs = std::filesystem;

sim::CorpusConfig tiny_corpus() {
  sim::CorpusConfig cfg;
  cfg.benign_per_template = 1;
  cfg.malware_per_template = 1;
  cfg.intervals_per_app = 6;
  return cfg;
}

/// 12 of the 44 events — 3 multi-run batches on the default 4-counter PMU,
/// enough to exercise batch alignment while keeping the tests fast.
std::vector<sim::Event> few_events() {
  const auto all = sim::all_events();
  return {all.begin(), all.begin() + 12};
}

/// Fault mix that quarantines a deterministic subset of the tiny corpus
/// (some batches exhaust their retries) without quarantining everything.
hpc::FaultConfig quarantining_faults(std::uint64_t seed = 21) {
  hpc::FaultConfig f;
  f.run_crash_rate = 0.5;
  f.sample_drop_rate = 0.05;
  f.counter_glitch_rate = 0.02;
  f.truncate_rate = 0.05;
  f.seed = seed;
  return f;
}

/// Fresh scratch directory under the system temp dir; removed up front so
/// reruns never see a stale campaign.
std::string scratch_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / "hmd_checkpoint_tests" / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string app_file(const std::string& dir, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "app_%05zu.ckpt", index);
  return (fs::path(dir) / name).string();
}

void expect_same_capture(const hpc::Capture& a, const hpc::Capture& b) {
  EXPECT_EQ(a.feature_names, b.feature_names);
  EXPECT_EQ(a.rows, b.rows);  // exact doubles, no tolerance
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.row_app, b.row_app);
  EXPECT_EQ(a.app_names, b.app_names);
  EXPECT_EQ(a.app_labels, b.app_labels);
  EXPECT_EQ(a.total_runs, b.total_runs);
  EXPECT_EQ(a.report.degraded_events, b.report.degraded_events);
  ASSERT_EQ(a.report.apps.size(), b.report.apps.size());
  for (std::size_t i = 0; i < a.report.apps.size(); ++i) {
    const hpc::AppCaptureReport& x = a.report.apps[i];
    const hpc::AppCaptureReport& y = b.report.apps[i];
    EXPECT_EQ(x.attempts, y.attempts) << "app " << i;
    EXPECT_EQ(x.retries, y.retries) << "app " << i;
    EXPECT_EQ(x.crashes, y.crashes) << "app " << i;
    EXPECT_EQ(x.truncated_runs, y.truncated_runs) << "app " << i;
    EXPECT_EQ(x.aligned_intervals, y.aligned_intervals) << "app " << i;
    EXPECT_EQ(x.backoff_ms, y.backoff_ms) << "app " << i;
    EXPECT_EQ(x.cells, y.cells) << "app " << i;
    EXPECT_EQ(x.dropped_cells, y.dropped_cells) << "app " << i;
    EXPECT_EQ(x.glitched_cells, y.glitched_cells) << "app " << i;
    EXPECT_EQ(x.imputed_cells, y.imputed_cells) << "app " << i;
    EXPECT_EQ(x.quarantined, y.quarantined) << "app " << i;
  }
}

// ---------------------------------------------------------------------------
// Fingerprint: pure, output-sensitive, output-invariant-insensitive.

TEST(CheckpointFingerprint, PureAndSensitiveToCaptureInputs) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  hpc::CaptureConfig cfg;
  cfg.faults = quarantining_faults();

  const auto base = hpc::capture_fingerprint(corpus, events, cfg);
  EXPECT_EQ(base.hash, hpc::capture_fingerprint(corpus, events, cfg).hash);
  EXPECT_EQ(base.protocol, "multi-run");
  EXPECT_EQ(base.num_events, events.size());
  EXPECT_EQ(base.num_apps, corpus.size());

  // Anything that can change a captured bit must change the hash.
  hpc::CaptureConfig other_seed = cfg;
  other_seed.faults.seed = cfg.faults.seed + 1;
  EXPECT_NE(base.hash,
            hpc::capture_fingerprint(corpus, events, other_seed).hash);

  hpc::CaptureConfig other_rates = cfg;
  other_rates.faults.run_crash_rate += 0.01;
  EXPECT_NE(base.hash,
            hpc::capture_fingerprint(corpus, events, other_rates).hash);

  hpc::CaptureConfig other_retries = cfg;
  other_retries.max_retries += 1;
  EXPECT_NE(base.hash,
            hpc::capture_fingerprint(corpus, events, other_retries).hash);

  auto fewer_events = events;
  fewer_events.pop_back();
  EXPECT_NE(base.hash,
            hpc::capture_fingerprint(corpus, fewer_events, cfg).hash);

  auto corpus_cfg = tiny_corpus();
  corpus_cfg.seed = 2019;
  const auto other_corpus = sim::build_corpus(corpus_cfg);
  EXPECT_NE(base.hash,
            hpc::capture_fingerprint(other_corpus, events, cfg).hash);
}

TEST(CheckpointFingerprint, IgnoresOutputInvariantSettings) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  hpc::CaptureConfig cfg;
  cfg.faults = quarantining_faults();
  const auto base = hpc::capture_fingerprint(corpus, events, cfg);

  // The determinism contract makes these settings output-invariant, so two
  // sessions differing only here must be resumable into one campaign.
  hpc::CaptureConfig variant = cfg;
  variant.threads = 7;
  variant.checkpoint_dir = "somewhere/else";
  variant.resume = true;
  EXPECT_EQ(base.hash, hpc::capture_fingerprint(corpus, events, variant).hash);
}

// ---------------------------------------------------------------------------
// Round-trip bit-identity.

TEST(CheckpointResume, InterruptedCampaignResumesBitIdentically) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  hpc::CaptureConfig cfg;
  cfg.faults = quarantining_faults();
  cfg.threads = 1;

  const auto uninterrupted = hpc::capture_corpus(corpus, events, cfg);
  const std::size_t quarantined = uninterrupted.report.quarantined_apps();
  ASSERT_GT(quarantined, 0u) << "fault mix must quarantine some apps";
  ASSERT_LT(quarantined, corpus.size());

  // A resumed campaign must be bit-identical at any thread count: the
  // checkpointed state is shared, only the re-execution schedule differs.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string dir = scratch_dir(
        "bit_identity_t" + std::to_string(threads));
    hpc::CaptureConfig ckpt_cfg = cfg;
    ckpt_cfg.checkpoint_dir = dir;
    (void)hpc::capture_corpus(corpus, events, ckpt_cfg);

    // "Kill" the campaign: one completed app's checkpoint disappears (as if
    // the session died before writing it). Quarantined apps re-execute by
    // design, no deletion needed.
    std::size_t victim = corpus.size();
    for (std::size_t a = 0; a < corpus.size(); ++a) {
      if (!uninterrupted.report.apps[a].quarantined) {
        victim = a;
        break;
      }
    }
    ASSERT_LT(victim, corpus.size());
    ASSERT_TRUE(fs::remove(app_file(dir, victim)));

    hpc::CaptureConfig resume_cfg = ckpt_cfg;
    resume_cfg.resume = true;
    resume_cfg.threads = threads;
    hpc::CaptureResumeStats stats;
    const auto resumed =
        hpc::capture_corpus(corpus, events, resume_cfg, &stats);

    expect_same_capture(uninterrupted, resumed);
    EXPECT_TRUE(stats.checkpointing);
    EXPECT_TRUE(stats.resumed);
    EXPECT_EQ(stats.executed_apps, quarantined + 1);  // victim + quarantined
    EXPECT_EQ(stats.loaded_apps, corpus.size() - quarantined - 1);
    EXPECT_EQ(stats.loaded_apps + stats.executed_apps, corpus.size());
    EXPECT_EQ(stats.loaded_runs + stats.session_runs, resumed.total_runs);
  }
}

TEST(CheckpointResume, UntouchedAppsRunZeroContainersOnResume) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  const std::string dir = scratch_dir("zero_reexecution");

  hpc::CaptureConfig cfg;  // fault-free: nothing quarantined
  cfg.checkpoint_dir = dir;
  const auto first = hpc::capture_corpus(corpus, events, cfg);

  hpc::CaptureConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  hpc::CaptureResumeStats stats;
  const auto resumed = hpc::capture_corpus(corpus, events, resume_cfg, &stats);

  expect_same_capture(first, resumed);
  EXPECT_EQ(stats.loaded_apps, corpus.size());
  EXPECT_EQ(stats.executed_apps, 0u);
  EXPECT_EQ(stats.session_runs, 0u);  // not a single container re-run
  EXPECT_EQ(stats.loaded_runs, first.total_runs);
}

TEST(CheckpointResume, OnlyQuarantinedAppsReExecute) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  const std::string dir = scratch_dir("quarantine_only");

  hpc::CaptureConfig cfg;
  cfg.faults = quarantining_faults();
  cfg.checkpoint_dir = dir;
  const auto first = hpc::capture_corpus(corpus, events, cfg);
  const std::size_t quarantined = first.report.quarantined_apps();
  ASSERT_GT(quarantined, 0u);

  hpc::CaptureConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  hpc::CaptureResumeStats stats;
  const auto resumed = hpc::capture_corpus(corpus, events, resume_cfg, &stats);

  // Quarantine is retryable, so exactly the quarantined apps re-execute;
  // with an unchanged fingerprint they reproduce the same outcome, keeping
  // the merged campaign bit-identical and total_runs the honest sum.
  expect_same_capture(first, resumed);
  EXPECT_EQ(stats.executed_apps, quarantined);
  EXPECT_EQ(stats.loaded_apps, corpus.size() - quarantined);
  EXPECT_GT(stats.session_runs, 0u);
  EXPECT_EQ(stats.loaded_runs + stats.session_runs, resumed.total_runs);
}

TEST(CheckpointResume, StrayTmpFilesAreIgnored) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  const std::string dir = scratch_dir("stray_tmp");

  hpc::CaptureConfig cfg;
  cfg.checkpoint_dir = dir;
  const auto first = hpc::capture_corpus(corpus, events, cfg);

  // A crash mid-write leaves at worst "<name>.tmp"; the loader must skip it.
  std::ofstream stray(app_file(dir, 2) + ".tmp");
  stray << "half-written garbage";
  stray.close();

  hpc::CaptureConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  const auto resumed = hpc::capture_corpus(corpus, events, resume_cfg);
  expect_same_capture(first, resumed);
}

// ---------------------------------------------------------------------------
// Rejection paths: mismatch, corruption, misuse.

TEST(CheckpointReject, FingerprintMismatchIsAHardError) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  const std::string dir = scratch_dir("fingerprint_mismatch");

  hpc::CaptureConfig cfg;
  cfg.faults = quarantining_faults(21);
  cfg.checkpoint_dir = dir;
  (void)hpc::capture_corpus(corpus, events, cfg);

  // Same directory, different fault seed: silently reusing the stored rows
  // would fabricate a campaign that never ran.
  hpc::CaptureConfig other = cfg;
  other.resume = true;
  other.faults.seed = 22;
  EXPECT_THROW(hpc::capture_corpus(corpus, events, other),
               hpc::CheckpointError);

  // Different corpus (one more interval per app) — same rejection.
  auto bigger = tiny_corpus();
  bigger.intervals_per_app = 7;
  const auto other_corpus = sim::build_corpus(bigger);
  hpc::CaptureConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  EXPECT_THROW(hpc::capture_corpus(other_corpus, events, resume_cfg),
               hpc::CheckpointError);
}

TEST(CheckpointReject, CorruptedAppFileIsAHardError) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  const std::string dir = scratch_dir("corrupted_app");

  hpc::CaptureConfig cfg;
  cfg.checkpoint_dir = dir;
  (void)hpc::capture_corpus(corpus, events, cfg);

  std::ofstream garbled(app_file(dir, 1), std::ios::trunc);
  garbled << "not a checkpoint at all\n";
  garbled.close();

  hpc::CaptureConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  EXPECT_THROW(hpc::capture_corpus(corpus, events, resume_cfg),
               hpc::CheckpointError);
}

TEST(CheckpointReject, TruncatedAppFileIsAHardError) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  const std::string dir = scratch_dir("truncated_app");

  hpc::CaptureConfig cfg;
  cfg.checkpoint_dir = dir;
  (void)hpc::capture_corpus(corpus, events, cfg);

  // Chop the file mid-way: valid header, missing rows + end marker.
  const std::string path = app_file(dir, 3);
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(content.size(), 64u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content.substr(0, content.size() / 2);
  out.close();

  hpc::CaptureConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  EXPECT_THROW(hpc::capture_corpus(corpus, events, resume_cfg),
               hpc::CheckpointError);
}

TEST(CheckpointReject, FreshCampaignRefusesAnExistingManifest) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  const std::string dir = scratch_dir("fresh_refusal");

  hpc::CaptureConfig cfg;
  cfg.checkpoint_dir = dir;
  (void)hpc::capture_corpus(corpus, events, cfg);
  // Starting "fresh" over a live campaign could mix stale app files into a
  // new run; the caller must resume or remove the directory explicitly.
  EXPECT_THROW(hpc::capture_corpus(corpus, events, cfg),
               hpc::CheckpointError);
}

TEST(CheckpointReject, ResumeWithoutManifestIsAHardError) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  const auto events = few_events();
  hpc::CaptureConfig cfg;
  cfg.checkpoint_dir = scratch_dir("no_manifest");
  cfg.resume = true;
  EXPECT_THROW(hpc::capture_corpus(corpus, events, cfg),
               hpc::CheckpointError);
}

TEST(CheckpointReject, ResumeRequiresACheckpointDir) {
  const auto corpus = sim::build_corpus(tiny_corpus());
  hpc::CaptureConfig cfg;
  cfg.resume = true;  // no checkpoint_dir
  EXPECT_THROW(hpc::capture_corpus(corpus, few_events(), cfg),
               PreconditionError);
}

}  // namespace
}  // namespace hmd

// End-to-end tests of the deployment path: feature selection from the
// 44-event study, deployment-shaped retraining, online monitoring of
// unseen applications.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/online.h"
#include "support/check.h"

namespace hmd::core {
namespace {

struct DeploymentFixture : public testing::Test {
  static const ExperimentContext& ctx() {
    static const ExperimentContext context = [] {
      ExperimentConfig cfg;
      cfg.corpus.benign_per_template = 2;
      cfg.corpus.malware_per_template = 2;
      cfg.corpus.intervals_per_app = 8;
      return prepare_experiment(cfg);
    }();
    return context;
  }

  static std::vector<sim::Event> top_events(std::size_t k) {
    std::vector<sim::Event> events;
    for (std::size_t f : ctx().top_features(k))
      events.push_back(sim::event_from_name(ctx().full.feature_name(f)));
    return events;
  }
};

TEST_F(DeploymentFixture, TopEventsFitTheFourCounterPmu) {
  const auto events = top_events(4);
  hpc::Pmu pmu;
  EXPECT_NO_THROW(pmu.program(events));
}

TEST_F(DeploymentFixture, DeploymentModelTrainsAndScores) {
  const auto events = top_events(4);
  const auto corpus = sim::build_corpus(ctx().config.corpus);
  const auto model = train_deployment_model(
      corpus, events, ml::ClassifierKind::kJ48, ml::EnsembleKind::kBagging,
      ctx().config.capture, 7);
  ASSERT_NE(model, nullptr);
  const std::vector<double> x(events.size(), 100.0);
  const double p = model->predict_proba(x);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST_F(DeploymentFixture, DeploymentCaptureIsSingleRunPerApp) {
  const auto events = top_events(4);
  const auto corpus = std::vector<sim::AppProfile>{
      sim::make_benign(0, 0, 5, 4), sim::make_malware(0, 0, 5, 4)};
  const auto capture = hpc::capture_corpus(corpus, events, {});
  EXPECT_EQ(capture.total_runs, corpus.size());  // 4 events -> one batch
}

TEST_F(DeploymentFixture, OnlineDetectorSeparatesClearCases) {
  const auto events = top_events(4);
  const auto corpus = sim::build_corpus(ctx().config.corpus);
  const auto model = train_deployment_model(
      corpus, events, ml::ClassifierKind::kJ48, ml::EnsembleKind::kBagging,
      ctx().config.capture, 7);

  OnlineDetector detector(model, events);
  // An unseen variant of an easy malware family (synflood, template 1)
  // and of an easy benign kernel (sha, template 2).
  const auto mal = sim::make_malware(1, 9, 999, 12);
  const auto ben = sim::make_benign(2, 9, 999, 12);

  const auto mal_timeline = monitor_application(mal, detector);
  double mal_mean = 0.0;
  for (const auto& v : mal_timeline) mal_mean += v.score;
  mal_mean /= static_cast<double>(mal_timeline.size());

  detector.reset();
  const auto ben_timeline = monitor_application(ben, detector);
  double ben_mean = 0.0;
  for (const auto& v : ben_timeline) ben_mean += v.score;
  ben_mean /= static_cast<double>(ben_timeline.size());

  EXPECT_GT(mal_mean, ben_mean + 0.2)
      << "synflood should score clearly above sha";
}

TEST_F(DeploymentFixture, MonitorIsDeterministicPerRunIndex) {
  const auto events = top_events(2);
  const auto corpus = sim::build_corpus(ctx().config.corpus);
  const auto model = train_deployment_model(
      corpus, events, ml::ClassifierKind::kOneR, ml::EnsembleKind::kGeneral,
      ctx().config.capture, 7);
  OnlineDetector a(model, events), b(model, events);
  const auto app = sim::make_benign(0, 9, 321, 6);
  const auto ta = monitor_application(app, a);
  const auto tb = monitor_application(app, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_DOUBLE_EQ(ta[i].score, tb[i].score);
}

}  // namespace
}  // namespace hmd::core

// Contract tests for the adversarial counter-perturbation layer
// (src/attack/): the budget box must be respected exactly (non-negative,
// per-event capped, integer-aligned, L1-coupled), the evasion search must
// be deterministic and monotone (an attacked score is never above the
// clean one), dataset attacks must be bit-identical at any thread count,
// and both defences — adversarial retraining and margin-gated voting —
// must honour their documented semantics offline and online.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/adversary.h"
#include "attack/attack_eval.h"
#include "attack/defense.h"
#include "core/online.h"
#include "ml/classifier.h"
#include "ml/infer.h"
#include "ml/metrics.h"
#include "sim/workloads.h"
#include "support/rng.h"
#include "test_util.h"

namespace hmd::attack {
namespace {

/// Counter-shaped data: non-negative integer readings, class 0 low-rate,
/// class 1 (malware) high-rate — the attack layer's native habitat, unlike
/// the signed gaussian_blobs the classifier tests use.
ml::Dataset counter_blobs(std::size_t n_per_class, std::size_t num_features,
                          std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < num_features; ++f)
    names.push_back("e" + std::to_string(f));
  ml::Dataset data(std::move(names));
  Rng rng(seed);
  for (int cls = 0; cls <= 1; ++cls) {
    const double centre = cls == 0 ? 200.0 : 800.0;
    for (std::size_t i = 0; i < n_per_class; ++i) {
      std::vector<double> row;
      for (std::size_t f = 0; f < num_features; ++f)
        row.push_back(std::floor(std::max(0.0, rng.gaussian(centre, 120.0))));
      data.add_row(std::move(row), cls, 1.0,
                   static_cast<std::size_t>(cls) * 1000 + i / 8);
    }
  }
  return data;
}

std::unique_ptr<ml::Classifier> trained_detector(
    const ml::Dataset& data, ml::EnsembleKind ensemble = ml::EnsembleKind::kAdaBoost) {
  auto clf = ml::make_detector(ml::ClassifierKind::kJ48, ensemble, 7);
  clf->train(data);
  return clf;
}

// ---------------------------------------------------------------------------
// Budget model.

TEST(Budget, EventCapCombinesAbsoluteAndRelative) {
  const PerturbationBudget budget{8.0, 0.05, 0.0, true};
  EXPECT_DOUBLE_EQ(budget.event_cap(0.0), 8.0);
  EXPECT_DOUBLE_EQ(budget.event_cap(1000.0), 58.0);
  EXPECT_FALSE(budget.empty());
  EXPECT_TRUE((PerturbationBudget{0.0, 0.0, 0.0, true}).empty());
}

TEST(Budget, DescribeMentionsTheLattice) {
  PerturbationBudget budget{8.0, 0.05, 0.0, true};
  EXPECT_NE(describe_budget(budget).find("integer"), std::string::npos);
  budget.integer_counts = false;
  EXPECT_NE(describe_budget(budget).find("continuous"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The evasion search's hard invariants.

TEST(Adversary, PerturbationsStayInsideTheBudgetBox) {
  const auto data = counter_blobs(40, 4, 11);
  const auto clf = trained_detector(data);
  const PerturbationBudget budget{8.0, 0.05, 0.0, true};
  const Adversary adversary(*clf, budget);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (data.label(i) != 1) continue;
    const auto row = data.row(i);
    const EvasionResult ev = adversary.evade(row, i);
    ASSERT_EQ(ev.x.size(), row.size());
    double l1 = 0.0;
    for (std::size_t f = 0; f < row.size(); ++f) {
      const double delta = std::abs(ev.x[f] - row[f]);
      EXPECT_LE(delta, budget.event_cap(row[f]) + 1e-9)
          << "row " << i << " feature " << f;
      EXPECT_GE(ev.x[f], 0.0) << "counters cannot go negative";
      EXPECT_EQ(ev.x[f], std::floor(ev.x[f]))
          << "integer_counts demands lattice points";
      l1 += delta;
    }
    EXPECT_NEAR(ev.spent, l1, 1e-9);
  }
}

TEST(Adversary, TotalBudgetCapsTheL1Spend) {
  const auto data = counter_blobs(40, 4, 11);
  const auto clf = trained_detector(data);
  const PerturbationBudget budget{50.0, 0.10, 30.0, true};
  const Adversary adversary(*clf, budget);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (data.label(i) != 1) continue;
    const EvasionResult ev = adversary.evade(data.row(i), i);
    double l1 = 0.0;
    for (std::size_t f = 0; f < ev.x.size(); ++f)
      l1 += std::abs(ev.x[f] - data.row(i)[f]);
    EXPECT_LE(l1, budget.total_budget + 1e-9) << "row " << i;
  }
}

TEST(Adversary, AttackedScoreNeverAboveClean) {
  const auto data = counter_blobs(40, 4, 13);
  const auto clf = trained_detector(data);
  const Adversary adversary(*clf, {8.0, 0.05, 0.0, true});
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const EvasionResult ev = adversary.evade(data.row(i), i);
    EXPECT_LE(ev.score, ev.clean_score) << "row " << i;
    if (ev.evaded) {
      EXPECT_GE(ev.clean_score, ml::kDecisionThreshold);
      EXPECT_LT(ev.score, ml::kDecisionThreshold);
    }
  }
}

TEST(Adversary, EvadeIsAPureFunctionOfSeedAndStream) {
  const auto data = counter_blobs(30, 4, 17);
  const auto clf = trained_detector(data);
  const Adversary adversary(*clf, {8.0, 0.05, 0.0, true});
  const auto row = data.row(data.num_rows() - 1);
  const EvasionResult a = adversary.evade(row, 42);
  const EvasionResult b = adversary.evade(row, 42);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.spent, b.spent);
}

TEST(Adversary, EmptyBudgetIsTheIdentity) {
  const auto data = counter_blobs(30, 4, 19);
  const auto clf = trained_detector(data);
  const Adversary adversary(*clf, {0.0, 0.0, 0.0, true});
  const auto row = data.row(0);
  const EvasionResult ev = adversary.evade(row, 0);
  EXPECT_EQ(ev.x, std::vector<double>(row.begin(), row.end()));
  EXPECT_EQ(ev.score, ev.clean_score);
  EXPECT_EQ(ev.spent, 0.0);
  EXPECT_FALSE(ev.evaded);
}

// ---------------------------------------------------------------------------
// Dataset-level attacks.

TEST(AttackDataset, BitIdenticalAcrossThreadCounts) {
  const auto data = counter_blobs(40, 4, 23);
  const auto clf = trained_detector(data);
  const PerturbationBudget budget{8.0, 0.05, 0.0, true};
  const DatasetAttackResult one =
      attack_dataset(*clf, data, budget, {}, 0xADE5A17ULL, 1);
  const DatasetAttackResult four =
      attack_dataset(*clf, data, budget, {}, 0xADE5A17ULL, 4);
  EXPECT_EQ(one.attacked_scores, four.attacked_scores);
  EXPECT_EQ(one.perturbed, four.perturbed);
  EXPECT_EQ(one.attacked_rows, four.attacked_rows);
  EXPECT_EQ(one.evaded, four.evaded);
}

TEST(AttackDataset, BenignRowsPassThroughUntouched) {
  const auto data = counter_blobs(40, 4, 29);
  const auto clf = trained_detector(data);
  const DatasetAttackResult attack =
      attack_dataset(*clf, data, {8.0, 0.05, 0.0, true}, {}, 1, 1);
  ASSERT_EQ(attack.clean_scores.size(), data.num_rows());
  std::size_t malware = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (data.label(i) == 0) {
      EXPECT_EQ(attack.attacked_scores[i], attack.clean_scores[i]);
    } else {
      ++malware;
      EXPECT_LE(attack.attacked_scores[i], attack.clean_scores[i]);
    }
  }
  EXPECT_EQ(attack.malware_rows, malware);
  EXPECT_EQ(attack.attacked_rows.size(), malware);
  for (const std::size_t row : attack.attacked_rows)
    EXPECT_EQ(data.label(row), 1);
}

TEST(AttackDataset, TransferToTheSameModelReproducesAttackedScores) {
  const auto data = counter_blobs(40, 4, 31);
  const auto clf = trained_detector(data);
  const DatasetAttackResult attack =
      attack_dataset(*clf, data, {8.0, 0.05, 0.0, true}, {}, 1, 1);
  EXPECT_EQ(transfer_scores(*clf, data, attack), attack.attacked_scores);
}

TEST(AttackDataset, AttackedAccuracyNeverAboveClean) {
  const auto data = counter_blobs(40, 4, 37);
  const auto clf = trained_detector(data);
  const DatasetAttackResult attack =
      attack_dataset(*clf, data, {8.0, 0.10, 0.0, true}, {}, 1, 1);
  const ml::DetectorMetrics clean = metrics_of(data, attack.clean_scores);
  const ml::DetectorMetrics attacked = metrics_of(data, attack.attacked_scores);
  EXPECT_LE(attacked.accuracy, clean.accuracy);
}

// ---------------------------------------------------------------------------
// Ensemble margins — the signal the vote gate runs on.

TEST(Margin, DefaultIsDistanceFromTheDecisionBoundary) {
  const auto data = counter_blobs(30, 3, 41);
  const auto clf = trained_detector(data, ml::EnsembleKind::kGeneral);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto row = data.row(i);
    EXPECT_EQ(clf->margin(row),
              std::abs(2.0 * clf->predict_proba(row) - 1.0));
  }
}

TEST(Margin, EnsembleAgreementStaysInUnitRange) {
  const auto data = counter_blobs(30, 3, 43);
  for (const ml::EnsembleKind ensemble :
       {ml::EnsembleKind::kAdaBoost, ml::EnsembleKind::kBagging}) {
    const auto clf = trained_detector(data, ensemble);
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      const double m = clf->margin(data.row(i));
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Defences.

TEST(Defense, AugmentAppendsPerturbedMalwareCopyOnWrite) {
  const auto train = counter_blobs(40, 4, 47);
  const auto clf = trained_detector(train);
  const DatasetAttackResult attack =
      attack_dataset(*clf, train, {8.0, 0.05, 0.0, true}, {}, 1, 1);
  // Snapshot the clean split before augmenting.
  std::vector<double> before;
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    const auto row = train.row(i);
    before.insert(before.end(), row.begin(), row.end());
  }

  const ml::Dataset augmented = augment_with_perturbed(train, attack);
  ASSERT_EQ(augmented.num_rows(),
            train.num_rows() + attack.attacked_rows.size());
  for (std::size_t k = 0; k < attack.attacked_rows.size(); ++k) {
    const std::size_t i = train.num_rows() + k;
    EXPECT_EQ(augmented.label(i), 1);
    const auto got = augmented.row(i);
    const auto want = attack.perturbed_row(k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t f = 0; f < got.size(); ++f) EXPECT_EQ(got[f], want[f]);
    EXPECT_EQ(augmented.weight(i), train.weight(attack.attacked_rows[k]));
    EXPECT_EQ(augmented.group(i), train.group(attack.attacked_rows[k]));
  }
  // Copy-on-write: the original split is untouched by the append.
  std::size_t pos = 0;
  for (std::size_t i = 0; i < train.num_rows(); ++i)
    for (const double v : train.row(i)) EXPECT_EQ(v, before[pos++]);
}

TEST(Defense, AdversarialRetrainIsDeterministic) {
  const auto train = counter_blobs(30, 4, 53);
  const auto test = counter_blobs(20, 4, 59);
  const auto baseline = trained_detector(train);
  const PerturbationBudget budget{8.0, 0.05, 0.0, true};
  const auto a = adversarial_retrain(*baseline, train, ml::ClassifierKind::kJ48,
                                     ml::EnsembleKind::kAdaBoost, 7, budget, {},
                                     0xADE5A17ULL, 1);
  const auto b = adversarial_retrain(*baseline, train, ml::ClassifierKind::kJ48,
                                     ml::EnsembleKind::kAdaBoost, 7, budget, {},
                                     0xADE5A17ULL, 2);
  EXPECT_EQ(ml::score_dataset(*a, test), ml::score_dataset(*b, test));
}

TEST(Defense, MarginGateEscalatesSuspectsToTheBoundary) {
  const auto data = counter_blobs(40, 4, 61);
  const auto clf = trained_detector(data);
  const DatasetAttackResult attack =
      attack_dataset(*clf, data, {8.0, 0.10, 0.0, true}, {}, 1, 1);

  // Gate disabled: margin_defended_scores is exactly the transfer scores.
  std::size_t suspects = 0;
  EXPECT_EQ(margin_defended_scores(*clf, data, attack, {0.0}, &suspects),
            attack.attacked_scores);
  EXPECT_EQ(suspects, 0u);

  // Margins live in [0, 1], so a threshold above 1 flags every row: all
  // scores must land at or above the decision threshold.
  const auto defended =
      margin_defended_scores(*clf, data, attack, {1.5}, &suspects);
  EXPECT_EQ(suspects, data.num_rows());
  for (std::size_t i = 0; i < defended.size(); ++i) {
    EXPECT_GE(defended[i], ml::kDecisionThreshold) << "row " << i;
    EXPECT_GE(defended[i], attack.attacked_scores[i]) << "never lowers";
  }
}

// ---------------------------------------------------------------------------
// Online: the man-in-the-middle stream and the suspect gate.

std::shared_ptr<const ml::Classifier> online_model() {
  const auto data = testutil::gaussian_blobs(50, 4, 0, 1.4, 41);
  auto clf = ml::make_detector(ml::ClassifierKind::kJ48,
                               ml::EnsembleKind::kBagging, 7);
  clf->train(data);
  return std::shared_ptr<const ml::Classifier>(std::move(clf));
}

const std::vector<sim::Event> kOnlineEvents{
    sim::Event::kBranchInstructions, sim::Event::kBranchMisses,
    sim::Event::kCacheMisses, sim::Event::kInstructions};

TEST(AttackOnline, PerIntervalScoresNeverAboveTheCleanRun) {
  const auto model = online_model();
  const auto app = sim::make_malware(0, 3, 77, 8);
  core::OnlineDetector clean_det(model, kOnlineEvents);
  const auto clean = core::monitor_application(app, clean_det);

  const Adversary adversary(*model, {100.0, 0.10, 0.0, true});
  core::OnlineDetector attacked_det(model, kOnlineEvents);
  const auto attacked =
      monitor_application_under_attack(app, attacked_det, adversary);

  ASSERT_EQ(attacked.size(), clean.size());
  for (std::size_t i = 0; i < attacked.size(); ++i) {
    EXPECT_LE(attacked[i].score, clean[i].score) << "interval " << i;
    EXPECT_LE(attacked[i].ewma, clean[i].ewma) << "interval " << i;
  }
}

TEST(AttackOnline, TimelineIsReproducible) {
  const auto model = online_model();
  const auto app = sim::make_malware(1, 2, 99, 6);
  const Adversary adversary(*model, {100.0, 0.10, 0.0, true});
  const auto run = [&] {
    core::OnlineDetector det(model, kOnlineEvents);
    return monitor_application_under_attack(app, det, adversary);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].ewma, b[i].ewma);
    EXPECT_EQ(a[i].alarm, b[i].alarm);
  }
}

TEST(AttackOnline, SuspectGateFollowsTheConfiguredMargin) {
  const auto model = online_model();
  const auto app = sim::make_malware(0, 1, 55, 6);

  // Disabled (the default): no verdict is ever suspect.
  core::OnlineDetector off(model, kOnlineEvents);
  for (const auto& v : core::monitor_application(app, off))
    EXPECT_FALSE(v.suspect);

  // A threshold above the margin's unit range flags every interval.
  core::OnlineConfig cfg;
  cfg.suspect_margin = 1.5;
  core::OnlineDetector on(model, kOnlineEvents, {}, cfg);
  for (const auto& v : core::monitor_application(app, on))
    EXPECT_TRUE(v.suspect);
}

}  // namespace
}  // namespace hmd::attack

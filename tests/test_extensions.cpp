// Tests for the extension modules: Platt calibration, group-aware
// cross-validation, RandomForest, mimicry blending, and PMU counter
// saturation.
#include <gtest/gtest.h>

#include <cmath>

#include "hpc/pmu.h"
#include "ml/calibration.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/smo.h"
#include "sim/workloads.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd {
namespace {

using ml::Dataset;
using testutil::gaussian_blobs;
using testutil::train_accuracy;
using testutil::xor_data;

// ----------------------------------------------------------- calibration --

TEST(Platt, FitSigmoidRecoversSeparation) {
  // Scores: negatives around -1, positives around +1.
  std::vector<double> scores;
  std::vector<int> labels;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.gaussian(-1.0, 0.4));
    labels.push_back(0);
    scores.push_back(rng.gaussian(1.0, 0.4));
    labels.push_back(1);
  }
  double a = 0.0, b = 0.0;
  ml::PlattScaling::fit_sigmoid(scores, labels, a, b);
  auto prob = [&](double s) { return 1.0 / (1.0 + std::exp(a * s + b)); };
  EXPECT_GT(prob(1.5), 0.9);
  EXPECT_LT(prob(-1.5), 0.1);
  EXPECT_NEAR(prob(0.0), 0.5, 0.15);
}

TEST(Platt, CalibratedSmoHasGradedScoresAndBetterAuc) {
  const Dataset train = gaussian_blobs(150, 2, 1, 2.4, 2);
  const Dataset test = gaussian_blobs(150, 2, 1, 2.4, 3);

  ml::Smo raw;
  raw.train(train);
  const double raw_auc = ml::evaluate_detector(raw, test).auc;

  ml::PlattScaling calibrated(std::make_unique<ml::Smo>());
  calibrated.train(train);
  bool graded = false;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    const double p = calibrated.predict_proba(test.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    if (p > 0.05 && p < 0.95) graded = true;
  }
  EXPECT_TRUE(graded);
  // A hard scorer's AUC is capped at (1+t-f)/2; calibration can only tie
  // it (the wrapped SMO is still hard) — check we did not *lose* quality.
  const double cal_auc = ml::evaluate_detector(calibrated, test).auc;
  EXPECT_GT(cal_auc, raw_auc - 0.1);
}

TEST(Platt, NameAndClone) {
  ml::PlattScaling p(std::make_unique<ml::Smo>());
  EXPECT_EQ(p.name(), "Platt(SMO)");
  auto clone = p.clone_untrained();
  EXPECT_EQ(clone->name(), "Platt(SMO)");
}

TEST(Platt, RejectsBadConfig) {
  EXPECT_THROW(ml::PlattScaling(nullptr), PreconditionError);
  EXPECT_THROW(ml::PlattScaling(std::make_unique<ml::Smo>(), 0.0),
               PreconditionError);
  EXPECT_THROW(ml::PlattScaling(std::make_unique<ml::Smo>(), 1.0),
               PreconditionError);
}

// ------------------------------------------------------- cross-validation --

TEST(CrossValidation, FoldsPartitionGroups) {
  const Dataset data = gaussian_blobs(200, 2, 0, 1.0, 4);
  Rng rng(5);
  const auto cv =
      ml::cross_validate(*ml::make_classifier(ml::ClassifierKind::kJ48),
                         data, 5, rng);
  EXPECT_EQ(cv.folds.size(), 5u);
  for (const auto& fold : cv.folds) {
    EXPECT_GT(fold.accuracy, 0.5);
    EXPECT_LE(fold.accuracy, 1.0);
  }
  EXPECT_NEAR(cv.mean_accuracy, 1.0, 0.15);  // separable blobs
  EXPECT_GE(cv.stddev_accuracy, 0.0);
  EXPECT_GT(cv.mean_performance, 0.4);
}

TEST(CrossValidation, RequiresEnoughGroups) {
  Dataset data(std::vector<std::string>{"x"});
  // Only one group per class: k=2 impossible.
  for (int i = 0; i < 10; ++i) {
    data.add_row({static_cast<double>(i)}, 0, 1.0, /*group=*/0);
    data.add_row({static_cast<double>(i) + 10}, 1, 1.0, /*group=*/1);
  }
  Rng rng(6);
  EXPECT_THROW(ml::cross_validate(
                   *ml::make_classifier(ml::ClassifierKind::kOneR), data, 2,
                   rng),
               PreconditionError);
}

// ----------------------------------------------------------- randomforest --

TEST(RandomForest, SolvesXorWhereSingleGreedyTreesStall) {
  // Randomized splits break C4.5's XOR myopia: some trees split on a
  // random feature first and their children then carry real gain.
  const Dataset data = xor_data(120, 0.6, 7);
  ml::RandomForest forest(40, 1, 7);  // force 1 random feature per split
  forest.train(data);
  EXPECT_GT(train_accuracy(forest, data), 0.9);
}

TEST(RandomForest, SeparatesBlobs) {
  const Dataset data = gaussian_blobs(120, 2, 2, 1.0, 8);
  ml::RandomForest forest(20);
  forest.train(data);
  EXPECT_GT(train_accuracy(forest, data), 0.95);
}

TEST(RandomForest, GradedProbabilities) {
  const Dataset data = gaussian_blobs(120, 2, 0, 2.4, 9);
  ml::RandomForest forest(20);
  forest.train(data);
  bool graded = false;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = forest.predict_proba(data.row(i));
    if (p > 0.2 && p < 0.8) graded = true;
  }
  EXPECT_TRUE(graded);
}

TEST(RandomForest, ComplexityHasAllTrees) {
  const Dataset data = gaussian_blobs(60, 1, 0, 1.0, 10);
  ml::RandomForest forest(12);
  forest.train(data);
  EXPECT_EQ(forest.complexity().children.size(), 12u);
  EXPECT_EQ(forest.num_trees(), 12u);
}

TEST(RandomTree, DeterministicGivenSeed) {
  const Dataset data = gaussian_blobs(80, 2, 1, 1.4, 11);
  ml::RandomTree a(0, 1.0, 9), b(0, 1.0, 9);
  a.train(data);
  b.train(data);
  for (std::size_t i = 0; i < data.num_rows(); i += 5)
    EXPECT_DOUBLE_EQ(a.predict_proba(data.row(i)),
                     b.predict_proba(data.row(i)));
}

// ----------------------------------------------------------------- blend --

TEST(Blend, LambdaZeroIsIdentity) {
  const auto mal = sim::make_malware(0, 0, 12, 8);
  const auto cover = sim::make_benign(2, 0, 12, 8);
  const auto same = sim::blend_toward(mal, cover, 0.0);
  EXPECT_DOUBLE_EQ(same.phases[0].frac_branch, mal.phases[0].frac_branch);
  EXPECT_TRUE(same.is_malware);
}

TEST(Blend, LambdaOneMatchesCoverBehaviour) {
  const auto mal = sim::make_malware(0, 0, 13, 8);
  const auto cover = sim::make_benign(2, 0, 13, 8);
  const auto full = sim::blend_toward(mal, cover, 1.0);
  EXPECT_DOUBLE_EQ(full.phases[0].frac_branch, cover.phases[0].frac_branch);
  EXPECT_DOUBLE_EQ(full.phases[0].syscalls_per_kilo_instr,
                   cover.phases[0].syscalls_per_kilo_instr);
  EXPECT_TRUE(full.is_malware);  // label semantics are preserved
}

TEST(Blend, MidpointIsBetween) {
  const auto mal = sim::make_malware(1, 0, 14, 8);
  const auto cover = sim::make_benign(3, 0, 14, 8);
  const auto half = sim::blend_toward(mal, cover, 0.5);
  const double lo = std::min(mal.phases[0].frac_branch,
                             cover.phases[0].frac_branch);
  const double hi = std::max(mal.phases[0].frac_branch,
                             cover.phases[0].frac_branch);
  EXPECT_GE(half.phases[0].frac_branch, lo);
  EXPECT_LE(half.phases[0].frac_branch, hi);
}

TEST(Blend, OutOfRangeLambdaRejected) {
  const auto mal = sim::make_malware(0, 0, 15, 8);
  const auto cover = sim::make_benign(0, 0, 15, 8);
  EXPECT_THROW(sim::blend_toward(mal, cover, -0.1), PreconditionError);
  EXPECT_THROW(sim::blend_toward(mal, cover, 1.1), PreconditionError);
}

// ---------------------------------------------------- counter saturation --

TEST(PmuSaturation, NarrowCountersClampAtMax) {
  hpc::PmuConfig cfg;
  cfg.counter_bits = 8;  // max 255
  hpc::Pmu pmu(cfg);
  pmu.program({sim::Event::kInstructions});
  sim::EventCounts c{};
  c[sim::Event::kInstructions] = 200;
  pmu.observe(c);
  pmu.observe(c);  // 400 > 255 -> saturate
  EXPECT_EQ(pmu.read(sim::Event::kInstructions), 255u);
}

TEST(PmuSaturation, SingleDeltaLargerThanCapClamps) {
  // Regression: one observation bigger than the whole counter range must
  // clamp, not write through.
  hpc::PmuConfig cfg;
  cfg.counter_bits = 4;  // max 15
  hpc::Pmu pmu(cfg);
  pmu.program({sim::Event::kInstructions});
  sim::EventCounts c{};
  c[sim::Event::kInstructions] = 5937;
  pmu.observe(c);
  EXPECT_EQ(pmu.read(sim::Event::kInstructions), 15u);
}

TEST(PmuSaturation, WideCountersDoNotClampAtTenMs) {
  hpc::Pmu pmu;  // 48-bit default
  pmu.program({sim::Event::kInstructions});
  sim::EventCounts c{};
  c[sim::Event::kInstructions] = 30'000'000;  // a real 10ms interval
  pmu.observe(c);
  EXPECT_EQ(pmu.read(sim::Event::kInstructions), 30'000'000u);
}

TEST(PmuSaturation, SixtyFourBitNeverOverflows) {
  hpc::PmuConfig cfg;
  cfg.counter_bits = 64;
  hpc::Pmu pmu(cfg);
  pmu.program({sim::Event::kInstructions});
  sim::EventCounts c{};
  c[sim::Event::kInstructions] = ~0ULL;
  pmu.observe(c);
  pmu.observe(c);  // would wrap; must clamp to max
  EXPECT_EQ(pmu.read(sim::Event::kInstructions), ~0ULL);
}

TEST(PmuSaturation, InvalidWidthRejected) {
  hpc::PmuConfig cfg;
  cfg.counter_bits = 0;
  EXPECT_THROW(hpc::Pmu{cfg}, PreconditionError);
  cfg.counter_bits = 65;
  EXPECT_THROW(hpc::Pmu{cfg}, PreconditionError);
}

}  // namespace
}  // namespace hmd

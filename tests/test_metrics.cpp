// Unit tests for metrics: confusion, ROC curves, AUC (including the tied-
// score behaviour that drives the SMO/SGD robustness results).
#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "support/check.h"

namespace hmd::ml {
namespace {

TEST(Confusion, Rates) {
  Confusion cm{/*tp=*/8, /*fp=*/2, /*tn=*/6, /*fn=*/4};
  EXPECT_DOUBLE_EQ(cm.total(), 20.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.7);
  EXPECT_NEAR(cm.tpr(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(cm.fpr(), 2.0 / 8.0, 1e-12);
  EXPECT_NEAR(cm.precision(), 0.8, 1e-12);
  EXPECT_GT(cm.f1(), 0.0);
}

TEST(Confusion, EmptyIsZeroNotNan) {
  Confusion cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
}

TEST(Roc, PerfectSeparationHasAucOne) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 1.0);
}

TEST(Roc, ReversedScoresHaveAucZero) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.0);
}

TEST(Roc, AllTiedScoresGiveHalf) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.5);
}

TEST(Roc, HardClassifierAucEqualsBalancedAccuracyFormula) {
  // A hard 0/1 scorer with TPR=t and FPR=f has AUC = (1 + t - f)/2 —
  // this is why WEKA's SMO (no calibration) shows mediocre AUC.
  const std::vector<double> scores{1, 1, 1, 0, 0, 0, 1, 0};
  const std::vector<int> labels{1, 1, 1, 1, 0, 0, 0, 0};
  // t = 3/4, f = 1/4 -> AUC = (1 + 0.75 - 0.25)/2 = 0.75.
  EXPECT_NEAR(auc(scores, labels), 0.75, 1e-12);
}

TEST(Roc, CurveEndpointsAndMonotonicity) {
  const std::vector<double> scores{0.9, 0.7, 0.6, 0.4, 0.2};
  const std::vector<int> labels{1, 0, 1, 0, 1};
  const auto curve = roc_curve(scores, labels);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(Roc, AucFromCurveMatchesRankStatistic) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    labels.push_back(rng.chance(0.4) ? 1 : 0);
    scores.push_back(rng.uniform() * 0.7 +
                     0.3 * static_cast<double>(labels.back()));
  }
  const auto curve = roc_curve(scores, labels);
  EXPECT_NEAR(auc_from_curve(curve), auc(scores, labels), 1e-12);
}

TEST(Roc, WeightsShiftTheCurve) {
  const std::vector<double> scores{0.9, 0.6, 0.4, 0.1};
  const std::vector<int> labels{1, 0, 1, 0};
  const std::vector<double> uniform{1, 1, 1, 1};
  const std::vector<double> skewed{1, 100, 1, 1};
  EXPECT_NE(auc(scores, labels, uniform), auc(scores, labels, skewed));
}

TEST(Roc, MismatchedSizesThrow) {
  const std::vector<double> scores{0.5};
  const std::vector<int> labels{1, 0};
  EXPECT_THROW(auc(scores, labels), PreconditionError);
}

TEST(DetectorMetrics, PerformanceIsProduct) {
  DetectorMetrics m;
  m.accuracy = 0.8;
  m.auc = 0.9;
  EXPECT_NEAR(m.performance(), 0.72, 1e-12);
}

// Regression: a single-class score set used to inherit a fabricated AUC
// from roc_curve's forced (1,1) endpoint — all-positive sets scored ~1.0
// and all-negative sets ~0.0 no matter what the scores said. A degenerate
// set has no ranking information, so AUC must be chance level.
TEST(Roc, SingleClassAucIsChanceLevel) {
  const std::vector<double> scores{0.9, 0.7, 0.2};
  EXPECT_DOUBLE_EQ(auc(scores, std::vector<int>{1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(auc(scores, std::vector<int>{0, 0, 0}), 0.5);
}

TEST(Roc, ZeroWeightClassAucIsChanceLevel) {
  // Both labels present, but all the weight sits on one class — just as
  // degenerate as a single-class label vector.
  const std::vector<double> scores{0.9, 0.1};
  const std::vector<int> labels{1, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels, std::vector<double>{1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(auc(scores, labels, std::vector<double>{0.0, 1.0}), 0.5);
}

TEST(DetectorMetrics, SingleClassSliceKeepsAccuracyAndChanceAuc) {
  // An all-malware evaluation slice (e.g. a per-family triage report)
  // still has a meaningful accuracy; its AUC must be 0.5, which keeps the
  // paper's ACC×AUC composite finite and non-fabricated.
  const std::vector<double> scores{0.9, 0.8, 0.3, 0.7};
  const std::vector<int> labels{1, 1, 1, 1};
  const auto m = detector_metrics(scores, labels);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.75);  // 0.3 falls below the 0.5 threshold
  EXPECT_DOUBLE_EQ(m.auc, 0.5);
  EXPECT_DOUBLE_EQ(m.performance(), 0.375);
}

}  // namespace
}  // namespace hmd::ml

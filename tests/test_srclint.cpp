// Tests for the determinism source lint (analysis/srclint.h).
//
// Fixture sources live in raw strings and are fed either straight into
// srclint_scan_source (per-rule behaviour) or written into a scratch tree
// for srclint_scan_tree (discovery, ordering, JSON, threading). The banned
// tokens below sit inside string literals of *this* file, so the lint's own
// scan of tests/ does not trip over its test suite — itself a regression
// test of the string-stripping scanner.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/srclint.h"

namespace fs = std::filesystem;
using hmd::analysis::SrclintFileResult;
using hmd::analysis::SrclintReport;
using hmd::analysis::srclint_report_json;
using hmd::analysis::srclint_rules;
using hmd::analysis::srclint_scan_source;
using hmd::analysis::srclint_scan_tree;
using hmd::analysis::SrclintViolation;

namespace {

/// Unsuppressed rule ids found by a scan, in report order.
std::vector<std::string> fired(const SrclintFileResult& result) {
  std::vector<std::string> ids;
  for (const SrclintViolation& v : result.violations)
    if (!v.suppressed) ids.push_back(v.rule);
  return ids;
}

std::string scratch_tree(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "hmd_srclint_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void write_file(const std::string& root, const std::string& rel,
                const std::string& text) {
  const fs::path path = fs::path(root) / rel;
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << text;
  ASSERT_TRUE(out.good()) << rel;
}

}  // namespace

TEST(SrclintRules, TableIsStableAndDocumented) {
  const auto& rules = srclint_rules();
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_EQ(rules[0].id, "rng-construct");
  EXPECT_EQ(rules[1].id, "wall-clock");
  EXPECT_EQ(rules[2].id, "unordered-container");
  EXPECT_EQ(rules[3].id, "pointer-key");
  EXPECT_EQ(rules[4].id, "local-static");
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.bans.empty()) << rule.id;
    EXPECT_FALSE(rule.rationale.empty()) << rule.id;
  }
}

TEST(SrclintRng, FlagsEveryBannedConstructor) {
  const char* bad[] = {
      "std::random_device rd;",
      "std::mt19937 gen(7);",
      "std::default_random_engine e;",
      "int x = rand();",
      "srand(42);",
      "double d = drand48();",
  };
  for (const char* line : bad) {
    const auto result = srclint_scan_source("src/x.cpp", line);
    EXPECT_EQ(fired(result),
              std::vector<std::string>{"rng-construct"})
        << line;
  }
}

TEST(SrclintRng, AllowsTheRngHeaderAndUnrelatedIdentifiers) {
  // The one sanctioned home of RNG machinery.
  EXPECT_TRUE(
      srclint_scan_source("src/support/rng.h", "std::random_device rd;")
          .violations.empty());
  // Identifiers merely containing 'rand' must not match.
  const auto result = srclint_scan_source(
      "src/x.cpp", "int operand(int strand) { return strand; }");
  EXPECT_TRUE(result.violations.empty());
}

TEST(SrclintWallClock, FlagsWallClockReads) {
  const char* bad[] = {
      "auto t = std::chrono::system_clock::now();",
      "long t = time(nullptr);",
      "clock_t c = clock();",
      "gettimeofday(&tv, nullptr);",
  };
  for (const char* line : bad) {
    const auto result = srclint_scan_source("src/x.cpp", line);
    EXPECT_EQ(fired(result), std::vector<std::string>{"wall-clock"}) << line;
  }
}

TEST(SrclintWallClock, SteadyClockAndTimeLikeNamesStayLegal) {
  EXPECT_TRUE(srclint_scan_source(
                  "src/x.cpp",
                  "auto t0 = std::chrono::steady_clock::now();\n"
                  "auto dt = t0.time_since_epoch();\n"
                  "double run_time(int x);\n")
                  .violations.empty());
}

TEST(SrclintWallClock, BenchTimingAllowlistPasses) {
  const auto result = srclint_scan_source(
      "bench/bench_util.h", "auto t = std::chrono::system_clock::now();");
  EXPECT_TRUE(result.violations.empty());
  // The same line in a non-allowlisted bench file still fails.
  EXPECT_EQ(fired(srclint_scan_source(
                "bench/other.cpp",
                "auto t = std::chrono::system_clock::now();")),
            std::vector<std::string>{"wall-clock"});
}

TEST(SrclintContainers, FlagsUnorderedAndPointerKeyed) {
  EXPECT_EQ(fired(srclint_scan_source("tests/t.cpp",
                                      "std::unordered_map<int, int> m;")),
            std::vector<std::string>{"unordered-container"});
  EXPECT_EQ(fired(srclint_scan_source("tools/t.cpp",
                                      "std::unordered_set<long> s;")),
            std::vector<std::string>{"unordered-container"});
  EXPECT_EQ(fired(srclint_scan_source("src/x.cpp",
                                      "std::map<const void*, int> m;")),
            std::vector<std::string>{"pointer-key"});
  EXPECT_EQ(fired(srclint_scan_source("src/x.cpp",
                                      "std::set<Node*> nodes;")),
            std::vector<std::string>{"pointer-key"});
  // Pointer *values* are fine; only pointer keys are ordered by address.
  EXPECT_TRUE(srclint_scan_source("src/x.cpp",
                                  "std::map<std::string, Node*> byname;")
                  .violations.empty());
}

TEST(SrclintLocalStatic, FlagsMutableFunctionLocalsInLibraryCodeOnly) {
  const std::string body =
      "int f() {\n"
      "  static int calls = 0;\n"
      "  return ++calls;\n"
      "}\n";
  EXPECT_EQ(fired(srclint_scan_source("src/x.cpp", body)),
            std::vector<std::string>{"local-static"});
  // Library-code rule: harness/test code may keep counters.
  EXPECT_TRUE(srclint_scan_source("bench/x.cpp", body).violations.empty());
  EXPECT_TRUE(srclint_scan_source("tests/x.cpp", body).violations.empty());
}

TEST(SrclintLocalStatic, ImmutableAndNonLocalStaticsStayLegal) {
  EXPECT_TRUE(
      srclint_scan_source("src/x.cpp",
                          "int f() {\n"
                          "  static const int limit = 5;\n"
                          "  static constexpr double pi = 3.14;\n"
                          "  return limit;\n"
                          "}\n")
          .violations.empty());
  // Class members and namespace-scope declarations are out of scope.
  EXPECT_TRUE(
      srclint_scan_source("src/x.cpp",
                          "struct S {\n"
                          "  static int shared;\n"
                          "  static std::string name();\n"
                          "};\n"
                          "static int g_mode = 0;\n")
          .violations.empty());
  // A method body *inside* a class is still function scope.
  EXPECT_EQ(fired(srclint_scan_source("src/x.cpp",
                                      "struct S {\n"
                                      "  int f() {\n"
                                      "    static int hits = 0;\n"
                                      "    return ++hits;\n"
                                      "  }\n"
                                      "};\n")),
            std::vector<std::string>{"local-static"});
}

TEST(SrclintStripping, StringsAndCommentsAreInert) {
  EXPECT_TRUE(
      srclint_scan_source(
          "src/x.cpp",
          "const char* a = \"std::unordered_map<int,int>\";\n"
          "const char* b = \"rand() time( system_clock\";\n"
          "// std::random_device belongs in rng.h only\n"
          "/* std::unordered_set<int> would be nondeterministic */\n")
          .violations.empty());
  // Raw strings too — this is how the lint survives scanning its own tests.
  const std::string raw_fixture =
      "const char* r = R\"(std::mt19937 gen; time(nullptr))\";\n";
  EXPECT_TRUE(srclint_scan_source("src/x.cpp", raw_fixture)
                  .violations.empty());
  // ...but the same tokens as code still fail.
  EXPECT_FALSE(srclint_scan_source("src/x.cpp", "std::mt19937 gen;")
                   .violations.empty());
}

TEST(SrclintSuppression, SameLineAndPrecedingCommentLineAreHonored) {
  const std::string same_line =
      "long t = time(nullptr);  // HMD_SRCLINT_ALLOW(wall-clock): boot id\n";
  auto result = srclint_scan_source("src/x.cpp", same_line);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_TRUE(result.violations[0].suppressed);
  EXPECT_EQ(result.violations[0].reason, "boot id");
  EXPECT_TRUE(result.errors.empty());

  const std::string line_above =
      "// HMD_SRCLINT_ALLOW(wall-clock): campaign stamp, output-inert\n"
      "long t = time(nullptr);\n";
  result = srclint_scan_source("src/x.cpp", line_above);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_TRUE(result.violations[0].suppressed);
}

TEST(SrclintSuppression, WrongRuleDoesNotSuppress) {
  const std::string text =
      "long t = time(nullptr);  // HMD_SRCLINT_ALLOW(pointer-key): wrong\n";
  const auto result = srclint_scan_source("src/x.cpp", text);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_FALSE(result.violations[0].suppressed);
}

TEST(SrclintSuppression, UnknownRuleAndMissingReasonAreErrors) {
  const auto unknown = srclint_scan_source(
      "src/x.cpp", "// HMD_SRCLINT_ALLOW(no-such-rule): whatever\n");
  ASSERT_EQ(unknown.errors.size(), 1u);
  EXPECT_NE(unknown.errors[0].find("unknown rule"), std::string::npos);

  const auto no_reason = srclint_scan_source(
      "src/x.cpp", "long t = time(nullptr);  // HMD_SRCLINT_ALLOW(wall-clock):\n");
  ASSERT_EQ(no_reason.errors.size(), 1u);
  EXPECT_NE(no_reason.errors[0].find("missing a reason"), std::string::npos);
  // The violation stays unsuppressed when the suppression was rejected.
  ASSERT_EQ(no_reason.violations.size(), 1u);
  EXPECT_FALSE(no_reason.violations[0].suppressed);

  // A marker inside a string literal is not a suppression at all.
  const auto in_string = srclint_scan_source(
      "src/x.cpp",
      "const char* doc = \"HMD_SRCLINT_ALLOW(no-such-rule): nope\";\n");
  EXPECT_TRUE(in_string.errors.empty());
}

TEST(SrclintTree, ScansFixtureTreeDeterministically) {
  const std::string root = scratch_tree("fixture_tree");
  write_file(root, "src/clean.cpp", "int ok() { return 1; }\n");
  write_file(root, "src/bad.cpp",
             "#include <ctime>\n"
             "long stamp() { return time(nullptr); }\n");
  write_file(root, "tests/also_bad.h", "std::unordered_map<int, int> m;\n");
  write_file(root, "bench/allowed.cpp",
             "long t() {\n"
             "  // HMD_SRCLINT_ALLOW(wall-clock): fixture timing shim\n"
             "  return time(nullptr);\n"
             "}\n");
  // Outside the scanned dirs and extensions: must be ignored.
  write_file(root, "docs/readme.md", "time(nullptr)\n");
  write_file(root, "src/notes.txt", "std::unordered_map\n");

  const SrclintReport serial = srclint_scan_tree(root, 1);
  EXPECT_EQ(serial.files.size(), 4u);
  EXPECT_TRUE(std::is_sorted(serial.files.begin(), serial.files.end()));
  EXPECT_EQ(serial.unsuppressed(), 2u);
  EXPECT_FALSE(serial.clean());

  // Same report at any worker count (parallel_map assembles in order).
  const SrclintReport parallel = srclint_scan_tree(root, 4);
  EXPECT_EQ(srclint_report_json(parallel), srclint_report_json(serial));
}

TEST(SrclintTree, CleanTreeScansCleanAndReportIsWellFormed) {
  const std::string root = scratch_tree("clean_tree");
  write_file(root, "src/a.cpp", "int f() { return 2; }\n");
  write_file(root, "tools/b.cpp", "int g() { return 3; }\n");

  const SrclintReport report = srclint_scan_tree(root, 1);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.unsuppressed(), 0u);

  const std::string json = srclint_report_json(report);
  EXPECT_NE(json.find("\"tool\": \"hmd_srclint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed_total\": 0"), std::string::npos);
  for (const auto& rule : srclint_rules())
    EXPECT_NE(json.find("\"id\": \"" + rule.id + "\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy; ci.sh leg 1d
  // json-parses the real report.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(SrclintTree, JsonEscapesSnippets) {
  const std::string root = scratch_tree("escape_tree");
  write_file(root, "src/esc.cpp",
             "long t = time(nullptr); const char* q = \"hi\";\n");
  const SrclintReport report = srclint_scan_tree(root, 1);
  ASSERT_EQ(report.violations.size(), 1u);
  const std::string json = srclint_report_json(report);
  // The snippet's quotes around hi must arrive JSON-escaped as \"hi\".
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
}

TEST(SrclintSelfHost, TheRepositoryTreeIsClean) {
  // HMD_SRCLINT_ROOT is set by ctest to the repo source dir; when the test
  // binary runs outside ctest, fall back to skipping rather than guessing.
  const char* root = std::getenv("HMD_SRCLINT_ROOT");
  if (root == nullptr) GTEST_SKIP() << "HMD_SRCLINT_ROOT not set";
  const SrclintReport report = srclint_scan_tree(root, 0);
  EXPECT_GT(report.files.size(), 100u);
  for (const SrclintViolation& v : report.violations)
    EXPECT_TRUE(v.suppressed) << v.file << ":" << v.line << " [" << v.rule
                              << "] " << v.snippet;
  for (const std::string& e : report.errors) ADD_FAILURE() << e;
}

// ---------------------------------------------------------------------------
// src/attack coverage: the adversary is the one subsystem whose *product*
// is randomness, so it is exactly where a future contributor is most
// tempted to seed from the wall clock "for a stronger attack". The
// rng-construct and wall-clock rules have no allowlist entry for
// src/attack (only src/support/rng.h and bench_util.h respectively), so
// both must fire there like anywhere else in src/.

TEST(SrclintAttackDir, WallClockSeededGeneratorFiresBothRules) {
  // The classic anti-pattern, placed in the attack subsystem: a std
  // generator seeded from the wall clock. Non-reproducible evasion results
  // would silently break the bench's byte-identity contract.
  const auto result = srclint_scan_source(
      "src/attack/fuzzer.cpp",
      "#include <chrono>\n"
      "#include <random>\n"
      "std::mt19937 gen(static_cast<unsigned>(\n"
      "    std::chrono::system_clock::now().time_since_epoch().count()));\n");
  const std::vector<std::string> ids = fired(result);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "rng-construct"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "wall-clock"), ids.end());
}

TEST(SrclintAttackDir, RandAndRandomDeviceFireInAttackSources) {
  EXPECT_EQ(fired(srclint_scan_source("src/attack/adversary.cpp",
                                      "int r = rand();\n")),
            std::vector<std::string>{"rng-construct"});
  EXPECT_EQ(fired(srclint_scan_source("src/attack/search.h",
                                      "std::random_device rd;\n")),
            std::vector<std::string>{"rng-construct"});
}

TEST(SrclintAttackDir, SeededSupportRngIsTheSanctionedIdiom) {
  // The shape src/attack actually uses: an explicit seed, forked per
  // stream. Nothing to flag.
  EXPECT_TRUE(srclint_scan_source(
                  "src/attack/adversary.cpp",
                  "Rng base(seed_);\n"
                  "Rng rng = base.fork(stream);\n"
                  "double u = rng.uniform();\n")
                  .violations.empty());
}

TEST(SrclintAttackDir, TreeScanDiscoversAttackSources) {
  const std::string root = scratch_tree("attack_tree");
  write_file(root, "src/attack/evil.cpp",
             "#include <random>\n"
             "std::default_random_engine e;\n");
  write_file(root, "src/attack/clean.cpp", "int f() { return 1; }\n");
  const SrclintReport report = srclint_scan_tree(root, 1);
  EXPECT_EQ(report.files.size(), 2u);
  EXPECT_EQ(report.unsuppressed(), 1u);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "rng-construct");
  EXPECT_EQ(report.violations[0].file, "src/attack/evil.cpp");
}

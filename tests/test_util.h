// Shared helpers for the test suite: synthetic dataset builders with known
// structure, so classifier tests assert against ground truth instead of
// golden numbers.
#pragma once

#include <vector>

#include "ml/dataset.h"
#include "support/rng.h"

namespace hmd::testutil {

/// Two Gaussian blobs, linearly separable with margin ~ (4 - 2*spread).
/// Class 0 centred at -2, class 1 at +2 along every informative axis;
/// `noise_features` additional N(0,1) columns carry no signal.
inline ml::Dataset gaussian_blobs(std::size_t n_per_class,
                                  std::size_t informative,
                                  std::size_t noise_features, double spread,
                                  std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < informative + noise_features; ++f)
    names.push_back("f" + std::to_string(f));
  ml::Dataset data(std::move(names));
  Rng rng(seed);
  for (int cls = 0; cls <= 1; ++cls) {
    const double centre = cls == 0 ? -2.0 : 2.0;
    for (std::size_t i = 0; i < n_per_class; ++i) {
      std::vector<double> row;
      for (std::size_t f = 0; f < informative; ++f)
        row.push_back(rng.gaussian(centre, spread));
      for (std::size_t f = 0; f < noise_features; ++f)
        row.push_back(rng.gaussian(0.0, 1.0));
      data.add_row(std::move(row), cls, 1.0, /*group=*/cls * 1000 + i / 8);
    }
  }
  return data;
}

/// XOR checkerboard in the first two features: not linearly separable,
/// needs at least a depth-2 tree (or an ensemble of stumps).
inline ml::Dataset xor_data(std::size_t n_per_quadrant, double spread,
                            std::uint64_t seed) {
  ml::Dataset data(std::vector<std::string>{"x", "y"});
  Rng rng(seed);
  for (int qx = 0; qx <= 1; ++qx) {
    for (int qy = 0; qy <= 1; ++qy) {
      const int label = qx ^ qy;
      for (std::size_t i = 0; i < n_per_quadrant; ++i) {
        data.add_row({rng.gaussian(qx ? 2.0 : -2.0, spread),
                      rng.gaussian(qy ? 2.0 : -2.0, spread)},
                     label, 1.0, /*group=*/(qx * 2 + qy) * 100 + i / 8);
      }
    }
  }
  return data;
}

/// Fraction of rows of `data` classified correctly by `clf`.
template <typename Classifier>
double train_accuracy(const Classifier& clf, const ml::Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    if (clf.predict(data.row(i)) == data.label(i)) ++correct;
  return static_cast<double>(correct) /
         static_cast<double>(data.num_rows());
}

}  // namespace hmd::testutil

// Tests for ARFF/CSV dataset I/O and the family classifier extension.
#include <gtest/gtest.h>

#include <sstream>

#include "core/family.h"
#include "ml/arff.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd {
namespace {

// ------------------------------------------------------------------ arff --

TEST(Arff, RoundTripPreservesEverything) {
  const ml::Dataset original = testutil::gaussian_blobs(30, 2, 1, 1.0, 1);
  std::stringstream ss;
  ml::write_arff(ss, original, "roundtrip");
  const ml::Dataset parsed = ml::read_arff(ss);

  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  ASSERT_EQ(parsed.num_features(), original.num_features());
  for (std::size_t i = 0; i < original.num_rows(); ++i) {
    EXPECT_EQ(parsed.label(i), original.label(i));
    EXPECT_EQ(parsed.group(i), original.group(i));
    for (std::size_t f = 0; f < original.num_features(); ++f)
      EXPECT_DOUBLE_EQ(parsed.row(i)[f], original.row(i)[f]);
  }
}

TEST(Arff, RoundTripPreservesWeights) {
  ml::Dataset d(std::vector<std::string>{"x"});
  d.add_row({1.0}, 0, 2.5, 4);
  d.add_row({2.0}, 1, 0.5, 9);
  std::stringstream ss;
  ml::write_arff(ss, d);
  const ml::Dataset parsed = ml::read_arff(ss);
  EXPECT_DOUBLE_EQ(parsed.weight(0), 2.5);
  EXPECT_DOUBLE_EQ(parsed.weight(1), 0.5);
  EXPECT_EQ(parsed.group(1), 9u);
}

TEST(Arff, HeaderMentionsWekaEssentials) {
  ml::Dataset d(std::vector<std::string>{"branch_instructions"});
  d.add_row({42.0}, 1);
  std::stringstream ss;
  ml::write_arff(ss, d);
  const std::string text = ss.str();
  EXPECT_NE(text.find("@RELATION"), std::string::npos);
  EXPECT_NE(text.find("@ATTRIBUTE branch_instructions NUMERIC"),
            std::string::npos);
  EXPECT_NE(text.find("{benign,malware}"), std::string::npos);
  EXPECT_NE(text.find("@DATA"), std::string::npos);
}

TEST(Arff, RejectsGarbage) {
  std::stringstream ss("not arff at all");
  EXPECT_THROW(ml::read_arff(ss), PreconditionError);
}

TEST(Arff, RejectsRowWithMissingValues) {
  std::stringstream ss(
      "@RELATION r\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE b NUMERIC\n"
      "@ATTRIBUTE class {benign,malware}\n@DATA\n1.0,malware\n");
  EXPECT_THROW(ml::read_arff(ss), PreconditionError);
}

TEST(Csv, HeaderAndRows) {
  ml::Dataset d(std::vector<std::string>{"a", "b"});
  d.add_row({1.0, 2.0}, 1);
  std::stringstream ss;
  ml::write_dataset_csv(ss, d);
  EXPECT_EQ(ss.str(), "a,b,label\n1,2,1\n");
}

// ---------------------------------------------------------------- family --

/// Three separable malware families along feature 0:
/// benign ~0, famA ~5, famB ~10.
ml::Dataset family_data(std::vector<std::string>& families,
                        std::uint64_t seed) {
  ml::Dataset d(std::vector<std::string>{"x", "noise"});
  families.clear();
  Rng rng(seed);
  for (int i = 0; i < 120; ++i) {
    const int kind = i % 3;
    const double centre = kind == 0 ? 0.0 : kind == 1 ? 5.0 : 10.0;
    d.add_row({rng.gaussian(centre, 0.7), rng.gaussian(0.0, 1.0)},
              kind == 0 ? 0 : 1, 1.0, /*group=*/i / 6);
    families.push_back(kind == 0 ? "" : kind == 1 ? "famA" : "famB");
  }
  return d;
}

TEST(Family, LearnsToNameSeparableFamilies) {
  std::vector<std::string> families;
  const ml::Dataset train = family_data(families, 3);
  core::FamilyClassifier clf;
  clf.train(train, families);
  ASSERT_EQ(clf.families().size(), 2u);

  std::vector<std::string> test_families;
  const ml::Dataset test = family_data(test_families, 4);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.num_rows(); ++i)
    if (clf.classify(test.row(i)).family == test_families[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(test.num_rows()),
            0.9);
}

TEST(Family, BenignWinsWhenNothingFires) {
  std::vector<std::string> families;
  const ml::Dataset train = family_data(families, 5);
  core::FamilyClassifier clf;
  clf.train(train, families);
  // A strongly benign point.
  const auto pred = clf.classify(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(pred.family.empty());
}

TEST(Family, MismatchedLabelsRejected) {
  ml::Dataset d(std::vector<std::string>{"x"});
  d.add_row({1.0}, 1);  // malware...
  core::FamilyClassifier clf;
  // ...but an empty family string: inconsistent.
  EXPECT_THROW(clf.train(d, {""}), PreconditionError);
}

TEST(Family, ClassifyBeforeTrainRejected) {
  core::FamilyClassifier clf;
  EXPECT_THROW(clf.classify(std::vector<double>{1.0}), PreconditionError);
}

TEST(Family, ConfusionCountsEveryRowOnce) {
  std::vector<std::string> families;
  const ml::Dataset train = family_data(families, 6);
  core::FamilyClassifier clf;
  clf.train(train, families);
  const auto confusion = core::evaluate_families(clf, train, families);
  std::size_t total = 0;
  for (const auto& [truth, row] : confusion)
    for (const auto& [pred, n] : row) total += n;
  EXPECT_EQ(total, train.num_rows());
}

}  // namespace
}  // namespace hmd

// Targeted tests for the tree learners (J48, REPTree) and rule learners
// (OneR, JRip): split selection, pruning machinery, model structure.
#include <gtest/gtest.h>

#include "ml/j48.h"
#include "ml/jrip.h"
#include "ml/oner.h"
#include "ml/reptree.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::ml {
namespace {

using testutil::gaussian_blobs;
using testutil::train_accuracy;
using testutil::xor_data;

// ------------------------------------------------------------------- J48 --

TEST(J48, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.75), 0.674489750196, 1e-6);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540, 1e-6);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540, 1e-6);
}

TEST(J48, AddErrsMatchesC45Behaviour) {
  // Zero observed errors still get charged a pessimistic estimate.
  EXPECT_GT(c45_added_errors(10, 0, 0.25), 0.0);
  // More data, same error rate -> relatively fewer added errors.
  const double small = c45_added_errors(10, 2, 0.25) / 10.0;
  const double large = c45_added_errors(1000, 200, 0.25) / 1000.0;
  EXPECT_GT(small, large);
  // Monotone in confidence: lower CF = more pessimism.
  EXPECT_GT(c45_added_errors(50, 5, 0.10), c45_added_errors(50, 5, 0.40));
}

TEST(J48, XorRootHasNoGainFaithfulC45Myopia) {
  // On symmetric XOR every single-feature split has ~zero information
  // gain, so greedy C4.5 (like WEKA's J48) refuses to split at the root.
  // This documents that our implementation reproduces the real C4.5
  // behaviour rather than patching it.
  const Dataset data = xor_data(100, 0.6, 1);
  J48 tree;
  tree.train(data);
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(J48, SolvesBandProblemWithStackedThresholds) {
  // Class 1 iff x in (-1, 1): needs two thresholds on the same feature.
  Dataset data(std::vector<std::string>{"x"});
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    data.add_row({x}, std::fabs(x) < 1.0 ? 1 : 0);
  }
  J48 tree;
  tree.train(data);
  EXPECT_GE(train_accuracy(tree, data), 0.97);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(J48, PruningShrinksTheTree) {
  // Noisy overlapping blobs: the unpruned tree memorises noise.
  const Dataset data = gaussian_blobs(250, 1, 1, 2.8, 2);
  J48 pruned(0.25, 2.0, /*prune=*/true);
  J48 unpruned(0.25, 2.0, /*prune=*/false);
  pruned.train(data);
  unpruned.train(data);
  EXPECT_LT(pruned.num_leaves(), unpruned.num_leaves());
}

TEST(J48, PureDataGivesSingleLeaf) {
  Dataset data(std::vector<std::string>{"x"});
  for (int i = 0; i < 30; ++i) data.add_row({static_cast<double>(i)}, 0);
  J48 tree;
  tree.train(data);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(J48, ComplexityCountsReachableNodesOnly) {
  const Dataset data = gaussian_blobs(200, 2, 0, 2.0, 3);
  J48 tree;
  tree.train(data);
  const ModelComplexity mc = tree.complexity();
  EXPECT_EQ(mc.kind, "tree");
  EXPECT_EQ(mc.comparators + mc.table_entries,
            mc.table_entries * 2 - 1);  // full binary tree: leaves-1 internal
  EXPECT_EQ(mc.table_entries, tree.num_leaves());
}

// --------------------------------------------------------------- REPTree --

TEST(RepTree, SolvesXor) {
  const Dataset data = xor_data(120, 0.6, 4);
  RepTree tree;
  tree.train(data);
  EXPECT_GE(train_accuracy(tree, data), 0.9);
}

TEST(RepTree, ReducedErrorPruningShrinksNoisyTree) {
  const Dataset data = gaussian_blobs(300, 1, 1, 2.8, 5);
  RepTree with_rep(2.0, /*num_folds=*/3, 0, 1);
  RepTree no_rep(2.0, /*num_folds=*/0, 0, 1);  // folds<2 disables pruning
  with_rep.train(data);
  no_rep.train(data);
  const auto pruned_nodes = with_rep.complexity();
  const auto raw_nodes = no_rep.complexity();
  EXPECT_LT(pruned_nodes.comparators, raw_nodes.comparators);
}

TEST(RepTree, MaxDepthIsHonoured) {
  const Dataset data = gaussian_blobs(200, 2, 0, 2.0, 6);
  RepTree shallow(2.0, 3, /*max_depth=*/2, 1);
  shallow.train(data);
  EXPECT_LE(shallow.complexity().depth, 3u);  // depth counts +1 stage
}

// ------------------------------------------------------------------ OneR --

TEST(OneR, PicksTheInformativeFeature) {
  // Feature 0 is informative, feature 1 is noise.
  const Dataset data = gaussian_blobs(150, 1, 1, 0.8, 7);
  OneR oner;
  oner.train(data);
  EXPECT_EQ(oner.chosen_feature(), 0u);
  EXPECT_GE(train_accuracy(oner, data), 0.9);
}

TEST(OneR, MinBucketWeightLimitsFragmentation) {
  const Dataset data = gaussian_blobs(200, 1, 0, 2.5, 8);
  OneR fine(1.0), coarse(30.0);
  fine.train(data);
  coarse.train(data);
  EXPECT_LE(coarse.num_buckets(), fine.num_buckets());
}

TEST(OneR, InsensitiveToFeatureRemovalWhenItsPickSurvives) {
  // The paper's observation: OneR keeps the same accuracy when reducing
  // features, as long as its one chosen counter is retained.
  const Dataset data = gaussian_blobs(150, 1, 3, 0.8, 9);
  OneR wide;
  wide.train(data);
  const Dataset narrow =
      data.select_features(std::vector<std::size_t>{wide.chosen_feature()});
  OneR one;
  one.train(narrow);
  EXPECT_NEAR(train_accuracy(wide, data), train_accuracy(one, narrow), 1e-9);
}

// ------------------------------------------------------------------ JRip --

TEST(JRip, LearnsARectangleRule) {
  // Class 1 iff x in [2,4] (y irrelevant): two conditions suffice.
  Dataset data(std::vector<std::string>{"x", "y"});
  Rng rng(10);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(0.0, 6.0);
    const double y = rng.uniform(0.0, 6.0);
    data.add_row({x, y}, (x >= 2.0 && x <= 4.0) ? 1 : 0);
  }
  JRip jrip;
  jrip.train(data);
  EXPECT_GE(train_accuracy(jrip, data), 0.95);
  EXPECT_GE(jrip.num_rules(), 1u);
  // Rules should be about x, not y.
  for (const auto& rule : jrip.rules())
    for (const auto& cond : rule.conditions) EXPECT_EQ(cond.feature, 0u);
}

TEST(JRip, TargetsTheMinorityClass) {
  Dataset data(std::vector<std::string>{"x"});
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const bool rare = rng.chance(0.2);
    data.add_row({rare ? rng.gaussian(3, 0.5) : rng.gaussian(-3, 0.5)},
                 rare ? 1 : 0);
  }
  JRip jrip;
  jrip.train(data);
  EXPECT_EQ(jrip.target_class(), 1);
}

TEST(JRip, ComplexityCountsConditions) {
  const Dataset data = gaussian_blobs(150, 2, 0, 1.0, 12);
  JRip jrip;
  jrip.train(data);
  const auto mc = jrip.complexity();
  EXPECT_EQ(mc.kind, "rules");
  std::size_t conds = 0;
  for (const auto& rule : jrip.rules()) conds += rule.conditions.size();
  EXPECT_EQ(mc.comparators, conds);
  EXPECT_EQ(mc.table_entries, jrip.num_rules() + 1);
}

}  // namespace
}  // namespace hmd::ml

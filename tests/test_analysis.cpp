// Tests for the model-integrity analysis subsystem: IR extraction, the
// structural verifier on deliberately corrupted fixtures, the HLS contract
// lint, fixed-point range checking, and the generator/model differential.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/hls_checker.h"
#include "analysis/model_ir.h"
#include "analysis/model_verifier.h"
#include "hw/hls_codegen.h"
#include "ml/classifier.h"
#include "ml/j48.h"
#include "ml/mlp.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::analysis {
namespace {

using testutil::gaussian_blobs;

bool has_code(const VerifyReport& report, const std::string& code) {
  for (const Finding& f : report.findings)
    if (f.code == code) return true;
  return false;
}

ModelIr make_ir(ModelStructure structure) {
  ModelIr ir;
  ir.name = "fixture";
  ir.structure = std::move(structure);
  return ir;
}

/// Hand-built IR has no meaningful reported complexity; skip the drift
/// check so fixtures only trigger the defect under test.
VerifyOptions no_complexity() {
  VerifyOptions options;
  options.check_complexity = false;
  return options;
}

TreeIr valid_stump() {
  TreeIr tree;
  tree.nodes.resize(3);
  tree.nodes[0] = {/*leaf=*/false, /*feature=*/0, /*threshold=*/1.0,
                   /*left=*/1, /*right=*/2, /*proba=*/0.5};
  tree.nodes[1] = {true, 0, 0.0, 0, 0, 0.1};
  tree.nodes[2] = {true, 0, 0.0, 0, 0, 0.9};
  return tree;
}

// ---- corrupted fixtures the verifier must reject ----------------------

TEST(ModelVerifier, ValidStumpPasses) {
  const VerifyReport report =
      verify_ir(make_ir(valid_stump()), no_complexity());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ModelVerifier, NanThresholdDetected) {
  TreeIr tree = valid_stump();
  tree.nodes[0].threshold = std::numeric_limits<double>::quiet_NaN();
  const VerifyReport report =
      verify_ir(make_ir(std::move(tree)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "tree-threshold")) << report.to_string();
}

TEST(ModelVerifier, OrphanNodeDetected) {
  TreeIr tree = valid_stump();
  tree.nodes.push_back({true, 0, 0.0, 0, 0, 0.5});  // nothing points here
  const VerifyReport report =
      verify_ir(make_ir(std::move(tree)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "tree-orphan")) << report.to_string();
}

TEST(ModelVerifier, CycleThroughRootDetected) {
  TreeIr tree;
  tree.nodes.resize(3);
  tree.nodes[0] = {false, 0, 1.0, 1, 2, 0.5};
  tree.nodes[1] = {false, 1, 2.0, 0, 2, 0.5};  // points back at the root
  tree.nodes[2] = {true, 0, 0.0, 0, 0, 0.9};
  const VerifyReport report =
      verify_ir(make_ir(std::move(tree)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "tree-cycle")) << report.to_string();
}

TEST(ModelVerifier, ChildIndexOutOfRangeDetected) {
  TreeIr tree = valid_stump();
  tree.nodes[0].right = 17;
  const VerifyReport report =
      verify_ir(make_ir(std::move(tree)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "tree-child-range")) << report.to_string();
}

TEST(ModelVerifier, InvalidLeafDistributionDetected) {
  TreeIr tree = valid_stump();
  tree.nodes[1].proba = 1.5;  // not a probability
  const VerifyReport report =
      verify_ir(make_ir(std::move(tree)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "tree-leaf-proba")) << report.to_string();
}

TEST(ModelVerifier, ContradictoryRuleDetected) {
  RuleListIr rules;
  RuleIr rule;
  rule.conditions.push_back({/*feature=*/0, /*leq=*/true, /*value=*/1.0});
  rule.conditions.push_back({/*feature=*/0, /*leq=*/false, /*value=*/2.0});
  rule.precision = 0.9;
  rules.rules.push_back(std::move(rule));
  const VerifyReport report =
      verify_ir(make_ir(std::move(rules)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "rule-contradiction")) << report.to_string();
}

TEST(ModelVerifier, ZeroWeightAdaBoostMemberDetected) {
  EnsembleIr ens;
  ens.kind = EnsembleIr::Kind::kAdaBoost;
  ens.member_weights = {0.0, 1.0};  // sums to 1, but weight 0 is invalid
  ens.member_raw_weights = {0.0, 2.0};
  BucketRuleIr stump;
  stump.cuts = {1.0};
  stump.proba = {0.1, 0.9};
  ens.members.push_back(make_ir(stump));
  ens.members.push_back(make_ir(stump));
  const VerifyReport report =
      verify_ir(make_ir(std::move(ens)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "ensemble-weight")) << report.to_string();
}

TEST(ModelVerifier, UnnormalizedEnsembleDetected) {
  EnsembleIr ens;
  ens.kind = EnsembleIr::Kind::kBagging;
  ens.member_weights = {0.7, 0.7};  // sums to 1.4
  ens.member_raw_weights = {1.0, 1.0};
  BucketRuleIr stump;
  stump.cuts = {1.0};
  stump.proba = {0.1, 0.9};
  ens.members.push_back(make_ir(stump));
  ens.members.push_back(make_ir(stump));
  const VerifyReport report =
      verify_ir(make_ir(std::move(ens)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "ensemble-normalization"))
      << report.to_string();
}

TEST(ModelVerifier, MemberDefectReportedWithContext) {
  EnsembleIr ens;
  ens.kind = EnsembleIr::Kind::kBagging;
  ens.member_weights = {1.0};
  ens.member_raw_weights = {1.0};
  TreeIr bad = valid_stump();
  bad.nodes[0].threshold = std::numeric_limits<double>::infinity();
  ens.members.push_back(make_ir(std::move(bad)));
  const VerifyReport report =
      verify_ir(make_ir(std::move(ens)), no_complexity());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "tree-threshold")) << report.to_string();
  EXPECT_NE(report.to_string().find("member 0"), std::string::npos);
}

TEST(ModelVerifier, ComplexityTamperingDetected) {
  const ml::Dataset data = gaussian_blobs(60, 2, 1, 1.2, 5);
  ml::J48 tree;
  tree.train(data);
  ModelIr ir = extract_ir(tree);
  EXPECT_TRUE(verify_ir(ir).ok()) << verify_ir(ir).to_string();
  ir.reported.comparators += 5;  // claim hardware that is not there
  const VerifyReport report = verify_ir(ir);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "complexity-drift")) << report.to_string();
}

// ---- clean pass-through over every trained family ---------------------

TEST(ModelVerifier, AllTrainedFamiliesVerifyClean) {
  const ml::Dataset data = gaussian_blobs(80, 2, 1, 1.2, 9);
  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    for (ml::EnsembleKind ens :
         {ml::EnsembleKind::kGeneral, ml::EnsembleKind::kAdaBoost,
          ml::EnsembleKind::kBagging}) {
      auto model = ml::make_detector(kind, ens, 7);
      model->train(data);
      ASSERT_TRUE(ir_supported(*model));
      const VerifyReport report = verify_model(*model);
      EXPECT_TRUE(report.ok())
          << model->name() << ":\n"
          << report.to_string();
    }
  }
}

TEST(ModelVerifier, UntrainedModelThrows) {
  ml::J48 untrained;
  EXPECT_THROW(extract_ir(untrained), PreconditionError);
  EXPECT_THROW(verify_model(untrained), PreconditionError);
}

// ---- HLS contract lint ------------------------------------------------

TEST(HlsLint, WhileLoopRejected) {
  const VerifyReport report = lint_hls_code(
      "static int t_0(const int32_t x[]) {\n"
      "  while (x[0] > 0) { }\n  return 0;\n}\n");
  EXPECT_TRUE(has_code(report, "hls-unbounded-loop")) << report.to_string();
}

TEST(HlsLint, LibcCallRejected) {
  const VerifyReport report = lint_hls_code(
      "static int t_0(const int32_t x[]) {\n"
      "  return abs(x[0]);\n}\n");
  EXPECT_TRUE(has_code(report, "hls-unknown-call")) << report.to_string();
}

TEST(HlsLint, RecursionRejected) {
  const VerifyReport report = lint_hls_code(
      "static int t_0(const int32_t x[]) {\n"
      "  return t_0(x);\n}\n");
  EXPECT_TRUE(has_code(report, "hls-recursion")) << report.to_string();
}

TEST(HlsLint, ForbiddenIncludeRejected) {
  const VerifyReport report = lint_hls_code("#include <math.h>\n");
  EXPECT_TRUE(has_code(report, "hls-preprocessor")) << report.to_string();
}

TEST(HlsLint, UnbalancedBracesRejected) {
  const VerifyReport report =
      lint_hls_code("static int t_0(const int32_t x[]) { return 0;\n");
  EXPECT_TRUE(has_code(report, "hls-unbalanced")) << report.to_string();
}

TEST(HlsLint, OutOfRangeComparisonConstantRejected) {
  const VerifyReport report = lint_hls_code(
      "static int t_0(const int32_t x[]) {\n"
      "  if (x[0] <= 9999999999LL) return 1;\n  return 0;\n}\n");
  EXPECT_TRUE(has_code(report, "hls-const-range")) << report.to_string();
}

TEST(HlsLint, GeneratedCodeForEveryFamilyIsClean) {
  const ml::Dataset data = gaussian_blobs(80, 2, 1, 1.2, 9);
  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    for (ml::EnsembleKind ens :
         {ml::EnsembleKind::kGeneral, ml::EnsembleKind::kAdaBoost,
          ml::EnsembleKind::kBagging}) {
      auto model = ml::make_detector(kind, ens, 7);
      model->train(data);
      if (!hw::hls_supported(*model)) continue;
      std::ostringstream os;
      hw::generate_hls_c(os, *model, data.num_features());
      const VerifyReport report = lint_hls_code(os.str());
      EXPECT_TRUE(report.ok())
          << model->name() << ":\n"
          << report.to_string();
    }
  }
}

// ---- fixed-point range checking ---------------------------------------

TEST(FixedPointRange, InRangeModelPasses) {
  BucketRuleIr stump;
  stump.cuts = {10.0, 20.0};
  stump.proba = {0.1, 0.5, 0.9};
  const VerifyReport report =
      check_fixed_point_range(make_ir(stump), /*fraction_bits=*/8);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FixedPointRange, OutOfRangeCutDetected) {
  BucketRuleIr stump;
  stump.cuts = {1.0e8};  // 1e8 << 8 overflows int32
  stump.proba = {0.1, 0.9};
  const VerifyReport report =
      check_fixed_point_range(make_ir(stump), /*fraction_bits=*/8);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "fixed-point-range")) << report.to_string();
}

TEST(FixedPointRange, TreeThresholdScalesWithFractionBits) {
  TreeIr tree = valid_stump();
  tree.nodes[0].threshold = 1.0e6;
  // Fits at Q8 (2.56e8 < 2^31) but not at Q16 (6.6e10).
  EXPECT_TRUE(check_fixed_point_range(make_ir(tree), 8).ok());
  EXPECT_FALSE(check_fixed_point_range(make_ir(tree), 16).ok());
}

TEST(FixedPointRange, RejectsInvalidFractionBits) {
  EXPECT_THROW(check_fixed_point_range(make_ir(valid_stump()), 31),
               PreconditionError);
}

// ---- differential check ------------------------------------------------

TEST(Differential, TrainedFamiliesMatchTheirGeneratedArithmetic) {
  const ml::Dataset data = gaussian_blobs(80, 2, 1, 1.2, 9);
  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    for (ml::EnsembleKind ens :
         {ml::EnsembleKind::kGeneral, ml::EnsembleKind::kAdaBoost,
          ml::EnsembleKind::kBagging}) {
      auto model = ml::make_detector(kind, ens, 7);
      model->train(data);
      if (!hw::hls_supported(*model)) continue;
      const DifferentialResult result = differential_check(*model, data);
      EXPECT_TRUE(result.ok)
          << model->name() << ": " << result.mismatches << "/"
          << result.probes << " probes diverge";
    }
  }
}

TEST(Differential, EmptyProbeSetThrows) {
  const ml::Dataset data = gaussian_blobs(40, 1, 0, 1.0, 3);
  ml::J48 tree;
  tree.train(data);
  const ml::Dataset empty(std::vector<std::string>{"f0"});
  EXPECT_THROW(differential_check(tree, empty), PreconditionError);
}

TEST(Differential, UnsupportedStructureThrows) {
  MlpIr mlp;
  mlp.inputs = 1;
  mlp.hidden = 1;
  mlp.w1 = {0.5};
  mlp.b1 = {0.0};
  mlp.w2 = {1.0};
  mlp.mean = {0.0};
  mlp.stdev = {1.0};
  const std::int32_t x[1] = {0};
  EXPECT_THROW(fixed_point_decide(make_ir(std::move(mlp)), x, 8),
               PreconditionError);
}

TEST(Differential, MirrorAgreesWithExplicitStump) {
  // x < 2.0 -> benign (0.1), else malware (0.9); Q8 boundary at 512.
  BucketRuleIr stump;
  stump.cuts = {2.0};
  stump.proba = {0.1, 0.9};
  const ModelIr ir = make_ir(std::move(stump));
  const std::int32_t below[1] = {511};
  const std::int32_t at[1] = {512};  // equal to the cut goes upward
  EXPECT_EQ(fixed_point_decide(ir, below, 8), 0);
  EXPECT_EQ(fixed_point_decide(ir, at, 8), 1);
}

}  // namespace
}  // namespace hmd::analysis

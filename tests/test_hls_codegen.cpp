// Tests for the HLS C code generator: structural checks on the emitted
// code for every supported model family, plus a full compile check with
// the system C compiler when one is available.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "hw/hls_codegen.h"
#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/bayesnet.h"
#include "ml/classifier.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::hw {
namespace {

using testutil::gaussian_blobs;

std::string generate_for(ml::ClassifierKind kind, ml::EnsembleKind ens) {
  const ml::Dataset data = gaussian_blobs(80, 2, 1, 1.2, 9);
  auto model = ml::make_detector(kind, ens, 7);
  model->train(data);
  std::ostringstream os;
  generate_hls_c(os, *model, data.num_features());
  return os.str();
}

struct CodegenCase {
  ml::ClassifierKind kind;
  ml::EnsembleKind ensemble;
};

class CodegenFamilies : public testing::TestWithParam<CodegenCase> {};

TEST_P(CodegenFamilies, EmitsSelfContainedC) {
  const std::string code =
      generate_for(GetParam().kind, GetParam().ensemble);
  EXPECT_NE(code.find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(code.find("int hmd_classify(const int32_t x[3])"),
            std::string::npos);
  // No floating point and no libc calls in the synthesizable body.
  EXPECT_EQ(code.find("double"), std::string::npos);
  EXPECT_EQ(code.find("float"), std::string::npos);
  EXPECT_EQ(code.find("malloc"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Supported, CodegenFamilies,
    testing::Values(
        CodegenCase{ml::ClassifierKind::kOneR, ml::EnsembleKind::kGeneral},
        CodegenCase{ml::ClassifierKind::kJ48, ml::EnsembleKind::kGeneral},
        CodegenCase{ml::ClassifierKind::kRepTree,
                    ml::EnsembleKind::kGeneral},
        CodegenCase{ml::ClassifierKind::kJRip, ml::EnsembleKind::kGeneral},
        CodegenCase{ml::ClassifierKind::kSgd, ml::EnsembleKind::kGeneral},
        CodegenCase{ml::ClassifierKind::kSmo, ml::EnsembleKind::kGeneral},
        CodegenCase{ml::ClassifierKind::kJRip, ml::EnsembleKind::kAdaBoost},
        CodegenCase{ml::ClassifierKind::kRepTree,
                    ml::EnsembleKind::kBagging}),
    [](const testing::TestParamInfo<CodegenCase>& tpi) {
      return std::string(ml::classifier_kind_name(tpi.param.kind)) + "_" +
             std::string(ml::ensemble_kind_name(tpi.param.ensemble));
    });

TEST(Codegen, EnsembleEmitsOneHelperPerMember) {
  const std::string code =
      generate_for(ml::ClassifierKind::kOneR, ml::EnsembleKind::kBagging);
  std::size_t helpers = 0, pos = 0;
  while ((pos = code.find("static int oner_", pos)) != std::string::npos) {
    ++helpers;
    pos += 1;
  }
  EXPECT_EQ(helpers, 10u);  // one helper definition per bag member
}

TEST(Codegen, UnsupportedModelRejected) {
  const ml::Dataset data = gaussian_blobs(40, 1, 0, 1.0, 10);
  ml::BayesNet bn;
  bn.train(data);
  EXPECT_FALSE(hls_supported(bn));
  std::ostringstream os;
  EXPECT_THROW(generate_hls_c(os, bn, 1), PreconditionError);
}

TEST(Codegen, SupportedPredicateMatchesGenerator) {
  const ml::Dataset data = gaussian_blobs(40, 2, 0, 1.0, 11);
  for (ml::ClassifierKind kind :
       {ml::ClassifierKind::kOneR, ml::ClassifierKind::kJ48,
        ml::ClassifierKind::kSmo}) {
    auto model = ml::make_classifier(kind, 7);
    model->train(data);
    EXPECT_TRUE(hls_supported(*model));
  }
}

TEST(Codegen, CustomFunctionNameAndWidth) {
  const ml::Dataset data = gaussian_blobs(40, 1, 0, 1.0, 12);
  auto model = ml::make_classifier(ml::ClassifierKind::kOneR, 7);
  model->train(data);
  HlsOptions opt;
  opt.function_name = "detect";
  opt.fraction_bits = 4;
  std::ostringstream os;
  generate_hls_c(os, *model, 1, opt);
  EXPECT_NE(os.str().find("int detect(const int32_t x[1])"),
            std::string::npos);
}

TEST(Codegen, GeneratedCodeCompilesWithSystemCc) {
  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no system C compiler available";

  const std::string code =
      generate_for(ml::ClassifierKind::kJRip, ml::EnsembleKind::kAdaBoost);
  const char* path = "/tmp/hmd_codegen_test.c";
  {
    std::ofstream out(path);
    out << code << "\nint main(void) { int32_t x[3] = {0, 0, 0}; "
           "return hmd_classify(x); }\n";
  }
  const int rc = std::system(
      "cc -std=c99 -Wall -Werror -o /tmp/hmd_codegen_test "
      "/tmp/hmd_codegen_test.c > /dev/null 2>&1");
  EXPECT_EQ(rc, 0) << "generated C failed to compile";
  std::remove(path);
  std::remove("/tmp/hmd_codegen_test");
}

}  // namespace
}  // namespace hmd::hw

// Unit tests for ml::Dataset: construction, selection, resampling, and the
// application-level stratified split.
#include <gtest/gtest.h>

#include <set>

#include "ml/dataset.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::ml {
namespace {

Dataset small() {
  Dataset d(std::vector<std::string>{"a", "b"});
  d.add_row({1.0, 10.0}, 0, 1.0, 0);
  d.add_row({2.0, 20.0}, 1, 2.0, 1);
  d.add_row({3.0, 30.0}, 0, 1.0, 0);
  return d;
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = small();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.label(1), 1);
  EXPECT_DOUBLE_EQ(d.weight(1), 2.0);
  EXPECT_EQ(d.group(1), 1u);
  EXPECT_EQ(d.feature_name(1), "b");
  EXPECT_DOUBLE_EQ(d.row(2)[0], 3.0);
}

TEST(Dataset, AddRowValidation) {
  Dataset d(std::vector<std::string>{"a"});
  EXPECT_THROW(d.add_row({1.0, 2.0}, 0), PreconditionError);  // width
  EXPECT_THROW(d.add_row({1.0}, 2), PreconditionError);       // label
  EXPECT_THROW(d.add_row({1.0}, 0, -1.0), PreconditionError); // weight
}

TEST(Dataset, ColumnAndLabels) {
  const Dataset d = small();
  EXPECT_EQ(d.column(1), (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(d.labels_as_double(), (std::vector<double>{0.0, 1.0, 0.0}));
}

TEST(Dataset, Weights) {
  Dataset d = small();
  EXPECT_DOUBLE_EQ(d.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(d.positive_weight(), 2.0);
  d.normalize_weights();
  EXPECT_NEAR(d.total_weight(), 3.0, 1e-12);  // sums to num_rows
}

TEST(Dataset, SelectFeaturesReordersColumns) {
  const Dataset d = small();
  const std::vector<std::size_t> sel{1, 0};
  const Dataset s = d.select_features(sel);
  EXPECT_EQ(s.feature_name(0), "b");
  EXPECT_DOUBLE_EQ(s.row(0)[0], 10.0);
  EXPECT_DOUBLE_EQ(s.row(0)[1], 1.0);
  EXPECT_EQ(s.label(1), 1);
}

TEST(Dataset, SubsetAllowsRepeats) {
  const Dataset d = small();
  const std::vector<std::size_t> rows{2, 2, 0};
  const Dataset s = d.subset(rows);
  EXPECT_EQ(s.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(s.row(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 3.0);
}

TEST(Dataset, BootstrapPreservesSizeAndUnitWeights) {
  const Dataset d = testutil::gaussian_blobs(50, 2, 0, 1.0, 3);
  Rng rng(4);
  const Dataset b = d.bootstrap(rng);
  EXPECT_EQ(b.num_rows(), d.num_rows());
  for (std::size_t i = 0; i < b.num_rows(); ++i)
    EXPECT_DOUBLE_EQ(b.weight(i), 1.0);
}

TEST(Dataset, BootstrapDrawsWithReplacement) {
  // With 100 rows, a bootstrap almost surely repeats at least one row and
  // omits at least one (P ~ 1 - 1e-16).
  const Dataset d = testutil::gaussian_blobs(50, 1, 0, 1.0, 5);
  Rng rng(6);
  const Dataset b = d.bootstrap(rng);
  std::set<double> source_values, boot_values;
  for (std::size_t i = 0; i < d.num_rows(); ++i)
    source_values.insert(d.row(i)[0]);
  for (std::size_t i = 0; i < b.num_rows(); ++i)
    boot_values.insert(b.row(i)[0]);
  EXPECT_LT(boot_values.size(), source_values.size());
}

TEST(Dataset, WeightedBootstrapFavoursHeavyRows) {
  Dataset d(std::vector<std::string>{"x"});
  d.add_row({0.0}, 0, 0.01);
  d.add_row({1.0}, 1, 100.0);
  Rng rng(7);
  const Dataset b = d.weighted_bootstrap(rng);
  std::size_t heavy = 0;
  for (std::size_t i = 0; i < b.num_rows(); ++i)
    if (b.row(i)[0] == 1.0) ++heavy;
  EXPECT_EQ(heavy, b.num_rows());  // overwhelming probability
}

TEST(Split, GroupsNeverStraddleTrainAndTest) {
  const Dataset d = testutil::gaussian_blobs(200, 2, 0, 1.0, 8);
  Rng rng(9);
  const Split split = stratified_group_split(d, 0.7, rng);
  std::set<std::size_t> train_groups, test_groups;
  for (std::size_t i = 0; i < split.train.num_rows(); ++i)
    train_groups.insert(split.train.group(i));
  for (std::size_t i = 0; i < split.test.num_rows(); ++i)
    test_groups.insert(split.test.group(i));
  for (std::size_t g : test_groups) EXPECT_FALSE(train_groups.contains(g));
}

TEST(Split, RoughlySeventyThirtyPerClass) {
  const Dataset d = testutil::gaussian_blobs(400, 1, 0, 1.0, 10);
  Rng rng(11);
  const Split split = stratified_group_split(d, 0.7, rng);
  const double frac = static_cast<double>(split.train.num_rows()) /
                      static_cast<double>(d.num_rows());
  EXPECT_NEAR(frac, 0.7, 0.08);
  // Both classes present on both sides.
  EXPECT_GT(split.train.positive_weight(), 0.0);
  EXPECT_GT(split.test.positive_weight(), 0.0);
  EXPECT_LT(split.train.positive_weight(), split.train.total_weight());
  EXPECT_LT(split.test.positive_weight(), split.test.total_weight());
}

TEST(Split, DeterministicGivenRng) {
  const Dataset d = testutil::gaussian_blobs(100, 1, 0, 1.0, 12);
  Rng r1(5), r2(5);
  const Split a = stratified_group_split(d, 0.7, r1);
  const Split b = stratified_group_split(d, 0.7, r2);
  EXPECT_EQ(a.train.num_rows(), b.train.num_rows());
}

TEST(Folds, StratifiedAndDisjoint) {
  const Dataset d = testutil::gaussian_blobs(60, 1, 0, 1.0, 13);
  Rng rng(14);
  const auto folds = stratified_row_folds(d, 3, rng);
  ASSERT_EQ(folds.size(), 3u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    double pos = 0;
    for (std::size_t i : fold) {
      EXPECT_TRUE(seen.insert(i).second);
      pos += d.label(i);
    }
    // Each fold carries close to its share of positives.
    EXPECT_NEAR(pos / static_cast<double>(fold.size()), 0.5, 0.1);
  }
  EXPECT_EQ(seen.size(), d.num_rows());
}

}  // namespace
}  // namespace hmd::ml

// Tests for the FPGA cost model: ordering properties the paper's Table 3
// rests on, plus arithmetic of the resource estimates.
#include <gtest/gtest.h>

#include "hw/resources.h"
#include "ml/classifier.h"
#include "support/check.h"
#include "test_util.h"

namespace hmd::hw {
namespace {

ml::ModelComplexity leaf(const char* kind, std::size_t comparators,
                         std::size_t multipliers, std::size_t tables,
                         std::size_t depth, std::size_t inputs) {
  ml::ModelComplexity mc;
  mc.kind = kind;
  mc.comparators = comparators;
  mc.multipliers = multipliers;
  mc.adders = comparators + multipliers;
  mc.table_entries = tables;
  mc.depth = depth;
  mc.inputs = inputs;
  return mc;
}

TEST(Resources, AreaCompositionIncludesDsps) {
  ResourceEstimate est;
  est.luts = 100;
  est.ffs = 50;
  est.dsps = 2;
  FabricParams fp;
  EXPECT_DOUBLE_EQ(est.area_lut_equiv(fp),
                   150.0 + 2.0 * fp.dsp_area_lut_equiv);
}

TEST(Resources, AreaPercentAgainstReference) {
  ResourceEstimate est;
  est.luts = 4500;
  ReferenceCore core;
  core.area_lut_equiv = 45000;
  EXPECT_DOUBLE_EQ(est.area_percent(core), 10.0);
}

TEST(Resources, LatencyNsAt100MHz) {
  ResourceEstimate est;
  est.latency_cycles = 34;
  EXPECT_DOUBLE_EQ(est.latency_ns(), 340.0);
}

TEST(Estimate, MlpDominatesTreeAndRules) {
  const auto mlp = estimate_hardware(leaf("mlp", 0, 50, 0, 8, 8));
  const auto tree = estimate_hardware(leaf("tree", 20, 0, 21, 6, 8));
  const auto rules = estimate_hardware(leaf("rules", 10, 0, 5, 4, 8));
  EXPECT_GT(mlp.area_lut_equiv(), tree.area_lut_equiv() * 2);
  EXPECT_GT(mlp.area_lut_equiv(), rules.area_lut_equiv() * 2);
  EXPECT_GT(mlp.latency_cycles, tree.latency_cycles);
  EXPECT_GT(mlp.latency_cycles, rules.latency_cycles);
}

TEST(Estimate, OneRStyleRuleIsOneCycleClass) {
  const auto oner = estimate_hardware(leaf("rules", 2, 0, 3, 1, 1));
  EXPECT_LE(oner.latency_cycles, 2.0);
}

TEST(Estimate, LinearLatencyScalesWithInputs) {
  const auto narrow = estimate_hardware(leaf("linear", 1, 2, 0, 3, 2));
  const auto wide = estimate_hardware(leaf("linear", 1, 8, 0, 5, 8));
  EXPECT_GT(wide.latency_cycles, narrow.latency_cycles);
}

TEST(Estimate, EnsembleLatencyGrowsWithMembers) {
  ml::ModelComplexity member = leaf("tree", 10, 0, 11, 4, 2);
  ml::ModelComplexity small;
  small.kind = "ensemble";
  small.children = {member, member};
  ml::ModelComplexity big = small;
  for (int i = 0; i < 8; ++i) big.children.push_back(member);

  const auto s = estimate_hardware(small);
  const auto b = estimate_hardware(big);
  EXPECT_GT(b.latency_cycles, s.latency_cycles * 3);
}

TEST(Estimate, EnsembleSharesTheDatapath) {
  // 10 identical members: the shared-engine area must be far below 10x a
  // single member (only parameter storage scales with member count).
  ml::ModelComplexity member = leaf("tree", 30, 0, 31, 6, 4);
  ml::ModelComplexity ens;
  ens.kind = "ensemble";
  for (int i = 0; i < 10; ++i) ens.children.push_back(member);

  const auto one = estimate_hardware(member);
  const auto ten = estimate_hardware(ens);
  EXPECT_LT(ten.area_lut_equiv(), 6.0 * one.area_lut_equiv());
  EXPECT_GT(ten.area_lut_equiv(), one.area_lut_equiv());
}

TEST(Estimate, EmptyEnsembleRejected) {
  ml::ModelComplexity ens;
  ens.kind = "ensemble";
  EXPECT_THROW(estimate_hardware(ens), PreconditionError);
}

TEST(Estimate, TrainedClassifierOverloadWorks) {
  const auto data = testutil::gaussian_blobs(80, 2, 0, 1.0, 30);
  auto clf = ml::make_classifier(ml::ClassifierKind::kJ48);
  clf->train(data);
  const auto est = estimate_hardware(*clf);
  EXPECT_GT(est.area_lut_equiv(), 0.0);
  EXPECT_GT(est.latency_cycles, 0.0);
}

TEST(Estimate, BiggerTreeCostsMore) {
  const auto small = estimate_hardware(leaf("tree", 5, 0, 6, 3, 2));
  const auto large = estimate_hardware(leaf("tree", 200, 0, 201, 12, 2));
  EXPECT_GT(large.area_lut_equiv(), small.area_lut_equiv());
  EXPECT_GT(large.latency_cycles, small.latency_cycles);
}

}  // namespace
}  // namespace hmd::hw

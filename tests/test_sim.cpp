// Unit tests for src/sim: event taxonomy, cache/TLB model, branch
// predictor, the Machine's event accounting invariants, and the workload
// catalog.
#include <gtest/gtest.h>

#include <set>

#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/events.h"
#include "sim/machine.h"
#include "sim/workloads.h"
#include "support/check.h"

namespace hmd::sim {
namespace {

// ---------------------------------------------------------------- events --

TEST(Events, ExactlyFortyFour) {
  EXPECT_EQ(kEventCount, 44u);
  EXPECT_EQ(all_events().size(), 44u);
}

TEST(Events, NamesAreUniqueAndRoundTrip) {
  std::set<std::string_view> names;
  for (Event e : all_events()) {
    const auto name = event_name(e);
    EXPECT_TRUE(names.insert(name).second) << name;
    EXPECT_EQ(event_from_name(name), e);
  }
}

TEST(Events, UnknownNameThrows) {
  EXPECT_THROW(event_from_name("not_an_event"), PreconditionError);
}

TEST(Events, SevenSoftwareEvents) {
  std::size_t software = 0;
  for (Event e : all_events())
    if (is_software_event(e)) ++software;
  EXPECT_EQ(software, 7u);
}

TEST(Events, PaperTable1EventsAllExist) {
  for (const char* name :
       {"branch_instructions", "branch_loads", "iTLB_load_misses",
        "dTLB_load_misses", "dTLB_store_misses", "L1_dcache_stores",
        "cache_misses", "node_loads", "dTLB_stores", "iTLB_loads",
        "L1_icache_load_misses", "branch_load_misses", "branch_misses",
        "LLC_store_misses", "node_stores", "L1_dcache_load_misses"}) {
    EXPECT_NO_THROW(event_from_name(name)) << name;
  }
}

// ----------------------------------------------------------------- cache --

TEST(Cache, CapacityFromGeometry) {
  Cache c({64, 8, 64});
  EXPECT_EQ(c.geometry().capacity_bytes(), 64u * 8u * 64u);
}

TEST(Cache, NonPow2SetsRejected) {
  EXPECT_THROW(Cache({3, 4, 64}), PreconditionError);
}

TEST(Cache, ColdMissThenHit) {
  Cache c({16, 2, 64});
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1001));  // same line
  EXPECT_EQ(c.accesses(), 3u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c({1, 2, 64});  // one set, two ways
  EXPECT_FALSE(c.access(0 * 64));
  EXPECT_FALSE(c.access(1 * 64));
  EXPECT_TRUE(c.access(0 * 64));   // 0 is now MRU; 1 is LRU
  EXPECT_FALSE(c.access(2 * 64));  // evicts 1
  EXPECT_TRUE(c.access(0 * 64));
  EXPECT_FALSE(c.access(1 * 64));  // 1 was evicted
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes) {
  Cache c({4, 2, 64});  // 8 lines
  // 16 distinct lines round-robin: every access must miss.
  for (int round = 0; round < 3; ++round)
    for (std::uint64_t line = 0; line < 16; ++line)
      c.access(line * 64);
  EXPECT_EQ(c.misses(), c.accesses());
}

TEST(Cache, FlushKeepsStats) {
  Cache c({16, 2, 64});
  c.access(0x40);
  c.flush();
  EXPECT_EQ(c.accesses(), 1u);
  EXPECT_FALSE(c.access(0x40));  // flushed → miss again
}

TEST(Cache, ResetClearsStats) {
  Cache c({16, 2, 64});
  c.access(0x40);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, ProbeDoesNotAllocateOrCount) {
  Cache c({16, 2, 64});
  EXPECT_FALSE(c.probe(0x80));
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.access(0x80));  // probe did not allocate
}

TEST(Cache, FillAllocatesWithoutCounting) {
  Cache c({16, 2, 64});
  c.fill(0xC0);
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_TRUE(c.access(0xC0));
}

TEST(Cache, PolluteInvalidatesRoughFraction) {
  Cache c({64, 8, 64});
  for (std::uint64_t line = 0; line < 512; ++line) c.access(line * 64);
  c.pollute(0.5, 0x1234);
  std::size_t survivors = 0;
  for (std::uint64_t line = 0; line < 512; ++line)
    if (c.probe(line * 64)) ++survivors;
  EXPECT_GT(survivors, 150u);
  EXPECT_LT(survivors, 360u);
}

// ------------------------------------------------------- branch predictor --

TEST(BranchPredictor, LearnsStronglyBiasedBranch) {
  BranchPredictor bp;
  for (int i = 0; i < 1000; ++i) bp.execute(0x400000, true);
  // After warm-up (one 2-bit counter per reached history pattern) the
  // always-taken branch should essentially never miss.
  EXPECT_LT(bp.direction_misses(), 20u);
}

TEST(BranchPredictor, AlternatingPatternIsLearnedByHistory) {
  BranchPredictor bp;
  for (int i = 0; i < 4000; ++i) bp.execute(0x400100, i % 2 == 0);
  // gshare keys on global history: the strict alternation becomes
  // predictable once the counter tables warm up.
  EXPECT_LT(static_cast<double>(bp.direction_misses()) /
                static_cast<double>(bp.branches()),
            0.2);
}

TEST(BranchPredictor, RandomBranchMissesNearHalf) {
  BranchPredictor bp;
  Rng rng(3);
  for (int i = 0; i < 8000; ++i) bp.execute(0x400200, rng.chance(0.5));
  const double rate = static_cast<double>(bp.direction_misses()) /
                      static_cast<double>(bp.branches());
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST(BranchPredictor, BtbCountsLookupsAndMisses) {
  BranchPredictor bp;
  bp.execute(0x1000, true);
  EXPECT_EQ(bp.btb_lookups(), 1u);
  EXPECT_EQ(bp.btb_misses(), 1u);
  bp.execute(0x1000, true);
  EXPECT_EQ(bp.btb_lookups(), 2u);
  EXPECT_EQ(bp.btb_misses(), 1u);
  EXPECT_TRUE(bp.last_btb_hit());
}

TEST(BranchPredictor, ResetClearsEverything) {
  BranchPredictor bp;
  bp.execute(0x1000, true);
  bp.reset();
  EXPECT_EQ(bp.branches(), 0u);
  EXPECT_EQ(bp.btb_lookups(), 0u);
}

// --------------------------------------------------------------- machine --

AppProfile tiny_app(std::uint64_t seed = 5, std::uint32_t intervals = 4) {
  AppProfile app = make_benign(0, 0, seed, intervals);
  return app;
}

TEST(Machine, RequiresStartRun) {
  Machine m;
  EXPECT_THROW(m.next_interval(), PreconditionError);
}

TEST(Machine, RunsExactlyTheConfiguredIntervals) {
  Machine m;
  const auto app = tiny_app(5, 6);
  m.start_run(app, 0);
  int n = 0;
  while (m.running()) {
    m.next_interval();
    ++n;
  }
  EXPECT_EQ(n, 6);
}

TEST(Machine, DeterministicForSameRunIndex) {
  const auto app = tiny_app();
  Machine m1, m2;
  m1.start_run(app, 3);
  m2.start_run(app, 3);
  while (m1.running()) {
    const auto a = m1.next_interval();
    const auto b = m2.next_interval();
    for (Event e : all_events()) EXPECT_EQ(a[e], b[e]);
  }
}

TEST(Machine, DifferentRunIndexGivesDifferentCounts) {
  const auto app = tiny_app();
  Machine m1, m2;
  m1.start_run(app, 0);
  m2.start_run(app, 1);
  const auto a = m1.next_interval();
  const auto b = m2.next_interval();
  EXPECT_NE(a[Event::kInstructions], b[Event::kInstructions]);
}

TEST(Machine, EventAccountingInvariants) {
  Machine m;
  const auto app = make_malware(0, 0, 77, 6);
  m.start_run(app, 0);
  while (m.running()) {
    const auto c = m.next_interval();
    EXPECT_GT(c[Event::kInstructions], 0u);
    EXPECT_GT(c[Event::kCpuCycles], 0u);
    // Misses never exceed accesses, per structure.
    EXPECT_LE(c[Event::kBranchMisses], c[Event::kBranchInstructions]);
    EXPECT_LE(c[Event::kBranchLoadMisses], c[Event::kBranchLoads]);
    EXPECT_LE(c[Event::kL1DcacheLoadMisses], c[Event::kL1DcacheLoads]);
    EXPECT_LE(c[Event::kL1DcacheStoreMisses], c[Event::kL1DcacheStores]);
    EXPECT_LE(c[Event::kL1IcacheLoadMisses], c[Event::kL1IcacheLoads]);
    EXPECT_LE(c[Event::kItlbLoadMisses], c[Event::kItlbLoads]);
    EXPECT_LE(c[Event::kDtlbLoadMisses], c[Event::kDtlbLoads]);
    EXPECT_LE(c[Event::kDtlbStoreMisses], c[Event::kDtlbStores]);
    EXPECT_LE(c[Event::kLlcLoadMisses], c[Event::kLlcLoads]);
    EXPECT_LE(c[Event::kLlcStoreMisses], c[Event::kLlcStores]);
    // dTLB sees exactly the L1D traffic.
    EXPECT_EQ(c[Event::kDtlbLoads], c[Event::kL1DcacheLoads]);
    EXPECT_EQ(c[Event::kDtlbStores], c[Event::kL1DcacheStores]);
    // Demand LLC traffic comes from L1 misses.
    EXPECT_LE(c[Event::kLlcLoads], c[Event::kL1DcacheLoadMisses]);
    // BTB is looked up once per branch.
    EXPECT_EQ(c[Event::kBranchLoads], c[Event::kBranchInstructions]);
    // NUMA traffic comes from LLC demand misses.
    EXPECT_LE(c[Event::kNodeLoads], c[Event::kLlcLoadMisses]);
    EXPECT_LE(c[Event::kNodeLoadMisses], c[Event::kNodeLoads]);
    // Software composition.
    EXPECT_EQ(c[Event::kPageFaults],
              c[Event::kMinorFaults] + c[Event::kMajorFaults]);
    // Cycle accounting.
    EXPECT_GE(c[Event::kCpuCycles], c[Event::kStalledCyclesFrontend]);
    EXPECT_EQ(c[Event::kRefCycles], c[Event::kCpuCycles]);
    EXPECT_EQ(c[Event::kBusCycles], c[Event::kCpuCycles] / 4);
  }
}

TEST(Machine, ContextSwitchesIncreaseTlbMisses) {
  // Same template, one variant with a huge context-switch rate.
  AppProfile calm = tiny_app(5, 8);
  AppProfile noisy = calm;
  for (auto& ph : calm.phases) ph.context_switch_rate = 0.0;
  for (auto& ph : noisy.phases) ph.context_switch_rate = 30.0;

  auto total = [](Machine& m, const AppProfile& app, Event e) {
    m.start_run(app, 0);
    std::uint64_t acc = 0;
    while (m.running()) acc += m.next_interval()[e];
    return acc;
  };
  Machine m;
  const auto calm_misses = total(m, calm, Event::kDtlbLoadMisses);
  const auto noisy_misses = total(m, noisy, Event::kDtlbLoadMisses);
  EXPECT_GT(noisy_misses, calm_misses * 2);
}

TEST(Machine, SyscallRateDrivesKernelInstructionVolume) {
  AppProfile quiet = tiny_app(5, 4);
  AppProfile chatty = quiet;
  for (auto& ph : quiet.phases) ph.syscalls_per_kilo_instr = 0.0;
  for (auto& ph : chatty.phases) ph.syscalls_per_kilo_instr = 10.0;
  Machine m;
  m.start_run(quiet, 0);
  std::uint64_t quiet_instr = 0;
  while (m.running()) quiet_instr += m.next_interval()[Event::kInstructions];
  m.start_run(chatty, 0);
  std::uint64_t chatty_instr = 0;
  while (m.running())
    chatty_instr += m.next_interval()[Event::kInstructions];
  EXPECT_GT(chatty_instr, quiet_instr * 3 / 2);
}

TEST(Machine, MultiPhaseAppsChangeBehaviourOverTime) {
  // The ransomware template has a scan phase then an encrypt phase with
  // far more stores; the store rate must rise across the run.
  AppProfile app = make_malware(4, 0, 123, 16);
  ASSERT_GE(app.phases.size(), 2u);
  Machine m;
  m.start_run(app, 0);
  std::vector<double> store_rate;
  while (m.running()) {
    const auto c = m.next_interval();
    store_rate.push_back(static_cast<double>(c[Event::kL1DcacheStores]) /
                         static_cast<double>(c[Event::kInstructions]));
  }
  const double early = (store_rate[0] + store_rate[1] + store_rate[2]) / 3;
  const auto n = store_rate.size();
  const double late =
      (store_rate[n - 1] + store_rate[n - 2] + store_rate[n - 3]) / 3;
  EXPECT_GT(late, early * 1.5);
}

// -------------------------------------------------------------- workloads --

TEST(Workloads, CorpusSizeMatchesConfig) {
  CorpusConfig cfg;
  cfg.benign_per_template = 2;
  cfg.malware_per_template = 3;
  const auto corpus = build_corpus(cfg);
  EXPECT_EQ(corpus.size(), benign_template_count() * 2 +
                               malware_template_count() * 3);
}

TEST(Workloads, PaperScaleCorpusExceeds100Applications) {
  const auto corpus = build_corpus(CorpusConfig{});
  EXPECT_GE(corpus.size(), 100u);
}

TEST(Workloads, LabelsAndNamesAreConsistent) {
  const auto corpus = build_corpus(
      CorpusConfig{.benign_per_template = 1, .malware_per_template = 1});
  std::set<std::string> names;
  for (const auto& app : corpus) {
    EXPECT_TRUE(names.insert(app.name).second) << app.name;
    if (app.is_malware) {
      EXPECT_EQ(app.name.rfind("mal.", 0), 0u) << app.name;
    }
    EXPECT_FALSE(app.phases.empty());
  }
}

TEST(Workloads, VariantsOfSameTemplateDiffer) {
  const auto a = make_benign(0, 0, 2018, 20);
  const auto b = make_benign(0, 1, 2018, 20);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.phases[0].instructions_mean, b.phases[0].instructions_mean);
}

TEST(Workloads, DeterministicForSameSeed) {
  const auto a = make_malware(2, 1, 99, 20);
  const auto b = make_malware(2, 1, 99, 20);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_DOUBLE_EQ(a.phases[0].frac_branch, b.phases[0].frac_branch);
}

TEST(Workloads, InstructionScaleApplies) {
  CorpusConfig small{.benign_per_template = 1, .malware_per_template = 1};
  small.instruction_scale = 0.5;
  CorpusConfig big = small;
  big.instruction_scale = 1.0;
  const auto s = build_corpus(small);
  const auto b = build_corpus(big);
  EXPECT_NEAR(b[0].phases[0].instructions_mean,
              2.0 * s[0].phases[0].instructions_mean, 1e-9);
}

TEST(Workloads, OutOfRangeTemplateThrows) {
  EXPECT_THROW(make_benign(benign_template_count(), 0, 1, 4),
               PreconditionError);
  EXPECT_THROW(make_malware(malware_template_count(), 0, 1, 4),
               PreconditionError);
}

}  // namespace
}  // namespace hmd::sim

// Tests for the drift-detection and model-refresh layer (serve/drift.h,
// ml/refit.h) and its controller integration: the Page-Hinkley change
// detector, per-shard score windows, the fleet-wide DriftDetector's warmup
// and min-shards gating, the copy-on-write window refit, and — the core
// contract — that the drift trigger, the background retrain, and the
// hot-swap all land in run_fleet's deterministic domain: counters and
// verdict streams bit-identical across worker counts straight through a
// mid-run model swap.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/infer.h"
#include "ml/refit.h"
#include "serve/controller.h"
#include "serve/drift.h"
#include "serve/fleet.h"
#include "sim/events.h"
#include "support/rng.h"
#include "test_util.h"

namespace hmd {
namespace {

// ---------------------------------------------------------------------------
// PageHinkley: two-sided cumulative change detection.

TEST(PageHinkley, StationaryStreamNeverTrips) {
  serve::PageHinkley ph(0.005, 0.1);
  Rng rng(41);
  for (int i = 0; i < 500; ++i)
    ph.observe(0.2 + 0.01 * (rng.uniform() - 0.5));
  EXPECT_FALSE(ph.tripped());
  EXPECT_EQ(ph.observations(), 500u);
}

TEST(PageHinkley, UpwardMeanShiftTrips) {
  serve::PageHinkley ph(0.005, 0.1);
  for (int i = 0; i < 100; ++i) ph.observe(0.1);
  EXPECT_FALSE(ph.tripped());
  for (int i = 0; i < 50 && !ph.tripped(); ++i) ph.observe(0.5);
  EXPECT_TRUE(ph.tripped());
  EXPECT_GT(ph.excursion(), 0.1);
}

TEST(PageHinkley, DownwardMeanShiftTrips) {
  serve::PageHinkley ph(0.005, 0.1);
  for (int i = 0; i < 100; ++i) ph.observe(0.8);
  EXPECT_FALSE(ph.tripped());
  for (int i = 0; i < 50 && !ph.tripped(); ++i) ph.observe(0.3);
  EXPECT_TRUE(ph.tripped());
}

TEST(PageHinkley, PureFunctionOfTheObservationSequence) {
  serve::PageHinkley a(0.01, 0.2);
  serve::PageHinkley b(0.01, 0.2);
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    const double x = 0.3 + 0.4 * rng.uniform();
    a.observe(x);
    b.observe(x);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.excursion()),
              std::bit_cast<std::uint64_t>(b.excursion()));
    ASSERT_EQ(a.tripped(), b.tripped());
  }
}

// ---------------------------------------------------------------------------
// ShardScoreWindow: per-check score accumulation.

TEST(ShardScoreWindow, TracksMeanAndTailOfTheStream) {
  serve::ShardScoreWindow w(0.95);
  EXPECT_TRUE(w.empty());
  for (int i = 0; i < 100; ++i)
    w.observe(static_cast<double>(i) / 99.0);
  EXPECT_FALSE(w.empty());
  EXPECT_EQ(w.samples(), 100u);
  EXPECT_NEAR(w.mean(), 0.5, 1e-9);
  EXPECT_NEAR(w.tail(), 0.95, 0.05);  // P² approximation of the quantile
}

TEST(ShardScoreWindow, ResetRestoresTheEmptyState) {
  serve::ShardScoreWindow w(0.9);
  for (int i = 0; i < 32; ++i) w.observe(0.7);
  w.reset();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.samples(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  // The tail estimator restarts too: a fresh stream defines the estimate.
  w.observe(0.1);
  EXPECT_DOUBLE_EQ(w.tail(), 0.1);
}

// ---------------------------------------------------------------------------
// DriftDetector: warmup and min-shards gating at fleet level.

std::vector<serve::ShardScoreWindow> windows_at(
    const std::vector<double>& means, double tail_q) {
  std::vector<serve::ShardScoreWindow> ws;
  for (const double m : means) {
    serve::ShardScoreWindow w(tail_q);
    for (int i = 0; i < 64; ++i) w.observe(m);
    ws.push_back(std::move(w));
  }
  return ws;
}

TEST(DriftDetector, WarmupChecksNeverFire) {
  serve::DriftDetectorConfig cfg;
  cfg.enabled = true;
  cfg.warmup_checks = 2;
  cfg.min_shards = 1;
  serve::DriftDetector det(cfg, 3);
  // Quiet during warmup even though the stream is wildly shifted versus
  // anything — there is no baseline yet to shift from.
  const auto quiet = windows_at({0.05, 0.05, 0.05}, cfg.tail_q);
  EXPECT_FALSE(det.check(quiet, 7));
  EXPECT_FALSE(det.check(quiet, 15));
  // First post-warmup check with a genuine shift fires.
  const auto shifted = windows_at({0.9, 0.9, 0.9}, cfg.tail_q);
  EXPECT_TRUE(det.check(shifted, 23));
  EXPECT_TRUE(det.triggered());
  EXPECT_EQ(det.trigger_tick(), 23u);
  EXPECT_EQ(det.checks(), 3u);
  EXPECT_EQ(det.triggers(), 1u);
}

TEST(DriftDetector, RequiresMinShardsToFire) {
  serve::DriftDetectorConfig cfg;
  cfg.enabled = true;
  cfg.warmup_checks = 1;
  cfg.min_shards = 2;
  serve::DriftDetector det(cfg, 4);
  EXPECT_FALSE(det.check(windows_at({0.1, 0.1, 0.1, 0.1}, cfg.tail_q), 7));
  // One shard drifting is not a fleet event.
  EXPECT_FALSE(det.check(windows_at({0.9, 0.1, 0.1, 0.1}, cfg.tail_q), 15));
  EXPECT_FALSE(det.triggered());
  // Two shards is. The first shard's trip is latched from the previous
  // check, so this one only has to add the second.
  EXPECT_TRUE(det.check(windows_at({0.9, 0.9, 0.1, 0.1}, cfg.tail_q), 23));
  EXPECT_TRUE(det.triggered());
  EXPECT_EQ(det.trigger_tick(), 23u);
  EXPECT_GE(det.tripped_shards(), 2u);
}

TEST(DriftDetector, EmptyWindowsCarryNoEvidence) {
  serve::DriftDetectorConfig cfg;
  cfg.enabled = true;
  cfg.warmup_checks = 1;
  cfg.min_shards = 1;
  serve::DriftDetector det(cfg, 2);
  std::vector<serve::ShardScoreWindow> empty(2, serve::ShardScoreWindow(0.95));
  EXPECT_FALSE(det.check(empty, 7));
  EXPECT_FALSE(det.check(empty, 15));
  EXPECT_FALSE(det.check(empty, 23));
  EXPECT_FALSE(det.triggered());
  EXPECT_EQ(det.checks(), 3u);
}

// ---------------------------------------------------------------------------
// refit_with_windows: copy-on-write augmentation.

ml::Dataset base_blobs() { return testutil::gaussian_blobs(60, 3, 1, 0.8, 11); }

/// Rows of a "novel family" the base blobs never show: on the benign side
/// of the frozen boundary (centre -0.9 per informative axis), so the base
/// model misses them and only a refit with labelled windows can catch them.
std::vector<double> novel_rows(std::size_t n, std::uint64_t seed) {
  std::vector<double> rows;
  Rng rng(seed);
  for (std::size_t r = 0; r < n; ++r) {
    for (int j = 0; j < 3; ++j) rows.push_back(rng.gaussian(-0.9, 0.1));
    rows.push_back(rng.gaussian(0.0, 1.0));  // the noise column
  }
  return rows;
}

TEST(RefitWithWindows, AugmentsWithoutMutatingTheBaseSplit) {
  const ml::Dataset base = base_blobs();
  const std::size_t base_rows = base.num_rows();
  const std::vector<double> rows = novel_rows(48, 5);
  const std::vector<int> labels(48, 1);

  ml::RefitConfig cfg;
  cfg.window_weight = 2.0;
  const auto model = ml::refit_with_windows(base, rows, 4, labels, cfg);
  ASSERT_NE(model, nullptr);
  // Copy-on-write: the cached base split is untouched by the refit.
  EXPECT_EQ(base.num_rows(), base_rows);

  // The refit model owns the novel region the base model called benign.
  auto frozen = ml::make_detector(cfg.kind, cfg.ensemble, cfg.seed);
  frozen->train(base);
  const std::span<const double> probe(rows);
  std::size_t frozen_hits = 0, refit_hits = 0;
  for (std::size_t r = 0; r < 48; ++r) {
    const auto x = probe.subspan(r * 4, 4);
    frozen_hits += frozen->predict(x) == 1 ? 1 : 0;
    refit_hits += model->predict(x) == 1 ? 1 : 0;
  }
  EXPECT_GT(refit_hits, frozen_hits);
  EXPECT_GT(refit_hits, 40u);  // the refit catches (nearly) all of them
  // ... without surrendering the original benign class.
  std::size_t benign_ok = 0;
  for (std::size_t i = 0; i < base.num_rows(); ++i)
    if (base.label(i) == 0 && model->predict(base.row(i)) == 0) ++benign_ok;
  EXPECT_GT(benign_ok, 50u);  // of 60 benign base rows
}

TEST(RefitWithWindows, DeterministicInItsInputs) {
  const ml::Dataset base = base_blobs();
  const std::vector<double> rows = novel_rows(24, 9);
  const std::vector<int> labels(24, 1);
  ml::RefitConfig cfg;
  const auto a = ml::refit_with_windows(base, rows, 4, labels, cfg);
  const auto b = ml::refit_with_windows(base, rows, 4, labels, cfg);
  const std::span<const double> probe(rows);
  for (std::size_t r = 0; r < 24; ++r) {
    const auto x = probe.subspan(r * 4, 4);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a->predict_proba(x)),
              std::bit_cast<std::uint64_t>(b->predict_proba(x)));
  }
}

TEST(RefitWithWindows, RejectsMalformedWindows) {
  const ml::Dataset base = base_blobs();
  const std::vector<double> rows = novel_rows(4, 3);
  const std::vector<int> labels(3, 1);  // 4 rows, 3 labels
  ml::RefitConfig cfg;
  EXPECT_THROW(ml::refit_with_windows(base, rows, 4, labels, cfg),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Controller integration: a hand-built fleet with a mid-run campaign wave.
//
// Same shape as test_serve.cpp's synthetic fleet (make_fleet's offline
// phase costs seconds; the drift contract doesn't care where the bank came
// from): app 0 replays benign rows at -2, app 1 a trained malware family
// at +2, app 2 the NOVEL family at +1.3 — behaviour the base training
// split never contained, injected mid-run by campaign-recruited hosts.

constexpr std::size_t kFeat = 4;
constexpr std::size_t kRowsPerApp = 6;
constexpr std::size_t kHosts = 60;
constexpr std::uint32_t kTicks = 96;
constexpr std::uint32_t kCampaignOnset = 48;

serve::FleetSetup drift_fleet() {
  serve::FleetSetup f;
  f.cfg.hosts = kHosts;
  f.cfg.ticks = kTicks;
  f.cfg.seed = 321;
  f.cfg.drop_rate = 0.02;
  f.cfg.scale_sigma = 0.05;

  ml::Dataset train = base_blobs();
  auto clf = ml::make_detector(ml::ClassifierKind::kJRip,
                               ml::EnsembleKind::kBagging, 7);
  clf->train(train);
  f.model = std::move(clf);
  f.backend = ml::make_active_backend(*f.model);
  f.base_train = std::move(train);  // the refit's cached base split
  f.events = {sim::Event::kCpuCycles, sim::Event::kInstructions,
              sim::Event::kCacheMisses, sim::Event::kBranchMisses};
  f.num_features = kFeat;

  Rng rng(99);
  const double centres[] = {-2.0, 2.0, 1.3};
  for (int app = 0; app < 3; ++app) {
    f.app_begin.push_back(f.bank.size() / kFeat);
    f.app_rows.push_back(kRowsPerApp);
    f.app_labels.push_back(app == 0 ? 0 : 1);
    for (std::size_t r = 0; r < kRowsPerApp; ++r)
      for (std::size_t j = 0; j < kFeat; ++j)
        f.bank.push_back(j < 3 ? centres[app] + 0.4 * (rng.uniform() - 0.5)
                               : 0.1);
  }

  for (std::size_t h = 0; h < kHosts; ++h) {
    serve::HostProfile p;
    p.benign_app = 0;
    p.malware_app = 1;
    p.phase = static_cast<std::uint32_t>(h % kRowsPerApp);
    if (h % 4 == 2) {
      // The campaign wave: every shard (5 below) gets recruits, with
      // onsets staggered over 3 ticks.
      p.campaign = true;
      p.campaign_app = 2;
      p.campaign_onset = kCampaignOnset + static_cast<std::uint32_t>(h % 3);
      ++f.campaign_hosts;
    }
    f.hosts.push_back(p);
  }
  return f;
}

const serve::FleetSetup& shared_drift_fleet() {
  static const serve::FleetSetup fleet = drift_fleet();
  return fleet;
}

serve::ServeConfig drift_config() {
  serve::ServeConfig cfg;
  cfg.threads = 1;
  cfg.shards = 5;
  cfg.record_verdicts = true;
  cfg.drift.enabled = true;
  cfg.drift.check_interval = 8;
  cfg.drift.warmup_checks = 2;
  cfg.drift.min_shards = 2;
  cfg.refresh.harvest_ticks = 6;
  cfg.refresh.refresh_lag_ticks = 20;
  cfg.refresh.max_window_rows = 256;
  return cfg;
}

void expect_same_reports(const serve::ServeReport& a,
                         const serve::ServeReport& b) {
  const serve::ServeCounters& ca = a.counters;
  const serve::ServeCounters& cb = b.counters;
  EXPECT_EQ(ca.missing, cb.missing);
  EXPECT_EQ(ca.admitted, cb.admitted);
  EXPECT_EQ(ca.alarms_raised, cb.alarms_raised);
  EXPECT_EQ(ca.alarmed_hosts, cb.alarmed_hosts);
  EXPECT_EQ(ca.campaign_hosts, cb.campaign_hosts);
  EXPECT_EQ(ca.drift_checks, cb.drift_checks);
  EXPECT_EQ(ca.drift_triggers, cb.drift_triggers);
  EXPECT_EQ(ca.drift_trigger_tick, cb.drift_trigger_tick);
  EXPECT_EQ(ca.drift_tripped_shards, cb.drift_tripped_shards);
  EXPECT_EQ(ca.model_swaps, cb.model_swaps);
  EXPECT_EQ(ca.model_swap_tick, cb.model_swap_tick);
  EXPECT_EQ(ca.retrain_base_rows, cb.retrain_base_rows);
  EXPECT_EQ(ca.retrain_window_rows, cb.retrain_window_rows);
  EXPECT_EQ(ca.final_model_epoch, cb.final_model_epoch);
  EXPECT_EQ(ca.verdict_hash, cb.verdict_hash);
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    const serve::ServeVerdict& va = a.verdicts[i];
    const serve::ServeVerdict& vb = b.verdicts[i];
    ASSERT_EQ(va.tick, vb.tick);
    ASSERT_EQ(va.host, vb.host);
    ASSERT_EQ(va.outcome, vb.outcome);
    ASSERT_EQ(va.alarm, vb.alarm);
    // Exact bits, not a tolerance: the determinism contract holds straight
    // through the drift trigger and the mid-run hot-swap.
    ASSERT_EQ(std::bit_cast<std::uint64_t>(va.score),
              std::bit_cast<std::uint64_t>(vb.score));
    ASSERT_EQ(std::bit_cast<std::uint64_t>(va.ewma),
              std::bit_cast<std::uint64_t>(vb.ewma));
  }
}

TEST(ServeDrift, TriggerRetrainAndSwapAreDeterministicAcrossThreads) {
  const serve::FleetSetup& fleet = shared_drift_fleet();
  serve::ServeConfig one = drift_config();
  serve::ServeConfig three = drift_config();
  three.threads = 3;
  const auto a = serve::run_fleet(fleet, one);
  const auto b = serve::run_fleet(fleet, three);
  expect_same_reports(a, b);

  const serve::ServeCounters& c = a.counters;
  EXPECT_EQ(c.campaign_hosts, 15u);
  EXPECT_EQ(c.drift_checks, kTicks / 8);
  ASSERT_GE(c.drift_triggers, 1u);
  // The trigger lands on the first post-onset check boundary (the novel
  // family's scores shift the shard windows immediately).
  EXPECT_GE(c.drift_trigger_tick, kCampaignOnset);
  EXPECT_LE(c.drift_trigger_tick, kCampaignOnset + 15);
  EXPECT_GE(c.drift_tripped_shards, 2u);
  // Refresh: harvested, retrained, swapped at trigger + refresh_lag.
  EXPECT_EQ(c.model_swaps, 1u);
  EXPECT_EQ(c.model_swap_tick, c.drift_trigger_tick + 20);
  EXPECT_LT(c.model_swap_tick, kTicks);
  EXPECT_EQ(c.final_model_epoch, 1u);
  EXPECT_EQ(c.retrain_base_rows, 120u);  // the cached blobs split
  EXPECT_GT(c.retrain_window_rows, 0u);
  EXPECT_LE(c.retrain_window_rows, 256u);
  EXPECT_GT(a.timing.retrain_ms, 0.0);
}

TEST(ServeDrift, DetectionOnlyModeCountsTriggersButNeverSwaps) {
  const serve::FleetSetup& fleet = shared_drift_fleet();
  serve::ServeConfig cfg = drift_config();
  cfg.refresh.enabled = false;
  const auto r = serve::run_fleet(fleet, cfg);
  EXPECT_GE(r.counters.drift_triggers, 1u);
  EXPECT_GT(r.counters.drift_trigger_tick, 0u);
  EXPECT_EQ(r.counters.model_swaps, 0u);
  EXPECT_EQ(r.counters.model_swap_tick, 0u);
  EXPECT_EQ(r.counters.retrain_window_rows, 0u);
  EXPECT_EQ(r.counters.final_model_epoch, 0u);
}

TEST(ServeDrift, SwapPastEndOfRunIsSkippedAndStillJoinsTheRetrain) {
  const serve::FleetSetup& fleet = shared_drift_fleet();
  serve::ServeConfig cfg = drift_config();
  // Trigger ~tick 55 + 60 lands past tick 95: the retrain still runs (and
  // must be joined — this is the no-hang regression), but never installs.
  cfg.refresh.refresh_lag_ticks = 60;
  const auto r = serve::run_fleet(fleet, cfg);
  EXPECT_GE(r.counters.drift_triggers, 1u);
  EXPECT_EQ(r.counters.model_swaps, 0u);
  EXPECT_EQ(r.counters.final_model_epoch, 0u);
  EXPECT_GT(r.counters.retrain_window_rows, 0u);  // harvested + retrained
}

TEST(ServeDrift, DriftDisabledLeavesDriftCountersZero) {
  const serve::FleetSetup& fleet = shared_drift_fleet();
  serve::ServeConfig cfg = drift_config();
  cfg.drift.enabled = false;
  const auto r = serve::run_fleet(fleet, cfg);
  EXPECT_EQ(r.counters.drift_checks, 0u);
  EXPECT_EQ(r.counters.drift_triggers, 0u);
  EXPECT_EQ(r.counters.model_swaps, 0u);
  EXPECT_EQ(r.counters.final_model_epoch, 0u);
  // The campaign itself still happens (it is fleet workload, not detector
  // state): novel-family hosts appear whether or not anyone watches.
  EXPECT_EQ(r.counters.campaign_hosts, 15u);
}

TEST(ServeDrift, WindowAccuracySplitsThePhases) {
  const serve::FleetSetup& fleet = shared_drift_fleet();
  const auto r = serve::run_fleet(fleet, drift_config());
  // Pre-onset the fleet is all-benign and quiet: near-perfect accuracy.
  const double pre =
      verdict_window_accuracy(fleet, r.verdicts, 8, kCampaignOnset);
  EXPECT_GT(pre, 0.95);
  // An empty window reports 0, not NaN.
  EXPECT_EQ(verdict_window_accuracy(fleet, r.verdicts, kTicks, kTicks), 0.0);
}

}  // namespace
}  // namespace hmd

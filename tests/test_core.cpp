// Integration tests for the core framework: the end-to-end experiment
// pipeline on a miniature corpus, and the online (run-time) detector.
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "core/online.h"
#include "support/check.h"

namespace hmd::core {
namespace {

/// Miniature but complete experiment context, built once for the suite.
const ExperimentContext& tiny_context() {
  static const ExperimentContext ctx = [] {
    ExperimentConfig cfg;
    cfg.corpus.benign_per_template = 1;
    cfg.corpus.malware_per_template = 1;
    cfg.corpus.intervals_per_app = 8;
    return prepare_experiment(cfg);
  }();
  return ctx;
}

TEST(Experiment, CaptureShapeMatchesCorpus) {
  const auto& ctx = tiny_context();
  const std::size_t apps =
      sim::benign_template_count() + sim::malware_template_count();
  EXPECT_EQ(ctx.capture.app_names.size(), apps);
  EXPECT_EQ(ctx.full.num_rows(), apps * 8);
  EXPECT_EQ(ctx.full.num_features(), 44u);
}

TEST(Experiment, SplitIsApplicationLevel) {
  const auto& ctx = tiny_context();
  std::set<std::size_t> train_apps, test_apps;
  for (std::size_t i = 0; i < ctx.split.train.num_rows(); ++i)
    train_apps.insert(ctx.split.train.group(i));
  for (std::size_t i = 0; i < ctx.split.test.num_rows(); ++i)
    test_apps.insert(ctx.split.test.group(i));
  for (std::size_t g : test_apps) EXPECT_FALSE(train_apps.contains(g));
  EXPECT_GT(train_apps.size(), test_apps.size());
}

TEST(Experiment, RankingCoversDistinctFeatures) {
  const auto& ctx = tiny_context();
  EXPECT_GE(ctx.ranking.size(), 16u);
  std::set<std::size_t> seen;
  for (const auto& fs : ctx.ranking)
    EXPECT_TRUE(seen.insert(fs.feature).second);
}

TEST(Experiment, TopFeaturesPrefixConsistency) {
  const auto& ctx = tiny_context();
  const auto top2 = ctx.top_features(2);
  const auto top8 = ctx.top_features(8);
  ASSERT_EQ(top2.size(), 2u);
  ASSERT_EQ(top8.size(), 8u);
  EXPECT_EQ(top2[0], top8[0]);
  EXPECT_EQ(top2[1], top8[1]);
  const auto names = ctx.top_feature_names(2);
  EXPECT_EQ(names[0], ctx.full.feature_name(top8[0]));
}

TEST(Experiment, RunCellProducesSaneMetrics) {
  const auto& ctx = tiny_context();
  const auto cell = run_cell(ctx, ml::ClassifierKind::kJ48,
                             ml::EnsembleKind::kGeneral, 4);
  EXPECT_EQ(cell.hpcs, 4u);
  EXPECT_GT(cell.metrics.accuracy, 0.5);  // better than coin flip
  EXPECT_GT(cell.metrics.auc, 0.5);
  EXPECT_LE(cell.metrics.accuracy, 1.0);
  EXPECT_LE(cell.metrics.auc, 1.0);
  EXPECT_EQ(cell.complexity.kind, "tree");
}

TEST(Experiment, RunCellIsDeterministic) {
  const auto& ctx = tiny_context();
  const auto a = run_cell(ctx, ml::ClassifierKind::kBayesNet,
                          ml::EnsembleKind::kBagging, 4);
  const auto b = run_cell(ctx, ml::ClassifierKind::kBayesNet,
                          ml::EnsembleKind::kBagging, 4);
  EXPECT_DOUBLE_EQ(a.metrics.accuracy, b.metrics.accuracy);
  EXPECT_DOUBLE_EQ(a.metrics.auc, b.metrics.auc);
}

TEST(Experiment, CellScoresAlignWithTestSet) {
  const auto& ctx = tiny_context();
  const auto scores = run_cell_scores(ctx, ml::ClassifierKind::kOneR,
                                      ml::EnsembleKind::kGeneral, 2);
  EXPECT_EQ(scores.scores.size(), ctx.split.test.num_rows());
  EXPECT_EQ(scores.labels.size(), ctx.split.test.num_rows());
}

TEST(Experiment, ZeroHpcsRejected) {
  const auto& ctx = tiny_context();
  EXPECT_THROW(run_cell(ctx, ml::ClassifierKind::kOneR,
                        ml::EnsembleKind::kGeneral, 0),
               PreconditionError);
}

// ---------------------------------------------------------------- online --

/// Deterministic stand-in classifier: P(malware) = x[0] / 1000.
class FakeScorer final : public ml::Classifier {
 public:
  void train(const ml::Dataset&) override {}
  double predict_proba(std::span<const double> x) const override {
    return std::clamp(x[0] / 1000.0, 0.0, 1.0);
  }
  std::unique_ptr<ml::Classifier> clone_untrained() const override {
    return std::make_unique<FakeScorer>();
  }
  std::string name() const override { return "Fake"; }
  ml::ModelComplexity complexity() const override { return {}; }
};

sim::EventCounts counts_with_instructions(std::uint64_t n) {
  sim::EventCounts c{};
  c[sim::Event::kInstructions] = n;
  return c;
}

TEST(Online, RejectsMoreHardwareEventsThanCounters) {
  const std::vector<sim::Event> five{
      sim::Event::kCpuCycles, sim::Event::kInstructions,
      sim::Event::kCacheMisses, sim::Event::kBranchMisses,
      sim::Event::kBranchInstructions};
  EXPECT_THROW(OnlineDetector(std::make_shared<FakeScorer>(), five),
               PreconditionError);
}

TEST(Online, AlarmWithHysteresis) {
  OnlineConfig cfg;
  cfg.ewma_alpha = 1.0;  // no smoothing: score drives the alarm directly
  cfg.alarm_on = 0.6;
  cfg.alarm_off = 0.4;
  cfg.warmup_intervals = 0;
  OnlineDetector det(std::make_shared<FakeScorer>(),
                     {sim::Event::kInstructions}, hpc::PmuConfig{}, cfg);

  EXPECT_FALSE(det.observe(counts_with_instructions(100)).alarm);  // 0.1
  EXPECT_TRUE(det.observe(counts_with_instructions(700)).alarm);   // 0.7
  // 0.5 is between off and on: the alarm latches.
  EXPECT_TRUE(det.observe(counts_with_instructions(500)).alarm);
  EXPECT_FALSE(det.observe(counts_with_instructions(300)).alarm);  // clears
}

TEST(Online, WarmupIntervalsAreIgnored) {
  OnlineConfig cfg;
  cfg.warmup_intervals = 2;
  cfg.ewma_alpha = 1.0;
  OnlineDetector det(std::make_shared<FakeScorer>(),
                     {sim::Event::kInstructions}, hpc::PmuConfig{}, cfg);
  EXPECT_FALSE(det.observe(counts_with_instructions(999)).alarm);
  EXPECT_FALSE(det.observe(counts_with_instructions(999)).alarm);
  EXPECT_TRUE(det.observe(counts_with_instructions(999)).alarm);
}

TEST(Online, ResetClearsState) {
  OnlineConfig cfg;
  cfg.ewma_alpha = 1.0;
  cfg.warmup_intervals = 0;
  OnlineDetector det(std::make_shared<FakeScorer>(),
                     {sim::Event::kInstructions}, hpc::PmuConfig{}, cfg);
  det.observe(counts_with_instructions(900));
  EXPECT_TRUE(det.alarmed());
  det.reset();
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.observe(counts_with_instructions(100)).interval, 0u);
}

TEST(Online, MonitorApplicationYieldsOneVerdictPerInterval) {
  OnlineDetector det(std::make_shared<FakeScorer>(),
                     {sim::Event::kInstructions});
  const auto app = sim::make_benign(0, 0, 33, 6);
  const auto timeline = monitor_application(app, det);
  EXPECT_EQ(timeline.size(), 6u);
  for (std::size_t i = 0; i < timeline.size(); ++i)
    EXPECT_EQ(timeline[i].interval, i);
}

}  // namespace
}  // namespace hmd::core
